// Benchmarks regenerating every table and figure of the paper's results
// (one benchmark per artifact of DESIGN.md's per-experiment index; the
// series themselves are printed by cmd/repro and recorded in
// EXPERIMENTS.md). Reported ns/op tracks the paper's cost measure,
// geometric resolutions, by Lemma 4.5.
//
// Every benchmark reports allocs/op and feeds the benchio trajectory
// recorder: running with the BENCH_OUT environment variable set writes
// the measured entries to that file (see internal/benchio and cmd/bench,
// which regenerates the committed BENCH_tetris.json).
package tetrisjoin_test

import (
	"fmt"
	"strings"
	"testing"

	"tetrisjoin/internal/baseline"
	"tetrisjoin/internal/benchio"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
	"tetrisjoin/internal/workload"
)

// mustRun executes a query, pinning an unset Parallelism to 1: the paper
// benchmarks track the sequential trajectory (the parallel series in
// benchio.Suite sets its worker count explicitly).
func mustRun(b *testing.B, q *join.Query, opts join.Options) *join.Result {
	b.Helper()
	if opts.Parallelism == 0 {
		opts.Parallelism = 1
	}
	res, err := join.Execute(q, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func mustRunBCP(b *testing.B, inst workload.BCP, opts core.Options) *core.Result {
	b.Helper()
	o, err := core.NewBoxOracle(inst.Depths, inst.Boxes)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Run(o, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// benchJoin is the standard observed Execute-per-op body.
func benchJoin(b *testing.B, q *join.Query, opts join.Options) {
	obs := benchio.Begin(b)
	var resolutions float64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, q, opts)
		resolutions = float64(res.Stats.Resolutions)
	}
	b.ReportMetric(resolutions, "resolutions")
	obs.End(b, benchio.Metrics{Resolutions: resolutions})
}

// benchSuiteGroup runs the benchio suite cases under the given name
// prefix as sub-benchmarks, so the root benchmarks and cmd/bench measure
// the exact same workloads (one source of truth, no drift).
func benchSuiteGroup(b *testing.B, prefix string) {
	matched := false
	for _, c := range benchio.Suite() {
		if !strings.HasPrefix(c.Name, prefix+"/") {
			continue
		}
		matched = true
		bench := c.Bench
		b.Run(strings.TrimPrefix(c.Name, prefix+"/"), func(b *testing.B) {
			obs := benchio.Begin(b)
			m := bench(b)
			if m.Resolutions > 0 {
				b.ReportMetric(m.Resolutions, "resolutions")
			}
			if m.Balance > 0 {
				b.ReportMetric(m.Balance, "balance")
			}
			obs.End(b, m)
		})
	}
	if !matched {
		b.Fatalf("no benchio suite cases under %q", prefix)
	}
}

// benchBCP is benchJoin for raw box-cover instances.
func benchBCP(b *testing.B, inst workload.BCP, opts core.Options) {
	obs := benchio.Begin(b)
	var resolutions float64
	for i := 0; i < b.N; i++ {
		res := mustRunBCP(b, inst, opts)
		resolutions = float64(res.Stats.Resolutions)
	}
	b.ReportMetric(resolutions, "resolutions")
	obs.End(b, benchio.Metrics{Resolutions: resolutions})
}

// BenchmarkTable1Acyclic — Table 1 row "α-acyclic: N+Z" (Thm D.8).
// Workloads defined once in benchio.Suite.
func BenchmarkTable1Acyclic(b *testing.B) {
	benchSuiteGroup(b, "Table1Acyclic")
}

// BenchmarkTable1AGM — Table 1 row "arbitrary: N+AGM" (Thm D.2); the
// dense triangle output meets the AGM bound N^{3/2}.
func BenchmarkTable1AGM(b *testing.B) {
	for _, m := range []uint64{8, 16, 24} {
		q := workload.TriangleDense(m, 10)
		b.Run(fmt.Sprintf("dense/N=%d", m*m), func(b *testing.B) {
			benchJoin(b, q, join.Options{Mode: core.Preloaded})
		})
	}
	for _, m := range []uint64{64, 256} {
		q := workload.TriangleAGMStar(m, 12)
		b.Run(fmt.Sprintf("star/m=%d", m), func(b *testing.B) {
			benchJoin(b, q, join.Options{Mode: core.Preloaded})
		})
	}
}

// BenchmarkTable1FHTW — Table 1 row "bounded fhtw: N^fhtw+Z" (Thm 4.6) on
// the triangle-with-tail query (tw 2, fhtw 3/2).
func BenchmarkTable1FHTW(b *testing.B) {
	for _, m := range []uint64{8, 16} {
		base := workload.TriangleDense(m, 10)
		u := relation.MustNewUniform("U", []string{"X", "Y"}, 10)
		for i := uint64(0); i < m; i++ {
			u.MustInsert(i, i)
		}
		q := join.MustNewQuery(append(base.Atoms(),
			join.Atom{Relation: u, Vars: []string{"C", "D"}})...)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			benchJoin(b, q, join.Options{Mode: core.Preloaded})
		})
	}
}

// BenchmarkTable1TreewidthW — Table 1 row "treewidth w: |C|^{w+1}+Z"
// (Thm 4.9): constant-certificate four-cycles at growing N.
func BenchmarkTable1TreewidthW(b *testing.B) {
	for _, d := range []uint8{4, 6, 8} {
		q := workload.FourCycleBlocks(d)
		b.Run(fmt.Sprintf("N=%d", 4<<(2*(d-1))), func(b *testing.B) {
			benchJoin(b, q, join.Options{Mode: core.Reloaded})
		})
	}
}

// BenchmarkTable1Treewidth1 — Table 1 row "treewidth 1: |C|+Z" (Thm 4.7):
// flat certificate-bound work as N grows 4096×.
func BenchmarkTable1Treewidth1(b *testing.B) {
	for _, d := range []uint8{4, 8, 12} {
		q := workload.BowtieBlock(d)
		b.Run(fmt.Sprintf("N=%d", 1<<(2*(d-1))), func(b *testing.B) {
			benchJoin(b, q, join.Options{Mode: core.Reloaded})
		})
	}
}

// BenchmarkFig2TreeOrderedAGM — Figure 2 upper bound Õ(AGM) for Tree
// Ordered resolution (Thm 5.1): caching disabled, single-pass skeleton
// (the TetrisSkeleton2 variant the theorem is stated for).
func BenchmarkFig2TreeOrderedAGM(b *testing.B) {
	for _, m := range []uint64{8, 16} {
		q := workload.TriangleDense(m, 10)
		b.Run(fmt.Sprintf("N=%d", m*m), func(b *testing.B) {
			benchJoin(b, q, join.Options{Mode: core.Preloaded, NoCache: true, SinglePass: true})
		})
	}
}

// BenchmarkFig2TreeOrderedLower — Figure 2 lower bound Ω(N^{n/2}) for
// Tree Ordered resolution on tw-1 queries (Thm 5.2 mechanism): cached vs
// no-cache on the cache-reuse family.
func BenchmarkFig2TreeOrderedLower(b *testing.B) {
	for _, m := range []uint64{8, 16} {
		q := workload.TreeOrderedHard(m)
		opts := join.Options{SAOVars: []string{"A", "B", "C"}}
		b.Run(fmt.Sprintf("cached/m=%d", m), func(b *testing.B) {
			benchJoin(b, q, opts)
		})
		optsN := opts
		optsN.NoCache = true
		b.Run(fmt.Sprintf("nocache/m=%d", m), func(b *testing.B) {
			benchJoin(b, q, optsN)
		})
	}
}

// BenchmarkFig2OrderedLower — Figure 2 lower bound Ω(|C|^{n-1}) for
// Ordered resolution (Thm 5.4): plain Tetris on Example F.1.
func BenchmarkFig2OrderedLower(b *testing.B) {
	for _, d := range []uint8{4, 5, 6} {
		inst := workload.ExampleF1(d)
		b.Run(fmt.Sprintf("C=%d", len(inst.Boxes)), func(b *testing.B) {
			benchBCP(b, inst, core.Options{Mode: core.Preloaded})
		})
	}
}

// BenchmarkFig2LBUpper — Figure 2 upper bound Õ(|C|^{n/2}+Z) (Thm 4.11):
// the Balance-lifted Tetris on the same family.
func BenchmarkFig2LBUpper(b *testing.B) {
	for _, d := range []uint8{4, 5, 6} {
		inst := workload.ExampleF1(d)
		b.Run(fmt.Sprintf("C=%d", len(inst.Boxes)), func(b *testing.B) {
			benchBCP(b, inst, core.Options{Mode: core.PreloadedLB})
		})
	}
}

// BenchmarkKleeBoolean — Corollary F.8: Boolean Klee's measure problem.
// Workloads defined once in benchio.Suite.
func BenchmarkKleeBoolean(b *testing.B) {
	benchSuiteGroup(b, "KleeBoolean")
}

// BenchmarkParallel — the sharded executor's speedup series on the
// largest canonical workloads across worker counts (workers=1 is the
// plain sequential engine). Workloads defined once in benchio.Suite.
func BenchmarkParallel(b *testing.B) {
	benchSuiteGroup(b, "Parallel")
}

// BenchmarkBalance — the work-stealing executor vs static sharding on
// skewed Zipf families; the balance metric (max/mean worker resolution
// share) is the series cmd/bench -gate-balance holds a floor on.
// Workloads defined once in benchio.Suite.
func BenchmarkBalance(b *testing.B) {
	benchSuiteGroup(b, "Balance")
}

// BenchmarkPlannerSkew — the statistics-driven SAO planner vs the
// natural order on the skewed adversarial families; the resolutions
// metric is the series cmd/bench -gate holds to the committed
// trajectory. Workloads defined once in benchio.Suite.
func BenchmarkPlannerSkew(b *testing.B) {
	benchSuiteGroup(b, "PlannerSkew")
}

// BenchmarkCertIndexPower — Appendix B.2 / Figure 13: certificate size
// under (A,B)- versus (B,A)-ordered indices.
func BenchmarkCertIndexPower(b *testing.B) {
	const m, d = 32, 8
	for _, order := range [][]string{{"X", "Y"}, {"Y", "X"}} {
		q := workload.GAOSensitive(m, d)
		atoms := q.Atoms()
		atoms[1].Indexes = []index.Index{index.MustSorted(atoms[1].Relation, order...)}
		q2 := join.MustNewQuery(atoms...)
		sao := []string{"A", "B"}
		if order[0] == "Y" {
			sao = []string{"B", "A"}
		}
		b.Run(fmt.Sprintf("order=%s%s", order[0], order[1]), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := mustRun(b, q2, join.Options{SAOVars: sao})
				b.ReportMetric(float64(res.Stats.BoxesLoaded), "boxes")
			}
		})
	}
}

// BenchmarkBaselines compares the substrate join algorithms on the
// AGM-hard star triangle (the Table 1 "who wins" comparison).
// Workloads defined once in benchio.Suite.
func BenchmarkBaselines(b *testing.B) {
	benchSuiteGroup(b, "Baselines")
}

// BenchmarkYannakakisVsTetris compares Yannakakis and Tetris-Preloaded on
// an acyclic path query (Table 1 row 1's two contenders).
func BenchmarkYannakakisVsTetris(b *testing.B) {
	q := workload.PathQuery(3, 2000, 12, 99)
	b.Run("yannakakis", func(b *testing.B) {
		obs := benchio.Begin(b)
		for i := 0; i < b.N; i++ {
			if _, err := baseline.Yannakakis(q); err != nil {
				b.Fatal(err)
			}
		}
		obs.End(b, benchio.Metrics{})
	})
	b.Run("tetris-preloaded", func(b *testing.B) {
		benchJoin(b, q, join.Options{Mode: core.Preloaded})
	})
}
