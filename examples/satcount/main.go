// Model counting with Tetris: the DPLL correspondence of §4.2.4.
//
// Each clause of a CNF formula is the box of assignments that falsify it
// (Figure 8 of the paper); the models are exactly the points of the
// Boolean cube not covered by any clause box, so Tetris enumerates them.
// Resolvent caching is clause learning; disabling it gives plain DPLL.
//
// Run with: go run ./examples/satcount
package main

import (
	"fmt"
	"log"

	"tetrisjoin"
)

func main() {
	// (x1 ∨ x2) ∧ (¬x2 ∨ x3) ∧ (¬x1 ∨ ¬x3): count its models.
	formula := tetrisjoin.CNF{
		NumVars: 3,
		Clauses: []tetrisjoin.Clause{{1, 2}, {-2, 3}, {-1, -3}},
	}
	res, err := tetrisjoin.CountModels(formula, tetrisjoin.SATOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("formula has %d models:\n", res.Models)
	for _, m := range res.Assignments {
		fmt.Printf("  %v\n", m)
	}

	// Pigeonhole: 5 pigeons into 4 holes is unsatisfiable, and clause
	// learning (= resolvent caching) pays off against plain DPLL.
	php := tetrisjoin.Pigeonhole(5, 4)
	fmt.Printf("\nPHP(5,4): %d variables, %d clauses\n", php.NumVars, len(php.Clauses))
	learned, err := tetrisjoin.CountModels(php, tetrisjoin.SATOptions{})
	if err != nil {
		log.Fatal(err)
	}
	plain, err := tetrisjoin.CountModels(php, tetrisjoin.SATOptions{NoLearning: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  models: %d (unsatisfiable)\n", learned.Models)
	fmt.Printf("  with clause learning: %8d resolutions\n", learned.Stats.Resolutions)
	fmt.Printf("  plain DPLL:           %8d resolutions\n", plain.Stats.Resolutions)

	// And a satisfiable one: PHP(4,4) has 4! = 24 models.
	php44 := tetrisjoin.Pigeonhole(4, 4)
	res, err = tetrisjoin.CountModels(php44, tetrisjoin.SATOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPHP(4,4) has %d models (4! perfect matchings)\n", res.Models)

	// Counting without enumeration: the memoized counting skeleton sums
	// whole satisfying sub-cubes, so astronomically many models are fine.
	big50 := tetrisjoin.CNF{
		NumVars: 50,
		Clauses: []tetrisjoin.Clause{{1, 2, 3}, {-1, 4}, {2, -5, 6}},
	}
	count, err := tetrisjoin.CountModelsFast(big50, tetrisjoin.SATOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\na 50-variable formula has exactly %s models\n", count)
	fmt.Println("(counted via cached sub-cube sums, not enumeration)")
}
