// Parallel: the sharded executor on an output-heavy triangle join.
//
// The output space is split into disjoint dyadic shards along the
// splitting attribute order; each worker runs an independent Tetris
// instance over its shards (sharing the immutable indices through a
// prepared Plan), and the results merge deterministically — the tuple
// order is identical at every worker count, so the speedup is free of
// semantic drift.
//
// Run with: go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"tetrisjoin"
)

func main() {
	// R = S = T = [m]×[m]: the AGM-tight dense triangle, output m³.
	const m, depth = 32, 12
	mk := func(name string) *tetrisjoin.Relation {
		r, err := tetrisjoin.NewRelation(name, []string{"X", "Y"}, depth)
		if err != nil {
			log.Fatal(err)
		}
		for i := uint64(0); i < m; i++ {
			for j := uint64(0); j < m; j++ {
				r.MustInsert(i, j)
			}
		}
		return r
	}
	q, err := tetrisjoin.ParseQuery("R(A,B), S(B,C), T(A,C)", map[string]*tetrisjoin.Relation{
		"R": mk("R"), "S": mk("S"), "T": mk("T"),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Prepare once: the plan owns the immutable indices; every execution
	// below reuses them.
	plan, err := tetrisjoin.NewPlan(q, tetrisjoin.Options{Mode: tetrisjoin.Preloaded})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("triangle join, m=%d (output %d tuples), GOMAXPROCS=%d\n\n",
		m, m*m*m, runtime.GOMAXPROCS(0))
	fmt.Printf("%-10s %12s %12s %10s\n", "workers", "wall", "resolutions", "tuples")
	var first [][]uint64
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		res, err := plan.Execute(tetrisjoin.Options{Mode: tetrisjoin.Preloaded, Parallelism: workers})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %12s %12d %10d\n", workers, time.Since(start).Round(time.Microsecond),
			res.Stats.Resolutions, len(res.Tuples))
		if first == nil {
			first = res.Tuples
			continue
		}
		// Determinism: every worker count yields the identical tuple
		// sequence (shard-major = sequential enumeration order).
		if len(first) != len(res.Tuples) {
			log.Fatalf("worker count changed the output size: %d vs %d", len(first), len(res.Tuples))
		}
		for i := range first {
			for j := range first[i] {
				if first[i][j] != res.Tuples[i][j] {
					log.Fatalf("worker count changed the tuple order at index %d", i)
				}
			}
		}
	}
	fmt.Println("\nevery worker count produced the identical tuple sequence")
}
