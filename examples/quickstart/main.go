// Quickstart: find triangles in a small social network with Tetris.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tetrisjoin"
)

func main() {
	// Encode names onto an ordered integer domain.
	enc := tetrisjoin.NewEncoder()
	people := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	for _, p := range people {
		enc.Add(p)
	}
	depth := enc.Freeze()

	friends, err := tetrisjoin.NewRelation("Friends", []string{"a", "b"}, depth)
	if err != nil {
		log.Fatal(err)
	}
	edges := [][2]string{
		{"alice", "bob"}, {"bob", "carol"}, {"alice", "carol"},
		{"carol", "dave"}, {"dave", "erin"}, {"erin", "carol"},
		{"frank", "alice"},
	}
	for _, e := range edges {
		u, _ := enc.Code(e[0])
		v, _ := enc.Code(e[1])
		// Symmetric friendship.
		friends.MustInsert(u, v)
		friends.MustInsert(v, u)
	}

	// The triangle query as a self-join.
	q, err := tetrisjoin.ParseQuery("Friends(X,Y), Friends(Y,Z), Friends(X,Z)",
		map[string]*tetrisjoin.Relation{"Friends": friends})
	if err != nil {
		log.Fatal(err)
	}

	// Parallelism: 1 — the stats printed below are the paper's sequential
	// work accounting (the default parallel engine reports machine-
	// dependent counts).
	res, err := tetrisjoin.Join(q, tetrisjoin.Options{Parallelism: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: %s\n", q)
	fmt.Printf("splitting attribute order: %v\n", res.SAO)
	fmt.Printf("triangles (each listed once per orientation):\n")
	for _, t := range res.Tuples {
		x, _ := enc.Value(t[0])
		y, _ := enc.Value(t[1])
		z, _ := enc.Value(t[2])
		fmt.Printf("  %s – %s – %s\n", x, y, z)
	}
	fmt.Printf("\nwork: %d geometric resolutions, %d gap boxes loaded, %d oracle probes\n",
		res.Stats.Resolutions, res.Stats.BoxesLoaded, res.Stats.OracleCalls)

	agm, err := tetrisjoin.AGMBound(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AGM output bound: %.1f tuples (actual: %d)\n", agm, len(res.Tuples))
}
