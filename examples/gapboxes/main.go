// Gap boxes: how the same relation yields different gap box sets under
// different indices — reproducing Figures 1 and 3 of the paper.
//
// The relation is R(A,B) = {3}×{1,3,5,7} ∪ {1,3,5,7}×{3} over a 3-bit
// domain. An (A,B)-ordered B-tree, a (B,A)-ordered B-tree and a
// quadtree-style dyadic index each certify the complement of R with a
// different collection of boxes; the dyadic index needs far fewer.
//
// Run with: go run ./examples/gapboxes
package main

import (
	"fmt"
	"log"

	"tetrisjoin"
)

func main() {
	r, err := tetrisjoin.NewRelation("R", []string{"A", "B"}, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []uint64{1, 3, 5, 7} {
		r.MustInsert(3, v)
		r.MustInsert(v, 3)
	}

	fmt.Println("Relation R(A,B) — Figure 1a:")
	plotRelation(r)

	ab, err := tetrisjoin.BTreeIndex(r, "A", "B")
	if err != nil {
		log.Fatal(err)
	}
	ba, err := tetrisjoin.BTreeIndex(r, "B", "A")
	if err != nil {
		log.Fatal(err)
	}
	dy := tetrisjoin.DyadicIndex(r)
	kd := tetrisjoin.KDTreeIndex(r)

	for _, ix := range []tetrisjoin.Index{ab, ba, dy, kd} {
		gaps := ix.AllGaps()
		fmt.Printf("\n%s: %d gap boxes\n", ix.Kind(), len(gaps))
		for _, g := range gaps {
			fmt.Printf("  %v\n", g)
		}
	}

	fmt.Println("\nThe (A,B) and (B,A) B-trees shatter the empty space into " +
		"thin order-aligned strips (Figures 1b, 3a); the dyadic index finds " +
		"big multidimensional boxes (Figure 3b). All three certify the same " +
		"region: the complement of R.")

	// Probe a point and show what each index reports. Probing goes
	// through a cursor: the index stays immutable and shareable, the
	// cursor owns the probe scratch.
	probe := []uint64{0, 6}
	fmt.Printf("\nmaximal gap boxes containing probe point (%d,%d):\n", probe[0], probe[1])
	for _, ix := range []tetrisjoin.Index{ab, ba, dy, kd} {
		fmt.Printf("  %-12s -> %v\n", ix.Kind(), ix.NewCursor().GapsAt(probe))
	}
}

func plotRelation(r *tetrisjoin.Relation) {
	fmt.Println("    B ->")
	for a := uint64(0); a < 8; a++ {
		fmt.Printf("  %d ", a)
		for b := uint64(0); b < 8; b++ {
			if r.Contains(a, b) {
				fmt.Print("● ")
			} else {
				fmt.Print("· ")
			}
		}
		fmt.Println()
	}
}
