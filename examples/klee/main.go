// Klee's measure problem over the Boolean semiring (Corollary F.8):
// decide whether a union of boxes covers the whole space, in
// Õ(|B|^{n/2}) via the load-balanced Tetris.
//
// Run with: go run ./examples/klee
package main

import (
	"fmt"
	"log"

	"tetrisjoin"
)

func mustBox(s string) tetrisjoin.Box {
	b, err := tetrisjoin.ParseBox(s)
	if err != nil {
		log.Fatal(err)
	}
	return b
}

func main() {
	depths := []uint8{8, 8, 8}

	// The Figure 5 triangle cover: six boxes that tile the whole cube.
	cover := []tetrisjoin.Box{
		mustBox("0,0,λ"), mustBox("1,1,λ"),
		mustBox("λ,0,0"), mustBox("λ,1,1"),
		mustBox("0,λ,0"), mustBox("1,λ,1"),
	}
	covered, _, err := tetrisjoin.CoversSpace(depths, cover)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("figure-5 boxes cover the 3-cube: %v\n", covered)

	// Remove one box: a hole appears and Tetris pinpoints it.
	covered, hole, err := tetrisjoin.CoversSpace(depths, cover[:5])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("five boxes cover the 3-cube:     %v (hole at %v)\n", covered, hole)

	// Certificates: the six boxes are all necessary.
	minc, err := tetrisjoin.MinimalCertificate(depths, cover)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimal certificate size:        %d of %d boxes\n", len(minc), len(cover))

	// A redundant family: 64 thin slabs plus the two halves that subsume
	// them — the certificate collapses to 2.
	var redundant []tetrisjoin.Box
	for i := uint64(0); i < 64; i++ {
		redundant = append(redundant, tetrisjoin.Box{
			tetrisjoin.Interval{Bits: i, Len: 6},
			tetrisjoin.Interval{},
			tetrisjoin.Interval{},
		})
	}
	redundant = append(redundant, mustBox("0,λ,λ"), mustBox("1,λ,λ"))
	minc, err = tetrisjoin.MinimalCertificate(depths, redundant)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("66 redundant slabs reduce to:    %d boxes\n", len(minc))
}
