// Triangle joins, worst-case optimally: the AGM-hard star instance.
//
// R = S = T = {0}×[m] ∪ [m]×{0}. Every pairwise join has Θ(m²) tuples, so
// any binary join plan materializes a quadratic intermediate — yet the
// output has only 3m-2 triangles and the AGM bound is N^{3/2}. Tetris
// (like any worst-case optimal join) avoids the blowup.
//
// Run with: go run ./examples/triangle
package main

import (
	"fmt"
	"log"

	"tetrisjoin"
)

func starRelation(name string, m uint64, d uint8) *tetrisjoin.Relation {
	r, err := tetrisjoin.NewRelation(name, []string{"x", "y"}, d)
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(0); i < m; i++ {
		r.MustInsert(0, i)
		r.MustInsert(i, 0)
	}
	return r
}

func main() {
	const d = 12
	fmt.Println("triangle query on the AGM-hard star instance")
	fmt.Printf("%8s %8s %14s %12s %14s %12s\n",
		"m", "N", "AGM bound", "output", "resolutions", "boxes")
	for _, m := range []uint64{16, 32, 64, 128, 256} {
		q, err := tetrisjoin.NewQuery(
			tetrisjoin.Atom{Relation: starRelation("R", m, d), Vars: []string{"A", "B"}},
			tetrisjoin.Atom{Relation: starRelation("S", m, d), Vars: []string{"B", "C"}},
			tetrisjoin.Atom{Relation: starRelation("T", m, d), Vars: []string{"A", "C"}},
		)
		if err != nil {
			log.Fatal(err)
		}
		agm, err := tetrisjoin.AGMBound(q)
		if err != nil {
			log.Fatal(err)
		}
		// Parallelism: 1 — the resolutions column is the paper's
		// sequential work accounting.
		res, err := tetrisjoin.Join(q, tetrisjoin.Options{Mode: tetrisjoin.Preloaded, Parallelism: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %8d %14.0f %12d %14d %12d\n",
			m, 2*m-1, agm, len(res.Tuples), res.Stats.Resolutions, res.Stats.BoxesLoaded)
	}
	fmt.Println("\nresolutions grow ~linearly in N — far below the AGM worst case")
	fmt.Println("N^{3/2} and the Θ(N²) intermediates of binary join plans.")
}
