// Beyond worst case: certificate-sized running time.
//
// The instance is the bowtie query R(A) ⋈ S(A,B) ⋈ T(B) where S is a full
// 2^{d-1} × 2^{d-1} block of tuples and R lives entirely in the other
// half of the domain, so the join is empty. The input size N = |S| grows
// ~4× with every extra bit of depth, but a two-box certificate proves
// emptiness at every size — and Tetris-Reloaded's work stays flat, while
// Tetris-Preloaded (worst-case optimal but certificate-oblivious) pays
// for reading all the gaps (Table 1, treewidth-1 row; Theorem 4.7).
//
// Run with: go run ./examples/beyondworstcase
package main

import (
	"fmt"
	"log"

	"tetrisjoin"
)

func buildBowtie(d uint8) *tetrisjoin.Query {
	h := uint64(1) << (d - 1)
	r, err := tetrisjoin.NewRelation("R", []string{"x"}, d)
	if err != nil {
		log.Fatal(err)
	}
	for v := h; v < 2*h; v++ {
		r.MustInsert(v)
	}
	s, err := tetrisjoin.NewRelation("S", []string{"x", "y"}, d)
	if err != nil {
		log.Fatal(err)
	}
	for a := uint64(0); a < h; a++ {
		for b := uint64(0); b < h; b++ {
			s.MustInsert(a, b)
		}
	}
	t, err := tetrisjoin.NewRelation("T", []string{"y"}, d)
	if err != nil {
		log.Fatal(err)
	}
	for v := uint64(0); v < h; v++ {
		t.MustInsert(v)
	}
	q, err := tetrisjoin.NewQuery(
		tetrisjoin.Atom{Relation: r, Vars: []string{"A"}},
		tetrisjoin.Atom{Relation: s, Vars: []string{"A", "B"},
			Indexes: []tetrisjoin.Index{tetrisjoin.DyadicIndex(s)}},
		tetrisjoin.Atom{Relation: t, Vars: []string{"B"}},
	)
	if err != nil {
		log.Fatal(err)
	}
	return q
}

func main() {
	fmt.Println("bowtie R(A) ⋈ S(A,B) ⋈ T(B), empty output, |C| = O(1)")
	fmt.Printf("%6s %10s | %-28s | %-28s\n", "depth", "N=|S|", "tetris-reloaded", "tetris-preloaded")
	fmt.Printf("%6s %10s | %12s %13s | %12s %13s\n", "", "", "resolutions", "boxes loaded", "resolutions", "boxes loaded")
	// Parallelism: 1 — the printed resolution/loaded-box counts are the
	// paper's sequential certificate accounting, which sharded execution
	// changes by a machine-dependent constant factor.
	for d := uint8(4); d <= 10; d++ {
		q := buildBowtie(d)
		re, err := tetrisjoin.Join(q, tetrisjoin.Options{Mode: tetrisjoin.Reloaded, Parallelism: 1})
		if err != nil {
			log.Fatal(err)
		}
		pre, err := tetrisjoin.Join(q, tetrisjoin.Options{Mode: tetrisjoin.Preloaded, Parallelism: 1})
		if err != nil {
			log.Fatal(err)
		}
		n := 1 << (2 * (d - 1))
		fmt.Printf("%6d %10d | %12d %13d | %12d %13d\n",
			d, n, re.Stats.Resolutions, re.Stats.BoxesLoaded,
			pre.Stats.Resolutions, pre.Stats.BoxesLoaded)
	}
	fmt.Println("\nReloaded touches O(|C|) boxes no matter how large S grows;")
	fmt.Println("Preloaded ingests the whole gap set up front (its guarantee is")
	fmt.Println("worst-case optimality, not instance optimality).")
}
