// Command repro regenerates every table and figure of the Tetris paper's
// results as measured scaling experiments and prints paper-vs-measured
// tables (the rows recorded in EXPERIMENTS.md).
//
// Usage:
//
//	repro            # run all experiments
//	repro T1-R2 KLEE # run selected experiment IDs
package main

import (
	"fmt"
	"os"
	"strings"

	"tetrisjoin/internal/experiments"
)

func main() {
	want := map[string]bool{}
	for _, a := range os.Args[1:] {
		want[strings.ToUpper(a)] = true
	}
	ran := 0
	for _, e := range experiments.All() {
		if len(want) > 0 && !want[strings.ToUpper(e.ID)] {
			continue
		}
		ran++
		printExperiment(e)
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched; known IDs:")
		for _, e := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %s  %s\n", e.ID, e.Artifact)
		}
		os.Exit(1)
	}
}

func printExperiment(e experiments.Experiment) {
	fmt.Printf("══ %s — %s\n", e.ID, e.Artifact)
	fmt.Printf("   claim: %s\n\n", e.Claim)
	widths := make([]int, len(e.Columns))
	for i, c := range e.Columns {
		widths[i] = len(c)
	}
	for _, row := range e.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		fmt.Print("   ")
		for i, cell := range cells {
			fmt.Printf("%-*s  ", widths[i], cell)
		}
		fmt.Println()
	}
	printRow(e.Columns)
	sep := make([]string, len(e.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("─", widths[i])
	}
	printRow(sep)
	for _, row := range e.Rows {
		printRow(row)
	}
	fmt.Println()
	for _, fnd := range e.Findings {
		fmt.Printf("   » %s\n", fnd)
	}
	fmt.Println()
}
