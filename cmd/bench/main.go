// Command bench runs the canonical benchmark suite (internal/benchio)
// and writes the performance trajectory file BENCH_tetris.json: ns/op,
// allocs/op, bytes/op and resolutions/op per benchmark. It is the way to
// regenerate the committed trajectory after a performance-relevant
// change:
//
//	go run ./cmd/bench -o BENCH_tetris.json
//
// Passing -baseline keeps a reference run in the report (the committed
// file carries the pre-optimization go.mod-only numbers), and the tool
// prints the current/baseline ratio for entries present in both.
//
// Every entry is stamped with GOMAXPROCS, the CPU count and a machine
// class label (internal/benchio.MachineClass); entries from different
// classes are kept as separate series and timing ratios are only
// printed within a class. Resolution counts are deterministic and
// machine-independent, which is what -gate keys on:
//
//	go run ./cmd/bench -bench '^PlannerSkew/' -o /tmp/gate.json -gate BENCH_tetris.json
//
// fails (exit 1) when any measured benchmark performs more than 5% more
// geometric resolutions per op than the committed trajectory records —
// the CI regression gate for the planner's skewed-workload set.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"

	"tetrisjoin/internal/benchio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		benchRe  = flag.String("bench", ".", "regexp selecting suite benchmarks to run")
		out      = flag.String("o", "BENCH_tetris.json", "output report path")
		baseFile = flag.String("baseline", "", "previous report whose entries become the baseline section")
		merge    = flag.Bool("merge", false, "keep the output file's existing entries, overwriting only the benchmarks run (for adding a filtered series without re-running the whole suite)")
		gateFile = flag.String("gate", "", "committed trajectory to gate against: exit 1 if any measured benchmark's resolutions/op exceeds its committed entry by more than -gate-slack")
		gateTol  = flag.Float64("gate-slack", 0.05, "fractional resolution regression tolerated by -gate")
	)
	flag.Parse()

	filter, err := regexp.Compile(*benchRe)
	if err != nil {
		log.Fatalf("bad -bench regexp: %v", err)
	}

	var baseline []benchio.Entry
	if *baseFile != "" {
		prev, err := benchio.ReadFile(*baseFile)
		if err != nil {
			log.Fatalf("reading baseline: %v", err)
		}
		// A report that already carries a baseline keeps it, so passing
		// the previous BENCH_tetris.json preserves the original reference
		// across regenerations; a plain report contributes its entries.
		if len(prev.Baseline) > 0 {
			baseline = prev.Baseline
		} else {
			baseline = prev.Entries
		}
	}

	run := benchio.RunSuite(filter)
	rep := run
	if *merge {
		if prev, err := benchio.ReadFile(*out); err == nil {
			if len(baseline) == 0 {
				baseline = prev.Baseline
			}
			for _, e := range run.Entries {
				prev.Set(e)
			}
			prev.GoVersion, prev.GoOS, prev.GoArch = run.GoVersion, run.GoOS, run.GoArch
			rep = prev
		}
	}
	rep.Baseline = baseline
	if err := rep.WriteFile(*out); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}

	// Timing ratios only make sense within a machine class; an entry
	// from a baseline written before classes were recorded (empty label)
	// is still matched so old trajectories stay comparable.
	base := map[string]benchio.Entry{}
	for _, e := range baseline {
		base[e.Name+"|"+e.MachineClass] = e
	}
	log.Printf("machine class %s", benchio.MachineClass())
	fmt.Fprintf(os.Stdout, "%-28s %14s %14s %12s\n", "benchmark", "ns/op", "allocs/op", "resolutions")
	for _, e := range rep.Entries {
		fmt.Fprintf(os.Stdout, "%-28s %14.0f %14.1f %12.0f\n", e.Name, e.NsPerOp, e.AllocsPerOp, e.ResolutionsPerOp)
		b, ok := base[e.Name+"|"+e.MachineClass]
		if !ok {
			b, ok = base[e.Name+"|"]
		}
		if ok && e.NsPerOp > 0 && e.AllocsPerOp > 0 {
			fmt.Fprintf(os.Stdout, "%-28s %13.2fx %13.2fx\n", "  vs baseline", b.NsPerOp/e.NsPerOp, b.AllocsPerOp/e.AllocsPerOp)
		}
	}
	log.Printf("wrote %s (%d entries)", *out, len(rep.Entries))

	if *gateFile != "" {
		gate(run, *gateFile, *gateTol)
	}
}

// gate holds the measured run's resolution counts to the committed
// trajectory: resolutions are deterministic for a fixed workload and
// plan, so any excess over the committed entry (beyond slack) is a real
// planner regression, not machine noise. When the committed file holds
// the same name for several machine classes the smallest count is the
// bar. Exits non-zero on the first failing report.
func gate(run *benchio.Report, path string, slack float64) {
	ref, err := benchio.ReadFile(path)
	if err != nil {
		log.Fatalf("reading gate trajectory: %v", err)
	}
	committed := map[string]float64{}
	for _, e := range ref.Entries {
		if e.ResolutionsPerOp <= 0 {
			continue
		}
		if cur, ok := committed[e.Name]; !ok || e.ResolutionsPerOp < cur {
			committed[e.Name] = e.ResolutionsPerOp
		}
	}
	checked, failed := 0, 0
	for _, e := range run.Entries {
		want, ok := committed[e.Name]
		if !ok || e.ResolutionsPerOp <= 0 {
			continue
		}
		checked++
		if e.ResolutionsPerOp > want*(1+slack) {
			log.Printf("gate FAIL %s: %.0f resolutions/op vs committed %.0f (%+.1f%%, slack %.0f%%)",
				e.Name, e.ResolutionsPerOp, want, 100*(e.ResolutionsPerOp/want-1), 100*slack)
			failed++
		}
	}
	if checked == 0 {
		log.Fatalf("gate: no measured benchmark has a committed resolutions entry in %s", path)
	}
	if failed > 0 {
		log.Fatalf("gate: %d of %d benchmarks regressed past the committed resolution trajectory", failed, checked)
	}
	log.Printf("gate: %d benchmarks within %.0f%% of the committed resolution trajectory", checked, 100*slack)
}
