// Command bench runs the canonical benchmark suite (internal/benchio)
// and writes the performance trajectory file BENCH_tetris.json: ns/op,
// allocs/op, bytes/op and resolutions/op per benchmark. It is the way to
// regenerate the committed trajectory after a performance-relevant
// change:
//
//	go run ./cmd/bench -o BENCH_tetris.json
//
// Passing -baseline keeps a reference run in the report (the committed
// file carries the pre-optimization go.mod-only numbers), and the tool
// prints the current/baseline ratio for entries present in both.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"

	"tetrisjoin/internal/benchio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		benchRe  = flag.String("bench", ".", "regexp selecting suite benchmarks to run")
		out      = flag.String("o", "BENCH_tetris.json", "output report path")
		baseFile = flag.String("baseline", "", "previous report whose entries become the baseline section")
		merge    = flag.Bool("merge", false, "keep the output file's existing entries, overwriting only the benchmarks run (for adding a filtered series without re-running the whole suite)")
	)
	flag.Parse()

	filter, err := regexp.Compile(*benchRe)
	if err != nil {
		log.Fatalf("bad -bench regexp: %v", err)
	}

	var baseline []benchio.Entry
	if *baseFile != "" {
		prev, err := benchio.ReadFile(*baseFile)
		if err != nil {
			log.Fatalf("reading baseline: %v", err)
		}
		// A report that already carries a baseline keeps it, so passing
		// the previous BENCH_tetris.json preserves the original reference
		// across regenerations; a plain report contributes its entries.
		if len(prev.Baseline) > 0 {
			baseline = prev.Baseline
		} else {
			baseline = prev.Entries
		}
	}

	rep := benchio.RunSuite(filter)
	if *merge {
		if prev, err := benchio.ReadFile(*out); err == nil {
			if len(baseline) == 0 {
				baseline = prev.Baseline
			}
			for _, e := range rep.Entries {
				prev.Set(e)
			}
			prev.GoVersion, prev.GoOS, prev.GoArch = rep.GoVersion, rep.GoOS, rep.GoArch
			rep = prev
		}
	}
	rep.Baseline = baseline
	if err := rep.WriteFile(*out); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}

	base := map[string]benchio.Entry{}
	for _, e := range baseline {
		base[e.Name] = e
	}
	fmt.Fprintf(os.Stdout, "%-28s %14s %14s %12s\n", "benchmark", "ns/op", "allocs/op", "resolutions")
	for _, e := range rep.Entries {
		fmt.Fprintf(os.Stdout, "%-28s %14.0f %14.1f %12.0f\n", e.Name, e.NsPerOp, e.AllocsPerOp, e.ResolutionsPerOp)
		if b, ok := base[e.Name]; ok && e.NsPerOp > 0 && e.AllocsPerOp > 0 {
			fmt.Fprintf(os.Stdout, "%-28s %13.2fx %13.2fx\n", "  vs baseline", b.NsPerOp/e.NsPerOp, b.AllocsPerOp/e.AllocsPerOp)
		}
	}
	log.Printf("wrote %s (%d entries)", *out, len(rep.Entries))
}
