// Command bench runs the canonical benchmark suite (internal/benchio)
// and writes the performance trajectory file BENCH_tetris.json: ns/op,
// allocs/op, bytes/op and resolutions/op per benchmark. It is the way to
// regenerate the committed trajectory after a performance-relevant
// change:
//
//	go run ./cmd/bench -o BENCH_tetris.json
//
// Passing -baseline keeps a reference run in the report (the committed
// file carries the pre-optimization go.mod-only numbers), and the tool
// prints the current/baseline ratio for entries present in both.
//
// Every entry is stamped with GOMAXPROCS, the CPU count and a machine
// class label (internal/benchio.MachineClass); entries from different
// classes are kept as separate series and timing ratios are only
// printed within a class. Resolution counts are deterministic and
// machine-independent, which is what -gate keys on:
//
//	go run ./cmd/bench -bench '^PlannerSkew/' -o /tmp/gate.json -gate BENCH_tetris.json
//
// fails (exit 1) when any measured benchmark performs more than 5% more
// geometric resolutions per op than the committed trajectory records —
// the CI regression gate for the planner's skewed-workload set.
//
// Two further gates complement it. -gate-time holds ns/op to the
// committed trajectory, but only within the recorded machine class
// (wall time does not compare across hardware); its slack defaults per
// class from the core count, fewer cores tolerating more noise. And
//
//	go run ./cmd/bench -bench '^Balance/' -o /tmp/balance.json -gate-balance 1.5
//
// runs the work-stealing balance series and fails unless, for every
// Balance/<family> pair, static sharding's max/mean worker resolution
// share is at least the given factor times the stealing share — the
// self-contained regression gate for the dynamic-splitting executor
// (both sides are measured in the same run, so no committed reference
// or machine-class match is needed).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"

	"tetrisjoin/internal/benchio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		benchRe  = flag.String("bench", ".", "regexp selecting suite benchmarks to run")
		out      = flag.String("o", "BENCH_tetris.json", "output report path")
		baseFile = flag.String("baseline", "", "previous report whose entries become the baseline section")
		merge    = flag.Bool("merge", false, "keep the output file's existing entries, overwriting only the benchmarks run (for adding a filtered series without re-running the whole suite)")
		gateFile = flag.String("gate", "", "committed trajectory to gate against: exit 1 if any measured benchmark's resolutions/op exceeds its committed entry by more than -gate-slack")
		gateTol  = flag.Float64("gate-slack", 0.05, "fractional resolution regression tolerated by -gate")
		gateTime = flag.String("gate-time", "", "committed trajectory to time-gate against: exit 1 if any measured benchmark's ns/op exceeds the committed entry of the SAME machine class by more than -gate-time-slack (entries with no same-class committed record are skipped)")
		timeTol  = flag.Float64("gate-time-slack", 0, "fractional ns/op regression tolerated by -gate-time; 0 picks a per-class default from the class's core count (fewer cores = noisier timings = more slack)")
		gateBal  = flag.Float64("gate-balance", 0, "balance-gate factor: for every Balance/<family> pair measured in this run, require static balance share >= factor × stealing share; exit 1 otherwise (0 disables)")
		gateBld  = flag.String("gate-builds", "", "committed trajectory to build-gate against: exit 1 if any measured Recovery/* benchmark's index_builds_per_op differs from the committed entry — build counts are deterministic, so the committed Recovery/segment value of 0 pins rebuild-free recovery exactly")
	)
	flag.Parse()

	filter, err := regexp.Compile(*benchRe)
	if err != nil {
		log.Fatalf("bad -bench regexp: %v", err)
	}

	var baseline []benchio.Entry
	if *baseFile != "" {
		prev, err := benchio.ReadFile(*baseFile)
		if err != nil {
			log.Fatalf("reading baseline: %v", err)
		}
		// A report that already carries a baseline keeps it, so passing
		// the previous BENCH_tetris.json preserves the original reference
		// across regenerations; a plain report contributes its entries.
		if len(prev.Baseline) > 0 {
			baseline = prev.Baseline
		} else {
			baseline = prev.Entries
		}
	}

	run := benchio.RunSuite(filter)
	rep := run
	if *merge {
		if prev, err := benchio.ReadFile(*out); err == nil {
			if len(baseline) == 0 {
				baseline = prev.Baseline
			}
			for _, e := range run.Entries {
				prev.Set(e)
			}
			prev.GoVersion, prev.GoOS, prev.GoArch = run.GoVersion, run.GoOS, run.GoArch
			rep = prev
		}
	}
	rep.Baseline = baseline
	if err := rep.WriteFile(*out); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}

	// Timing ratios only make sense within a machine class; an entry
	// from a baseline written before classes were recorded (empty label)
	// is still matched so old trajectories stay comparable.
	base := map[string]benchio.Entry{}
	for _, e := range baseline {
		base[e.Name+"|"+e.MachineClass] = e
	}
	log.Printf("machine class %s", benchio.MachineClass())
	fmt.Fprintf(os.Stdout, "%-28s %14s %14s %12s\n", "benchmark", "ns/op", "allocs/op", "resolutions")
	for _, e := range rep.Entries {
		fmt.Fprintf(os.Stdout, "%-28s %14.0f %14.1f %12.0f\n", e.Name, e.NsPerOp, e.AllocsPerOp, e.ResolutionsPerOp)
		b, ok := base[e.Name+"|"+e.MachineClass]
		if !ok {
			b, ok = base[e.Name+"|"]
		}
		if ok && e.NsPerOp > 0 && e.AllocsPerOp > 0 {
			fmt.Fprintf(os.Stdout, "%-28s %13.2fx %13.2fx\n", "  vs baseline", b.NsPerOp/e.NsPerOp, b.AllocsPerOp/e.AllocsPerOp)
		}
	}
	log.Printf("wrote %s (%d entries)", *out, len(rep.Entries))

	if *gateFile != "" {
		gate(run, *gateFile, *gateTol)
	}
	if *gateTime != "" {
		gateTiming(run, *gateTime, *timeTol)
	}
	if *gateBal > 0 {
		gateBalance(run, *gateBal)
	}
	if *gateBld != "" {
		gateBuilds(run, *gateBld)
	}
}

// gateBuilds holds the measured Recovery series' index-build counts to
// the committed trajectory exactly: unlike timings, the number of
// indexes a recovery path constructs is a deterministic function of the
// image, so any difference is a protocol change, not noise. In
// particular the committed Recovery/segment entry records 0 builds —
// this gate is what keeps segment-backed recovery rebuild-free in CI.
func gateBuilds(run *benchio.Report, path string) {
	ref, err := benchio.ReadFile(path)
	if err != nil {
		log.Fatalf("reading gate-builds trajectory: %v", err)
	}
	committed := map[string]float64{}
	for _, e := range ref.Entries {
		if strings.HasPrefix(e.Name, "Recovery/") {
			committed[e.Name] = e.IndexBuildsPerOp
		}
	}
	checked, failed := 0, 0
	for _, e := range run.Entries {
		if !strings.HasPrefix(e.Name, "Recovery/") {
			continue
		}
		want, ok := committed[e.Name]
		if !ok {
			log.Printf("gate-builds: %s has no committed entry; skipped", e.Name)
			continue
		}
		checked++
		if e.IndexBuildsPerOp != want {
			log.Printf("gate-builds FAIL %s: %.0f index builds/op vs committed %.0f",
				e.Name, e.IndexBuildsPerOp, want)
			failed++
		}
	}
	if checked == 0 {
		log.Fatalf("gate-builds: no measured Recovery/* benchmark has a committed entry in %s", path)
	}
	if failed > 0 {
		log.Fatalf("gate-builds: %d of %d recovery paths changed their index-build count", failed, checked)
	}
	log.Printf("gate-builds: %d recovery paths match the committed build counts exactly", checked)
}

// gate holds the measured run's resolution counts to the committed
// trajectory: resolutions are deterministic for a fixed workload and
// plan, so any excess over the committed entry (beyond slack) is a real
// planner regression, not machine noise. When the committed file holds
// the same name for several machine classes the smallest count is the
// bar. Exits non-zero on the first failing report.
func gate(run *benchio.Report, path string, slack float64) {
	ref, err := benchio.ReadFile(path)
	if err != nil {
		log.Fatalf("reading gate trajectory: %v", err)
	}
	committed := map[string]float64{}
	for _, e := range ref.Entries {
		if e.ResolutionsPerOp <= 0 {
			continue
		}
		if cur, ok := committed[e.Name]; !ok || e.ResolutionsPerOp < cur {
			committed[e.Name] = e.ResolutionsPerOp
		}
	}
	checked, failed := 0, 0
	for _, e := range run.Entries {
		want, ok := committed[e.Name]
		if !ok || e.ResolutionsPerOp <= 0 {
			continue
		}
		checked++
		if e.ResolutionsPerOp > want*(1+slack) {
			log.Printf("gate FAIL %s: %.0f resolutions/op vs committed %.0f (%+.1f%%, slack %.0f%%)",
				e.Name, e.ResolutionsPerOp, want, 100*(e.ResolutionsPerOp/want-1), 100*slack)
			failed++
		}
	}
	if checked == 0 {
		log.Fatalf("gate: no measured benchmark has a committed resolutions entry in %s", path)
	}
	if failed > 0 {
		log.Fatalf("gate: %d of %d benchmarks regressed past the committed resolution trajectory", failed, checked)
	}
	log.Printf("gate: %d benchmarks within %.0f%% of the committed resolution trajectory", checked, 100*slack)
}

// classSlack picks the default ns/op tolerance for a machine class from
// its core count (the "-cN" suffix of derived class labels): small
// machines time noisily — a 1-core runner shares its only core with the
// GC and the OS — so they get more room; wide machines hold a tighter
// bar. Classes without a parsable core count get the middle default.
func classSlack(class string) float64 {
	i := strings.LastIndex(class, "-c")
	if i < 0 {
		return 0.5
	}
	cores, err := strconv.Atoi(class[i+2:])
	if err != nil || cores < 1 {
		return 0.5
	}
	switch {
	case cores == 1:
		return 0.6
	case cores <= 4:
		return 0.5
	default:
		return 0.4
	}
}

// gateTiming holds the measured run's ns/op to the committed trajectory
// — but, unlike the resolution gate, only within the recorded machine
// class: wall time is not comparable across hardware, so an entry whose
// class has no committed record is skipped (reported, not failed).
// slack 0 applies classSlack's per-class default.
func gateTiming(run *benchio.Report, path string, slack float64) {
	ref, err := benchio.ReadFile(path)
	if err != nil {
		log.Fatalf("reading gate-time trajectory: %v", err)
	}
	committed := map[string]float64{}
	for _, e := range ref.Entries {
		if e.NsPerOp > 0 && e.MachineClass != "" {
			committed[e.Name+"|"+e.MachineClass] = e.NsPerOp
		}
	}
	checked, skipped, failed := 0, 0, 0
	for _, e := range run.Entries {
		if e.NsPerOp <= 0 {
			continue
		}
		want, ok := committed[e.Name+"|"+e.MachineClass]
		if !ok {
			skipped++
			continue
		}
		tol := slack
		if tol == 0 {
			tol = classSlack(e.MachineClass)
		}
		checked++
		if e.NsPerOp > want*(1+tol) {
			log.Printf("gate-time FAIL %s [%s]: %.0f ns/op vs committed %.0f (%+.1f%%, slack %.0f%%)",
				e.Name, e.MachineClass, e.NsPerOp, want, 100*(e.NsPerOp/want-1), 100*tol)
			failed++
		}
	}
	if skipped > 0 {
		log.Printf("gate-time: %d entries have no committed timing for this machine class; skipped", skipped)
	}
	if failed > 0 {
		log.Fatalf("gate-time: %d of %d benchmarks regressed past the committed class timing", failed, checked)
	}
	log.Printf("gate-time: %d benchmarks within the class timing trajectory", checked)
}

// gateBalance checks the work-stealing executor's reason to exist: for
// every Balance/<family> static/stealing pair measured in THIS run (no
// committed reference needed — both sides ran on the same machine), the
// static max/mean worker share must be at least factor × the stealing
// share. Fails when no pair was measured, so a filter typo cannot pass
// the gate vacuously.
func gateBalance(run *benchio.Report, factor float64) {
	type pair struct{ static, stealing float64 }
	fams := map[string]*pair{}
	for _, e := range run.Entries {
		var fam string
		var static bool
		switch {
		case strings.HasPrefix(e.Name, "Balance/") && strings.HasSuffix(e.Name, "/static"):
			fam, static = strings.TrimSuffix(strings.TrimPrefix(e.Name, "Balance/"), "/static"), true
		case strings.HasPrefix(e.Name, "Balance/") && strings.HasSuffix(e.Name, "/stealing"):
			fam = strings.TrimSuffix(strings.TrimPrefix(e.Name, "Balance/"), "/stealing")
		default:
			continue
		}
		p := fams[fam]
		if p == nil {
			p = &pair{}
			fams[fam] = p
		}
		if static {
			p.static = e.Balance
		} else {
			p.stealing = e.Balance
		}
	}
	checked, failed := 0, 0
	for fam, p := range fams {
		if p.static <= 0 || p.stealing <= 0 {
			log.Printf("gate-balance: family %s missing a side (static=%.2f stealing=%.2f); skipped", fam, p.static, p.stealing)
			continue
		}
		checked++
		ratio := p.static / p.stealing
		if ratio < factor {
			log.Printf("gate-balance FAIL %s: static share %.2f / stealing share %.2f = %.2fx, want >= %.2fx",
				fam, p.static, p.stealing, ratio, factor)
			failed++
		} else {
			log.Printf("gate-balance: %s static %.2f vs stealing %.2f (%.2fx)", fam, p.static, p.stealing, ratio)
		}
	}
	if checked == 0 {
		log.Fatalf("gate-balance: no complete Balance/<family> static/stealing pair was measured")
	}
	if failed > 0 {
		log.Fatalf("gate-balance: %d of %d families below the %.2fx balance-improvement floor", failed, checked, factor)
	}
	log.Printf("gate-balance: %d families clear the %.2fx floor", checked, factor)
}
