// Command tetris evaluates natural join queries over CSV relations with
// the Tetris algorithm.
//
// Usage:
//
//	tetris -rel R=edges.csv -rel S=edges.csv \
//	       -query "R(A,B), S(B,C)" [-mode reloaded] [-sao A,B,C] [-stats]
//
// Each CSV file holds one tuple per line, comma-separated. Values may be
// arbitrary strings; every attribute's values are dictionary-encoded onto
// an ordered integer domain.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"tetrisjoin"
	"tetrisjoin/internal/core"
)

type relFlags []string

func (r *relFlags) String() string { return strings.Join(*r, ",") }
func (r *relFlags) Set(s string) error {
	*r = append(*r, s)
	return nil
}

func main() {
	var rels relFlags
	flag.Var(&rels, "rel", "NAME=FILE relation binding (repeatable)")
	query := flag.String("query", "", `query, e.g. "R(A,B), S(B,C)"`)
	mode := flag.String("mode", "reloaded", "tetris variant: reloaded|preloaded|reloaded-lb|preloaded-lb")
	sao := flag.String("sao", "", "comma-separated splitting attribute order (optional)")
	stats := flag.Bool("stats", false, "print work statistics to stderr")
	limit := flag.Int("limit", 0, "stop after this many output tuples (0 = all)")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 or 1 = sequential streaming; >1 shards the query across workers, buffering each shard's tuples); output order is identical at any worker count, though >1 with -limit may return a different (still ordered) subset per run")
	explain := flag.Bool("explain", false, "print the evaluation plan instead of running the query")
	count := flag.Bool("count", false, "print the exact output cardinality instead of the tuples")
	flag.Parse()

	if *query == "" || len(rels) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(rels, *query, *mode, *sao, *stats, *limit, *parallel, *explain, *count); err != nil {
		fmt.Fprintln(os.Stderr, "tetris:", err)
		os.Exit(1)
	}
}

func run(rels []string, query, modeName, sao string, stats bool, limit, parallel int, explain, count bool) error {
	// First pass: gather attribute values per relation column so each
	// query variable's domain can be encoded consistently. Columns are
	// matched to variables by the query, so parse it structurally first.
	files := map[string]string{}
	for _, spec := range rels {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -rel %q, want NAME=FILE", spec)
		}
		files[name] = file
	}

	// Load raw rows.
	raw := map[string][][]string{}
	for name, file := range files {
		rows, err := readCSV(file)
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		raw[name] = rows
	}

	// A single global encoder keeps all attributes comparable; join
	// variables shared between relations must agree on coding anyway.
	enc := tetrisjoin.NewEncoder()
	for _, rows := range raw {
		for _, row := range rows {
			for _, cell := range row {
				enc.Add(cell)
			}
		}
	}
	depth := enc.Freeze()

	catalog := map[string]*tetrisjoin.Relation{}
	for name, rows := range raw {
		if len(rows) == 0 {
			return fmt.Errorf("relation %s is empty", name)
		}
		arity := len(rows[0])
		attrs := make([]string, arity)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("c%d", i+1)
		}
		rel, err := tetrisjoin.NewRelation(name, attrs, depth)
		if err != nil {
			return err
		}
		for _, row := range rows {
			if len(row) != arity {
				return fmt.Errorf("relation %s has ragged rows (%d vs %d columns)", name, len(row), arity)
			}
			vals := make([]uint64, arity)
			for i, cell := range row {
				v, err := enc.Code(cell)
				if err != nil {
					return err
				}
				vals[i] = v
			}
			if err := rel.Insert(vals...); err != nil {
				return err
			}
		}
		catalog[name] = rel
	}

	q, err := tetrisjoin.ParseQuery(query, catalog)
	if err != nil {
		return err
	}
	opts := tetrisjoin.Options{MaxOutput: limit, Parallelism: parallel}
	mode, err := core.ParseMode(modeName)
	if err != nil {
		return err
	}
	opts.Mode = mode
	if sao != "" {
		opts.SAOVars = strings.Split(sao, ",")
	}

	if explain {
		ex, err := tetrisjoin.Explain(q, opts)
		if err != nil {
			return err
		}
		fmt.Print(ex)
		return nil
	}
	if count {
		size, err := tetrisjoin.JoinSize(q, opts)
		if err != nil {
			return err
		}
		fmt.Println(size)
		return nil
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	opts.OnOutput = func(tuple []uint64) bool {
		cells := make([]string, len(tuple))
		for i, v := range tuple {
			s, err := enc.Value(v)
			if err != nil {
				s = fmt.Sprint(v)
			}
			cells[i] = s
		}
		fmt.Fprintln(out, strings.Join(cells, ","))
		return true
	}
	res, err := tetrisjoin.Join(q, opts)
	if err != nil {
		return err
	}
	if stats {
		fmt.Fprintf(os.Stderr, "vars=%v sao=%v outputs=%d resolutions=%d boxes=%d oracle=%d\n",
			res.Vars, res.SAO, res.Stats.Outputs, res.Stats.Resolutions,
			res.Stats.BoxesLoaded, res.Stats.OracleCalls)
	}
	return nil
}

func readCSV(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows [][]string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cells := strings.Split(line, ",")
		for i := range cells {
			cells[i] = strings.TrimSpace(cells[i])
		}
		rows = append(rows, cells)
	}
	return rows, sc.Err()
}
