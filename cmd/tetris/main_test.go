package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadCSV(t *testing.T) {
	path := writeFile(t, "r.csv", "a, b\n# comment\n\nc,d\n")
	rows, err := readCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != "a" || rows[0][1] != "b" || rows[1][1] != "d" {
		t.Fatalf("rows = %v", rows)
	}
	if _, err := readCSV(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	edges := writeFile(t, "edges.csv", "a,b\nb,c\na,c\nc,d\n")
	if err := run([]string{"E=" + edges}, "E(X,Y), E(Y,Z), E(X,Z)", "reloaded", "", true, 0, 0, false, false); err != nil {
		t.Fatal(err)
	}
	// All modes work.
	for _, mode := range []string{"preloaded", "reloaded-lb", "preloaded-lb"} {
		if err := run([]string{"E=" + edges}, "E(X,Y), E(Y,Z), E(X,Z)", mode, "", false, 0, 0, false, false); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
	}
	// Explain and count modes.
	if err := run([]string{"E=" + edges}, "E(X,Y), E(Y,Z), E(X,Z)", "reloaded", "", false, 0, 0, true, false); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"E=" + edges}, "E(X,Y), E(Y,Z), E(X,Z)", "reloaded", "", false, 0, 0, false, true); err != nil {
		t.Fatal(err)
	}
	// Explicit SAO.
	if err := run([]string{"E=" + edges}, "E(X,Y), E(Y,Z), E(X,Z)", "reloaded", "Z,Y,X", false, 2, 0, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	edges := writeFile(t, "edges.csv", "a,b\n")
	ragged := writeFile(t, "ragged.csv", "a,b\nc\n")
	empty := writeFile(t, "empty.csv", "# nothing\n")
	cases := []struct {
		name  string
		rels  []string
		query string
		mode  string
		sao   string
	}{
		{"bad-rel-spec", []string{"E"}, "E(X,Y)", "reloaded", ""},
		{"missing-file", []string{"E=/does/not/exist.csv"}, "E(X,Y)", "reloaded", ""},
		{"unknown-relation", []string{"E=" + edges}, "Q(X,Y)", "reloaded", ""},
		{"bad-mode", []string{"E=" + edges}, "E(X,Y)", "warp", ""},
		{"ragged", []string{"E=" + ragged}, "E(X,Y)", "reloaded", ""},
		{"empty-relation", []string{"E=" + empty}, "E(X,Y)", "reloaded", ""},
		{"bad-sao", []string{"E=" + edges}, "E(X,Y)", "reloaded", "X"},
	}
	for _, c := range cases {
		if err := run(c.rels, c.query, c.mode, c.sao, false, 0, 0, false, false); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
