// Command fuzz runs a differential fuzzing campaign offline: it
// generates random join queries and box cover instances from a seed,
// executes each through every engine configuration (Tetris modes × SAO
// permutations × shard/worker settings, counting and Boolean variants,
// plus the classical baselines), and cross-checks the results. On the
// first discrepancy it greedily shrinks the case to a minimal repro,
// prints it, optionally writes it into a corpus directory, and exits
// non-zero.
//
// Usage:
//
//	fuzz -n 500 -seed 1                  # 500 cases from seed 1
//	fuzz -n 100 -kind bcp -timeout 30s   # box cover cases only, bounded
//	fuzz -n 500 -kind crash              # WAL crash-recovery campaign
//	fuzz -n 50 -fault                    # self-test: inject a fault,
//	                                     # expect it caught and shrunk
//	fuzz -corpus internal/fuzz/testdata/corpus  # write repros there
//
// The same pipeline runs continuously as `go test -fuzz` targets in
// internal/fuzz; this command is for long campaigns with a fixed case
// budget and a wall-clock bound.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"tetrisjoin/internal/fuzz"
)

func main() {
	var (
		n       = flag.Int("n", 200, "number of cases to generate and check")
		seed    = flag.Int64("seed", 1, "base generator seed; case i uses seed+i")
		timeout = flag.Duration("timeout", 0, "stop after this much wall-clock time (0 = no limit)")
		kind    = flag.String("kind", "both", "case kind: query, bcp, both, crash (WAL crash-recovery only), or planner (planner differential only)")
		corpus  = flag.String("corpus", "", "directory to write shrunk repros into (default: print only)")
		fault   = flag.Bool("fault", false, "inject the drop-largest-gap-box fault (pipeline self-test: discrepancies are expected)")
		verbose = flag.Bool("v", false, "log every case")
	)
	flag.Parse()

	var kinds []fuzz.Kind
	crashOnly, plannerOnly := false, false
	switch *kind {
	case "query":
		kinds = []fuzz.Kind{fuzz.QueryKind}
	case "bcp":
		kinds = []fuzz.Kind{fuzz.BCPKind}
	case "both":
		kinds = []fuzz.Kind{fuzz.QueryKind, fuzz.BCPKind}
	case "crash":
		// Crash-recovery campaign: query cases driven through a
		// WAL-backed catalog with truncation/corruption/failed-sync
		// crashes, checked against the durably-acknowledged oracle.
		kinds = []fuzz.Kind{fuzz.QueryKind}
		crashOnly = true
	case "planner":
		// Planner-differential campaign: the fixed workload-family panel
		// first, then random query cases, all through the planner
		// transparency checks only.
		kinds = []fuzz.Kind{fuzz.QueryKind}
		plannerOnly = true
	default:
		fmt.Fprintf(os.Stderr, "fuzz: unknown -kind %q (want query, bcp, both, crash or planner)\n", *kind)
		os.Exit(2)
	}

	ck := fuzz.NewChecker()
	ck.CrashOnly = crashOnly
	ck.PlannerOnly = plannerOnly
	if *fault {
		ck.WrapOracle = fuzz.DropLargestGap
	}

	start := time.Now()
	checked := 0
	if plannerOnly {
		for _, c := range fuzz.PlannerFamilies() {
			if *verbose {
				fmt.Printf("family %s\n", c.Name)
			}
			d, err := ck.Check(c)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fuzz: invalid family case %s: %v\n", c.Name, err)
				os.Exit(2)
			}
			checked++
			if d != nil {
				fmt.Fprintf(os.Stderr, "fuzz: DISCREPANCY on %s\n  %v\n", c.Name, d)
				os.Exit(1)
			}
		}
	}
	for i := 0; i < *n; i++ {
		if *timeout > 0 && time.Since(start) > *timeout {
			fmt.Printf("fuzz: timeout after %d of %d cases\n", checked, *n)
			break
		}
		for _, k := range kinds {
			c := fuzz.GenCase(rand.New(rand.NewSource(*seed+int64(i))), k)
			c.Name = fmt.Sprintf("%s-seed%d", c.Name, *seed+int64(i))
			if *verbose {
				fmt.Printf("case %d/%d %s\n", i+1, *n, c.Name)
			}
			d, err := ck.Check(c)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fuzz: generator bug: invalid case %s: %v\n%s", c.Name, err, c.Marshal())
				os.Exit(2)
			}
			checked++
			if d == nil {
				continue
			}
			fmt.Fprintf(os.Stderr, "fuzz: DISCREPANCY on %s after %d cases (%v)\n  %v\n  shrinking...\n",
				c.Name, checked, time.Since(start).Round(time.Millisecond), d)
			shrunk := fuzz.Shrink(c, func(x fuzz.Case) bool {
				dd, err := ck.Check(x)
				return err == nil && dd != nil
			})
			dd, _ := ck.Check(shrunk)
			fmt.Fprintf(os.Stderr, "  minimal repro (%v):\n%s", dd, shrunk.Marshal())
			if *corpus != "" && *fault {
				// An injected-fault repro pins nothing — the real engines
				// agree on it — so it must never dilute the regression
				// corpus.
				fmt.Fprintln(os.Stderr, "  -fault repro NOT written to corpus (not a real engine bug)")
			} else if *corpus != "" {
				path, err := fuzz.WriteCase(*corpus, shrunk)
				if err != nil {
					fmt.Fprintf(os.Stderr, "fuzz: writing repro: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "  repro written to %s\n", path)
				}
			}
			os.Exit(1)
		}
	}
	if *fault {
		// The self-test only passes by NOT reaching this point: a caught
		// fault exits above with the shrunk repro. Surviving the whole
		// campaign means the differential matrix is blind to a missing
		// gap box — the pipeline itself is broken.
		fmt.Fprintf(os.Stderr, "fuzz: self-test FAILED: injected fault went uncaught across %d cases\n", checked)
		os.Exit(1)
	}
	fmt.Printf("fuzz: %d cases, zero discrepancies (%v, seed %d)\n",
		checked, time.Since(start).Round(time.Millisecond), *seed)
}
