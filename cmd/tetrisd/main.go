// Command tetrisd serves the Tetris join engine over a line-oriented
// JSON protocol: a long-lived catalog of named, versioned relations
// with warm indexes and a prepared-plan cache, driven by load / append
// / delete / query / prepare / maintain / exec / stats requests.
//
// By default it speaks the protocol on stdin/stdout (one session):
//
//	printf '%s\n' \
//	  '{"op":"load","name":"R","attrs":["s","d"],"depth":4,"tuples":[[1,2],[2,3],[1,3]]}' \
//	  '{"op":"prepare","id":"tri","query":"R(A,B), R(B,C), R(A,C)","mode":"preloaded"}' \
//	  '{"op":"exec","id":"tri"}' \
//	  '{"op":"stats"}' | tetrisd
//
// A maintained statement ({"op":"maintain","id":…,"query":…}) keeps
// its materialized result alive across appends and deletes: exec after
// a write patches the result from the delta (the response reports
// "refresh":"patched" and delta-sized index_builds) instead of
// re-executing — the steady-state serving mode under a trickle of
// writes.
//
// With -addr it listens on TCP, one session per connection, all
// sessions sharing the catalog (and therefore its relations, indexes
// and plan cache):
//
//	tetrisd -addr :7423
//
// With -data-dir the catalog is durable: every acknowledged mutation is
// write-ahead logged and fsynced before its response, checkpoints bound
// replay cost, and a restart recovers relations, indexes and maintained
// statements exactly as acknowledged. SIGINT/SIGTERM trigger a graceful
// drain (bounded by -drain-timeout) before the process exits.
//
// With -metrics-addr the process serves /metrics in Prometheus text
// format: engine counters (resolutions, index builds, plan cache,
// replans), WAL position, admission queue depth and wait time, and
// per-query-shape latency histograms with p50/p95/p99 gauges. The
// server sheds executions with an "overloaded" error when the admission
// wait queue (-max-queue) is full, and disconnects peers that stop
// draining their output (-output-buffer lines of slack, -write-stall
// patience) with an explicit "slow consumer" error.
//
// Responses are one JSON object per line; executions stream their
// output as {"tuple":[…]} lines before the final response. See
// internal/server for the full protocol.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/durable"
	"tetrisjoin/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "", "TCP listen address (empty: serve one session on stdin/stdout)")
		dataDir      = flag.String("data-dir", "", "directory for the write-ahead log and checkpoints (empty: in-memory only)")
		planCache    = flag.Int("plan-cache", 0, "prepared plans kept in the LRU (0 = default 64, negative disables)")
		maxConc      = flag.Int("max-concurrent", 1, "engine executions admitted at once across sessions")
		parallelism  = flag.Int("parallel", 1, "engine worker goroutines per execution")
		maxRes       = flag.Int64("session-max-resolutions", 0, "per-session geometric-resolution budget (0 = unlimited)")
		maxOut       = flag.Int("session-max-output", 0, "per-session output-tuple budget (0 = unlimited)")
		ckptEvery    = flag.Int("checkpoint-every", 0, "WAL records between checkpoints (0 = default 256, negative disables)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "close connections silent for this long (0 = never)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown budget for in-flight requests")
		metricsAddr  = flag.String("metrics-addr", "", "HTTP listen address for /metrics in Prometheus text format (empty: disabled)")
		maxQueue     = flag.Int("max-queue", 0, "executions that may wait for an engine slot before arrivals are shed (0 = 4×max-concurrent, negative = shed immediately)")
		outputBuffer = flag.Int("output-buffer", 0, "per-session output buffer in lines before slow-consumer backpressure (0 = default 256)")
		writeStall   = flag.Duration("write-stall", 0, "how long a session's output may stall on a full buffer before the peer is disconnected as a slow consumer (0 = default 5s)")
	)
	flag.Parse()

	catOpts := catalog.Options{PlanCache: *planCache}
	cfg := server.Config{
		MaxConcurrent:         *maxConc,
		Parallelism:           *parallelism,
		SessionMaxResolutions: *maxRes,
		SessionMaxOutput:      *maxOut,
		IdleTimeout:           *idleTimeout,
		MaxQueue:              *maxQueue,
		OutputBuffer:          *outputBuffer,
		WriteStallTimeout:     *writeStall,
	}

	var srv *server.Server
	var dur *durable.Catalog
	if *dataDir != "" {
		var err error
		dur, err = durable.Open(*dataDir, durable.Options{
			Catalog:         catOpts,
			CheckpointEvery: *ckptEvery,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "tetrisd: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tetrisd:", err)
			os.Exit(1)
		}
		srv = server.NewDurable(dur, cfg)
	} else {
		srv = server.New(catalog.NewWithOptions(catOpts), cfg)
	}
	defer srv.Close()

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tetrisd: metrics:", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.MetricsHandler())
		fmt.Fprintln(os.Stderr, "tetrisd: metrics on", ml.Addr())
		go func() {
			if err := http.Serve(ml, mux); err != nil {
				fmt.Fprintln(os.Stderr, "tetrisd: metrics:", err)
			}
		}()
	}

	// Graceful drain on SIGINT/SIGTERM: stop accepting, let in-flight
	// requests finish (acknowledged mutations are already synced — the
	// ack happens inside the request), then close the durable catalog.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	drained := make(chan struct{})
	var sigSeen atomic.Bool
	go func() {
		sig, ok := <-sigs
		if !ok {
			return
		}
		sigSeen.Store(true)
		fmt.Fprintf(os.Stderr, "tetrisd: %v: draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "tetrisd: drain cut short:", err)
		}
		close(drained)
	}()

	if *addr == "" {
		err := srv.ServeSession(os.Stdin, os.Stdout)
		if sigSeen.Load() {
			<-drained
			err = nil // a signal-driven shutdown is a clean exit
		}
		closeDurable(dur)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tetrisd:", err)
			os.Exit(1)
		}
		return
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrisd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "tetrisd: listening on", l.Addr())
	serveErr := srv.Serve(l)
	if sigSeen.Load() {
		<-drained // signal path: let the drain finish before closing
	}
	closeDurable(dur)
	if serveErr != nil {
		fmt.Fprintln(os.Stderr, "tetrisd:", serveErr)
		os.Exit(1)
	}
}

// closeDurable flushes and closes the durable catalog, if any.
func closeDurable(dur *durable.Catalog) {
	if dur == nil {
		return
	}
	if err := dur.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tetrisd: close:", err)
	}
}
