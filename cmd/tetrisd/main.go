// Command tetrisd serves the Tetris join engine over a line-oriented
// JSON protocol: a long-lived catalog of named, versioned relations
// with warm indexes and a prepared-plan cache, driven by load / append
// / delete / query / prepare / maintain / exec / stats requests.
//
// By default it speaks the protocol on stdin/stdout (one session):
//
//	printf '%s\n' \
//	  '{"op":"load","name":"R","attrs":["s","d"],"depth":4,"tuples":[[1,2],[2,3],[1,3]]}' \
//	  '{"op":"prepare","id":"tri","query":"R(A,B), R(B,C), R(A,C)","mode":"preloaded"}' \
//	  '{"op":"exec","id":"tri"}' \
//	  '{"op":"stats"}' | tetrisd
//
// A maintained statement ({"op":"maintain","id":…,"query":…}) keeps
// its materialized result alive across appends and deletes: exec after
// a write patches the result from the delta (the response reports
// "refresh":"patched" and delta-sized index_builds) instead of
// re-executing — the steady-state serving mode under a trickle of
// writes.
//
// With -addr it listens on TCP, one session per connection, all
// sessions sharing the catalog (and therefore its relations, indexes
// and plan cache):
//
//	tetrisd -addr :7423
//
// Responses are one JSON object per line; executions stream their
// output as {"tuple":[…]} lines before the final response. See
// internal/server for the full protocol.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "", "TCP listen address (empty: serve one session on stdin/stdout)")
		planCache   = flag.Int("plan-cache", 0, "prepared plans kept in the LRU (0 = default 64, negative disables)")
		maxConc     = flag.Int("max-concurrent", 1, "engine executions admitted at once across sessions")
		parallelism = flag.Int("parallel", 1, "engine worker goroutines per execution")
		maxRes      = flag.Int64("session-max-resolutions", 0, "per-session geometric-resolution budget (0 = unlimited)")
		maxOut      = flag.Int("session-max-output", 0, "per-session output-tuple budget (0 = unlimited)")
	)
	flag.Parse()

	cat := catalog.NewWithOptions(catalog.Options{PlanCache: *planCache})
	srv := server.New(cat, server.Config{
		MaxConcurrent:         *maxConc,
		Parallelism:           *parallelism,
		SessionMaxResolutions: *maxRes,
		SessionMaxOutput:      *maxOut,
	})
	defer srv.Close()

	if *addr == "" {
		if err := srv.ServeSession(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tetrisd:", err)
			os.Exit(1)
		}
		return
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrisd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "tetrisd: listening on", l.Addr())
	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, "tetrisd:", err)
		os.Exit(1)
	}
}
