package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// binPath is the tetrisd binary built once for all tests here.
var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "tetrisd-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binPath = filepath.Join(dir, "tetrisd")
	out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "build: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// proc is a running tetrisd with its listen address and captured stderr.
type proc struct {
	cmd      *exec.Cmd
	addr     string
	stderr   *bytes.Buffer
	mu       sync.Mutex
	scanDone chan struct{} // closed when the stderr drain goroutine ends
}

// startServer launches tetrisd -addr 127.0.0.1:0 with the given extra
// flags and waits for its "listening on" line.
func startServer(t *testing.T, dataDir string, extra ...string) *proc {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data-dir", dataDir}, extra...)
	cmd := exec.Command(binPath, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, stderr: &bytes.Buffer{}, scanDone: make(chan struct{})}
	addrCh := make(chan string, 1)
	go func() {
		defer close(p.scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			fmt.Fprintln(p.stderr, line)
			p.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "tetrisd: listening on "); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	select {
	case p.addr = <-addrCh:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("server never listened; stderr:\n%s", p.stderrText())
	}
	return p
}

func (p *proc) stderrText() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

// send writes one request line and reads response lines until the final
// (non-tuple) one, returning tuple lines and the response.
func send(t *testing.T, conn net.Conn, sc *bufio.Scanner, req string) (tuples []string, resp map[string]any) {
	t.Helper()
	if _, err := fmt.Fprintln(conn, req); err != nil {
		t.Fatalf("send %s: %v", req, err)
	}
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if _, ok := m["tuple"]; ok {
			tuples = append(tuples, sc.Text())
			continue
		}
		if ok, _ := m["ok"].(bool); !ok {
			t.Fatalf("request %s failed: %v", req, m)
		}
		return tuples, m
	}
	t.Fatalf("no response to %s", req)
	return nil, nil
}

// Kill -9 mid-ingest: everything acknowledged before the kill must be
// served after restart, the maintained statement included, and at most
// one unacknowledged append may additionally surface (synced but not
// yet responded).
func TestKillDuringIngestRecoversAcknowledged(t *testing.T) {
	dir := t.TempDir()
	p := startServer(t, dir)

	conn, err := net.Dial("tcp", p.addr)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	send(t, conn, sc, `{"op":"load","name":"R","attrs":["s","d"],"depth":4,"tuples":[[1,2],[2,3],[1,3],[3,4]]}`)
	send(t, conn, sc, `{"op":"load","name":"S","attrs":["x","y"],"depth":10,"tuples":[[0,0]]}`)
	send(t, conn, sc, `{"op":"maintain","id":"tri","query":"R(A,B), R(B,C), R(A,C)","mode":"preloaded"}`)
	triTuples, _ := send(t, conn, sc, `{"op":"exec","id":"tri"}`)

	// Burst appends into S (which "tri" does not read) from a writer
	// goroutine and SIGKILL the server mid-stream.
	writerDone := make(chan int, 1)
	go func() {
		sent := 0
		for i := 1; ; i++ {
			if _, err := fmt.Fprintf(conn, `{"op":"append","name":"S","tuples":[[%d,%d]]}`+"\n", i, i); err != nil {
				break
			}
			sent++
		}
		writerDone <- sent
	}()
	acked := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			break
		}
		if ok, _ := m["ok"].(bool); ok {
			acked++
		}
		if acked == 25 {
			p.cmd.Process.Kill() // SIGKILL, no drain, no flush
		}
	}
	if acked < 25 {
		t.Fatalf("only %d appends acknowledged before EOF", acked)
	}
	conn.Close()
	<-writerDone
	p.cmd.Wait()

	// Restart over the same directory.
	p2 := startServer(t, dir)
	defer func() { p2.cmd.Process.Kill(); p2.cmd.Wait() }()
	conn2, err := net.Dial("tcp", p2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	sc2 := bufio.NewScanner(conn2)

	// The maintained statement was recovered and serves the identical
	// pre-crash result.
	triAfter, _ := send(t, conn2, sc2, `{"op":"exec","id":"tri"}`)
	if strings.Join(triAfter, "\n") != strings.Join(triTuples, "\n") {
		t.Fatalf("recovered maintained result differs:\npre-crash:  %v\npost-crash: %v", triTuples, triAfter)
	}
	// S holds the base tuple plus every acknowledged append, plus at
	// most one synced-but-unacknowledged straggler.
	_, resp := send(t, conn2, sc2, `{"op":"query","query":"S(X,Y)","count":true}`)
	countStr, _ := resp["count"].(string)
	var n int
	fmt.Sscanf(countStr, "%d", &n)
	min, max := 1+acked, 1+acked+1
	if n < min || n > max {
		t.Fatalf("recovered S has %d tuples, want %d..%d (acked=%d); stderr:\n%s",
			n, min, max, acked, p2.stderrText())
	}
	if !strings.Contains(p2.stderrText(), "recovered") {
		t.Errorf("restart logged no recovery line; stderr:\n%s", p2.stderrText())
	}
}

// Checkpoint op then kill -9: the restart loads every index from its
// segment file — the first exec reports index_builds 0 — and serves the
// pre-crash result byte-identically. In-memory servers refuse the op.
func TestCheckpointThenKillRecoversWithoutRebuilds(t *testing.T) {
	dir := t.TempDir()
	p := startServer(t, dir, "-checkpoint-every", "-1") // only the explicit op checkpoints

	conn, err := net.Dial("tcp", p.addr)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	send(t, conn, sc, `{"op":"load","name":"R","attrs":["s","d"],"depth":4,"tuples":[[1,2],[2,3],[1,3],[3,4]]}`)
	send(t, conn, sc, `{"op":"load","name":"S","attrs":["s","d"],"depth":4,"tuples":[[2,1],[3,2],[4,3]]}`)
	send(t, conn, sc, `{"op":"load","name":"T","attrs":["s","d"],"depth":4,"tuples":[[1,4],[2,4]]}`)
	send(t, conn, sc, `{"op":"maintain","id":"tri","query":"R(A,B), R(B,C), R(A,C)","mode":"preloaded"}`)
	triTuples, _ := send(t, conn, sc, `{"op":"exec","id":"tri"}`)
	_, ckResp := send(t, conn, sc, `{"op":"checkpoint"}`)
	if v, _ := ckResp["version"].(float64); v <= 0 {
		t.Fatalf("checkpoint response carries no covered LSN: %v", ckResp)
	}
	conn.Close()
	p.cmd.Process.Kill() // SIGKILL: no drain, recovery must come from the segments
	p.cmd.Wait()

	p2 := startServer(t, dir)
	defer func() { p2.cmd.Process.Kill(); p2.cmd.Wait() }()
	conn2, err := net.Dial("tcp", p2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	sc2 := bufio.NewScanner(conn2)
	triAfter, execResp := send(t, conn2, sc2, `{"op":"exec","id":"tri"}`)
	if strings.Join(triAfter, "\n") != strings.Join(triTuples, "\n") {
		t.Fatalf("segment-recovered result differs:\npre-crash:  %v\npost-crash: %v", triTuples, triAfter)
	}
	if builds, _ := execResp["index_builds"].(float64); builds != 0 {
		t.Fatalf("first exec after segment recovery built %v indexes, want 0; stderr:\n%s",
			builds, p2.stderrText())
	}
	// Startup itself loaded the frozen indexes instead of rebuilding.
	stderr := p2.stderrText()
	if !strings.Contains(stderr, "indexes loaded, 0 rebuilt") || strings.Contains(stderr, " 0 indexes loaded") {
		t.Errorf("restart did not report a segment-backed index load; stderr:\n%s", stderr)
	}

	// An in-memory server has nowhere to persist.
	mem := startServer(t, "")
	defer func() { mem.cmd.Process.Kill(); mem.cmd.Wait() }()
	mconn, err := net.Dial("tcp", mem.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer mconn.Close()
	msc := bufio.NewScanner(mconn)
	if _, err := fmt.Fprintln(mconn, `{"op":"checkpoint"}`); err != nil {
		t.Fatal(err)
	}
	if !msc.Scan() {
		t.Fatal("no response to checkpoint on in-memory server")
	}
	var m map[string]any
	if err := json.Unmarshal(msc.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if ok, _ := m["ok"].(bool); ok {
		t.Fatalf("in-memory server accepted checkpoint: %v", m)
	}
}

// The real binary with -metrics-addr serves Prometheus-parseable text
// including per-shape latency series and the overload counters.
func TestMetricsEndpointOverHTTP(t *testing.T) {
	p := startServer(t, t.TempDir(), "-metrics-addr", "127.0.0.1:0")
	defer func() { p.cmd.Process.Kill(); p.cmd.Wait() }()

	var maddr string
	deadline := time.Now().Add(5 * time.Second)
	for maddr == "" {
		for _, line := range strings.Split(p.stderrText(), "\n") {
			if rest, ok := strings.CutPrefix(line, "tetrisd: metrics on "); ok {
				maddr = rest
			}
		}
		if maddr == "" {
			if time.Now().After(deadline) {
				t.Fatalf("no metrics listener; stderr:\n%s", p.stderrText())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	conn, err := net.Dial("tcp", p.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	send(t, conn, sc, `{"op":"load","name":"R","attrs":["s","d"],"depth":4,"tuples":[[1,2],[2,3],[1,3],[3,4]]}`)
	send(t, conn, sc, `{"op":"query","query":"R(A,B), R(B,C), R(A,C)","mode":"preloaded","buffer":true}`)
	send(t, conn, sc, `{"op":"query","query":"R(A,B), R(B,C), R(A,C)","mode":"preloaded","buffer":true}`)

	resp, err := http.Get("http://" + maddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`tetris_exec_seconds_bucket{shape="R(A,B),R(B,C),R(A,C)",kind="exec"`,
		`tetris_exec_seconds_count{shape="R(A,B),R(B,C),R(A,C)",kind="exec"} 2`,
		`tetris_exec_seconds_quantile{shape="R(A,B),R(B,C),R(A,C)",kind="exec",quantile="0.99"}`,
		"tetris_admission_shed_total 0",
		"tetris_slow_consumers_total 0",
		"tetris_wal_last_lsn 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q; body:\n%s", want, body)
		}
	}
}

// SIGTERM drains gracefully: the process exits 0 and reports the drain.
func TestSigtermDrainsAndExitsClean(t *testing.T) {
	dir := t.TempDir()
	p := startServer(t, dir)

	conn, err := net.Dial("tcp", p.addr)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	send(t, conn, sc, `{"op":"load","name":"R","attrs":["s","d"],"depth":4,"tuples":[[1,2],[2,3],[1,3]]}`)
	conn.Close()

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain stderr to EOF before reaping: Wait closes the pipe, and
	// calling it while the scanner still has buffered lines in flight
	// can drop the very drain line this test asserts on.
	done := make(chan error, 1)
	go func() {
		select {
		case <-p.scanDone:
		case <-time.After(10 * time.Second):
		}
		done <- p.cmd.Wait()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v; stderr:\n%s", err, p.stderrText())
		}
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("no exit within 10s of SIGTERM; stderr:\n%s", p.stderrText())
	}
	if !strings.Contains(p.stderrText(), "draining") {
		t.Errorf("no drain line on SIGTERM; stderr:\n%s", p.stderrText())
	}

	// The drained state restarts cleanly.
	p2 := startServer(t, dir)
	defer func() { p2.cmd.Process.Kill(); p2.cmd.Wait() }()
	conn2, err := net.Dial("tcp", p2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	sc2 := bufio.NewScanner(conn2)
	_, resp := send(t, conn2, sc2, `{"op":"query","query":"R(A,B)","count":true}`)
	if c, _ := resp["count"].(string); c != "3" {
		t.Fatalf("recovered R count %q, want 3", c)
	}
}
