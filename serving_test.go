package tetrisjoin_test

import (
	"reflect"
	"testing"

	"tetrisjoin"
)

// TestFacadePreparedLifecycle drives the serving API end to end through
// the public facade: ingest, prepare, execute repeatedly, update, and
// check the one-shot wrapper agrees with the catalog path.
func TestFacadePreparedLifecycle(t *testing.T) {
	cat := tetrisjoin.OpenCatalog()

	r, err := tetrisjoin.NewRelation("R", []string{"src", "dst"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	r.MustInsert(1, 2)
	r.MustInsert(2, 3)
	r.MustInsert(1, 3)
	r.MustInsert(3, 4)
	if _, err := cat.Ingest(r, tetrisjoin.DyadicSpec()); err != nil {
		t.Fatal(err)
	}

	const text = "R(A,B), R(B,C), R(A,C)"
	p, err := cat.Prepare(text, tetrisjoin.Options{Mode: tetrisjoin.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	if p.IndexBuilds() == 0 {
		t.Error("cold prepare built nothing")
	}

	want := [][]uint64{{1, 2, 3}}
	for i := 0; i < 3; i++ {
		res, err := p.Execute(tetrisjoin.Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Tuples, want) {
			t.Fatalf("execution %d: %v, want %v", i, res.Tuples, want)
		}
		if res.Stats.IndexBuilds != 0 {
			t.Errorf("execution %d built %d indexes", i, res.Stats.IndexBuilds)
		}
	}

	// One-shot facade agrees with the catalog path.
	q, err := cat.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := tetrisjoin.Join(q, tetrisjoin.Options{Mode: tetrisjoin.Preloaded, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oneShot.Tuples, want) {
		t.Errorf("one-shot = %v, want %v", oneShot.Tuples, want)
	}
	if oneShot.Stats.IndexBuilds == 0 {
		t.Error("one-shot reported zero index builds; it must pay preparation")
	}

	// Appending publishes a new version; the old prepared statement
	// keeps its pinned snapshot while a new preparation sees the update.
	if _, err := cat.Append("R", tetrisjoin.Tuple{2, 4}); err != nil {
		t.Fatal(err)
	}
	res, err := p.Execute(tetrisjoin.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, want) {
		t.Errorf("pinned statement saw the append: %v", res.Tuples)
	}
	p2, err := cat.Prepare(text, tetrisjoin.Options{Mode: tetrisjoin.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p2.Execute(tetrisjoin.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Tuples) != 2 {
		t.Errorf("fresh statement after append: %v, want 2 triangles", res2.Tuples)
	}
}

// TestFacadeMaintainedLifecycle drives incremental maintenance through
// the public facade: maintain, write, execute — the post-write
// execution must be a delta patch, not a re-execution, and exact.
func TestFacadeMaintainedLifecycle(t *testing.T) {
	cat := tetrisjoin.OpenCatalog()
	r, err := tetrisjoin.NewRelation("R", []string{"src", "dst"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	r.MustInsert(1, 2)
	r.MustInsert(2, 3)
	r.MustInsert(1, 3)
	r.MustInsert(3, 4)
	if _, err := cat.Ingest(r); err != nil {
		t.Fatal(err)
	}

	const text = "R(A,B), R(B,C), R(A,C)"
	m, err := cat.Maintain(text, tetrisjoin.Options{Mode: tetrisjoin.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Execute(tetrisjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, [][]uint64{{1, 2, 3}}) {
		t.Fatalf("initial result %v", res.Tuples)
	}

	if _, err := cat.Append("R", tetrisjoin.Tuple{2, 4}); err != nil {
		t.Fatal(err)
	}
	res, err = m.Execute(tetrisjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.LastRefresh(); got.Kind != "patched" || got.Added != 1 {
		t.Fatalf("refresh after append: %+v, want a 1-tuple patch", got)
	}
	if !reflect.DeepEqual(res.Tuples, [][]uint64{{1, 2, 3}, {2, 3, 4}}) {
		t.Fatalf("patched result %v", res.Tuples)
	}

	if _, err := cat.Delete("R", tetrisjoin.Tuple{2, 3}); err != nil {
		t.Fatal(err)
	}
	res, err = m.Execute(tetrisjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.LastRefresh(); got.Kind != "patched" || got.Removed != 2 {
		t.Fatalf("refresh after delete: %+v, want a 2-tuple removal patch", got)
	}
	if len(res.Tuples) != 0 {
		t.Fatalf("post-delete result %v, want empty", res.Tuples)
	}
}
