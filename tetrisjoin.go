// Package tetrisjoin is a from-scratch implementation of the Tetris join
// algorithm from "Joins via Geometric Resolutions: Worst-case and Beyond"
// (Abo Khamis, Ngo, Ré, Rudra; PODS 2015).
//
// Tetris treats a natural join geometrically: every database index over a
// relation is viewed as a set of dyadic "gap boxes" — axis-aligned regions
// certified to contain no tuples — and the join output is exactly the set
// of points of the attribute space not covered by any gap box (the box
// cover problem). The algorithm is a backtracking search with memoization
// whose inference step is geometric resolution: merging two adjacent boxes
// into a larger covered box.
//
// Depending on how its knowledge base is initialized, the same algorithm
// achieves the classical worst-case optimal bounds (AGM output bound,
// Yannakakis' linear time on acyclic queries, the fractional hypertree
// width bound) and beyond-worst-case, certificate-based bounds
// (Õ(|C|+Z) for treewidth-1 queries, Õ(|C|^{w+1}+Z) for treewidth w, and
// Õ(|C|^{n/2}+Z) for arbitrary queries via a load-balancing lift).
//
// # Quick start
//
//	r, _ := tetrisjoin.NewRelation("R", []string{"src", "dst"}, 16)
//	r.MustInsert(1, 2)
//	r.MustInsert(2, 3)
//	r.MustInsert(1, 3)
//	q, _ := tetrisjoin.ParseQuery("R(A,B), R(B,C), R(A,C)",
//		map[string]*tetrisjoin.Relation{"R": r})
//	res, _ := tetrisjoin.Join(q, tetrisjoin.Options{})
//	// res.Tuples == [[1 2 3]]
//
// See the examples directory for runnable programs and DESIGN.md /
// EXPERIMENTS.md for the mapping from the paper's results to this
// repository's modules and benchmarks.
package tetrisjoin

import (
	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

// Relation is a relation instance: named attributes over power-of-two
// integer domains, storing a sorted deduplicated set of tuples.
type Relation = relation.Relation

// Tuple is a row of attribute values.
type Tuple = relation.Tuple

// Encoder maps arbitrary ordered string values onto dense integer
// domains, order-preserving, for data that is not already integral.
type Encoder = relation.Encoder

// NewEncoder returns an empty value encoder.
func NewEncoder() *Encoder { return relation.NewEncoder() }

// NewRelation creates an empty relation whose attributes all range over
// [0, 2^depth).
func NewRelation(name string, attrs []string, depth uint8) (*Relation, error) {
	return relation.NewUniform(name, attrs, depth)
}

// NewRelationDepths creates an empty relation with per-attribute domain
// depths.
func NewRelationDepths(name string, attrs []string, depths []uint8) (*Relation, error) {
	return relation.New(name, attrs, depths)
}

// Atom is one occurrence of a relation in a query; see join.Atom.
type Atom = join.Atom

// Query is a natural join query.
type Query = join.Query

// NewQuery assembles a query from atoms.
func NewQuery(atoms ...Atom) (*Query, error) { return join.NewQuery(atoms...) }

// ParseQuery parses "R(A,B), S(B,C)" notation against a relation catalog.
func ParseQuery(s string, catalog map[string]*Relation) (*Query, error) {
	return join.Parse(s, catalog)
}

// Mode selects the Tetris variant (knowledge-base initialization).
type Mode = core.Mode

// The four variants of Algorithm 2; see the paper sections cited on each.
const (
	// Reloaded: lazy loading; certificate-based guarantees (§4.4).
	Reloaded = core.Reloaded
	// Preloaded: full gap set preloaded; worst-case optimal (§4.3).
	Preloaded = core.Preloaded
	// PreloadedLB: Balance-lifted Preloaded; Õ(|B|^{n/2}+Z) (§4.5).
	PreloadedLB = core.PreloadedLB
	// ReloadedLB: Balance-lifted Reloaded; Õ(|C|^{n/2}+Z) (§4.5).
	ReloadedLB = core.ReloadedLB
)

// Options configures Join; see join.Options for field documentation.
type Options = join.Options

// Result is a join result; see join.Result.
type Result = join.Result

// Stats reports the work a run performed; see core.Stats.
type Stats = core.Stats

// SAOStrategy selects automatic splitting-attribute-order derivation.
type SAOStrategy = join.SAOStrategy

// SAO strategies.
const (
	// SAOAuto follows the paper's prescription for acyclic queries (GYO
	// reverse) and hands cyclic queries to the statistics-driven planner.
	SAOAuto = join.SAOAuto
	// SAONatural uses first-occurrence variable order.
	SAONatural = join.SAONatural
	// SAOPlanned invokes the statistics-driven planner unconditionally.
	SAOPlanned = join.SAOPlanned
)

// Join evaluates the query with Tetris and returns its output tuples over
// q.Vars() plus work statistics.
//
// Execution parallelizes by default (Options.Parallelism = 0 means
// GOMAXPROCS workers over disjoint dyadic shards of the output space —
// except when MaxOutput, MaxResolutions or OnOutput is set, where 0
// falls back to sequential so limits keep machine-independent semantics
// and streaming keeps O(1) tuple memory) and stays deterministic: tuples
// arrive in the sequential enumeration order regardless of worker count.
// Set Parallelism to 1 for the strictly sequential engine, e.g. when
// Stats must reproduce the paper's sequential resolution accounting.
//
// Join is the one-shot API: a thin wrapper over a throwaway catalog, so
// every call pays index construction and planning (Stats.IndexBuilds
// reports it). Services executing queries repeatedly should keep a
// long-lived catalog (OpenCatalog) and run through prepared statements,
// which amortize that work away.
func Join(q *Query, opts Options) (*Result, error) {
	return catalog.New().ExecuteQuery(q, opts)
}

// Catalog is a concurrency-safe store of named, versioned relations
// whose indexes are built at ingest (or on first demand) and shared by
// every subsequent query, with an LRU cache of prepared plans on top.
// It is the serving-side entry point: ingest once, prepare once,
// execute many times. See internal/catalog.
type Catalog = catalog.Catalog

// CatalogOptions configures OpenCatalogOptions.
type CatalogOptions = catalog.Options

// Prepared is an executable prepared statement over a catalog: its
// executions reuse the plan's indexes, memoized gap set and (in
// Preloaded mode) shared knowledge base, performing zero index builds.
type Prepared = catalog.Prepared

// Maintained is a prepared statement whose materialized result
// survives catalog writes: Execute after an Append/Delete patches the
// result from the delta (one Tetris pass per changed atom over the
// delta relation, reusing prior indexes and shared knowledge) instead
// of re-executing, with exact fallback to full recomputation when the
// patch rule does not apply. Obtain one with Catalog.Maintain.
type Maintained = catalog.Maintained

// MaintainedRefresh describes what a maintained execution did: "none",
// "patched" (with pass/add/remove counts) or "recomputed".
type MaintainedRefresh = catalog.Refresh

// OpenCatalog returns an empty catalog with default options.
func OpenCatalog() *Catalog { return catalog.New() }

// OpenCatalogOptions returns an empty catalog with the given options.
func OpenCatalogOptions(opts CatalogOptions) *Catalog {
	return catalog.NewWithOptions(opts)
}

// IndexSpec describes an index for a catalog to maintain on a relation
// (family plus, for B-trees, attribute order); see index.Spec.
type IndexSpec = index.Spec

// BTreeSpec, DyadicSpec and KDTreeSpec build catalog index specs.
func BTreeSpec(order ...string) IndexSpec { return index.BTreeSpec(order...) }

// DyadicSpec describes a dyadic-tree index for catalog maintenance.
func DyadicSpec() IndexSpec { return index.DyadicSpec() }

// KDTreeSpec describes a k-d tree index for catalog maintenance.
func KDTreeSpec() IndexSpec { return index.KDTreeSpec() }

// Plan is a prepared query: SAO chosen, indices built, bindings resolved.
// A plan is immutable, safe to share between goroutines, and cheap to
// execute repeatedly — the way to serve many concurrent executions of one
// query without rebuilding its indices. See join.Plan.
type Plan = join.Plan

// NewPlan prepares a query for (repeated, possibly concurrent) execution.
func NewPlan(q *Query, opts Options) (*Plan, error) { return join.NewPlan(q, opts) }

// Index is a gap box generator over a relation (a database index in the
// paper's geometric view).
type Index = index.Index

// BTreeIndex builds a sorted (B-tree/trie) index in the given attribute
// order; empty order means schema order. Its gaps are the GAO-consistent
// boxes of Definition 3.11.
func BTreeIndex(rel *Relation, attrOrder ...string) (Index, error) {
	return index.NewSorted(rel, attrOrder...)
}

// DyadicIndex builds a dyadic-tree (quadtree-like) index whose gap boxes
// can be thick in several dimensions — the index family that enables O(1)
// certificates where B-trees need Ω(N) (Example B.8).
func DyadicIndex(rel *Relation) Index { return index.NewDyadic(rel) }

// KDTreeIndex builds a median-split k-d tree index.
func KDTreeIndex(rel *Relation) Index { return index.NewKDTree(rel) }

// UnionIndex pools several indices over the same relation.
func UnionIndex(indices ...Index) (Index, error) { return index.NewUnion(indices...) }

// Box is a dyadic box: one dyadic interval per attribute.
type Box = dyadic.Box

// Interval is a dyadic interval (a binary prefix string).
type Interval = dyadic.Interval

// ParseBox parses "01,λ,1" notation.
func ParseBox(s string) (Box, error) { return dyadic.ParseBox(s) }
