package tetrisjoin_test

import (
	"fmt"

	"tetrisjoin"
)

// ExampleCoversSpace decides the Boolean box cover problem — is the
// whole space covered by the union of the boxes?
func ExampleCoversSpace() {
	depths := []uint8{4, 4}
	lower, _ := tetrisjoin.ParseBox("0,λ")
	upper, _ := tetrisjoin.ParseBox("1,λ")
	covered, _, _ := tetrisjoin.CoversSpace(depths, []tetrisjoin.Box{lower, upper})
	fmt.Println(covered)
	covered, hole, _ := tetrisjoin.CoversSpace(depths, []tetrisjoin.Box{lower})
	fmt.Println(covered, hole[0] >= 8)
	// Output:
	// true
	// false true
}

// ExampleJoinSize counts a join's output without materializing it.
func ExampleJoinSize() {
	r, _ := tetrisjoin.NewRelation("R", []string{"x"}, 8)
	s, _ := tetrisjoin.NewRelation("S", []string{"x"}, 8)
	for v := uint64(0); v < 100; v++ {
		r.MustInsert(v)
		s.MustInsert(v)
	}
	// R(A) ⋈ S(B) is a cross product with 100·100 tuples.
	q, _ := tetrisjoin.ParseQuery("R(A), S(B)",
		map[string]*tetrisjoin.Relation{"R": r, "S": s})
	size, _ := tetrisjoin.JoinSize(q, tetrisjoin.Options{})
	fmt.Println(size)
	// Output:
	// 10000
}

// ExampleCountModelsFast counts CNF models through the paper's
// clauses-as-boxes correspondence.
func ExampleCountModelsFast() {
	// x1 ∧ ¬x2 over 20 variables: 2^18 models.
	formula := tetrisjoin.CNF{
		NumVars: 20,
		Clauses: []tetrisjoin.Clause{{1}, {-2}},
	}
	count, _ := tetrisjoin.CountModelsFast(formula, tetrisjoin.SATOptions{})
	fmt.Println(count)
	// Output:
	// 262144
}

// ExampleMinimalCertificate shrinks a gap box set to an inclusion-minimal
// certificate with the same union.
func ExampleMinimalCertificate() {
	depths := []uint8{3, 3}
	var boxes []tetrisjoin.Box
	for _, s := range []string{"0,λ", "00,λ", "01,0", "1,λ"} {
		b, _ := tetrisjoin.ParseBox(s)
		boxes = append(boxes, b)
	}
	cert, _ := tetrisjoin.MinimalCertificate(depths, boxes)
	fmt.Println(len(cert))
	// Output:
	// 2
}

// ExampleAGMBound computes the worst-case output bound of a query.
func ExampleAGMBound() {
	r, _ := tetrisjoin.NewRelation("E", []string{"u", "v"}, 8)
	for i := uint64(0); i < 16; i++ {
		r.MustInsert(i, (i+1)%16)
	}
	q, _ := tetrisjoin.ParseQuery("E(A,B), E(B,C), E(A,C)",
		map[string]*tetrisjoin.Relation{"E": r})
	bound, _ := tetrisjoin.AGMBound(q)
	fmt.Printf("%.1f\n", bound) // |E|^{3/2} = 16^{1.5}
	// Output:
	// 64.0
}
