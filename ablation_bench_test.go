// Ablation benchmarks for the design choices DESIGN.md calls out:
// resolvent caching (line 19 of Algorithm 1), knowledge-base subsumption
// compaction, the single-pass skeleton (footnote 13), and the SAO choice.
package tetrisjoin_test

import (
	"fmt"
	"testing"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/sat"
	"tetrisjoin/internal/workload"
)

// BenchmarkAblationCaching — resolvent caching on/off on the cache-reuse
// family (the Thm 5.2 separation).
func BenchmarkAblationCaching(b *testing.B) {
	q := workload.TreeOrderedHard(16)
	opts := join.Options{SAOVars: []string{"A", "B", "C"}, Mode: core.Preloaded}
	b.Run("cache=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := mustRun(b, q, opts)
			b.ReportMetric(float64(res.Stats.Resolutions), "resolutions")
		}
	})
	noCache := opts
	noCache.NoCache = true
	b.Run("cache=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := mustRun(b, q, noCache)
			b.ReportMetric(float64(res.Stats.Resolutions), "resolutions")
		}
	})
}

// BenchmarkAblationSubsumption — knowledge-base compaction on/off.
func BenchmarkAblationSubsumption(b *testing.B) {
	q := workload.PathQuery(3, 512, 12, 512)
	b.Run("subsume=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustRun(b, q, join.Options{Mode: core.Preloaded})
		}
	})
	b.Run("subsume=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustRun(b, q, join.Options{Mode: core.Preloaded, DisableSubsume: true})
		}
	})
}

// BenchmarkAblationSinglePass — restart loop vs TetrisSkeleton2 on a
// large-output instance.
func BenchmarkAblationSinglePass(b *testing.B) {
	q := workload.TriangleDense(16, 10)
	b.Run("restart", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := mustRun(b, q, join.Options{Mode: core.Preloaded})
			b.ReportMetric(float64(res.Stats.SkeletonCalls), "skeleton-calls")
		}
	})
	b.Run("single-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := mustRun(b, q, join.Options{Mode: core.Preloaded, SinglePass: true})
			b.ReportMetric(float64(res.Stats.SkeletonCalls), "skeleton-calls")
		}
	})
}

// BenchmarkAblationSAO — the prescribed SAO versus adversarial orders on
// the GAO-sensitive instance.
func BenchmarkAblationSAO(b *testing.B) {
	for _, sao := range [][]string{{"B", "A"}, {"A", "B"}} {
		q := workload.GAOSensitive(32, 8)
		b.Run(fmt.Sprintf("sao=%s%s", sao[0], sao[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mustRun(b, q, join.Options{SAOVars: sao})
				b.ReportMetric(float64(res.Stats.BoxesLoaded), "boxes")
			}
		})
	}
}

// BenchmarkSATPigeonhole — the DPLL correspondence: clause learning
// (caching) vs plain DPLL on PHP(6,5).
func BenchmarkSATPigeonhole(b *testing.B) {
	php := sat.Pigeonhole(6, 5)
	b.Run("learning", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := sat.Count(php, sat.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.Resolutions), "resolutions")
		}
	})
	b.Run("plain-dpll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := sat.Count(php, sat.Options{NoLearning: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.Resolutions), "resolutions")
		}
	})
}
