package tetrisjoin_test

import (
	"math/big"
	"testing"

	"tetrisjoin"
)

func TestJoinSizeMatchesEnumeration(t *testing.T) {
	r, _ := tetrisjoin.NewRelation("R", []string{"x", "y"}, 4)
	for i := uint64(0); i < 12; i++ {
		r.MustInsert(i%8, (i*5+1)%16)
	}
	q, err := tetrisjoin.ParseQuery("R(A,B), R(B,C)", map[string]*tetrisjoin.Relation{"R": r})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tetrisjoin.Join(q, tetrisjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	count, err := tetrisjoin.JoinSize(q, tetrisjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if count.Cmp(big.NewInt(int64(len(res.Tuples)))) != 0 {
		t.Errorf("JoinSize = %s, enumeration = %d", count, len(res.Tuples))
	}
}

func TestJoinSizeHugeCrossProduct(t *testing.T) {
	// R(A) ⋈ S(B) with full 2^20-value unary relations: 2^40 output
	// tuples, counted without enumeration... relations would be too big
	// to build; instead use two relations whose join is a large grid:
	// R(A) with 2^10 values and S(B) with 2^10 values -> 2^20 outputs.
	r, _ := tetrisjoin.NewRelation("R", []string{"x"}, 10)
	s, _ := tetrisjoin.NewRelation("S", []string{"x"}, 10)
	for i := uint64(0); i < 1<<10; i++ {
		r.MustInsert(i)
		s.MustInsert(i)
	}
	q, err := tetrisjoin.ParseQuery("R(A), S(B)", map[string]*tetrisjoin.Relation{"R": r, "S": s})
	if err != nil {
		t.Fatal(err)
	}
	count, err := tetrisjoin.JoinSize(q, tetrisjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Lsh(big.NewInt(1), 20)
	if count.Cmp(want) != 0 {
		t.Errorf("JoinSize = %s, want %s", count, want)
	}
}

func TestCountUncoveredPublic(t *testing.T) {
	depths := []uint8{3, 3}
	half, _ := tetrisjoin.ParseBox("0,λ")
	count, err := tetrisjoin.CountUncovered(depths, []tetrisjoin.Box{half})
	if err != nil {
		t.Fatal(err)
	}
	if count.Cmp(big.NewInt(32)) != 0 {
		t.Errorf("CountUncovered = %s, want 32", count)
	}
	measure, err := tetrisjoin.MeasureUnion(depths, []tetrisjoin.Box{half})
	if err != nil {
		t.Fatal(err)
	}
	if measure.Cmp(big.NewInt(32)) != 0 {
		t.Errorf("MeasureUnion = %s, want 32", measure)
	}
}

func TestCountModelsFastPublic(t *testing.T) {
	c := tetrisjoin.CNF{NumVars: 40, Clauses: []tetrisjoin.Clause{{1}, {-2}}}
	count, err := tetrisjoin.CountModelsFast(c, tetrisjoin.SATOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Lsh(big.NewInt(1), 38)
	if count.Cmp(want) != 0 {
		t.Errorf("CountModelsFast = %s, want %s", count, want)
	}
}
