// Package boxtree implements the multilevel dyadic tree of Appendix C.1
// of the Tetris paper: the data structure backing the knowledge base A.
//
// Each level is a binary trie over the bits of one box component. A node
// whose path spells the i-th component of a stored box either links to the
// root of the next level's trie (i < n-1) or stores the box itself
// (i == n-1). Because a box a contains a box b exactly when every a_i is a
// prefix of b_i, the boxes containing b lie on the ≤ d+1 prefix paths per
// level, giving Õ(1) superset queries; the boxes contained in a box w form
// whole subtrees, giving cheap subsumption pruning.
//
// # Arena layout
//
// The paper's cost model (Lemma 4.5) charges Õ(1) *word operations* per
// resolution; for the implementation to track that bound the per-operation
// constant must not be dominated by allocator and GC traffic. The tree is
// therefore backed by two slabs owned by the Tree value:
//
//   - a node slab ([]node addressed by uint32 indices, with an intrusive
//     free-list threaded through deleted slots), so trie descent walks
//     contiguous 24-byte records instead of chasing heap pointers, and
//     inserts/deletes recycle slots without touching the allocator; and
//   - an append-only interval slab holding the payload of every stored
//     box, so Insert copies its argument with a bulk append instead of a
//     per-box Clone.
//
// In steady state (slab capacity warmed up) Insert, superset probes,
// intersection probes and subsume-deletes perform zero heap allocations.
//
// Boxes returned by queries (ContainsSuperset, Supersets, ContainedIn,
// All) alias the interval slab. Because the slab is append-only — deleting
// a box abandons its payload rather than reusing it — such aliases remain
// valid for the lifetime of the Tree even across later inserts and
// deletes. Only Reset invalidates them. Callers must not modify returned
// boxes.
package boxtree

import (
	"fmt"

	"tetrisjoin/internal/dyadic"
)

// nilNode is the null node index. Slot 0 of the node slab is reserved so
// the zero value of links means "absent".
const nilNode = 0

// node is one trie node. The box payload reference is stored as
// 1 + (start index into the interval slab), so the zero value means "no
// box stored here" and freshly allocated slots need no initialization.
type node struct {
	children [2]uint32 // same-level trie children (nilNode = absent)
	next     uint32    // root of the next level's trie (nilNode = absent)
	box      uint32    // 1 + interval-slab offset of the stored box, 0 = none
	count    int32     // boxes stored in this subtree, including deeper levels
}

// rootNode is the slab index of the level-0 trie root.
const rootNode = 1

// Tree stores a set of n-dimensional dyadic boxes.
type Tree struct {
	n     int
	nodes []node            // nodes[0] reserved; nodes[rootNode] is the root
	ivs   []dyadic.Interval // append-only payload slab, n intervals per stored box
	free  uint32            // head of the node free-list (nilNode = empty)
	size  int
	path  []uint32 // Insert path scratch, reused across calls
}

// New returns an empty tree for n-dimensional boxes.
func New(n int) *Tree {
	if n < 1 {
		panic("boxtree: dimension must be positive")
	}
	t := &Tree{n: n}
	t.nodes = make([]node, 2, 64)
	return t
}

// Dims returns the dimensionality of the stored boxes.
func (t *Tree) Dims() int { return t.n }

// Len returns the number of stored boxes.
func (t *Tree) Len() int { return t.size }

// Reset empties the tree, retaining the slab capacity for reuse. Boxes
// previously returned by queries become invalid: their storage will be
// overwritten by subsequent inserts.
func (t *Tree) Reset() {
	t.nodes = t.nodes[:2]
	t.nodes[rootNode] = node{}
	t.ivs = t.ivs[:0]
	t.free = nilNode
	t.size = 0
}

// alloc returns a fresh zeroed node slot, recycling the free-list first.
func (t *Tree) alloc() uint32 {
	if t.free != nilNode {
		i := t.free
		t.free = t.nodes[i].children[0]
		t.nodes[i] = node{}
		return i
	}
	t.nodes = append(t.nodes, node{})
	return uint32(len(t.nodes) - 1)
}

// release pushes a single node slot onto the free-list.
func (t *Tree) release(i uint32) {
	t.nodes[i] = node{children: [2]uint32{t.free}}
	t.free = i
}

// releaseSubtree returns an entire empty subtree (all counts zero) to the
// free-list, including the deeper-level tries hanging off next links.
// Cost is amortized against the insertions that created the nodes.
func (t *Tree) releaseSubtree(i uint32, level int) {
	if i == nilNode {
		return
	}
	nd := t.nodes[i]
	t.releaseSubtree(nd.children[0], level)
	t.releaseSubtree(nd.children[1], level)
	if level < t.n-1 {
		t.releaseSubtree(nd.next, level+1)
	}
	t.release(i)
}

// storeBox appends the box payload to the interval slab and returns the
// node.box reference (offset+1).
func (t *Tree) storeBox(b dyadic.Box) uint32 {
	start := len(t.ivs)
	t.ivs = append(t.ivs, b...)
	return uint32(start) + 1
}

// boxAt returns the stored box for a node.box reference. The result
// aliases the slab; see the package comment for the validity guarantee.
func (t *Tree) boxAt(ref uint32) dyadic.Box {
	start := int(ref) - 1
	return dyadic.Box(t.ivs[start : start+t.n : start+t.n])
}

// Insert adds the box and reports whether it was not already present.
func (t *Tree) Insert(b dyadic.Box) bool {
	if len(b) != t.n {
		panic(fmt.Sprintf("boxtree: inserting %d-dimensional box into %d-dimensional tree", len(b), t.n))
	}
	// Descend, creating missing nodes, recording the path in the reused
	// scratch buffer. If the full path already ends in a stored box,
	// nothing was created. Counts are bumped only once the insertion is
	// known to happen, by replaying the recorded path.
	path := t.path[:0]
	cur := uint32(rootNode)
	path = append(path, cur)
	for level := 0; level < t.n; level++ {
		iv := b[level]
		for i := int(iv.Len) - 1; i >= 0; i-- {
			bit := iv.Bits >> uint(i) & 1
			nxt := t.nodes[cur].children[bit]
			if nxt == nilNode {
				nxt = t.alloc()
				t.nodes[cur].children[bit] = nxt
			}
			cur = nxt
			path = append(path, cur)
		}
		if level == t.n-1 {
			if t.nodes[cur].box != 0 {
				t.path = path
				return false // exact duplicate
			}
			t.nodes[cur].box = t.storeBox(b)
		} else {
			nxt := t.nodes[cur].next
			if nxt == nilNode {
				nxt = t.alloc()
				t.nodes[cur].next = nxt
			}
			cur = nxt
			path = append(path, cur)
		}
	}
	for _, ni := range path {
		t.nodes[ni].count++
	}
	t.path = path
	t.size++
	return true
}

// ContainsSuperset returns a stored box containing b, if any. Shorter
// prefixes (bigger boxes) are preferred, so the first match found tends to
// be a large cover.
func (t *Tree) ContainsSuperset(b dyadic.Box) (dyadic.Box, bool) {
	if len(b) != t.n {
		panic("boxtree: dimension mismatch in ContainsSuperset")
	}
	return t.findSuperset(rootNode, 0, b, false)
}

// ProperSuperset returns a stored box that contains b and is not equal to
// b, if any.
func (t *Tree) ProperSuperset(b dyadic.Box) (dyadic.Box, bool) {
	if len(b) != t.n {
		panic("boxtree: dimension mismatch in ProperSuperset")
	}
	return t.findSuperset(rootNode, 0, b, true)
}

func (t *Tree) findSuperset(ni uint32, level int, b dyadic.Box, proper bool) (dyadic.Box, bool) {
	if ni == nilNode || t.nodes[ni].count == 0 {
		return nil, false
	}
	iv := b[level]
	// Walk the prefixes of b's component at this level, from λ down to the
	// full component, probing the next level at each storage point.
	cur := ni
	for depth := 0; ; depth++ {
		nd := t.nodes[cur]
		if level == t.n-1 {
			if nd.box != 0 {
				sb := t.boxAt(nd.box)
				if !proper || !sb.Equal(b) {
					return sb, true
				}
			}
		} else if nd.next != nilNode {
			if found, ok := t.findSuperset(nd.next, level+1, b, proper); ok {
				return found, ok
			}
		}
		if depth == int(iv.Len) {
			return nil, false
		}
		bit := iv.Bits >> uint(int(iv.Len)-1-depth) & 1
		cur = nd.children[bit]
		if cur == nilNode {
			return nil, false
		}
	}
}

// Supersets returns all stored boxes containing b.
func (t *Tree) Supersets(b dyadic.Box) []dyadic.Box {
	return t.SupersetsAppend(nil, b)
}

// SupersetsAppend appends all stored boxes containing b to out and returns
// the extended slice, allocating only when out lacks capacity. The
// appended boxes alias the slab (see the package comment).
func (t *Tree) SupersetsAppend(out []dyadic.Box, b dyadic.Box) []dyadic.Box {
	if len(b) != t.n {
		panic("boxtree: dimension mismatch in Supersets")
	}
	return t.collectSupersets(rootNode, 0, b, out)
}

func (t *Tree) collectSupersets(ni uint32, level int, b dyadic.Box, out []dyadic.Box) []dyadic.Box {
	if ni == nilNode || t.nodes[ni].count == 0 {
		return out
	}
	iv := b[level]
	cur := ni
	for depth := 0; ; depth++ {
		nd := t.nodes[cur]
		if level == t.n-1 {
			if nd.box != 0 {
				out = append(out, t.boxAt(nd.box))
			}
		} else if nd.next != nilNode {
			out = t.collectSupersets(nd.next, level+1, b, out)
		}
		if depth == int(iv.Len) {
			return out
		}
		bit := iv.Bits >> uint(int(iv.Len)-1-depth) & 1
		cur = nd.children[bit]
		if cur == nilNode {
			return out
		}
	}
}

// IntersectsAny reports whether any stored box shares at least one point
// with b. A box intersects b exactly when every pair of corresponding
// components is prefix-comparable, so the search explores the prefixes of
// b's component (supersets at this level) plus the whole subtree below it
// (extensions), pruned by subtree counts.
func (t *Tree) IntersectsAny(b dyadic.Box) bool {
	if len(b) != t.n {
		panic("boxtree: dimension mismatch in IntersectsAny")
	}
	return t.intersectsAny(rootNode, 0, b)
}

func (t *Tree) intersectsAny(ni uint32, level int, b dyadic.Box) bool {
	if ni == nilNode || t.nodes[ni].count == 0 {
		return false
	}
	iv := b[level]
	// Prefix path: nodes whose interval contains b's component.
	cur := ni
	for depth := 0; ; depth++ {
		nd := t.nodes[cur]
		if level == t.n-1 {
			if nd.box != 0 {
				return true
			}
		} else if nd.next != nilNode && t.intersectsAny(nd.next, level+1, b) {
			return true
		}
		if depth == int(iv.Len) {
			break
		}
		bit := iv.Bits >> uint(int(iv.Len)-1-depth) & 1
		cur = nd.children[bit]
		if cur == nilNode {
			return false
		}
	}
	// cur spells b's component exactly; every descendant extends it and
	// is therefore comparable. Explore the whole subtree (skipping cur
	// itself, already handled above).
	return t.intersectsBelow(t.nodes[cur].children[0], level, b) ||
		t.intersectsBelow(t.nodes[cur].children[1], level, b)
}

func (t *Tree) intersectsBelow(ni uint32, level int, b dyadic.Box) bool {
	if ni == nilNode || t.nodes[ni].count == 0 {
		return false
	}
	nd := t.nodes[ni]
	if level == t.n-1 {
		if nd.box != 0 {
			return true
		}
	} else if nd.next != nilNode && t.intersectsAny(nd.next, level+1, b) {
		return true
	}
	return t.intersectsBelow(nd.children[0], level, b) ||
		t.intersectsBelow(nd.children[1], level, b)
}

// ContainedIn returns all stored boxes contained in w.
func (t *Tree) ContainedIn(w dyadic.Box) []dyadic.Box {
	return t.ContainedInAppend(nil, w)
}

// ContainedInAppend appends all stored boxes contained in w to out and
// returns the extended slice. The appended boxes alias the slab.
func (t *Tree) ContainedInAppend(out []dyadic.Box, w dyadic.Box) []dyadic.Box {
	if len(w) != t.n {
		panic("boxtree: dimension mismatch in ContainedIn")
	}
	return t.collectContained(rootNode, 0, w, out)
}

func (t *Tree) collectContained(ni uint32, level int, w dyadic.Box, out []dyadic.Box) []dyadic.Box {
	if ni == nilNode || t.nodes[ni].count == 0 {
		return out
	}
	// Navigate to the node spelling w[level]; everything below it has
	// w[level] as a prefix.
	iv := w[level]
	cur := ni
	for depth := 0; depth < int(iv.Len); depth++ {
		bit := iv.Bits >> uint(int(iv.Len)-1-depth) & 1
		cur = t.nodes[cur].children[bit]
		if cur == nilNode {
			return out
		}
	}
	return t.collectBelow(cur, level, w, out)
}

func (t *Tree) collectBelow(ni uint32, level int, w dyadic.Box, out []dyadic.Box) []dyadic.Box {
	if ni == nilNode || t.nodes[ni].count == 0 {
		return out
	}
	nd := t.nodes[ni]
	if level == t.n-1 {
		if nd.box != 0 {
			out = append(out, t.boxAt(nd.box))
		}
	} else if nd.next != nilNode {
		out = t.collectContained(nd.next, level+1, w, out)
	}
	out = t.collectBelow(nd.children[0], level, w, out)
	return t.collectBelow(nd.children[1], level, w, out)
}

// DeleteContainedIn removes every stored box that is contained in w and
// returns the number removed. Subtrees emptied by the removal are pruned
// and their node slots recycled.
func (t *Tree) DeleteContainedIn(w dyadic.Box) int {
	return t.DeleteContainedInBudget(w, -1)
}

// DeleteContainedInBudget is DeleteContainedIn with a bound on the number
// of trie nodes visited: once the budget is exhausted the sweep stops,
// leaving any not-yet-visited contained boxes in place. A negative budget
// means unlimited. Partial deletion keeps the tree consistent — the
// operation is pure compaction — while bounding the cost of subsuming
// very wide boxes, which would otherwise sweep the entire structure
// (Lemma 4.5's accounting charges only Õ(1) per resolution).
func (t *Tree) DeleteContainedInBudget(w dyadic.Box, budget int) int {
	if len(w) != t.n {
		panic("boxtree: dimension mismatch in DeleteContainedIn")
	}
	if budget < 0 {
		budget = int(^uint(0) >> 1)
	}
	removed := t.deleteContained(rootNode, 0, w, &budget)
	t.size -= removed
	return removed
}

func (t *Tree) deleteContained(ni uint32, level int, w dyadic.Box, budget *int) int {
	if ni == nilNode || t.nodes[ni].count == 0 {
		return 0
	}
	// Descend along w[level] to the subtree of contained boxes.
	iv := w[level]
	cur := ni
	for depth := 0; depth < int(iv.Len); depth++ {
		bit := iv.Bits >> uint(int(iv.Len)-1-depth) & 1
		cur = t.nodes[cur].children[bit]
		if cur == nilNode {
			return 0
		}
	}
	removed := t.deleteBelow(cur, level, w, budget)
	if removed > 0 {
		// deleteBelow fixed cur's count; re-walk the prefix path to fix
		// the ancestors (ni up to but excluding cur) without materializing
		// a path slice.
		fix := ni
		for depth := 0; depth < int(iv.Len); depth++ {
			t.nodes[fix].count -= int32(removed)
			bit := iv.Bits >> uint(int(iv.Len)-1-depth) & 1
			fix = t.nodes[fix].children[bit]
		}
	}
	return removed
}

func (t *Tree) deleteBelow(ni uint32, level int, w dyadic.Box, budget *int) int {
	if ni == nilNode || t.nodes[ni].count == 0 || *budget <= 0 {
		return 0
	}
	*budget--
	var rem int
	if level == t.n-1 {
		if t.nodes[ni].box != 0 {
			t.nodes[ni].box = 0 // payload is abandoned: the slab is append-only
			rem++
		}
	} else if nxt := t.nodes[ni].next; nxt != nilNode {
		rem += t.deleteContained(nxt, level+1, w, budget)
		if t.nodes[nxt].count == 0 {
			t.nodes[ni].next = nilNode
			t.releaseSubtree(nxt, level+1)
		}
	}
	for i := 0; i < 2; i++ {
		c := t.nodes[ni].children[i]
		if c == nilNode {
			continue
		}
		rem += t.deleteBelow(c, level, w, budget)
		if t.nodes[c].count == 0 {
			t.nodes[ni].children[i] = nilNode
			t.releaseSubtree(c, level)
		}
	}
	t.nodes[ni].count -= int32(rem)
	return rem
}

// subsumeBudget bounds the per-insertion compaction sweep; see
// DeleteContainedInBudget.
const subsumeBudget = 32

// InsertSubsuming inserts b unless it is already covered by a stored box;
// when inserted, stored boxes contained in b are removed (best-effort,
// bounded by subsumeBudget trie nodes per insertion). It reports whether
// b was inserted. This keeps the knowledge base compact without changing
// the region covered or breaking the Õ(1)-per-resolution cost accounting.
func (t *Tree) InsertSubsuming(b dyadic.Box) bool {
	if _, ok := t.ContainsSuperset(b); ok {
		return false
	}
	t.DeleteContainedInBudget(b, subsumeBudget)
	return t.Insert(b)
}

// All returns every stored box.
func (t *Tree) All() []dyadic.Box {
	out := make([]dyadic.Box, 0, t.size)
	return t.appendAll(rootNode, 0, out)
}

func (t *Tree) appendAll(ni uint32, level int, out []dyadic.Box) []dyadic.Box {
	if ni == nilNode || t.nodes[ni].count == 0 {
		return out
	}
	nd := t.nodes[ni]
	if level == t.n-1 && nd.box != 0 {
		out = append(out, t.boxAt(nd.box))
	}
	if nd.next != nilNode {
		out = t.appendAll(nd.next, level+1, out)
	}
	out = t.appendAll(nd.children[0], level, out)
	return t.appendAll(nd.children[1], level, out)
}

// Contains reports whether the exact box b is stored.
func (t *Tree) Contains(b dyadic.Box) bool {
	cur := uint32(rootNode)
	for level := 0; level < t.n; level++ {
		iv := b[level]
		for i := int(iv.Len) - 1; i >= 0; i-- {
			bit := iv.Bits >> uint(i) & 1
			cur = t.nodes[cur].children[bit]
			if cur == nilNode {
				return false
			}
		}
		if level == t.n-1 {
			return t.nodes[cur].box != 0
		}
		cur = t.nodes[cur].next
		if cur == nilNode {
			return false
		}
	}
	return false
}
