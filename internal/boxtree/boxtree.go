// Package boxtree implements the multilevel dyadic tree of Appendix C.1
// of the Tetris paper: the data structure backing the knowledge base A.
//
// Each level is a binary trie over the bits of one box component. A node
// whose path spells the i-th component of a stored box either links to the
// root of the next level's trie (i < n-1) or stores the box itself
// (i == n-1). Because a box a contains a box b exactly when every a_i is a
// prefix of b_i, the boxes containing b lie on the ≤ d+1 prefix paths per
// level, giving Õ(1) superset queries; the boxes contained in a box w form
// whole subtrees, giving cheap subsumption pruning.
package boxtree

import (
	"fmt"

	"tetrisjoin/internal/dyadic"
)

type node struct {
	children [2]*node
	next     *node      // root of the trie for the following component
	box      dyadic.Box // stored box (terminal nodes of the last level only)
	count    int        // boxes stored in this subtree, including deeper levels
}

// Tree stores a set of n-dimensional dyadic boxes.
type Tree struct {
	n    int
	root *node
	size int
}

// New returns an empty tree for n-dimensional boxes.
func New(n int) *Tree {
	if n < 1 {
		panic("boxtree: dimension must be positive")
	}
	return &Tree{n: n, root: &node{}}
}

// Dims returns the dimensionality of the stored boxes.
func (t *Tree) Dims() int { return t.n }

// Len returns the number of stored boxes.
func (t *Tree) Len() int { return t.size }

// Insert adds the box and reports whether it was not already present.
func (t *Tree) Insert(b dyadic.Box) bool {
	if len(b) != t.n {
		panic(fmt.Sprintf("boxtree: inserting %d-dimensional box into %d-dimensional tree", len(b), t.n))
	}
	path := make([]*node, 0, 64)
	nd := t.root
	path = append(path, nd)
	for level := 0; level < t.n; level++ {
		iv := b[level]
		for i := int(iv.Len) - 1; i >= 0; i-- {
			bit := iv.Bits >> uint(i) & 1
			if nd.children[bit] == nil {
				nd.children[bit] = &node{}
			}
			nd = nd.children[bit]
			path = append(path, nd)
		}
		if level == t.n-1 {
			if nd.box != nil {
				return false // exact duplicate
			}
			nd.box = b.Clone()
		} else {
			if nd.next == nil {
				nd.next = &node{}
			}
			nd = nd.next
			path = append(path, nd)
		}
	}
	for _, p := range path {
		p.count++
	}
	t.size++
	return true
}

// ContainsSuperset returns a stored box containing b, if any. Shorter
// prefixes (bigger boxes) are preferred, so the first match found tends to
// be a large cover.
func (t *Tree) ContainsSuperset(b dyadic.Box) (dyadic.Box, bool) {
	if len(b) != t.n {
		panic("boxtree: dimension mismatch in ContainsSuperset")
	}
	return findSuperset(t.root, 0, t.n, b, false)
}

// ProperSuperset returns a stored box that contains b and is not equal to
// b, if any.
func (t *Tree) ProperSuperset(b dyadic.Box) (dyadic.Box, bool) {
	if len(b) != t.n {
		panic("boxtree: dimension mismatch in ProperSuperset")
	}
	return findSuperset(t.root, 0, t.n, b, true)
}

func findSuperset(nd *node, level, n int, b dyadic.Box, proper bool) (dyadic.Box, bool) {
	if nd == nil || nd.count == 0 {
		return nil, false
	}
	iv := b[level]
	// Walk the prefixes of b's component at this level, from λ down to the
	// full component, probing the next level at each storage point.
	cur := nd
	for depth := 0; ; depth++ {
		if level == n-1 {
			if cur.box != nil {
				if !proper || !cur.box.Equal(b) {
					return cur.box, true
				}
			}
		} else if cur.next != nil {
			if found, ok := findSuperset(cur.next, level+1, n, b, proper); ok {
				return found, ok
			}
		}
		if depth == int(iv.Len) {
			return nil, false
		}
		bit := iv.Bits >> uint(int(iv.Len)-1-depth) & 1
		cur = cur.children[bit]
		if cur == nil {
			return nil, false
		}
	}
}

// Supersets returns all stored boxes containing b.
func (t *Tree) Supersets(b dyadic.Box) []dyadic.Box {
	if len(b) != t.n {
		panic("boxtree: dimension mismatch in Supersets")
	}
	var out []dyadic.Box
	collectSupersets(t.root, 0, t.n, b, &out)
	return out
}

func collectSupersets(nd *node, level, n int, b dyadic.Box, out *[]dyadic.Box) {
	if nd == nil || nd.count == 0 {
		return
	}
	iv := b[level]
	cur := nd
	for depth := 0; ; depth++ {
		if level == n-1 {
			if cur.box != nil {
				*out = append(*out, cur.box)
			}
		} else if cur.next != nil {
			collectSupersets(cur.next, level+1, n, b, out)
		}
		if depth == int(iv.Len) {
			return
		}
		bit := iv.Bits >> uint(int(iv.Len)-1-depth) & 1
		cur = cur.children[bit]
		if cur == nil {
			return
		}
	}
}

// IntersectsAny reports whether any stored box shares at least one point
// with b. A box intersects b exactly when every pair of corresponding
// components is prefix-comparable, so the search explores the prefixes of
// b's component (supersets at this level) plus the whole subtree below it
// (extensions), pruned by subtree counts.
func (t *Tree) IntersectsAny(b dyadic.Box) bool {
	if len(b) != t.n {
		panic("boxtree: dimension mismatch in IntersectsAny")
	}
	return intersectsAny(t.root, 0, t.n, b)
}

func intersectsAny(nd *node, level, n int, b dyadic.Box) bool {
	if nd == nil || nd.count == 0 {
		return false
	}
	iv := b[level]
	// Prefix path: nodes whose interval contains b's component.
	cur := nd
	for depth := 0; ; depth++ {
		if level == n-1 {
			if cur.box != nil {
				return true
			}
		} else if cur.next != nil && intersectsAny(cur.next, level+1, n, b) {
			return true
		}
		if depth == int(iv.Len) {
			break
		}
		bit := iv.Bits >> uint(int(iv.Len)-1-depth) & 1
		cur = cur.children[bit]
		if cur == nil {
			return false
		}
	}
	// cur spells b's component exactly; every descendant extends it and
	// is therefore comparable. Explore the whole subtree (skipping cur
	// itself, already handled above).
	var walk func(v *node) bool
	walk = func(v *node) bool {
		if v == nil || v.count == 0 {
			return false
		}
		if level == n-1 {
			if v.box != nil {
				return true
			}
		} else if v.next != nil && intersectsAny(v.next, level+1, n, b) {
			return true
		}
		return walk(v.children[0]) || walk(v.children[1])
	}
	return walk(cur.children[0]) || walk(cur.children[1])
}

// ContainedIn returns all stored boxes contained in w.
func (t *Tree) ContainedIn(w dyadic.Box) []dyadic.Box {
	if len(w) != t.n {
		panic("boxtree: dimension mismatch in ContainedIn")
	}
	var out []dyadic.Box
	collectContained(t.root, 0, t.n, w, &out)
	return out
}

func collectContained(nd *node, level, n int, w dyadic.Box, out *[]dyadic.Box) {
	if nd == nil || nd.count == 0 {
		return
	}
	// Navigate to the node spelling w[level]; everything below it has
	// w[level] as a prefix.
	iv := w[level]
	cur := nd
	for depth := 0; depth < int(iv.Len); depth++ {
		bit := iv.Bits >> uint(int(iv.Len)-1-depth) & 1
		cur = cur.children[bit]
		if cur == nil {
			return
		}
	}
	var walk func(*node)
	walk = func(v *node) {
		if v == nil || v.count == 0 {
			return
		}
		if level == n-1 {
			if v.box != nil {
				*out = append(*out, v.box)
			}
		} else if v.next != nil {
			collectContained(v.next, level+1, n, w, out)
		}
		walk(v.children[0])
		walk(v.children[1])
	}
	walk(cur)
}

// DeleteContainedIn removes every stored box that is contained in w and
// returns the number removed. Subtrees emptied by the removal are pruned.
func (t *Tree) DeleteContainedIn(w dyadic.Box) int {
	return t.DeleteContainedInBudget(w, -1)
}

// DeleteContainedInBudget is DeleteContainedIn with a bound on the number
// of trie nodes visited: once the budget is exhausted the sweep stops,
// leaving any not-yet-visited contained boxes in place. A negative budget
// means unlimited. Partial deletion keeps the tree consistent — the
// operation is pure compaction — while bounding the cost of subsuming
// very wide boxes, which would otherwise sweep the entire structure
// (Lemma 4.5's accounting charges only Õ(1) per resolution).
func (t *Tree) DeleteContainedInBudget(w dyadic.Box, budget int) int {
	if len(w) != t.n {
		panic("boxtree: dimension mismatch in DeleteContainedIn")
	}
	if budget < 0 {
		budget = int(^uint(0) >> 1)
	}
	removed := deleteContained(t.root, 0, t.n, w, &budget)
	t.size -= removed
	return removed
}

func deleteContained(nd *node, level, n int, w dyadic.Box, budget *int) int {
	if nd == nil || nd.count == 0 {
		return 0
	}
	iv := w[level]
	// Descend along w[level], remembering the path so counts can be fixed.
	path := []*node{nd}
	cur := nd
	for depth := 0; depth < int(iv.Len); depth++ {
		bit := iv.Bits >> uint(int(iv.Len)-1-depth) & 1
		cur = cur.children[bit]
		if cur == nil {
			return 0
		}
		path = append(path, cur)
	}
	var removed int
	var walk func(*node) int
	walk = func(v *node) int {
		if v == nil || v.count == 0 || *budget <= 0 {
			return 0
		}
		*budget--
		var rem int
		if level == n-1 {
			if v.box != nil {
				v.box = nil
				rem++
			}
		} else if v.next != nil {
			rem += deleteContained(v.next, level+1, n, w, budget)
			if v.next.count == 0 {
				v.next = nil
			}
		}
		for i, c := range v.children {
			r := walk(c)
			rem += r
			if c != nil && c.count == 0 {
				v.children[i] = nil
			}
		}
		v.count -= rem
		return rem
	}
	removed = walk(cur)
	// cur's count was fixed by walk; fix the ancestors.
	for _, p := range path[:len(path)-1] {
		p.count -= removed
	}
	if len(path) == 1 {
		// walk already adjusted nd (== cur); nothing more to do.
		_ = path
	}
	return removed
}

// subsumeBudget bounds the per-insertion compaction sweep; see
// DeleteContainedInBudget.
const subsumeBudget = 32

// InsertSubsuming inserts b unless it is already covered by a stored box;
// when inserted, stored boxes contained in b are removed (best-effort,
// bounded by subsumeBudget trie nodes per insertion). It reports whether
// b was inserted. This keeps the knowledge base compact without changing
// the region covered or breaking the Õ(1)-per-resolution cost accounting.
func (t *Tree) InsertSubsuming(b dyadic.Box) bool {
	if _, ok := t.ContainsSuperset(b); ok {
		return false
	}
	t.DeleteContainedInBudget(b, subsumeBudget)
	return t.Insert(b)
}

// All returns every stored box.
func (t *Tree) All() []dyadic.Box {
	out := make([]dyadic.Box, 0, t.size)
	var walk func(nd *node, level int)
	walk = func(nd *node, level int) {
		if nd == nil || nd.count == 0 {
			return
		}
		if level == t.n-1 && nd.box != nil {
			out = append(out, nd.box)
		}
		if nd.next != nil {
			walk(nd.next, level+1)
		}
		walk(nd.children[0], level)
		walk(nd.children[1], level)
	}
	walk(t.root, 0)
	return out
}

// Contains reports whether the exact box b is stored.
func (t *Tree) Contains(b dyadic.Box) bool {
	nd := t.root
	for level := 0; level < t.n; level++ {
		iv := b[level]
		for i := int(iv.Len) - 1; i >= 0; i-- {
			bit := iv.Bits >> uint(i) & 1
			nd = nd.children[bit]
			if nd == nil {
				return false
			}
		}
		if level == t.n-1 {
			return nd.box != nil
		}
		nd = nd.next
		if nd == nil {
			return false
		}
	}
	return false
}
