package boxtree

import (
	"math/rand"
	"testing"

	"tetrisjoin/internal/dyadic"
)

// TestDeleteContainedCountFixup is the regression test for the ancestor
// count fixup at the tail of deleteContained: after deleting a subtree
// reached through a non-empty prefix path, the counts along that path
// must reflect the removal, or later probes (which prune on count == 0)
// would either miss surviving boxes or resurrect deleted regions.
func TestDeleteContainedCountFixup(t *testing.T) {
	tr := New(2)
	for _, s := range []string{"00,λ", "00,1", "01,λ", "0,0", "1,λ"} {
		tr.Insert(mustBox(s))
	}
	// w = ⟨00,λ⟩ has a two-step prefix path at level 0; it contains
	// exactly ⟨00,λ⟩ and ⟨00,1⟩.
	if removed := tr.DeleteContainedIn(mustBox("00,λ")); removed != 2 {
		t.Fatalf("DeleteContainedIn removed %d, want 2", removed)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	// Unrelated boxes sharing the level-0 prefix path must survive and
	// stay reachable (count fixup must not zero their subtrees)…
	for _, s := range []string{"01,λ", "0,0", "1,λ"} {
		if !tr.Contains(mustBox(s)) {
			t.Errorf("box %s lost by count fixup", s)
		}
	}
	if _, ok := tr.ContainsSuperset(mustBox("01,11")); !ok {
		t.Error("ContainsSuperset misses surviving sibling after delete")
	}
	// …while the deleted region must be gone for probes that rely on
	// counts for pruning.
	if _, ok := tr.ContainsSuperset(mustBox("00,11")); ok {
		t.Error("ContainsSuperset found a deleted box")
	}
	if tr.IntersectsAny(mustBox("00,10")) {
		t.Error("IntersectsAny found a deleted box")
	}
	// The structure must remain fully usable: re-insert into the emptied
	// region and find it again.
	if !tr.Insert(mustBox("00,1")) {
		t.Fatal("re-insert into emptied region rejected")
	}
	if _, ok := tr.ContainsSuperset(mustBox("00,11")); !ok {
		t.Error("re-inserted box not found")
	}
}

// TestAliasStabilityAcrossDeletes checks the append-only slab guarantee
// the core skeleton depends on: a box returned by a query stays intact
// even after it is deleted from the tree and new boxes are inserted over
// the recycled node slots.
func TestAliasStabilityAcrossDeletes(t *testing.T) {
	tr := New(2)
	tr.Insert(mustBox("01,10"))
	w, ok := tr.ContainsSuperset(mustBox("01,10"))
	if !ok {
		t.Fatal("stored box not found")
	}
	tr.DeleteContainedIn(mustBox("01,λ"))
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		tr.Insert(randBox(r, 2, 8))
	}
	if !w.Equal(mustBox("01,10")) {
		t.Fatalf("alias mutated after delete+reinserts: %v", w)
	}
}

// TestResetReusesSlabs checks Reset semantics: the tree empties, stays
// fully usable, and steady-state churn after warmup does not grow the
// node slab (the free-list recycles slots).
func TestResetReusesSlabs(t *testing.T) {
	tr := New(3)
	r := rand.New(rand.NewSource(5))
	boxes := make([]dyadic.Box, 500)
	for i := range boxes {
		boxes[i] = randBox(r, 3, 6)
	}
	insertAll := func() int {
		n := 0
		for _, b := range boxes {
			if tr.Insert(b) {
				n++
			}
		}
		return n
	}
	first := insertAll()
	if tr.Len() != first {
		t.Fatalf("Len = %d, want %d", tr.Len(), first)
	}
	warmNodes := cap(tr.nodes)
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tr.Len())
	}
	if tr.Contains(boxes[0]) {
		t.Error("Reset left a box behind")
	}
	second := insertAll()
	if second != first {
		t.Fatalf("re-insert after Reset stored %d, want %d", second, first)
	}
	if cap(tr.nodes) != warmNodes {
		t.Errorf("node slab grew across Reset: %d -> %d", warmNodes, cap(tr.nodes))
	}
	for _, b := range boxes {
		if !tr.Contains(b) {
			t.Fatalf("box %v missing after Reset+reinsert", b)
		}
	}
}

// TestNodeRecycling checks that delete returns node slots to the
// free-list: repeated insert/delete cycles of the same region must not
// grow the node slab.
func TestNodeRecycling(t *testing.T) {
	tr := New(2)
	fill := func() {
		for x := uint64(0); x < 16; x++ {
			for y := uint64(0); y < 16; y++ {
				tr.Insert(dyadic.Box{dyadic.Unit(x, 4), dyadic.Unit(y, 4)})
			}
		}
	}
	fill()
	if removed := tr.DeleteContainedIn(mustBox("λ,λ")); removed != 256 {
		t.Fatalf("delete removed %d, want 256", removed)
	}
	warm := cap(tr.nodes)
	for cycle := 0; cycle < 5; cycle++ {
		fill()
		if tr.Len() != 256 {
			t.Fatalf("cycle %d: Len = %d", cycle, tr.Len())
		}
		if removed := tr.DeleteContainedIn(mustBox("λ,λ")); removed != 256 {
			t.Fatalf("cycle %d: delete removed %d", cycle, removed)
		}
	}
	if cap(tr.nodes) != warm {
		t.Errorf("node slab grew across churn cycles: %d -> %d", warm, cap(tr.nodes))
	}
}

// TestZeroAllocOps verifies the arena promise directly: steady-state
// Insert, ContainsSuperset, IntersectsAny and budgeted subsume-delete
// perform zero heap allocations.
func TestZeroAllocOps(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	boxes := make([]dyadic.Box, 256)
	for i := range boxes {
		boxes[i] = randBox(r, 3, 8)
	}
	tr := New(3)
	for _, b := range boxes {
		tr.Insert(b) // warm the slabs
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		if i%len(boxes) == 0 {
			tr.Reset()
		}
		b := boxes[i%len(boxes)]
		tr.Insert(b)
		tr.ContainsSuperset(b)
		tr.IntersectsAny(b)
		tr.DeleteContainedInBudget(b, 8)
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state ops allocate %.1f times per run, want 0", allocs)
	}
}
