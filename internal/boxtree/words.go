package boxtree

import (
	"fmt"

	"tetrisjoin/internal/dyadic"
)

// AppendWords appends the tree's full arena state to dst as a flat
// word slab — the segment serialization form. Layout:
//
//	[dims | nodeCount<<32]
//	[ivCount | size<<32]
//	nodeCount × 3 words: {c0|c1<<32, next|box<<32, count (as uint32)}
//	ivCount × 2 words:   {Bits, Len}
//	[free]
//
// The slab captures the arena verbatim, free-list threading included,
// so a round trip through TreeFromWords yields a structurally
// identical tree (not merely the same box set).
func (t *Tree) AppendWords(dst []uint64) []uint64 {
	dst = append(dst,
		uint64(uint32(t.n))|uint64(uint32(len(t.nodes)))<<32,
		uint64(uint32(len(t.ivs)))|uint64(uint32(t.size))<<32,
	)
	for _, nd := range t.nodes {
		dst = append(dst,
			uint64(nd.children[0])|uint64(nd.children[1])<<32,
			uint64(nd.next)|uint64(nd.box)<<32,
			uint64(uint32(nd.count)),
		)
	}
	for _, iv := range t.ivs {
		dst = append(dst, iv.Bits, uint64(iv.Len))
	}
	return append(dst, uint64(t.free))
}

// TreeFromWords rebuilds a tree from an AppendWords slab, validating
// every node and payload reference so a corrupt slab is rejected
// instead of producing out-of-bounds trie walks.
func TreeFromWords(words []uint64) (*Tree, error) {
	if len(words) < 2 {
		return nil, fmt.Errorf("boxtree: slab too short (%d words)", len(words))
	}
	n := int(uint32(words[0]))
	nodeCount := int(words[0] >> 32)
	ivCount := int(uint32(words[1]))
	size := int(words[1] >> 32)
	if n < 1 {
		return nil, fmt.Errorf("boxtree: invalid dimension %d", n)
	}
	want := 2 + 3*nodeCount + 2*ivCount + 1
	if nodeCount < 2 || len(words) != want {
		return nil, fmt.Errorf("boxtree: slab has %d words, want %d (%d nodes, %d intervals)", len(words), want, nodeCount, ivCount)
	}
	if ivCount%n != 0 {
		return nil, fmt.Errorf("boxtree: %d intervals not a multiple of dimension %d", ivCount, n)
	}
	t := &Tree{n: n, size: size}
	t.nodes = make([]node, nodeCount)
	for i := range t.nodes {
		w := words[2+3*i : 2+3*i+3]
		nd := node{
			children: [2]uint32{uint32(w[0]), uint32(w[0] >> 32)},
			next:     uint32(w[1]),
			box:      uint32(w[1] >> 32),
			count:    int32(uint32(w[2])),
		}
		if int(nd.children[0]) >= nodeCount || int(nd.children[1]) >= nodeCount || int(nd.next) >= nodeCount {
			return nil, fmt.Errorf("boxtree: node %d links out of range", i)
		}
		if nd.box != 0 && int(nd.box-1)+n > ivCount {
			return nil, fmt.Errorf("boxtree: node %d box ref %d out of range", i, nd.box)
		}
		t.nodes[i] = nd
	}
	t.ivs = make([]dyadic.Interval, ivCount)
	base := 2 + 3*nodeCount
	for i := range t.ivs {
		ln := words[base+2*i+1]
		if ln > dyadic.MaxDepth {
			return nil, fmt.Errorf("boxtree: interval %d length %d exceeds max depth", i, ln)
		}
		t.ivs[i] = dyadic.Interval{Bits: words[base+2*i], Len: uint8(ln)}
	}
	t.free = uint32(words[len(words)-1])
	if int(t.free) >= nodeCount {
		return nil, fmt.Errorf("boxtree: free-list head %d out of range", t.free)
	}
	if size < 0 || int(t.nodes[rootNode].count) != size {
		return nil, fmt.Errorf("boxtree: size %d disagrees with root count %d", size, t.nodes[rootNode].count)
	}
	return t, nil
}
