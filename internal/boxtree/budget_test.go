package boxtree

import (
	"testing"

	"tetrisjoin/internal/dyadic"
)

func TestDeleteContainedInBudgetPartial(t *testing.T) {
	tr := New(2)
	// Many unit boxes inside ⟨0,λ⟩.
	for x := uint64(0); x < 8; x++ {
		for y := uint64(0); y < 16; y++ {
			tr.Insert(dyadic.Box{dyadic.Unit(x, 4), dyadic.Unit(y, 4)})
		}
	}
	total := tr.Len()
	// A tiny budget removes only some of the contained boxes…
	removed := tr.DeleteContainedInBudget(dyadic.MustParseBox("0,λ"), 10)
	if removed <= 0 || removed >= total {
		t.Fatalf("budgeted delete removed %d of %d", removed, total)
	}
	if tr.Len() != total-removed {
		t.Fatalf("Len = %d, want %d", tr.Len(), total-removed)
	}
	// …and the structure stays fully consistent: a second, unlimited
	// sweep removes the rest and every remaining query still works.
	rest := tr.DeleteContainedIn(dyadic.MustParseBox("0,λ"))
	if removed+rest != total {
		t.Fatalf("two sweeps removed %d+%d of %d", removed, rest, total)
	}
	if tr.Len() != 0 {
		t.Fatalf("tree not empty: %d", tr.Len())
	}
	if _, ok := tr.ContainsSuperset(dyadic.MustParseBox("0000,0000")); ok {
		t.Error("query found a deleted box")
	}
}

func TestDeleteContainedInBudgetZero(t *testing.T) {
	tr := New(1)
	tr.Insert(dyadic.MustParseBox("01"))
	if removed := tr.DeleteContainedInBudget(dyadic.MustParseBox("0"), 0); removed != 0 {
		t.Errorf("zero budget removed %d boxes", removed)
	}
	if tr.Len() != 1 {
		t.Error("zero-budget sweep changed the tree")
	}
}

func TestIntersectsAnyDimensionMismatch(t *testing.T) {
	tr := New(2)
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch accepted")
		}
	}()
	tr.IntersectsAny(dyadic.MustParseBox("λ"))
}
