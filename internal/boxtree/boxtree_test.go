package boxtree

import (
	"math/rand"
	"sort"
	"testing"

	"tetrisjoin/internal/dyadic"
)

func mustBox(s string) dyadic.Box { return dyadic.MustParseBox(s) }

func TestInsertAndContains(t *testing.T) {
	tr := New(2)
	boxes := []string{"λ,0", "00,λ", "λ,11", "10,1", "01,10"}
	for _, s := range boxes {
		if !tr.Insert(mustBox(s)) {
			t.Errorf("Insert(%s) reported duplicate", s)
		}
	}
	if tr.Len() != len(boxes) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(boxes))
	}
	if tr.Insert(mustBox("λ,0")) {
		t.Error("duplicate insert succeeded")
	}
	if tr.Len() != len(boxes) {
		t.Errorf("Len changed on duplicate insert")
	}
	for _, s := range boxes {
		if !tr.Contains(mustBox(s)) {
			t.Errorf("Contains(%s) = false", s)
		}
	}
	if tr.Contains(mustBox("λ,λ")) {
		t.Error("Contains reported absent box")
	}
}

func TestSupersetQueries(t *testing.T) {
	tr := New(2)
	for _, s := range []string{"λ,0", "00,λ", "λ,11", "10,1"} {
		tr.Insert(mustBox(s))
	}
	cases := []struct {
		q    string
		want []string // all supersets
	}{
		{"00,01", []string{"λ,0", "00,λ"}},
		{"01,10", nil},
		{"10,11", []string{"λ,11", "10,1"}},
		{"λ,λ", nil},
		{"λ,0", []string{"λ,0"}},
		{"00,00", []string{"λ,0", "00,λ"}},
		{"11,110", []string{"λ,11"}},
	}
	for _, c := range cases {
		got := tr.Supersets(mustBox(c.q))
		var gotS []string
		for _, b := range got {
			gotS = append(gotS, b.String())
		}
		var wantS []string
		for _, s := range c.want {
			wantS = append(wantS, mustBox(s).String())
		}
		sort.Strings(gotS)
		sort.Strings(wantS)
		if len(gotS) != len(wantS) {
			t.Errorf("Supersets(%s) = %v, want %v", c.q, gotS, wantS)
			continue
		}
		for i := range gotS {
			if gotS[i] != wantS[i] {
				t.Errorf("Supersets(%s) = %v, want %v", c.q, gotS, wantS)
				break
			}
		}
		_, ok := tr.ContainsSuperset(mustBox(c.q))
		if ok != (len(c.want) > 0) {
			t.Errorf("ContainsSuperset(%s) = %v, want %v", c.q, ok, len(c.want) > 0)
		}
	}
}

func TestProperSuperset(t *testing.T) {
	tr := New(2)
	tr.Insert(mustBox("01,1"))
	if _, ok := tr.ProperSuperset(mustBox("01,1")); ok {
		t.Error("ProperSuperset returned the box itself")
	}
	if _, ok := tr.ContainsSuperset(mustBox("01,1")); !ok {
		t.Error("ContainsSuperset should return the box itself")
	}
	tr.Insert(mustBox("01,λ"))
	got, ok := tr.ProperSuperset(mustBox("01,1"))
	if !ok || !got.Equal(mustBox("01,λ")) {
		t.Errorf("ProperSuperset = %v, %v", got, ok)
	}
}

func TestContainedInAndDelete(t *testing.T) {
	tr := New(2)
	all := []string{"λ,0", "00,λ", "00,01", "01,10", "0,1", "1,λ"}
	for _, s := range all {
		tr.Insert(mustBox(s))
	}
	got := tr.ContainedIn(mustBox("0,λ"))
	wantSet := map[string]bool{"⟨00,λ⟩": true, "⟨00,01⟩": true, "⟨01,10⟩": true, "⟨0,1⟩": true}
	if len(got) != len(wantSet) {
		t.Fatalf("ContainedIn = %v", got)
	}
	for _, b := range got {
		if !wantSet[b.String()] {
			t.Errorf("unexpected contained box %s", b)
		}
	}
	removed := tr.DeleteContainedIn(mustBox("0,λ"))
	if removed != 4 {
		t.Errorf("DeleteContainedIn removed %d, want 4", removed)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d after delete, want 2", tr.Len())
	}
	if tr.Contains(mustBox("00,λ")) {
		t.Error("deleted box still present")
	}
	if !tr.Contains(mustBox("λ,0")) || !tr.Contains(mustBox("1,λ")) {
		t.Error("unrelated boxes were deleted")
	}
	// Supersets still work after pruning.
	if _, ok := tr.ContainsSuperset(mustBox("11,00")); !ok {
		t.Error("ContainsSuperset broken after delete")
	}
}

func TestInsertSubsuming(t *testing.T) {
	tr := New(2)
	tr.Insert(mustBox("00,01"))
	tr.Insert(mustBox("01,1"))
	tr.Insert(mustBox("1,λ"))
	// Covered by an existing box: not inserted.
	if tr.InsertSubsuming(mustBox("10,0")) {
		t.Error("InsertSubsuming inserted a covered box")
	}
	// Covers two existing boxes: they are replaced.
	if !tr.InsertSubsuming(mustBox("0,λ")) {
		t.Error("InsertSubsuming refused a new box")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	if tr.Contains(mustBox("00,01")) || tr.Contains(mustBox("01,1")) {
		t.Error("subsumed boxes not removed")
	}
}

func TestAll(t *testing.T) {
	tr := New(3)
	in := []string{"λ,λ,λ", "0,1,λ", "01,10,11"}
	for _, s := range in {
		tr.Insert(mustBox(s))
	}
	got := tr.All()
	if len(got) != len(in) {
		t.Fatalf("All returned %d boxes, want %d", len(got), len(in))
	}
	seen := map[string]bool{}
	for _, b := range got {
		seen[b.String()] = true
	}
	for _, s := range in {
		if !seen[mustBox(s).String()] {
			t.Errorf("All missing %s", s)
		}
	}
}

func randInterval(r *rand.Rand, d uint8) dyadic.Interval {
	l := uint8(r.Intn(int(d) + 1))
	var b uint64
	if l > 0 {
		b = r.Uint64() & (1<<l - 1)
	}
	return dyadic.Interval{Bits: b, Len: l}
}

func randBox(r *rand.Rand, n int, d uint8) dyadic.Box {
	b := make(dyadic.Box, n)
	for i := range b {
		b[i] = randInterval(r, d)
	}
	return b
}

// TestRandomAgainstBruteForce cross-checks every tree operation against a
// plain slice implementation under a random workload.
func TestRandomAgainstBruteForce(t *testing.T) {
	const n, d = 3, 4
	r := rand.New(rand.NewSource(42))
	tr := New(n)
	var ref []dyadic.Box

	refContains := func(b dyadic.Box) bool {
		for _, x := range ref {
			if x.Equal(b) {
				return true
			}
		}
		return false
	}
	for step := 0; step < 3000; step++ {
		b := randBox(r, n, d)
		switch r.Intn(10) {
		case 0, 1, 2, 3: // insert
			inserted := tr.Insert(b)
			if inserted == refContains(b) {
				t.Fatalf("step %d: Insert(%s) = %v inconsistent with reference", step, b, inserted)
			}
			if inserted {
				ref = append(ref, b)
			}
		case 4, 5: // superset queries
			var want []string
			for _, x := range ref {
				if x.Contains(b) {
					want = append(want, x.String())
				}
			}
			var got []string
			for _, x := range tr.Supersets(b) {
				got = append(got, x.String())
			}
			sort.Strings(want)
			sort.Strings(got)
			if len(got) != len(want) {
				t.Fatalf("step %d: Supersets(%s) = %v, want %v", step, b, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: Supersets(%s) = %v, want %v", step, b, got, want)
				}
			}
			if _, ok := tr.ContainsSuperset(b); ok != (len(want) > 0) {
				t.Fatalf("step %d: ContainsSuperset mismatch", step)
			}
		case 6: // intersection probe
			want := false
			for _, x := range ref {
				if x.Intersects(b) {
					want = true
					break
				}
			}
			if got := tr.IntersectsAny(b); got != want {
				t.Fatalf("step %d: IntersectsAny(%s) = %v, want %v", step, b, got, want)
			}
		case 7, 8: // contained-in queries
			var want []string
			for _, x := range ref {
				if b.Contains(x) {
					want = append(want, x.String())
				}
			}
			var got []string
			for _, x := range tr.ContainedIn(b) {
				got = append(got, x.String())
			}
			sort.Strings(want)
			sort.Strings(got)
			if len(got) != len(want) {
				t.Fatalf("step %d: ContainedIn(%s) = %v, want %v", step, b, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: ContainedIn mismatch", step)
				}
			}
		case 9: // delete contained
			removed := tr.DeleteContainedIn(b)
			var kept []dyadic.Box
			wantRemoved := 0
			for _, x := range ref {
				if b.Contains(x) {
					wantRemoved++
				} else {
					kept = append(kept, x)
				}
			}
			if removed != wantRemoved {
				t.Fatalf("step %d: DeleteContainedIn removed %d, want %d", step, removed, wantRemoved)
			}
			ref = kept
		}
		if tr.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, tr.Len(), len(ref))
		}
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	tr := New(2)
	for name, f := range map[string]func(){
		"Insert":            func() { tr.Insert(mustBox("λ,λ,λ")) },
		"ContainsSuperset":  func() { tr.ContainsSuperset(mustBox("λ")) },
		"Supersets":         func() { tr.Supersets(mustBox("λ")) },
		"ContainedIn":       func() { tr.ContainedIn(mustBox("λ")) },
		"DeleteContainedIn": func() { tr.DeleteContainedIn(mustBox("λ")) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with wrong dimension did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkInsert(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	boxes := make([]dyadic.Box, 4096)
	for i := range boxes {
		boxes[i] = randBox(r, 3, 16)
	}
	b.ReportAllocs()
	b.ResetTimer()
	tr := New(3)
	for i := 0; i < b.N; i++ {
		tr.Insert(boxes[i%len(boxes)])
	}
}

// BenchmarkInsertFresh measures steady-state insertion into a warmed-up
// arena: the tree is Reset once its slabs have grown, so every insert is
// genuinely stored (no duplicate short-circuit) yet allocation-free.
func BenchmarkInsertFresh(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	boxes := make([]dyadic.Box, 4096)
	for i := range boxes {
		boxes[i] = randBox(r, 3, 16)
	}
	tr := New(3)
	for _, bx := range boxes {
		tr.Insert(bx) // warm the slabs
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(boxes) == 0 {
			tr.Reset()
		}
		tr.Insert(boxes[i%len(boxes)])
	}
}

func BenchmarkContainsSuperset(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	tr := New(3)
	for i := 0; i < 10000; i++ {
		tr.Insert(randBox(r, 3, 16))
	}
	queries := make([]dyadic.Box, 1024)
	for i := range queries {
		queries[i] = randBox(r, 3, 16)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ContainsSuperset(queries[i%len(queries)])
	}
}

func BenchmarkIntersectsAny(b *testing.B) {
	r := rand.New(rand.NewSource(12))
	tr := New(3)
	for i := 0; i < 10000; i++ {
		tr.Insert(randBox(r, 3, 16))
	}
	queries := make([]dyadic.Box, 1024)
	for i := range queries {
		queries[i] = randBox(r, 3, 16)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.IntersectsAny(queries[i%len(queries)])
	}
}

// BenchmarkInsertSubsuming exercises the full knowledge-base insert path:
// superset probe, budgeted subsume-delete, insert.
func BenchmarkInsertSubsuming(b *testing.B) {
	r := rand.New(rand.NewSource(13))
	boxes := make([]dyadic.Box, 4096)
	for i := range boxes {
		boxes[i] = randBox(r, 3, 12)
	}
	tr := New(3)
	for _, bx := range boxes {
		tr.InsertSubsuming(bx) // warm the slabs
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(boxes) == 0 {
			tr.Reset()
		}
		tr.InsertSubsuming(boxes[i%len(boxes)])
	}
}
