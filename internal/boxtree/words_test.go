package boxtree

import (
	"math/rand"
	"reflect"
	"testing"

	"tetrisjoin/internal/dyadic"
)

func TestWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New(3)
	depths := []uint8{6, 6, 6}
	var boxes []dyadic.Box
	for i := 0; i < 200; i++ {
		b := make(dyadic.Box, 3)
		for d := range b {
			ln := uint8(rng.Intn(int(depths[d]) + 1))
			b[d] = dyadic.Interval{Bits: rng.Uint64() & ((1 << ln) - 1), Len: ln}
		}
		if tr.Insert(b) {
			boxes = append(boxes, b.Clone())
		}
		// Interleave deletions so the free-list is threaded.
		if i%17 == 16 {
			victim := make(dyadic.Box, 3)
			for d := range victim {
				victim[d] = dyadic.Interval{}
			}
			tr.DeleteContainedInBudget(victim, 4)
		}
	}

	slab := tr.AppendWords(nil)
	got, err := TreeFromWords(slab)
	if err != nil {
		t.Fatalf("TreeFromWords: %v", err)
	}
	if got.Len() != tr.Len() || got.Dims() != tr.Dims() {
		t.Fatalf("len/dims = %d/%d, want %d/%d", got.Len(), got.Dims(), tr.Len(), tr.Dims())
	}
	// Structural identity: the rebuilt arena must behave exactly like
	// the original for membership and superset queries...
	for _, b := range boxes {
		if tr.Contains(b) != got.Contains(b) {
			t.Fatalf("Contains(%v) diverges", b)
		}
		if _, ok1 := tr.ContainsSuperset(b); true {
			_, ok2 := got.ContainsSuperset(b)
			if ok1 != ok2 {
				t.Fatalf("ContainsSuperset(%v) diverges", b)
			}
		}
	}
	// ...and All must enumerate the same set.
	all1 := map[string]bool{}
	for _, b := range tr.All() {
		all1[b.Key()] = true
	}
	all2 := map[string]bool{}
	for _, b := range got.All() {
		all2[b.Key()] = true
	}
	if !reflect.DeepEqual(all1, all2) {
		t.Fatalf("All() sets diverge: %d vs %d boxes", len(all1), len(all2))
	}
	// The free-list must round-trip: further inserts reuse freed slots
	// identically (slab lengths stay in lock-step).
	extra := dyadic.Box{{Bits: 1, Len: 3}, {Bits: 2, Len: 3}, {Bits: 3, Len: 3}}
	tr.Insert(extra)
	got.Insert(extra)
	if len(tr.nodes) != len(got.nodes) {
		t.Fatalf("post-insert node slab lengths diverge: %d vs %d", len(tr.nodes), len(got.nodes))
	}
}

func TestTreeFromWordsRejectsCorruption(t *testing.T) {
	tr := New(2)
	tr.Insert(dyadic.Box{{Bits: 1, Len: 2}, {Bits: 0, Len: 1}})
	tr.Insert(dyadic.Box{{Bits: 0, Len: 1}, {Bits: 1, Len: 1}})
	clean := tr.AppendWords(nil)

	if _, err := TreeFromWords(clean); err != nil {
		t.Fatalf("clean slab rejected: %v", err)
	}
	mut := func(f func([]uint64) []uint64) []uint64 {
		s := append([]uint64(nil), clean...)
		return f(s)
	}
	cases := []struct {
		name string
		slab []uint64
	}{
		{"short", clean[:1]},
		{"truncated", clean[:len(clean)-2]},
		{"zero-dim", mut(func(s []uint64) []uint64 { s[0] &^= 0xFFFFFFFF; return s })},
		{"child-out-of-range", mut(func(s []uint64) []uint64 { s[2+3] |= 0xFFFF; return s })},
		{"box-ref-out-of-range", mut(func(s []uint64) []uint64 { s[2+3*1+1] |= 0xFFFF << 32; return s })},
		{"bad-interval-len", mut(func(s []uint64) []uint64 {
			nodes := int(s[0] >> 32)
			s[2+3*nodes+1] = 200
			return s
		})},
		{"size-mismatch", mut(func(s []uint64) []uint64 { s[1] ^= 1 << 32; return s })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := TreeFromWords(tc.slab); err == nil {
				t.Fatal("corrupt slab accepted")
			}
		})
	}
}
