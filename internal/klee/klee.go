// Package klee solves Klee's measure problem over the Boolean semiring
// via Tetris (Corollaries F.8 and F.12 of the paper): given a set of
// boxes, decide whether their union covers the whole space — in time
// Õ(|B|^{n/2}) through the load-balanced Tetris variant. An exact
// measure-by-coordinate-compression routine is included as a
// cross-check for small inputs.
package klee

import (
	"fmt"
	"math/big"
	"sort"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/dyadic"
)

// Report is the outcome of a Boolean Klee query.
type Report struct {
	// Covered is true when the union of the boxes is the whole space.
	Covered bool
	// Uncovered, when not Covered, is a point outside the union.
	Uncovered []uint64
	// Stats reports the Tetris work performed.
	Stats core.Stats
}

// CoversSpace decides the Boolean Klee's measure problem with
// Tetris-Preloaded-LB (Algorithm 3): Õ(|B|^{n/2}) resolutions.
func CoversSpace(depths []uint8, boxes []dyadic.Box) (*Report, error) {
	o, err := core.NewBoxOracle(depths, boxes)
	if err != nil {
		return nil, err
	}
	res, err := core.Run(o, core.Options{Mode: core.PreloadedLB, MaxOutput: 1})
	if err != nil {
		return nil, err
	}
	rep := &Report{Covered: res.Stats.Outputs == 0, Stats: res.Stats}
	if !rep.Covered {
		rep.Uncovered = res.Tuples[0]
	}
	return rep, nil
}

// Measure computes the exact number of points covered by the union of
// the boxes via coordinate compression — O((2m)^n) cells — for
// cross-checking. Limited to n ≤ 4 dimensions and 64 boxes.
func Measure(depths []uint8, boxes []dyadic.Box) (uint64, error) {
	n := len(depths)
	if n == 0 || n > 4 {
		return 0, fmt.Errorf("klee: Measure supports 1..4 dimensions, got %d", n)
	}
	if len(boxes) > 64 {
		return 0, fmt.Errorf("klee: Measure limited to 64 boxes, got %d", len(boxes))
	}
	for _, b := range boxes {
		if err := b.Check(depths); err != nil {
			return 0, err
		}
	}
	// Coordinate compression per dimension: cell boundaries at box edges.
	cuts := make([][]uint64, n)
	for i := 0; i < n; i++ {
		set := map[uint64]bool{0: true}
		for _, b := range boxes {
			set[b[i].Lo(depths[i])] = true
			if hi := b[i].Hi(depths[i]); hi+1 < 1<<depths[i] {
				set[hi+1] = true
			}
		}
		for v := range set {
			cuts[i] = append(cuts[i], v)
		}
		sort.Slice(cuts[i], func(a, b int) bool { return cuts[i][a] < cuts[i][b] })
	}
	cellWidth := func(dim, idx int) uint64 {
		lo := cuts[dim][idx]
		var hi uint64
		if idx+1 < len(cuts[dim]) {
			hi = cuts[dim][idx+1]
		} else {
			hi = 1 << depths[dim]
		}
		return hi - lo
	}
	var total uint64
	idx := make([]int, n)
	var rec func(dim int, width uint64)
	rec = func(dim int, width uint64) {
		if dim == n {
			// Cell representative point: the cut corner.
			pt := make([]uint64, n)
			for i, j := range idx {
				pt[i] = cuts[i][j]
			}
			for _, b := range boxes {
				if b.ContainsPoint(pt, depths) {
					total += width
					return
				}
			}
			return
		}
		for j := range cuts[dim] {
			idx[dim] = j
			rec(dim+1, width*cellWidth(dim, j))
		}
	}
	rec(0, 1)
	return total, nil
}

// SpaceSize returns the total number of points of the space (panics above
// 63 total bits).
func SpaceSize(depths []uint8) uint64 {
	total := 0
	for _, d := range depths {
		total += int(d)
	}
	if total > 63 {
		panic("klee: space size overflow")
	}
	return 1 << uint(total)
}

// MeasureExact computes the exact measure of the union of the boxes —
// Klee's measure problem over the counting semiring — in any dimension
// and at any depth, via the counting variant of Tetris:
// measure = |space| − #uncovered points. Unlike Measure it has no
// dimension or box-count limits and returns an exact big integer.
func MeasureExact(depths []uint8, boxes []dyadic.Box) (*big.Int, error) {
	rep, err := core.CountUncovered(depths, boxes, core.Options{})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, d := range depths {
		total += int(d)
	}
	space := new(big.Int).Lsh(big.NewInt(1), uint(total))
	return space.Sub(space, rep.Uncovered), nil
}
