package klee

import (
	"math/rand"
	"testing"

	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/workload"
)

func TestCoversSpaceFigure5(t *testing.T) {
	inst := workload.TriangleMSBBoxes(4)
	rep, err := CoversSpace(inst.Depths, inst.Boxes)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Covered {
		t.Error("Figure 5 boxes should cover the space")
	}
}

func TestCoversSpaceFindsHole(t *testing.T) {
	depths := []uint8{3, 3, 3}
	boxes := []dyadic.Box{dyadic.MustParseBox("0,λ,λ"), dyadic.MustParseBox("λ,0,λ")}
	rep, err := CoversSpace(depths, boxes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered {
		t.Fatal("half-spaces reported as covering")
	}
	p := rep.Uncovered
	if p[0] < 4 || p[1] < 4 {
		t.Errorf("witness %v is actually covered", p)
	}
}

func TestMeasureExact(t *testing.T) {
	depths := []uint8{3, 3}
	cases := []struct {
		boxes []string
		want  uint64
	}{
		{nil, 0},
		{[]string{"λ,λ"}, 64},
		{[]string{"0,λ"}, 32},
		{[]string{"0,λ", "1,λ"}, 64},
		{[]string{"0,λ", "λ,0"}, 48}, // inclusion-exclusion: 32+32-16
		{[]string{"000,000"}, 1},
		{[]string{"000,000", "000,000"}, 1}, // duplicates
		{[]string{"00,00", "0,0"}, 16},      // nested
	}
	for _, c := range cases {
		var bs []dyadic.Box
		for _, s := range c.boxes {
			bs = append(bs, dyadic.MustParseBox(s))
		}
		got, err := Measure(depths, bs)
		if err != nil {
			t.Fatalf("%v: %v", c.boxes, err)
		}
		if got != c.want {
			t.Errorf("Measure(%v) = %d, want %d", c.boxes, got, c.want)
		}
	}
}

func TestMeasureAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	depths := []uint8{3, 3, 3}
	for trial := 0; trial < 20; trial++ {
		inst := workload.RandomBoxes(3, 1+r.Intn(10), 3, int64(trial)+100)
		got, err := Measure(depths, inst.Boxes)
		if err != nil {
			t.Fatal(err)
		}
		var want uint64
		for x := uint64(0); x < 8; x++ {
			for y := uint64(0); y < 8; y++ {
				for z := uint64(0); z < 8; z++ {
					for _, b := range inst.Boxes {
						if b.ContainsPoint([]uint64{x, y, z}, depths) {
							want++
							break
						}
					}
				}
			}
		}
		if got != want {
			t.Fatalf("trial %d: Measure = %d, brute force = %d", trial, got, want)
		}
	}
}

func TestCoversSpaceAgreesWithMeasure(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		inst := workload.RandomBoxes(3, 2+trial%12, 3, int64(trial)+500)
		rep, err := CoversSpace(inst.Depths, inst.Boxes)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Measure(inst.Depths, inst.Boxes)
		if err != nil {
			t.Fatal(err)
		}
		want := m == SpaceSize(inst.Depths)
		if rep.Covered != want {
			t.Fatalf("trial %d: Covered=%v but measure %d of %d", trial, rep.Covered, m, SpaceSize(inst.Depths))
		}
	}
}

func TestMeasureGuards(t *testing.T) {
	if _, err := Measure([]uint8{3, 3, 3, 3, 3}, nil); err == nil {
		t.Error("5 dimensions accepted")
	}
	big := make([]dyadic.Box, 65)
	for i := range big {
		big[i] = dyadic.Universe(2)
	}
	if _, err := Measure([]uint8{3, 3}, big); err == nil {
		t.Error("65 boxes accepted")
	}
	if _, err := Measure([]uint8{3}, []dyadic.Box{dyadic.MustParseBox("0,1")}); err == nil {
		t.Error("wrong-arity box accepted")
	}
}
