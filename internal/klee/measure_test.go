package klee

import (
	"math/big"
	"testing"

	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/workload"
)

func TestMeasureExactAgainstCompression(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		inst := workload.RandomBoxes(3, 1+trial%12, 3, int64(trial)+900)
		exact, err := MeasureExact(inst.Depths, inst.Boxes)
		if err != nil {
			t.Fatal(err)
		}
		compressed, err := Measure(inst.Depths, inst.Boxes)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Cmp(new(big.Int).SetUint64(compressed)) != 0 {
			t.Fatalf("trial %d: MeasureExact = %s, compression = %d", trial, exact, compressed)
		}
	}
}

func TestMeasureExactBeyondCompressionLimits(t *testing.T) {
	// 6 dimensions, depth 20: far beyond Measure's n ≤ 4 limit, 2^120
	// points. Two overlapping half-spaces measure 3/4 of the space.
	depths := []uint8{20, 20, 20, 20, 20, 20}
	boxes := []dyadic.Box{
		dyadic.MustParseBox("0,λ,λ,λ,λ,λ"),
		dyadic.MustParseBox("λ,0,λ,λ,λ,λ"),
	}
	got, err := MeasureExact(depths, boxes)
	if err != nil {
		t.Fatal(err)
	}
	space := new(big.Int).Lsh(big.NewInt(1), 120)
	want := new(big.Int).Mul(space, big.NewInt(3))
	want.Div(want, big.NewInt(4))
	if got.Cmp(want) != 0 {
		t.Fatalf("MeasureExact = %s, want %s", got, want)
	}
}

func TestMeasureExactPartitionIsFull(t *testing.T) {
	inst := workload.RandomDyadicPartition(4, 50, 6, 77)
	got, err := MeasureExact(inst.Depths, inst.Boxes)
	if err != nil {
		t.Fatal(err)
	}
	space := new(big.Int).Lsh(big.NewInt(1), 24)
	if got.Cmp(space) != 0 {
		t.Fatalf("partition measure %s of %s", got, space)
	}
}
