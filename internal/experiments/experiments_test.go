package experiments

import (
	"math"
	"strconv"
	"testing"
)

func TestFitExponent(t *testing.T) {
	// y = 3x²: exponent 2 exactly.
	xs := []float64{1, 2, 4, 8}
	ys := []float64{3, 12, 48, 192}
	if got := FitExponent(xs, ys); math.Abs(got-2) > 1e-9 {
		t.Errorf("FitExponent = %g, want 2", got)
	}
	// Flat series: exponent 0.
	if got := FitExponent(xs, []float64{5, 5, 5, 5}); math.Abs(got) > 1e-9 {
		t.Errorf("flat exponent = %g", got)
	}
	// Degenerate inputs.
	if !math.IsNaN(FitExponent([]float64{1}, []float64{2})) {
		t.Error("single point should be NaN")
	}
	if !math.IsNaN(FitExponent(xs, ys[:2])) {
		t.Error("mismatched lengths should be NaN")
	}
	if !math.IsNaN(FitExponent([]float64{2, 2}, []float64{1, 5})) {
		t.Error("constant x should be NaN")
	}
}

func TestTable1Treewidth1Flat(t *testing.T) {
	e := Table1Treewidth1()
	if e.ID != "T1-R5" || len(e.Rows) == 0 {
		t.Fatalf("bad experiment: %+v", e)
	}
	// The resolution column must be flat (certificate-bound).
	var res []int64
	for _, row := range e.Rows {
		v, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		res = append(res, v)
	}
	for _, v := range res {
		if v > 8*res[0]+8 {
			t.Errorf("resolutions not flat: %v", res)
		}
	}
}

func TestTable1TreewidthWBounded(t *testing.T) {
	e := Table1TreewidthW()
	if len(e.Rows) < 3 {
		t.Fatal("too few rows")
	}
	last := e.Rows[len(e.Rows)-1]
	v, err := strconv.ParseInt(last[2], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if v > 1000 {
		t.Errorf("tw-2 constant-certificate run used %d resolutions", v)
	}
}

func TestFig2OrderedLowerQuadratic(t *testing.T) {
	e := Fig2OrderedLower()
	// The fitted exponent (in the findings) must be clearly above the LB
	// exponent: ≥ 1.6 on this family.
	if len(e.Findings) == 0 {
		t.Fatal("no findings")
	}
	xs, ys := seriesFromRows(t, e.Rows, 1, 2)
	if got := FitExponent(xs, ys); got < 1.6 {
		t.Errorf("ordered lower-bound exponent %.2f, expected ≥ 1.6 (→ 2 asymptotically)", got)
	}
}

func TestFig2LBBeatsOrderedOnF1(t *testing.T) {
	e := Fig2LBUpper()
	xs, lb := seriesFromRows(t, e.Rows, 1, 2)
	_, plain := seriesFromRows(t, e.Rows, 1, 3)
	slopeLB := FitExponent(xs, lb)
	slopePlain := FitExponent(xs, plain)
	if slopeLB >= slopePlain {
		t.Errorf("LB exponent %.2f not below ordered exponent %.2f", slopeLB, slopePlain)
	}
	if slopeLB > 1.75 {
		t.Errorf("LB exponent %.2f too far above n/2 = 1.5", slopeLB)
	}
}

func TestFig2TreeOrderedLowerSeparates(t *testing.T) {
	e := Fig2TreeOrderedLower()
	xs, cached := seriesFromRows(t, e.Rows, 1, 2)
	_, uncached := seriesFromRows(t, e.Rows, 1, 3)
	sc := FitExponent(xs, cached)
	sn := FitExponent(xs, uncached)
	if sn-sc < 0.25 {
		t.Errorf("tree-ordered separation too weak: cached %.2f vs no-cache %.2f", sc, sn)
	}
}

// TestAllExperimentsSmoke runs the complete suite (what cmd/repro
// prints) and checks structural well-formedness of every experiment.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite skipped in -short mode")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Artifact == "" || e.Claim == "" {
			t.Errorf("experiment %q lacks identity fields", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if len(e.Rows) == 0 || len(e.Findings) == 0 {
			t.Errorf("%s: no rows or findings", e.ID)
		}
		for _, row := range e.Rows {
			if len(row) != len(e.Columns) {
				t.Errorf("%s: ragged row %v for columns %v", e.ID, row, e.Columns)
			}
		}
	}
	if len(seen) < 11 {
		t.Errorf("only %d experiments registered", len(seen))
	}
}

func seriesFromRows(t *testing.T, rows [][]string, xcol, ycol int) ([]float64, []float64) {
	t.Helper()
	var xs, ys []float64
	for _, row := range rows {
		x, err := strconv.ParseFloat(row[xcol], 64)
		if err != nil {
			t.Fatal(err)
		}
		y, err := strconv.ParseFloat(row[ycol], 64)
		if err != nil {
			t.Fatal(err)
		}
		xs = append(xs, x)
		ys = append(ys, y+1)
	}
	return xs, ys
}
