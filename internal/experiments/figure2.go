package experiments

import (
	"math"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/klee"
	"tetrisjoin/internal/workload"
)

// runBCP runs Tetris on a raw box set.
func runBCP(inst workload.BCP, opts core.Options) core.Stats {
	o, err := core.NewBoxOracle(inst.Depths, inst.Boxes)
	if err != nil {
		panic(err)
	}
	res, err := core.Run(o, opts)
	if err != nil {
		panic(err)
	}
	return res.Stats
}

// Fig2TreeOrderedAGM reproduces Figure 2's "Õ(AGM): any" upper bound for
// Tree Ordered Geometric Resolution (Thm 5.1): Tetris with caching
// disabled still meets the AGM shape on the dense triangle.
func Fig2TreeOrderedAGM() Experiment {
	e := Experiment{
		ID:       "F2-U1",
		Artifact: "Figure 2, Tree Ordered upper bound Õ(AGM) (Thm 5.1)",
		Claim:    "no-cache single-pass Tetris (Cor D.3's TetrisSkeleton2) stays within the AGM shape",
		Columns:  []string{"m", "N", "AGM=N^1.5", "resolutions (no cache)"},
	}
	// Theorem 5.1 / Corollary D.3 are stated for the single-pass variant
	// (footnote 13): outputs reported inside the skeleton, so each output
	// does not restart the search.
	var xs, ys []float64
	for _, m := range []uint64{8, 12, 16, 24, 32} {
		q := workload.TriangleDense(m, 10)
		st := run(q, join.Options{Mode: core.Preloaded, NoCache: true, SinglePass: true})
		n := float64(m * m)
		xs = append(xs, n)
		ys = append(ys, float64(st.Resolutions))
		e.Rows = append(e.Rows, []string{f("%d", m), f("%.0f", n),
			f("%.0f", math.Pow(n, 1.5)), f("%d", st.Resolutions)})
	}
	slope := FitExponent(xs, ys)
	e.Findings = append(e.Findings,
		f("no-cache resolutions vs N fitted exponent %.2f (paper: ≤ 1.5)", slope))
	return e
}

// Fig2TreeOrderedLower reproduces Figure 2's Ω(N^{n/2}) lower bound for
// Tree Ordered resolution on treewidth-1 queries (Thm 5.2): on the
// cache-reuse family, caching pays ~N while no-cache pays ~N^{3/2}.
// (The paper's own construction is in its truncated Appendix G; this
// family realizes the same mechanism — an A-independent sub-proof that
// caching derives once and tree resolution re-derives per subtree.)
func Fig2TreeOrderedLower() Experiment {
	e := Experiment{
		ID:       "F2-L1",
		Artifact: "Figure 2, Tree Ordered lower bound Ω(N^{n/2}) for tw 1 (Thm 5.2)",
		Claim:    "separation: cached ~N vs tree-ordered ~N^{3/2} on the cache-reuse family",
		Columns:  []string{"m", "N", "cached res.", "no-cache res.", "ratio"},
	}
	// Preloaded on both arms: the output is empty, so a single skeleton
	// pass measures the pure resolution-proof size with no outer-loop
	// restarts confounding the count.
	var xs, ysC, ysN []float64
	for _, m := range []uint64{4, 8, 16, 32} {
		q := workload.TreeOrderedHard(m)
		opts := join.Options{SAOVars: []string{"A", "B", "C"}, Mode: core.Preloaded}
		cached := run(q, opts)
		optsN := opts
		optsN.NoCache = true
		uncached := run(q, optsN)
		n := float64(3 * m * m) // |S| dominates
		xs = append(xs, n)
		ysC = append(ysC, float64(cached.Resolutions))
		ysN = append(ysN, float64(uncached.Resolutions))
		e.Rows = append(e.Rows, []string{f("%d", m), f("%.0f", n),
			f("%d", cached.Resolutions), f("%d", uncached.Resolutions),
			f("%.1f", float64(uncached.Resolutions)/float64(cached.Resolutions))})
	}
	sc := FitExponent(xs, ysC)
	sn := FitExponent(xs, ysN)
	e.Findings = append(e.Findings,
		f("cached exponent %.2f (paper: ~1 via Thm 4.7), no-cache exponent %.2f (paper: ~1.5 = n/2)", sc, sn))
	return e
}

// Fig2OrderedLower reproduces Figure 2's Ω(|C|^{n-1}) lower bound for
// Ordered Geometric Resolution (Thm 5.4) on Example F.1: every SAO of
// plain Tetris pays ~|C|² (n=3).
func Fig2OrderedLower() Experiment {
	e := Experiment{
		ID:       "F2-L2",
		Artifact: "Figure 2, Ordered lower bound Ω(|C|^{n-1}) (Thm 5.4, Example F.1)",
		Claim:    "plain Tetris needs ~|C|² resolutions on Example F.1 under its best SAO",
		Columns:  []string{"d", "|C|", "best-SAO resolutions", "best/|C|²"},
	}
	saos := [][]int{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
	var xs, ys []float64
	for _, d := range []uint8{4, 5, 6, 7, 8} {
		inst := workload.ExampleF1(d)
		best := int64(math.MaxInt64)
		for _, sao := range saos {
			st := runBCP(inst, core.Options{Mode: core.Preloaded, SAO: sao})
			if st.Resolutions < best {
				best = st.Resolutions
			}
		}
		c := float64(len(inst.Boxes))
		xs = append(xs, c)
		ys = append(ys, float64(best))
		e.Rows = append(e.Rows, []string{f("%d", d), f("%.0f", c),
			f("%d", best), f("%.3f", float64(best)/(c*c))})
	}
	slope := FitExponent(xs, ys)
	e.Findings = append(e.Findings,
		f("best-SAO resolutions vs |C| fitted exponent %.2f (paper: 2 = n-1)", slope))
	return e
}

// Fig2LBUpper reproduces Figure 2's Õ(|C|^{n/2}+Z) upper bound
// (Thm 4.11): the Balance-lifted Tetris beats the ordered lower bound on
// the same Example F.1 family.
func Fig2LBUpper() Experiment {
	e := Experiment{
		ID:       "F2-U4",
		Artifact: "Figure 2, Geometric upper bound Õ(|C|^{n/2}+Z) (Thm 4.11)",
		Claim:    "Tetris-LB's exponent on Example F.1 is below Ordered's (≈ n/2 vs n-1)",
		Columns:  []string{"d", "|C|", "LB resolutions", "plain-best resolutions"},
	}
	saos := [][]int{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
	var xs, ysLB []float64
	for _, d := range []uint8{4, 5, 6, 7} {
		inst := workload.ExampleF1(d)
		lb := runBCP(inst, core.Options{Mode: core.PreloadedLB})
		best := int64(math.MaxInt64)
		for _, sao := range saos {
			st := runBCP(inst, core.Options{Mode: core.Preloaded, SAO: sao})
			if st.Resolutions < best {
				best = st.Resolutions
			}
		}
		c := float64(len(inst.Boxes))
		xs = append(xs, c)
		ysLB = append(ysLB, float64(lb.Resolutions))
		e.Rows = append(e.Rows, []string{f("%d", d), f("%.0f", c),
			f("%d", lb.Resolutions), f("%d", best)})
	}
	slope := FitExponent(xs, ysLB)
	e.Findings = append(e.Findings,
		f("LB resolutions vs |C| fitted exponent %.2f (paper: ≤ 1.5 = n/2; ordered needs 2)", slope),
		"Thm 5.5 states no Geometric Resolution algorithm beats |C|^{n/2}: the measured exponent staying ≈ n/2 on this family is consistent with that tightness")
	return e
}

// KleeBoolean reproduces Corollary F.8: Boolean Klee's measure via
// Tetris-LB on random box sets, with work well below the naive m·2^{dn}
// sweep and the answer cross-checked against exact measure.
func KleeBoolean() Experiment {
	e := Experiment{
		ID:       "KLEE",
		Artifact: "Corollary F.8: Klee's measure problem (Boolean semiring)",
		Claim:    "CoversSpace decides coverage in Õ(|B|^{n/2})",
		Columns:  []string{"family", "boxes", "covered", "resolutions"},
	}
	// Covering instances (random dyadic partitions) exercise the full
	// merge; dropping one box flips the answer with little work.
	var xs, ys []float64
	for i, m := range []int{32, 64, 128, 256, 512} {
		inst := workload.RandomDyadicPartition(3, m, 8, int64(1000+i))
		rep, err := klee.CoversSpace(inst.Depths, inst.Boxes)
		if err != nil {
			panic(err)
		}
		if !rep.Covered {
			panic("partition must cover the space")
		}
		xs = append(xs, float64(len(inst.Boxes)))
		ys = append(ys, float64(rep.Stats.Resolutions)+1)
		e.Rows = append(e.Rows, []string{"partition", f("%d", len(inst.Boxes)),
			f("%v", rep.Covered), f("%d", rep.Stats.Resolutions)})

		hole, err := klee.CoversSpace(inst.Depths, inst.Boxes[1:])
		if err != nil {
			panic(err)
		}
		e.Rows = append(e.Rows, []string{"minus-one", f("%d", len(inst.Boxes)-1),
			f("%v", hole.Covered), f("%d", hole.Stats.Resolutions)})
	}
	slope := FitExponent(xs, ys)
	e.Findings = append(e.Findings,
		f("covering-instance resolutions vs |B| fitted exponent %.2f (paper: ≤ 1.5 = n/2)", slope))
	return e
}

// CertIndexPower reproduces Appendix B.2's point (Prop B.6, Figure 13):
// the certificate — and hence Tetris-Reloaded's work — depends on the
// available indices. The GAO-sensitive family has an Õ(1) certificate
// under a (B,A)-ordered index but Ω(N) under (A,B).
func CertIndexPower() Experiment {
	e := Experiment{
		ID:       "CERT/GAO",
		Artifact: "Appendix B.2, Figure 13: GAO-dependence of certificates",
		Claim:    "boxes loaded: Ω(N) with the (A,B)-ordered index on S, Õ(1) with (B,A)",
		Columns:  []string{"m", "N", "boxes loaded (A,B)", "boxes loaded (B,A)"},
	}
	for _, m := range []uint64{8, 16, 32, 64} {
		d := uint8(8)
		makeQ := func(order ...string) *join.Query {
			q := workload.GAOSensitive(m, d)
			atoms := q.Atoms()
			s := atoms[1].Relation
			atoms[1].Indexes = []index.Index{index.MustSorted(s, order...)}
			return join.MustNewQuery(atoms...)
		}
		ab := run(makeQ("X", "Y"), join.Options{SAOVars: []string{"A", "B"}})
		ba := run(makeQ("Y", "X"), join.Options{SAOVars: []string{"B", "A"}})
		e.Rows = append(e.Rows, []string{f("%d", m), f("%d", 1<<d),
			f("%d", ab.BoxesLoaded), f("%d", ba.BoxesLoaded)})
	}
	e.Findings = append(e.Findings,
		"the (A,B)-indexed runs load Θ(m) boxes; the (B,A)-indexed runs load Õ(1) — the certificate is a property of the index, not just the data")
	return e
}

// CertIndexFamilies reproduces Example B.7/B.8 (Figure 14): on the
// diagonal bowtie, B-tree indices in *both* attribute orders force Ω(N)
// loaded boxes while a dyadic index needs O(d) — multidimensional gap
// boxes are strictly more powerful than any B-tree's.
func CertIndexFamilies() Experiment {
	e := Experiment{
		ID:       "CERT/DYADIC",
		Artifact: "Examples B.7/B.8, Figure 14: B-trees vs dyadic indices",
		Claim:    "boxes loaded: Ω(N) with B-trees in both orders, O(d) with the dyadic index",
		Columns:  []string{"depth", "N", "boxes (btree both orders)", "boxes (dyadic)"},
	}
	for _, d := range []uint8{5, 7, 9, 11} {
		withIndexes := func(mk func(q *join.Query) []index.Index) core.Stats {
			q := workload.DiagonalBowtie(d)
			atoms := q.Atoms()
			atoms[1].Indexes = mk(q)
			return run(join.MustNewQuery(atoms...), join.Options{})
		}
		btree := withIndexes(func(q *join.Query) []index.Index {
			s := q.Atoms()[1].Relation
			u, err := index.NewUnion(index.MustSorted(s, "X", "Y"), index.MustSorted(s, "Y", "X"))
			if err != nil {
				panic(err)
			}
			return []index.Index{u}
		})
		dy := withIndexes(func(q *join.Query) []index.Index {
			return []index.Index{index.NewDyadic(q.Atoms()[1].Relation)}
		})
		e.Rows = append(e.Rows, []string{f("%d", d), f("%d", 1<<d),
			f("%d", btree.BoxesLoaded), f("%d", dy.BoxesLoaded)})
	}
	e.Findings = append(e.Findings,
		"B-tree loads grow linearly with N while dyadic loads stay at a handful — the multidimensional gaps of Example B.8 that B-trees cannot return")
	return e
}

// All returns every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		Table1Acyclic(),
		Table1AGM(),
		Table1FHTW(),
		Table1TreewidthW(),
		Table1Treewidth1(),
		Fig2TreeOrderedAGM(),
		Fig2TreeOrderedLower(),
		Fig2OrderedLower(),
		Fig2LBUpper(),
		KleeBoolean(),
		CertIndexPower(),
		CertIndexFamilies(),
	}
}
