// Package experiments reproduces every table and figure of the Tetris
// paper's results as measured scaling experiments (the paper is a theory
// paper: Table 1 and Figure 2 state asymptotic bounds, so reproduction
// means regenerating instance families and checking that measured work —
// geometric resolutions, the paper's own cost measure per Lemma 4.5 —
// scales with the stated shape).
//
// Each experiment is identified by the IDs of DESIGN.md's per-experiment
// index; cmd/repro prints them and bench_test.go exposes each as a
// testing.B benchmark. EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"math"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
	"tetrisjoin/internal/workload"
)

// Experiment is one reproduced artifact: an instance family, the series
// measured over it, and the findings compared against the paper's claim.
type Experiment struct {
	ID       string
	Artifact string
	Claim    string
	Columns  []string
	Rows     [][]string
	Findings []string
}

// FitExponent returns the least-squares slope of log(y) against log(x):
// the growth exponent of a series. NaN when fewer than two points.
func FitExponent(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

func f(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }

// run executes a query and returns its stats, panicking on error
// (experiments are fixed instances; errors are bugs). Experiments always
// run sequentially: resolution counts reproduce the paper's sequential
// accounting, which sharded execution alters by a constant factor.
func run(q *join.Query, opts join.Options) core.Stats {
	opts.Parallelism = 1
	res, err := join.Execute(q, opts)
	if err != nil {
		panic(err)
	}
	return res.Stats
}

// Table1Acyclic reproduces Table 1's "α-acyclic: N+Z" row (Yannakakis,
// Theorem D.8): Tetris-Preloaded work on path queries scales ~linearly
// in N+Z.
func Table1Acyclic() Experiment {
	e := Experiment{
		ID:       "T1-R1",
		Artifact: "Table 1, row 'α-acyclic' (Thm D.8)",
		Claim:    "Tetris-Preloaded runs in Õ(N+Z) on acyclic queries",
		Columns:  []string{"depth", "N per relation", "Z", "resolutions", "res/(N+Z)"},
	}
	// Constant-density sweep (N = 2^d/8 per relation) so the instance
	// shape stays fixed while N grows.
	var xs, ys []float64
	for d := uint8(9); d <= 13; d++ {
		n := 1 << (d - 3)
		q := workload.PathQuery(3, n, d, int64(n))
		st := run(q, join.Options{Mode: core.Preloaded})
		x := float64(3*n) + float64(st.Outputs)
		xs = append(xs, x)
		ys = append(ys, float64(st.Resolutions))
		e.Rows = append(e.Rows, []string{f("%d", d), f("%d", n), f("%d", st.Outputs),
			f("%d", st.Resolutions), f("%.2f", float64(st.Resolutions)/x)})
	}
	slope := FitExponent(xs, ys)
	e.Findings = append(e.Findings,
		f("resolutions vs N+Z: fitted exponent %.2f (paper: 1, up to polylog — the depth d also grows along this sweep)", slope))
	return e
}

// Table1AGM reproduces Table 1's "arbitrary: N+AGM" row (Thm D.2): on the
// AGM-tight dense triangle the output is N^{3/2} and Tetris-Preloaded's
// work tracks it, while a binary hash join plan shows the same N^{3/2}
// blowup only because output = AGM here; the separation shows on the star
// instance where output is tiny but binary intermediates stay Θ(N²).
func Table1AGM() Experiment {
	e := Experiment{
		ID:       "T1-R2",
		Artifact: "Table 1, row 'arbitrary' (Thm D.2) + AGM-hard comparison",
		Claim:    "Tetris-Preloaded ≤ Õ(N+AGM); binary plans blow up on star instances",
		Columns:  []string{"family", "m", "N", "AGM", "Z", "resolutions"},
	}
	var xsD, ysD []float64
	for _, m := range []uint64{8, 12, 16, 24, 32} {
		q := workload.TriangleDense(m, 10)
		st := run(q, join.Options{Mode: core.Preloaded})
		n := float64(m * m)
		agmBound := math.Pow(n, 1.5)
		xsD = append(xsD, n)
		ysD = append(ysD, float64(st.Resolutions))
		e.Rows = append(e.Rows, []string{"dense", f("%d", m), f("%.0f", n),
			f("%.0f", agmBound), f("%d", st.Outputs), f("%d", st.Resolutions)})
	}
	slopeD := FitExponent(xsD, ysD)
	e.Findings = append(e.Findings,
		f("dense triangle: resolutions vs N fitted exponent %.2f (paper: ≤ 1.5 = AGM exponent)", slopeD))

	var xsS, ysS []float64
	for _, m := range []uint64{64, 128, 256, 512} {
		q := workload.TriangleAGMStar(m, 12)
		st := run(q, join.Options{Mode: core.Preloaded})
		n := float64(2*m - 1)
		xsS = append(xsS, n)
		ysS = append(ysS, float64(st.Resolutions))
		e.Rows = append(e.Rows, []string{"star", f("%d", m), f("%.0f", n),
			f("%.0f", math.Pow(n, 1.5)), f("%d", st.Outputs), f("%d", st.Resolutions)})
	}
	slopeS := FitExponent(xsS, ysS)
	e.Findings = append(e.Findings,
		f("star triangle: resolutions vs N fitted exponent %.2f — near-linear, far below the N² of binary plans", slopeS))
	return e
}

// Table1FHTW reproduces Table 1's "bounded fhtw: N^fhtw+Z" row (Thm 4.6):
// the triangle-with-tail query has tw 2 but fhtw 3/2; measured work
// follows N^{3/2}+Z, not N^{tw+1}.
func Table1FHTW() Experiment {
	e := Experiment{
		ID:       "T1-R3",
		Artifact: "Table 1, row 'bounded fhtw' (Thm 4.6)",
		Claim:    "Tetris-Preloaded runs in Õ(N^fhtw+Z); fhtw(triangle+tail) = 3/2",
		Columns:  []string{"m", "N", "N^1.5", "Z", "resolutions"},
	}
	var xs, ys []float64
	for _, m := range []uint64{8, 12, 16, 24} {
		q2 := triangleWithTail(m, 10)
		st := run(q2, join.Options{Mode: core.Preloaded})
		n := float64(m * m)
		xs = append(xs, n)
		ys = append(ys, float64(st.Resolutions))
		e.Rows = append(e.Rows, []string{f("%d", m), f("%.0f", n),
			f("%.0f", math.Pow(n, 1.5)), f("%d", st.Outputs), f("%d", st.Resolutions)})
	}
	slope := FitExponent(xs, ys)
	e.Findings = append(e.Findings,
		f("resolutions vs N fitted exponent %.2f (paper: ≤ fhtw = 1.5, not tw+1 = 3)", slope))
	return e
}

// Table1Treewidth1 reproduces Table 1's "treewidth 1: |C|+Z" row
// (Thm 4.7): on the bowtie block family the certificate stays O(1) while
// N grows, and Tetris-Reloaded's work stays flat.
func Table1Treewidth1() Experiment {
	e := Experiment{
		ID:       "T1-R5",
		Artifact: "Table 1, row 'treewidth 1' (Thm 4.7); also Fig 2 Õ(|C|+Z)",
		Claim:    "Tetris-Reloaded runs in Õ(|C|+Z): flat as N grows with |C| fixed",
		Columns:  []string{"depth", "N", "resolutions", "boxes loaded", "oracle calls"},
	}
	var maxRes int64
	for d := uint8(4); d <= 12; d += 2 {
		q := workload.BowtieBlock(d)
		st := run(q, join.Options{Mode: core.Reloaded})
		if st.Resolutions > maxRes {
			maxRes = st.Resolutions
		}
		e.Rows = append(e.Rows, []string{f("%d", d), f("%d", 1<<(2*(d-1))),
			f("%d", st.Resolutions), f("%d", st.BoxesLoaded), f("%d", st.OracleCalls)})
	}
	e.Findings = append(e.Findings,
		f("work is flat (max %d resolutions) across a 65536× growth in N — certificate-bound, not input-bound", maxRes))
	return e
}

// Table1TreewidthW reproduces Table 1's "treewidth w: |C|^{w+1}+Z" row
// (Thm 4.9) on a treewidth-2 four-cycle family with O(1) certificates:
// work stays bounded while N grows.
func Table1TreewidthW() Experiment {
	e := Experiment{
		ID:       "T1-R4",
		Artifact: "Table 1, row 'treewidth w' (Thm 4.9); also Fig 2 Õ(|C|^{w+1}+Z)",
		Claim:    "Tetris-Reloaded work depends on |C|, not N, for tw-2 queries",
		Columns:  []string{"depth", "N", "resolutions", "boxes loaded"},
	}
	var maxRes int64
	for d := uint8(3); d <= 9; d += 2 {
		q := workload.FourCycleBlocks(d)
		st := run(q, join.Options{Mode: core.Reloaded})
		if st.Resolutions > maxRes {
			maxRes = st.Resolutions
		}
		e.Rows = append(e.Rows, []string{f("%d", d), f("%d", 4<<(2*(d-1))),
			f("%d", st.Resolutions), f("%d", st.BoxesLoaded)})
	}
	e.Findings = append(e.Findings,
		f("work bounded by %d resolutions across a 4096× growth in N (|C| constant; bound |C|^{w+1} not binding)", maxRes))
	return e
}

// triangleWithTail builds dense triangle ⋈ U(C,D) with U the identity
// pairs on [0,m): fhtw = 3/2, treewidth 2.
func triangleWithTail(m uint64, d uint8) *join.Query {
	base := workload.TriangleDense(m, d)
	u := relation.MustNewUniform("U", []string{"X", "Y"}, d)
	for i := uint64(0); i < m; i++ {
		u.MustInsert(i, i)
	}
	return join.MustNewQuery(append(base.Atoms(), join.Atom{Relation: u, Vars: []string{"C", "D"}})...)
}
