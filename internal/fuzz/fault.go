package fuzz

import (
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/dyadic"
)

// DropLargestGap is a fault-injection oracle wrapper: it hides the
// largest gap box (ties broken by first position) from both
// GapsContaining and AllGaps, simulating an engine that loses one piece
// of knowledge — the geometric analogue of skipping a resolution. Runs
// over the faulty oracle report the points only that box covered as
// extra output tuples, which the differential checker must catch in
// every mode and the shrinker must reduce to a minimal repro. Used by
// the self-tests of this package and cmd/fuzz's -fault flag; never by
// real checks.
func DropLargestGap(o core.Oracle) core.Oracle {
	f := &faultyOracle{inner: o}
	all := o.AllGaps()
	if len(all) == 0 {
		return o // nothing to hide
	}
	depths := o.Depths()
	best := 0
	for i, b := range all {
		if b.LogVolume(depths) > all[best].LogVolume(depths) {
			best = i
		}
	}
	f.dropped = all[best].Key()
	f.gaps = make([]dyadic.Box, 0, len(all)-1)
	for i, b := range all {
		if i != best {
			f.gaps = append(f.gaps, b)
		}
	}
	return f
}

type faultyOracle struct {
	inner   core.Oracle
	dropped string // Box.Key of the hidden gap box
	gaps    []dyadic.Box
	out     []dyadic.Box // filtered GapsContaining buffer, reused
}

func (f *faultyOracle) Dims() int             { return f.inner.Dims() }
func (f *faultyOracle) Depths() []uint8       { return f.inner.Depths() }
func (f *faultyOracle) AllGaps() []dyadic.Box { return f.gaps }

func (f *faultyOracle) GapsContaining(point []uint64) []dyadic.Box {
	f.out = f.out[:0]
	for _, b := range f.inner.GapsContaining(point) {
		if b.Key() != f.dropped {
			f.out = append(f.out, b)
		}
	}
	return f.out
}
