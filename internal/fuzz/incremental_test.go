package fuzz

import (
	"math/rand"
	"strings"
	"testing"

	"tetrisjoin/internal/baseline"
	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

// TestIncrementalMaintainedAllFamilies is the acceptance sweep for
// incremental maintenance: for every workload family, a maintained
// statement driven through a seeded random append/delete script must
// stay byte-identical to a from-scratch recompute after every refresh —
// across pure-append spans (patched), pure-delete spans (patched),
// folded mixed spans (exact recompute fallback), duplicate appends and
// absent deletes (no-op deltas).
func TestIncrementalMaintainedAllFamilies(t *testing.T) {
	for name, q := range workloadFamilies() {
		cat := catalog.New()
		seen := map[string]bool{}
		var names []string
		var atomTexts []string
		for _, a := range q.Atoms() {
			if !seen[a.Relation.Name()] {
				seen[a.Relation.Name()] = true
				names = append(names, a.Relation.Name())
				// The families build their relations outside the catalog;
				// clone so the shared workload instances stay pristine.
				if _, err := cat.Ingest(a.Relation.Clone(a.Relation.Name())); err != nil {
					t.Fatalf("%s: ingest: %v", name, err)
				}
			}
			atomTexts = append(atomTexts, a.Relation.Name()+"("+strings.Join(a.Vars, ",")+")")
		}
		text := strings.Join(atomTexts, ", ")

		m, err := cat.Maintain(text, join.Options{Mode: core.Preloaded})
		if err != nil {
			t.Fatalf("%s: maintain: %v", name, err)
		}
		sao := m.Plan().SAOVars()

		rng := rand.New(rand.NewSource(int64(len(name)) * 1315423911))
		for op := 0; op < 10; op++ {
			relName := names[rng.Intn(len(names))]
			desc, err := mutateRelation(cat, relName, rng)
			if err != nil {
				t.Fatalf("%s: op %d (%s): %v", name, op, desc, err)
			}
			if op%4 == 1 { // fold occasionally: multi-write spans
				continue
			}
			res, err := m.Execute(join.Options{})
			if err != nil {
				t.Fatalf("%s: refresh after op %d (%s): %v", name, op, desc, err)
			}
			cur, err := cat.Parse(text)
			if err != nil {
				t.Fatalf("%s: parse: %v", name, err)
			}
			scratch, err := join.Execute(cur, join.Options{Mode: core.Preloaded, Parallelism: 1, SAOVars: sao})
			if err != nil {
				t.Fatalf("%s: scratch after op %d: %v", name, op, err)
			}
			if d := baseline.FirstDivergence(res.Tuples, scratch.Tuples); d != nil {
				t.Fatalf("%s: op %d (%s, refresh=%s): maintained diverges from scratch at #%d: got %v, want %v (%d vs %d tuples)",
					name, op, desc, m.LastRefresh().Kind, d.Index, d.Got, d.Want, len(res.Tuples), len(scratch.Tuples))
			}
		}
		if m.Patches() == 0 {
			t.Errorf("%s: script never took the patch path (patches=0, recomputes=%d)", name, m.Recomputes())
		}
	}
}

// TestMaintainedDeltaCostBound pins the acceptance bound end to end on
// the workhorse acyclic instance: each 1-tuple append refreshes with
// index builds bounded by the changed atom count (here 1) and
// delta-sized lazily loaded boxes, never a full recompute.
func TestMaintainedDeltaCostBound(t *testing.T) {
	cat := catalog.New()
	r := rand.New(rand.NewSource(42))
	for _, rn := range []string{"R1", "R2", "R3"} {
		rel := relation.MustNewUniform(rn, []string{"X", "Y"}, 10)
		for i := 0; i < 400; i++ {
			rel.MustInsert(uint64(r.Intn(1<<10)), uint64(r.Intn(1<<10)))
		}
		if _, err := cat.Ingest(rel); err != nil {
			t.Fatal(err)
		}
	}
	text := "R1(A,B), R2(B,C), R3(C,D)"
	m, err := cat.Maintain(text, join.Options{Mode: core.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	fullRun, err := cat.Execute(text, join.Options{Mode: core.Preloaded, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		tup := relation.Tuple{uint64(r.Intn(1 << 10)), uint64(r.Intn(1 << 10))}
		rel, _ := cat.Relation("R2")
		fresh := !rel.Contains(tup...)
		if _, err := cat.Append("R2", tup); err != nil {
			t.Fatal(err)
		}
		res, err := m.Execute(join.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !fresh {
			continue
		}
		if k := m.LastRefresh().Kind; k != "patched" {
			t.Fatalf("iteration %d: refresh kind %q, want patched", i, k)
		}
		if res.Stats.IndexBuilds > 1 {
			t.Fatalf("iteration %d: refresh built %d indexes, want <= 1 (one changed atom)", i, res.Stats.IndexBuilds)
		}
		// The pass's lazy loads are delta-sized: far below the full B(Q)
		// load a from-scratch Preloaded run pays.
		if res.Stats.BoxesLoaded*4 > fullRun.Stats.BoxesLoaded {
			t.Fatalf("iteration %d: delta pass loaded %d boxes, full run loads %d — not delta-sized",
				i, res.Stats.BoxesLoaded, fullRun.Stats.BoxesLoaded)
		}
	}
}
