package fuzz

import (
	"fmt"
	"testing"

	"tetrisjoin/internal/baseline"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/workload"
)

// stealFamilies are skewed workloads sized so the heavy region takes
// long enough that idle workers actually trigger dynamic splits: the
// Zipf families concentrate work on the heavy-value corner of the
// space, the deterministic families add order-sensitive edge cases.
func stealFamilies() map[string]*join.Query {
	return map[string]*join.Query{
		"zipf-triangle":   workload.ZipfTriangle(1200, 11, 1.1, 7),
		"zipf-star":       workload.ZipfStar(3, 150, 9, 1.2, 11),
		"zipf-fourcycle":  workload.ZipfFourCycle(500, 10, 1.2, 19),
		"pinned-chain":    workload.PinnedChain(64, 7),
		"skewed-triangle": workload.SkewedTriangle(48, 6),
	}
}

// TestStealMatrixOrderEquality: on every skewed family, the
// work-stealing executor must reproduce the sequential enumeration
// order exactly — tuple for tuple, not just as a set — across worker
// counts and steal depths, in both plain modes and under the
// single-pass skeleton. This is the fuzz-matrix pin for the executor's
// determinism contract on inputs where stealing actually happens.
func TestStealMatrixOrderEquality(t *testing.T) {
	type cfg struct {
		workers int
		depth   int
	}
	cfgs := []cfg{
		{2, -1}, // static seeds only
		{2, 0},  // default dynamic splitting
		{4, 0},
		{4, 63}, // aggressive: split as deep as the space allows
	}
	for name, q := range stealFamilies() {
		seq, err := join.Execute(q, join.Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		for _, mode := range []core.Mode{core.Reloaded, core.Preloaded} {
			for _, c := range cfgs {
				config := fmt.Sprintf("%s/%v workers=%d steal=%d", name, mode, c.workers, c.depth)
				res, err := join.Execute(q, join.Options{
					Mode:        mode,
					Parallelism: c.workers,
					StealDepth:  c.depth,
				})
				if err != nil {
					t.Fatalf("%s: %v", config, err)
				}
				if d := baseline.FirstDivergence(res.Tuples, seq.Tuples); d != nil {
					t.Fatalf("%s: order diverged from sequential at #%d: got %v, want %v (%d vs %d tuples)",
						config, d.Index, d.Got, d.Want, len(res.Tuples), len(seq.Tuples))
				}
				if c.depth < 0 && res.Stats.Steals != 0 {
					t.Fatalf("%s: stealing disabled but Stats.Steals = %d", config, res.Stats.Steals)
				}
			}
		}
		// Single-pass (Preloaded-only) under stealing: donation there
		// unwinds and restarts the skeleton, a different code path.
		res, err := join.Execute(q, join.Options{
			Mode: core.Preloaded, SinglePass: true, Parallelism: 4,
		})
		if err != nil {
			t.Fatalf("%s/single-pass: %v", name, err)
		}
		if d := baseline.FirstDivergence(res.Tuples, seq.Tuples); d != nil {
			t.Fatalf("%s/single-pass: order diverged from sequential at #%d (%d vs %d tuples)",
				name, d.Index, len(res.Tuples), len(seq.Tuples))
		}
	}
}

// TestStealRebalancesSkew: on the Zipf families — work piled onto the
// heavy-value corner of the first SAO attribute — dynamic splitting
// must fire and reduce the max/mean worker resolution share vs static
// sharding. The thresholds are deliberately below the typical ~3×
// improvement (see EXPERIMENTS.md) to stay robust to scheduling noise.
func TestStealRebalancesSkew(t *testing.T) {
	families := map[string]*join.Query{
		"zipf-triangle":  workload.ZipfTriangle(2000, 12, 1.1, 7),
		"zipf-star":      workload.ZipfStar(3, 250, 10, 1.2, 11),
		"zipf-fourcycle": workload.ZipfFourCycle(800, 11, 1.2, 19),
	}
	share := func(s core.Stats) float64 {
		return float64(s.MaxWorkerResolutions) / (float64(s.Resolutions) / float64(s.ParallelWorkers))
	}
	improved := 0
	for name, q := range families {
		static, err := join.Execute(q, join.Options{Parallelism: 4, StealDepth: -1})
		if err != nil {
			t.Fatalf("%s: static: %v", name, err)
		}
		stealing, err := join.Execute(q, join.Options{Parallelism: 4})
		if err != nil {
			t.Fatalf("%s: stealing: %v", name, err)
		}
		if stealing.Stats.Steals == 0 {
			t.Errorf("%s: dynamic splitting never fired", name)
			continue
		}
		ss, ds := share(static.Stats), share(stealing.Stats)
		t.Logf("%s: static share %.2f, stealing share %.2f (%.1f×, %d steals)",
			name, ss, ds, ss/ds, stealing.Stats.Steals)
		if ss >= 1.5*ds {
			improved++
		}
	}
	if improved < 2 {
		t.Fatalf("stealing improved the balance share 1.5× on only %d/3 Zipf families", improved)
	}
}
