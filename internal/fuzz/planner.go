package fuzz

import (
	"fmt"

	"tetrisjoin/internal/baseline"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/workload"
)

// checkPlanner is the PlannerDifferential configuration: the
// statistics-driven planner is free to choose any splitting attribute
// order and index family, so its one binding contract is semantic
// transparency — a planned execution must produce exactly the reference
// output, a fixed-SAO execution must too (the planner cannot leak into
// explicitly ordered runs), decisions must be deterministic, and
// feedback may only re-order work, never change results.
func (ck *Checker) checkPlanner(c Case) *Discrepancy {
	q, err := c.BuildQuery()
	if err != nil {
		return &Discrepancy{Config: "planner", Detail: fmt.Sprintf("rebuild: %v", err)}
	}
	ref, err := baseline.GenericJoin(q, nil)
	if err != nil {
		return &Discrepancy{Config: "planner", Detail: fmt.Sprintf("reference: %v", err)}
	}

	// Decision determinism: equal inputs, byte-equal outcome.
	d1, err := join.Decide(q, join.Options{Strategy: join.SAOPlanned})
	if err != nil {
		return &Discrepancy{Config: "planner/decide", Detail: fmt.Sprintf("engine error: %v", err)}
	}
	d2, err := join.Decide(q, join.Options{Strategy: join.SAOPlanned})
	if err != nil {
		return &Discrepancy{Config: "planner/decide", Detail: fmt.Sprintf("engine error: %v", err)}
	}
	if fmt.Sprint(d1.SAOVars) != fmt.Sprint(d2.SAOVars) || d1.Fingerprint != d2.Fingerprint ||
		fmt.Sprint(d1.Families) != fmt.Sprint(d2.Families) {
		return &Discrepancy{Config: "planner/decide",
			Detail: fmt.Sprintf("nondeterministic decision: %v/%x vs %v/%x", d1.SAOVars, d1.Fingerprint, d2.SAOVars, d2.Fingerprint)}
	}
	if d := validDecision(q, d1); d != nil {
		return d
	}

	// A planned execution enumerates in the planner's chosen order, so
	// outputs compare as sorted sets against the reference.
	for _, mode := range []core.Mode{core.Reloaded, core.Preloaded} {
		config := fmt.Sprintf("planner/%v", mode)
		res, err := join.Execute(q, join.Options{Strategy: join.SAOPlanned, Mode: mode, Parallelism: 1})
		if err != nil {
			return &Discrepancy{Config: config, Detail: fmt.Sprintf("engine error: %v", err)}
		}
		if d := diffTuples(config, res.Tuples, ref); d != nil {
			return d
		}
	}

	// Every fixed SAO permutation must agree with the same reference:
	// whatever the planner prefers, an explicitly ordered run is
	// untouched by it.
	n := len(q.Vars())
	for _, sao := range saoCandidates(n, ck.MaxSAOs) {
		saoVars := make([]string, n)
		for i, pos := range sao {
			saoVars[i] = q.Vars()[pos]
		}
		config := fmt.Sprintf("planner/fixed sao=%v", saoVars)
		res, err := join.Execute(q, join.Options{SAOVars: saoVars, Mode: core.Reloaded, Parallelism: 1})
		if err != nil {
			return &Discrepancy{Config: config, Detail: fmt.Sprintf("engine error: %v", err)}
		}
		if d := diffTuples(config, res.Tuples, ref); d != nil {
			return d
		}
	}

	// Feedback perturbation: poisoning the winner re-plans onto another
	// order — the decision must change fingerprint, stay valid, and the
	// execution must still produce the reference output exactly.
	if d1.Planned {
		fb := join.Options{Strategy: join.SAOPlanned,
			Feedback: map[string]float64{join.FeedbackKey(d1.SAOVars): 1e9}}
		d3, err := join.Decide(q, fb)
		if err != nil {
			return &Discrepancy{Config: "planner/feedback", Detail: fmt.Sprintf("engine error: %v", err)}
		}
		if d := validDecision(q, d3); d != nil {
			return d
		}
		if d3.Fingerprint == d1.Fingerprint {
			return &Discrepancy{Config: "planner/feedback",
				Detail: fmt.Sprintf("feedback left the decision fingerprint unchanged (%x)", d1.Fingerprint)}
		}
		fb.Mode = core.Reloaded
		fb.Parallelism = 1
		res, err := join.Execute(q, fb)
		if err != nil {
			return &Discrepancy{Config: "planner/feedback", Detail: fmt.Sprintf("engine error: %v", err)}
		}
		if d := diffTuples("planner/feedback", res.Tuples, ref); d != nil {
			return d
		}
	}

	// Strategy coherence: on cyclic queries SAOAuto delegates to the
	// planner, so the two strategies must resolve identically.
	if _, acyclic := q.Hypergraph().GYO(); !acyclic {
		da, err := join.Decide(q, join.Options{Strategy: join.SAOAuto})
		if err != nil {
			return &Discrepancy{Config: "planner/auto", Detail: fmt.Sprintf("engine error: %v", err)}
		}
		if fmt.Sprint(da.SAOVars) != fmt.Sprint(d1.SAOVars) || da.Fingerprint != d1.Fingerprint {
			return &Discrepancy{Config: "planner/auto",
				Detail: fmt.Sprintf("SAOAuto resolved %v/%x on a cyclic query, SAOPlanned %v/%x", da.SAOVars, da.Fingerprint, d1.SAOVars, d1.Fingerprint)}
		}
	}
	return nil
}

// validDecision checks a decision's structural invariants: the order is
// a permutation of the query's variables and a planned decision carries
// one index family per atom plus a nonzero fingerprint.
func validDecision(q *join.Query, d *join.Decision) *Discrepancy {
	seen := map[string]bool{}
	for _, v := range d.SAOVars {
		if q.VarIndex(v) < 0 || seen[v] {
			return &Discrepancy{Config: "planner/decide",
				Detail: fmt.Sprintf("SAO %v is not a permutation of the query variables", d.SAOVars)}
		}
		seen[v] = true
	}
	if len(d.SAOVars) != len(q.Vars()) {
		return &Discrepancy{Config: "planner/decide",
			Detail: fmt.Sprintf("SAO %v misses variables (query has %d)", d.SAOVars, len(q.Vars()))}
	}
	if !d.Planned {
		return nil // degraded classical decision: order-only, still valid
	}
	if len(d.Families) != len(q.Atoms()) {
		return &Discrepancy{Config: "planner/decide",
			Detail: fmt.Sprintf("planned decision has %d index families for %d atoms", len(d.Families), len(q.Atoms()))}
	}
	if d.Fingerprint == 0 {
		return &Discrepancy{Config: "planner/decide", Detail: "planned decision has zero fingerprint"}
	}
	return nil
}

// CaseFromQuery converts a materialized query into the serializable
// case form, so the named workload families replay through the same
// differential pipeline as generated cases.
func CaseFromQuery(name string, q *join.Query) Case {
	c := Case{Name: name, VarDepths: map[string]uint8{}}
	for i, v := range q.Vars() {
		c.VarDepths[v] = q.Depths()[i]
	}
	seen := map[string]bool{}
	for _, a := range q.Atoms() {
		c.Atoms = append(c.Atoms, CaseAtom{Rel: a.Relation.Name(), Vars: append([]string(nil), a.Vars...)})
		if seen[a.Relation.Name()] {
			continue
		}
		seen[a.Relation.Name()] = true
		cr := CaseRelation{Name: a.Relation.Name()}
		for _, t := range a.Relation.Tuples() {
			cr.Tuples = append(cr.Tuples, append([]uint64(nil), t...))
		}
		c.Relations = append(c.Relations, cr)
	}
	return c
}

// PlannerFamilies is the fixed panel of workload families the planner
// differential campaign (cmd/fuzz -kind planner) always checks before
// drawing random cases: the classic paper instances the planner must
// not perturb, and the skewed/adversarial ones it exists for. Sizes are
// small enough that every permutation executes in milliseconds.
func PlannerFamilies() []Case {
	families := []struct {
		name string
		q    *join.Query
	}{
		{"triangle-msb", workload.TriangleMSB(4)},
		{"triangle-agm-star", workload.TriangleAGMStar(16, 5)},
		{"triangle-dense", workload.TriangleDense(8, 4)},
		{"four-cycle-blocks", workload.FourCycleBlocks(4)},
		{"clique4", workload.CliqueQuery(4, 16, 0.4, 5, 6)},
		{"gao-sensitive", workload.GAOSensitive(32, 6)},
		{"tree-ordered-hard", workload.TreeOrderedHard(16)},
		{"skewed-triangle", workload.SkewedTriangle(32, 6)},
		{"skewed-four-cycle", workload.SkewedFourCycle(16, 5)},
		{"heavy-value-mismatch", workload.HeavyValueMismatch(32, 6)},
		{"pinned-chain", workload.PinnedChain(32, 8)},
		{"zipf-triangle", workload.ZipfTriangle(48, 5, 1.3, 7)},
		{"zipf-star", workload.ZipfStar(3, 32, 5, 1.3, 11)},
	}
	out := make([]Case, len(families))
	for i, f := range families {
		out[i] = CaseFromQuery("planner-family-"+f.name, f.q)
	}
	return out
}
