package fuzz

import (
	"math/rand"
	"testing"
)

// failingWith returns the shrinker predicate for a checker: a candidate
// counts as failing only when it is valid AND the checker reports a
// discrepancy.
func failingWith(ck *Checker) func(Case) bool {
	return func(c Case) bool {
		d, err := ck.Check(c)
		return err == nil && d != nil
	}
}

// checkSeed is the shared body of the fuzz targets: generate the case
// for the seed, run the differential matrix, and on failure shrink to a
// minimal repro before reporting (the repro JSON is the actionable
// artifact — commit it under testdata/corpus/ to pin the regression).
func checkSeed(t *testing.T, seed int64, kind Kind) {
	t.Helper()
	c := GenCase(rand.New(rand.NewSource(seed)), kind)
	ck := NewChecker()
	d, err := ck.Check(c)
	if err != nil {
		t.Fatalf("seed %d: generator produced an invalid case: %v\n%s", seed, err, c.Marshal())
	}
	if d == nil {
		return
	}
	shrunk := Shrink(c, failingWith(ck))
	t.Fatalf("seed %d: %v\nshrunk repro (add to testdata/corpus/):\n%s", seed, d, shrunk.Marshal())
}

// FuzzQueryDifferential fuzzes the generator seed for query cases:
// every engine (baselines, Tetris modes × SAOs × shards × workers,
// count, Boolean) must agree on every generated query.
func FuzzQueryDifferential(f *testing.F) {
	for seed := int64(1); seed <= 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkSeed(t, seed, QueryKind)
	})
}

// FuzzBCPDifferential fuzzes the generator seed for raw box cover
// cases, cross-checked against brute-force point enumeration.
func FuzzBCPDifferential(f *testing.F) {
	for seed := int64(1); seed <= 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkSeed(t, seed, BCPKind)
	})
}

// TestGeneratorSweep is the deterministic slice of the fuzz campaign
// run on every go test: a seed range per kind through the full matrix.
func TestGeneratorSweep(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		checkSeed(t, seed, QueryKind)
		checkSeed(t, seed, BCPKind)
	}
}

// TestGeneratorCoversShapesAndFills pins the generator's coverage: over
// a modest seed range every hypergraph shape, fill style and box style
// must occur, and every generated case must build.
func TestGeneratorCoversShapesAndFills(t *testing.T) {
	shapes := map[string]bool{}
	styles := map[string]bool{}
	for seed := int64(1); seed <= 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		q := GenCase(r, QueryKind)
		shapes[q.Name] = true
		if _, err := q.BuildQuery(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b := GenCase(r, BCPKind)
		styles[b.Name] = true
		if _, _, err := b.BuildBCP(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	for s := Shape(0); s < numShapes; s++ {
		if !shapes["query-"+s.String()] {
			t.Errorf("shape %v never generated", s)
		}
	}
	for s := BoxStyle(0); s < numBoxStyles; s++ {
		if !styles[s.String()] {
			t.Errorf("box style %v never generated", s)
		}
	}
}

// TestCaseRoundTrip: Marshal/ParseCase is the corpus contract — a case
// must survive serialization exactly.
func TestCaseRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		for _, kind := range []Kind{QueryKind, BCPKind} {
			c := GenCase(r, kind)
			back, err := ParseCase(c.Marshal())
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if string(back.Marshal()) != string(c.Marshal()) {
				t.Fatalf("seed %d: round trip changed the case:\n%s\nvs\n%s", seed, c.Marshal(), back.Marshal())
			}
		}
	}
}
