package fuzz

import "tetrisjoin/internal/dyadic"

// The greedy shrinker: given a failing case and the failure predicate,
// repeatedly applies size-reducing transformations — drop atoms, drop
// tuples or boxes (delta-debugging style chunk removal), coarsen
// per-attribute depths, drop whole dimensions — keeping a candidate
// whenever it still fails, until no transformation applies. Candidates
// that become structurally invalid are rejected by the predicate (the
// checker reports them as errors, not failures), so the shrinker never
// needs to reason about validity itself.

// Shrink minimizes a failing case. failing must report whether a
// candidate still exhibits the failure; it is called many times and
// must be deterministic. The returned case fails and is a local
// minimum under the shrinker's transformations.
func Shrink(c Case, failing func(Case) bool) Case {
	if !failing(c) {
		return c // not failing: nothing to preserve, don't touch it
	}
	for {
		before := c.Size()
		if c.Kind() == QueryKind {
			c = shrinkQuery(c, failing)
		} else {
			c = shrinkBCP(c, failing)
		}
		if c.Size() >= before {
			return c
		}
	}
}

func shrinkQuery(c Case, failing func(Case) bool) Case {
	// Drop atoms, last first (later atoms are the ones a generator adds
	// to grow a shape, so earlier atoms tend to carry the failure).
	for i := len(c.Atoms) - 1; i >= 0 && len(c.Atoms) > 1; i-- {
		cand := c.Clone()
		cand.Atoms = append(cand.Atoms[:i], cand.Atoms[i+1:]...)
		cand.normalize()
		if failing(cand) {
			c = cand
		}
	}
	// Drop tuples per relation, in shrinking chunks.
	for ri := range c.Relations {
		c = shrinkChunks(c, failing, len(c.Relations[ri].Tuples), func(cand *Case, lo, hi int) {
			r := &cand.Relations[ri]
			r.Tuples = append(r.Tuples[:lo:lo], r.Tuples[hi:]...)
		})
	}
	// Coarsen variable depths: halve a domain and mask the affected
	// relation columns to fit.
	for _, v := range c.sortedVars() {
		for c.VarDepths[v] > 1 {
			cand := c.Clone()
			nd := cand.VarDepths[v] - 1
			cand.VarDepths[v] = nd
			mask := uint64(1)<<nd - 1
			for _, a := range cand.Atoms {
				for col, av := range a.Vars {
					if av != v {
						continue
					}
					r := cand.relationOf(a.Rel)
					for _, t := range r.Tuples {
						t[col] &= mask
					}
				}
			}
			if !failing(cand) {
				break
			}
			c = cand
		}
	}
	return c
}

func shrinkBCP(c Case, failing func(Case) bool) Case {
	// Drop boxes in shrinking chunks.
	c = shrinkChunks(c, failing, len(c.Boxes), func(cand *Case, lo, hi int) {
		cand.Boxes = append(cand.Boxes[:lo:lo], cand.Boxes[hi:]...)
	})
	// Drop whole dimensions (projecting every box).
	for dim := len(c.Depths) - 1; dim >= 0 && len(c.Depths) > 1; dim-- {
		cand := c.Clone()
		cand.Depths = append(cand.Depths[:dim], cand.Depths[dim+1:]...)
		ok := true
		for i, s := range cand.Boxes {
			b, err := dyadic.ParseBox(s)
			if err != nil || len(b) <= dim {
				ok = false
				break
			}
			b = append(b[:dim], b[dim+1:]...)
			cand.Boxes[i] = b.String()
		}
		if ok && failing(cand) {
			c = cand
		}
	}
	// Coarsen dimension depths, truncating over-deep intervals.
	for dim := range c.Depths {
		for c.Depths[dim] > 1 {
			cand := c.Clone()
			nd := cand.Depths[dim] - 1
			cand.Depths[dim] = nd
			ok := true
			for i, s := range cand.Boxes {
				b, err := dyadic.ParseBox(s)
				if err != nil || len(b) <= dim {
					ok = false
					break
				}
				if int(b[dim].Len) > nd {
					drop := b[dim].Len - uint8(nd)
					b[dim].Bits >>= drop
					b[dim].Len = uint8(nd)
				}
				cand.Boxes[i] = b.String()
			}
			if !ok || !failing(cand) {
				break
			}
			c = cand
		}
	}
	return c
}

// shrinkChunks is ddmin-lite over an n-element list: try removing
// chunks of size n/2, n/4, …, 1; remove applies the deletion of range
// [lo,hi) to a candidate. It returns the smallest still-failing case
// found.
func shrinkChunks(c Case, failing func(Case) bool, n int, remove func(cand *Case, lo, hi int)) Case {
	for chunk := (n + 1) / 2; chunk >= 1; chunk /= 2 {
		for lo := 0; lo < n; {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			cand := c.Clone()
			remove(&cand, lo, hi)
			if failing(cand) {
				c = cand
				n -= hi - lo
			} else {
				lo = hi
			}
		}
	}
	return c
}
