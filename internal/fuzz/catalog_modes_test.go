package fuzz

import (
	"math/big"
	"testing"

	"tetrisjoin/internal/baseline"
	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
)

// TestCatalogPathMatchesOneShotAllFamilies is the acceptance sweep for
// the serving lifecycle: for every workload family and each of the
// {materialize, count, boolean} modes, the catalog-prepared path must be
// differentially identical to the one-shot path — same tuples in the
// same order, same cardinality, same coverage verdict — and the second
// execution must prove amortization with IndexBuilds == 0.
func TestCatalogPathMatchesOneShotAllFamilies(t *testing.T) {
	for name, q := range workloadFamilies() {
		oneShot, err := join.Execute(q, join.Options{Mode: core.Preloaded, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: one-shot: %v", name, err)
		}

		cat := catalog.New()

		// Materialize: execute the same query twice through the catalog.
		var prev *join.Result
		for run := 0; run < 2; run++ {
			res, err := cat.ExecuteQuery(q, join.Options{Mode: core.Preloaded, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s: catalog run %d: %v", name, run, err)
			}
			if d := baseline.FirstDivergence(res.Tuples, oneShot.Tuples); d != nil {
				t.Fatalf("%s: catalog run %d diverges from one-shot at #%d: got %v, want %v",
					name, run, d.Index, d.Got, d.Want)
			}
			switch run {
			case 0:
				if res.Stats.IndexBuilds == 0 {
					t.Errorf("%s: first catalog run built nothing", name)
				}
			case 1:
				if res.Stats.IndexBuilds != 0 {
					t.Errorf("%s: second catalog run built %d indexes, want 0", name, res.Stats.IndexBuilds)
				}
				if res.Stats.Outputs != prev.Stats.Outputs {
					t.Errorf("%s: second run Outputs %d != first %d", name, res.Stats.Outputs, prev.Stats.Outputs)
				}
			}
			prev = res
		}

		// Count: prepared counting agrees with one-shot counting and the
		// enumerated cardinality.
		oneShotCount, _, err := join.Count(q, join.Options{})
		if err != nil {
			t.Fatalf("%s: one-shot count: %v", name, err)
		}
		catCount, cstats, err := cat.CountQuery(q, join.Options{})
		if err != nil {
			t.Fatalf("%s: catalog count: %v", name, err)
		}
		if catCount.Cmp(oneShotCount) != 0 {
			t.Errorf("%s: catalog count %v != one-shot count %v", name, catCount, oneShotCount)
		}
		if catCount.Cmp(big.NewInt(int64(len(oneShot.Tuples)))) != 0 {
			t.Errorf("%s: catalog count %v != enumerated %d", name, catCount, len(oneShot.Tuples))
		}
		if cstats.IndexBuilds != 0 {
			t.Errorf("%s: catalog count built %d indexes on a warm catalog, want 0", name, cstats.IndexBuilds)
		}

		// Boolean: the prepared cover verdict matches output emptiness,
		// with a real output tuple as witness when non-empty.
		p, err := cat.PrepareQuery(q, join.Options{})
		if err != nil {
			t.Fatalf("%s: prepare: %v", name, err)
		}
		rep, err := p.Covers(join.Options{})
		if err != nil {
			t.Fatalf("%s: covers: %v", name, err)
		}
		if rep.Covered != (len(oneShot.Tuples) == 0) {
			t.Errorf("%s: Covered=%v but one-shot has %d tuples", name, rep.Covered, len(oneShot.Tuples))
		}
		if !rep.Covered {
			point := rep.Witness.Values(q.Depths())
			found := false
			for _, tup := range oneShot.Tuples {
				match := true
				for i := range tup {
					if tup[i] != point[i] {
						match = false
						break
					}
				}
				if match {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: boolean witness %v is not an output tuple", name, point)
			}
		}
	}
}
