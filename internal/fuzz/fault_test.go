package fuzz

import (
	"math/rand"
	"testing"

	"tetrisjoin/internal/join"
)

// TestInjectedFaultCaughtAndShrunk is the end-to-end self-test of the
// pipeline (and the PR's acceptance criterion): running the engines
// over an oracle that silently hides one gap box — the knowledge an
// engine would lose by skipping a resolution — must be caught by the
// differential matrix and shrunk to a repro of at most 3 atoms (query
// cases) and at most 8 boxes (BCP cases).
func TestInjectedFaultCaughtAndShrunk(t *testing.T) {
	ck := NewChecker()
	ck.WrapOracle = DropLargestGap
	failing := failingWith(ck)

	caught := map[Kind]int{}
	for seed := int64(1); seed <= 30; seed++ {
		for _, kind := range []Kind{QueryKind, BCPKind} {
			if caught[kind] >= 3 {
				continue
			}
			c := GenCase(rand.New(rand.NewSource(seed)), kind)
			d, err := ck.Check(c)
			if err != nil {
				t.Fatalf("seed %d: invalid case: %v", seed, err)
			}
			if d == nil {
				continue // the fault was invisible here (e.g. empty gap set)
			}
			caught[kind]++
			s := Shrink(c, failing)
			if !failing(s) {
				t.Fatalf("seed %d: shrunk case no longer fails:\n%s", seed, s.Marshal())
			}
			if kind == QueryKind && len(s.Atoms) > 3 {
				t.Errorf("seed %d: query repro kept %d atoms, want <= 3:\n%s", seed, len(s.Atoms), s.Marshal())
			}
			if kind == BCPKind && len(s.Boxes) > 8 {
				t.Errorf("seed %d: BCP repro kept %d boxes, want <= 8:\n%s", seed, len(s.Boxes), s.Marshal())
			}
		}
	}
	if caught[QueryKind] == 0 || caught[BCPKind] == 0 {
		t.Fatalf("injected fault went uncaught (query cases: %d, BCP cases: %d)", caught[QueryKind], caught[BCPKind])
	}
}

// TestDropLargestGapActuallyDrops pins the fault's mechanics so the
// test above cannot silently pass against a broken injector.
func TestDropLargestGapActuallyDrops(t *testing.T) {
	c := GenCase(rand.New(rand.NewSource(3)), QueryKind)
	q, err := c.BuildQuery()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := join.NewPlan(q, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inner := plan.NewOracle()
	n := len(inner.AllGaps())
	if n == 0 {
		t.Skip("case has an empty gap set")
	}
	wrapped := DropLargestGap(plan.NewOracle())
	if got := len(wrapped.AllGaps()); got != n-1 {
		t.Fatalf("wrapped AllGaps has %d boxes, want %d", got, n-1)
	}
}
