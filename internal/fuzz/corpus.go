package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// WriteCase serializes a case into dir as <name>.json (a counter suffix
// avoids collisions) and returns the path written.
func WriteCase(dir string, c Case) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := c.Name
	if name == "" {
		name = "case"
	}
	name = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, name)
	path := filepath.Join(dir, name+".json")
	for i := 2; ; i++ {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			break
		}
		path = filepath.Join(dir, fmt.Sprintf("%s-%d.json", name, i))
	}
	return path, os.WriteFile(path, c.Marshal(), 0o644)
}

// CorpusEntry is one committed repro: its filename and the parsed case.
type CorpusEntry struct {
	File string
	Case Case
}

// LoadCorpus reads every *.json case under dir, sorted by filename so
// replay order is deterministic (a failing replay bisects the same way
// on every run). A missing directory is an empty corpus.
func LoadCorpus(dir string) ([]CorpusEntry, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make([]CorpusEntry, 0, len(names))
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		c, err := ParseCase(data)
		if err != nil {
			return nil, fmt.Errorf("fuzz: corpus file %s: %w", name, err)
		}
		out = append(out, CorpusEntry{File: name, Case: c})
	}
	return out, nil
}
