package fuzz

import "testing"

// TestPlannerFamiliesClean replays the fixed workload-family panel of
// the planner differential on every test run: the statistics-driven
// planner must stay semantically transparent on the classic paper
// instances and the skewed adversarial ones alike.
func TestPlannerFamiliesClean(t *testing.T) {
	ck := NewChecker()
	ck.PlannerOnly = true
	for _, c := range PlannerFamilies() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			d, err := ck.Check(c)
			if err != nil {
				t.Fatalf("invalid family case: %v", err)
			}
			if d != nil {
				t.Fatalf("discrepancy: %v", d)
			}
		})
	}
}
