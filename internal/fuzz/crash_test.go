package fuzz

import (
	"math/rand"
	"strings"
	"testing"

	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/durable"
	"tetrisjoin/internal/relation"
	"tetrisjoin/internal/wal"
)

// TestCrashRecoveryCorpusReplay replays every committed query repro
// through the CrashRecovery configuration alone on every go test run —
// the corpus doubles as the durability layer's regression memory.
func TestCrashRecoveryCorpusReplay(t *testing.T) {
	corpus, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	ck := NewChecker()
	ck.CrashOnly = true
	ran := 0
	for _, e := range corpus {
		if e.Case.Kind() != QueryKind {
			continue
		}
		ran++
		t.Run(e.File, func(t *testing.T) {
			d, err := ck.Check(e.Case)
			if err != nil {
				t.Fatalf("corpus case is invalid: %v", err)
			}
			if d != nil {
				t.Fatalf("crash recovery diverged on committed repro: %v", d)
			}
		})
	}
	if ran < 3 {
		t.Fatalf("only %d query cases in the corpus, want at least 3 (including dedicated crash-* cases)", ran)
	}
}

// TestCrashRecoverySweep is the deterministic slice of the crash
// campaign run on every go test: generated query cases through the WAL
// crash differential only.
func TestCrashRecoverySweep(t *testing.T) {
	ck := NewChecker()
	ck.CrashOnly = true
	for seed := int64(1); seed <= 25; seed++ {
		c := GenCase(rand.New(rand.NewSource(seed)), QueryKind)
		d, err := ck.Check(c)
		if err != nil {
			t.Fatalf("seed %d: invalid case: %v", seed, err)
		}
		if d != nil {
			shrunk := Shrink(c, failingWith(ck))
			t.Fatalf("seed %d: %v\nshrunk repro (add to testdata/corpus/):\n%s", seed, d, shrunk.Marshal())
		}
	}
}

// TestCrashComparatorDetectsDrift pins that the crash oracle comparison
// is not vacuous: a recovered catalog that lost one acknowledged tuple
// must be reported.
func TestCrashComparatorDetectsDrift(t *testing.T) {
	fs := wal.NewMemFS()
	d, err := durable.Open("", durable.Options{FS: fs, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	mk := func() *relation.Relation {
		rel, err := relation.New("R", []string{"x", "y"}, []uint8{2, 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range [][]uint64{{1, 2}, {2, 3}} {
			if err := rel.Insert(tu...); err != nil {
				t.Fatal(err)
			}
		}
		return rel
	}
	if _, err := d.Ingest(mk()); err != nil {
		t.Fatal(err)
	}

	oracle := catalog.New()
	if _, err := oracle.Ingest(mk()); err != nil {
		t.Fatal(err)
	}
	// The oracle saw one more acknowledged append than the "recovered"
	// catalog holds.
	if _, err := oracle.Append("R", relation.Tuple{3, 3}); err != nil {
		t.Fatal(err)
	}

	ck := NewChecker()
	disc := ck.compareCrashState("drift-test", d, oracle, nil, "R(A,B)", []string{"R"})
	if disc == nil {
		t.Fatal("comparator accepted a recovered catalog missing an acknowledged tuple")
	}
	if !strings.Contains(disc.Config, "drift-test") {
		t.Fatalf("discrepancy lacks the config label: %v", disc)
	}
}
