package fuzz

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"tetrisjoin/internal/baseline"
	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/durable"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
	"tetrisjoin/internal/segment"
	"tetrisjoin/internal/wal"
)

// crashMutations is the mutation-script length of the CrashRecovery
// configuration: enough writes that crashes can land before, inside and
// after every kind of record, without dominating the per-case budget.
const crashMutations = 5

// crashMaintID is the durable id of the maintained statement every
// crash script registers.
const crashMaintID = "crash-stmt"

// crashOp is one scripted mutation of the CrashRecovery configuration.
// The same plan is replayed against a WAL-backed durable catalog (with
// crashes injected) and against plain in-memory oracle catalogs that
// see only the durably-acknowledged prefix.
type crashOp struct {
	kind   string // ingest | append | delete | maintain
	name   string
	snap   relation.Snapshot // ingest payload
	tuples []relation.Tuple  // append/delete payload
	query  string            // maintain payload
	sao    []string          // maintain SAO, pinned so plans can't drift
	desc   string

	// Filled in when the op is acknowledged by a durable run.
	end    int64 // WAL byte offset where this op's record ends
	inCkpt bool  // folded into a checkpoint (durable regardless of WAL bytes)
}

// checkCrashRecovery is the CrashRecovery engine configuration: the
// case's relations are driven through a WAL-backed durable catalog via
// a deterministic mutation script, crashes are simulated by truncating
// and corrupting the log at random byte offsets (plus torn-write and
// failed-sync injection through the MemFS sync hook), and every
// recovered catalog must answer — relation contents, the maintained
// statement, and the prepared query, byte-identically — exactly as an
// in-memory oracle that saw only the durably-acknowledged prefix.
func (ck *Checker) checkCrashRecovery(c Case) *Discrepancy {
	// The script is a pure function of the case bytes (salted away from
	// the incremental-maintenance stream), so corpus replay and campaign
	// reruns exercise identical crash scenarios.
	h := fnv.New64a()
	h.Write([]byte("crash-recovery"))
	h.Write(c.Marshal())
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	plan, text, names, err := buildCrashPlan(c, rng)
	if err != nil {
		return &Discrepancy{Config: "crash-recovery", Detail: fmt.Sprintf("plan: %v", err)}
	}

	if d := ck.crashTruncationRun(plan, text, names, rng); d != nil {
		return d
	}
	if d := ck.crashCheckpointRun(plan, text, names, rng); d != nil {
		return d
	}
	if d := ck.crashSegmentRun(plan, text, names, rng); d != nil {
		return d
	}
	return ck.crashFailedSyncRun(plan, text, names, rng)
}

// crashSegmentRun attacks the checkpoint's segment files and manifest.
// On a full-script checkpoint image (no WAL tail) it checks the
// rebuild-free restart invariant — a clean segment-backed open builds
// zero indexes — then recovers byte-identically through every injector:
// a flipped or truncated or deleted segment file, a flipped manifest
// (which StrictReplay must refuse), and a flip confined to a frozen
// index section, which must rebuild just that index rather than fall
// back to an older manifest. A second image keeps a live WAL tail so
// fallback recovery has to compose both log epochs with the mutations.
func (ck *Checker) crashSegmentRun(plan []crashOp, text string, names []string, rng *rand.Rand) *Discrepancy {
	ops := clonePlan(plan)
	fs := wal.NewMemFS()
	if d := runCrashScript(fs, ops, len(ops)-1); d != nil {
		return d
	}

	// Clean restart probe: every index comes back from its segment.
	rec, err := durable.Open("", durable.Options{FS: fs.Clone(), CheckpointEvery: -1})
	if err != nil {
		return &Discrepancy{Config: "crash-recovery/segment-clean", Detail: fmt.Sprintf("open: %v", err)}
	}
	info := rec.Recovery()
	builds := rec.IndexBuilds()
	rec.Close()
	if info.CheckpointFallback || info.IndexesRebuilt != 0 || info.Replayed != 0 {
		return &Discrepancy{Config: "crash-recovery/segment-clean",
			Detail: fmt.Sprintf("clean segment restart not clean: %+v", info)}
	}
	if builds != 0 {
		return &Discrepancy{Config: "crash-recovery/segment-clean",
			Detail: fmt.Sprintf("clean segment restart built %d indexes, want 0", builds)}
	}
	if d := ck.recoverAndCompare("crash-recovery/segment-clean", fs.Clone(), ops, 0, text, names, nil); d != nil {
		return d
	}

	files, err := fs.List()
	if err != nil {
		return &Discrepancy{Config: "crash-recovery/segment", Detail: fmt.Sprintf("list: %v", err)}
	}
	var segFiles []string
	manifest := ""
	for _, f := range files {
		switch {
		case strings.HasPrefix(f, "seg-"):
			segFiles = append(segFiles, f)
		case strings.HasPrefix(f, "checkpoint-"):
			manifest = f
		}
	}
	if len(segFiles) == 0 || manifest == "" {
		return &Discrepancy{Config: "crash-recovery/segment",
			Detail: fmt.Sprintf("checkpoint image has %d segment files, manifest %q", len(segFiles), manifest)}
	}
	victim := segFiles[rng.Intn(len(segFiles))]

	// Damaged or missing pieces: recovery must reconstruct the exact
	// acknowledged state from whatever remains (older manifests, the
	// rotated log epochs), never fail open. The oracle cut is moot —
	// every op is checkpoint-covered.
	type injector struct {
		name   string
		mutate func(img *wal.MemFS) error
		sanity func(durable.RecoveryInfo) string
		strict bool // StrictReplay must refuse the image
	}
	injectors := []injector{
		{name: "seg-flip", mutate: func(img *wal.MemFS) error {
			return img.FlipByte(victim, rng.Int63n(img.Size(victim)))
		}},
		{name: "seg-truncate", mutate: func(img *wal.MemFS) error {
			return img.Truncate(victim, rng.Int63n(img.Size(victim)))
		}},
		{name: "seg-remove", mutate: func(img *wal.MemFS) error {
			return img.Remove(victim)
		}},
		{name: "manifest-flip", mutate: func(img *wal.MemFS) error {
			return img.FlipByte(manifest, rng.Int63n(img.Size(manifest)))
		}, sanity: func(info durable.RecoveryInfo) string {
			if !info.CheckpointFallback {
				return "damaged manifest did not trigger fallback"
			}
			return ""
		}, strict: true},
	}
	// A flip confined to a frozen index section must cost exactly a
	// rebuild of that index — the tuple data is intact, so falling back
	// to an older manifest would be wrong (some relation has one whose
	// planner touched an index unless the script degenerated).
	if off, ok := indexSectionOffset(fs, victim, rng); ok {
		injectors = append(injectors, injector{
			name:   "index-section-flip",
			mutate: func(img *wal.MemFS) error { return img.FlipByte(victim, off) },
			sanity: func(info durable.RecoveryInfo) string {
				if info.CheckpointFallback {
					return "index-section damage escalated to manifest fallback"
				}
				if info.IndexesRebuilt == 0 {
					return "index-section damage rebuilt nothing"
				}
				return ""
			},
		})
	}
	for _, inj := range injectors {
		img := fs.Clone()
		if err := inj.mutate(img); err != nil {
			return &Discrepancy{Config: "crash-recovery/" + inj.name, Detail: fmt.Sprintf("mutate: %v", err)}
		}
		if inj.strict {
			if _, err := durable.Open("", durable.Options{FS: img.Clone(), CheckpointEvery: -1, StrictReplay: true}); err == nil {
				return &Discrepancy{Config: "crash-recovery/" + inj.name,
					Detail: "StrictReplay opened an image with a damaged newest checkpoint"}
			}
		}
		if d := ck.recoverAndCompare("crash-recovery/"+inj.name, img, ops, 0, text, names, inj.sanity); d != nil {
			return d
		}
	}

	// Image with a live WAL tail past the checkpoint: a damaged segment
	// now forces fallback recovery to compose both log epochs with the
	// tail mutations.
	ops = clonePlan(plan)
	tailFS := wal.NewMemFS()
	if d := runCrashScript(tailFS, ops, rng.Intn(len(ops)-1)); d != nil {
		return d
	}
	img := tailFS.Clone()
	tailVictim := ""
	tfiles, _ := img.List()
	for _, f := range tfiles {
		if strings.HasPrefix(f, "seg-") {
			tailVictim = f
			break
		}
	}
	if tailVictim == "" {
		return &Discrepancy{Config: "crash-recovery/segment-tail", Detail: "tail image has no segment files"}
	}
	if err := img.FlipByte(tailVictim, rng.Int63n(img.Size(tailVictim))); err != nil {
		return &Discrepancy{Config: "crash-recovery/segment-tail", Detail: fmt.Sprintf("mutate: %v", err)}
	}
	return ck.recoverAndCompare("crash-recovery/segment-tail", img, ops, tailFS.Size(durable.WALName), text, names, nil)
}

// indexSectionOffset picks a byte offset strictly inside one of the
// victim segment's index sections (any section past the leading tuple
// section). ok is false when the segment froze no indexes.
func indexSectionOffset(fs *wal.MemFS, victim string, rng *rand.Rand) (int64, bool) {
	data, err := fs.ReadFile(victim)
	if err != nil {
		return 0, false
	}
	seg, err := segment.Load(data)
	if err != nil || seg.Sections() < 2 {
		return 0, false
	}
	off, length := seg.Extent(1 + rng.Intn(seg.Sections()-1))
	return off + rng.Int63n(length), true
}

// crashTruncationRun: run the whole script against a pure-WAL durable
// catalog, then crash it offline — truncations at record boundaries,
// inside records and at random offsets, plus a flipped byte — and check
// every recovery against the acknowledged-prefix oracle. One truncated
// image is recovered twice to pin idempotence.
func (ck *Checker) crashTruncationRun(plan []crashOp, text string, names []string, rng *rand.Rand) *Discrepancy {
	ops := clonePlan(plan)
	fs := wal.NewMemFS()
	if d := runCrashScript(fs, ops, -1); d != nil {
		return d
	}
	size := fs.Size(durable.WALName)

	// Crash offsets: the full log (clean restart), empty, a random byte,
	// a record boundary, and one byte short of a boundary (torn tail).
	k := rng.Intn(len(ops))
	cuts := map[int64]bool{size: true, 0: true, rng.Int63n(size + 1): true, ops[k].end: true}
	if ops[k].end > 0 {
		cuts[ops[k].end-1] = true
	}
	reopenCut := ops[k].end // the boundary image doubles as the idempotence probe
	for cut := range cuts {
		img := fs.Clone()
		if cut < size {
			if err := img.Truncate(durable.WALName, cut); err != nil {
				return &Discrepancy{Config: "crash-recovery", Detail: fmt.Sprintf("truncate@%d: %v", cut, err)}
			}
		}
		opens := 1
		if cut == reopenCut {
			opens = 2 // recover, close, recover again: same answers both times
		}
		for n := 0; n < opens; n++ {
			config := fmt.Sprintf("crash-recovery/truncate@%d(open %d/%d)", cut, n+1, opens)
			if d := ck.recoverAndCompare(config, img, ops, cut, text, names, func(info durable.RecoveryInfo) string {
				if info.CorruptOffset >= 0 {
					return fmt.Sprintf("truncation misread as corruption at offset %d", info.CorruptOffset)
				}
				return ""
			}); d != nil {
				return d
			}
		}
	}

	// Mid-log corruption: flip one byte, recover leniently, and expect
	// exactly the records before the damaged one.
	off := rng.Int63n(size)
	img := fs.Clone()
	if err := img.FlipByte(durable.WALName, off); err != nil {
		return &Discrepancy{Config: "crash-recovery", Detail: fmt.Sprintf("corrupt@%d: %v", off, err)}
	}
	// Strict mode must refuse a log corrupted strictly inside — unless
	// the flip hit the damaged record's length field (the parser then
	// cannot tell it from a torn final write) or the final record (torn
	// tails are legal even under StrictReplay).
	di := 0
	for di < len(ops) && ops[di].end <= off {
		di++
	}
	start := int64(0)
	if di > 0 {
		start = ops[di-1].end
	}
	inLenField := off >= start+8 && off < start+12
	if di < len(ops)-1 && !inLenField {
		if _, err := durable.Open("", durable.Options{FS: img.Clone(), CheckpointEvery: -1, StrictReplay: true}); err == nil {
			return &Discrepancy{Config: fmt.Sprintf("crash-recovery/corrupt@%d", off),
				Detail: "StrictReplay opened a log with mid-log corruption"}
		}
	}
	return ck.recoverAndCompare(fmt.Sprintf("crash-recovery/corrupt@%d", off), img, ops, off, text, names, nil)
}

// crashCheckpointRun: same script with a checkpoint taken mid-way, then
// a crash in the WAL tail. Recovery must compose the snapshot with the
// surviving tail records — including re-materializing the maintained
// statement at checkpoint state and feeding it the tail as deltas.
func (ck *Checker) crashCheckpointRun(plan []crashOp, text string, names []string, rng *rand.Rand) *Discrepancy {
	ops := clonePlan(plan)
	ckptAfter := rng.Intn(len(ops) - 1) // always leaves at least one tail record
	fs := wal.NewMemFS()
	if d := runCrashScript(fs, ops, ckptAfter); d != nil {
		return d
	}
	size := fs.Size(durable.WALName) // tail records only: the checkpoint rotated the log
	for _, cut := range []int64{size, rng.Int63n(size + 1)} {
		img := fs.Clone()
		if cut < size {
			if err := img.Truncate(durable.WALName, cut); err != nil {
				return &Discrepancy{Config: "crash-recovery", Detail: fmt.Sprintf("ckpt truncate@%d: %v", cut, err)}
			}
		}
		config := fmt.Sprintf("crash-recovery/ckpt@%d-truncate@%d", ckptAfter, cut)
		if d := ck.recoverAndCompare(config, img, ops, cut, text, names, func(info durable.RecoveryInfo) string {
			if info.CheckpointLSN == 0 {
				return "recovery ignored the checkpoint"
			}
			return ""
		}); d != nil {
			return d
		}
	}
	return nil
}

// crashFailedSyncRun: replay the script online against a filesystem
// whose sync fails at a random operation, persisting only a random
// prefix of the pending record (a torn write). The failing operation
// must surface the error, the durable catalog must poison itself, and
// the crash image — synced bytes only — must recover to exactly the
// operations it acknowledged (plus the torn record only when the
// failed sync happened to persist all of it).
func (ck *Checker) crashFailedSyncRun(plan []crashOp, text string, names []string, rng *rand.Rand) *Discrepancy {
	ops := clonePlan(plan)
	failAt := rng.Intn(len(ops))
	fs := wal.NewMemFS()
	syncs := 0
	fs.SyncHook = func(name string, pending int) (int, bool) {
		if name != durable.WALName {
			return pending, false
		}
		syncs++
		if syncs == failAt+1 {
			return rng.Intn(pending + 1), true
		}
		return pending, false
	}
	d, err := durable.Open("", durable.Options{FS: fs, CheckpointEvery: -1})
	if err != nil {
		return &Discrepancy{Config: "crash-recovery/failed-sync", Detail: fmt.Sprintf("open: %v", err)}
	}
	defer d.Close()
	for i := range ops {
		err := applyToDurable(d, &ops[i])
		ops[i].end = d.WAL().WALSize // counts written bytes even when the sync failed
		if i < failAt {
			if err != nil {
				return &Discrepancy{Config: "crash-recovery/failed-sync",
					Detail: fmt.Sprintf("op %d (%s) failed before the injected fault: %v", i, ops[i].desc, err)}
			}
			continue
		}
		if err == nil {
			return &Discrepancy{Config: "crash-recovery/failed-sync",
				Detail: fmt.Sprintf("op %d (%s) acknowledged over a failed sync", i, ops[i].desc)}
		}
		break
	}
	if d.Err() == nil {
		return &Discrepancy{Config: "crash-recovery/failed-sync",
			Detail: "durable catalog not poisoned after a failed sync"}
	}
	if _, err := d.Append(names[0]); err == nil {
		return &Discrepancy{Config: "crash-recovery/failed-sync",
			Detail: "mutation succeeded on a poisoned durable catalog"}
	}

	img := fs.CrashClone()
	cut := img.Size(durable.WALName)
	config := fmt.Sprintf("crash-recovery/failed-sync@%d-keep@%d", failAt, cut)
	return ck.recoverAndCompare(config, img, ops[:failAt+1], cut, text, names, nil)
}

// recoverAndCompare opens the crash image leniently and compares the
// recovered catalog against an oracle that replays only the ops durable
// in that image: those folded into a checkpoint, plus those whose WAL
// record ends at or before the cut offset. sanity, when non-nil, may
// veto the RecoveryInfo.
func (ck *Checker) recoverAndCompare(config string, img *wal.MemFS, ops []crashOp, cut int64,
	text string, names []string, sanity func(durable.RecoveryInfo) string) *Discrepancy {

	rec, err := durable.Open("", durable.Options{FS: img, CheckpointEvery: -1})
	if err != nil {
		return &Discrepancy{Config: config, Detail: fmt.Sprintf("recovery failed: %v", err)}
	}
	defer rec.Close()
	if sanity != nil {
		if msg := sanity(rec.Recovery()); msg != "" {
			return &Discrepancy{Config: config, Detail: msg}
		}
	}
	oracle, om, err := crashOracle(ops, cut)
	if err != nil {
		return &Discrepancy{Config: config, Detail: fmt.Sprintf("oracle replay: %v", err)}
	}
	return ck.compareCrashState(config, rec, oracle, om, text, names)
}

// crashOracle replays the durably-acknowledged prefix of the script
// into a plain in-memory catalog: checkpointed ops always, WAL-tail ops
// up to the cut. Durability is prefix-closed — checkpointed ops precede
// all tail ops and tail offsets are monotone — so the first op past the
// cut ends the replay.
func crashOracle(ops []crashOp, cut int64) (*catalog.Catalog, *catalog.Maintained, error) {
	cat := catalog.New()
	var m *catalog.Maintained
	for i := range ops {
		op := &ops[i]
		if !op.inCkpt && op.end > cut {
			break
		}
		switch op.kind {
		case "ingest":
			rel, err := relation.FromSnapshot(op.snap)
			if err != nil {
				return nil, nil, err
			}
			if _, err := cat.Ingest(rel); err != nil {
				return nil, nil, err
			}
		case "append":
			if _, err := cat.Append(op.name, op.tuples...); err != nil {
				return nil, nil, err
			}
		case "delete":
			if _, err := cat.Delete(op.name, op.tuples...); err != nil {
				return nil, nil, err
			}
		case "maintain":
			var err error
			m, err = cat.Maintain(op.query, join.Options{Mode: core.Preloaded, SAOVars: op.sao})
			if err != nil {
				return nil, nil, err
			}
		}
	}
	return cat, m, nil
}

// compareCrashState: the recovered durable catalog must match the
// oracle exactly — same relations with the same tuple sets, the
// maintained statement present iff its registration was durable and
// answering byte-identically, and the prepared query byte-identical.
func (ck *Checker) compareCrashState(config string, rec *durable.Catalog, oracle *catalog.Catalog,
	om *catalog.Maintained, text string, names []string) *Discrepancy {

	got := append([]string(nil), rec.Names()...)
	want := append([]string(nil), oracle.Names()...)
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		return &Discrepancy{Config: config,
			Detail: fmt.Sprintf("recovered relations %v, want %v", got, want)}
	}
	for _, name := range want {
		orel, _ := oracle.Relation(name)
		rrel, _ := rec.Relation(name)
		if d := diffTuples(config+"/"+name, relationTuples(rrel), sortedCopy(relationTuples(orel))); d != nil {
			return d
		}
	}

	rm, ok := rec.MaintainedByID(crashMaintID)
	if ok != (om != nil) {
		return &Discrepancy{Config: config,
			Detail: fmt.Sprintf("maintained statement recovered=%v, want %v", ok, om != nil)}
	}
	if om != nil {
		wantRes, err := om.Execute(join.Options{})
		if err != nil {
			return &Discrepancy{Config: config, Detail: fmt.Sprintf("oracle maintained execute: %v", err)}
		}
		gotRes, err := rm.Execute(join.Options{})
		if err != nil {
			return &Discrepancy{Config: config, Detail: fmt.Sprintf("recovered maintained execute: %v", err)}
		}
		if d := baseline.FirstDivergence(gotRes.Tuples, wantRes.Tuples); d != nil {
			return &Discrepancy{Config: config + "/maintained",
				Detail: fmt.Sprintf("recovered maintained result differs from oracle (%d tuples vs %d)",
					len(gotRes.Tuples), len(wantRes.Tuples)),
				Got: len(gotRes.Tuples), Want: len(wantRes.Tuples), Diff: d}
		}
	}

	// The prepared query, when every relation it touches survived the
	// crash: identical tuples in identical enumeration order.
	for _, n := range names {
		if _, ok := oracle.Relation(n); !ok {
			return nil
		}
	}
	opts := join.Options{Mode: core.Preloaded, Parallelism: 1}
	wantRes, err := oracle.Execute(text, opts)
	if err != nil {
		return &Discrepancy{Config: config, Detail: fmt.Sprintf("oracle execute: %v", err)}
	}
	gotRes, err := rec.Execute(text, opts)
	if err != nil {
		return &Discrepancy{Config: config, Detail: fmt.Sprintf("recovered execute: %v", err)}
	}
	if d := baseline.FirstDivergence(gotRes.Tuples, wantRes.Tuples); d != nil {
		return &Discrepancy{Config: config + "/query",
			Detail: fmt.Sprintf("recovered query result differs from oracle (%d tuples vs %d)",
				len(gotRes.Tuples), len(wantRes.Tuples)),
			Got: len(gotRes.Tuples), Want: len(wantRes.Tuples), Diff: d}
	}
	return nil
}

// buildCrashPlan derives the deterministic mutation script: ingest the
// case's relations, register the maintained statement (SAO pinned to
// the query's variable order so the oracle and every recovery plan
// identically), then crashMutations random writes. A scratch catalog
// tracks state so victim and duplicate picks see prior script effects.
func buildCrashPlan(c Case, rng *rand.Rand) (ops []crashOp, text string, names []string, _ error) {
	q, err := c.BuildQuery()
	if err != nil {
		return nil, "", nil, err
	}
	scratch := catalog.New()
	seen := map[string]bool{}
	var atoms []string
	for _, a := range q.Atoms() {
		name := a.Relation.Name()
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
			if _, err := scratch.Ingest(a.Relation); err != nil {
				return nil, "", nil, err
			}
			ops = append(ops, crashOp{kind: "ingest", name: name, snap: a.Relation.Snapshot(), desc: "ingest " + name})
		}
		atoms = append(atoms, name+"("+strings.Join(a.Vars, ",")+")")
	}
	text = strings.Join(atoms, ", ")
	ops = append(ops, crashOp{kind: "maintain", query: text,
		sao: append([]string(nil), q.Vars()...), desc: "maintain " + crashMaintID})
	for i := 0; i < crashMutations; i++ {
		op, err := planCrashMutation(scratch, names[rng.Intn(len(names))], rng)
		if err != nil {
			return nil, "", nil, err
		}
		ops = append(ops, op)
	}
	return ops, text, names, nil
}

// planCrashMutation picks one random write (the incremental-maintenance
// op mix: deletes of present and absent tuples, duplicate appends,
// batches, plain appends), applies it to the scratch catalog and
// records it as a plan op.
func planCrashMutation(scratch *catalog.Catalog, name string, rng *rand.Rand) (crashOp, error) {
	rel, ok := scratch.Relation(name)
	if !ok {
		return crashOp{}, fmt.Errorf("relation %q vanished", name)
	}
	depths := rel.Depths()
	randTuple := func() relation.Tuple {
		t := make(relation.Tuple, len(depths))
		for i, d := range depths {
			t[i] = uint64(rng.Intn(1 << d))
		}
		return t
	}
	op := crashOp{name: name}
	switch k := rng.Intn(6); {
	case k == 0 && rel.Len() > 0:
		victim := rel.Tuples()[rng.Intn(rel.Len())]
		op.kind, op.tuples = "delete", []relation.Tuple{victim}
		op.desc = fmt.Sprintf("delete %s%v", name, victim)
	case k == 1:
		t := randTuple()
		op.kind, op.tuples = "delete", []relation.Tuple{t}
		op.desc = fmt.Sprintf("delete-absent %s%v", name, t)
	case k == 2 && rel.Len() > 0:
		dup := rel.Tuples()[rng.Intn(rel.Len())]
		op.kind, op.tuples = "append", []relation.Tuple{dup}
		op.desc = fmt.Sprintf("append-dup %s%v", name, dup)
	case k == 3:
		op.kind, op.tuples = "append", []relation.Tuple{randTuple(), randTuple(), randTuple()}
		op.desc = fmt.Sprintf("append-batch %s x%d", name, len(op.tuples))
	default:
		t := randTuple()
		op.kind, op.tuples = "append", []relation.Tuple{t}
		op.desc = fmt.Sprintf("append %s%v", name, t)
	}
	var err error
	if op.kind == "append" {
		_, err = scratch.Append(name, op.tuples...)
	} else {
		_, err = scratch.Delete(name, op.tuples...)
	}
	return op, err
}

// runCrashScript drives the plan through a fresh durable catalog over
// fs, recording each acknowledged op's WAL end offset. With ckptAfter
// >= 0 a checkpoint is taken after that op, marking everything logged
// so far as checkpoint-covered.
func runCrashScript(fs *wal.MemFS, ops []crashOp, ckptAfter int) *Discrepancy {
	d, err := durable.Open("", durable.Options{FS: fs, CheckpointEvery: -1})
	if err != nil {
		return &Discrepancy{Config: "crash-recovery/script", Detail: fmt.Sprintf("open: %v", err)}
	}
	defer d.Close()
	for i := range ops {
		if err := applyToDurable(d, &ops[i]); err != nil {
			return &Discrepancy{Config: "crash-recovery/script",
				Detail: fmt.Sprintf("op %d (%s): %v", i, ops[i].desc, err)}
		}
		ops[i].end = d.WAL().WALSize
		if i == ckptAfter {
			if err := d.Checkpoint(); err != nil {
				return &Discrepancy{Config: "crash-recovery/script",
					Detail: fmt.Sprintf("checkpoint after op %d: %v", i, err)}
			}
			for j := 0; j <= i; j++ {
				ops[j].inCkpt = true
			}
		}
	}
	return nil
}

// applyToDurable applies one plan op through the durable API.
func applyToDurable(d *durable.Catalog, op *crashOp) error {
	switch op.kind {
	case "ingest":
		rel, err := relation.FromSnapshot(op.snap)
		if err != nil {
			return err
		}
		_, err = d.Ingest(rel)
		return err
	case "append":
		_, err := d.Append(op.name, op.tuples...)
		return err
	case "delete":
		_, err := d.Delete(op.name, op.tuples...)
		return err
	case "maintain":
		_, err := d.Maintain(crashMaintID, op.query, join.Options{Mode: core.Preloaded, SAOVars: op.sao})
		return err
	default:
		return fmt.Errorf("unknown plan op %q", op.kind)
	}
}

// clonePlan copies the plan so each run records its own offsets.
func clonePlan(plan []crashOp) []crashOp {
	out := make([]crashOp, len(plan))
	copy(out, plan)
	return out
}

// relationTuples converts a relation's tuples for diffTuples.
func relationTuples(rel *relation.Relation) [][]uint64 {
	ts := rel.Tuples()
	out := make([][]uint64, len(ts))
	for i, t := range ts {
		out[i] = t
	}
	return out
}
