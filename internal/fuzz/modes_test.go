package fuzz

import (
	"math/big"
	"testing"

	"tetrisjoin/internal/baseline"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/workload"
)

// workloadFamilies returns one small representative query per workload
// family — the same coverage the parallel differential tests use, plus
// the random-incidence family.
func workloadFamilies() map[string]*join.Query {
	return map[string]*join.Query{
		"path":           workload.PathQuery(3, 60, 6, 7),
		"star":           workload.StarQuery(3, 40, 5, 11),
		"triangle-msb":   workload.TriangleMSB(3),
		"triangle-star":  workload.TriangleAGMStar(12, 6),
		"triangle-dense": workload.TriangleDense(5, 4),
		"bowtie-block":   workload.BowtieBlock(4),
		"gao-sensitive":  workload.GAOSensitive(10, 5),
		"tree-ordered":   workload.TreeOrderedHard(4),
		"four-cycle":     workload.FourCycleBlocks(3),
		"diag-bowtie":    workload.DiagonalBowtie(4),
		"clique":         workload.CliqueQuery(3, 10, 0.4, 4, 13),
		"incidence":      workload.RandomIncidenceQuery(4, 3, 3, 25, 3, 17),
	}
}

// TestCountModeMatchesBaselines: for every workload family, the
// counting variant (join.Count — the memoized #SAT-style skeleton) must
// agree with the enumerated cardinality of both the Tetris engine and
// the Generic Join baseline, without materializing tuples. Until now
// only enumeration was differentially tested end-to-end.
func TestCountModeMatchesBaselines(t *testing.T) {
	for name, q := range workloadFamilies() {
		ref, err := baseline.GenericJoin(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := join.Execute(q, join.Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Tuples) != len(ref) {
			t.Errorf("%s: tetris enumerated %d tuples, generic join %d", name, len(res.Tuples), len(ref))
		}
		count, _, err := join.Count(q, join.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if count.Cmp(big.NewInt(int64(len(ref)))) != 0 {
			t.Errorf("%s: count mode returned %v, enumeration has %d tuples", name, count, len(ref))
		}
		// NoCache (tree ordered resolution) must not change the count.
		countNC, _, err := join.Count(q, join.Options{NoCache: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if count.Cmp(countNC) != 0 {
			t.Errorf("%s: cached count %v != uncached count %v", name, count, countNC)
		}
	}
}

// TestBooleanModeMatchesBaselines: for every workload family, the
// Boolean box cover over the query's gap set must report covered
// exactly when the join output is empty, and a non-covered witness must
// be an actual output tuple of the baseline.
func TestBooleanModeMatchesBaselines(t *testing.T) {
	sawEmpty, sawNonEmpty := false, false
	for name, q := range workloadFamilies() {
		ref, err := baseline.GenericJoin(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		refSet := map[string]bool{}
		for _, tup := range ref {
			refSet[tupleKeyString(tup)] = true
		}
		plan, err := join.NewPlan(q, join.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		oracle := plan.NewOracle()
		rep, err := core.Covers(oracle.Depths(), oracle.AllGaps(), core.Options{SAO: plan.SAO()})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Covered != (len(ref) == 0) {
			t.Errorf("%s: boolean mode Covered=%v but output has %d tuples", name, rep.Covered, len(ref))
		}
		if rep.Covered {
			sawEmpty = true
		} else {
			sawNonEmpty = true
			point := rep.Witness.Values(oracle.Depths())
			if !refSet[tupleKeyString(point)] {
				t.Errorf("%s: boolean witness %v is not an output tuple", name, point)
			}
		}
	}
	// The family set must exercise both branches or the test is weaker
	// than it looks.
	if !sawEmpty || !sawNonEmpty {
		t.Fatalf("family set is one-sided: sawEmpty=%v sawNonEmpty=%v", sawEmpty, sawNonEmpty)
	}
}
