// Package fuzz is the differential-testing subsystem of the engine: a
// seeded random generator of join queries and dyadic box cover
// instances, a cross-engine oracle that executes every case through
// Tetris in all modes × SAO permutations × shard/worker settings and
// checks the results against the classical baselines of
// internal/baseline, and a greedy shrinker that minimizes failing cases
// to small repros serialized under testdata/corpus/.
//
// Worst-case optimal join engines diverge from theory precisely on
// degenerate instances — skewed, empty, saturated, partition-structured
// relations under unlucky attribute orders — which randomized
// generation finds and hand-written tests don't. The pipeline is
//
//	generator → differential oracle → shrinker → corpus
//
// wired three ways: native go test -fuzz targets over the generator
// seed, a deterministic corpus-replay test on every go test run, and
// the cmd/fuzz CLI for long offline campaigns.
package fuzz

import (
	"encoding/json"
	"fmt"
	"sort"

	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

// Kind distinguishes the two case families the subsystem exercises.
type Kind int

const (
	// QueryKind is a natural join query over materialized relations,
	// cross-checked against the baseline engines.
	QueryKind Kind = iota
	// BCPKind is a raw box cover problem — depths plus an explicit gap
	// box set — cross-checked against brute-force point enumeration.
	BCPKind
)

// CaseRelation is a relation instance of a query case. Attribute names
// are positional (c0, c1, …); per-column depths derive from the
// variables the first referencing atom binds.
type CaseRelation struct {
	Name   string     `json:"name"`
	Tuples [][]uint64 `json:"tuples"`
}

// CaseAtom is one atom of a query case: a relation reference and the
// query variables bound to its columns. Atoms sharing Rel share one
// relation instance (self-joins).
type CaseAtom struct {
	Rel  string   `json:"rel"`
	Vars []string `json:"vars"`
}

// Case is a deterministic, serializable description of one fuzz case.
// Exactly one of the two sections is populated: Atoms/Relations/
// VarDepths for a query case, Depths/Boxes for a box cover case.
type Case struct {
	Name string `json:"name,omitempty"`

	// Query section.
	VarDepths map[string]uint8 `json:"var_depths,omitempty"`
	Relations []CaseRelation   `json:"relations,omitempty"`
	Atoms     []CaseAtom       `json:"atoms,omitempty"`

	// BCP section. Boxes use the binary-prefix notation of
	// dyadic.ParseBox, e.g. "⟨01,λ⟩" or "01,*". Depths is []int rather
	// than []uint8 so corpus JSON stays human-readable (encoding/json
	// base64-encodes byte slices).
	Depths []int    `json:"depths,omitempty"`
	Boxes  []string `json:"boxes,omitempty"`
}

// Kind reports which family the case belongs to.
func (c *Case) Kind() Kind {
	if len(c.Atoms) > 0 {
		return QueryKind
	}
	return BCPKind
}

// Clone returns an independent deep copy, for shrinker candidates.
func (c *Case) Clone() Case {
	out := Case{Name: c.Name}
	if c.VarDepths != nil {
		out.VarDepths = make(map[string]uint8, len(c.VarDepths))
		for k, v := range c.VarDepths {
			out.VarDepths[k] = v
		}
	}
	for _, r := range c.Relations {
		tuples := make([][]uint64, len(r.Tuples))
		for i, t := range r.Tuples {
			tuples[i] = append([]uint64(nil), t...)
		}
		out.Relations = append(out.Relations, CaseRelation{Name: r.Name, Tuples: tuples})
	}
	for _, a := range c.Atoms {
		out.Atoms = append(out.Atoms, CaseAtom{Rel: a.Rel, Vars: append([]string(nil), a.Vars...)})
	}
	out.Depths = append([]int(nil), c.Depths...)
	out.Boxes = append([]string(nil), c.Boxes...)
	return out
}

// relationOf returns the tuple list of the named relation, or nil.
func (c *Case) relationOf(name string) *CaseRelation {
	for i := range c.Relations {
		if c.Relations[i].Name == name {
			return &c.Relations[i]
		}
	}
	return nil
}

// normalize drops relations no atom references and variable depths no
// atom uses, so shrunk cases stay self-contained.
func (c *Case) normalize() {
	if c.Kind() != QueryKind {
		return
	}
	usedRel := map[string]bool{}
	usedVar := map[string]bool{}
	for _, a := range c.Atoms {
		usedRel[a.Rel] = true
		for _, v := range a.Vars {
			usedVar[v] = true
		}
	}
	kept := c.Relations[:0]
	for _, r := range c.Relations {
		if usedRel[r.Name] {
			kept = append(kept, r)
		}
	}
	c.Relations = kept
	for v := range c.VarDepths {
		if !usedVar[v] {
			delete(c.VarDepths, v)
		}
	}
}

// BuildQuery materializes a query case: relations are created with
// positional attribute names and per-column depths taken from the first
// referencing atom's variables, tuples inserted, and the query
// assembled (join.NewQuery validates shared-variable depth agreement).
func (c *Case) BuildQuery() (*join.Query, error) {
	if c.Kind() != QueryKind {
		return nil, fmt.Errorf("fuzz: case %q is not a query case", c.Name)
	}
	catalog := map[string]*relation.Relation{}
	var atoms []join.Atom
	for ai, a := range c.Atoms {
		rel, ok := catalog[a.Rel]
		if !ok {
			cr := c.relationOf(a.Rel)
			if cr == nil {
				return nil, fmt.Errorf("fuzz: atom %d references unknown relation %q", ai, a.Rel)
			}
			attrs := make([]string, len(a.Vars))
			depths := make([]uint8, len(a.Vars))
			for i, v := range a.Vars {
				d, ok := c.VarDepths[v]
				if !ok {
					return nil, fmt.Errorf("fuzz: variable %q has no depth", v)
				}
				attrs[i] = fmt.Sprintf("c%d", i)
				depths[i] = d
			}
			var err error
			rel, err = relation.New(a.Rel, attrs, depths)
			if err != nil {
				return nil, err
			}
			for _, t := range cr.Tuples {
				if err := rel.Insert(t...); err != nil {
					return nil, err
				}
			}
			catalog[a.Rel] = rel
		}
		atoms = append(atoms, join.Atom{Relation: rel, Vars: a.Vars})
	}
	return join.NewQuery(atoms...)
}

// BuildBCP materializes a box cover case, validating every box against
// the depths.
func (c *Case) BuildBCP() ([]uint8, []dyadic.Box, error) {
	if c.Kind() != BCPKind {
		return nil, nil, fmt.Errorf("fuzz: case %q is not a BCP case", c.Name)
	}
	if len(c.Depths) == 0 {
		return nil, nil, fmt.Errorf("fuzz: BCP case %q has no dimensions", c.Name)
	}
	depths := make([]uint8, len(c.Depths))
	for i, d := range c.Depths {
		if d <= 0 || d > dyadic.MaxDepth {
			return nil, nil, fmt.Errorf("fuzz: dimension %d has invalid depth %d", i, d)
		}
		depths[i] = uint8(d)
	}
	boxes := make([]dyadic.Box, 0, len(c.Boxes))
	for _, s := range c.Boxes {
		b, err := dyadic.ParseBox(s)
		if err != nil {
			return nil, nil, err
		}
		if err := b.Check(depths); err != nil {
			return nil, nil, fmt.Errorf("fuzz: box %q: %w", s, err)
		}
		boxes = append(boxes, b)
	}
	return depths, boxes, nil
}

// Size is the shrinker's progress measure: atoms + tuples + boxes +
// total depth bits. Every accepted shrink step strictly decreases it.
func (c *Case) Size() int {
	s := len(c.Atoms) + len(c.Boxes)
	for _, r := range c.Relations {
		s += len(r.Tuples)
	}
	for _, d := range c.VarDepths {
		s += int(d)
	}
	for _, d := range c.Depths {
		s += int(d)
	}
	return s
}

// Marshal serializes the case as deterministic, human-readable JSON
// (map keys sorted), the corpus file format.
func (c *Case) Marshal() []byte {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		panic(err) // Case contains only marshalable fields
	}
	return append(data, '\n')
}

// ParseCase deserializes a corpus file.
func ParseCase(data []byte) (Case, error) {
	var c Case
	if err := json.Unmarshal(data, &c); err != nil {
		return Case{}, err
	}
	if len(c.Atoms) == 0 && len(c.Depths) == 0 {
		return Case{}, fmt.Errorf("fuzz: case has neither atoms nor depths")
	}
	return c, nil
}

// sortedVars returns the query case's variables in sorted order (the
// deterministic iteration order used by the shrinker).
func (c *Case) sortedVars() []string {
	vars := make([]string, 0, len(c.VarDepths))
	for v := range c.VarDepths {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}
