package fuzz

import (
	"context"
	"fmt"
	"math/big"
	"strings"

	"tetrisjoin/internal/baseline"
	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/join"
)

// Discrepancy reports a cross-engine disagreement (or an engine failure)
// on a case: which configuration diverged, from what reference, and the
// first divergent tuple.
type Discrepancy struct {
	// Config identifies the failing engine configuration, e.g.
	// "tetris-preloaded sao=[B A] shards=4 workers=2".
	Config string
	// Detail is a human-readable description of the disagreement.
	Detail string
	// Got and Want are the result cardinalities (engine vs reference),
	// when cardinalities are meaningful for the failing check.
	Got, Want int
	// Diff points at the first divergent tuple, when tuple lists were
	// compared.
	Diff *baseline.Divergence
}

// String implements fmt.Stringer.
func (d *Discrepancy) String() string {
	s := fmt.Sprintf("[%s] %s", d.Config, d.Detail)
	if d.Diff != nil {
		s += fmt.Sprintf(" (first divergence at #%d: got %v, want %v)", d.Diff.Index, d.Diff.Got, d.Diff.Want)
	}
	return s
}

// Checker is the differential oracle. It executes a case through every
// engine configuration and cross-checks the results; the zero
// configuration checks nothing, use NewChecker for the default matrix.
type Checker struct {
	// Shards and Workers are the sharded-executor settings the matrix
	// crosses with every mode and SAO.
	Shards  []int
	Workers []int
	// StealDepths are the dynamic-splitting bounds crossed into the
	// sharded matrix (core.Options.StealDepth values: negative disables
	// stealing, 0 is the default bound). Single-worker runs try only the
	// first entry — with nobody to steal, the settings are equivalent.
	StealDepths []int
	// MaxSAOs caps the number of splitting attribute orders tried per
	// case (all n! permutations are tried when they fit the cap).
	MaxSAOs int
	// WrapOracle, when non-nil, wraps every oracle handed to the Tetris
	// engines. Tests use it to inject faults (e.g. an oracle hiding one
	// gap box) and assert the pipeline catches and shrinks them.
	WrapOracle func(core.Oracle) core.Oracle
	// CrashOnly restricts Check to the CrashRecovery configuration:
	// query cases run only the WAL-crash differential (cmd/fuzz -kind
	// crash), box cover cases are skipped.
	CrashOnly bool
	// PlannerOnly restricts Check to the PlannerDifferential
	// configuration: query cases run only the planner-transparency
	// checks (cmd/fuzz -kind planner), box cover cases are skipped.
	PlannerOnly bool
}

// NewChecker returns the default configuration: shards {2,4} × workers
// {1,2,4} × steal depths {disabled, default, aggressive}, at most 7
// SAOs per case.
func NewChecker() *Checker {
	return &Checker{
		Shards:      []int{2, 4},
		Workers:     []int{1, 2, 4},
		StealDepths: []int{-1, 0, 63},
		MaxSAOs:     7,
	}
}

// Check runs the full differential matrix on one case. It returns a
// non-nil Discrepancy when any engine disagrees with the reference (or
// errors at runtime), and a non-nil error only when the case itself is
// invalid — malformed tuples, inconsistent depths — and nothing could be
// checked. Shrinker candidates that turn invalid are thereby rejected
// rather than mistaken for failures.
func (ck *Checker) Check(c Case) (*Discrepancy, error) {
	if ck.CrashOnly || ck.PlannerOnly {
		if c.Kind() != QueryKind {
			return nil, nil
		}
		if _, err := c.BuildQuery(); err != nil {
			return nil, err
		}
		if ck.PlannerOnly {
			return ck.checkPlanner(c), nil
		}
		return ck.checkCrashRecovery(c), nil
	}
	if c.Kind() == QueryKind {
		return ck.checkQuery(c)
	}
	return ck.checkBCP(c)
}

// wrap applies the fault-injection hook, if any.
func (ck *Checker) wrap(o core.Oracle) core.Oracle {
	if ck.WrapOracle != nil {
		return ck.WrapOracle(o)
	}
	return o
}

// sortedCopy returns the tuples in baseline.SortTuples order without
// disturbing the engine's enumeration-order slice.
func sortedCopy(ts [][]uint64) [][]uint64 {
	out := make([][]uint64, len(ts))
	copy(out, ts)
	baseline.SortTuples(out)
	return out
}

// diffTuples compares an engine's (unordered) output against the sorted
// reference.
func diffTuples(config string, got, ref [][]uint64) *Discrepancy {
	sorted := sortedCopy(got)
	if d := baseline.FirstDivergence(sorted, ref); d != nil {
		return &Discrepancy{
			Config: config,
			Detail: fmt.Sprintf("output disagrees with reference: %d tuples, want %d", len(got), len(ref)),
			Got:    len(got), Want: len(ref), Diff: d,
		}
	}
	return nil
}

// saoCandidates enumerates the splitting attribute orders to try: all
// n! permutations when they fit the cap, otherwise identity, reversal
// and rotations.
func saoCandidates(n, cap int) [][]int {
	total := 1
	for i := 2; i <= n; i++ {
		total *= i
	}
	var out [][]int
	if total <= cap {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var emit func(k int)
		emit = func(k int) {
			if k == n {
				out = append(out, append([]int(nil), perm...))
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				emit(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		emit(0)
		return out
	}
	for r := 0; r < n && len(out) < cap-1; r++ {
		rot := make([]int, n)
		for i := range rot {
			rot[i] = (i + r) % n
		}
		out = append(out, rot)
	}
	rev := make([]int, n)
	for i := range rev {
		rev[i] = n - 1 - i
	}
	out = append(out, rev)
	return out
}

// checkQuery cross-checks a query case: the baseline engines against
// Generic Join as ground truth, then Tetris in every mode × SAO ×
// shard/worker configuration (enumerate, count and Boolean variants)
// against the same reference, plus budget, cancellation and accounting
// invariants.
func (ck *Checker) checkQuery(c Case) (*Discrepancy, error) {
	q, err := c.BuildQuery()
	if err != nil {
		return nil, err
	}
	n := len(q.Vars())

	ref, err := baseline.GenericJoin(q, nil)
	if err != nil {
		return nil, err
	}
	refSet := map[string]bool{}
	for _, t := range ref {
		refSet[tupleKeyString(t)] = true
	}

	// Baselines against the reference.
	if d := ck.checkBaselines(q, ref); d != nil {
		return d, nil
	}

	// The serving lifecycle: ingest → prepare → execute twice through a
	// catalog, under the same oracle as every other engine configuration.
	if d := ck.checkCatalogPrepared(c, ref); d != nil {
		return d, nil
	}

	// Incremental maintenance: a maintained statement driven through a
	// deterministic append/delete script, byte-identical to scratch
	// recomputes after every write.
	if d := ck.checkIncrementalMaintained(c); d != nil {
		return d, nil
	}

	// Crash recovery: the same relations driven through a WAL-backed
	// durable catalog with crashes injected at random byte offsets;
	// every recovery must answer byte-identically to an oracle that saw
	// only the durably-acknowledged prefix.
	if d := ck.checkCrashRecovery(c); d != nil {
		return d, nil
	}

	// The statistics-driven planner: deterministic decisions, planned
	// and feedback-perturbed executions agreeing with the reference.
	if d := ck.checkPlanner(c); d != nil {
		return d, nil
	}

	// Tetris in every configuration. SAO candidates: every permutation
	// (capped), plus the planner's automatic choice.
	saos := saoCandidates(n, ck.MaxSAOs)
	if auto, err := join.ChooseSAO(q, join.Options{}); err == nil {
		dup := false
		for _, s := range saos {
			if sameInts(s, auto) {
				dup = true
				break
			}
		}
		if !dup {
			saos = append(saos, auto)
		}
	}

	for si, sao := range saos {
		saoVars := make([]string, n)
		for i, pos := range sao {
			saoVars[i] = q.Vars()[pos]
		}
		plan, err := join.NewPlan(q, join.Options{SAOVars: saoVars})
		if err != nil {
			return nil, err
		}
		mk := func() core.Oracle { return ck.wrap(plan.NewOracle()) }
		if d := ck.checkEngines(engineCase{
			label:    fmt.Sprintf("query sao=%v", saoVars),
			depths:   q.Depths(),
			sao:      plan.SAO(),
			mkOracle: mk,
			ref:      ref,
			refSet:   refSet,
			probes:   si == 0, // LB/budget/cancellation probes once per case
		}); d != nil {
			return d, nil
		}
	}
	return nil, nil
}

// checkCatalogPrepared is the CatalogPrepared engine configuration: the
// case's relations are ingested into a fresh catalog, the query is
// prepared and executed twice per plain mode, and the runs must (a)
// agree with the reference, (b) be byte-identical to each other in
// enumeration order, and (c) prove amortization — the first execution
// reports the indexes it built, the second reports IndexBuilds == 0.
// The prepared count must agree with the reference cardinality too.
func (ck *Checker) checkCatalogPrepared(c Case, ref [][]uint64) *Discrepancy {
	// Rebuild the case's relations so the catalog owns fresh snapshots
	// (the caller's query keeps its own instances untouched).
	q, err := c.BuildQuery()
	if err != nil {
		return &Discrepancy{Config: "catalog-prepared", Detail: fmt.Sprintf("rebuild: %v", err)}
	}
	cat := catalog.New()
	ingested := map[string]bool{}
	var atoms []string
	for _, a := range q.Atoms() {
		if !ingested[a.Relation.Name()] {
			ingested[a.Relation.Name()] = true
			if _, err := cat.Ingest(a.Relation); err != nil {
				return &Discrepancy{Config: "catalog-prepared", Detail: fmt.Sprintf("ingest %s: %v", a.Relation.Name(), err)}
			}
		}
		atoms = append(atoms, a.Relation.Name()+"("+strings.Join(a.Vars, ",")+")")
	}
	text := strings.Join(atoms, ", ")

	for mi, mode := range []core.Mode{core.Reloaded, core.Preloaded} {
		config := fmt.Sprintf("catalog-prepared/%v", mode)
		opts := join.Options{Mode: mode, Parallelism: 1}
		first, err := cat.Execute(text, opts)
		if err != nil {
			return &Discrepancy{Config: config, Detail: fmt.Sprintf("first execution: %v", err)}
		}
		if mi == 0 && first.Stats.IndexBuilds == 0 {
			return &Discrepancy{Config: config,
				Detail: "cold execution reported zero index builds; preparation cost unaccounted"}
		}
		if mi > 0 && first.Stats.IndexBuilds != 0 {
			// A later mode is a plan-cache miss but the index registry is
			// already warm: cross-mode index sharing must hold.
			return &Discrepancy{Config: config,
				Detail: fmt.Sprintf("mode change rebuilt %d indexes; registry should have served them", first.Stats.IndexBuilds),
				Got:    int(first.Stats.IndexBuilds), Want: 0}
		}
		if d := diffTuples(config+"/first", first.Tuples, ref); d != nil {
			return d
		}
		second, err := cat.Execute(text, opts)
		if err != nil {
			return &Discrepancy{Config: config, Detail: fmt.Sprintf("second execution: %v", err)}
		}
		if second.Stats.IndexBuilds != 0 {
			return &Discrepancy{Config: config,
				Detail: fmt.Sprintf("second execution built %d indexes, want 0 (amortization broken)", second.Stats.IndexBuilds),
				Got:    int(second.Stats.IndexBuilds), Want: 0}
		}
		// Byte-identical output: exact enumeration-order equality, not
		// just set equality.
		if d := baseline.FirstDivergence(second.Tuples, first.Tuples); d != nil {
			return &Discrepancy{Config: config,
				Detail: fmt.Sprintf("second execution order differs from first (%d tuples vs %d)", len(second.Tuples), len(first.Tuples)),
				Got:    len(second.Tuples), Want: len(first.Tuples), Diff: d}
		}
		if second.Stats.Outputs != first.Stats.Outputs {
			return &Discrepancy{Config: config,
				Detail: fmt.Sprintf("second execution Outputs %d != first %d", second.Stats.Outputs, first.Stats.Outputs),
				Got:    int(second.Stats.Outputs), Want: int(first.Stats.Outputs)}
		}
	}

	count, cstats, err := cat.Count(text, join.Options{})
	if err != nil {
		return &Discrepancy{Config: "catalog-prepared/count", Detail: fmt.Sprintf("engine error: %v", err)}
	}
	if count.Cmp(big.NewInt(int64(len(ref)))) != 0 {
		return &Discrepancy{Config: "catalog-prepared/count",
			Detail: fmt.Sprintf("prepared count %v != reference cardinality %d", count, len(ref)),
			Want:   len(ref)}
	}
	if cstats.IndexBuilds != 0 {
		return &Discrepancy{Config: "catalog-prepared/count",
			Detail: fmt.Sprintf("cached count built %d indexes, want 0", cstats.IndexBuilds)}
	}
	return nil
}

// checkBaselines cross-checks every classical engine against the
// reference output.
func (ck *Checker) checkBaselines(q *join.Query, ref [][]uint64) *Discrepancy {
	n := len(q.Vars())
	rev := make([]int, n)
	for i := range rev {
		rev[i] = n - 1 - i
	}
	type run struct {
		name string
		f    func() ([][]uint64, error)
	}
	runs := []run{
		{"leapfrog", func() ([][]uint64, error) { return baseline.Leapfrog(q, nil) }},
		{"leapfrog-rev", func() ([][]uint64, error) { return baseline.Leapfrog(q, rev) }},
		{"genericjoin-rev", func() ([][]uint64, error) { return baseline.GenericJoin(q, rev) }},
		{"hashjoin", func() ([][]uint64, error) { out, _, err := baseline.HashJoin(q); return out, err }},
	}
	if _, acyclic := q.Hypergraph().GYO(); acyclic {
		runs = append(runs, run{"yannakakis", func() ([][]uint64, error) { return baseline.Yannakakis(q) }})
	}
	totalBits := 0
	for _, d := range q.Depths() {
		totalBits += int(d)
	}
	if totalBits <= 16 {
		runs = append(runs, run{"nestedloop", func() ([][]uint64, error) { return baseline.NestedLoop(q) }})
	}
	for _, r := range runs {
		got, err := r.f()
		if err != nil {
			return &Discrepancy{Config: r.name, Detail: fmt.Sprintf("engine error: %v", err)}
		}
		if d := diffTuples(r.name, got, ref); d != nil {
			return d
		}
	}
	return nil
}

// engineCase bundles what the Tetris-side matrix needs: a per-run
// oracle factory over one SAO, and the reference output.
type engineCase struct {
	label    string
	depths   []uint8
	sao      []int
	mkOracle func() core.Oracle
	ref      [][]uint64
	refSet   map[string]bool
	probes   bool
}

// checkEngines runs the Tetris matrix for one SAO: sequential modes and
// variants, the sharded executor against the sequential enumeration
// order, counting and Boolean cover consistency, and (once per case)
// the LB modes plus budget/cancellation/determinism probes.
func (ck *Checker) checkEngines(ec engineCase) *Discrepancy {
	copts := func(mode core.Mode) core.Options {
		return core.Options{Mode: mode, SAO: ec.sao}
	}
	// The gap set depends on the plan (default indices are built
	// GAO-consistent, so each SAO has its own B(Q)) but not on the run:
	// fetch it once per checkEngines call for the count/Boolean variants
	// and the accounting invariant below.
	gaps := ec.mkOracle().AllGaps()
	distinct := distinctBoxes(gaps)

	// Sequential plain modes; keep the enumeration order per mode for
	// the sharded determinism check below.
	seqOrder := map[core.Mode][][]uint64{}
	seqStats := map[core.Mode]core.Stats{}
	for _, mode := range []core.Mode{core.Reloaded, core.Preloaded} {
		config := fmt.Sprintf("%v %s", mode, ec.label)
		res, err := core.Run(ec.mkOracle(), copts(mode))
		if err != nil {
			return &Discrepancy{Config: config, Detail: fmt.Sprintf("engine error: %v", err)}
		}
		if d := diffTuples(config, res.Tuples, ec.ref); d != nil {
			return d
		}
		if res.Stats.BoxesLoaded > int64(distinct) {
			return &Discrepancy{Config: config,
				Detail: fmt.Sprintf("BoxesLoaded %d exceeds distinct gap boxes %d", res.Stats.BoxesLoaded, distinct),
				Got:    int(res.Stats.BoxesLoaded), Want: distinct}
		}
		if mode == core.Preloaded && res.Stats.BoxesLoaded != int64(distinct) {
			return &Discrepancy{Config: config,
				Detail: fmt.Sprintf("Preloaded BoxesLoaded %d != distinct gap boxes %d", res.Stats.BoxesLoaded, distinct),
				Got:    int(res.Stats.BoxesLoaded), Want: distinct}
		}
		seqOrder[mode] = res.Tuples
		seqStats[mode] = res.Stats
	}

	// Sequential variants: single-pass skeleton and cache-free (tree
	// ordered) resolution.
	variants := []struct {
		name string
		opts core.Options
	}{
		{"single-pass", func() core.Options { o := copts(core.Preloaded); o.SinglePass = true; return o }()},
		{"no-cache", func() core.Options { o := copts(core.Reloaded); o.NoCache = true; return o }()},
		{"no-subsume", func() core.Options { o := copts(core.Reloaded); o.DisableSubsume = true; return o }()},
	}
	for _, v := range variants {
		config := fmt.Sprintf("%v/%s %s", v.opts.Mode, v.name, ec.label)
		res, err := core.Run(ec.mkOracle(), v.opts)
		if err != nil {
			return &Discrepancy{Config: config, Detail: fmt.Sprintf("engine error: %v", err)}
		}
		if d := diffTuples(config, res.Tuples, ec.ref); d != nil {
			return d
		}
	}

	// Sharded executor: tuple-for-tuple equal to the sequential
	// enumeration order (the determinism contract), for every
	// mode × shard count × worker count × steal depth.
	stealDepths := ck.StealDepths
	if len(stealDepths) == 0 {
		stealDepths = []int{0}
	}
	for _, mode := range []core.Mode{core.Reloaded, core.Preloaded} {
		for _, shards := range ck.Shards {
			for _, workers := range ck.Workers {
				for _, depth := range stealDepths {
					if workers == 1 && depth != stealDepths[0] {
						continue // nobody to steal: all depths are equivalent
					}
					config := fmt.Sprintf("%v %s shards=%d workers=%d steal=%d", mode, ec.label, shards, workers, depth)
					opts := copts(mode)
					opts.StealDepth = depth
					res, err := core.RunShards(ec.mkOracle, opts, workers, shards)
					if err != nil {
						return &Discrepancy{Config: config, Detail: fmt.Sprintf("engine error: %v", err)}
					}
					// Positional comparison against the sequential run — the
					// sharded executor's determinism contract is exact order
					// equality, not just set equality, however the fragments
					// were carved at runtime.
					if d := baseline.FirstDivergence(res.Tuples, seqOrder[mode]); d != nil {
						return &Discrepancy{Config: config,
							Detail: fmt.Sprintf("sharded tuple order differs from sequential enumeration (%d tuples, sequential %d)", len(res.Tuples), len(seqOrder[mode])),
							Got:    len(res.Tuples), Want: len(seqOrder[mode]), Diff: d}
					}
					if res.Stats.Outputs != seqStats[mode].Outputs {
						return &Discrepancy{Config: config,
							Detail: fmt.Sprintf("merged Outputs %d != sequential %d", res.Stats.Outputs, seqStats[mode].Outputs),
							Got:    int(res.Stats.Outputs), Want: int(seqStats[mode].Outputs)}
					}
					if depth < 0 && res.Stats.Steals != 0 {
						return &Discrepancy{Config: config,
							Detail: fmt.Sprintf("StealDepth=%d still performed %d dynamic splits", depth, res.Stats.Steals),
							Got:    int(res.Stats.Steals), Want: 0}
					}
				}
			}
		}
	}

	// Counting: the memoized #-variant must agree with the enumeration
	// cardinality without materializing tuples.
	for _, noCache := range []bool{false, true} {
		config := fmt.Sprintf("count/no-cache=%v %s", noCache, ec.label)
		rep, err := core.CountUncovered(ec.depths, gaps, core.Options{SAO: ec.sao, NoCache: noCache})
		if err != nil {
			return &Discrepancy{Config: config, Detail: fmt.Sprintf("engine error: %v", err)}
		}
		if rep.Uncovered.Cmp(big.NewInt(int64(len(ec.ref)))) != 0 {
			return &Discrepancy{Config: config,
				Detail: fmt.Sprintf("count %v != reference cardinality %d", rep.Uncovered, len(ec.ref)),
				Want:   len(ec.ref)}
		}
	}

	// Boolean cover: covered ⇔ empty output, and a non-covered witness
	// must be an actual output tuple.
	{
		config := fmt.Sprintf("boolean %s", ec.label)
		rep, err := core.Covers(ec.depths, gaps, core.Options{SAO: ec.sao})
		if err != nil {
			return &Discrepancy{Config: config, Detail: fmt.Sprintf("engine error: %v", err)}
		}
		if rep.Covered != (len(ec.ref) == 0) {
			return &Discrepancy{Config: config,
				Detail: fmt.Sprintf("Covered=%v but reference has %d tuples", rep.Covered, len(ec.ref)),
				Want:   len(ec.ref)}
		}
		if !rep.Covered {
			point := rep.Witness.Values(ec.depths)
			if !ec.refSet[tupleKeyString(point)] {
				return &Discrepancy{Config: config,
					Detail: fmt.Sprintf("witness %v is not an output tuple", point)}
			}
		}
	}

	if !ec.probes {
		return nil
	}

	// LB modes (sequential only; sharding does not apply to the lifted
	// space).
	for _, mode := range []core.Mode{core.PreloadedLB, core.ReloadedLB} {
		config := fmt.Sprintf("%v %s", mode, ec.label)
		res, err := core.Run(ec.mkOracle(), copts(mode))
		if err != nil {
			return &Discrepancy{Config: config, Detail: fmt.Sprintf("engine error: %v", err)}
		}
		if d := diffTuples(config, res.Tuples, ec.ref); d != nil {
			return d
		}
	}

	// Budget probes: a MaxOutput below the cardinality must deliver
	// exactly the first K tuples of the sequential enumeration; a
	// MaxResolutions equal to the measured count must not abort and must
	// reproduce the run exactly (resolution accounting determinism).
	if len(ec.ref) > 1 {
		k := 1 + len(ec.ref)/2
		opts := copts(core.Preloaded)
		opts.MaxOutput = k
		config := fmt.Sprintf("budget/max-output=%d %s", k, ec.label)
		res, err := core.Run(ec.mkOracle(), opts)
		if err != nil {
			return &Discrepancy{Config: config, Detail: fmt.Sprintf("engine error: %v", err)}
		}
		if d := baseline.FirstDivergence(res.Tuples, seqOrder[core.Preloaded][:k]); d != nil {
			return &Discrepancy{Config: config,
				Detail: fmt.Sprintf("MaxOutput=%d delivered %d tuples, want the first %d of the sequential enumeration", k, len(res.Tuples), k),
				Got:    len(res.Tuples), Want: k, Diff: d}
		}
	}
	if r := seqStats[core.Reloaded].Resolutions; r > 0 {
		opts := copts(core.Reloaded)
		opts.MaxResolutions = r
		config := fmt.Sprintf("budget/max-resolutions=%d %s", r, ec.label)
		res, err := core.Run(ec.mkOracle(), opts)
		if err != nil {
			return &Discrepancy{Config: config,
				Detail: fmt.Sprintf("aborted under its own measured resolution count %d: %v", r, err)}
		}
		if res.Stats.Resolutions != r {
			return &Discrepancy{Config: config,
				Detail: fmt.Sprintf("resolution count %d not reproducible (first run: %d)", res.Stats.Resolutions, r),
				Got:    int(res.Stats.Resolutions), Want: int(r)}
		}
	}

	// Cancellation probe: a pre-cancelled context must abort both the
	// sequential and the sharded engines with context.Canceled.
	{
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		opts := copts(core.Reloaded)
		opts.Context = ctx
		if _, err := core.Run(ec.mkOracle(), opts); err != context.Canceled {
			return &Discrepancy{Config: fmt.Sprintf("cancel/sequential %s", ec.label),
				Detail: fmt.Sprintf("cancelled run returned %v, want context.Canceled", err)}
		}
		if _, err := core.RunShards(ec.mkOracle, opts, 2, 2); err != context.Canceled {
			return &Discrepancy{Config: fmt.Sprintf("cancel/sharded %s", ec.label),
				Detail: fmt.Sprintf("cancelled run returned %v, want context.Canceled", err)}
		}
	}
	return nil
}

// checkBCP cross-checks a box cover case against brute-force point
// enumeration.
func (ck *Checker) checkBCP(c Case) (*Discrepancy, error) {
	depths, boxes, err := c.BuildBCP()
	if err != nil {
		return nil, err
	}
	totalBits := 0
	for _, d := range depths {
		totalBits += int(d)
	}
	if totalBits > 16 {
		return nil, fmt.Errorf("fuzz: BCP case %q has %d total bits, brute force limited to 16", c.Name, totalBits)
	}

	// Ground truth: enumerate every point of the space and keep the ones
	// no box contains. The result is in lexicographic order, which is
	// also baseline.SortTuples order.
	var ref [][]uint64
	point := make([]uint64, len(depths))
	var walk func(dim int)
	walk = func(dim int) {
		if dim == len(depths) {
			for _, b := range boxes {
				if b.ContainsPoint(point, depths) {
					return
				}
			}
			ref = append(ref, append([]uint64(nil), point...))
			return
		}
		for v := uint64(0); v < 1<<depths[dim]; v++ {
			point[dim] = v
			walk(dim + 1)
		}
	}
	walk(0)
	refSet := map[string]bool{}
	for _, t := range ref {
		refSet[tupleKeyString(t)] = true
	}

	base, err := core.NewBoxOracle(depths, boxes)
	if err != nil {
		return nil, err
	}
	mk := func() core.Oracle { return ck.wrap(base.Clone()) }
	for si, sao := range saoCandidates(len(depths), ck.MaxSAOs) {
		if d := ck.checkEngines(engineCase{
			label:    fmt.Sprintf("bcp sao=%v", sao),
			depths:   depths,
			sao:      sao,
			mkOracle: mk,
			ref:      ref,
			refSet:   refSet,
			probes:   si == 0,
		}); d != nil {
			return d, nil
		}
	}
	return nil, nil
}

// distinctBoxes counts distinct boxes by exact identity.
func distinctBoxes(boxes []dyadic.Box) int {
	seen := map[string]bool{}
	for _, b := range boxes {
		seen[b.Key()] = true
	}
	return len(seen)
}

// sameInts reports slice equality.
func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tupleKeyString encodes a tuple for set membership.
func tupleKeyString(t []uint64) string {
	buf := make([]byte, 0, len(t)*8)
	for _, v := range t {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(buf)
}
