package fuzz

import (
	"testing"
)

// TestCorpusReplay replays every committed repro under testdata/corpus/
// through the full differential matrix on every go test run. The corpus
// is the regression memory of past fuzz campaigns: once a failing case
// is shrunk and committed, no engine change may reintroduce its bug.
func TestCorpusReplay(t *testing.T) {
	corpus, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) < 10 {
		t.Fatalf("corpus holds %d cases, want at least 10 (one per generator family)", len(corpus))
	}
	ck := NewChecker()
	for _, e := range corpus {
		t.Run(e.File, func(t *testing.T) {
			d, err := ck.Check(e.Case)
			if err != nil {
				t.Fatalf("corpus case is invalid: %v", err)
			}
			if d != nil {
				t.Fatalf("engines disagree on committed repro: %v", d)
			}
		})
	}
}

// TestCorpusCoversFamilies: the committed corpus must include at least
// one case per query shape and one per box style, so the replay
// exercises every generator family even when fuzzing is skipped.
func TestCorpusCoversFamilies(t *testing.T) {
	corpus, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, e := range corpus {
		have[e.Case.Name] = true
	}
	for s := Shape(0); s < numShapes; s++ {
		if !have["query-"+s.String()] {
			t.Errorf("corpus has no %v query case", s)
		}
	}
	for s := BoxStyle(0); s < numBoxStyles; s++ {
		if !have[s.String()] {
			t.Errorf("corpus has no %v case", s)
		}
	}
}
