package fuzz

import (
	"fmt"
	"math/rand"

	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/workload"
)

// Shape enumerates the hypergraph families the query generator draws
// from: the named shapes whose join structure the paper's theorems
// distinguish (acyclic paths and stars, cyclic cycles, self-joined
// cliques) plus arbitrary atom/variable incidence structures.
type Shape int

const (
	ShapePath Shape = iota
	ShapeStar
	ShapeCycle
	ShapeClique
	ShapeRandom
	numShapes
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case ShapePath:
		return "path"
	case ShapeStar:
		return "star"
	case ShapeCycle:
		return "cycle"
	case ShapeClique:
		return "clique"
	case ShapeRandom:
		return "random"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Fill enumerates relation population styles. Skewed and saturated
// instances are where worst-case optimal engines historically diverge
// from theory ("Skew Strikes Back"); empty and partition-structured
// ones exercise the short-circuit and full-cover paths.
type Fill int

const (
	FillEmpty Fill = iota
	FillSparse
	FillSkewed
	FillSaturated
	FillDiagonal
	FillBlock
	numFills
)

// String implements fmt.Stringer.
func (f Fill) String() string {
	switch f {
	case FillEmpty:
		return "empty"
	case FillSparse:
		return "sparse"
	case FillSkewed:
		return "skewed"
	case FillSaturated:
		return "saturated"
	case FillDiagonal:
		return "diagonal"
	case FillBlock:
		return "block"
	default:
		return fmt.Sprintf("Fill(%d)", int(f))
	}
}

// BoxStyle enumerates box cover instance families.
type BoxStyle int

const (
	BoxRandom BoxStyle = iota
	// BoxPartition is a set of disjoint boxes covering the whole space
	// (workload.RandomDyadicPartition): the fully-covered edge case whose
	// proof requires merging every box back together.
	BoxPartition
	// BoxSparse is a small random set leaving most of the space
	// uncovered.
	BoxSparse
	// BoxNone is the empty box set: every point is uncovered.
	BoxNone
	numBoxStyles
)

// String implements fmt.Stringer.
func (s BoxStyle) String() string {
	switch s {
	case BoxRandom:
		return "box-random"
	case BoxPartition:
		return "box-partition"
	case BoxSparse:
		return "box-sparse"
	case BoxNone:
		return "box-none"
	default:
		return fmt.Sprintf("BoxStyle(%d)", int(s))
	}
}

var varNames = []string{"A", "B", "C", "D", "E"}

// GenCase draws one random case of the given kind. All randomness comes
// from r, so a case is reproducible from its generator seed alone.
func GenCase(r *rand.Rand, kind Kind) Case {
	if kind == BCPKind {
		return GenBCPCase(r, BoxStyle(r.Intn(int(numBoxStyles))))
	}
	return GenQueryCase(r, Shape(r.Intn(int(numShapes))))
}

// GenQueryCase draws a random query case of the given hypergraph shape:
// random per-variable depths, a relation per atom (one shared relation
// for cliques), each populated by an independently drawn fill style.
func GenQueryCase(r *rand.Rand, shape Shape) Case {
	c := Case{
		Name:      fmt.Sprintf("query-%s", shape),
		VarDepths: map[string]uint8{},
	}
	depth := func() uint8 { return uint8(1 + r.Intn(3)) }
	switch shape {
	case ShapePath:
		k := 2 + r.Intn(3) // 2..4 atoms over k+1 variables (capped below)
		if k+1 > len(varNames) {
			k = len(varNames) - 1
		}
		for i := 0; i < k; i++ {
			c.Atoms = append(c.Atoms, CaseAtom{Rel: fmt.Sprintf("R%d", i), Vars: []string{varNames[i], varNames[i+1]}})
		}
	case ShapeStar:
		k := 2 + r.Intn(3) // leaves
		if k+1 > len(varNames) {
			k = len(varNames) - 1
		}
		for i := 0; i < k; i++ {
			c.Atoms = append(c.Atoms, CaseAtom{Rel: fmt.Sprintf("R%d", i), Vars: []string{varNames[0], varNames[i+1]}})
		}
	case ShapeCycle:
		k := 3 + r.Intn(2) // triangle or four-cycle
		for i := 0; i < k; i++ {
			c.Atoms = append(c.Atoms, CaseAtom{Rel: fmt.Sprintf("R%d", i), Vars: []string{varNames[i], varNames[(i+1)%k]}})
		}
	case ShapeClique:
		// k-clique over one self-joined edge relation; uniform depth so
		// every binding of the shared relation is depth-consistent.
		k := 3
		d := depth()
		for i := 0; i < k; i++ {
			c.VarDepths[varNames[i]] = d
			for j := i + 1; j < k; j++ {
				c.Atoms = append(c.Atoms, CaseAtom{Rel: "E", Vars: []string{varNames[i], varNames[j]}})
			}
		}
	case ShapeRandom:
		// Arbitrary incidence: 1..4 atoms of arity 1..3 over 2..4
		// variables, each atom's variables distinct within it.
		nvars := 2 + r.Intn(3)
		natoms := 1 + r.Intn(4)
		for i := 0; i < natoms; i++ {
			arity := 1 + r.Intn(min(3, nvars))
			perm := r.Perm(nvars)[:arity]
			vars := make([]string, arity)
			for j, p := range perm {
				vars[j] = varNames[p]
			}
			c.Atoms = append(c.Atoms, CaseAtom{Rel: fmt.Sprintf("R%d", i), Vars: vars})
		}
	}
	for _, a := range c.Atoms {
		for _, v := range a.Vars {
			if _, ok := c.VarDepths[v]; !ok {
				c.VarDepths[v] = depth()
			}
		}
	}
	for _, a := range c.Atoms {
		if c.relationOf(a.Rel) != nil {
			continue // self-join: the relation is already populated
		}
		depths := make([]uint8, len(a.Vars))
		for i, v := range a.Vars {
			depths[i] = c.VarDepths[v]
		}
		fill := Fill(r.Intn(int(numFills)))
		c.Relations = append(c.Relations, CaseRelation{
			Name:   a.Rel,
			Tuples: genTuples(r, depths, fill),
		})
	}
	return c
}

// genTuples draws a relation's tuples for the given per-column depths
// and fill style. Duplicates are fine — relation insertion dedupes.
func genTuples(r *rand.Rand, depths []uint8, fill Fill) [][]uint64 {
	randVal := func(d uint8) uint64 { return uint64(r.Intn(1 << d)) }
	randTuple := func() []uint64 {
		t := make([]uint64, len(depths))
		for i, d := range depths {
			t[i] = randVal(d)
		}
		return t
	}
	var out [][]uint64
	switch fill {
	case FillEmpty:
	case FillSparse:
		for n := r.Intn(21); n > 0; n-- {
			out = append(out, randTuple())
		}
	case FillSkewed:
		// One heavy value in the first column: the skew that breaks
		// binary plans and stresses per-value subtrees.
		heavy := randVal(depths[0])
		for n := 2 + r.Intn(14); n > 0; n-- {
			t := randTuple()
			t[0] = heavy
			out = append(out, t)
		}
		for n := r.Intn(5); n > 0; n-- {
			out = append(out, randTuple())
		}
	case FillSaturated:
		// The full cross product when small (gap set empty in this
		// relation), otherwise a dense random sample.
		total := 1
		for _, d := range depths {
			total *= 1 << d
		}
		if total <= 64 {
			t := make([]uint64, len(depths))
			var emit func(i int)
			emit = func(i int) {
				if i == len(depths) {
					out = append(out, append([]uint64(nil), t...))
					return
				}
				for v := uint64(0); v < 1<<depths[i]; v++ {
					t[i] = v
					emit(i + 1)
				}
			}
			emit(0)
		} else {
			for n := 0; n < 64; n++ {
				out = append(out, randTuple())
			}
		}
	case FillDiagonal:
		// v,v,…,v masked per column: thin stripes whose gaps only
		// multidimensional indices summarize well.
		dmin := depths[0]
		for _, d := range depths {
			if d < dmin {
				dmin = d
			}
		}
		for v := uint64(0); v < 1<<dmin; v++ {
			t := make([]uint64, len(depths))
			for i, d := range depths {
				t[i] = v & (1<<d - 1)
			}
			out = append(out, t)
		}
	case FillBlock:
		// Values confined to the lower half of each domain: one dyadic
		// block, so the upper halves are single gap boxes.
		for n := 1 + r.Intn(16); n > 0; n-- {
			t := make([]uint64, len(depths))
			for i, d := range depths {
				half := d - 1
				if half == 0 {
					t[i] = 0
				} else {
					t[i] = uint64(r.Intn(1 << half))
				}
			}
			out = append(out, t)
		}
	}
	return out
}

// GenBCPCase draws a random box cover case of the given style. Total
// bit width stays ≤ 10 — except BoxPartition, which forces a uniform
// depth and can reach 3×4 = 12 bits — keeping every case under the
// checker's 16-bit brute-force enumeration limit.
func GenBCPCase(r *rand.Rand, style BoxStyle) Case {
	n := 1 + r.Intn(3)
	depths := make([]uint8, n)
	budget := 10
	for i := range depths {
		maxd := min(4, budget-(n-1-i)) // leave ≥1 bit per remaining dim
		depths[i] = uint8(1 + r.Intn(maxd))
		budget -= int(depths[i])
	}
	c := Case{Name: style.String()}
	switch style {
	case BoxNone:
	case BoxPartition:
		// Uniform depth (the workload generator's contract); reuse its
		// split-driven construction.
		d := depths[0]
		for i := range depths {
			depths[i] = d
		}
		m := 1 + r.Intn(12)
		bcp := workload.RandomDyadicPartition(n, m, d, r.Int63())
		for _, b := range bcp.Boxes {
			c.Boxes = append(c.Boxes, b.String())
		}
	case BoxRandom, BoxSparse:
		m := 1 + r.Intn(16)
		if style == BoxSparse {
			m = 1 + r.Intn(4)
		}
		for i := 0; i < m; i++ {
			b := make(dyadic.Box, n)
			for j, d := range depths {
				l := uint8(r.Intn(int(d) + 1))
				var bits uint64
				if l > 0 {
					bits = uint64(r.Intn(1 << l))
				}
				b[j] = dyadic.Interval{Bits: bits, Len: l}
			}
			c.Boxes = append(c.Boxes, b.String())
		}
	}
	for _, d := range depths {
		c.Depths = append(c.Depths, int(d))
	}
	return c
}
