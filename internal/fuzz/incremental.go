package fuzz

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"tetrisjoin/internal/baseline"
	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

// incrementalOps is the script length of the IncrementalMaintained
// configuration: enough steps to compose appends, deletes, duplicates
// and absent-deletes into every interesting span shape (pure spans →
// patched, folded mixed spans → recompute fallback) without dominating
// the per-case check budget.
const incrementalOps = 6

// checkIncrementalMaintained is the IncrementalMaintained engine
// configuration: the case's relations are ingested into a fresh
// catalog, the query is maintained, and a deterministic random
// append/delete script derived from the case runs against it. After
// every operation the maintained result must be byte-identical — same
// tuples, same enumeration order — to a from-scratch recompute over the
// catalog's current versions under the same SAO, and set-identical to
// the Generic Join baseline. Patched refreshes must also respect the
// delta cost bound: index builds no more than the changed relation's
// atom count.
func (ck *Checker) checkIncrementalMaintained(c Case) *Discrepancy {
	q, err := c.BuildQuery()
	if err != nil {
		return &Discrepancy{Config: "incremental-maintained", Detail: fmt.Sprintf("rebuild: %v", err)}
	}
	cat := catalog.New()
	ingested := map[string]*relation.Relation{}
	var names []string
	var atoms []string
	for _, a := range q.Atoms() {
		if _, ok := ingested[a.Relation.Name()]; !ok {
			ingested[a.Relation.Name()] = a.Relation
			names = append(names, a.Relation.Name())
			if _, err := cat.Ingest(a.Relation); err != nil {
				return &Discrepancy{Config: "incremental-maintained", Detail: fmt.Sprintf("ingest %s: %v", a.Relation.Name(), err)}
			}
		}
		atoms = append(atoms, a.Relation.Name()+"("+strings.Join(a.Vars, ",")+")")
	}
	text := strings.Join(atoms, ", ")

	m, err := cat.Maintain(text, join.Options{Mode: core.Preloaded})
	if err != nil {
		return &Discrepancy{Config: "incremental-maintained", Detail: fmt.Sprintf("maintain: %v", err)}
	}

	// The script is a pure function of the case bytes, so corpus replay
	// and campaign reruns exercise identical mutation sequences.
	h := fnv.New64a()
	h.Write(c.Marshal())
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	atomsOf := map[string]int{}
	for _, a := range q.Atoms() {
		atomsOf[a.Relation.Name()]++
	}

	span := map[string]bool{}
	for op := 0; op < incrementalOps; op++ {
		name := names[rng.Intn(len(names))]
		desc, err := mutateRelation(cat, name, rng)
		if err != nil {
			return &Discrepancy{Config: "incremental-maintained",
				Detail: fmt.Sprintf("script op %d (%s): %v", op, desc, err)}
		}
		span[name] = true
		// A third of the writes fold into the next span unrefreshed, so
		// the script also exercises multi-write spans: multi-relation
		// patches and the mixed insert+delete recompute fallback.
		if op < incrementalOps-1 && rng.Intn(3) == 0 {
			continue
		}
		res, err := m.Execute(join.Options{})
		if err != nil {
			return &Discrepancy{Config: "incremental-maintained",
				Detail: fmt.Sprintf("refresh after op %d (%s): %v", op, desc, err)}
		}
		if d := ck.compareMaintained(cat, m, text, res, op, desc); d != nil {
			return d
		}
		if last := m.LastRefresh(); last.Kind == "patched" {
			bound := 0
			for n := range span {
				bound += atomsOf[n]
			}
			if res.Stats.IndexBuilds > int64(bound) {
				return &Discrepancy{Config: "incremental-maintained",
					Detail: fmt.Sprintf("op %d (%s): patched refresh built %d indexes, changed relations bind %d atoms",
						op, desc, res.Stats.IndexBuilds, bound),
					Got: int(res.Stats.IndexBuilds), Want: bound}
			}
		}
		span = map[string]bool{}
	}
	return nil
}

// compareMaintained cross-checks one maintained result against the
// scratch recompute (byte-identical under the maintained SAO) and the
// Generic Join baseline (set-identical).
func (ck *Checker) compareMaintained(cat *catalog.Catalog, m *catalog.Maintained, text string,
	res *join.Result, op int, desc string) *Discrepancy {

	config := fmt.Sprintf("incremental-maintained op=%d(%s) refresh=%s", op, desc, m.LastRefresh().Kind)
	cur, err := cat.Parse(text)
	if err != nil {
		return &Discrepancy{Config: config, Detail: fmt.Sprintf("parse: %v", err)}
	}
	scratch, err := join.Execute(cur, join.Options{
		Mode:        core.Preloaded,
		Parallelism: 1,
		SAOVars:     m.Plan().SAOVars(),
	})
	if err != nil {
		return &Discrepancy{Config: config, Detail: fmt.Sprintf("scratch recompute: %v", err)}
	}
	if d := baseline.FirstDivergence(res.Tuples, scratch.Tuples); d != nil {
		return &Discrepancy{Config: config,
			Detail: fmt.Sprintf("maintained result differs from scratch recompute (%d tuples vs %d)",
				len(res.Tuples), len(scratch.Tuples)),
			Got: len(res.Tuples), Want: len(scratch.Tuples), Diff: d}
	}
	ref, err := baseline.GenericJoin(cur, nil)
	if err != nil {
		return &Discrepancy{Config: config, Detail: fmt.Sprintf("generic join: %v", err)}
	}
	if d := diffTuples(config, res.Tuples, sortedCopy(ref)); d != nil {
		return d
	}
	return nil
}

// mutateRelation applies one random catalog write to the named relation
// and describes it. The op mix deliberately includes the degenerate
// cases — duplicate appends and absent deletes (empty effective deltas)
// and multi-tuple batches — alongside plain single-tuple writes.
func mutateRelation(cat *catalog.Catalog, name string, rng *rand.Rand) (string, error) {
	rel, ok := cat.Relation(name)
	if !ok {
		return "?", fmt.Errorf("relation %q vanished", name)
	}
	depths := rel.Depths()
	randTuple := func() relation.Tuple {
		t := make(relation.Tuple, len(depths))
		for i, d := range depths {
			t[i] = uint64(rng.Intn(1 << d))
		}
		return t
	}
	switch k := rng.Intn(6); {
	case k == 0 && rel.Len() > 0: // delete an existing tuple
		victim := rel.Tuples()[rng.Intn(rel.Len())]
		_, err := cat.Delete(name, victim)
		return fmt.Sprintf("delete %s%v", name, victim), err
	case k == 1: // delete a (likely) absent tuple
		t := randTuple()
		_, err := cat.Delete(name, t)
		return fmt.Sprintf("delete-absent %s%v", name, t), err
	case k == 2 && rel.Len() > 0: // append a duplicate
		dup := rel.Tuples()[rng.Intn(rel.Len())]
		_, err := cat.Append(name, dup)
		return fmt.Sprintf("append-dup %s%v", name, dup), err
	case k == 3: // batch append
		batch := []relation.Tuple{randTuple(), randTuple(), randTuple()}
		_, err := cat.Append(name, batch...)
		return fmt.Sprintf("append-batch %s x%d", name, len(batch)), err
	default: // single append
		t := randTuple()
		_, err := cat.Append(name, t)
		return fmt.Sprintf("append %s%v", name, t), err
	}
}
