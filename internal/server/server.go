// Package server runs the engine as a long-lived service: sessions
// speak a line-oriented JSON protocol (load / append / delete / query /
// prepare / exec / stats) against a shared catalog, executions pass
// through an admission queue bounding concurrent engine work, and every
// session carries its own cancellation context and — optionally — a
// work budget (the atomic core.Budget) shared by all of its queries.
//
// The server owns no engine state of its own: relations, indexes and
// prepared plans live in the catalog, immutable and shared, which is
// what makes any number of concurrent sessions safe. Results stream
// over the engine's existing OnOutput contract, one JSON line per
// tuple, so a session's memory stays O(1) in the output size.
package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/durable"
	"tetrisjoin/internal/relation"
)

// Config tunes the server.
type Config struct {
	// MaxConcurrent bounds engine executions running at once across all
	// sessions (the admission queue depth). 0 means 1: strictly serial
	// admission, the safe default on small hosts.
	MaxConcurrent int
	// SessionMaxResolutions, when > 0, caps the total geometric
	// resolutions one session may spend across all of its executions
	// (a shared core.Budget). Exhaustion fails the session's queries.
	SessionMaxResolutions int64
	// SessionMaxOutput, when > 0, caps the total output tuples one
	// session may receive across all of its executions.
	SessionMaxOutput int
	// Parallelism is the engine parallelism for executions that do not
	// ask otherwise. 0 means 1 (sequential), the right default for a
	// server multiplexing sessions onto the admission queue.
	Parallelism int
	// IdleTimeout, when > 0, closes a connection that sends no request
	// for this long. The deadline is re-armed before every read, so a
	// long-running execution never trips it — only client silence does.
	IdleTimeout time.Duration
	// MaxQueue bounds how many executions may wait for an admission slot
	// at once. An arrival finding the queue full is shed immediately with
	// an "overloaded" error instead of queueing unboundedly. 0 means
	// 4×MaxConcurrent; negative means no waiting at all (busy ⇒ shed).
	MaxQueue int
	// OutputBuffer is the per-session output buffer, in protocol lines,
	// drained to the peer by a writer goroutine: the slack a slow
	// consumer gets before backpressure reaches the engine. 0 means 256.
	OutputBuffer int
	// WriteStallTimeout is how long a session's output may stay blocked
	// on a full buffer before the peer is declared a slow consumer and
	// disconnected. 0 means 5s.
	WriteStallTimeout time.Duration
}

// Server dispatches protocol sessions against one shared catalog.
type Server struct {
	cat      *catalog.Catalog
	dur      *durable.Catalog // nil for a purely in-memory server
	cfg      Config
	admit    chan struct{}
	queueCap int // resolved MaxQueue
	met      *serverMetrics

	ctx    context.Context
	cancel context.CancelFunc

	sessions atomic.Int64 // lifetime session count
	queries  atomic.Int64 // lifetime executions (query/exec/count)
	panics   atomic.Int64 // operations recovered from a panic
	waiting  atomic.Int64 // executions parked in the admission queue
	draining atomic.Bool

	mu        sync.Mutex
	open      int // currently open sessions
	ops       int // requests being handled right now
	opsIdle   chan struct{}
	listeners map[net.Listener]struct{}
}

// New returns a server over the catalog.
func New(cat *catalog.Catalog, cfg Config) *Server {
	slots := cfg.MaxConcurrent
	if slots <= 0 {
		slots = 1
	}
	queueCap := cfg.MaxQueue
	switch {
	case queueCap == 0:
		queueCap = 4 * slots
	case queueCap < 0:
		queueCap = 0
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cat:       cat,
		cfg:       cfg,
		admit:     make(chan struct{}, slots),
		queueCap:  queueCap,
		ctx:       ctx,
		cancel:    cancel,
		listeners: map[net.Listener]struct{}{},
	}
	s.met = newServerMetrics(s)
	cat.SetExecObserver(s.observeExec)
	return s
}

// NewDurable returns a server whose mutations (load/append/delete and
// maintain registrations) go through the durable catalog: applied,
// write-ahead logged and fsynced before the response line is written,
// so an acknowledged mutation survives a crash. Reads are served from
// the same in-memory catalog as always.
func NewDurable(d *durable.Catalog, cfg Config) *Server {
	s := New(d.Catalog, cfg)
	s.dur = d
	s.met.registerDurable(s)
	return s
}

// Catalog returns the shared catalog.
func (s *Server) Catalog() *catalog.Catalog { return s.cat }

// Durable returns the durable layer, or nil for an in-memory server.
func (s *Server) Durable() *durable.Catalog { return s.dur }

// Close cancels every session (running executions stop cooperatively
// through their contexts).
func (s *Server) Close() { s.cancel() }

// Shutdown drains the server: listeners stop accepting, new engine
// admissions are rejected, and in-flight requests get until the
// context's deadline to finish — then everything is cancelled, exactly
// as Close. Returns the context error when the deadline cut the drain
// short, nil when the server went idle in time. With a durable catalog
// the caller can then Close it knowing every acknowledged mutation is
// already synced — acknowledgement happens inside the request, so an
// orderly drain has nothing left to flush.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	// draining flips inside the same critical section that reads ops:
	// beginOp checks it under the same lock, so no request can slip in
	// between "observed ops == 0" here and the drain decision below —
	// the race that used to let a mutation start after the durable layer
	// was cleared for closing.
	s.draining.Store(true)
	for l := range s.listeners {
		l.Close()
	}
	var idle chan struct{}
	if s.ops > 0 {
		idle = make(chan struct{})
		s.opsIdle = idle
	}
	s.mu.Unlock()

	var err error
	if idle != nil {
		select {
		case <-idle:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	s.cancel()
	return err
}

// testHookBeginOp, when non-nil, runs just before beginOp takes the
// lock; tests use it to park a request on the drain race window.
var testHookBeginOp func()

// beginOp marks one request as in flight for Shutdown's drain; the
// returned func marks it done. It fails with errDraining once Shutdown
// has started: the draining check shares Shutdown's critical section,
// so a request either lands in ops before the drain reads it or is
// rejected — never a third thing. Without this check a mutation could
// begin after Shutdown observed ops == 0 and race the durable close.
func (s *Server) beginOp() (func(), error) {
	if testHookBeginOp != nil {
		testHookBeginOp()
	}
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		s.met.drainRejects.Inc()
		return nil, errDraining
	}
	s.ops++
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		s.ops--
		if s.ops == 0 && s.opsIdle != nil {
			close(s.opsIdle)
			s.opsIdle = nil
		}
		s.mu.Unlock()
	}, nil
}

// errDraining rejects work arriving during a graceful shutdown.
var errDraining = fmt.Errorf("server: draining")

// errOverloaded sheds work when every execution slot is busy and the
// wait queue is full. The text is the protocol-visible signal: clients
// seeing "overloaded" should back off and retry, unlike "draining"
// (reconnect elsewhere) or budget errors (give up).
var errOverloaded = fmt.Errorf("overloaded")

// admitExec acquires an execution slot; the returned release must be
// called when the engine work is done. A free slot admits immediately.
// Otherwise the execution waits — but only while the wait queue
// (queueCap deep) has room: beyond that, arrivals are shed immediately
// with errOverloaded rather than queueing unboundedly, so overload
// produces fast, explicit failures instead of a silently growing convoy
// of blocked sessions. A draining server admits nothing new.
func (s *Server) admitExec(ctx context.Context) (release func(), err error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	release = func() { <-s.admit }
	select {
	case s.admit <- struct{}{}:
		return release, nil
	default:
	}
	if s.waiting.Add(1) > int64(s.queueCap) {
		s.waiting.Add(-1)
		s.met.shed.Inc()
		return nil, errOverloaded
	}
	start := time.Now()
	defer func() {
		s.waiting.Add(-1)
		s.met.queueWait.Observe(time.Since(start))
	}()
	select {
	case s.admit <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Serve accepts connections until the listener fails or the server is
// closed or drained, running one session per connection.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	go func() {
		<-s.ctx.Done()
		l.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.ctx.Err() != nil || s.draining.Load() {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			// Shutdown must unblock sessions parked in a connection read
			// (the session context only cancels cooperative engine work),
			// but NOT by closing the conn: the session still owes the peer
			// its "server closing" farewell line. Expiring the read
			// deadline fails the pending Scan while the write side stays
			// usable; the hard Close lands only after the session exits or
			// a short grace, so Serve's wg.Wait cannot hang either way.
			done := make(chan struct{})
			defer close(done)
			go func() {
				select {
				case <-s.ctx.Done():
					conn.SetReadDeadline(time.Now())
					select {
					case <-done:
					case <-time.After(time.Second):
					}
					conn.Close()
				case <-done:
				}
			}()
			var r io.Reader = conn
			if s.cfg.IdleTimeout > 0 {
				r = &idleReader{srv: s, conn: conn, timeout: s.cfg.IdleTimeout}
			}
			s.ServeSession(r, conn)
		}()
	}
}

// idleReader re-arms the connection's read deadline before every read:
// a client silent for longer than the timeout fails its next pending
// read and the session closes cleanly, while any amount of server-side
// execution time between reads is free. Once the server is closed it
// stops re-arming — doing so would overwrite the expired deadline the
// shutdown watcher set to unblock the session — and fails immediately.
type idleReader struct {
	srv     *Server
	conn    net.Conn
	timeout time.Duration
}

func (r *idleReader) Read(p []byte) (int, error) {
	if r.srv.ctx.Err() != nil {
		return 0, errClosed
	}
	if err := r.conn.SetReadDeadline(time.Now().Add(r.timeout)); err != nil {
		return 0, err
	}
	return r.conn.Read(p)
}

// serverStats is the stats-op payload.
type serverStats struct {
	Sessions     int64 `json:"sessions"`
	OpenSessions int   `json:"open_sessions"`
	Queries      int64 `json:"queries"`
	// Panics counts requests that died in a handler and were contained:
	// the session got an error line and lived on.
	Panics int64 `json:"panics,omitempty"`
	// Shed counts executions fast-failed with "overloaded" because the
	// admission wait queue was full; SlowConsumers counts sessions
	// disconnected for not draining their output.
	Shed          int64 `json:"shed,omitempty"`
	SlowConsumers int64 `json:"slow_consumers,omitempty"`

	Relations   int   `json:"relations"`
	IndexBuilds int64 `json:"index_builds"`
	// DeltaIndexBuilds is the portion of IndexBuilds that were O(k)
	// delta layers over prior versions (incremental maintenance), not
	// full constructions.
	DeltaIndexBuilds int64 `json:"delta_index_builds"`
	// Compactions counts background delta-chain folds.
	Compactions int64 `json:"compactions,omitempty"`
	PlansCached int   `json:"plans_cached"`
	PlanHits    int64 `json:"plan_hits"`
	PlanMisses  int64 `json:"plan_misses"`
	// Replans counts planner feedback triggers: executions whose observed
	// resolution count diverged from the plan's estimate enough to record
	// an observation and invalidate the cached plan. FeedbackEntries is
	// the number of (shape, SAO) observations currently held.
	Replans         int64 `json:"replans,omitempty"`
	FeedbackEntries int   `json:"feedback_entries,omitempty"`

	// Durability counters; present only on a durable server.
	WALLastLSN  uint64 `json:"wal_last_lsn,omitempty"`
	WALSize     int64  `json:"wal_size,omitempty"`
	Checkpoints int64  `json:"checkpoints,omitempty"`
}

func (s *Server) stats() serverStats {
	cs := s.cat.Stats()
	s.mu.Lock()
	open := s.open
	s.mu.Unlock()
	st := serverStats{
		Sessions:         s.sessions.Load(),
		OpenSessions:     open,
		Queries:          s.queries.Load(),
		Panics:           s.panics.Load(),
		Shed:             s.met.shed.Value(),
		SlowConsumers:    s.met.slowConsumers.Value(),
		Relations:        cs.Relations,
		IndexBuilds:      cs.IndexBuilds,
		DeltaIndexBuilds: cs.DeltaIndexBuilds,
		Compactions:      cs.Compactions,
		PlansCached:      cs.PlansCached,
		PlanHits:         cs.PlanHits,
		PlanMisses:       cs.PlanMisses,
		Replans:          cs.Replans,
		FeedbackEntries:  cs.FeedbackEntries,
	}
	if s.dur != nil {
		ws := s.dur.WAL()
		st.WALLastLSN = ws.LastLSN
		st.WALSize = ws.WALSize
		st.Checkpoints = ws.Checkpoints
	}
	return st
}

// sessionBudget mints the per-session work quota, or nil when the
// config sets no limits.
func (s *Server) sessionBudget() *core.Budget {
	return core.NewBudget(s.cfg.SessionMaxResolutions, s.cfg.SessionMaxOutput)
}

func (s *Server) defaultParallelism() int {
	if s.cfg.Parallelism > 0 {
		return s.cfg.Parallelism
	}
	return 1
}

func (s *Server) outputBufferLines() int {
	if s.cfg.OutputBuffer > 0 {
		return s.cfg.OutputBuffer
	}
	return 256
}

func (s *Server) writeStallTimeout() time.Duration {
	if s.cfg.WriteStallTimeout > 0 {
		return s.cfg.WriteStallTimeout
	}
	return 5 * time.Second
}

func (s *Server) trackSession(delta int) {
	s.mu.Lock()
	s.open += delta
	s.mu.Unlock()
	if delta > 0 {
		s.sessions.Add(1)
	}
}

var errClosed = fmt.Errorf("server: closed")

// The mutation helpers route through the durable layer when the server
// has one — applied, logged, synced, then acknowledged — and straight
// to the in-memory catalog otherwise.

func (s *Server) ingestRel(rel *relation.Relation) (uint64, error) {
	if s.dur != nil {
		return s.dur.Ingest(rel)
	}
	return s.cat.Ingest(rel)
}

func (s *Server) appendRel(name string, tuples []relation.Tuple) (uint64, error) {
	if s.dur != nil {
		return s.dur.Append(name, tuples...)
	}
	return s.cat.Append(name, tuples...)
}

func (s *Server) deleteRel(name string, tuples []relation.Tuple) (uint64, error) {
	if s.dur != nil {
		return s.dur.Delete(name, tuples...)
	}
	return s.cat.Delete(name, tuples...)
}
