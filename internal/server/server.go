// Package server runs the engine as a long-lived service: sessions
// speak a line-oriented JSON protocol (load / append / delete / query /
// prepare / exec / stats) against a shared catalog, executions pass
// through an admission queue bounding concurrent engine work, and every
// session carries its own cancellation context and — optionally — a
// work budget (the atomic core.Budget) shared by all of its queries.
//
// The server owns no engine state of its own: relations, indexes and
// prepared plans live in the catalog, immutable and shared, which is
// what makes any number of concurrent sessions safe. Results stream
// over the engine's existing OnOutput contract, one JSON line per
// tuple, so a session's memory stays O(1) in the output size.
package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/core"
)

// Config tunes the server.
type Config struct {
	// MaxConcurrent bounds engine executions running at once across all
	// sessions (the admission queue depth). 0 means 1: strictly serial
	// admission, the safe default on small hosts.
	MaxConcurrent int
	// SessionMaxResolutions, when > 0, caps the total geometric
	// resolutions one session may spend across all of its executions
	// (a shared core.Budget). Exhaustion fails the session's queries.
	SessionMaxResolutions int64
	// SessionMaxOutput, when > 0, caps the total output tuples one
	// session may receive across all of its executions.
	SessionMaxOutput int
	// Parallelism is the engine parallelism for executions that do not
	// ask otherwise. 0 means 1 (sequential), the right default for a
	// server multiplexing sessions onto the admission queue.
	Parallelism int
}

// Server dispatches protocol sessions against one shared catalog.
type Server struct {
	cat   *catalog.Catalog
	cfg   Config
	admit chan struct{}

	ctx    context.Context
	cancel context.CancelFunc

	sessions atomic.Int64 // lifetime session count
	queries  atomic.Int64 // lifetime executions (query/exec/count)
	mu       sync.Mutex
	open     int // currently open sessions
}

// New returns a server over the catalog.
func New(cat *catalog.Catalog, cfg Config) *Server {
	slots := cfg.MaxConcurrent
	if slots <= 0 {
		slots = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cat:    cat,
		cfg:    cfg,
		admit:  make(chan struct{}, slots),
		ctx:    ctx,
		cancel: cancel,
	}
}

// Catalog returns the shared catalog.
func (s *Server) Catalog() *catalog.Catalog { return s.cat }

// Close cancels every session (running executions stop cooperatively
// through their contexts).
func (s *Server) Close() { s.cancel() }

// admitExec blocks until an execution slot is free or the session is
// cancelled; the returned release must be called when the engine work
// is done.
func (s *Server) admitExec(ctx context.Context) (release func(), err error) {
	select {
	case s.admit <- struct{}{}:
		return func() { <-s.admit }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Serve accepts connections until the listener fails or the server is
// closed, running one session per connection.
func (s *Server) Serve(l net.Listener) error {
	go func() {
		<-s.ctx.Done()
		l.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.ctx.Err() != nil {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			// Close must also unblock sessions parked in a connection
			// read (the session context only cancels cooperative engine
			// work): closing the conn fails the pending Scan, so Serve's
			// wg.Wait cannot hang on idle clients after shutdown.
			done := make(chan struct{})
			defer close(done)
			go func() {
				select {
				case <-s.ctx.Done():
					conn.Close()
				case <-done:
				}
			}()
			s.ServeSession(conn, conn)
		}()
	}
}

// serverStats is the stats-op payload.
type serverStats struct {
	Sessions     int64 `json:"sessions"`
	OpenSessions int   `json:"open_sessions"`
	Queries      int64 `json:"queries"`

	Relations   int   `json:"relations"`
	IndexBuilds int64 `json:"index_builds"`
	// DeltaIndexBuilds is the portion of IndexBuilds that were O(k)
	// delta layers over prior versions (incremental maintenance), not
	// full constructions.
	DeltaIndexBuilds int64 `json:"delta_index_builds"`
	PlansCached      int   `json:"plans_cached"`
	PlanHits         int64 `json:"plan_hits"`
	PlanMisses       int64 `json:"plan_misses"`
}

func (s *Server) stats() serverStats {
	cs := s.cat.Stats()
	s.mu.Lock()
	open := s.open
	s.mu.Unlock()
	return serverStats{
		Sessions:         s.sessions.Load(),
		OpenSessions:     open,
		Queries:          s.queries.Load(),
		Relations:        cs.Relations,
		IndexBuilds:      cs.IndexBuilds,
		DeltaIndexBuilds: cs.DeltaIndexBuilds,
		PlansCached:      cs.PlansCached,
		PlanHits:         cs.PlanHits,
		PlanMisses:       cs.PlanMisses,
	}
}

// sessionBudget mints the per-session work quota, or nil when the
// config sets no limits.
func (s *Server) sessionBudget() *core.Budget {
	return core.NewBudget(s.cfg.SessionMaxResolutions, s.cfg.SessionMaxOutput)
}

func (s *Server) defaultParallelism() int {
	if s.cfg.Parallelism > 0 {
		return s.cfg.Parallelism
	}
	return 1
}

func (s *Server) trackSession(delta int) {
	s.mu.Lock()
	s.open += delta
	s.mu.Unlock()
	if delta > 0 {
		s.sessions.Add(1)
	}
}

var errClosed = fmt.Errorf("server: closed")
