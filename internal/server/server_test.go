package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"tetrisjoin/internal/catalog"
)

// drive runs one session over the given request lines and returns the
// response/tuple lines.
func drive(t *testing.T, srv *Server, reqs ...string) []map[string]any {
	t.Helper()
	var out bytes.Buffer
	in := strings.NewReader(strings.Join(reqs, "\n") + "\n")
	if err := srv.ServeSession(in, &out); err != nil {
		t.Fatalf("session error: %v", err)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	return lines
}

func num(m map[string]any, key string) float64 {
	v, _ := m[key].(float64)
	return v
}

const loadTriangle = `{"op":"load","name":"R","attrs":["s","d"],"depth":4,"tuples":[[1,2],[2,3],[1,3],[3,4]]}`

func TestSessionLifecycle(t *testing.T) {
	srv := New(catalog.New(), Config{})
	defer srv.Close()

	lines := drive(t, srv,
		loadTriangle,
		`{"op":"prepare","id":"tri","query":"R(A,B), R(B,C), R(A,C)","mode":"preloaded"}`,
		`{"op":"exec","id":"tri"}`,
		`{"op":"exec","id":"tri"}`,
		`{"op":"exec","id":"tri","count":true}`,
		`{"op":"stats"}`,
		`{"op":"close"}`,
	)
	if len(lines) != 9 { // 7 responses + 2 streamed tuples
		t.Fatalf("got %d lines, want 9: %v", len(lines), lines)
	}
	for i, m := range lines {
		if _, streamed := m["tuple"]; streamed {
			continue
		}
		if ok, _ := m["ok"].(bool); !ok {
			t.Fatalf("line %d not ok: %v", i, m)
		}
	}
	prep := lines[1]
	if num(prep, "index_builds") == 0 {
		t.Error("cold prepare reported zero index builds")
	}
	// Both execs stream exactly the triangle tuple and build nothing.
	for _, i := range []int{2, 4} {
		if fmt.Sprint(lines[i]["tuple"]) != "[1 2 3]" {
			t.Errorf("streamed tuple line %d = %v, want [1 2 3]", i, lines[i]["tuple"])
		}
		final := lines[i+1]
		if num(final, "index_builds") != 0 || num(final, "outputs") != 1 {
			t.Errorf("exec response %d: %v", i+1, final)
		}
	}
	if c, _ := lines[6]["count"].(string); c != "1" {
		t.Errorf("count = %q, want 1", c)
	}
	stats, _ := lines[7]["stats"].(map[string]any)
	if stats == nil || num(stats, "queries") != 3 || num(stats, "plan_misses") == 0 {
		t.Errorf("stats = %v", stats)
	}
}

func TestSessionAppendRepreparesAndLimit(t *testing.T) {
	srv := New(catalog.New(), Config{})
	defer srv.Close()

	lines := drive(t, srv,
		loadTriangle,
		`{"op":"query","query":"R(A,B), R(B,C)","buffer":true}`,
		`{"op":"append","name":"R","tuples":[[4,1]]}`,
		`{"op":"query","query":"R(A,B), R(B,C)","buffer":true}`,
		`{"op":"query","query":"R(A,B), R(B,C)","buffer":true,"limit":2}`,
		`{"op":"delete","name":"R","tuples":[[4,1]]}`,
		`{"op":"query","query":"R(A,B), R(B,C)","buffer":true}`,
	)
	count := func(i int) int {
		ts, _ := lines[i]["tuples"].([]any)
		return len(ts)
	}
	before, after, limited, restored := count(1), count(3), count(4), count(6)
	if after <= before {
		t.Errorf("append invisible: %d paths before, %d after", before, after)
	}
	if limited != 2 {
		t.Errorf("limit=2 returned %d tuples", limited)
	}
	if restored != before {
		t.Errorf("delete did not restore: %d paths, want %d", restored, before)
	}
	// The re-prepared query against the new version is a cache miss but
	// the registry keeps the orders warm: no new index builds.
	if num(lines[3], "index_builds") != 0 {
		t.Errorf("post-append query rebuilt %v indexes; registry should carry orders forward", lines[3]["index_builds"])
	}
}

func TestSessionBudgetSharedAcrossExecutions(t *testing.T) {
	// The triangle under Preloaded costs a fixed number of resolutions
	// (deterministic sequential accounting); measure it, then grant a
	// session 1.5× that: the first execution fits, the second must
	// exhaust the SHARED session budget — while a fresh session, with a
	// fresh budget, runs fine.
	probe := New(catalog.New(), Config{})
	lines := drive(t, probe,
		loadTriangle,
		`{"op":"query","query":"R(A,B), R(B,C), R(A,C)","mode":"preloaded","buffer":true}`,
	)
	cost := int64(num(lines[1], "resolutions"))
	if cost == 0 {
		t.Fatalf("probe run reported zero resolutions: %v", lines[1])
	}
	probe.Close()

	srv := New(catalog.New(), Config{SessionMaxResolutions: cost + cost/2})
	defer srv.Close()
	q := `{"op":"query","query":"R(A,B), R(B,C), R(A,C)","mode":"preloaded","buffer":true}`
	lines = drive(t, srv, loadTriangle, q, q)
	if ok, _ := lines[1]["ok"].(bool); !ok {
		t.Fatalf("first execution within budget failed: %v", lines[1])
	}
	last := lines[2]
	if ok, _ := last["ok"].(bool); ok {
		t.Fatalf("second execution did not exhaust the shared session budget: %v", last)
	}
	if msg, _ := last["error"].(string); !strings.Contains(msg, "resolution") {
		t.Errorf("error %q does not mention the resolution budget", msg)
	}

	// A fresh session gets a fresh budget.
	lines = drive(t, srv, q)
	if ok, _ := lines[len(lines)-1]["ok"].(bool); !ok {
		t.Errorf("fresh session inherited the exhausted budget: %v", lines[len(lines)-1])
	}
}

func TestServeTCPConcurrentSessions(t *testing.T) {
	srv := New(catalog.New(), Config{MaxConcurrent: 2})
	defer srv.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	// One session loads; the others query concurrently through the
	// shared catalog.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(conn, loadTriangle)
	if !bufio.NewScanner(conn).Scan() {
		t.Fatal("no load response")
	}
	conn.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			fmt.Fprintln(conn, `{"op":"query","query":"R(A,B), R(B,C), R(A,C)","mode":"preloaded","buffer":true}`)
			sc := bufio.NewScanner(conn)
			if !sc.Scan() {
				errs <- fmt.Errorf("worker %d: no response", w)
				return
			}
			var m map[string]any
			if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
				errs <- fmt.Errorf("worker %d: %v", w, err)
				return
			}
			if ok, _ := m["ok"].(bool); !ok {
				errs <- fmt.Errorf("worker %d: %v", w, m)
				return
			}
			if num(m, "outputs") != 1 {
				errs <- fmt.Errorf("worker %d: outputs = %v, want 1", w, m["outputs"])
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	srv.Close()
	if err := <-done; err != nil {
		t.Errorf("Serve returned %v", err)
	}
}

func TestSessionErrors(t *testing.T) {
	srv := New(catalog.New(), Config{})
	defer srv.Close()

	lines := drive(t, srv,
		`not json`,
		`{"op":"frobnicate"}`,
		`{"op":"exec","id":"nope"}`,
		`{"op":"query","query":"Missing(A,B)"}`,
		`{"op":"load","name":"R","attrs":["a"]}`,
		`{"op":"append","name":"ghost","tuples":[[1]]}`,
	)
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6", len(lines))
	}
	for i, m := range lines {
		if ok, _ := m["ok"].(bool); ok {
			t.Errorf("line %d unexpectedly ok: %v", i, m)
		}
		if msg, _ := m["error"].(string); msg == "" {
			t.Errorf("line %d has no error: %v", i, m)
		}
	}
}

// TestCloseUnblocksIdleSessions: Serve must return from Close even while
// a client connection sits idle mid-session (the blocking read must be
// broken, not waited out).
func TestCloseUnblocksIdleSessions(t *testing.T) {
	srv := New(catalog.New(), Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintln(conn, loadTriangle)
	if !bufio.NewScanner(conn).Scan() {
		t.Fatal("no load response")
	}
	// The session now idles in its read loop. Close must still win.
	srv.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return within 5s of Close with an idle session open")
	}
}

// TestBufferedLimitSpendsOnlyDeliveredBudget: a buffered request with a
// limit must stop the engine at the limit, spending only the delivered
// tuples from the shared session output budget — not the full result.
func TestBufferedLimitSpendsOnlyDeliveredBudget(t *testing.T) {
	srv := New(catalog.New(), Config{SessionMaxOutput: 4})
	defer srv.Close()

	// R(A,B) alone has 4 tuples; with a 4-output session budget, two
	// limit=2 queries must each deliver exactly 2.
	q := `{"op":"query","query":"R(A,B)","buffer":true,"limit":2}`
	lines := drive(t, srv, loadTriangle, q, q)
	for _, i := range []int{1, 2} {
		if ok, _ := lines[i]["ok"].(bool); !ok {
			t.Fatalf("query %d failed: %v", i, lines[i])
		}
		if ts, _ := lines[i]["tuples"].([]any); len(ts) != 2 {
			t.Errorf("query %d delivered %d tuples, want 2 (budget drained by undelivered output?)", i, len(ts))
		}
	}
}

// TestSessionMaintainLifecycle drives the steady-state serving story
// the protocol exists to demonstrate: maintain → exec (no change) →
// append → exec. The post-append exec must report a patched refresh
// with delta-sized index builds — not a re-preparation — and deliver
// the updated result.
func TestSessionMaintainLifecycle(t *testing.T) {
	srv := New(catalog.New(), Config{})
	defer srv.Close()

	lines := drive(t, srv,
		loadTriangle,
		`{"op":"maintain","id":"mt","query":"R(A,B), R(B,C), R(A,C)","mode":"preloaded"}`,
		`{"op":"exec","id":"mt"}`,
		`{"op":"append","name":"R","tuples":[[2,4]]}`,
		`{"op":"exec","id":"mt"}`,
		`{"op":"exec","id":"mt","count":true}`,
		`{"op":"close"}`,
	)
	// load, maintain, exec(+1 tuple), append, exec(+2 tuples), count, close.
	if len(lines) != 10 {
		t.Fatalf("got %d lines, want 10: %v", len(lines), lines)
	}
	maintainResp := lines[1]
	if ok, _ := maintainResp["ok"].(bool); !ok || num(maintainResp, "index_builds") == 0 {
		t.Fatalf("maintain response wrong (cold materialization must build): %v", maintainResp)
	}
	// First exec: nothing changed since maintain.
	exec1 := lines[3]
	if exec1["refresh"] != "none" || num(exec1, "index_builds") != 0 || num(exec1, "outputs") != 1 {
		t.Fatalf("idle exec response wrong: %v", exec1)
	}
	// Post-append exec: patched, delta-sized builds, both triangles.
	exec2 := lines[7]
	if exec2["refresh"] != "patched" {
		t.Fatalf("post-append exec refresh %v, want patched: %v", exec2["refresh"], exec2)
	}
	if b := num(exec2, "index_builds"); b < 1 || b > 3 {
		t.Fatalf("post-append exec built %v indexes, want delta-sized (1..3): %v", b, exec2)
	}
	if num(exec2, "outputs") != 2 {
		t.Fatalf("post-append exec outputs %v, want 2: %v", num(exec2, "outputs"), exec2)
	}
	var streamed []string
	for _, i := range []int{5, 6} {
		b, _ := json.Marshal(lines[i]["tuple"])
		streamed = append(streamed, string(b))
	}
	want := []string{"[1,2,3]", "[2,3,4]"}
	for i := range want {
		if streamed[i] != want[i] {
			t.Fatalf("streamed tuples %v, want %v", streamed, want)
		}
	}
	count := lines[8]
	if count["count"] != "2" || count["refresh"] != "none" {
		t.Fatalf("maintained count response wrong: %v", count)
	}
}

// One id names one statement: re-preparing an id that was maintained
// (or vice versa) must replace it, never leave exec serving the old
// statement from the other map.
func TestSessionStatementIDReplacement(t *testing.T) {
	srv := New(catalog.New(), Config{})
	defer srv.Close()

	lines := drive(t, srv,
		loadTriangle,
		`{"op":"maintain","id":"q","query":"R(A,B), R(B,C), R(A,C)","mode":"preloaded"}`,
		`{"op":"prepare","id":"q","query":"R(A,B)","mode":"preloaded"}`,
		`{"op":"exec","id":"q","buffer":true}`,
		`{"op":"maintain","id":"q","query":"R(A,B), R(B,C), R(A,C)","mode":"preloaded"}`,
		`{"op":"exec","id":"q","buffer":true}`,
		`{"op":"close"}`,
	)
	// exec after re-prepare must serve R(A,B): 4 tuples, no refresh field.
	exec1 := lines[3]
	if ts, _ := exec1["tuples"].([]any); len(ts) != 4 {
		t.Fatalf("exec after re-prepare served %d tuples, want 4 (stale maintained statement?): %v", len(ts), exec1)
	}
	if _, hasRefresh := exec1["refresh"]; hasRefresh {
		t.Fatalf("exec after re-prepare still maintained: %v", exec1)
	}
	// exec after re-maintain must serve the triangle again.
	exec2 := lines[5]
	if exec2["refresh"] != "none" || num(exec2, "outputs") != 1 {
		t.Fatalf("exec after re-maintain wrong: %v", exec2)
	}
}
