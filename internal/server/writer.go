package server

import (
	"bufio"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// errSlowConsumer is the sticky session error once a peer has failed to
// drain its output within the stall budget. The session is disconnected
// with an explicit {"ok":false,"error":"slow consumer"} line — never a
// silent stall of shared engine capacity.
var errSlowConsumer = errors.New("slow consumer")

// deadlineWriter is the optional connection capability the
// slow-consumer path uses to cut a write blocked on a dead peer
// (net.Conn implements it; pipes and buffers do not need it).
type deadlineWriter interface{ SetWriteDeadline(time.Time) error }

// sessionWriter decouples protocol output from the peer: every response
// and streamed tuple line is enqueued into a bounded buffer drained by
// one writer goroutine, so the engine — and with it the admission slot
// it holds — never blocks on a slow connection. A peer that leaves the
// buffer full for longer than the stall budget is declared a slow
// consumer: enqueue fails sticky, the engine stops at its next output,
// and the session disconnects with an explicit error line.
//
// The buffer is intentionally lines, not bytes: the protocol's unit of
// progress is one JSON line, and a line count keeps the slow-consumer
// policy independent of tuple width.
type sessionWriter struct {
	w     io.Writer
	dl    deadlineWriter // non-nil when w supports write deadlines
	lines chan wline
	done  chan struct{}
	stall time.Duration

	slow atomic.Bool
	mu   sync.Mutex
	werr error

	finishOnce sync.Once
}

// wline is one queued output line; a non-nil ack asks the drain
// goroutine to flush after writing it and report the outcome.
type wline struct {
	data []byte
	ack  chan error
}

func newSessionWriter(w io.Writer, buf int, stall time.Duration) *sessionWriter {
	sw := &sessionWriter{
		w:     w,
		lines: make(chan wline, buf),
		done:  make(chan struct{}),
		stall: stall,
	}
	if d, ok := w.(deadlineWriter); ok {
		sw.dl = d
	}
	go sw.loop()
	return sw
}

// loop drains the buffer into the peer, flushing on every acked line
// and whenever the buffer runs dry (so a streaming burst amortizes
// syscalls between responses). After a write error the loop keeps
// draining — discarding, but still answering acks — so enqueuers can
// never block on a dead sink.
func (sw *sessionWriter) loop() {
	defer close(sw.done)
	bw := bufio.NewWriter(sw.w)
	for ln := range sw.lines {
		err := sw.err()
		if err == nil {
			if _, werr := bw.Write(ln.data); werr != nil {
				sw.fail(werr)
				err = werr
			}
		}
		if err == nil && (ln.ack != nil || len(sw.lines) == 0) {
			if werr := bw.Flush(); werr != nil {
				sw.fail(werr)
				err = werr
			}
		}
		if ln.ack != nil {
			ln.ack <- err
		}
	}
	if sw.err() == nil {
		bw.Flush()
	}
}

func (sw *sessionWriter) err() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.werr
}

func (sw *sessionWriter) fail(err error) {
	sw.mu.Lock()
	if sw.werr == nil {
		sw.werr = err
	}
	sw.mu.Unlock()
}

// enqueue hands one complete line (newline included) to the writer
// without waiting for delivery — the streamed-tuple path. It returns
// immediately while the buffer has room; on a full buffer it waits at
// most the stall budget for the peer to catch up, then declares it slow
// — cutting any write the drain goroutine has blocked on, so the
// goroutine can discard the backlog and exit at close.
func (sw *sessionWriter) enqueue(line []byte) error {
	if sw.slow.Load() {
		return errSlowConsumer
	}
	if err := sw.err(); err != nil {
		return err
	}
	select {
	case sw.lines <- wline{data: line}:
		return nil
	default:
	}
	timer := time.NewTimer(sw.stall)
	defer timer.Stop()
	select {
	case sw.lines <- wline{data: line}:
		return nil
	case <-timer.C:
		return sw.declareSlow()
	}
}

// enqueueSync queues one line and waits (bounded by the stall budget)
// until it — and everything queued before it — has been handed to the
// peer. Responses use this: an acknowledgement must reach the transport
// before the session reads its next request, so a client never observes
// more than one acknowledged-but-undelivered mutation. Streamed tuples
// between responses still ride the asynchronous path.
func (sw *sessionWriter) enqueueSync(line []byte) error {
	if sw.slow.Load() {
		return errSlowConsumer
	}
	if err := sw.err(); err != nil {
		return err
	}
	ack := make(chan error, 1) // buffered: the loop never blocks on it
	timer := time.NewTimer(sw.stall)
	defer timer.Stop()
	select {
	case sw.lines <- wline{data: line, ack: ack}:
	case <-timer.C:
		return sw.declareSlow()
	}
	select {
	case err := <-ack:
		return err
	case <-timer.C:
		return sw.declareSlow()
	}
}

// declareSlow marks the peer a slow consumer (sticky) and cuts any
// write the drain goroutine is blocked on.
func (sw *sessionWriter) declareSlow() error {
	sw.slow.Store(true)
	if sw.dl != nil {
		sw.dl.SetWriteDeadline(time.Now())
	}
	return errSlowConsumer
}

// finish closes the stream and waits for the drain goroutine to exit
// (delivering everything buffered, unless the sink already failed).
// Idempotent; must be called before any direct write to the underlying
// writer. One exception to the wait: a slow consumer on a sink without
// write deadlines cannot have its blocked write cut, so finish leaves
// the drain goroutine to die with the sink rather than hanging the
// session teardown on it.
func (sw *sessionWriter) finish() {
	sw.finishOnce.Do(func() {
		close(sw.lines)
		if sw.slow.Load() && sw.dl == nil {
			return
		}
		<-sw.done
	})
}
