package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/durable"
	"tetrisjoin/internal/wal"
)

// A panicking handler must cost exactly one error line: the session
// stays alive and — with MaxConcurrent=1 — the follow-up query proves
// the admission slot was released during the unwind.
func TestPanicContainmentReleasesSlot(t *testing.T) {
	srv := New(catalog.New(), Config{MaxConcurrent: 1})
	defer srv.Close()

	fired := false
	testHookPreExec = func() {
		if !fired {
			fired = true
			panic("injected handler panic")
		}
	}
	defer func() { testHookPreExec = nil }()

	q := `{"op":"query","query":"R(A,B)","buffer":true}`
	lines := drive(t, srv, loadTriangle, q, q, `{"op":"stats"}`)
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4: %v", len(lines), lines)
	}
	if ok, _ := lines[1]["ok"].(bool); ok {
		t.Fatalf("panicking query reported ok: %v", lines[1])
	}
	if msg, _ := lines[1]["error"].(string); !strings.Contains(msg, "internal error") {
		t.Fatalf("panic surfaced as %q, want an internal error line", msg)
	}
	// The slot came back: the retry runs to completion on the same session.
	if ok, _ := lines[2]["ok"].(bool); !ok {
		t.Fatalf("query after contained panic failed (leaked admission slot?): %v", lines[2])
	}
	stats, _ := lines[3]["stats"].(map[string]any)
	if stats == nil || num(stats, "panics") != 1 {
		t.Fatalf("stats did not count the contained panic: %v", stats)
	}
}

// Shutdown waits for in-flight requests, rejects new admissions, stops
// the listeners, and only then cancels.
func TestShutdownDrainsInFlight(t *testing.T) {
	srv := New(catalog.New(), Config{MaxConcurrent: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()

	enter := make(chan struct{}, 1)
	unblock := make(chan struct{})
	testHookPreExec = func() {
		select {
		case enter <- struct{}{}:
			<-unblock // the in-flight request Shutdown must wait for
		default:
		}
	}
	defer func() { testHookPreExec = nil }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintln(conn, loadTriangle)
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatal("no load response")
	}
	fmt.Fprintln(conn, `{"op":"query","query":"R(A,B)","buffer":true}`)
	<-enter // the query is now in flight, parked in the hook

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Draining: no new sessions...
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			break
		}
		c.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// ...and Shutdown is still waiting on the in-flight request.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v before the in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(unblock)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("drained Shutdown returned %v", err)
	}
	// The in-flight request was answered before the connection died.
	if !sc.Scan() {
		t.Fatal("in-flight query got no response through the drain")
	}
	var m map[string]any
	if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if ok, _ := m["ok"].(bool); !ok {
		t.Fatalf("drained query failed: %v", m)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
}

// A Shutdown whose deadline expires before the in-flight work finishes
// reports the context error and still cancels everything.
func TestShutdownDeadlineExpires(t *testing.T) {
	srv := New(catalog.New(), Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()

	enter := make(chan struct{}, 1)
	unblock := make(chan struct{})
	testHookPreExec = func() {
		select {
		case enter <- struct{}{}:
			<-unblock
		default:
		}
	}
	defer func() { testHookPreExec = nil }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintln(conn, loadTriangle)
	if !bufio.NewScanner(conn).Scan() {
		t.Fatal("no load response")
	}
	fmt.Fprintln(conn, `{"op":"query","query":"R(A,B)","buffer":true}`)
	<-enter

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown returned %v, want context.DeadlineExceeded", err)
	}
	// Only now release the stuck request: Serve's session accounting
	// (and so its return) still depends on it unwinding.
	close(unblock)
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
}

// An idle connection is closed after the configured timeout; the server
// keeps serving fresh connections.
func TestIdleTimeoutClosesSilentConnections(t *testing.T) {
	srv := New(catalog.New(), Config{IdleTimeout: 100 * time.Millisecond})
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintln(conn, loadTriangle)
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatal("no load response")
	}
	// Fall silent; the server must hang up on us.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if sc.Scan() {
		t.Fatalf("unexpected line on an idle connection: %s", sc.Text())
	}
	if err := sc.Err(); err != nil && strings.Contains(err.Error(), "timeout") {
		t.Fatalf("client read timed out (%v): server never closed the idle connection", err)
	}

	// The server is still alive for new connections.
	conn2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	fmt.Fprintln(conn2, `{"op":"stats"}`)
	if !bufio.NewScanner(conn2).Scan() {
		t.Fatal("server dead after closing an idle connection")
	}
}

// A durable server: mutations and maintained registrations survive a
// restart, and a fresh session on the restarted server execs the
// recovered statement byte-identically.
func TestDurableServerSurvivesRestart(t *testing.T) {
	fs := wal.NewMemFS()
	open := func() *durable.Catalog {
		d, err := durable.Open("", durable.Options{FS: fs, CheckpointEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	d := open()
	srv := NewDurable(d, Config{})
	lines := drive(t, srv,
		loadTriangle,
		`{"op":"append","name":"R","tuples":[[2,4]]}`,
		`{"op":"maintain","id":"tri","query":"R(A,B), R(B,C), R(A,C)","mode":"preloaded"}`,
		`{"op":"exec","id":"tri","buffer":true}`,
		`{"op":"stats"}`,
	)
	execResp := lines[3]
	if ok, _ := execResp["ok"].(bool); !ok {
		t.Fatalf("exec failed: %v", execResp)
	}
	want, _ := json.Marshal(execResp["tuples"])
	stats, _ := lines[4]["stats"].(map[string]any)
	if stats == nil || num(stats, "wal_last_lsn") != 3 {
		t.Fatalf("durable stats missing WAL position: %v", stats)
	}
	srv.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-restart: reopen from the same storage, fresh server, fresh
	// session. The maintained id resolves through the durable registry.
	d2 := open()
	defer d2.Close()
	srv2 := NewDurable(d2, Config{})
	defer srv2.Close()
	lines = drive(t, srv2, `{"op":"exec","id":"tri","buffer":true}`)
	resp := lines[len(lines)-1]
	if ok, _ := resp["ok"].(bool); !ok {
		t.Fatalf("exec of recovered statement failed: %v", resp)
	}
	got, _ := json.Marshal(resp["tuples"])
	if string(got) != string(want) {
		t.Fatalf("recovered result %s, want %s", got, want)
	}
}
