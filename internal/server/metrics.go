package server

import (
	"net/http"
	"time"

	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/metrics"
)

// serverMetrics is the server's observability surface: the registry
// behind /metrics plus the few instruments hot paths update directly.
// Everything the server and catalog already count atomically is
// exported through CounterFunc/GaugeFunc mirrors — scrapes read the
// live atomics, so the serving path pays nothing for them.
type serverMetrics struct {
	reg *metrics.Registry

	// Accumulated from successful responses on the session loop.
	resolutions *metrics.Counter
	outputs     *metrics.Counter

	// Overload-protection outcomes.
	shed          *metrics.Counter
	slowConsumers *metrics.Counter
	drainRejects  *metrics.Counter
	overlong      *metrics.Counter

	// Latency: queue wait on admission, request handling by op, and
	// engine execution by version-free query shape (fed by the catalog's
	// exec observer).
	queueWait      *metrics.Histogram
	requestSeconds *metrics.HistogramVec
	execSeconds    *metrics.HistogramVec
}

func newServerMetrics(s *Server) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{reg: reg}

	reg.CounterFunc("tetris_sessions_total", "Lifetime protocol sessions.",
		func() float64 { return float64(s.sessions.Load()) })
	reg.GaugeFunc("tetris_open_sessions", "Currently open protocol sessions.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.open)
		})
	reg.CounterFunc("tetris_queries_total", "Lifetime engine executions (query/exec/count).",
		func() float64 { return float64(s.queries.Load()) })
	reg.CounterFunc("tetris_panics_total", "Requests that panicked in a handler and were contained.",
		func() float64 { return float64(s.panics.Load()) })

	cat := func(get func(catalog.Stats) float64) func() float64 {
		return func() float64 { return get(s.cat.Stats()) }
	}
	reg.GaugeFunc("tetris_relations", "Relations registered in the catalog.",
		cat(func(cs catalog.Stats) float64 { return float64(cs.Relations) }))
	reg.CounterFunc("tetris_index_builds_total", "Lifetime index constructions, full builds plus delta layers.",
		cat(func(cs catalog.Stats) float64 { return float64(cs.IndexBuilds) }))
	reg.CounterFunc("tetris_delta_index_builds_total", "Index builds that were O(delta) layers over a prior version.",
		cat(func(cs catalog.Stats) float64 { return float64(cs.DeltaIndexBuilds) }))
	reg.CounterFunc("tetris_compactions_total", "Background delta-chain folds.",
		cat(func(cs catalog.Stats) float64 { return float64(cs.Compactions) }))
	reg.GaugeFunc("tetris_plans_cached", "Plans currently live in the plan cache.",
		cat(func(cs catalog.Stats) float64 { return float64(cs.PlansCached) }))
	reg.CounterFunc("tetris_plan_hits_total", "Preparations served from the plan cache.",
		cat(func(cs catalog.Stats) float64 { return float64(cs.PlanHits) }))
	reg.CounterFunc("tetris_plan_misses_total", "Preparations that had to plan and build.",
		cat(func(cs catalog.Stats) float64 { return float64(cs.PlanMisses) }))
	reg.CounterFunc("tetris_replans_total", "Planner-feedback triggers: executions divergent enough to invalidate their cached plan.",
		cat(func(cs catalog.Stats) float64 { return float64(cs.Replans) }))

	m.resolutions = reg.Counter("tetris_resolutions_total",
		"Geometric resolutions spent by successful requests.")
	m.outputs = reg.Counter("tetris_outputs_total",
		"Output tuples delivered by successful requests.")

	// Work-stealing executor telemetry: process-wide atomics maintained
	// by internal/core across every in-flight parallel run.
	reg.CounterFunc("tetris_shard_steals_total",
		"Dynamic shard splits performed by the work-stealing executor.",
		func() float64 { return float64(core.StealsTotal()) })
	reg.GaugeFunc("tetris_worker_busy",
		"Executor workers currently running a shard fragment.",
		func() float64 { return float64(core.BusyWorkers()) })

	reg.GaugeFunc("tetris_admission_running", "Executions holding an engine slot right now.",
		func() float64 { return float64(len(s.admit)) })
	reg.GaugeFunc("tetris_admission_queue_depth", "Executions waiting for an engine slot right now.",
		func() float64 { return float64(s.waiting.Load()) })
	m.shed = reg.Counter("tetris_admission_shed_total",
		"Executions fast-failed with \"overloaded\" because the wait queue was full.")
	m.slowConsumers = reg.Counter("tetris_slow_consumers_total",
		"Sessions disconnected for not draining their output within the stall budget.")
	m.drainRejects = reg.Counter("tetris_drain_rejects_total",
		"Requests rejected because they arrived while the server was draining.")
	m.overlong = reg.Counter("tetris_overlong_requests_total",
		"Request lines over the protocol cap, answered with an error and closed.")

	m.queueWait = reg.HistogramVec("tetris_admission_wait_seconds",
		"Time an admitted execution spent waiting for an engine slot.").With()
	m.requestSeconds = reg.HistogramVec("tetris_request_seconds",
		"Request handling latency by protocol op.", "op")
	m.execSeconds = reg.HistogramVec("tetris_exec_seconds",
		"Engine execution latency by version-free query shape and kind (exec/count/maintained).",
		"shape", "kind")
	return m
}

// registerDurable adds the WAL instruments; called only on a durable
// server, so an in-memory /metrics page shows no phantom zero series.
func (m *serverMetrics) registerDurable(s *Server) {
	m.reg.GaugeFunc("tetris_wal_last_lsn", "Last durably acknowledged WAL LSN.",
		func() float64 { return float64(s.dur.WAL().LastLSN) })
	m.reg.GaugeFunc("tetris_wal_size_bytes", "Current write-ahead log size.",
		func() float64 { return float64(s.dur.WAL().WALSize) })
	m.reg.GaugeFunc("tetris_wal_records_since_checkpoint",
		"WAL records appended since the last checkpoint: the replay-lag bound.",
		func() float64 { return float64(s.dur.WAL().SinceCheckpoint) })
	m.reg.CounterFunc("tetris_checkpoints_total", "Checkpoints taken.",
		func() float64 { return float64(s.dur.WAL().Checkpoints) })
}

// knownOps bounds the op label set so a client sending junk ops cannot
// mint unbounded label values; anything else lands under "other".
var knownOps = map[string]bool{
	"load": true, "append": true, "delete": true, "query": true,
	"prepare": true, "maintain": true, "exec": true, "stats": true,
	"close": true,
}

func opLabel(op string) string {
	if knownOps[op] {
		return op
	}
	return "other"
}

// MetricsRegistry exposes the server's metrics registry, e.g. to attach
// process-level instruments before serving /metrics.
func (s *Server) MetricsRegistry() *metrics.Registry { return s.met.reg }

// MetricsHandler serves the registry in Prometheus text exposition
// format; mount it at /metrics.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.met.reg.WritePrometheus(w)
	})
}

// observeExec is the catalog's execution observer: every prepared /
// charged / maintained execution lands here with its version-free shape
// label, building the per-shape latency histograms.
func (s *Server) observeExec(shape, kind string, seconds float64) {
	s.met.execSeconds.With(shape, kind).Observe(time.Duration(seconds * float64(time.Second)))
}
