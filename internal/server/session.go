package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

// Request is one line of the protocol. Op selects the action; the other
// fields are op-specific.
type Request struct {
	// Op is one of load, append, delete, query, prepare, maintain, exec,
	// stats, close.
	Op string `json:"op"`

	// Name is the relation name for load/append/delete.
	Name string `json:"name,omitempty"`
	// Attrs and Depth/Depths define the schema for load: attribute names
	// plus either one uniform bit depth or per-attribute depths.
	Attrs  []string `json:"attrs,omitempty"`
	Depth  uint8    `json:"depth,omitempty"`
	Depths []uint8  `json:"depths,omitempty"`
	// Tuples carries rows for load/append/delete.
	Tuples [][]uint64 `json:"tuples,omitempty"`

	// ID names a prepared statement (prepare assigns, exec runs).
	ID string `json:"id,omitempty"`
	// Query is the query text for query/prepare, e.g. "R(A,B), S(B,C)".
	Query string `json:"query,omitempty"`
	// Mode selects the Tetris variant: reloaded (default), preloaded,
	// reloaded-lb, preloaded-lb.
	Mode string `json:"mode,omitempty"`
	// SAO optionally fixes the splitting attribute order.
	SAO []string `json:"sao,omitempty"`
	// Limit stops an execution after this many tuples (0 = all).
	Limit int `json:"limit,omitempty"`
	// Count asks for the output cardinality instead of the tuples.
	Count bool `json:"count,omitempty"`
	// Buffer returns tuples inside the response instead of streaming
	// them as individual {"tuple": …} lines.
	Buffer bool `json:"buffer,omitempty"`
}

// Response is the final line answering a request. Executions with
// streaming enabled emit {"tuple": […]} lines before it.
type Response struct {
	OK  bool   `json:"ok"`
	Op  string `json:"op,omitempty"`
	Err string `json:"error,omitempty"`

	// Version is the published relation version for load/append/delete,
	// and the WAL LSN the snapshot covers for checkpoint.
	Version uint64 `json:"version,omitempty"`

	// ID echoes the statement id for prepare/maintain/exec.
	ID string `json:"id,omitempty"`
	// Refresh reports how an exec of a maintained statement brought its
	// result up to date: "none" (no writes since), "patched" (delta
	// passes) or "recomputed" (exact fallback). Empty for plain
	// statements.
	Refresh string `json:"refresh,omitempty"`
	// CacheHit reports whether prepare was served from the plan cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// IndexBuilds is the number of indexes constructed on behalf of this
	// request: >0 on a cold prepare or one-shot query, always 0 for exec
	// of a prepared statement — the protocol-visible witness of
	// amortization.
	IndexBuilds int64 `json:"index_builds"`

	// Vars and SAO describe an execution's output schema and order.
	Vars []string `json:"vars,omitempty"`
	SAO  []string `json:"sao,omitempty"`
	// Tuples holds the output when Buffer was set.
	Tuples [][]uint64 `json:"tuples,omitempty"`
	// Count is the decimal output cardinality for count requests.
	Count string `json:"count,omitempty"`
	// Outputs and Resolutions summarize the engine work.
	Outputs     int64 `json:"outputs"`
	Resolutions int64 `json:"resolutions"`

	// Stats is the server/catalog summary for the stats op.
	Stats *serverStats `json:"stats,omitempty"`
}

// tupleLine is one streamed output row.
type tupleLine struct {
	Tuple []uint64 `json:"tuple"`
}

// session is the per-connection state: prepared statements, the session
// work budget, and the cancellation context.
type session struct {
	srv    *Server
	ctx    context.Context
	budget *core.Budget
	stmts  map[string]*catalog.Prepared
	maint  map[string]*catalog.Maintained

	// qcache memoizes preparations for repeated textual "query" requests
	// so the hot path skips parse + SAO derivation on every call. It is
	// dropped wholesale whenever the catalog generation moves (any
	// relation publish) — the statements pin old versions, and a stale
	// hit would silently serve pre-update data.
	qcache map[string]*catalog.Prepared
	qgen   uint64

	out *sessionWriter
}

// qcacheCap bounds the per-session textual-statement cache; a client
// sending unbounded distinct query texts must not grow session memory
// without bound (overflow entries are simply re-prepared each time).
const qcacheCap = 64

// maxRequestLine caps one protocol request line. Var, not const, so the
// oversized-line test can lower it without buffering 64 MiB.
var maxRequestLine = 64 * 1024 * 1024

// slowConsumerLine is the explicit farewell a slow consumer gets,
// written directly to the connection after its session writer is
// retired. The leading newline guards against a partial line the
// cut-off writer may have left on the wire.
const slowConsumerLine = "\n{\"ok\":false,\"error\":\"slow consumer\"}\n"

// ServeSession runs one protocol session over the reader/writer pair
// until EOF, a close op, or server shutdown. Each line of r is one JSON
// request; each request produces exactly one JSON response line,
// preceded by zero or more {"tuple": …} lines for streamed executions.
func (s *Server) ServeSession(r io.Reader, w io.Writer) error {
	s.trackSession(1)
	defer s.trackSession(-1)
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	// All output — responses and streamed tuples — goes through the
	// session writer: a bounded buffer drained by its own goroutine, so
	// the engine never blocks on a slow peer. finish (deferred first, so
	// it runs before Serve's watcher may hard-close the conn) delivers
	// everything buffered before the session ends.
	sw := newSessionWriter(w, s.outputBufferLines(), s.writeStallTimeout())
	defer sw.finish()

	sess := &session{
		srv:    s,
		ctx:    ctx,
		budget: s.sessionBudget(),
		stmts:  map[string]*catalog.Prepared{},
		maint:  map[string]*catalog.Maintained{},
		out:    sw,
	}

	sc := bufio.NewScanner(r)
	// The scanner's limit is max(cap(buf), max), so the initial buffer
	// must not exceed the configured cap.
	initial := 64 * 1024
	if maxRequestLine < initial {
		initial = maxRequestLine
	}
	sc.Buffer(make([]byte, 0, initial), maxRequestLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if s.ctx.Err() != nil {
			sess.respond(Response{Err: "server closing"})
			return errClosed
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			if rerr := sess.respond(Response{Op: "?", Err: fmt.Sprintf("bad request: %v", err)}); rerr != nil {
				return s.failWrite(sw, w, rerr)
			}
			continue
		}
		if req.Op == "close" {
			if err := sess.respond(Response{OK: true, Op: "close"}); err != nil {
				return s.failWrite(sw, w, err)
			}
			return nil
		}
		finish, err := s.beginOp()
		if err != nil {
			// Draining: the request never starts. The client still gets
			// its error line — and the session keeps running, because a
			// drain rejection is per-request, not a protocol failure.
			if rerr := sess.respond(Response{Op: req.Op, Err: err.Error()}); rerr != nil {
				return s.failWrite(sw, w, rerr)
			}
			continue
		}
		start := time.Now()
		resp := sess.handle(req)
		finish()
		s.met.requestSeconds.With(opLabel(req.Op)).Observe(time.Since(start))
		resp.Op = req.Op
		if resp.OK {
			s.met.resolutions.Add(resp.Resolutions)
			s.met.outputs.Add(resp.Outputs)
		}
		if err := sess.respond(resp); err != nil {
			return s.failWrite(sw, w, err)
		}
	}

	// The loop exits through a failed read. Shutdown surfaces here too —
	// the watcher expires the read deadline — and the peer is owed an
	// explicit final line, not a silent EOF. An idle-timeout close (the
	// server is fine, the client went quiet) stays silent by design.
	if s.ctx.Err() != nil {
		sess.respond(Response{Err: "server closing"})
		return errClosed
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// An oversized request line used to kill the session with no
			// response at all. The line itself is unrecoverable — the
			// scanner cannot resync mid-line — so answer, then close.
			s.met.overlong.Inc()
			sess.respond(Response{Op: "?", Err: fmt.Sprintf("request line exceeds %d bytes", maxRequestLine)})
			return nil
		}
		return err
	}
	return nil
}

// failWrite ends a session whose write path failed. A slow consumer —
// sticky once declared — gets the explicit farewell written directly to
// the connection (the session writer is retired first; a fresh deadline
// re-enables the write side the stall cut).
func (s *Server) failWrite(sw *sessionWriter, w io.Writer, err error) error {
	if !errors.Is(err, errSlowConsumer) {
		return err
	}
	s.met.slowConsumers.Inc()
	sw.finish()
	if d, ok := w.(deadlineWriter); ok {
		d.SetWriteDeadline(time.Now().Add(time.Second))
	}
	io.WriteString(w, slowConsumerLine)
	return err
}

// respond writes one response line and waits for it to reach the
// transport: a mutation's acknowledgement is on the wire before the
// session reads the next request.
func (sess *session) respond(r Response) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return sess.out.enqueueSync(append(b, '\n'))
}

// send queues one streamed line (no delivery wait).
func (sess *session) send(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return sess.out.enqueue(append(b, '\n'))
}

// fail formats an error response.
func fail(err error) Response { return Response{Err: err.Error()} }

// testHookPreExec, when non-nil, runs inside every admitted execution;
// tests use it to inject panics and prove containment releases the
// admission slot.
var testHookPreExec func()

// handle dispatches one request, containing any panic in the handler
// chain: the session gets an error line and lives on, and the deferred
// releases below (admission slot, op tracking) run during the unwind,
// so one poisoned request cannot leak the execution slot or wedge the
// drain accounting.
func (sess *session) handle(req Request) (resp Response) {
	defer func() {
		if r := recover(); r != nil {
			sess.srv.panics.Add(1)
			resp = fail(fmt.Errorf("internal error in %q: %v", req.Op, r))
		}
	}()
	return sess.dispatch(req)
}

// dispatch routes one request to its handler.
func (sess *session) dispatch(req Request) Response {
	switch req.Op {
	case "load":
		return sess.load(req)
	case "append", "delete":
		return sess.ingest(req)
	case "query":
		return sess.query(req)
	case "prepare":
		return sess.prepare(req)
	case "maintain":
		return sess.maintain(req)
	case "exec":
		return sess.exec(req)
	case "checkpoint":
		return sess.checkpoint()
	case "stats":
		st := sess.srv.stats()
		return Response{OK: true, Stats: &st}
	default:
		return fail(fmt.Errorf("unknown op %q", req.Op))
	}
}

func (sess *session) load(req Request) Response {
	if req.Name == "" || len(req.Attrs) == 0 {
		return fail(fmt.Errorf("load needs name and attrs"))
	}
	var rel *relation.Relation
	var err error
	switch {
	case len(req.Depths) > 0:
		rel, err = relation.New(req.Name, req.Attrs, req.Depths)
	case req.Depth > 0:
		rel, err = relation.NewUniform(req.Name, req.Attrs, req.Depth)
	default:
		return fail(fmt.Errorf("load needs depth or depths"))
	}
	if err != nil {
		return fail(err)
	}
	for _, t := range req.Tuples {
		if err := rel.Insert(t...); err != nil {
			return fail(err)
		}
	}
	version, err := sess.srv.ingestRel(rel)
	if err != nil {
		return fail(err)
	}
	return Response{OK: true, Version: version}
}

func (sess *session) ingest(req Request) Response {
	if req.Name == "" {
		return fail(fmt.Errorf("%s needs name", req.Op))
	}
	tuples := make([]relation.Tuple, len(req.Tuples))
	for i, t := range req.Tuples {
		tuples[i] = t
	}
	var version uint64
	var err error
	if req.Op == "append" {
		version, err = sess.srv.appendRel(req.Name, tuples)
	} else {
		version, err = sess.srv.deleteRel(req.Name, tuples)
	}
	if err != nil {
		return fail(err)
	}
	return Response{OK: true, Version: version}
}

// checkpoint forces an incremental checkpoint on the durable catalog:
// changed relations are frozen into fresh index segments, unchanged
// ones re-reference their existing files, and the WAL rotates. The
// response carries the LSN the snapshot covers. In-memory servers
// refuse the op — there is nothing to persist to.
func (sess *session) checkpoint() Response {
	d := sess.srv.dur
	if d == nil {
		return fail(fmt.Errorf("checkpoint requires a durable server (-data-dir)"))
	}
	if err := d.Checkpoint(); err != nil {
		return fail(err)
	}
	return Response{OK: true, Version: d.WAL().CheckpointLSN}
}

func (sess *session) prepare(req Request) Response {
	if req.ID == "" || req.Query == "" {
		return fail(fmt.Errorf("prepare needs id and query"))
	}
	mode, err := core.ParseMode(req.Mode)
	if err != nil {
		return fail(err)
	}
	// Cold preparation builds indexes over whole relations — engine work
	// the admission queue exists to bound, so it runs admitted like any
	// execution.
	release, err := sess.srv.admitExec(sess.ctx)
	if err != nil {
		return fail(err)
	}
	defer release()
	p, err := sess.srv.cat.Prepare(req.Query, join.Options{Mode: mode, SAOVars: req.SAO})
	if err != nil {
		return fail(err)
	}
	delete(sess.maint, req.ID) // the id now names this plain statement
	sess.stmts[req.ID] = p
	return Response{
		OK:          true,
		ID:          req.ID,
		CacheHit:    p.CacheHit(),
		IndexBuilds: p.IndexBuilds(),
		Vars:        p.Plan().Query().Vars(),
		SAO:         p.Plan().SAOVars(),
	}
}

// maintain creates a maintained statement: prepared like any other,
// plus a materialized result the catalog keeps patchable across
// append/delete. The initial full materialization is engine work and
// runs admitted.
func (sess *session) maintain(req Request) Response {
	if req.ID == "" || req.Query == "" {
		return fail(fmt.Errorf("maintain needs id and query"))
	}
	mode, err := core.ParseMode(req.Mode)
	if err != nil {
		return fail(err)
	}
	release, err := sess.srv.admitExec(sess.ctx)
	if err != nil {
		return fail(err)
	}
	defer release()
	opts := join.Options{
		Mode:    mode,
		SAOVars: req.SAO,
		Budget:  sess.budget,
		Context: sess.ctx,
	}
	var m *catalog.Maintained
	if dur := sess.srv.dur; dur != nil {
		// On a durable server a maintained id is global, durable state:
		// registration is logged and survives restarts. Re-maintaining an
		// existing id attaches to the recovered statement when the query
		// matches, and is an error when it does not — two texts cannot
		// durably share one id.
		if existing, ok := dur.MaintainedByID(req.ID); ok {
			if existing.Text() != req.Query {
				return fail(fmt.Errorf("maintained statement %q already exists with a different query", req.ID))
			}
			m = existing
			if _, err := m.Execute(opts); err != nil {
				return fail(err)
			}
		} else {
			m, err = dur.Maintain(req.ID, req.Query, opts)
		}
	} else {
		m, err = sess.srv.cat.Maintain(req.Query, opts)
	}
	if err != nil {
		return fail(err)
	}
	// One id names one statement: a maintained statement replaces any
	// plain prepared statement under the same id (and vice versa in
	// prepare), so exec's resolution order can never serve a stale one.
	delete(sess.stmts, req.ID)
	sess.maint[req.ID] = m
	last := m.LastRefresh()
	return Response{
		OK:          true,
		ID:          req.ID,
		IndexBuilds: last.Stats.IndexBuilds,
		Outputs:     last.Stats.Outputs,
		Resolutions: last.Stats.Resolutions,
		Vars:        m.Plan().Query().Vars(),
		SAO:         m.Plan().SAOVars(),
	}
}

// execMaintained refreshes a maintained statement (delta passes or
// recompute, under the session budget and context) and delivers its
// materialized result. The reported index_builds/resolutions are the
// refresh's own work — delta-sized under a trickle of writes, zero when
// nothing changed.
func (sess *session) execMaintained(req Request, m *catalog.Maintained) Response {
	release, err := sess.srv.admitExec(sess.ctx)
	if err != nil {
		return fail(err)
	}
	defer release()
	sess.srv.queries.Add(1)
	if testHookPreExec != nil {
		testHookPreExec()
	}

	res, err := m.Execute(join.Options{Budget: sess.budget, Context: sess.ctx})
	if err != nil {
		return fail(err)
	}
	last := m.LastRefresh()
	resp := Response{
		OK:          true,
		ID:          req.ID,
		Refresh:     last.Kind,
		Vars:        res.Vars,
		SAO:         res.SAO,
		Outputs:     res.Stats.Outputs,
		Resolutions: res.Stats.Resolutions,
		IndexBuilds: res.Stats.IndexBuilds,
	}
	tuples := res.Tuples
	if req.Limit > 0 && req.Limit < len(tuples) {
		tuples = tuples[:req.Limit]
	}
	if req.Count {
		resp.Count = fmt.Sprintf("%d", len(res.Tuples))
		return resp
	}
	if req.Buffer {
		resp.Tuples = tuples
		return resp
	}
	for _, tup := range tuples {
		if err := sess.send(tupleLine{Tuple: tup}); err != nil {
			return fail(err)
		}
	}
	return resp
}

func (sess *session) exec(req Request) Response {
	if m, ok := sess.maint[req.ID]; ok {
		return sess.execMaintained(req, m)
	}
	p, ok := sess.stmts[req.ID]
	if !ok {
		// A durable server's maintained statements outlive the session
		// that registered them — including restarts — so exec falls back
		// to the durable registry before giving up.
		if dur := sess.srv.dur; dur != nil {
			if m, ok := dur.MaintainedByID(req.ID); ok {
				return sess.execMaintained(req, m)
			}
		}
		return fail(fmt.Errorf("unknown statement %q", req.ID))
	}
	return sess.run(req, func(opts join.Options) (*join.Result, error) {
		return p.Execute(opts)
	}, func(opts join.Options) (Response, error) {
		count, stats, err := p.Count(opts)
		if err != nil {
			return Response{}, err
		}
		return Response{OK: true, ID: req.ID, Count: count.String(), Resolutions: stats.Resolutions}, nil
	})
}

// queryStatement resolves the prepared statement for a textual query
// request, reusing the session's memoized preparation when the catalog
// has not changed. builds is the index-construction charge for THIS
// request: the preparation cost on a cold resolve, 0 on reuse.
func (sess *session) queryStatement(req Request) (p *catalog.Prepared, builds int64, err error) {
	key := req.Query + "\x00" + req.Mode + "\x00" + strings.Join(req.SAO, ",")
	if gen := sess.srv.cat.Generation(); gen != sess.qgen || sess.qcache == nil {
		sess.qcache, sess.qgen = map[string]*catalog.Prepared{}, gen
	}
	if p, ok := sess.qcache[key]; ok {
		return p, 0, nil
	}
	mode, err := core.ParseMode(req.Mode)
	if err != nil {
		return nil, 0, err
	}
	p, err = sess.srv.cat.Prepare(req.Query, join.Options{Mode: mode, SAOVars: req.SAO})
	if err != nil {
		return nil, 0, err
	}
	if len(sess.qcache) < qcacheCap {
		sess.qcache[key] = p
	}
	return p, p.IndexBuilds(), nil
}

func (sess *session) query(req Request) Response {
	if req.Query == "" {
		return fail(fmt.Errorf("query needs query text"))
	}
	// Statement resolution is lazy so a cold preparation (index builds
	// over whole relations) happens inside run's admitted region, under
	// the same MaxConcurrent bound as the execution itself.
	var p *catalog.Prepared
	var builds int64
	resolve := func() error {
		if p != nil {
			return nil
		}
		var err error
		p, builds, err = sess.queryStatement(req)
		return err
	}
	resp := sess.run(req, func(opts join.Options) (*join.Result, error) {
		if err := resolve(); err != nil {
			return nil, err
		}
		return p.Execute(opts)
	}, func(opts join.Options) (Response, error) {
		if err := resolve(); err != nil {
			return Response{}, err
		}
		count, stats, err := p.Count(opts)
		if err != nil {
			return Response{}, err
		}
		return Response{OK: true, Count: count.String(), Resolutions: stats.Resolutions}, nil
	})
	if resp.OK {
		resp.IndexBuilds = builds
	}
	return resp
}

// run performs one admitted engine execution: enumeration (streamed or
// buffered) or counting. The request's limit is enforced at delivery so
// it composes with a session budget.
func (sess *session) run(req Request,
	exec func(join.Options) (*join.Result, error),
	count func(join.Options) (Response, error)) Response {

	release, err := sess.srv.admitExec(sess.ctx)
	if err != nil {
		return fail(err)
	}
	defer release()
	sess.srv.queries.Add(1)
	if testHookPreExec != nil {
		testHookPreExec()
	}

	opts := join.Options{
		Parallelism: sess.srv.defaultParallelism(),
		Budget:      sess.budget,
		Context:     sess.ctx,
	}
	if req.Count {
		resp, err := count(opts)
		if err != nil {
			return fail(err)
		}
		return resp
	}

	// The request limit is enforced at delivery through OnOutput in both
	// modes: the engine stops at the limit, so a limited request spends
	// only what it delivers from the shared session budget instead of
	// running to completion and draining it.
	delivered := 0
	var buffered [][]uint64
	var streamErr error
	if !req.Buffer {
		// Streaming through the bounded session writer means a stalled
		// peer surfaces as errSlowConsumer here: the engine stops at its
		// next output, releasing the admission slot instead of holding it
		// hostage to the peer's read rate.
		opts.OnOutput = func(tuple []uint64) bool {
			if streamErr = sess.send(tupleLine{Tuple: tuple}); streamErr != nil {
				return false
			}
			delivered++
			return req.Limit <= 0 || delivered < req.Limit
		}
	} else if req.Limit > 0 {
		opts.OnOutput = func(tuple []uint64) bool {
			buffered = append(buffered, append([]uint64(nil), tuple...))
			return len(buffered) < req.Limit
		}
	}

	res, err := exec(opts)
	if err != nil {
		return fail(err)
	}
	if streamErr != nil {
		return fail(streamErr)
	}
	resp := Response{
		OK:          true,
		ID:          req.ID,
		Vars:        res.Vars,
		SAO:         res.SAO,
		Outputs:     res.Stats.Outputs,
		Resolutions: res.Stats.Resolutions,
		IndexBuilds: res.Stats.IndexBuilds,
	}
	if req.Buffer {
		if req.Limit > 0 {
			resp.Tuples = buffered
		} else {
			resp.Tuples = res.Tuples
		}
	}
	return resp
}
