package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tetrisjoin/internal/catalog"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// The drain race, pinned: a mutation parked just before beginOp while
// Shutdown observes an idle server and completes must be REJECTED when
// it resumes — not applied to a catalog whose durable layer the caller
// is now free to close. Before the fix, beginOp never checked draining,
// so the append below would have gone through after Shutdown returned.
func TestDrainRejectsLateMutation(t *testing.T) {
	cat := catalog.New()
	srv := New(cat, Config{})
	drive(t, srv, loadTriangle, `{"op":"close"}`)
	gen := cat.Generation()

	entered := make(chan struct{})
	release := make(chan struct{})
	var armed atomic.Bool
	testHookBeginOp = func() {
		if armed.CompareAndSwap(true, false) {
			close(entered)
			<-release
		}
	}
	defer func() { testHookBeginOp = nil }()

	pr, pw := io.Pipe()
	var out bytes.Buffer
	sessDone := make(chan error, 1)
	go func() {
		err := srv.ServeSession(pr, &out)
		pr.Close()
		sessDone <- err
	}()

	armed.Store(true)
	fmt.Fprintln(pw, `{"op":"append","name":"R","tuples":[[7,8]]}`)
	<-entered // the mutation is now parked on the race window

	// The server looks idle (ops == 0), so Shutdown drains instantly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown of an idle server returned %v", err)
	}
	close(release) // the mutation resumes — after Shutdown completed
	pw.Close()
	<-sessDone

	if g := cat.Generation(); g != gen {
		t.Fatalf("mutation was applied after Shutdown returned: generation %d -> %d", gen, g)
	}
	var resp map[string]any
	line, _, _ := strings.Cut(out.String(), "\n")
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatalf("bad rejection line %q: %v", line, err)
	}
	if ok, _ := resp["ok"].(bool); ok {
		t.Fatalf("late mutation acknowledged: %v", resp)
	}
	if msg, _ := resp["error"].(string); !strings.Contains(msg, "draining") {
		t.Fatalf("late mutation rejected with %q, want a draining error", msg)
	}
	if srv.met.drainRejects.Value() == 0 {
		t.Error("drain rejection not counted")
	}
}

// Shutdown under a sustained mutation burst: every append is either
// acknowledged before Shutdown returns or rejected — the catalog must
// not move once Shutdown has completed its drain.
func TestShutdownUnderMutationBurst(t *testing.T) {
	cat := catalog.New()
	srv := New(cat, Config{})
	drive(t, srv, loadTriangle, `{"op":"close"}`)

	const workers = 8
	var wg sync.WaitGroup
	started := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr, pw := io.Pipe()
			var out bytes.Buffer
			done := make(chan struct{})
			go func() {
				srv.ServeSession(pr, &out)
				pr.Close()
				close(done)
			}()
			first := true
			for {
				if _, err := fmt.Fprintln(pw, `{"op":"append","name":"R","tuples":[[9,9]]}`); err != nil {
					break
				}
				if first {
					first = false
					started <- struct{}{}
				}
			}
			<-done
		}()
	}
	for i := 0; i < workers; i++ {
		<-started
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown under burst returned %v", err)
	}
	gen := cat.Generation()
	time.Sleep(50 * time.Millisecond)
	if g := cat.Generation(); g != gen {
		t.Fatalf("catalog moved after Shutdown returned: generation %d -> %d", gen, g)
	}
	wg.Wait()
}

// A full admission queue sheds instead of queueing: with one slot held
// and no wait queue, the second query fails fast with "overloaded" and
// the shed is counted.
func TestOverloadShedsFastFail(t *testing.T) {
	srv := New(catalog.New(), Config{MaxConcurrent: 1, MaxQueue: -1})
	defer srv.Close()
	drive(t, srv, loadTriangle, `{"op":"close"}`)

	enter := make(chan struct{}, 1)
	unblock := make(chan struct{})
	testHookPreExec = func() {
		select {
		case enter <- struct{}{}:
			<-unblock
		default:
		}
	}
	defer func() { testHookPreExec = nil }()

	pr, pw := io.Pipe()
	var out bytes.Buffer
	sessDone := make(chan error, 1)
	go func() {
		err := srv.ServeSession(pr, &out)
		pr.Close()
		sessDone <- err
	}()
	fmt.Fprintln(pw, `{"op":"query","query":"R(A,B)","buffer":true}`)
	<-enter // the slot is now held

	lines := drive(t, srv, `{"op":"query","query":"R(A,B)","buffer":true}`, `{"op":"stats"}`)
	if msg, _ := lines[0]["error"].(string); msg != "overloaded" {
		t.Fatalf("busy server answered %v, want the \"overloaded\" fast-fail", lines[0])
	}
	stats, _ := lines[1]["stats"].(map[string]any)
	if stats == nil || num(stats, "shed") != 1 {
		t.Fatalf("shed not counted in stats: %v", stats)
	}

	close(unblock)
	pw.Close()
	if err := <-sessDone; err != nil {
		t.Fatalf("slot-holding session failed: %v", err)
	}
	// The held execution itself completed fine.
	sc := bufio.NewScanner(&out)
	if !sc.Scan() {
		t.Fatal("no response from the slot-holding session")
	}
	var m map[string]any
	if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if ok, _ := m["ok"].(bool); !ok {
		t.Fatalf("slot-holding query failed: %v", m)
	}
}

// The tentpole guarantee, end to end: a consumer that stops reading its
// streamed result (a) is cut loose with the explicit slow-consumer
// farewell and (b) releases its engine slot, so a session queued behind
// it — visible in the admission queue-depth gauge while it waits —
// runs to completion instead of convoying behind a dead peer.
func TestSlowConsumerReleasesSlot(t *testing.T) {
	srv := New(catalog.New(), Config{
		MaxConcurrent:     1,
		OutputBuffer:      4,
		WriteStallTimeout: 300 * time.Millisecond,
	})
	defer srv.Close()

	// Enough rows that streaming outlives the 4-line buffer many times
	// over: the stall is structural, not a timing accident.
	var sb strings.Builder
	sb.WriteString(`{"op":"load","name":"Big","attrs":["a","b"],"depth":12,"tuples":[`)
	for i := 0; i < 512; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "[%d,%d]", i, i+1)
	}
	sb.WriteString(`]}`)
	drive(t, srv, sb.String(), `{"op":"close"}`)

	// Session A over a synchronous in-process conn (net.Pipe supports
	// write deadlines, buffers nothing): the peer sends one streaming
	// query and then never reads.
	serverConn, clientConn := net.Pipe()
	aDone := make(chan error, 1)
	go func() {
		err := srv.ServeSession(serverConn, serverConn)
		serverConn.Close()
		aDone <- err
	}()
	if _, err := fmt.Fprintln(clientConn, `{"op":"query","query":"Big(A,B)"}`); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "session A to take the execution slot", func() bool { return len(srv.admit) == 1 })

	// Session B queues behind A — provably, via the queue-depth gauge.
	bDone := make(chan []map[string]any, 1)
	go func() {
		var out bytes.Buffer
		in := strings.NewReader(`{"op":"query","query":"Big(A,B)","buffer":true,"limit":1}` + "\n")
		if err := srv.ServeSession(in, &out); err != nil {
			bDone <- nil
			return
		}
		var lines []map[string]any
		sc := bufio.NewScanner(&out)
		for sc.Scan() {
			var m map[string]any
			json.Unmarshal(sc.Bytes(), &m)
			lines = append(lines, m)
		}
		bDone <- lines
	}()
	waitFor(t, "session B to park in the admission queue", func() bool { return srv.waiting.Load() == 1 })

	// A's stall expires: it is declared slow, B gets the slot.
	linesB := <-bDone
	if linesB == nil {
		t.Fatal("session B failed")
	}
	if ok, _ := linesB[len(linesB)-1]["ok"].(bool); !ok {
		t.Fatalf("session B did not complete behind the slow consumer: %v", linesB[len(linesB)-1])
	}

	// The cut-off peer, finally reading, finds the explicit farewell as
	// the last line on its connection. It must start draining now: the
	// farewell is being written with a short grace deadline (net.Pipe
	// buffers nothing), and session A only ends once it lands.
	clientConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var last string
	sc := bufio.NewScanner(clientConn)
	for sc.Scan() {
		if s := strings.TrimSpace(sc.Text()); s != "" {
			last = s
		}
	}
	if err := <-aDone; !errors.Is(err, errSlowConsumer) {
		t.Fatalf("session A ended with %v, want errSlowConsumer", err)
	}
	if got := srv.met.slowConsumers.Value(); got != 1 {
		t.Errorf("slow_consumers = %d, want 1", got)
	}
	if d := srv.waiting.Load(); d != 0 {
		t.Errorf("admission queue depth = %d after B completed, want 0", d)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(last), &m); err != nil {
		t.Fatalf("last line %q not JSON: %v", last, err)
	}
	if ok, _ := m["ok"].(bool); ok || m["error"] != "slow consumer" {
		t.Fatalf("final line = %q, want the slow-consumer farewell", last)
	}
}

// A session cut by server close gets an explicit final line, not a bare
// EOF: the watcher expires the read deadline instead of closing the
// conn, leaving the write side alive for the farewell.
func TestServerCloseSendsFarewellLine(t *testing.T) {
	srv := New(catalog.New(), Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintln(conn, loadTriangle)
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatal("no load response")
	}

	srv.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if !sc.Scan() {
		t.Fatalf("no farewell line on server close (read error: %v)", sc.Err())
	}
	var m map[string]any
	if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
		t.Fatalf("bad farewell line %q: %v", sc.Text(), err)
	}
	if ok, _ := m["ok"].(bool); ok || m["error"] != "server closing" {
		t.Fatalf("farewell = %v, want {\"ok\":false,\"error\":\"server closing\"}", m)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
}

// An over-long request line answers with an error line and closes
// cleanly instead of killing the session with bufio.ErrTooLong and
// silence.
func TestOverlongRequestLineAnswered(t *testing.T) {
	defer func(old int) { maxRequestLine = old }(maxRequestLine)
	maxRequestLine = 1024

	srv := New(catalog.New(), Config{})
	defer srv.Close()
	lines := drive(t, srv, `{"op":"query","query":"`+strings.Repeat("R", 4096)+`"}`, `{"op":"stats"}`)
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1: %v", len(lines), lines)
	}
	if ok, _ := lines[0]["ok"].(bool); ok {
		t.Fatalf("oversized line acknowledged: %v", lines[0])
	}
	if msg, _ := lines[0]["error"].(string); !strings.Contains(msg, "exceeds 1024 bytes") {
		t.Fatalf("oversized line answered %q, want a line-cap error", msg)
	}
	if srv.met.overlong.Value() != 1 {
		t.Error("overlong request not counted")
	}
}

// /metrics serves Prometheus-parseable text including per-shape latency
// histograms, engine counters, and the overload instruments.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(catalog.New(), Config{})
	defer srv.Close()
	q := `{"op":"query","query":"R(A,B), R(B,C), R(A,C)","mode":"preloaded","buffer":true}`
	drive(t, srv, loadTriangle, q, q, `{"op":"close"}`)

	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()

	const shape = `shape="R(A,B),R(B,C),R(A,C)",kind="exec"`
	for _, want := range []string{
		"tetris_exec_seconds_bucket{" + shape + `,le="+Inf"} 2`,
		"tetris_exec_seconds_count{" + shape + "} 2",
		"tetris_exec_seconds_quantile{" + shape + `,quantile="0.99"}`,
		`tetris_request_seconds_count{op="query"} 2`,
		`tetris_request_seconds_count{op="load"} 1`,
		"tetris_admission_shed_total 0",
		"tetris_slow_consumers_total 0",
		"tetris_sessions_total 1",
		"tetris_queries_total 2",
		"tetris_index_builds_total",
		"tetris_plan_misses_total 1",
		"tetris_outputs_total 2",
		"tetris_shard_steals_total",
		"tetris_worker_busy 0",
		"# TYPE tetris_exec_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Every line is exposition-format shaped: a # comment or
	// "series[{labels}] <float>".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		if _, err := fmt.Sscanf(line[i+1:], "%g", new(float64)); err != nil {
			t.Fatalf("metrics line %q has non-numeric value: %v", line, err)
		}
		series := line[:i]
		if j := strings.IndexByte(series, '{'); j >= 0 && !strings.HasSuffix(series, "}") {
			t.Fatalf("unbalanced labels in metrics line %q", line)
		}
	}

	// The WAL family only appears on durable servers.
	if strings.Contains(body, "tetris_wal_") {
		t.Error("in-memory server exposes WAL metrics")
	}
}
