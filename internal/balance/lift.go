package balance

import (
	"fmt"
	"math"

	"tetrisjoin/internal/dyadic"
)

// Lift is the Balance map of Appendix F.5: it carries n-dimensional boxes
// into a (2n-2)-dimensional space in which the first n-2 base attributes
// A_1 … A_{n-2} are each split into a partition-prefix attribute A'_i and
// a within-layer suffix attribute A”_i. The lifted coordinate layout is
// exactly the splitting attribute order used by Tetris-…-LB:
//
//	(A'_1, …, A'_{n-2}, A_n, A_{n-1}, A''_{n-2}, …, A''_1)
//
// so that running the lifted problem with the identity SAO realizes
// Algorithm 5.
type Lift struct {
	n          int     // base dimensionality (n >= 3)
	baseDepths []uint8 // base per-dimension depths
	parts      []Partition
	depths     []uint8 // lifted per-dimension depths
}

// NewLift builds the Balance map for the given base depths and one
// balanced partition per split attribute; parts must have length n-2.
func NewLift(baseDepths []uint8, parts []Partition) (*Lift, error) {
	n := len(baseDepths)
	if n < 3 {
		return nil, fmt.Errorf("balance: Lift requires at least 3 dimensions, got %d", n)
	}
	if len(parts) != n-2 {
		return nil, fmt.Errorf("balance: need %d partitions, got %d", n-2, len(parts))
	}
	for i, p := range parts {
		if p.Depth() != baseDepths[i] {
			return nil, fmt.Errorf("balance: partition %d has depth %d, dimension has %d", i, p.Depth(), baseDepths[i])
		}
	}
	l := &Lift{n: n, baseDepths: baseDepths, parts: parts}
	l.depths = make([]uint8, 2*n-2)
	for i := 0; i < n-2; i++ {
		l.depths[i] = baseDepths[i]       // A'_i
		l.depths[2*n-3-i] = baseDepths[i] // A''_i
	}
	l.depths[n-2] = baseDepths[n-1] // A_n
	l.depths[n-1] = baseDepths[n-2] // A_{n-1}
	return l, nil
}

// LiftFromBoxes builds partitions from the component intervals of the
// given base boxes — target √|boxes| per Definition F.3 — and returns the
// corresponding Lift.
func LiftFromBoxes(baseDepths []uint8, boxes []dyadic.Box) (*Lift, error) {
	n := len(baseDepths)
	if n < 3 {
		return nil, fmt.Errorf("balance: Lift requires at least 3 dimensions, got %d", n)
	}
	target := int(math.Sqrt(float64(len(boxes))))
	parts := make([]Partition, n-2)
	for i := 0; i < n-2; i++ {
		comps := make([]dyadic.Interval, 0, len(boxes))
		for _, b := range boxes {
			comps = append(comps, b[i])
		}
		parts[i] = Balanced(comps, baseDepths[i], target)
	}
	return NewLift(baseDepths, parts)
}

// Dims returns the lifted dimensionality 2n-2.
func (l *Lift) Dims() int { return 2*l.n - 2 }

// Depths returns the lifted per-dimension depths.
func (l *Lift) Depths() []uint8 { return l.depths }

// BaseDims returns the base dimensionality n.
func (l *Lift) BaseDims() int { return l.n }

// Box lifts a base box into the 2n-2 dimensional space.
func (l *Lift) Box(b dyadic.Box) dyadic.Box {
	if len(b) != l.n {
		panic("balance: lifting box of wrong dimension")
	}
	out := make(dyadic.Box, 2*l.n-2)
	for i := 0; i < l.n-2; i++ {
		x1, x2 := l.parts[i].Split(b[i])
		out[i] = x1
		out[2*l.n-3-i] = x2
	}
	out[l.n-2] = b[l.n-1]
	out[l.n-1] = b[l.n-2]
	return out
}

// Point lifts a base tuple; the result is the box Balance(⟨t⟩) — the
// equivalence class of lifted unit points that decode to t. (The A'_i
// component is the partition element containing t_i and the A”_i
// component carries the remaining bits; trailing bits of the lifted
// space are unconstrained.)
func (l *Lift) Point(t []uint64) dyadic.Box {
	if len(t) != l.n {
		panic("balance: lifting point of wrong dimension")
	}
	b := make(dyadic.Box, l.n)
	for i, v := range t {
		b[i] = dyadic.Unit(v, l.baseDepths[i])
	}
	return l.Box(b)
}

// DecodePoint maps a lifted unit point back to the base tuple it
// represents: for each split attribute, the partition element containing
// the A'_i value supplies the leading bits and the high bits of the A”_i
// value supply the rest.
func (l *Lift) DecodePoint(lifted []uint64) []uint64 {
	if len(lifted) != 2*l.n-2 {
		panic("balance: decoding point of wrong dimension")
	}
	t := make([]uint64, l.n)
	for i := 0; i < l.n-2; i++ {
		d := l.baseDepths[i]
		elem := l.parts[i].ElementAt(lifted[i])
		rest := d - elem.Len
		t[i] = elem.Bits<<rest | lifted[2*l.n-3-i]>>elem.Len
		if rest == 0 {
			t[i] = elem.Bits
		}
	}
	t[l.n-1] = lifted[l.n-2]
	t[l.n-2] = lifted[l.n-1]
	return t
}
