// Package balance implements the load-balancing machinery of Section 4.5
// and Appendix F of the Tetris paper: balanced dimension partitions
// (Definitions F.2/F.3, Proposition F.4) and the Balance map that lifts an
// n-dimensional box cover problem into 2n-2 dimensions so that ordered
// geometric resolution achieves the Õ(|C|^{n/2} + Z) bound (Theorem 4.11).
package balance

import (
	"fmt"
	"sort"

	"tetrisjoin/internal/dyadic"
)

// Partition is a dimension partition (Definition F.2): a set of disjoint
// dyadic intervals whose union is the whole domain {0,1}^d, sorted by
// position. The trivial partition is {λ}.
type Partition struct {
	d     uint8
	elems []dyadic.Interval
}

// Trivial returns the one-element partition {λ} of a depth-d domain.
func Trivial(d uint8) Partition {
	return Partition{d: d, elems: []dyadic.Interval{dyadic.Lambda}}
}

// Depth returns the bit depth of the partitioned domain.
func (p Partition) Depth() uint8 { return p.d }

// Len returns the number of intervals in the partition.
func (p Partition) Len() int { return len(p.elems) }

// Elements returns the partition's intervals in domain order.
func (p Partition) Elements() []dyadic.Interval { return p.elems }

// Check verifies the partition invariant: prefix-free intervals covering
// the whole domain in order.
func (p Partition) Check() error {
	if len(p.elems) == 0 {
		return fmt.Errorf("balance: empty partition")
	}
	var next uint64
	for i, e := range p.elems {
		if err := e.Check(p.d); err != nil {
			return err
		}
		if e.Lo(p.d) != next {
			return fmt.Errorf("balance: gap or overlap before element %d (%s)", i, e)
		}
		next = e.Hi(p.d) + 1
	}
	last := p.elems[len(p.elems)-1]
	if last.Hi(p.d) != uint64(1)<<p.d-1 {
		return fmt.Errorf("balance: partition does not reach the end of the domain")
	}
	return nil
}

// Split decomposes a dyadic interval x relative to the partition into the
// pair (x1, x2) of the paper's s'(P), s”(P) (equations 19 and 20):
//
//   - if x is a prefix of some partition element (x ∈ prefixes(P)),
//     then x1 = x and x2 = λ;
//   - otherwise x = x̂·x2 for a unique partition element x̂ that is a
//     strict prefix of x, and x1 = x̂.
func (p Partition) Split(x dyadic.Interval) (x1, x2 dyadic.Interval) {
	elem := p.ElementAt(x.Lo(p.d))
	if x.Contains(elem) {
		// x is a (possibly equal) prefix of the element: x ∈ prefixes(P).
		return x, dyadic.Lambda
	}
	// elem is a strict prefix of x; the suffix has the remaining bits.
	sufLen := x.Len - elem.Len
	suffix := dyadic.Interval{Bits: x.Bits & (1<<sufLen - 1), Len: sufLen}
	return elem, suffix
}

// ElementAt returns the unique partition element whose interval contains
// the domain value v.
func (p Partition) ElementAt(v uint64) dyadic.Interval {
	i := sort.Search(len(p.elems), func(i int) bool { return p.elems[i].Hi(p.d) >= v })
	if i == len(p.elems) {
		panic(fmt.Sprintf("balance: value %d beyond partition", v))
	}
	return p.elems[i]
}

// countTrie counts, per prefix, how many component intervals lie strictly
// below it (are strict prefix-extensions).
type countTrie struct {
	children [2]*countTrie
	subtree  int // components equal to or extending this prefix
	at       int // components exactly equal to this prefix
}

func (t *countTrie) insert(iv dyadic.Interval) {
	nd := t
	nd.subtree++
	for i := int(iv.Len) - 1; i >= 0; i-- {
		bit := iv.Bits >> uint(i) & 1
		if nd.children[bit] == nil {
			nd.children[bit] = &countTrie{}
		}
		nd = nd.children[bit]
		nd.subtree++
	}
	nd.at++
}

// Balanced computes a balanced partition (Definition F.3) for the given
// multiset of dimension components at depth d: an interval is split while
// the number of components strictly inside it exceeds target. With
// target = ⌊√|C|⌋ this realizes Proposition F.4: at most Õ(√|C|) layers,
// each with at most √|C| strictly-contained boxes.
func Balanced(components []dyadic.Interval, d uint8, target int) Partition {
	if target < 1 {
		target = 1
	}
	root := &countTrie{}
	for _, iv := range components {
		root.insert(iv)
	}
	var elems []dyadic.Interval
	var walk func(nd *countTrie, iv dyadic.Interval)
	walk = func(nd *countTrie, iv dyadic.Interval) {
		strictBelow := 0
		if nd != nil {
			strictBelow = nd.subtree - nd.at
		}
		if strictBelow <= target || iv.Len == d {
			elems = append(elems, iv)
			return
		}
		var c0, c1 *countTrie
		if nd != nil {
			c0, c1 = nd.children[0], nd.children[1]
		}
		walk(c0, iv.Child(0))
		walk(c1, iv.Child(1))
	}
	walk(root, dyadic.Lambda)
	return Partition{d: d, elems: elems}
}

// StrictlyInside counts the components of the given list strictly inside
// interval x (the paper's |C_{⊂x}(X)|).
func StrictlyInside(components []dyadic.Interval, x dyadic.Interval) int {
	n := 0
	for _, c := range components {
		if x.Contains(c) && x != c {
			n++
		}
	}
	return n
}
