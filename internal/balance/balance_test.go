package balance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tetrisjoin/internal/dyadic"
)

func iv(s string) dyadic.Interval { return dyadic.MustParseInterval(s) }

func TestTrivialPartition(t *testing.T) {
	p := Trivial(4)
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	x1, x2 := p.Split(iv("0101"))
	if x1 != dyadic.Lambda || x2 != iv("0101") {
		t.Errorf("Split = %s, %s", x1, x2)
	}
	// λ itself is a prefix of the element λ.
	x1, x2 = p.Split(dyadic.Lambda)
	if x1 != dyadic.Lambda || x2 != dyadic.Lambda {
		t.Errorf("Split(λ) = %s, %s", x1, x2)
	}
}

func TestBalancedPartitionInvariant(t *testing.T) {
	const d = 6
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		m := 1 + r.Intn(200)
		comps := make([]dyadic.Interval, m)
		for i := range comps {
			l := uint8(r.Intn(d + 1))
			var b uint64
			if l > 0 {
				b = r.Uint64() & (1<<l - 1)
			}
			comps[i] = dyadic.Interval{Bits: b, Len: l}
		}
		target := 1 + r.Intn(20)
		p := Balanced(comps, d, target)
		if err := p.Check(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Definition F.3 condition: no element has more than target
		// components strictly inside it — unless the element is a unit
		// interval (cannot be split further).
		for _, e := range p.Elements() {
			if e.Len == d {
				continue
			}
			if got := StrictlyInside(comps, e); got > target {
				t.Errorf("trial %d: element %s has %d > %d strict components", trial, e, got, target)
			}
		}
	}
}

func TestBalancedPartitionSizeBound(t *testing.T) {
	// m singleton-ish components concentrated in one subtree: the number
	// of layers must stay O(√m · d), the Õ(√|C|) of Definition F.3.
	const d = 10
	var comps []dyadic.Interval
	for v := uint64(0); v < 256; v++ {
		comps = append(comps, dyadic.Unit(v, d))
	}
	target := 16 // √256
	p := Balanced(comps, d, target)
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	// Heavy intervals form ≤ m/target disjoint leaves plus ancestors;
	// partition ≤ 2·(heavy count). Generous check: ≤ 4·√m·d.
	if p.Len() > 4*16*d {
		t.Errorf("partition has %d elements", p.Len())
	}
}

func TestPartitionSplitCases(t *testing.T) {
	// Partition of a 4-bit domain: {00, 01, 10, 110, 111}.
	p := Partition{d: 4, elems: []dyadic.Interval{iv("00"), iv("01"), iv("10"), iv("110"), iv("111")}}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, x1, x2 string }{
		{"λ", "λ", "λ"},      // prefix of every element
		{"0", "0", "λ"},      // prefix of 00, 01
		{"00", "00", "λ"},    // equal to an element
		{"001", "00", "1"},   // strictly inside 00
		{"0010", "00", "10"}, // strictly inside 00, two extra bits
		{"11", "11", "λ"},    // prefix of 110, 111
		{"1101", "110", "1"}, // inside 110
	}
	for _, c := range cases {
		x1, x2 := p.Split(iv(c.x))
		if x1 != iv(c.x1) || x2 != iv(c.x2) {
			t.Errorf("Split(%s) = (%s,%s), want (%s,%s)", c.x, x1, x2, c.x1, c.x2)
		}
	}
}

func TestElementAt(t *testing.T) {
	p := Partition{d: 3, elems: []dyadic.Interval{iv("0"), iv("10"), iv("110"), iv("111")}}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 8; v++ {
		e := p.ElementAt(v)
		if !e.ContainsValue(v, 3) {
			t.Errorf("ElementAt(%d) = %s does not contain %d", v, e, v)
		}
	}
}

func randIv(r *rand.Rand, d uint8) dyadic.Interval {
	l := uint8(r.Intn(int(d) + 1))
	var b uint64
	if l > 0 {
		b = r.Uint64() & (1<<l - 1)
	}
	return dyadic.Interval{Bits: b, Len: l}
}

func TestQuickSplitReassembles(t *testing.T) {
	const d = 8
	r := rand.New(rand.NewSource(12))
	f := func() bool {
		var comps []dyadic.Interval
		for i := 0; i < 30; i++ {
			comps = append(comps, randIv(r, d))
		}
		p := Balanced(comps, d, 3)
		x := randIv(r, d)
		x1, x2 := p.Split(x)
		// Concatenating x1 and x2 must reproduce x.
		if x1.Len+x2.Len != x.Len {
			return false
		}
		reassembled := dyadic.Interval{Bits: x1.Bits<<x2.Len | x2.Bits, Len: x.Len}
		return reassembled == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func buildTestLift(t *testing.T, baseDepths []uint8, boxes []dyadic.Box) *Lift {
	t.Helper()
	l, err := LiftFromBoxes(baseDepths, boxes)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLiftDimensions(t *testing.T) {
	depths := []uint8{4, 5, 6}
	l := buildTestLift(t, depths, []dyadic.Box{dyadic.MustParseBox("01,001,1")})
	if l.Dims() != 4 {
		t.Fatalf("Dims = %d", l.Dims())
	}
	// Layout: (A'_1, A_3, A_2, A''_1).
	want := []uint8{4, 6, 5, 4}
	for i, d := range l.Depths() {
		if d != want[i] {
			t.Errorf("Depths[%d] = %d, want %d", i, d, want[i])
		}
	}
	if _, err := LiftFromBoxes([]uint8{4, 4}, nil); err == nil {
		t.Error("LiftFromBoxes accepted n=2")
	}
}

func TestLiftPointDecodeRoundTrip(t *testing.T) {
	const n = 4
	depths := []uint8{5, 6, 4, 7}
	r := rand.New(rand.NewSource(13))
	var boxes []dyadic.Box
	for i := 0; i < 100; i++ {
		b := make(dyadic.Box, n)
		for j := range b {
			b[j] = randIv(r, depths[j])
		}
		boxes = append(boxes, b)
	}
	l := buildTestLift(t, depths, boxes)
	for trial := 0; trial < 500; trial++ {
		t0 := make([]uint64, n)
		for j := range t0 {
			t0[j] = uint64(r.Intn(1 << depths[j]))
		}
		class := l.Point(t0)
		// Pick an arbitrary lifted unit point inside the class box and
		// decode it; we must get t0 back.
		lifted := make([]uint64, l.Dims())
		ld := l.Depths()
		for j, ivl := range class {
			free := ld[j] - ivl.Len
			lifted[j] = ivl.Bits<<free | (r.Uint64() & (1<<free - 1))
		}
		back := l.DecodePoint(lifted)
		for j := range t0 {
			if back[j] != t0[j] {
				t.Fatalf("trial %d: decode = %v, want %v (class %v)", trial, back, t0, class)
			}
		}
	}
}

// TestLiftPreservesCoverage verifies the key semantic fact behind
// Algorithm 5: a lifted unit point is covered by the lifted box set if
// and only if its decoded base point is covered by the base box set.
func TestLiftPreservesCoverage(t *testing.T) {
	const n = 3
	depths := []uint8{4, 4, 4}
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 30; trial++ {
		var boxes []dyadic.Box
		for i := 0; i < 20; i++ {
			b := make(dyadic.Box, n)
			for j := range b {
				b[j] = randIv(r, depths[j])
			}
			boxes = append(boxes, b)
		}
		l := buildTestLift(t, depths, boxes)
		lifted := make([]dyadic.Box, len(boxes))
		for i, b := range boxes {
			lifted[i] = l.Box(b)
		}
		ld := l.Depths()
		for probe := 0; probe < 200; probe++ {
			lp := make([]uint64, l.Dims())
			for j := range lp {
				lp[j] = uint64(r.Intn(1 << ld[j]))
			}
			base := l.DecodePoint(lp)
			baseCovered := false
			for _, b := range boxes {
				if b.ContainsPoint(base, depths) {
					baseCovered = true
					break
				}
			}
			liftCovered := false
			for _, b := range lifted {
				if b.ContainsPoint(lp, ld) {
					liftCovered = true
					break
				}
			}
			if baseCovered != liftCovered {
				t.Fatalf("trial %d probe %d: base covered=%v lifted covered=%v (point %v -> %v)",
					trial, probe, baseCovered, liftCovered, lp, base)
			}
		}
	}
}
