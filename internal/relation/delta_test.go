package relation

import (
	"testing"
)

func tuplesEqual(t *testing.T, got, want []Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tuples %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range got {
		if Compare(got[i], want[i]) != 0 {
			t.Fatalf("tuple %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func newRS(t *testing.T, tuples ...Tuple) *Relation {
	t.Helper()
	r := MustNewUniform("R", []string{"A", "B"}, 4)
	if err := r.InsertAll(tuples...); err != nil {
		t.Fatal(err)
	}
	r.Tuples()
	return r
}

func TestDeltaSinceSingleStep(t *testing.T) {
	r := newRS(t, Tuple{1, 1}, Tuple{2, 2})
	v0 := r.Version()
	r1, err := r.WithInserted(Tuple{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	d, ok := r1.DeltaSince(v0)
	if !ok {
		t.Fatal("DeltaSince across one step not reconstructible")
	}
	tuplesEqual(t, d.Inserted, []Tuple{{3, 3}})
	tuplesEqual(t, d.Deleted, nil)
	if d.Mixed() || d.Empty() || d.Len() != 1 {
		t.Fatalf("delta shape wrong: %+v", d)
	}
}

// A delete of a tuple that is not present must contribute nothing: the
// delta is effective, not a replay of the request.
func TestDeltaSinceDeleteAbsent(t *testing.T) {
	r := newRS(t, Tuple{1, 1})
	v0 := r.Version()
	r1, err := r.WithDeleted(Tuple{9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Version() == v0 {
		t.Fatal("derivation must still bump the version")
	}
	d, ok := r1.DeltaSince(v0)
	if !ok || !d.Empty() {
		t.Fatalf("absent delete: want empty delta, got %+v ok=%v", d, ok)
	}
	if r1.Len() != 1 {
		t.Fatalf("tuples changed: %v", r1.Tuples())
	}
}

// An append of an already-present tuple is likewise a no-op delta.
func TestDeltaSinceAppendDuplicate(t *testing.T) {
	r := newRS(t, Tuple{1, 1}, Tuple{2, 2})
	v0 := r.Version()
	r1, err := r.WithInserted(Tuple{2, 2}, Tuple{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	d, ok := r1.DeltaSince(v0)
	if !ok || !d.Empty() {
		t.Fatalf("duplicate append: want empty delta, got %+v ok=%v", d, ok)
	}
	if r1.Len() != 2 {
		t.Fatalf("duplicate append changed cardinality: %v", r1.Tuples())
	}
}

func TestDeltaSinceSameVersion(t *testing.T) {
	r := newRS(t, Tuple{1, 1})
	d, ok := r.DeltaSince(r.Version())
	if !ok || !d.Empty() {
		t.Fatalf("self delta: want empty, got %+v ok=%v", d, ok)
	}
}

// Composition across three and more chained versions: cancelling
// insert/delete pairs drop out, surviving changes accumulate, and every
// intermediate version remains a valid DeltaSince origin.
func TestDeltaSinceChained(t *testing.T) {
	r0 := newRS(t, Tuple{1, 1}, Tuple{2, 2})
	v0 := r0.Version()
	r1, err := r0.WithInserted(Tuple{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	v1 := r1.Version()
	r2, err := r1.WithDeleted(Tuple{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	v2 := r2.Version()
	r3, err := r2.WithInserted(Tuple{1, 1}, Tuple{4, 4})
	if err != nil {
		t.Fatal(err)
	}

	d, ok := r3.DeltaSince(v0)
	if !ok {
		t.Fatal("span v0..v3 not reconstructible")
	}
	// {1,1} was deleted then re-inserted: cancels. Net: +{3,3}, +{4,4}.
	tuplesEqual(t, d.Inserted, []Tuple{{3, 3}, {4, 4}})
	tuplesEqual(t, d.Deleted, nil)

	d, ok = r3.DeltaSince(v1)
	if !ok {
		t.Fatal("span v1..v3 not reconstructible")
	}
	tuplesEqual(t, d.Inserted, []Tuple{{4, 4}})
	tuplesEqual(t, d.Deleted, nil)

	d, ok = r3.DeltaSince(v2)
	if !ok {
		t.Fatal("span v2..v3 not reconstructible")
	}
	tuplesEqual(t, d.Inserted, []Tuple{{1, 1}, {4, 4}})
	tuplesEqual(t, d.Deleted, nil)

	// A mixed net delta: delete one original, keep an insert.
	r4, err := r3.WithDeleted(Tuple{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	d, ok = r4.DeltaSince(v0)
	if !ok {
		t.Fatal("span v0..v4 not reconstructible")
	}
	tuplesEqual(t, d.Inserted, []Tuple{{3, 3}, {4, 4}})
	tuplesEqual(t, d.Deleted, []Tuple{{2, 2}})
	if !d.Mixed() {
		t.Fatal("net delta should be mixed")
	}
}

// Unknown origins and severed lineage must report not-ok, never a wrong
// delta.
func TestDeltaSinceUnavailable(t *testing.T) {
	r := newRS(t, Tuple{1, 1})
	if _, ok := r.DeltaSince(r.Version() + 1000); ok {
		t.Fatal("unknown version must not be reconstructible")
	}
	v0 := r.Version()
	r1, err := r.WithInserted(Tuple{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// An in-place Insert severs the lineage: the delta from v0 is no
	// longer trustworthy and must be reported unavailable.
	r1.MustInsert(5, 5)
	if _, ok := r1.DeltaSince(v0); ok {
		t.Fatal("in-place Insert must sever the lineage")
	}
}

// The lineage window is bounded: spans inside the window compose, spans
// beyond it report unavailable instead of growing memory without bound.
func TestDeltaSinceWindow(t *testing.T) {
	r := newRS(t, Tuple{0, 0})
	origin := r.Version()
	cur := r
	versions := []uint64{origin}
	for i := 1; i <= maxLineage+8; i++ {
		next, err := cur.WithInserted(Tuple{uint64(i % 16), uint64(i / 16)})
		if err != nil {
			t.Fatal(err)
		}
		cur = next
		versions = append(versions, cur.Version())
	}
	if _, ok := cur.DeltaSince(origin); ok {
		t.Fatalf("span of %d steps exceeds the %d-step window and must be unavailable", maxLineage+8, maxLineage)
	}
	recent := versions[len(versions)-maxLineage+1]
	d, ok := cur.DeltaSince(recent)
	if !ok {
		t.Fatalf("span of %d steps inside the window must be reconstructible", maxLineage-2)
	}
	if len(d.Deleted) != 0 {
		t.Fatalf("append-only chain reported deletions: %+v", d)
	}
}
