package relation

import (
	"encoding/json"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	r := MustNew("R", []string{"A", "B"}, []uint8{4, 6})
	r.MustInsert(3, 7)
	r.MustInsert(1, 2)
	r.MustInsert(3, 7) // duplicate: normalized away

	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got, err := FromSnapshot(back)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "R" || got.Arity() != 2 || got.Depths()[1] != 6 {
		t.Fatalf("schema lost: %s arity=%d depths=%v", got.Name(), got.Arity(), got.Depths())
	}
	want := r.Tuples()
	have := got.Tuples()
	if len(have) != len(want) {
		t.Fatalf("tuple count %d, want %d", len(have), len(want))
	}
	for i := range want {
		if Compare(have[i], want[i]) != 0 {
			t.Fatalf("tuple %d = %v, want %v", i, have[i], want[i])
		}
	}
	if got.ID() == r.ID() || got.Version() == r.Version() {
		t.Fatalf("recovered relation reused stamps: id %d vs %d, version %d vs %d",
			got.ID(), r.ID(), got.Version(), r.Version())
	}
}

func TestFromSnapshotValidates(t *testing.T) {
	if _, err := FromSnapshot(Snapshot{Name: "X", Attrs: []string{"A"}, Depths: []uint8{2},
		Tuples: [][]uint64{{9}}}); err == nil {
		t.Fatal("out-of-domain tuple accepted")
	}
	if _, err := FromSnapshot(Snapshot{Name: "X", Attrs: []string{"A", "A"}, Depths: []uint8{2, 2}}); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if _, err := FromSnapshot(Snapshot{Name: "X", Attrs: []string{"A", "B"}, Depths: []uint8{2, 2},
		Tuples: [][]uint64{{1}}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}
