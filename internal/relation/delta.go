package relation

import "sort"

// Delta is the symmetric difference between two versions of one
// relation lineage: the tuples present in the newer version but not the
// older (Inserted) and vice versa (Deleted). Both slices are sorted in
// Compare order, deduplicated, and disjoint; tuples are shared with the
// versions they came from and must not be mutated.
//
// Deltas are *effective*: a WithInserted of a tuple already present, or
// a WithDeleted of a tuple already absent, contributes nothing. The
// incremental-maintenance pipeline depends on this — a delta index layer
// built from Inserted/Deleted must describe exactly the tuples whose
// membership changed, or its gap certificates would be wrong.
type Delta struct {
	Inserted []Tuple
	Deleted  []Tuple
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool { return len(d.Inserted) == 0 && len(d.Deleted) == 0 }

// Len returns the total number of changed tuples.
func (d Delta) Len() int { return len(d.Inserted) + len(d.Deleted) }

// Mixed reports whether the delta carries both insertions and
// deletions. The catalog's maintenance patch rule handles pure deltas
// per step; a mixed one (an append and a delete folded into one
// DeltaSince span) triggers its exact fallback to full recomputation.
func (d Delta) Mixed() bool { return len(d.Inserted) > 0 && len(d.Deleted) > 0 }

// lineageStep records one derivation edge of a relation's version
// history: the version it was derived from and the effective tuple
// changes of that step. Steps carry no pointer to the parent relation,
// so old versions stay garbage-collectable; a derived relation keeps a
// bounded suffix of its ancestry's steps (maxLineage), beyond which
// DeltaSince reports the span as unavailable and callers fall back to
// treating the relation as wholly new.
type lineageStep struct {
	from, to uint64
	ins, del []Tuple
}

// maxLineage bounds how many derivation steps a relation retains. The
// cap trades DeltaSince reach against memory: each retained step holds
// only its changed tuples, and versions older than the window simply
// stop being delta-reachable (the catalog then recomputes rather than
// patches). 64 comfortably covers any realistic refresh cadence.
const maxLineage = 64

// DeltaSince returns the effective tuple changes from the given older
// version of this relation's lineage to the receiver, composing the
// recorded derivation steps. The second result is false when the span
// is not reconstructible: version is not an ancestor within the
// retained lineage window, or the lineage was severed by an in-place
// Insert.
func (r *Relation) DeltaSince(version uint64) (Delta, bool) {
	if version == r.version {
		return Delta{}, true
	}
	start := -1
	for i := len(r.lineage) - 1; i >= 0; i-- {
		if r.lineage[i].from == version {
			start = i
			break
		}
	}
	if start < 0 {
		return Delta{}, false
	}
	// Compose the steps oldest-first. state maps a tuple key to its net
	// membership change relative to the base version: +1 inserted, -1
	// deleted; cancelling changes drop out. Each step's deltas are
	// effective relative to its immediate parent, which is what makes
	// the composition sound: a step can only insert a tuple its parent
	// lacked (so either base-absent → net insert, or previously deleted
	// → cancellation) and only delete a tuple its parent had.
	state := map[string]int{}
	byKey := map[string]Tuple{}
	for _, step := range r.lineage[start:] {
		for _, t := range step.ins {
			k := tupleKey(t)
			byKey[k] = t
			if state[k] < 0 {
				delete(state, k)
			} else {
				state[k] = 1
			}
		}
		for _, t := range step.del {
			k := tupleKey(t)
			byKey[k] = t
			if state[k] > 0 {
				delete(state, k)
			} else {
				state[k] = -1
			}
		}
	}
	var d Delta
	for k, s := range state {
		if s > 0 {
			d.Inserted = append(d.Inserted, byKey[k])
		} else {
			d.Deleted = append(d.Deleted, byKey[k])
		}
	}
	sortTuples(d.Inserted)
	sortTuples(d.Deleted)
	return d, true
}

// appendLineage records a derivation step on a freshly derived version,
// inheriting the parent's retained steps up to the window cap. The
// parent's slice is copied, never aliased: two versions derived from
// one parent must not race appending into shared backing storage.
func (r *Relation) appendLineage(parent *Relation, ins, del []Tuple) {
	keep := parent.lineage
	if len(keep) >= maxLineage {
		keep = keep[len(keep)-maxLineage+1:]
	}
	lineage := make([]lineageStep, 0, len(keep)+1)
	lineage = append(lineage, keep...)
	r.lineage = append(lineage, lineageStep{
		from: parent.version,
		to:   r.version,
		ins:  ins,
		del:  del,
	})
}

// tupleKey encodes a tuple's values as a byte string for map keys.
func tupleKey(t Tuple) string {
	buf := make([]byte, 0, len(t)*8)
	for _, v := range t {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(buf)
}

func sortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return Compare(ts[i], ts[j]) < 0 })
}
