package relation

import (
	"hash/fnv"
	"sort"
)

// AttrStats summarizes the value distribution of one attribute of a
// relation snapshot — the per-column half of the planner's cheap
// statistics.
type AttrStats struct {
	// Distinct is the number of distinct values the attribute takes.
	Distinct int
	// MaxFreq is the degree of the attribute's most frequent value: the
	// heavy-hitter signal. For a uniform column MaxFreq ≈ Count/Distinct;
	// a hub value pushes it toward Count.
	MaxFreq int
	// HeavyValue is the value achieving MaxFreq (the smallest such value
	// when tied, so the statistic is deterministic).
	HeavyValue uint64
	// DepthOccupancy[l] is the number of distinct l-bit prefixes among
	// the attribute's values, for l = 0..depth: the dyadic-depth
	// histogram. DepthOccupancy[0] is 1 (or 0 for an empty relation) and
	// DepthOccupancy[depth] equals Distinct. A column whose values
	// cluster in few dyadic cells keeps low occupancy deep into the
	// tree; a spread-out column saturates min(Distinct, 2^l) early.
	DepthOccupancy []int
}

// HeavyFrac returns MaxFreq as a fraction of the snapshot cardinality:
// the share of tuples carried by the attribute's heaviest value.
func (a AttrStats) heavyFrac(count int) float64 {
	if count == 0 {
		return 0
	}
	return float64(a.MaxFreq) / float64(count)
}

// Stats is the per-snapshot statistics summary the planner scores SAO
// candidates with. It is a pure function of the tuple set — computed
// lazily on first use and cached on the relation keyed by Version(), so
// repeated plannings of one snapshot never rescan tuples.
type Stats struct {
	// Version is the snapshot stamp the statistics describe.
	Version uint64
	// Count is the snapshot cardinality (deduplicated).
	Count int
	// Attrs holds per-attribute statistics in schema order.
	Attrs []AttrStats
	// JointOccupancy[l] is the number of distinct tuples after truncating
	// every attribute to its top min(l, depth) bits: the joint
	// dyadic-depth histogram. A diagonal or block-clustered relation has
	// JointOccupancy growing like a single column's occupancy (2^l)
	// while a product-like relation grows like the occupancy product —
	// the clustering signal behind dyadic-index selection.
	JointOccupancy []int
}

// HeavyFrac returns the largest per-attribute heavy-hitter fraction:
// MaxFreq/Count of the most skewed column, 0 for an empty snapshot.
func (s *Stats) HeavyFrac() float64 {
	frac := 0.0
	for _, a := range s.Attrs {
		if f := a.heavyFrac(s.Count); f > frac {
			frac = f
		}
	}
	return frac
}

// ClusterRatio measures how block-clustered the snapshot is at the given
// dyadic level: JointOccupancy[l] divided by what independent columns
// would occupy (the product of per-attribute occupancies, capped at
// Count). 1 means product-like spread; a diagonal of n points at midway
// depth scores around 1/sqrt(n). Returns 1 for trivial snapshots.
func (s *Stats) ClusterRatio(l int) float64 {
	if s.Count <= 1 || l <= 0 {
		return 1
	}
	if l >= len(s.JointOccupancy) {
		l = len(s.JointOccupancy) - 1
	}
	expected := 1.0
	for _, a := range s.Attrs {
		li := l
		if li >= len(a.DepthOccupancy) {
			li = len(a.DepthOccupancy) - 1
		}
		expected *= float64(a.DepthOccupancy[li])
		if expected > float64(s.Count) {
			expected = float64(s.Count)
		}
	}
	if expected <= 0 {
		return 1
	}
	return float64(s.JointOccupancy[l]) / expected
}

// Fingerprint hashes the statistics content. Two snapshots with equal
// fingerprints are statistically indistinguishable to the planner; the
// catalog folds it into the plan-cache key so a plan chosen from stale
// statistics can never be served for a snapshot with fresh ones.
func (s *Stats) Fingerprint() uint64 {
	h := fnv.New64a()
	put := func(v uint64) {
		var buf [8]byte
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(s.Count))
	for _, a := range s.Attrs {
		put(uint64(a.Distinct))
		put(uint64(a.MaxFreq))
		put(a.HeavyValue)
	}
	for _, o := range s.JointOccupancy {
		put(uint64(o))
	}
	return h.Sum64()
}

// Stats returns the snapshot's statistics, computing them on first use
// and caching the result keyed by Version(). The computation costs one
// pass per attribute over a sorted column copy plus one pass over the
// (already sorted) tuples — O(N·k·log N) once per snapshot, amortized to
// zero for the catalog's immutable published versions.
func (r *Relation) Stats() *Stats {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	if r.stats != nil && r.stats.Version == r.version {
		return r.stats
	}
	r.stats = r.computeStats()
	return r.stats
}

func (r *Relation) computeStats() *Stats {
	r.normalize()
	s := &Stats{Version: r.version, Count: len(r.tuples)}
	s.Attrs = make([]AttrStats, len(r.attrs))
	col := make([]uint64, len(r.tuples))
	for ai := range r.attrs {
		d := int(r.depths[ai])
		for ti, t := range r.tuples {
			col[ti] = t[ai]
		}
		sort.Slice(col, func(i, j int) bool { return col[i] < col[j] })
		a := &s.Attrs[ai]
		a.DepthOccupancy = make([]int, d+1)
		if len(col) == 0 {
			continue
		}
		// One pass over the sorted column: runs give Distinct and the
		// heavy hitter; the first-differing-bit level of each adjacent
		// distinct pair gives the occupancy histogram (occupancy at level
		// l = 1 + number of boundaries visible at l).
		a.Distinct = 1
		a.MaxFreq = 1
		a.HeavyValue = col[0]
		run := 1
		boundaries := make([]int, d+1) // boundaries[l]: pairs first differing at bit level l (1-based)
		for i := 1; i < len(col); i++ {
			if col[i] == col[i-1] {
				run++
				if run > a.MaxFreq {
					a.MaxFreq = run
					a.HeavyValue = col[i]
				}
				continue
			}
			run = 1
			a.Distinct++
			boundaries[diffLevel(col[i-1], col[i], d)]++
		}
		occ := 1
		a.DepthOccupancy[0] = 1
		for l := 1; l <= d; l++ {
			occ += boundaries[l]
			a.DepthOccupancy[l] = occ
		}
	}
	// Joint occupancy: tuples are sorted lexicographically and prefix
	// truncation is monotone, so tuples sharing a truncation are
	// contiguous — adjacent comparisons count every boundary.
	maxDepth := 0
	for _, d := range r.depths {
		if int(d) > maxDepth {
			maxDepth = int(d)
		}
	}
	s.JointOccupancy = make([]int, maxDepth+1)
	if len(r.tuples) == 0 {
		return s
	}
	boundaries := make([]int, maxDepth+1)
	for i := 1; i < len(r.tuples); i++ {
		lvl := maxDepth + 1
		for ai := range r.attrs {
			x, y := r.tuples[i-1][ai], r.tuples[i][ai]
			if x == y {
				continue
			}
			if l := diffLevel(x, y, int(r.depths[ai])); l < lvl {
				lvl = l
			}
		}
		if lvl <= maxDepth {
			boundaries[lvl]++
		}
	}
	occ := 1
	s.JointOccupancy[0] = 1
	for l := 1; l <= maxDepth; l++ {
		occ += boundaries[l]
		s.JointOccupancy[l] = occ
	}
	return s
}

// diffLevel returns the smallest prefix length l (1..d) at which the
// top-l-bit prefixes of x and y differ. x and y must differ and fit in
// d bits.
func diffLevel(x, y uint64, d int) int {
	xor := x ^ y
	// Highest set bit position (0-based from LSB).
	hi := 0
	for b := xor; b > 1; b >>= 1 {
		hi++
	}
	return d - hi
}
