package relation

import "fmt"

// Snapshot is the serializable state of one relation version: schema
// plus the full, normalized tuple set. It deliberately omits the
// process-local ID/Version stamps and the lineage window — stamps are
// minted from process-global counters and are meaningless across
// restarts, and lineage describes derivation history that a recovered
// relation, reconstructed whole, does not have. JSON-tagged for the
// durable catalog's checkpoint files.
type Snapshot struct {
	Name   string     `json:"name"`
	Attrs  []string   `json:"attrs"`
	Depths []uint8    `json:"depths"`
	Tuples [][]uint64 `json:"tuples,omitempty"`
}

// Snapshot captures the relation's current state for serialization.
// The tuple values are shared with the relation (immutable once
// published); the slices holding them are fresh.
func (r *Relation) Snapshot() Snapshot {
	tuples := r.Tuples()
	out := make([][]uint64, len(tuples))
	for i, t := range tuples {
		out[i] = t
	}
	return Snapshot{
		Name:   r.name,
		Attrs:  append([]string(nil), r.attrs...),
		Depths: append([]uint8(nil), r.depths...),
		Tuples: out,
	}
}

// FromSnapshot reconstructs a relation from a snapshot, validating the
// schema and every tuple exactly like the original construction path
// did. The result carries fresh ID/Version stamps: recovered state is
// re-stamped, never confused with any pre-crash in-process version.
func FromSnapshot(s Snapshot) (*Relation, error) {
	r, err := New(s.Name, s.Attrs, s.Depths)
	if err != nil {
		return nil, err
	}
	for _, t := range s.Tuples {
		if err := r.Insert(t...); err != nil {
			return nil, fmt.Errorf("relation: snapshot of %s: %w", s.Name, err)
		}
	}
	r.normalize()
	return r, nil
}
