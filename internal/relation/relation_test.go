package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name   string
		attrs  []string
		depths []uint8
	}{
		{"empty", nil, nil},
		{"mismatch", []string{"A", "B"}, []uint8{4}},
		{"dup", []string{"A", "A"}, []uint8{4, 4}},
		{"blank", []string{""}, []uint8{4}},
		{"zero-depth", []string{"A"}, []uint8{0}},
		{"too-deep", []string{"A"}, []uint8{63}},
	}
	for _, c := range cases {
		if _, err := New(c.name, c.attrs, c.depths); err == nil {
			t.Errorf("%s: New accepted invalid schema", c.name)
		}
	}
	if _, err := New("ok", []string{"A", "B"}, []uint8{4, 8}); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

func TestInsertAndDedup(t *testing.T) {
	r := MustNewUniform("R", []string{"A", "B"}, 4)
	r.MustInsert(3, 1)
	r.MustInsert(1, 2)
	r.MustInsert(3, 1) // duplicate
	r.MustInsert(0, 0)
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	got := r.Tuples()
	want := []Tuple{{0, 0}, {1, 2}, {3, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tuples = %v, want %v", got, want)
	}
	if err := r.Insert(16, 0); err == nil {
		t.Error("out-of-domain value accepted")
	}
	if err := r.Insert(1); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestContains(t *testing.T) {
	r := MustNewUniform("R", []string{"A", "B"}, 4)
	r.MustInsert(3, 1)
	r.MustInsert(1, 2)
	if !r.Contains(3, 1) || !r.Contains(1, 2) {
		t.Error("Contains missed present tuples")
	}
	if r.Contains(3, 2) || r.Contains(0, 0) {
		t.Error("Contains reported absent tuples")
	}
}

func TestProject(t *testing.T) {
	r := MustNewUniform("R", []string{"A", "B", "C"}, 3)
	r.MustInsert(1, 2, 3)
	r.MustInsert(1, 2, 4)
	r.MustInsert(5, 6, 7)
	p, err := r.Project("P", []string{"B", "A"})
	if err != nil {
		t.Fatal(err)
	}
	want := []Tuple{{2, 1}, {6, 5}}
	if !reflect.DeepEqual(p.Tuples(), want) {
		t.Errorf("Project = %v, want %v", p.Tuples(), want)
	}
	if _, err := r.Project("P", []string{"Z"}); err == nil {
		t.Error("Project accepted unknown attribute")
	}
}

func TestReordered(t *testing.T) {
	r := MustNewUniform("R", []string{"A", "B"}, 3)
	r.MustInsert(1, 7)
	r.MustInsert(2, 0)
	got, err := r.Reordered([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []Tuple{{0, 2}, {7, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Reordered = %v, want %v", got, want)
	}
	if _, err := r.Reordered([]int{0, 0}); err == nil {
		t.Error("non-permutation order accepted")
	}
	if _, err := r.Reordered([]int{0}); err == nil {
		t.Error("short order accepted")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{Tuple{1, 2}, Tuple{1, 2}, 0},
		{Tuple{1, 2}, Tuple{1, 3}, -1},
		{Tuple{2, 0}, Tuple{1, 9}, 1},
		{Tuple{1}, Tuple{1, 0}, -1},
		{Tuple{1, 0}, Tuple{1}, 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestClone(t *testing.T) {
	r := MustNewUniform("R", []string{"A"}, 4)
	r.MustInsert(5)
	c := r.Clone("C")
	c.MustInsert(6)
	if r.Len() != 1 || c.Len() != 2 {
		t.Error("Clone is not independent")
	}
	if c.Name() != "C" {
		t.Error("Clone name")
	}
}

func TestQuickInsertOrderIrrelevant(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	f := func() bool {
		var tuples []Tuple
		for i := 0; i < 20; i++ {
			tuples = append(tuples, Tuple{uint64(r.Intn(8)), uint64(r.Intn(8))})
		}
		a := MustNewUniform("A", []string{"X", "Y"}, 3)
		b := MustNewUniform("B", []string{"X", "Y"}, 3)
		for _, t := range tuples {
			a.MustInsert(t...)
		}
		perm := r.Perm(len(tuples))
		for _, i := range perm {
			b.MustInsert(tuples[i]...)
		}
		return reflect.DeepEqual(a.Tuples(), b.Tuples())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncoder(t *testing.T) {
	e := NewEncoder()
	for _, v := range []string{"carol", "alice", "bob", "alice"} {
		e.Add(v)
	}
	d := e.Freeze()
	if d != 2 {
		t.Errorf("Freeze depth = %d, want 2", d)
	}
	if e.Len() != 3 {
		t.Errorf("Len = %d", e.Len())
	}
	// Order preserved: alice < bob < carol.
	a, _ := e.Code("alice")
	b, _ := e.Code("bob")
	c, _ := e.Code("carol")
	if !(a < b && b < c) {
		t.Errorf("codes not ordered: %d %d %d", a, b, c)
	}
	v, err := e.Value(b)
	if err != nil || v != "bob" {
		t.Errorf("Value(%d) = %q, %v", b, v, err)
	}
	if _, err := e.Code("mallory"); err == nil {
		t.Error("unknown value encoded")
	}
	if _, err := e.Value(99); err == nil {
		t.Error("out-of-range code decoded")
	}
	defer func() {
		if recover() == nil {
			t.Error("Add after Freeze did not panic")
		}
	}()
	e.Add("late")
}

func TestEncoderEmptyAndSingle(t *testing.T) {
	e := NewEncoder()
	if d := e.Freeze(); d != 1 {
		t.Errorf("empty encoder depth = %d, want 1", d)
	}
	e2 := NewEncoder()
	e2.Add("only")
	if d := e2.Freeze(); d != 1 {
		t.Errorf("single-value encoder depth = %d, want 1", d)
	}
}

func TestVersioningAndIngest(t *testing.T) {
	r := MustNewUniform("R", []string{"a", "b"}, 4)
	if r.ID() == 0 || r.Version() == 0 {
		t.Fatalf("fresh relation has zero identity: id=%d version=%d", r.ID(), r.Version())
	}
	r2 := MustNewUniform("R", []string{"a", "b"}, 4)
	if r2.ID() == r.ID() {
		t.Fatalf("two relations share ID %d", r.ID())
	}

	v0 := r.Version()
	r.MustInsert(1, 2)
	if r.Version() == v0 {
		t.Error("Insert did not bump the version stamp")
	}

	base := r
	v1, err := base.WithInserted(Tuple{2, 3}, Tuple{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v1.ID() != base.ID() {
		t.Errorf("derived version changed identity: %d vs %d", v1.ID(), base.ID())
	}
	if v1.Version() == base.Version() {
		t.Error("derived version shares the parent's stamp")
	}
	if base.Len() != 1 || v1.Len() != 2 {
		t.Errorf("copy-on-write violated: base has %d tuples, derived %d (want 1, 2)", base.Len(), v1.Len())
	}

	v2, err := v1.WithDeleted(Tuple{1, 2}, Tuple{9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Len() != 2 || v2.Len() != 1 {
		t.Errorf("delete mutated parent: parent %d tuples, derived %d (want 2, 1)", v1.Len(), v2.Len())
	}
	if !v2.Contains(2, 3) || v2.Contains(1, 2) {
		t.Errorf("WithDeleted kept the wrong tuples: %v", v2.Tuples())
	}

	// Error paths: bad arity and out-of-domain values must not produce a
	// version.
	if _, err := v1.WithInserted(Tuple{1}); err == nil {
		t.Error("WithInserted accepted a short tuple")
	}
	if _, err := v1.WithInserted(Tuple{1 << 10, 0}); err == nil {
		t.Error("WithInserted accepted an out-of-domain value")
	}
	if _, err := v1.WithDeleted(Tuple{1}); err == nil {
		t.Error("WithDeleted accepted a short tuple")
	}
}
