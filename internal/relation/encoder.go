package relation

import (
	"fmt"
	"math/bits"
	"sort"
)

// Encoder maps arbitrary ordered string values onto a dense integer
// domain [0, 2^d), preserving order, so that non-integral data can enter
// the dyadic framework. Build one per attribute, add all values, then
// Freeze to obtain codes.
type Encoder struct {
	values []string
	codes  map[string]uint64
	frozen bool
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{codes: map[string]uint64{}} }

// Add registers a value. It panics if the encoder is frozen.
func (e *Encoder) Add(v string) {
	if e.frozen {
		panic("relation: Add on frozen Encoder")
	}
	if _, ok := e.codes[v]; !ok {
		e.codes[v] = 0
		e.values = append(e.values, v)
	}
}

// Freeze assigns order-preserving codes and returns the bit depth needed
// to represent them.
func (e *Encoder) Freeze() uint8 {
	if !e.frozen {
		sort.Strings(e.values)
		for i, v := range e.values {
			e.codes[v] = uint64(i)
		}
		e.frozen = true
	}
	n := len(e.values)
	if n <= 1 {
		return 1
	}
	return uint8(bits.Len(uint(n - 1)))
}

// Code returns the code of a registered value.
func (e *Encoder) Code(v string) (uint64, error) {
	if !e.frozen {
		return 0, fmt.Errorf("relation: Code before Freeze")
	}
	c, ok := e.codes[v]
	if !ok {
		return 0, fmt.Errorf("relation: value %q not registered", v)
	}
	return c, nil
}

// Value returns the value for a code.
func (e *Encoder) Value(code uint64) (string, error) {
	if !e.frozen {
		return "", fmt.Errorf("relation: Value before Freeze")
	}
	if code >= uint64(len(e.values)) {
		return "", fmt.Errorf("relation: code %d out of range", code)
	}
	return e.values[code], nil
}

// Len returns the number of distinct registered values.
func (e *Encoder) Len() int { return len(e.values) }
