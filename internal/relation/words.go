package relation

import "fmt"

// AppendWords appends the relation's tuple set to dst as a flat word
// slab: a count word followed by n·k attribute values in schema order,
// tuples in sorted order. This is the segment serialization form; it
// round-trips through FromWords without re-sorting or re-validating
// per-tuple on the happy path beyond a linear scan.
func (r *Relation) AppendWords(dst []uint64) []uint64 {
	r.normalize()
	dst = append(dst, uint64(len(r.tuples)))
	for _, t := range r.tuples {
		dst = append(dst, t...)
	}
	return dst
}

// FromWords rebuilds a relation from an AppendWords slab. The tuple
// headers alias words directly — no per-value copy — so the caller
// must not mutate words afterwards (segment loads never do: the slab
// is the loaded file buffer). The slab is validated structurally:
// exact length, per-attribute domain bounds, and strictly increasing
// lexicographic order (sorted and deduplicated), so a corrupt slab is
// rejected rather than poisoning query results.
func FromWords(name string, attrs []string, depths []uint8, words []uint64) (*Relation, error) {
	r, err := New(name, attrs, depths)
	if err != nil {
		return nil, err
	}
	if len(words) == 0 {
		return nil, fmt.Errorf("relation: %s: empty tuple slab", name)
	}
	n := words[0]
	k := uint64(len(attrs))
	if uint64(len(words)-1) != n*k || (k != 0 && n != uint64(len(words)-1)/k) {
		return nil, fmt.Errorf("relation: %s: slab has %d words, want %d tuples of arity %d", name, len(words)-1, n, k)
	}
	body := words[1:]
	tuples := make([]Tuple, n)
	for i := range tuples {
		t := Tuple(body[uint64(i)*k : uint64(i+1)*k : uint64(i+1)*k])
		for j, v := range t {
			if depths[j] < 64 && v >= 1<<depths[j] {
				return nil, fmt.Errorf("relation: %s tuple %d: value %d exceeds depth-%d domain", name, i, v, depths[j])
			}
		}
		if i > 0 && Compare(tuples[i-1], t) >= 0 {
			return nil, fmt.Errorf("relation: %s: slab not strictly sorted at tuple %d", name, i)
		}
		tuples[i] = t
	}
	r.tuples = tuples
	r.sorted = true
	return r, nil
}
