package relation

import "testing"

func TestStatsBasic(t *testing.T) {
	r := MustNewUniform("R", []string{"A", "B"}, 4)
	// Heavy hub 3 on A (degree 5), spread B.
	for b := uint64(0); b < 5; b++ {
		r.MustInsert(3, b)
	}
	r.MustInsert(7, 1)
	r.MustInsert(9, 2)
	s := r.Stats()
	if s.Count != 7 {
		t.Fatalf("Count = %d, want 7", s.Count)
	}
	a := s.Attrs[0]
	if a.Distinct != 3 || a.MaxFreq != 5 || a.HeavyValue != 3 {
		t.Fatalf("A stats = %+v, want distinct 3, maxfreq 5, heavy 3", a)
	}
	b := s.Attrs[1]
	if b.Distinct != 5 || b.MaxFreq != 2 {
		t.Fatalf("B stats = %+v, want distinct 5, maxfreq 2", b)
	}
	if got := a.DepthOccupancy[4]; got != a.Distinct {
		t.Fatalf("full-depth occupancy %d != distinct %d", got, a.Distinct)
	}
	// Values 3 (0011), 7 (0111), 9 (1001): top-1-bit prefixes {0,1},
	// top-2-bit prefixes {00,01,10}.
	if a.DepthOccupancy[1] != 2 || a.DepthOccupancy[2] != 3 {
		t.Fatalf("A occupancy = %v", a.DepthOccupancy)
	}
	if f := s.HeavyFrac(); f < 0.7 || f > 0.72 {
		t.Fatalf("HeavyFrac = %v, want 5/7", f)
	}
}

func TestStatsCachedByVersion(t *testing.T) {
	r := MustNewUniform("R", []string{"A"}, 4)
	r.MustInsert(1)
	s1 := r.Stats()
	if s2 := r.Stats(); s2 != s1 {
		t.Fatal("same version recomputed stats")
	}
	r.MustInsert(2)
	s3 := r.Stats()
	if s3 == s1 || s3.Count != 2 {
		t.Fatalf("stats not refreshed after insert: %+v", s3)
	}
	next, err := r.WithInserted(Tuple{3})
	if err != nil {
		t.Fatal(err)
	}
	if got := next.Stats().Count; got != 3 {
		t.Fatalf("derived version count = %d, want 3", got)
	}
	if r.Stats() != s3 {
		t.Fatal("parent stats disturbed by derivation")
	}
}

func TestStatsDiagonalClustering(t *testing.T) {
	diag := MustNewUniform("D", []string{"A", "B"}, 6)
	grid := MustNewUniform("G", []string{"A", "B"}, 6)
	for v := uint64(0); v < 64; v++ {
		diag.MustInsert(v, v)
	}
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			grid.MustInsert(a*8, b*8)
		}
	}
	// The diagonal occupies 2^l joint cells at level l; the grid occupies
	// the full product. Midway, the diagonal must look clustered and the
	// grid must not.
	if r := diag.Stats().ClusterRatio(3); r > 0.25 {
		t.Fatalf("diagonal ClusterRatio(3) = %v, want <= 0.25", r)
	}
	if r := grid.Stats().ClusterRatio(3); r < 0.9 {
		t.Fatalf("grid ClusterRatio(3) = %v, want ~1", r)
	}
}

func TestStatsFingerprintDistinguishesSnapshots(t *testing.T) {
	r1 := MustNewUniform("R", []string{"A"}, 4)
	r1.MustInsert(1)
	r2 := MustNewUniform("R", []string{"A"}, 4)
	r2.MustInsert(1)
	if r1.Stats().Fingerprint() != r2.Stats().Fingerprint() {
		t.Fatal("identical tuple sets should share a fingerprint")
	}
	r2.MustInsert(2)
	if r1.Stats().Fingerprint() == r2.Stats().Fingerprint() {
		t.Fatal("different tuple sets share a fingerprint")
	}
}
