// Package relation provides the relational substrate of the join engine:
// named attributes over discrete ordered domains, tuples of uint64
// values, and relation instances stored as sorted, deduplicated tuple
// sets (paper Section 3.1).
//
// Domains are the integer ranges [0, 2^d) of the paper's dyadic framing;
// Encoder maps arbitrary ordered values (strings, signed ints) onto them
// for applications whose data is not already integral.
package relation

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tetrisjoin/internal/dyadic"
)

// Tuple is a row of attribute values in schema order.
type Tuple []uint64

// Compare orders tuples lexicographically.
func Compare(a, b Tuple) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// idCounter and stateCounter are the process-wide sources of relation
// identity and version stamps. Both only ever increase, so an (ID,
// Version) pair names exactly one observable tuple-set state.
var (
	idCounter    atomic.Uint64
	stateCounter atomic.Uint64
)

// Relation is an instance of a relational schema: a set of tuples over
// named attributes, each with a bit depth bounding its domain.
//
// Every relation carries a stable identity (ID, assigned at creation and
// inherited by versions derived via WithInserted/WithDeleted) and a
// version stamp (Version, bumped on every mutation or derivation). The
// stamps let long-lived callers — the catalog's prepared-plan cache in
// particular — key immutable artifacts by the exact tuple-set state they
// were built against: no two distinct states in a process ever share an
// (ID, Version) pair.
type Relation struct {
	name    string
	id      uint64
	version uint64
	attrs   []string
	depths  []uint8
	tuples  []Tuple
	sorted  bool
	// lineage retains a bounded window of derivation steps (parent
	// version + effective tuple changes), the substrate of DeltaSince.
	// Pointer-free by design: old versions are not kept alive by new
	// ones. Severed (nil) after an in-place Insert.
	lineage []lineageStep

	// stats caches the per-snapshot statistics summary (stats.go),
	// recomputed when the version stamp moves past the cached one.
	statsMu sync.Mutex
	stats   *Stats
}

// New creates an empty relation with the given name, attribute names and
// per-attribute bit depths (domain sizes 2^depth).
func New(name string, attrs []string, depths []uint8) (*Relation, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: %s has no attributes", name)
	}
	if len(attrs) != len(depths) {
		return nil, fmt.Errorf("relation: %s has %d attributes but %d depths", name, len(attrs), len(depths))
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation: %s has an empty attribute name", name)
		}
		if seen[a] {
			return nil, fmt.Errorf("relation: %s repeats attribute %s", name, a)
		}
		seen[a] = true
	}
	for i, d := range depths {
		if d == 0 || d > dyadic.MaxDepth {
			return nil, fmt.Errorf("relation: %s attribute %s has invalid depth %d", name, attrs[i], d)
		}
	}
	return &Relation{
		name:    name,
		id:      idCounter.Add(1),
		version: stateCounter.Add(1),
		attrs:   append([]string(nil), attrs...),
		depths:  append([]uint8(nil), depths...),
		sorted:  true,
	}, nil
}

// MustNew is New that panics on error; for tests and fixtures.
func MustNew(name string, attrs []string, depths []uint8) *Relation {
	r, err := New(name, attrs, depths)
	if err != nil {
		panic(err)
	}
	return r
}

// NewUniform is New with a single depth shared by every attribute.
func NewUniform(name string, attrs []string, depth uint8) (*Relation, error) {
	depths := make([]uint8, len(attrs))
	for i := range depths {
		depths[i] = depth
	}
	return New(name, attrs, depths)
}

// MustNewUniform is NewUniform that panics on error.
func MustNewUniform(name string, attrs []string, depth uint8) *Relation {
	r, err := NewUniform(name, attrs, depth)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// ID returns the relation's stable identity: assigned at creation,
// shared by every version derived through WithInserted/WithDeleted, and
// never reused within a process.
func (r *Relation) ID() uint64 { return r.id }

// Version returns the relation's modification stamp. It increases with
// every Insert and every derived version; distinct tuple-set states of
// any relation in the process never share a stamp, so (ID, Version) is
// a sound cache key for artifacts built against this exact state.
func (r *Relation) Version() uint64 { return r.version }

// Attrs returns the attribute names in schema order.
func (r *Relation) Attrs() []string { return r.attrs }

// Depths returns the per-attribute bit depths in schema order.
func (r *Relation) Depths() []uint8 { return r.depths }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Len returns the number of tuples. The relation is deduplicated lazily,
// so Len forces normalization.
func (r *Relation) Len() int { r.normalize(); return len(r.tuples) }

// Insert adds a tuple. Values must fit the attribute depths.
func (r *Relation) Insert(values ...uint64) error {
	if len(values) != len(r.attrs) {
		return fmt.Errorf("relation: %s insert arity %d, want %d", r.name, len(values), len(r.attrs))
	}
	for i, v := range values {
		if r.depths[i] < 64 && v >= 1<<r.depths[i] {
			return fmt.Errorf("relation: %s value %d exceeds depth %d of attribute %s", r.name, v, r.depths[i], r.attrs[i])
		}
	}
	t := make(Tuple, len(values))
	copy(t, values)
	r.tuples = append(r.tuples, t)
	r.sorted = false
	r.version = stateCounter.Add(1)
	// An in-place mutation changes the tuple set without recording a
	// derivation step, so any retained lineage no longer describes how
	// this state arose: sever it rather than let DeltaSince lie.
	r.lineage = nil
	return nil
}

// MustInsert is Insert that panics on error.
func (r *Relation) MustInsert(values ...uint64) {
	if err := r.Insert(values...); err != nil {
		panic(err)
	}
}

// InsertAll adds many tuples, failing on the first invalid one.
func (r *Relation) InsertAll(tuples ...Tuple) error {
	for _, t := range tuples {
		if err := r.Insert(t...); err != nil {
			return err
		}
	}
	return nil
}

// normalize sorts and deduplicates the tuple set.
func (r *Relation) normalize() {
	if r.sorted {
		return
	}
	sort.Slice(r.tuples, func(i, j int) bool { return Compare(r.tuples[i], r.tuples[j]) < 0 })
	dedup := r.tuples[:0]
	for i, t := range r.tuples {
		if i == 0 || Compare(t, r.tuples[i-1]) != 0 {
			dedup = append(dedup, t)
		}
	}
	r.tuples = dedup
	r.sorted = true
}

// Tuples returns the sorted, deduplicated tuples. The returned slice is
// shared; callers must not modify it.
func (r *Relation) Tuples() []Tuple { r.normalize(); return r.tuples }

// Contains reports whether the tuple is in the relation.
func (r *Relation) Contains(values ...uint64) bool {
	r.normalize()
	i := sort.Search(len(r.tuples), func(i int) bool {
		return Compare(r.tuples[i], values) >= 0
	})
	return i < len(r.tuples) && Compare(r.tuples[i], values) == 0
}

// AttrIndex returns the position of the named attribute, or -1.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// Project returns a new relation over the named attribute subset (a
// permutation of a subset of this relation's attributes).
func (r *Relation) Project(name string, attrs []string) (*Relation, error) {
	idx := make([]int, len(attrs))
	depths := make([]uint8, len(attrs))
	for i, a := range attrs {
		j := r.AttrIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("relation: %s has no attribute %s", r.name, a)
		}
		idx[i] = j
		depths[i] = r.depths[j]
	}
	out, err := New(name, attrs, depths)
	if err != nil {
		return nil, err
	}
	for _, t := range r.Tuples() {
		vals := make([]uint64, len(idx))
		for i, j := range idx {
			vals[i] = t[j]
		}
		if err := out.Insert(vals...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Reordered returns the tuples permuted into the given attribute order
// and sorted lexicographically in that order. order must be a
// permutation of the schema's attribute positions.
func (r *Relation) Reordered(order []int) ([]Tuple, error) {
	if len(order) != len(r.attrs) {
		return nil, fmt.Errorf("relation: order has %d entries, want %d", len(order), len(r.attrs))
	}
	seen := make([]bool, len(r.attrs))
	for _, j := range order {
		if j < 0 || j >= len(r.attrs) || seen[j] {
			return nil, fmt.Errorf("relation: order %v is not a permutation", order)
		}
		seen[j] = true
	}
	src := r.Tuples()
	// Carve every permuted tuple from one flat backing array: index
	// construction runs once per query execution, so its cost should be
	// two allocations, not one per tuple.
	k := len(order)
	flat := make([]uint64, len(src)*k)
	out := make([]Tuple, len(src))
	for i, t := range src {
		perm := flat[i*k : (i+1)*k : (i+1)*k]
		for c, j := range order {
			perm[c] = t[j]
		}
		out[i] = perm
	}
	sort.Slice(out, func(i, j int) bool { return Compare(out[i], out[j]) < 0 })
	return out, nil
}

// Clone returns an independent deep copy with the given name.
func (r *Relation) Clone(name string) *Relation {
	c := MustNew(name, r.attrs, r.depths)
	for _, t := range r.Tuples() {
		c.MustInsert(t...)
	}
	return c
}

// derive returns a new version of the relation: same name, schema and
// identity, a fresh version stamp, and its own tuple slice (the Tuple
// values themselves are shared — they are never mutated in place). The
// receiver is normalized first so published versions stay safe for
// concurrent readers: a derived version never re-sorts its parent.
func (r *Relation) derive(extra int) *Relation {
	r.normalize()
	tuples := make([]Tuple, len(r.tuples), len(r.tuples)+extra)
	copy(tuples, r.tuples)
	return &Relation{
		name:    r.name,
		id:      r.id,
		version: stateCounter.Add(1),
		attrs:   r.attrs,
		depths:  r.depths,
		tuples:  tuples,
		sorted:  true,
	}
}

// WithInserted returns a new version of the relation with the tuples
// appended (deduplicated as usual). The receiver is unchanged, so
// readers holding it — index structures, running queries — keep seeing
// the old state: this is the append half of the catalog's copy-on-write
// ingest. The derivation is recorded in the new version's lineage with
// its effective delta (tuples actually added), which is what DeltaSince
// reconstructs.
func (r *Relation) WithInserted(tuples ...Tuple) (*Relation, error) {
	next := r.derive(len(tuples))
	seen := map[string]bool{}
	var ins []Tuple
	for _, t := range tuples {
		if err := next.Insert(t...); err != nil {
			return nil, err
		}
		// Insert severed the lineage field of next, but next has none yet;
		// record the effective insertions against the parent's state.
		if k := tupleKey(t); !r.Contains(t...) && !seen[k] {
			seen[k] = true
			ins = append(ins, next.tuples[len(next.tuples)-1])
		}
	}
	next.normalize()
	sortTuples(ins)
	next.appendLineage(r, ins, nil)
	return next, nil
}

// WithDeleted returns a new version of the relation with the given
// tuples removed (tuples not present are ignored). The receiver is
// unchanged; this is the delete half of copy-on-write ingest.
func (r *Relation) WithDeleted(tuples ...Tuple) (*Relation, error) {
	drop := make([]Tuple, len(tuples))
	for i, t := range tuples {
		if len(t) != len(r.attrs) {
			return nil, fmt.Errorf("relation: %s delete arity %d, want %d", r.name, len(t), len(r.attrs))
		}
		drop[i] = t
	}
	sort.Slice(drop, func(i, j int) bool { return Compare(drop[i], drop[j]) < 0 })
	next := r.derive(0)
	kept := next.tuples[:0]
	var del []Tuple
	for _, t := range next.tuples {
		i := sort.Search(len(drop), func(i int) bool { return Compare(drop[i], t) >= 0 })
		if i < len(drop) && Compare(drop[i], t) == 0 {
			del = append(del, t) // effective: present and asked to go
			continue
		}
		kept = append(kept, t)
	}
	next.tuples = kept
	next.appendLineage(r, nil, del)
	return next, nil
}
