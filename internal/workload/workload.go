// Package workload generates the problem instances behind every
// experiment in DESIGN.md / EXPERIMENTS.md: the paper's figure fixtures
// (Figures 1, 4, 5, 6, 10), the AGM-hard triangle families, small- and
// GAO-sensitive-certificate instances (Appendix B), Example F.1's
// lower-bound family for ordered resolution, and a cache-reuse family
// separating Tree Ordered from Ordered resolution (Theorem 5.2's
// mechanism).
package workload

import (
	"fmt"
	"math/rand"

	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

// BCP is a raw box cover problem instance.
type BCP struct {
	Name   string
	Depths []uint8
	Boxes  []dyadic.Box
}

func uniformDepths(n int, d uint8) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// Example44 is the two-dimensional instance of Example 4.4 / Figure 10.
func Example44() BCP {
	return BCP{
		Name:   "example-4.4",
		Depths: uniformDepths(2, 2),
		Boxes: []dyadic.Box{
			dyadic.MustParseBox("λ,0"),
			dyadic.MustParseBox("00,λ"),
			dyadic.MustParseBox("λ,11"),
			dyadic.MustParseBox("10,1"),
		},
	}
}

// TriangleMSBBoxes is the six-gap-box triangle instance of Figure 5 with
// empty output, at depth d per attribute.
func TriangleMSBBoxes(d uint8) BCP {
	return BCP{
		Name:   "figure-5",
		Depths: uniformDepths(3, d),
		Boxes: []dyadic.Box{
			dyadic.MustParseBox("0,0,λ"), dyadic.MustParseBox("1,1,λ"),
			dyadic.MustParseBox("λ,0,0"), dyadic.MustParseBox("λ,1,1"),
			dyadic.MustParseBox("0,λ,0"), dyadic.MustParseBox("1,λ,1"),
		},
	}
}

// ExampleF1 is the three-attribute instance of Example F.1: ordered
// geometric resolution needs Ω(|C|²) resolutions on it under every SAO,
// while the Balance-lifted algorithm needs only Õ(|C|^{3/2})
// (Theorems 5.4 and 4.11). |C| = 6·2^{d-2}.
func ExampleF1(d uint8) BCP {
	if d < 3 {
		panic("workload: ExampleF1 needs depth >= 3")
	}
	var boxes []dyadic.Box
	lam := dyadic.Lambda
	zero := dyadic.Interval{Bits: 0, Len: 1}
	one := dyadic.Interval{Bits: 1, Len: 1}
	sub := d - 2
	for x := uint64(0); x < 1<<sub; x++ {
		// C1: ⟨0x, λ, 0⟩ and ⟨0, y, 1⟩.
		boxes = append(boxes,
			dyadic.Box{dyadic.Interval{Bits: x, Len: d - 1}, lam, zero},
			dyadic.Box{zero, dyadic.Interval{Bits: x, Len: sub}, one})
		// C2: ⟨10x, 0, λ⟩ and ⟨10, 1, z⟩.
		boxes = append(boxes,
			dyadic.Box{dyadic.Interval{Bits: 1<<(d-1) | x, Len: d}, zero, lam},
			dyadic.Box{dyadic.Interval{Bits: 2, Len: 2}, one, dyadic.Interval{Bits: x, Len: sub}})
		// C3: ⟨110, y, λ⟩ and ⟨111, λ, z⟩.
		boxes = append(boxes,
			dyadic.Box{dyadic.Interval{Bits: 6, Len: 3}, dyadic.Interval{Bits: x, Len: sub}, lam},
			dyadic.Box{dyadic.Interval{Bits: 7, Len: 3}, lam, dyadic.Interval{Bits: x, Len: sub}})
	}
	return BCP{Name: fmt.Sprintf("example-F.1(d=%d)", d), Depths: uniformDepths(3, d), Boxes: boxes}
}

// RandomDyadicPartition generates a set of exactly m disjoint dyadic
// boxes whose union is the whole n-dimensional space: starting from the
// universe, a random box is repeatedly split along a random thick
// dimension. Partitions are covering instances for the Boolean box cover
// problem (Klee's measure, Corollary F.8) whose proof genuinely requires
// merging all m boxes back together.
func RandomDyadicPartition(n, m int, d uint8, seed int64) BCP {
	if m < 1 {
		panic("workload: partition needs at least one box")
	}
	r := rand.New(rand.NewSource(seed))
	depths := uniformDepths(n, d)
	boxes := []dyadic.Box{dyadic.Universe(n)}
	for len(boxes) < m {
		i := r.Intn(len(boxes))
		b := boxes[i]
		var thick []int
		for dim := range b {
			if b[dim].Len < d {
				thick = append(thick, dim)
			}
		}
		if len(thick) == 0 {
			// b is a unit box; try another (give up if all are units).
			allUnit := true
			for _, x := range boxes {
				if !x.IsUnit(depths) {
					allUnit = false
					break
				}
			}
			if allUnit {
				break
			}
			continue
		}
		b0, b1 := b.SplitAt(thick[r.Intn(len(thick))])
		boxes[i] = b0
		boxes = append(boxes, b1)
	}
	return BCP{Name: fmt.Sprintf("partition(n=%d,m=%d,d=%d)", n, m, d), Depths: depths, Boxes: boxes}
}

// RandomBoxes generates m random boxes in n dimensions at depth d.
func RandomBoxes(n, m int, d uint8, seed int64) BCP {
	r := rand.New(rand.NewSource(seed))
	boxes := make([]dyadic.Box, m)
	for i := range boxes {
		b := make(dyadic.Box, n)
		for j := range b {
			l := uint8(r.Intn(int(d) + 1))
			var v uint64
			if l > 0 {
				v = r.Uint64() & (1<<l - 1)
			}
			b[j] = dyadic.Interval{Bits: v, Len: l}
		}
		boxes[i] = b
	}
	return BCP{Name: fmt.Sprintf("random(n=%d,m=%d,d=%d)", n, m, d), Depths: uniformDepths(n, d), Boxes: boxes}
}

// msbRelation builds the Figure 5 relation over two attributes at depth
// d: tuples whose most significant bits differ.
func msbRelation(name string, attrs []string, d uint8) *relation.Relation {
	r := relation.MustNewUniform(name, attrs, d)
	half := uint64(1) << (d - 1)
	for a := uint64(0); a < half; a++ {
		for b := uint64(0); b < half; b++ {
			r.MustInsert(a, half+b)
			r.MustInsert(half+a, b)
		}
	}
	return r
}

// TriangleMSB is the triangle query over the Figure 5 relations (empty
// output). N = 3·2^{2(d-1)}... each relation has 2·4^{d-1} tuples.
func TriangleMSB(d uint8) *join.Query {
	return join.MustNewQuery(
		join.Atom{Relation: msbRelation("R", []string{"X", "Y"}, d), Vars: []string{"A", "B"}},
		join.Atom{Relation: msbRelation("S", []string{"X", "Y"}, d), Vars: []string{"B", "C"}},
		join.Atom{Relation: msbRelation("T", []string{"X", "Y"}, d), Vars: []string{"A", "C"}},
	)
}

// TriangleAGMStar is the classic AGM-hard triangle instance
// R=S=T = {0}×[m] ∪ [m]×{0}: every pairwise join has Θ(m²) tuples while
// the output has 3m-2; worst-case optimal algorithms run in Õ(m).
func TriangleAGMStar(m uint64, d uint8) *join.Query {
	if m >= 1<<d {
		panic("workload: m exceeds domain")
	}
	mk := func(name string) *relation.Relation {
		r := relation.MustNewUniform(name, []string{"X", "Y"}, d)
		for i := uint64(0); i < m; i++ {
			r.MustInsert(0, i)
			r.MustInsert(i, 0)
		}
		return r
	}
	return join.MustNewQuery(
		join.Atom{Relation: mk("R"), Vars: []string{"A", "B"}},
		join.Atom{Relation: mk("S"), Vars: []string{"B", "C"}},
		join.Atom{Relation: mk("T"), Vars: []string{"A", "C"}},
	)
}

// TriangleDense is the AGM-tight dense instance R=S=T=[m]×[m]: the output
// is m³ = N^{3/2} tuples, meeting the AGM bound exactly.
func TriangleDense(m uint64, d uint8) *join.Query {
	if m >= 1<<d {
		panic("workload: m exceeds domain")
	}
	mk := func(name string) *relation.Relation {
		r := relation.MustNewUniform(name, []string{"X", "Y"}, d)
		for i := uint64(0); i < m; i++ {
			for j := uint64(0); j < m; j++ {
				r.MustInsert(i, j)
			}
		}
		return r
	}
	return join.MustNewQuery(
		join.Atom{Relation: mk("R"), Vars: []string{"A", "B"}},
		join.Atom{Relation: mk("S"), Vars: []string{"B", "C"}},
		join.Atom{Relation: mk("T"), Vars: []string{"A", "C"}},
	)
}

// PathQuery is a length-k chain R_1(A_1,A_2) ⋈ … ⋈ R_k(A_k,A_{k+1}) over
// random relations with n tuples each (α-acyclic, treewidth 1).
func PathQuery(k, n int, d uint8, seed int64) *join.Query {
	r := rand.New(rand.NewSource(seed))
	atoms := make([]join.Atom, k)
	for i := 0; i < k; i++ {
		rel := relation.MustNewUniform(fmt.Sprintf("R%d", i+1), []string{"X", "Y"}, d)
		for t := 0; t < n; t++ {
			rel.MustInsert(uint64(r.Intn(1<<d)), uint64(r.Intn(1<<d)))
		}
		atoms[i] = join.Atom{Relation: rel, Vars: []string{
			fmt.Sprintf("A%d", i+1), fmt.Sprintf("A%d", i+2)}}
	}
	return join.MustNewQuery(atoms...)
}

// StarQuery is R_1(A,B_1) ⋈ … ⋈ R_k(A,B_k) over random relations
// (α-acyclic).
func StarQuery(k, n int, d uint8, seed int64) *join.Query {
	r := rand.New(rand.NewSource(seed))
	atoms := make([]join.Atom, k)
	for i := 0; i < k; i++ {
		rel := relation.MustNewUniform(fmt.Sprintf("R%d", i+1), []string{"X", "Y"}, d)
		for t := 0; t < n; t++ {
			rel.MustInsert(uint64(r.Intn(1<<d)), uint64(r.Intn(1<<d)))
		}
		atoms[i] = join.Atom{Relation: rel, Vars: []string{"A", fmt.Sprintf("B%d", i+1)}}
	}
	return join.MustNewQuery(atoms...)
}

// BowtieBlock is the constant-certificate instance behind Table 1's
// treewidth-1 row: R(A) ⋈ S(A,B) ⋈ T(B) with S = [0,h)×[0,h) a full
// dyadic block (h = 2^{d-1}) and R = [h,2h). The output is empty and a
// two-box certificate exists (⟨0,λ⟩ from R, ⟨1,λ⟩ from S) regardless of
// N = h². S carries a dyadic-tree index: under a (B,A)-sorted B-tree the
// smallest certificate would be Ω(h) instead (the index-dependence of
// certificates, Appendix B.2).
func BowtieBlock(d uint8) *join.Query {
	h := uint64(1) << (d - 1)
	r := relation.MustNewUniform("R", []string{"X"}, d)
	for v := h; v < 2*h; v++ {
		r.MustInsert(v)
	}
	s := relation.MustNewUniform("S", []string{"X", "Y"}, d)
	for a := uint64(0); a < h; a++ {
		for b := uint64(0); b < h; b++ {
			s.MustInsert(a, b)
		}
	}
	t := relation.MustNewUniform("T", []string{"Y"}, d)
	for v := uint64(0); v < h; v++ {
		t.MustInsert(v)
	}
	return join.MustNewQuery(
		join.Atom{Relation: r, Vars: []string{"A"}},
		join.Atom{Relation: s, Vars: []string{"A", "B"},
			Indexes: []index.Index{index.NewDyadic(s)}},
		join.Atom{Relation: t, Vars: []string{"B"}},
	)
}

// GAOSensitive is the Appendix B (Figure 13) style instance whose box
// certificate is Õ(1) under the (B,A) attribute order but Ω(N) under
// (A,B): R(A) = [0,m), S(A,B) = the single row B = 2^{d-1}, and T(B)
// missing exactly that row's value.
func GAOSensitive(m uint64, d uint8) *join.Query {
	if m >= 1<<d {
		panic("workload: m exceeds domain")
	}
	c := uint64(1) << (d - 1)
	r := relation.MustNewUniform("R", []string{"X"}, d)
	for v := uint64(0); v < m; v++ {
		r.MustInsert(v)
	}
	s := relation.MustNewUniform("S", []string{"X", "Y"}, d)
	for a := uint64(0); a < 1<<d; a++ {
		s.MustInsert(a, c)
	}
	t := relation.MustNewUniform("T", []string{"Y"}, d)
	for v := uint64(0); v < 1<<d; v++ {
		if v != c {
			t.MustInsert(v)
		}
	}
	return join.MustNewQuery(
		join.Atom{Relation: r, Vars: []string{"A"}},
		join.Atom{Relation: s, Vars: []string{"A", "B"}},
		join.Atom{Relation: t, Vars: []string{"B"}},
	)
}

// TreeOrderedHard separates Tree Ordered from Ordered geometric
// resolution (the mechanism of Theorem 5.2; the paper's own construction
// is in its truncated Appendix G, so this family is ours — documented in
// EXPERIMENTS.md). Query R(A,B) ⋈ S(B,C) ⋈ T(C), treewidth 1, with
// m a power of two and all domains of depth log2(2m):
//
//	R = [0,m) × evens[0,2m)
//	S = evens × odds  ∪  odds × [0,2m)
//	T = evens
//
// The output is empty. Proving "the C-line under an even b is covered"
// takes Θ(m) resolutions using only A-wildcard boxes, so with caching it
// is paid once per b (Θ(m²) total ≈ N); without caching it is re-derived
// under every a ∈ [0,m), giving Θ(m³) ≈ N^{3/2} = N^{n/2}.
func TreeOrderedHard(m uint64) *join.Query {
	if m == 0 || m&(m-1) != 0 {
		panic("workload: m must be a power of two")
	}
	d := uint8(1)
	for v := uint64(2); v < 2*m; v <<= 1 {
		d++
	}
	r := relation.MustNewUniform("R", []string{"X", "Y"}, d)
	for a := uint64(0); a < m; a++ {
		for b := uint64(0); b < 2*m; b += 2 {
			r.MustInsert(a, b)
		}
	}
	s := relation.MustNewUniform("S", []string{"X", "Y"}, d)
	for b := uint64(0); b < 2*m; b++ {
		if b%2 == 0 {
			for c := uint64(1); c < 2*m; c += 2 {
				s.MustInsert(b, c)
			}
		} else {
			for c := uint64(0); c < 2*m; c++ {
				s.MustInsert(b, c)
			}
		}
	}
	t := relation.MustNewUniform("T", []string{"X"}, d)
	for c := uint64(0); c < 2*m; c += 2 {
		t.MustInsert(c)
	}
	return join.MustNewQuery(
		join.Atom{Relation: r, Vars: []string{"A", "B"}},
		join.Atom{Relation: s, Vars: []string{"B", "C"}},
		join.Atom{Relation: t, Vars: []string{"C"}},
	)
}

// FourCycleBlocks is a treewidth-2 four-cycle query with an O(1)
// certificate at every size: R,S,T over the full lower-half block and U
// over the upper-half block, so the output is empty and two half-space
// boxes certify it. N = 4·4^{d-1} grows with d while |C| stays constant.
func FourCycleBlocks(d uint8) *join.Query {
	h := uint64(1) << (d - 1)
	block := func(name string, lo uint64) *relation.Relation {
		r := relation.MustNewUniform(name, []string{"X", "Y"}, d)
		for a := lo; a < lo+h; a++ {
			for b := lo; b < lo+h; b++ {
				r.MustInsert(a, b)
			}
		}
		return r
	}
	return join.MustNewQuery(
		join.Atom{Relation: block("R", 0), Vars: []string{"A", "B"}},
		join.Atom{Relation: block("S", 0), Vars: []string{"B", "C"}},
		join.Atom{Relation: block("T", 0), Vars: []string{"C", "D"}},
		join.Atom{Relation: block("U", h), Vars: []string{"D", "A"}},
	)
}

// DiagonalBowtie is an Example B.7/B.8 (Figure 14) style instance: the
// bowtie R(A) ⋈ S(A,B) ⋈ T(B) with S the full diagonal {(v,v)},
// R = [c, 2^d) the upper half and T = [0, c) the lower half
// (c = 2^{d-1}), so the output is empty. The region R×T — the lower-right
// quadrant — contains no diagonal point, and only S's gap boxes can
// cover it: B-tree indices on S, in either attribute order, can offer
// only thin per-value strips there (Ω(N) of them), while the dyadic
// index covers the whole quadrant with a single box — the kind of
// inferred multidimensional gap that Example B.8 shows B-trees cannot
// return. The returned query carries no explicit indices: attach them
// per experiment arm.
func DiagonalBowtie(d uint8) *join.Query {
	size := uint64(1) << d
	c := size / 2
	r := relation.MustNewUniform("R", []string{"X"}, d)
	for v := c; v < size; v++ {
		r.MustInsert(v)
	}
	s := relation.MustNewUniform("S", []string{"X", "Y"}, d)
	for v := uint64(0); v < size; v++ {
		s.MustInsert(v, v)
	}
	t := relation.MustNewUniform("T", []string{"Y"}, d)
	for v := uint64(0); v < c; v++ {
		t.MustInsert(v)
	}
	return join.MustNewQuery(
		join.Atom{Relation: r, Vars: []string{"A"}},
		join.Atom{Relation: s, Vars: []string{"A", "B"}},
		join.Atom{Relation: t, Vars: []string{"B"}},
	)
}

// RandomIncidenceQuery generates a query with arbitrary atom/variable
// incidence structure — the shapes outside the named families above:
// natoms atoms, each of random arity in [1, maxArity] over a pool of
// nvars variables (distinct within an atom), over independent random
// relations with up to n tuples each at depth d. Fuzzing and coverage
// tests use it to exercise hypergraphs no hand-picked family has.
func RandomIncidenceQuery(nvars, natoms, maxArity, n int, d uint8, seed int64) *join.Query {
	if nvars < 1 || natoms < 1 || maxArity < 1 {
		panic("workload: incidence query needs at least one variable, atom and column")
	}
	r := rand.New(rand.NewSource(seed))
	atoms := make([]join.Atom, natoms)
	for i := range atoms {
		arity := 1 + r.Intn(min(maxArity, nvars))
		attrs := make([]string, arity)
		vars := make([]string, arity)
		for j, p := range r.Perm(nvars)[:arity] {
			attrs[j] = fmt.Sprintf("X%d", j+1)
			vars[j] = fmt.Sprintf("A%d", p+1)
		}
		rel := relation.MustNewUniform(fmt.Sprintf("R%d", i+1), attrs, d)
		for t := r.Intn(n + 1); t > 0; t-- {
			vals := make([]uint64, arity)
			for j := range vals {
				vals[j] = uint64(r.Intn(1 << d))
			}
			rel.MustInsert(vals...)
		}
		atoms[i] = join.Atom{Relation: rel, Vars: vars}
	}
	return join.MustNewQuery(atoms...)
}

// CliqueQuery builds the k-clique query over a single random graph with
// edge probability p: one binary atom per vertex pair, all referring to
// the same edge relation (a self-join), as in subgraph-listing workloads.
func CliqueQuery(k int, numVertices uint64, p float64, d uint8, seed int64) *join.Query {
	if numVertices > 1<<d {
		panic("workload: graph larger than domain")
	}
	r := rand.New(rand.NewSource(seed))
	edges := relation.MustNewUniform("E", []string{"X", "Y"}, d)
	for u := uint64(0); u < numVertices; u++ {
		for v := uint64(0); v < numVertices; v++ {
			if u != v && r.Float64() < p {
				// Symmetric edges so the clique query is meaningful.
				edges.MustInsert(u, v)
				edges.MustInsert(v, u)
			}
		}
	}
	var atoms []join.Atom
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			atoms = append(atoms, join.Atom{
				Relation: edges,
				Vars:     []string{fmt.Sprintf("V%d", i+1), fmt.Sprintf("V%d", j+1)},
			})
		}
	}
	return join.MustNewQuery(atoms...)
}

// SkewedTriangle is a triangle whose data skew makes the splitting
// order decisive: R(A,B) is the diagonal, S(B,C) pins B to the single
// heavy value 0 across all of C, and T(A,C) is the diagonal again.
//
//	R = {(i,i) : i ∈ [0,m)}   S = {0}×[0,m)   T = {(i,i) : i ∈ [0,m)}
//
// Output: {(0,0,0)}. Splitting B first, S certifies the whole B≠0
// region in O(d) boxes and R collapses the B=0 slice to A=0, so Tetris
// finishes in Õ(1) resolutions; under the natural order (A,B,C) the
// B-contradiction is rediscovered once per A value — Ω(m). The planner
// sees distinct_B(S) = 1 in the statistics and puts B first.
func SkewedTriangle(m uint64, d uint8) *join.Query {
	if m > 1<<d {
		panic("workload: m exceeds domain")
	}
	r := relation.MustNewUniform("R", []string{"X", "Y"}, d)
	s := relation.MustNewUniform("S", []string{"X", "Y"}, d)
	t := relation.MustNewUniform("T", []string{"X", "Y"}, d)
	for i := uint64(0); i < m; i++ {
		r.MustInsert(i, i)
		s.MustInsert(0, i)
		t.MustInsert(i, i)
	}
	return join.MustNewQuery(
		join.Atom{Relation: r, Vars: []string{"A", "B"}},
		join.Atom{Relation: s, Vars: []string{"B", "C"}},
		join.Atom{Relation: t, Vars: []string{"A", "C"}},
	)
}

// SkewedFourCycle is a 4-cycle with mismatched heavy values on the last
// variable: R(A,B) and S(B,C) are diagonals, T(C,D) pins D to 0, and
// U(D,A) pins D to 1 — so the output is empty and the proof is a single
// D-contradiction.
//
//	R = S = {(i,i)}   T = [0,m)×{0}   U = {1}×[0,m)
//
// Splitting D first exposes the contradiction in O(d) resolutions;
// natural order (A,B,C,D) walks the diagonals first — Ω(m). The
// planner's heavy/light split on the hub value collapses the D-first
// estimates (the light slices of T and U are empty).
func SkewedFourCycle(m uint64, d uint8) *join.Query {
	if m > 1<<d {
		panic("workload: m exceeds domain")
	}
	r := relation.MustNewUniform("R", []string{"X", "Y"}, d)
	s := relation.MustNewUniform("S", []string{"X", "Y"}, d)
	t := relation.MustNewUniform("T", []string{"X", "Y"}, d)
	u := relation.MustNewUniform("U", []string{"X", "Y"}, d)
	for i := uint64(0); i < m; i++ {
		r.MustInsert(i, i)
		s.MustInsert(i, i)
		t.MustInsert(i, 0)
		u.MustInsert(1, i)
	}
	return join.MustNewQuery(
		join.Atom{Relation: r, Vars: []string{"A", "B"}},
		join.Atom{Relation: s, Vars: []string{"B", "C"}},
		join.Atom{Relation: t, Vars: []string{"C", "D"}},
		join.Atom{Relation: u, Vars: []string{"D", "A"}},
	)
}

// HeavyValueMismatch is the minimal heavy-value instance: two atoms
// sharing B, each pinning it to a different single value.
//
//	R(A,B) = [0,m)×{1}   S(C,B) = [0,m)×{0}
//
// The output is empty. With B split first, both relations certify their
// B-complements in O(d) order-consistent gap boxes and the contradiction
// is immediate; under the natural order (A,B,C) the B-tree on R is
// A-major, so the B≠1 gap is rediscovered per A value — Ω(m·d). This is
// Appendix B.2's index-dependence of certificates driven purely by skew
// statistics (distinct_B = 1 in both relations).
func HeavyValueMismatch(m uint64, d uint8) *join.Query {
	if m > 1<<d {
		panic("workload: m exceeds domain")
	}
	r := relation.MustNewUniform("R", []string{"X", "Y"}, d)
	s := relation.MustNewUniform("S", []string{"X", "Y"}, d)
	for i := uint64(0); i < m; i++ {
		r.MustInsert(i, 1)
		s.MustInsert(i, 0)
	}
	return join.MustNewQuery(
		join.Atom{Relation: r, Vars: []string{"A", "B"}},
		join.Atom{Relation: s, Vars: []string{"C", "B"}},
	)
}

// zipfRelation fills a relation with n tuples whose attribute values are
// independently Zipf-distributed over [0, 2^d): value v has probability
// ∝ 1/(v+1)^skew, so 0 is the heavy value of every attribute.
func zipfRelation(name string, arity int, n int, d uint8, skew float64, rng *rand.Rand) *relation.Relation {
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("X%d", i+1)
	}
	rel := relation.MustNewUniform(name, attrs, d)
	z := rand.NewZipf(rng, skew, 1, 1<<d-1)
	vals := make([]uint64, arity)
	for t := 0; t < n; t++ {
		for j := range vals {
			vals[j] = z.Uint64()
		}
		rel.MustInsert(vals...)
	}
	return rel
}

// ZipfTriangle is a triangle over three independently sampled relations
// with Zipf(skew)-distributed values — every attribute has 0 as its
// heavy value, with degree concentration growing with skew. The heavy
// intersections make both the output and the work distribution skewed;
// this is the randomized counterpart of the deterministic Skewed*
// families, used by the fuzz and benchmark sweeps.
func ZipfTriangle(n int, d uint8, skew float64, seed int64) *join.Query {
	rng := rand.New(rand.NewSource(seed))
	r := zipfRelation("R", 2, n, d, skew, rng)
	s := zipfRelation("S", 2, n, d, skew, rng)
	t := zipfRelation("T", 2, n, d, skew, rng)
	return join.MustNewQuery(
		join.Atom{Relation: r, Vars: []string{"A", "B"}},
		join.Atom{Relation: s, Vars: []string{"B", "C"}},
		join.Atom{Relation: t, Vars: []string{"A", "C"}},
	)
}

// ZipfStar is the star R_1(H,B_1) ⋈ … ⋈ R_k(H,B_k) with Zipf(skew)
// values: the shared hub variable H concentrates on the heavy value 0,
// so the star's output is dominated by the hub's heavy intersection.
func ZipfStar(k, n int, d uint8, skew float64, seed int64) *join.Query {
	rng := rand.New(rand.NewSource(seed))
	atoms := make([]join.Atom, k)
	for i := range atoms {
		rel := zipfRelation(fmt.Sprintf("R%d", i+1), 2, n, d, skew, rng)
		atoms[i] = join.Atom{Relation: rel, Vars: []string{"H", fmt.Sprintf("B%d", i+1)}}
	}
	return join.MustNewQuery(atoms...)
}

// ZipfFourCycle is the 4-cycle R(A,B) ⋈ S(B,C) ⋈ T(C,D) ⋈ U(D,A) over
// independently sampled Zipf(skew) relations — the randomized
// counterpart of SkewedFourCycle. Every attribute concentrates on the
// heavy value 0, so the work (and output) mass sits in the small-value
// corner of the space: the regime where static SAO-prefix shards are
// maximally imbalanced and dynamic splitting pays off.
func ZipfFourCycle(n int, d uint8, skew float64, seed int64) *join.Query {
	rng := rand.New(rand.NewSource(seed))
	r := zipfRelation("R", 2, n, d, skew, rng)
	s := zipfRelation("S", 2, n, d, skew, rng)
	t := zipfRelation("T", 2, n, d, skew, rng)
	u := zipfRelation("U", 2, n, d, skew, rng)
	return join.MustNewQuery(
		join.Atom{Relation: r, Vars: []string{"A", "B"}},
		join.Atom{Relation: s, Vars: []string{"B", "C"}},
		join.Atom{Relation: t, Vars: []string{"C", "D"}},
		join.Atom{Relation: u, Vars: []string{"D", "A"}},
	)
}

// PinnedChain is the chain R(A,B) ⋈ S(B,C) ⋈ T(C) built so the cost
// model's skew-aware estimates stay O(m) for every order while the
// actual resolution count is order-sensitive by a factor of ~d:
//
//	R(A,B) = [0,m)×{1}   S(B,C) = {(i,i)}   T(C) = [0,m) \ {1}
//
// R pins B to 1, S then forces C = 1, and T excludes it: the output is
// empty. Splitting B (or C) first proves the contradiction in O(d)
// resolutions from order-consistent wildcard gap boxes; splitting last
// rediscovers S's diagonal gaps value by value — Ω(m·d) — which at
// large depth d overshoots the estimate by more than any constant
// divergence factor. This is the calibration family for the catalog's
// plan-feedback loop: the one regime where observed work legitimately
// contradicts the estimate, so a divergent execution must trigger a
// re-plan.
func PinnedChain(m uint64, d uint8) *join.Query {
	if m > 1<<d {
		panic("workload: m exceeds domain")
	}
	r := relation.MustNewUniform("R", []string{"X", "Y"}, d)
	s := relation.MustNewUniform("S", []string{"X", "Y"}, d)
	t := relation.MustNewUniform("T", []string{"X"}, d)
	for i := uint64(0); i < m; i++ {
		r.MustInsert(i, 1)
		s.MustInsert(i, i)
		if i != 1 {
			t.MustInsert(i)
		}
	}
	return join.MustNewQuery(
		join.Atom{Relation: r, Vars: []string{"A", "B"}},
		join.Atom{Relation: s, Vars: []string{"B", "C"}},
		join.Atom{Relation: t, Vars: []string{"C"}},
	)
}
