package workload

import (
	"testing"

	"tetrisjoin/internal/baseline"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/join"
)

func TestExample44(t *testing.T) {
	inst := Example44()
	o := core.MustBoxOracle(inst.Depths, inst.Boxes)
	res, err := core.Run(o, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Errorf("Example 4.4 has %d outputs, want 2", len(res.Tuples))
	}
}

func TestTriangleMSBBoxesCover(t *testing.T) {
	inst := TriangleMSBBoxes(5)
	rep, err := core.Covers(inst.Depths, inst.Boxes, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Covered {
		t.Error("Figure 5 boxes must cover the space")
	}
}

func TestExampleF1Covers(t *testing.T) {
	// The union of C1 ∪ C2 ∪ C3 covers the whole space (empty output).
	for _, d := range []uint8{3, 4, 5} {
		inst := ExampleF1(d)
		if len(inst.Boxes) != 6*(1<<(d-2)) {
			t.Fatalf("d=%d: |C| = %d, want %d", d, len(inst.Boxes), 6*(1<<(d-2)))
		}
		rep, err := core.Covers(inst.Depths, inst.Boxes, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Covered {
			t.Errorf("d=%d: Example F.1 boxes must cover the space (uncovered: %v)", d, rep.Witness)
		}
	}
}

func TestExampleF1SubsetsCoverTheirThirds(t *testing.T) {
	// Per the example: C1 covers ⟨0,λ,λ⟩, C2 covers ⟨10,λ,λ⟩, C3 covers
	// ⟨110,λ,λ⟩ and ⟨111,λ,λ⟩; and no single part covers the whole space.
	const d = 4
	inst := ExampleF1(d)
	parts := map[string][]dyadic.Box{}
	for i, b := range inst.Boxes {
		// The generator appends boxes in groups of six: C1,C1,C2,C2,C3,C3.
		switch i % 6 {
		case 0, 1:
			parts["C1"] = append(parts["C1"], b)
		case 2, 3:
			parts["C2"] = append(parts["C2"], b)
		default:
			parts["C3"] = append(parts["C3"], b)
		}
	}
	targets := map[string][]string{
		"C1": {"0,λ,λ"},
		"C2": {"10,λ,λ"},
		"C3": {"110,λ,λ", "111,λ,λ"},
	}
	for name, bs := range parts {
		for _, tgt := range targets[name] {
			rep, err := core.CoversTarget(inst.Depths, bs, dyadic.MustParseBox(tgt), core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Covered {
				t.Errorf("%s does not cover %s", name, tgt)
			}
		}
		rep, err := core.Covers(inst.Depths, bs, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Covered {
			t.Errorf("%s alone covers the whole space", name)
		}
	}
}

func TestTriangleAGMStarOutput(t *testing.T) {
	const m = 8
	q := TriangleAGMStar(m, 5)
	res, err := join.Execute(q, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 3*m-2 {
		t.Errorf("output = %d, want %d", len(res.Tuples), 3*m-2)
	}
}

func TestTriangleDenseOutput(t *testing.T) {
	const m = 4
	q := TriangleDense(m, 3)
	res, err := join.Execute(q, join.Options{Mode: core.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != m*m*m {
		t.Errorf("output = %d, want %d", len(res.Tuples), m*m*m)
	}
}

func TestBowtieBlockEmptyAndFlat(t *testing.T) {
	for _, d := range []uint8{3, 4, 5} {
		q := BowtieBlock(d)
		// Sequential: the O(1) loaded-box count is the sequential
		// certificate accounting (shards would each load their own copy).
		res, err := join.Execute(q, join.Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 0 {
			t.Errorf("d=%d: output not empty", d)
		}
		// Certificate-flat: a handful of boxes regardless of N.
		if res.Stats.BoxesLoaded > 12 {
			t.Errorf("d=%d: loaded %d boxes, expected O(1)", d, res.Stats.BoxesLoaded)
		}
	}
}

func TestGAOSensitiveEmpty(t *testing.T) {
	q := GAOSensitive(8, 4)
	res, err := join.Execute(q, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Errorf("output = %v", res.Tuples)
	}
}

func TestTreeOrderedHardIsEmptyAndTw1(t *testing.T) {
	q := TreeOrderedHard(4)
	if tw, _, err := q.Hypergraph().Treewidth(); err != nil || tw != 1 {
		t.Fatalf("treewidth = %d, %v; want 1", tw, err)
	}
	got, err := baseline.NestedLoop(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("output should be empty, got %v", got)
	}
	res, err := join.Execute(q, join.Options{SAOVars: []string{"A", "B", "C"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Error("tetris output should be empty")
	}
}

func TestTreeOrderedHardSeparation(t *testing.T) {
	// The cache-reuse mechanism: no-cache must pay strictly more, and the
	// gap must widen with m.
	ratios := make([]float64, 0, 2)
	for _, m := range []uint64{4, 8} {
		q := TreeOrderedHard(m)
		// Sequential: the cached-vs-uncached resolution ratio is the
		// paper's sequential accounting.
		cached, err := join.Execute(q, join.Options{SAOVars: []string{"A", "B", "C"}, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		uncached, err := join.Execute(q, join.Options{SAOVars: []string{"A", "B", "C"}, NoCache: true, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if uncached.Stats.Resolutions <= cached.Stats.Resolutions {
			t.Fatalf("m=%d: no-cache %d <= cached %d", m,
				uncached.Stats.Resolutions, cached.Stats.Resolutions)
		}
		ratios = append(ratios, float64(uncached.Stats.Resolutions)/float64(cached.Stats.Resolutions))
	}
	if ratios[1] <= ratios[0] {
		t.Errorf("separation not widening: ratios %v", ratios)
	}
}

func TestFourCycleBlocksEmpty(t *testing.T) {
	for _, d := range []uint8{3, 4} {
		q := FourCycleBlocks(d)
		res, err := join.Execute(q, join.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 0 {
			t.Errorf("d=%d: output not empty", d)
		}
	}
}

func TestPathAndStarQueriesRun(t *testing.T) {
	q := PathQuery(3, 10, 3, 1)
	want, err := baseline.NestedLoop(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := join.Execute(q, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != len(want) {
		t.Errorf("path: tetris %d vs brute %d", len(res.Tuples), len(want))
	}
	q = StarQuery(3, 10, 2, 2)
	want, err = baseline.NestedLoop(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err = join.Execute(q, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != len(want) {
		t.Errorf("star: tetris %d vs brute %d", len(res.Tuples), len(want))
	}
}

func TestDiagonalBowtieIndexPower(t *testing.T) {
	// Example B.7/B.8 (Figure 14): on the diagonal instance every B-tree
	// order needs Ω(N) loaded boxes while the dyadic index needs O(d).
	for _, d := range []uint8{4, 5, 6} {
		n := int64(1) << d
		variants := map[string]func(q *join.Query) []index.Index{
			"btree-both": func(q *join.Query) []index.Index {
				s := q.Atoms()[1].Relation
				u, err := index.NewUnion(index.MustSorted(s, "X", "Y"), index.MustSorted(s, "Y", "X"))
				if err != nil {
					t.Fatal(err)
				}
				return []index.Index{u}
			},
			"dyadic": func(q *join.Query) []index.Index {
				return []index.Index{index.NewDyadic(q.Atoms()[1].Relation)}
			},
		}
		loaded := map[string]int64{}
		for name, mk := range variants {
			q := DiagonalBowtie(d)
			atoms := q.Atoms()
			atoms[1].Indexes = mk(q)
			q2 := join.MustNewQuery(atoms...)
			// Sequential: loaded-box counts are the certificate-size
			// accounting of the sequential run.
			res, err := join.Execute(q2, join.Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Tuples) != 0 {
				t.Fatalf("d=%d %s: output not empty", d, name)
			}
			loaded[name] = res.Stats.BoxesLoaded
		}
		if loaded["btree-both"] < n/2 {
			t.Errorf("d=%d: btree loaded only %d boxes, expected Ω(N=%d)", d, loaded["btree-both"], n)
		}
		if loaded["dyadic"] > 10*int64(d) {
			t.Errorf("d=%d: dyadic loaded %d boxes, expected O(d)", d, loaded["dyadic"])
		}
	}
}

func TestCliqueQueryAgainstBaseline(t *testing.T) {
	q := CliqueQuery(3, 8, 0.5, 3, 7)
	want, err := baseline.GenericJoin(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := join.Execute(q, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != len(want) {
		t.Errorf("clique: tetris %d vs generic join %d", len(res.Tuples), len(want))
	}
}

func TestGeneratorsPanicOnBadParams(t *testing.T) {
	for name, f := range map[string]func(){
		"f1-depth":     func() { ExampleF1(2) },
		"agm-domain":   func() { TriangleAGMStar(8, 3) },
		"dense-domain": func() { TriangleDense(8, 3) },
		"gao-domain":   func() { GAOSensitive(8, 3) },
		"hard-pow2":    func() { TreeOrderedHard(3) },
		"clique-size":  func() { CliqueQuery(3, 8, 0.5, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: bad parameters accepted", name)
				}
			}()
			f()
		}()
	}
}
