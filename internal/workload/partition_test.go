package workload

import (
	"testing"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/klee"
)

func TestRandomDyadicPartitionIsPartition(t *testing.T) {
	for _, m := range []int{1, 2, 17, 64} {
		inst := RandomDyadicPartition(3, m, 5, int64(m))
		if len(inst.Boxes) != m {
			t.Fatalf("m=%d: got %d boxes", m, len(inst.Boxes))
		}
		// Disjoint...
		for i := range inst.Boxes {
			for j := i + 1; j < len(inst.Boxes); j++ {
				if inst.Boxes[i].Intersects(inst.Boxes[j]) {
					t.Fatalf("m=%d: boxes %v and %v intersect", m, inst.Boxes[i], inst.Boxes[j])
				}
			}
		}
		// ...and covering: total measure equals the space.
		if m <= 64 {
			got, err := klee.Measure(inst.Depths, inst.Boxes)
			if err != nil {
				t.Fatal(err)
			}
			if got != klee.SpaceSize(inst.Depths) {
				t.Fatalf("m=%d: measure %d of %d", m, got, klee.SpaceSize(inst.Depths))
			}
		}
		rep, err := core.Covers(inst.Depths, inst.Boxes, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Covered {
			t.Fatalf("m=%d: partition does not cover", m)
		}
		// Dropping any one box must break coverage (boxes are disjoint).
		if m > 1 {
			rep, err = core.Covers(inst.Depths, inst.Boxes[1:], core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Covered {
				t.Fatalf("m=%d: coverage survives dropping a partition box", m)
			}
		}
	}
}

func TestRandomDyadicPartitionSaturates(t *testing.T) {
	// Asking for more boxes than the space has points stops at the
	// all-units partition.
	inst := RandomDyadicPartition(2, 100, 2, 9)
	if len(inst.Boxes) != 16 {
		t.Errorf("saturated partition has %d boxes, want 16", len(inst.Boxes))
	}
}
