package agm

import (
	"math"
	"testing"

	"tetrisjoin/internal/hypergraph"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func triangle() *hypergraph.Hypergraph {
	h := hypergraph.New(3)
	h.MustAddEdge(0, 1)
	h.MustAddEdge(1, 2)
	h.MustAddEdge(0, 2)
	return h
}

func TestRhoTriangle(t *testing.T) {
	rho, err := Rho(triangle())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rho, 1.5) {
		t.Errorf("ρ*(triangle) = %g, want 1.5", rho)
	}
}

func TestRhoPathAndClique(t *testing.T) {
	// Path A-B-C: two edges; cover B twice: ρ* = ... x1+x2 with
	// x1 >= 1 (A), x2 >= 1 (C): ρ* = 2? No: A needs x1>=1, C needs x2>=1,
	// so ρ* = 2... wait that's wrong: ρ*(path3) = 2 since both end
	// vertices need their only edge fully.
	h := hypergraph.New(3)
	h.MustAddEdge(0, 1)
	h.MustAddEdge(1, 2)
	rho, err := Rho(h)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rho, 2) {
		t.Errorf("ρ*(path3) = %g, want 2", rho)
	}
	// 4-clique via binary edges: ρ* = 2 (perfect matching).
	k4 := hypergraph.New(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k4.MustAddEdge(i, j)
		}
	}
	rho, err = Rho(k4)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rho, 2) {
		t.Errorf("ρ*(K4) = %g, want 2", rho)
	}
	// 5-cycle: ρ* = 5/2... no: fractional edge cover of odd cycle C5 is 5/2·(1/2)=... each vertex in 2 edges, x=1/2 feasible, value 5/2.
	c5 := hypergraph.New(5)
	for i := 0; i < 5; i++ {
		c5.MustAddEdge(i, (i+1)%5)
	}
	rho, err = Rho(c5)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rho, 2.5) {
		t.Errorf("ρ*(C5) = %g, want 2.5", rho)
	}
}

func TestRhoErrors(t *testing.T) {
	h := hypergraph.New(2)
	h.MustAddEdge(0)
	if _, err := Rho(h); err == nil {
		t.Error("uncoverable vertex accepted")
	}
	if _, _, err := FractionalEdgeCover(h, []float64{1, 2}); err == nil {
		t.Error("wrong weight count accepted")
	}
}

func TestBoundTriangle(t *testing.T) {
	// AGM bound for the triangle with |R|=|S|=|T|=N is N^{3/2}.
	for _, n := range []int{16, 64, 100} {
		b, err := Bound(triangle(), []int{n, n, n})
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(float64(n), 1.5)
		if math.Abs(b-want) > 1e-6*want {
			t.Errorf("AGM(triangle, N=%d) = %g, want %g", n, b, want)
		}
	}
	// Asymmetric sizes: AGM = sqrt(|R||S||T|).
	b, err := Bound(triangle(), []int{4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(b, math.Sqrt(4*16*64)) {
		t.Errorf("AGM = %g, want %g", b, math.Sqrt(4*16*64))
	}
}

func TestBoundEdgeCases(t *testing.T) {
	if _, err := Bound(triangle(), []int{1, 2}); err == nil {
		t.Error("wrong size count accepted")
	}
	if _, err := Bound(triangle(), []int{1, -2, 3}); err == nil {
		t.Error("negative size accepted")
	}
	b, err := Bound(triangle(), []int{5, 0, 5})
	if err != nil || b != 0 {
		t.Errorf("empty relation should give bound 0, got %g, %v", b, err)
	}
}

func TestFHTWAcyclic(t *testing.T) {
	// α-acyclic queries have fhtw 1.
	h := hypergraph.New(4)
	h.MustAddEdge(0, 1)
	h.MustAddEdge(1, 2)
	h.MustAddEdge(2, 3)
	w, exact, err := FHTW(h)
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Error("small graph should be exact")
	}
	if !approx(w, 1) {
		t.Errorf("fhtw(path) = %g, want 1", w)
	}
}

func TestFHTWTriangle(t *testing.T) {
	// fhtw(triangle) = 3/2: the single bag {A,B,C} has ρ* = 3/2.
	w, exact, err := FHTW(triangle())
	if err != nil {
		t.Fatal(err)
	}
	if !exact || !approx(w, 1.5) {
		t.Errorf("fhtw(triangle) = %g (exact=%v), want 1.5", w, exact)
	}
}

func TestFHTWFourCycle(t *testing.T) {
	// 4-cycle: treewidth 2; fhtw = ... bags {0,1,2},{0,2,3}: each bag has
	// two binary edges covering two of three vertices plus one vertex
	// needing its own: ρ*({0,1,2} with edges 01,12, 2∩..) edges inside bag:
	// {0,1},{1,2} → cover 0: x01≥1, 2: x12≥1 → ρ*=2? But fhtw of C4 is
	// known to be 2? No—ghw(C4)=2, fhtw(C4)=2? Actually fhtw(C4) = 2 is
	// wrong: bag {0,1,2} restricted edges {0,1},{1,2},({2,3}∩bag={2}),
	// ({3,0}∩bag={0}): with the unary fragments x{2}, x{0} allowed the
	// cover is x01=1? 0 covered by {0,1} and {0}: LP optimum = 3/2 using
	// halves. The test just pins the computed value for regression.
	h := hypergraph.New(4)
	h.MustAddEdge(0, 1)
	h.MustAddEdge(1, 2)
	h.MustAddEdge(2, 3)
	h.MustAddEdge(3, 0)
	w, exact, err := FHTW(h)
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Error("C4 should be exact")
	}
	if w < 1.5-1e-9 || w > 2+1e-9 {
		t.Errorf("fhtw(C4) = %g out of plausible range [1.5, 2]", w)
	}
	// fhtw is at most tw+1 and at least 1.
	tw, _, _ := h.Treewidth()
	if w > float64(tw)+1+1e-9 {
		t.Errorf("fhtw %g exceeds tw+1 = %d", w, tw+1)
	}
}

func TestFHTWNotWorseThanTreewidthPlusOne(t *testing.T) {
	// fhtw(H) ≤ tw(H)+1 always (each bag of ≤ w+1 vertices has ρ* ≤ w+1).
	graphs := []*hypergraph.Hypergraph{triangle()}
	k5 := hypergraph.New(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			k5.MustAddEdge(i, j)
		}
	}
	graphs = append(graphs, k5)
	for _, h := range graphs {
		w, _, err := FHTW(h)
		if err != nil {
			t.Fatal(err)
		}
		tw, _, err := h.Treewidth()
		if err != nil {
			t.Fatal(err)
		}
		if w > float64(tw)+1+1e-9 {
			t.Errorf("fhtw %g > tw+1 %d", w, tw+1)
		}
		if w < 1-1e-9 {
			t.Errorf("fhtw %g < 1", w)
		}
	}
}

func TestWidthOfDecomposition(t *testing.T) {
	h := triangle()
	order, _ := h.EliminationOrder()
	d, err := h.DecompositionFromOrder(order)
	if err != nil {
		t.Fatal(err)
	}
	w, err := WidthOfDecomposition(h, d)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(w, 1.5) {
		t.Errorf("decomposition width = %g, want 1.5", w)
	}
}

func TestHelpers(t *testing.T) {
	if EdgeMask([]int{0, 2}) != 0b101 {
		t.Error("EdgeMask")
	}
	if !Subsumes(0b111, 0b101) || Subsumes(0b011, 0b101) {
		t.Error("Subsumes")
	}
	if PopCount(0b1011) != 3 {
		t.Error("PopCount")
	}
}
