// Package agm computes the size-bound machinery of Appendix A of the
// Tetris paper: fractional edge covers and the fractional edge cover
// number ρ* (Definition A.2), the per-instance AGM bound (Definition
// A.1), and the fractional hypertree width fhtw (Appendix A.2).
package agm

import (
	"fmt"
	"math"
	"math/bits"

	"tetrisjoin/internal/hypergraph"
	"tetrisjoin/internal/lp"
)

// FractionalEdgeCover solves the weighted fractional edge cover LP
//
//	minimize   Σ_F w_F · x_F
//	subject to Σ_{F ∋ v} x_F ≥ 1  for every vertex v,   x ≥ 0,
//
// returning the optimal weights and objective value. Vertices belonging
// to no edge make the program infeasible.
func FractionalEdgeCover(h *hypergraph.Hypergraph, weights []float64) ([]float64, float64, error) {
	edges := h.Edges()
	if len(edges) == 0 {
		if h.N() == 0 {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("agm: vertices cannot be covered without edges")
	}
	if weights == nil {
		weights = make([]float64, len(edges))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(edges) {
		return nil, 0, fmt.Errorf("agm: %d weights for %d edges", len(weights), len(edges))
	}
	p := lp.Problem{C: weights}
	for v := 0; v < h.N(); v++ {
		row := make([]float64, len(edges))
		nonzero := false
		for i, e := range edges {
			for _, u := range e {
				if u == v {
					row[i] = 1
					nonzero = true
					break
				}
			}
		}
		if !nonzero {
			return nil, 0, fmt.Errorf("agm: vertex %d belongs to no edge", v)
		}
		p.A = append(p.A, row)
		p.B = append(p.B, 1)
	}
	sol, err := lp.Solve(p)
	if err != nil {
		return nil, 0, fmt.Errorf("agm: %w", err)
	}
	return sol.X, sol.Value, nil
}

// Rho returns the fractional edge cover number ρ*(H) — the unweighted
// optimum (Definition A.2).
func Rho(h *hypergraph.Hypergraph) (float64, error) {
	_, v, err := FractionalEdgeCover(h, nil)
	return v, err
}

// Bound returns the per-instance AGM bound (Definition A.1):
// min Π_F |R_F|^{x_F} over fractional edge covers x, computed by solving
// the cover LP with weights log2|R_F|. sizes[i] is the cardinality of the
// relation on edge i; empty relations give bound 0.
func Bound(h *hypergraph.Hypergraph, sizes []int) (float64, error) {
	edges := h.Edges()
	if len(sizes) != len(edges) {
		return 0, fmt.Errorf("agm: %d sizes for %d edges", len(sizes), len(edges))
	}
	weights := make([]float64, len(sizes))
	for i, s := range sizes {
		if s < 0 {
			return 0, fmt.Errorf("agm: negative size %d", s)
		}
		if s == 0 {
			return 0, nil
		}
		weights[i] = math.Log2(float64(s))
	}
	_, v, err := FractionalEdgeCover(h, weights)
	if err != nil {
		return 0, err
	}
	return math.Exp2(v), nil
}

// rhoOfBag computes ρ* of the hypergraph restricted to a bag: edges are
// intersected with the bag and must cover its vertices.
func rhoOfBag(h *hypergraph.Hypergraph, bag uint64, memo map[uint64]float64) (float64, error) {
	if v, ok := memo[bag]; ok {
		return v, nil
	}
	var verts []int
	for v := 0; v < h.N(); v++ {
		if bag>>uint(v)&1 == 1 {
			verts = append(verts, v)
		}
	}
	remap := make(map[int]int, len(verts))
	for i, v := range verts {
		remap[v] = i
	}
	sub := hypergraph.New(len(verts))
	for _, e := range h.Edges() {
		var inter []int
		for _, v := range e {
			if bag>>uint(v)&1 == 1 {
				inter = append(inter, remap[v])
			}
		}
		if len(inter) > 0 {
			sub.MustAddEdge(inter...)
		}
	}
	rho, err := Rho(sub)
	if err != nil {
		return 0, err
	}
	memo[bag] = rho
	return rho, nil
}

// WidthOfDecomposition returns the fractional hypertree width of one tree
// decomposition: the maximum ρ* over its bags.
func WidthOfDecomposition(h *hypergraph.Hypergraph, d *hypergraph.Decomposition) (float64, error) {
	memo := map[uint64]float64{}
	width := 0.0
	for _, mask := range d.BagMasks() {
		rho, err := rhoOfBag(h, mask, memo)
		if err != nil {
			return 0, err
		}
		if rho > width {
			width = rho
		}
	}
	return width, nil
}

// FHTW computes the fractional hypertree width: the minimum over tree
// decompositions of the maximum bag ρ*. Decompositions are enumerated
// through elimination orders — exact for n ≤ 8 (all n! orders, with bag
// ρ* memoized across orders), and via exact-treewidth plus min-fill
// orders beyond that (an upper bound, flagged by exact=false).
func FHTW(h *hypergraph.Hypergraph) (width float64, exact bool, err error) {
	n := h.N()
	if n == 0 {
		return 0, true, nil
	}
	memo := map[uint64]float64{}
	best := math.Inf(1)
	try := func(order []int) error {
		d, err := h.DecompositionFromOrder(order)
		if err != nil {
			return err
		}
		w := 0.0
		for _, mask := range d.BagMasks() {
			rho, err := rhoOfBag(h, mask, memo)
			if err != nil {
				return err
			}
			if rho > w {
				w = rho
			}
			if w >= best {
				return nil // cannot improve
			}
		}
		if w < best {
			best = w
		}
		return nil
	}
	if n <= 8 {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var rec func(k int) error
		rec = func(k int) error {
			if k == n {
				return try(perm)
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				if err := rec(k + 1); err != nil {
					return err
				}
				perm[k], perm[i] = perm[i], perm[k]
			}
			return nil
		}
		if err := rec(0); err != nil {
			return 0, false, err
		}
		return best, true, nil
	}
	if _, order, err := h.Treewidth(); err == nil {
		if e := try(order); e != nil {
			return 0, false, e
		}
	}
	order, _ := h.MinFillOrder()
	if e := try(order); e != nil {
		return 0, false, e
	}
	return best, false, nil
}

// EdgeMask converts an edge's vertex list to a bitmask; exposed for
// callers combining agm with decomposition bags.
func EdgeMask(e []int) uint64 {
	var m uint64
	for _, v := range e {
		m |= 1 << uint(v)
	}
	return m
}

// Subsumes reports whether the bag mask covers the edge mask; a
// convenience built on bit arithmetic.
func Subsumes(bag, edge uint64) bool { return edge&^bag == 0 }

// PopCount returns the number of set bits; exposed for width reporting.
func PopCount(m uint64) int { return bits.OnesCount64(m) }
