package core

import (
	"context"
	"fmt"

	"tetrisjoin/internal/dyadic"
)

// Mode selects the knowledge-base initialization strategy of Algorithm 2,
// which determines the runtime guarantee Tetris achieves (Sections
// 4.3–4.5 of the paper).
type Mode int

const (
	// Reloaded starts with an empty knowledge base and loads gap boxes
	// lazily from the oracle; it achieves the certificate-based
	// ("beyond worst-case") bounds: Õ(|C|+Z) for treewidth 1 (Thm 4.7),
	// Õ(|C|^{w+1}+Z) for treewidth w (Thm 4.9), Õ(|C|^{n-1}+Z) in
	// general (Thm E.11). This is the default.
	Reloaded Mode = iota
	// Preloaded copies the entire gap box set into the knowledge base
	// up front; with a suitable SAO it achieves the worst-case optimal
	// bounds: Õ(N+AGM) (Thm D.2), Õ(N+Z) for α-acyclic queries
	// (Thm D.8) and Õ(N^fhtw + Z) in general (Thm 4.6).
	Preloaded
	// PreloadedLB is Tetris-Preloaded-LB (Algorithm 3): the input is
	// lifted to 2n-2 dimensions through the Balance map before running,
	// achieving Õ(|B|^{n/2} + Z) (Theorem F.7).
	PreloadedLB
	// ReloadedLB is Tetris-Reloaded-LB: the lazy variant of the above,
	// achieving Õ(|C|^{n/2} + Z) (Theorem F.9). Partitions are rebuilt
	// whenever the number of loaded boxes doubles (the paper's periodic
	// re-adjustment).
	ReloadedLB
)

// ParseMode maps the user-facing mode names ("reloaded", "preloaded",
// "reloaded-lb", "preloaded-lb"; "" means the Reloaded default) onto
// modes — the single inverse of Mode.String's "tetris-" spellings,
// shared by the CLI and the server protocol.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "reloaded":
		return Reloaded, nil
	case "preloaded":
		return Preloaded, nil
	case "reloaded-lb":
		return ReloadedLB, nil
	case "preloaded-lb":
		return PreloadedLB, nil
	default:
		return 0, fmt.Errorf("core: unknown mode %q", s)
	}
}

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Reloaded:
		return "tetris-reloaded"
	case Preloaded:
		return "tetris-preloaded"
	case PreloadedLB:
		return "tetris-preloaded-lb"
	case ReloadedLB:
		return "tetris-reloaded-lb"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a Tetris run.
type Options struct {
	// Mode selects the knowledge-base initialization (default Reloaded).
	Mode Mode
	// SAO is the splitting attribute order: a permutation of dimension
	// indices. The skeleton splits target boxes along the first thick
	// dimension in this order. Nil means the natural order 0..n-1.
	// Ignored by the LB modes, which impose the Balance order of
	// Appendix F.5.
	SAO []int
	// NoCache disables line 19 of Algorithm 1 (caching of resolvents),
	// restricting the algorithm to Tree Ordered Geometric Resolution
	// (Section 5.1). Used to reproduce Theorems 5.1 and 5.2.
	NoCache bool
	// SinglePass uses the TetrisSkeleton2 variant of the paper's footnote
	// 13 and Theorem D.2's proof: output tuples are reported inside the
	// skeleton — an uncovered unit box is an output, since the knowledge
	// base holds every gap box — so the whole enumeration is one
	// depth-first pass with no outer-loop restarts. Requires Preloaded
	// mode. This is what makes the worst-case bounds (D.2, D.8, 5.1)
	// hold with large outputs; without it each output restarts the
	// search from the root.
	SinglePass bool
	// DisableSubsume turns off knowledge-base compaction (removal of
	// boxes covered by a newly learned resolvent). Compaction does not
	// change the covered region; disabling it aids debugging and keeps
	// resolution counts directly comparable to the paper's accounting.
	DisableSubsume bool
	// TrackProvenance enables the gap-vs-output resolution accounting of
	// Definitions C.3/C.4, populating Stats.GapResolutions and
	// Stats.OutputResolutions at the cost of one map entry per resolvent.
	TrackProvenance bool
	// MaxResolutions aborts the run with an error after this many
	// resolutions (0 = unlimited). A safety valve for adversarial
	// experiments.
	MaxResolutions int64
	// MaxOutput stops after reporting this many output tuples
	// (0 = unlimited).
	MaxOutput int
	// Budget, when non-nil, replaces MaxResolutions/MaxOutput with a
	// quota shared across several runs: the sharded executor hands the
	// same Budget to every shard so the limits cap the combined work.
	// When nil, the Max* fields above apply to this run alone.
	Budget *Budget
	// Base, when non-nil, is a prebuilt shared knowledge base
	// (BuildPreloadedBase) consulted read-only during the run. Under
	// Preloaded it stands in for re-inserting the full gap set: prepared
	// plans build it once and hand it to every subsequent execution,
	// which is what amortizes the Preloaded setup cost across repeated
	// runs of one query. Under Reloaded it is prior knowledge — boxes
	// the caller certifies to contain no output of THIS run's box cover
	// problem — and the run still loads lazily from the oracle on top of
	// it; the catalog's incremental maintenance uses this to hand each
	// delta pass the unchanged atoms' gap set prebuilt, so the pass only
	// discovers the delta's certificate. The LB modes ignore it.
	Base *PreparedBase
	// Context, when non-nil, cancels the run cooperatively: it is checked
	// between outer-loop iterations and output reports, and the run
	// returns the context's error. The sharded executor uses it to stop
	// sibling shards after a failure or an early stop.
	Context context.Context
	// StealDepth bounds dynamic shard splitting in RunShards. An idle
	// worker steals by having a busy worker split off the SAO-later half
	// of its remaining region (the same first-thick-dimension split the
	// skeleton's recursion takes); fragments may be carved at most
	// StealDepth binary splits below the universe. 0 applies the default
	// bound; a negative value disables dynamic splitting entirely, so the
	// run balances only across the static ShardRoots partition. The
	// deterministic merge order — and therefore the output order — is
	// identical at every setting. Sequential runs ignore it.
	StealDepth int
	// OnOutput, if non-nil, is invoked for every output tuple as it is
	// found. Returning false stops the enumeration early. The slice is
	// reused; callers must copy it to retain it.
	OnOutput func(tuple []uint64) bool
	// OnResolve, if non-nil, observes every geometric resolution: the two
	// witnesses, their resolvent, and the dimension resolved on (in the
	// run's working space — the lifted space for LB modes). Intended for
	// tracing and tests; it must not retain the boxes without copying.
	OnResolve func(w1, w2, resolvent dyadic.Box, dim int)
}

// Stats reports the work performed by a Tetris run. Resolution counts are
// the paper's primary complexity measure (Lemma 4.5: total runtime is
// Õ(#resolutions)).
type Stats struct {
	// Resolutions is the total number of geometric resolutions performed.
	Resolutions int64
	// GapResolutions counts resolutions not involving any output box
	// (Definition C.3). Populated only with Options.TrackProvenance.
	GapResolutions int64
	// OutputResolutions counts resolutions involving an output box
	// directly or transitively (Definition C.4). Populated only with
	// Options.TrackProvenance.
	OutputResolutions int64
	// SkeletonCalls counts recursive TetrisSkeleton invocations.
	SkeletonCalls int64
	// Splits counts Split-First-Thick-Dimension operations.
	Splits int64
	// CoverHits counts successful knowledge-base containment lookups
	// (line 1 of Algorithm 1).
	CoverHits int64
	// OracleCalls counts probes of the gap box oracle (line 4 of
	// Algorithm 2).
	OracleCalls int64
	// BoxesLoaded counts gap boxes added to the knowledge base from the
	// oracle. Under Reloaded this is the implicit certificate size
	// witness (Lemma E.1: O(|C|) up to Õ(1) factors).
	BoxesLoaded int64
	// Outputs is the number of output tuples reported.
	Outputs int64
	// Rebuilds counts partition rebuilds in ReloadedLB mode.
	Rebuilds int64
	// IndexBuilds counts database indexes constructed on behalf of the
	// run. The core engine never builds indexes itself; the join layer
	// charges plan-preparation builds to the execution that triggered
	// them, so a one-shot Execute reports the indexes it had to build
	// while an execution of an already-prepared plan reports 0 — the
	// measurable witness that the catalog amortizes index construction.
	IndexBuilds int64
	// KnowledgeBase is the final number of boxes in the knowledge base.
	KnowledgeBase int
	// Steals counts fragments the work-stealing executor split off
	// running workers' regions (0 for sequential runs and for runs with
	// dynamic splitting disabled).
	Steals int64
	// ParallelWorkers is the number of worker goroutines the sharded
	// executor launched for the run (0 for sequential runs).
	ParallelWorkers int64
	// MaxWorkerResolutions is the resolution count of the run's busiest
	// worker. MaxWorkerResolutions / (Resolutions / ParallelWorkers) is
	// the max/mean balance share: 1.0 is a perfectly balanced run,
	// ParallelWorkers means one worker did everything.
	MaxWorkerResolutions int64
}

// Merge accumulates the counters of another run into s. The sharded
// executor uses it to combine per-shard statistics: every field is a sum
// (KnowledgeBase becomes the total number of boxes held across shard
// knowledge bases), except the executor-shape fields ParallelWorkers and
// MaxWorkerResolutions, which take the maximum — summing them across
// the runs a caller accumulates (e.g. maintenance passes) would turn a
// per-run balance diagnostic into a meaningless total.
func (s *Stats) Merge(other Stats) {
	s.Resolutions += other.Resolutions
	s.GapResolutions += other.GapResolutions
	s.OutputResolutions += other.OutputResolutions
	s.SkeletonCalls += other.SkeletonCalls
	s.Splits += other.Splits
	s.CoverHits += other.CoverHits
	s.OracleCalls += other.OracleCalls
	s.BoxesLoaded += other.BoxesLoaded
	s.Outputs += other.Outputs
	s.Rebuilds += other.Rebuilds
	s.IndexBuilds += other.IndexBuilds
	s.KnowledgeBase += other.KnowledgeBase
	s.Steals += other.Steals
	s.ParallelWorkers = max(s.ParallelWorkers, other.ParallelWorkers)
	s.MaxWorkerResolutions = max(s.MaxWorkerResolutions, other.MaxWorkerResolutions)
}

// Result is the outcome of a Tetris run: the output tuples of the box
// cover problem (in dimension order) and the work statistics.
type Result struct {
	Tuples [][]uint64
	Stats  Stats
}

// effectiveBudget resolves the budget a run should draw from: an
// explicitly shared one, or a private budget carrying the run's own
// Max* limits, or nil when the run is unlimited.
func effectiveBudget(opts Options) *Budget {
	if opts.Budget != nil {
		return opts.Budget
	}
	return NewBudget(opts.MaxResolutions, opts.MaxOutput)
}

// checkContext reports the context's error when opts carries a cancelled
// context, and nil otherwise.
func checkContext(opts Options) error {
	if opts.Context == nil {
		return nil
	}
	select {
	case <-opts.Context.Done():
		return opts.Context.Err()
	default:
		return nil
	}
}
