package core

import (
	"testing"

	"tetrisjoin/internal/dyadic"
)

func box(s string) dyadic.Box { return dyadic.MustParseBox(s) }

func TestResolveFigure7(t *testing.T) {
	// Figure 7: resolving ⟨λ,00⟩ (bottom strip) with ⟨10,01⟩ on the
	// vertical axis yields ⟨10,0⟩.
	got, err := Resolve(box("λ,00"), box("10,01"))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(box("10,0")) {
		t.Errorf("Resolve = %s, want ⟨10,0⟩", got)
	}
	// Resolution is symmetric.
	got2, err := Resolve(box("10,01"), box("λ,00"))
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(got) {
		t.Errorf("Resolve not symmetric: %s vs %s", got, got2)
	}
}

func TestResolveCases(t *testing.T) {
	cases := []struct {
		w1, w2, want string
	}{
		// Pivot at full-λ elsewhere: ⟨0⟩ with ⟨1⟩ -> ⟨λ⟩ in 1D.
		{"0", "1", "λ"},
		// Example 4.4 resolutions.
		{"01,10", "λ,11", "01,1"},
		{"λ,0", "01,1", "01,λ"},
		{"00,λ", "01,λ", "0,λ"},
		{"11,10", "λ,11", "11,1"},
		{"11,1", "λ,0", "11,λ"},
		{"11,λ", "10,λ", "1,λ"},
		{"1,λ", "0,λ", "λ,λ"},
		// Deeper pivots keep the common prefix.
		{"010,λ", "011,00", "01,00"},
	}
	for _, c := range cases {
		got, err := Resolve(box(c.w1), box(c.w2))
		if err != nil {
			t.Errorf("Resolve(%s,%s): %v", c.w1, c.w2, err)
			continue
		}
		if !got.Equal(box(c.want)) {
			t.Errorf("Resolve(%s,%s) = %s, want %s", c.w1, c.w2, got, c.want)
		}
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct{ w1, w2 string }{
		{"00,λ", "11,λ"}, // not siblings
		{"0,0", "1,1"},   // two sibling dimensions
		{"01,λ", "01,λ"}, // identical: nothing to resolve
		{"0,00", "1,11"}, // sibling dim plus incomparable dim
		{"λ,λ", "λ,λ"},   // no pivot
	}
	for _, c := range cases {
		if _, err := Resolve(box(c.w1), box(c.w2)); err == nil {
			t.Errorf("Resolve(%s,%s) unexpectedly succeeded", c.w1, c.w2)
		}
	}
	if _, err := Resolve(box("0,λ"), box("1")); err == nil {
		t.Error("Resolve accepted dimension mismatch")
	}
}

// TestResolveSoundness: the resolvent is covered by the union of its two
// inputs (the defining property of geometric resolution), checked
// pointwise on small instances.
func TestResolveSoundness(t *testing.T) {
	const d = 3
	depths := []uint8{d, d}
	pairs := [][2]string{
		{"λ,00", "10,01"},
		{"0,λ", "1,01"},
		{"010,0", "011,λ"},
		{"01,10", "λ,11"},
	}
	for _, p := range pairs {
		w1, w2 := box(p[0]), box(p[1])
		w, err := Resolve(w1, w2)
		if err != nil {
			t.Fatalf("Resolve(%s,%s): %v", p[0], p[1], err)
		}
		for x := uint64(0); x < 1<<d; x++ {
			for y := uint64(0); y < 1<<d; y++ {
				pt := []uint64{x, y}
				if w.ContainsPoint(pt, depths) &&
					!w1.ContainsPoint(pt, depths) && !w2.ContainsPoint(pt, depths) {
					t.Fatalf("resolvent %s of (%s,%s) covers (%d,%d) outside the union", w, w1, w2, x, y)
				}
			}
		}
	}
}

func TestIsOrderedResolution(t *testing.T) {
	sao := []int{0, 1, 2}
	if !IsOrderedResolution(box("0,00,λ"), box("0,01,λ"), 1, sao) {
		t.Error("valid ordered resolution rejected")
	}
	if IsOrderedResolution(box("0,00,1"), box("0,01,λ"), 1, sao) {
		t.Error("trailing non-λ accepted as ordered")
	}
	// With a different SAO, "after the pivot" changes.
	if !IsOrderedResolution(box("0,00,1"), box("0,01,1"), 1, []int{2, 0, 1}) {
		t.Error("resolution ordered under SAO (2,0,1) rejected")
	}
}

func TestResolveOrderedPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("resolveOrdered accepted non-sibling pivot")
		}
	}()
	resolveOrdered(box("00,λ"), box("11,λ"), 0)
}
