package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"tetrisjoin/internal/dyadic"
)

func TestShardRootsPartition(t *testing.T) {
	depths := []uint8{2, 3}
	sao := []int{1, 0}
	for _, want := range []int{1, 2, 4, 8, 16} {
		roots := ShardRoots(depths, sao, want)
		if len(roots) != want {
			t.Fatalf("shards=%d: got %d roots", want, len(roots))
		}
		// Disjoint and covering: every point of the space lies in exactly
		// one root.
		for a := uint64(0); a < 4; a++ {
			for b := uint64(0); b < 8; b++ {
				hits := 0
				for _, r := range roots {
					if r.ContainsPoint([]uint64{a, b}, depths) {
						hits++
					}
				}
				if hits != 1 {
					t.Fatalf("shards=%d: point (%d,%d) in %d roots", want, a, b, hits)
				}
			}
		}
	}
	// The split follows the SAO prefix: with sao[0]=1, two shards split
	// dimension 1 first.
	roots := ShardRoots(depths, sao, 2)
	if !roots[0][1].Contains(dyadic.MustParseBox("λ,0")[1]) || roots[0][1].Len != 1 {
		t.Errorf("2 shards did not split SAO-first dimension: %v", roots)
	}
	if roots[0][0].Len != 0 {
		t.Errorf("2 shards split a non-SAO-first dimension: %v", roots)
	}
}

func TestShardRootsExhaustedSpace(t *testing.T) {
	// A 1×1-bit space has only 4 points; asking for 64 shards must stop
	// at 4 unit boxes rather than loop.
	roots := ShardRoots([]uint8{1, 1}, []int{0, 1}, 64)
	if len(roots) != 4 {
		t.Fatalf("got %d roots, want 4", len(roots))
	}
	for _, r := range roots {
		if !r.IsUnit([]uint8{1, 1}) {
			t.Fatalf("non-unit root %v in exhausted space", r)
		}
	}
}

func TestBudget(t *testing.T) {
	if NewBudget(0, 0) != nil {
		t.Error("unlimited budget should be nil")
	}
	b := NewBudget(2, 0)
	if !b.AddResolution() || !b.AddResolution() {
		t.Error("within-budget resolutions rejected")
	}
	if b.AddResolution() {
		t.Error("over-budget resolution accepted")
	}
	if emit, stop := b.ClaimOutput(); !emit || stop {
		t.Error("unlimited outputs limited")
	}
	b = NewBudget(0, 2)
	if emit, stop := b.ClaimOutput(); !emit || stop {
		t.Error("first of two slots wrong")
	}
	if emit, stop := b.ClaimOutput(); !emit || !stop {
		t.Error("last slot should emit and stop")
	}
	if emit, _ := b.ClaimOutput(); emit {
		t.Error("exhausted quota emitted")
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Resolutions: 1, Outputs: 2, KnowledgeBase: 3, CoverHits: 4}
	a.Merge(Stats{Resolutions: 10, Outputs: 20, KnowledgeBase: 30, BoxesLoaded: 5})
	want := Stats{Resolutions: 11, Outputs: 22, KnowledgeBase: 33, CoverHits: 4, BoxesLoaded: 5}
	if a != want {
		t.Errorf("Merge = %+v, want %+v", a, want)
	}
}

// shardInstance is a 3-dimensional BCP with a non-trivial output set.
func shardInstance(t testing.TB) *BoxOracle {
	t.Helper()
	depths := []uint8{3, 3, 3}
	boxes := []dyadic.Box{
		dyadic.MustParseBox("0,0,λ"),
		dyadic.MustParseBox("1,λ,1"),
		dyadic.MustParseBox("λ,11,0"),
		dyadic.MustParseBox("01,λ,00"),
		dyadic.MustParseBox("λ,λ,111"),
	}
	return MustBoxOracle(depths, boxes)
}

// TestRunShardsMatchesSequential: for every mode, shard count and
// parallelism, the sharded run reproduces the sequential run exactly —
// same tuples in the same order, same output count.
func TestRunShardsMatchesSequential(t *testing.T) {
	o := shardInstance(t)
	for _, mode := range []Mode{Preloaded, Reloaded} {
		seq, err := Run(o, Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Tuples) == 0 {
			t.Fatal("instance has empty output; test is vacuous")
		}
		for _, shards := range []int{1, 2, 4, 8} {
			for par := 1; par <= 4; par++ {
				got, err := RunShards(func() Oracle { return o.Clone() },
					Options{Mode: mode}, par, shards)
				if err != nil {
					t.Fatalf("mode=%v shards=%d par=%d: %v", mode, shards, par, err)
				}
				if !reflect.DeepEqual(got.Tuples, seq.Tuples) {
					t.Fatalf("mode=%v shards=%d par=%d: tuples %v != sequential %v",
						mode, shards, par, got.Tuples, seq.Tuples)
				}
				if got.Stats.Outputs != seq.Stats.Outputs {
					t.Fatalf("mode=%v shards=%d par=%d: outputs %d != %d",
						mode, shards, par, got.Stats.Outputs, seq.Stats.Outputs)
				}
			}
		}
	}
}

func TestRunShardsSinglePass(t *testing.T) {
	o := shardInstance(t)
	seq, err := Run(o, Options{Mode: Preloaded, SinglePass: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunShards(func() Oracle { return o.Clone() },
		Options{Mode: Preloaded, SinglePass: true}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Tuples, seq.Tuples) {
		t.Fatalf("single-pass sharded %v != sequential %v", got.Tuples, seq.Tuples)
	}
}

func TestRunShardsMaxOutputBudget(t *testing.T) {
	o := shardInstance(t)
	seq, err := Run(o, Options{Mode: Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	total := len(seq.Tuples)
	for _, limit := range []int{1, 2, total - 1, total, total + 5} {
		got, err := RunShards(func() Oracle { return o.Clone() },
			Options{Mode: Preloaded, MaxOutput: limit}, 4, 4)
		if err != nil {
			t.Fatalf("limit=%d: %v", limit, err)
		}
		want := min(limit, total)
		if len(got.Tuples) != want || got.Stats.Outputs != int64(want) {
			t.Errorf("limit=%d: got %d tuples (Outputs=%d), want %d",
				limit, len(got.Tuples), got.Stats.Outputs, want)
		}
	}
}

func TestRunShardsOnOutputSerializedAndOrdered(t *testing.T) {
	o := shardInstance(t)
	seq, err := Run(o, Options{Mode: Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	var got [][]uint64
	res, err := RunShards(func() Oracle { return o.Clone() },
		Options{Mode: Preloaded, OnOutput: func(tup []uint64) bool {
			got = append(got, append([]uint64(nil), tup...))
			return true
		}}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, seq.Tuples) {
		t.Fatalf("streamed %v != sequential %v", got, seq.Tuples)
	}
	if res.Stats.Outputs != int64(len(seq.Tuples)) {
		t.Errorf("Outputs = %d, want %d", res.Stats.Outputs, len(seq.Tuples))
	}

	// Early stop: exactly the first k tuples arrive, in order.
	const k = 2
	got = nil
	res, err = RunShards(func() Oracle { return o.Clone() },
		Options{Mode: Preloaded, OnOutput: func(tup []uint64) bool {
			got = append(got, append([]uint64(nil), tup...))
			return len(got) < k
		}}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, seq.Tuples[:k]) {
		t.Fatalf("early-stopped stream %v != first %d sequential tuples", got, k)
	}
	if res.Stats.Outputs != k {
		t.Errorf("Outputs = %d, want %d", res.Stats.Outputs, k)
	}
}

func TestRunShardsContextCancellation(t *testing.T) {
	o := shardInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunShards(func() Oracle { return o.Clone() },
		Options{Mode: Preloaded, Context: ctx}, 2, 4)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// A clean OnOutput stop is a result, not an error, even when the
	// caller cancels its context on the way out (sequential parity: the
	// loop breaks on stop without rechecking the context).
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	res, err := RunShards(func() Oracle { return o.Clone() },
		Options{Mode: Preloaded, Context: ctx, OnOutput: func([]uint64) bool {
			cancel()
			return false
		}}, 2, 4)
	if err != nil {
		t.Fatalf("early stop with cancelled context returned error %v", err)
	}
	if res.Stats.Outputs != 1 {
		t.Errorf("Outputs = %d, want 1", res.Stats.Outputs)
	}
}

func TestRunShardsResolutionBudget(t *testing.T) {
	o := shardInstance(t)
	_, err := RunShards(func() Oracle { return o.Clone() },
		Options{Mode: Preloaded, MaxResolutions: 2}, 2, 4)
	if err == nil {
		t.Fatal("shared resolution budget not enforced")
	}
	// A shard failure must surface even when OnOutput is streaming — and
	// even if the callback would have stopped the enumeration: nothing
	// past a failed shard is delivered, so the callback cannot mask it.
	_, err = RunShards(func() Oracle { return o.Clone() },
		Options{Mode: Preloaded, MaxResolutions: 2, OnOutput: func([]uint64) bool { return false }}, 2, 4)
	if err == nil {
		t.Fatal("shard failure swallowed by OnOutput early stop")
	}
}

func TestRunShardsExhaustedQuotaStopsSiblings(t *testing.T) {
	// With MaxOutput=1 the outer loops of output-free shards must notice
	// the exhausted quota and stop instead of proving their whole region
	// empty: total oracle calls stay far below the unlimited run's.
	o := shardInstance(t)
	full, err := RunShards(func() Oracle { return o.Clone() }, Options{Mode: Reloaded}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := RunShards(func() Oracle { return o.Clone() },
		Options{Mode: Reloaded, MaxOutput: 1}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Tuples) != 1 {
		t.Fatalf("got %d tuples, want 1", len(limited.Tuples))
	}
	if limited.Stats.OracleCalls >= full.Stats.OracleCalls {
		t.Errorf("limited run probed %d times, unlimited %d — exhausted quota did not stop siblings",
			limited.Stats.OracleCalls, full.Stats.OracleCalls)
	}
}

func TestRunShardsSerializesOnResolve(t *testing.T) {
	// OnResolve observers are written for the sequential engine; RunShards
	// must serialize the callback. Run with -race: an unserialized append
	// from 4 workers would trip the detector.
	o := shardInstance(t)
	var resolutions []int
	res, err := RunShards(func() Oracle { return o.Clone() },
		Options{Mode: Preloaded, OnResolve: func(_, _, _ dyadic.Box, dim int) {
			resolutions = append(resolutions, dim)
		}}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(resolutions)) != res.Stats.Resolutions {
		t.Errorf("observed %d resolutions, stats say %d", len(resolutions), res.Stats.Resolutions)
	}
}

func TestLBModesHonorSharedBudgetOutputs(t *testing.T) {
	// The LB loop must draw output slots from an explicitly shared Budget
	// (the Budget doc says it replaces MaxOutput).
	o := shardInstance(t)
	full, err := Run(o, Options{Mode: ReloadedLB})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Tuples) < 2 {
		t.Fatal("instance too small for the test")
	}
	res, err := Run(o, Options{Mode: ReloadedLB, Budget: NewBudget(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Errorf("shared budget ignored: got %d tuples, want 1", len(res.Tuples))
	}
	// And MaxOutput keeps working through the implicit budget.
	res, err = Run(o, Options{Mode: ReloadedLB, MaxOutput: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Errorf("MaxOutput ignored: got %d tuples, want 2", len(res.Tuples))
	}
}

func TestRunShardsRejectsLBModes(t *testing.T) {
	o := shardInstance(t)
	for _, mode := range []Mode{PreloadedLB, ReloadedLB} {
		if _, err := RunShards(func() Oracle { return o.Clone() }, Options{Mode: mode}, 2, 2); err == nil {
			t.Errorf("mode %v accepted", mode)
		}
	}
}

func TestRunBoxRestrictsToRoot(t *testing.T) {
	o := shardInstance(t)
	seq, err := Run(o, Options{Mode: Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	depths := o.Depths()
	// Splitting the space by hand and concatenating per-root outputs must
	// reproduce the sequential enumeration.
	roots := ShardRoots(depths, []int{0, 1, 2}, 4)
	var merged [][]uint64
	for _, root := range roots {
		res, err := RunBox(o, Options{Mode: Preloaded}, root)
		if err != nil {
			t.Fatal(err)
		}
		for _, tup := range res.Tuples {
			if !root.ContainsPoint(tup, depths) {
				t.Fatalf("RunBox(%v) leaked tuple %v outside its root", root, tup)
			}
		}
		merged = append(merged, res.Tuples...)
	}
	if !reflect.DeepEqual(merged, seq.Tuples) {
		t.Fatalf("concatenated RunBox outputs %v != sequential %v", merged, seq.Tuples)
	}
	if _, err := RunBox(o, Options{Mode: PreloadedLB}, dyadic.Universe(3)); err == nil {
		t.Error("RunBox accepted an LB mode")
	}
	if _, err := RunBox(o, Options{Mode: Preloaded}, dyadic.Universe(2)); err == nil {
		t.Error("RunBox accepted a root of wrong dimension")
	}
}

func TestRunShardsValidation(t *testing.T) {
	o := shardInstance(t)
	factory := func() Oracle { return o.Clone() }
	for name, call := range map[string]func() error{
		"zero-parallelism": func() error { _, err := RunShards(factory, Options{Mode: Preloaded}, 0, 2); return err },
		"zero-shards":      func() error { _, err := RunShards(factory, Options{Mode: Preloaded}, 2, 0); return err },
		"bad-sao":          func() error { _, err := RunShards(factory, Options{Mode: Preloaded, SAO: []int{0}}, 2, 2); return err },
		"singlepass-reloaded": func() error {
			_, err := RunShards(factory, Options{Mode: Reloaded, SinglePass: true}, 2, 2)
			return err
		},
	} {
		if call() == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestRunShardsManyShardsStress(t *testing.T) {
	// More shards than points: every shard is a unit box or empty.
	o := shardInstance(t)
	seq, _ := Run(o, Options{Mode: Reloaded})
	got, err := RunShards(func() Oracle { return o.Clone() }, Options{Mode: Reloaded}, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Tuples) != fmt.Sprint(seq.Tuples) {
		t.Fatalf("1024-shard run diverged: %v vs %v", got.Tuples, seq.Tuples)
	}
}
