package core

import (
	"context"
	"errors"

	"tetrisjoin/internal/boxtree"
	"tetrisjoin/internal/dyadic"
)

// errResolutionBudget is returned (wrapped) when Options.MaxResolutions
// is exceeded.
var errResolutionBudget = errors.New("core: resolution budget exhausted")

// skeleton is the state of Algorithm 1: the knowledge base A, the
// splitting attribute order, and instrumentation. A single skeleton is
// reused across the repeated invocations made by the outer loop, so the
// knowledge base persists exactly as the paper's global A does.
//
// # Scratch discipline
//
// Every box the skeleton manufactures — the two halves of each split and
// each resolvent — lives in a single per-skeleton interval arena
// (scratch), managed with per-frame watermarks instead of the heap:
//
//   - a frame that splits reserves 2n intervals at its watermark for the
//     split halves;
//   - the resolvent is composed above the live region, so the callback
//     and provenance reads of w1/w2 see intact data even when a witness
//     aliases the frame's own scratch;
//   - on return the surviving witness is compacted down to the frame's
//     watermark and the arena is truncated just past it, so the arena
//     high-water mark is O(recursion depth · n) no matter how many
//     resolutions a run performs.
//
// Witnesses handed back by run/root are therefore valid only until the
// next call on the same skeleton; the outer loops (tetris.go, lb.go,
// boolean.go) consume each witness before re-entering. Boxes that must
// outlive the recursion — the knowledge-base contents — are copied into
// the boxtree's own append-only slab by Insert, which is what makes the
// aliasing safe: knowledge-base boxes returned by ContainsSuperset stay
// valid even if a later subsume-delete drops them from the tree.
//
// In steady state (arena and knowledge-base slabs warmed up) the entire
// recursion allocates nothing.
type skeleton struct {
	kb *boxtree.Tree
	// base, when non-nil, is a read-only knowledge base consulted after
	// kb: the preloaded gap box set shared by every shard of a RunShards
	// execution. The skeleton never writes to it (learned resolvents and
	// outputs go to the private kb), which is what makes sharing it
	// across worker goroutines safe.
	base    *boxtree.Tree
	sao     []int
	depths  []uint8
	n       int
	noCache bool
	subsume bool

	scratch []dyadic.Interval // split/resolvent arena, watermark-managed

	budget    *Budget         // shared resolution/output quota; nil = unlimited
	ctx       context.Context // cooperative cancellation; nil = never cancelled
	stats     *Stats
	onResolve func(w1, w2, resolvent dyadic.Box, dim int)

	// onUncoveredUnit, when set, turns the skeleton into TetrisSkeleton2
	// (footnote 13): an uncovered unit box is reported as an output and
	// treated as covered, so the full enumeration happens in one pass.
	// It returns false to abort the search (output limit reached).
	onUncoveredUnit func(b dyadic.Box) bool

	// fromOutput holds boxes that are output boxes or output resolvents
	// (Definition C.4), as an exact-match box set. Nil unless provenance
	// tracking is requested.
	fromOutput *boxtree.Tree
}

// errStopped signals an early stop requested by the output callback.
var errStopped = errors.New("core: enumeration stopped by caller")

func newSkeleton(n int, depths []uint8, sao []int, opts Options, stats *Stats) *skeleton {
	s := &skeleton{
		kb:        boxtree.New(n),
		sao:       sao,
		depths:    depths,
		n:         n,
		noCache:   opts.NoCache,
		subsume:   !opts.DisableSubsume,
		budget:    effectiveBudget(opts),
		ctx:       opts.Context,
		stats:     stats,
		onResolve: opts.OnResolve,
	}
	if opts.TrackProvenance {
		s.fromOutput = boxtree.New(n)
	}
	return s
}

// add inserts a box into the knowledge base.
func (s *skeleton) add(b dyadic.Box) {
	if s.subsume {
		s.kb.InsertSubsuming(b)
	} else {
		s.kb.Insert(b)
	}
}

// addOutput inserts an output (unit) box and marks its provenance.
func (s *skeleton) addOutput(b dyadic.Box) {
	if s.fromOutput != nil {
		s.fromOutput.Insert(b)
	}
	s.add(b)
}

// root invokes run on a fresh arena. Outer loops must enter through root
// so the arena does not grow across invocations.
func (s *skeleton) root(b dyadic.Box) (bool, dyadic.Box, error) {
	s.scratch = s.scratch[:0]
	return s.run(b)
}

// settle compacts the witness into the frame's watermark slot and
// truncates the arena just past it. The frame is guaranteed to have
// reserved at least n intervals at mark (the split halves), and copy is a
// memmove, so this is safe even when w already occupies [mark, mark+n).
func (s *skeleton) settle(mark int, w dyadic.Box) dyadic.Box {
	dst := dyadic.Box(s.scratch[mark : mark+s.n])
	copy(dst, w)
	s.scratch = s.scratch[:mark+s.n]
	return dst
}

// run is TetrisSkeleton (Algorithm 1). Given a target box b it returns
// (true, w) where w ⊇ b is covered by the union of the knowledge base, or
// (false, p) where p ∈ b is a unit box not covered by any stored box.
func (s *skeleton) run(b dyadic.Box) (bool, dyadic.Box, error) {
	s.stats.SkeletonCalls++
	// Cooperative cancellation for recursions whose outer loop has no
	// natural check point (Covers and the counting variant run one giant
	// root call). The counter gate keeps the hot path at one branch per
	// call and one channel poll every 1024 calls.
	if s.ctx != nil && s.stats.SkeletonCalls&1023 == 0 {
		select {
		case <-s.ctx.Done():
			return false, nil, s.ctx.Err()
		default:
		}
	}
	// Line 1: a stored box covering b is a ready-made witness. The
	// private kb (learned resolvents, outputs, lazily loaded gaps) is
	// probed first, then the shared read-only base if the shard has one.
	if a, ok := s.kb.ContainsSuperset(b); ok {
		s.stats.CoverHits++
		return true, a, nil
	}
	if s.base != nil {
		if a, ok := s.base.ContainsSuperset(b); ok {
			s.stats.CoverHits++
			return true, a, nil
		}
	}
	// Line 3: an uncovered unit box witnesses non-coverage — or, in
	// single-pass mode, is an output tuple reported on the spot.
	dim := b.FirstThick(s.sao, s.depths)
	if dim == -1 {
		if s.onUncoveredUnit != nil {
			if !s.onUncoveredUnit(b) {
				return false, nil, errStopped
			}
			s.addOutput(b)
			return true, b, nil
		}
		return false, b, nil
	}
	// Line 6: Split-First-Thick-Dimension. The two halves are carved from
	// the arena at this frame's watermark; append copies b, so this is
	// safe even though b itself usually lives lower in the same arena.
	s.stats.Splits++
	mark := len(s.scratch)
	s.scratch = append(s.scratch, b...)
	s.scratch = append(s.scratch, b...)
	b1 := dyadic.Box(s.scratch[mark : mark+s.n])
	b2 := dyadic.Box(s.scratch[mark+s.n : mark+2*s.n])
	b1[dim] = b[dim].Child(0)
	b2[dim] = b[dim].Child(1)
	v1, w1, err := s.run(b1)
	if err != nil {
		return false, nil, err
	}
	if !v1 {
		return false, s.settle(mark, w1), nil
	}
	if w1.Contains(b) {
		return true, s.settle(mark, w1), nil
	}
	v2, w2, err := s.run(b2)
	if err != nil {
		return false, nil, err
	}
	if !v2 {
		return false, s.settle(mark, w2), nil
	}
	if w2.Contains(b) {
		return true, s.settle(mark, w2), nil
	}
	// Line 18: geometric resolution of the two half-witnesses. By Lemma
	// C.1 this is always an ordered resolution on dim. The resolvent is
	// composed above the live region so w1 and w2 stay intact for the
	// callback and the provenance reads below.
	top := len(s.scratch)
	s.scratch = append(s.scratch, b...)
	w := dyadic.Box(s.scratch[top : top+s.n])
	resolveOrderedInto(w, w1, w2, dim)
	s.stats.Resolutions++
	if s.onResolve != nil {
		s.onResolve(w1, w2, w, dim)
	}
	if !s.budget.AddResolution() {
		return false, nil, errResolutionBudget
	}
	if s.fromOutput != nil {
		if s.fromOutput.Contains(w1) || s.fromOutput.Contains(w2) {
			s.fromOutput.Insert(w)
			s.stats.OutputResolutions++
		} else {
			s.stats.GapResolutions++
		}
	}
	// Line 19: cache the resolvent (skipped in Tree Ordered mode).
	if !s.noCache {
		s.add(w)
	}
	return true, s.settle(mark, w), nil
}
