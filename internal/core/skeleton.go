package core

import (
	"errors"

	"tetrisjoin/internal/boxtree"
	"tetrisjoin/internal/dyadic"
)

// errResolutionBudget is returned (wrapped) when Options.MaxResolutions
// is exceeded.
var errResolutionBudget = errors.New("core: resolution budget exhausted")

// skeleton is the state of Algorithm 1: the knowledge base A, the
// splitting attribute order, and instrumentation. A single skeleton is
// reused across the repeated invocations made by the outer loop, so the
// knowledge base persists exactly as the paper's global A does.
type skeleton struct {
	kb      *boxtree.Tree
	sao     []int
	depths  []uint8
	noCache bool
	subsume bool

	maxResolutions int64
	stats          *Stats
	onResolve      func(w1, w2, resolvent dyadic.Box, dim int)

	// onUncoveredUnit, when set, turns the skeleton into TetrisSkeleton2
	// (footnote 13): an uncovered unit box is reported as an output and
	// treated as covered, so the full enumeration happens in one pass.
	// It returns false to abort the search (output limit reached).
	onUncoveredUnit func(b dyadic.Box) bool

	// fromOutput marks boxes that are output boxes or output resolvents
	// (Definition C.4), keyed by Box.Key. Nil unless provenance tracking
	// is requested.
	fromOutput map[string]bool
}

// errStopped signals an early stop requested by the output callback.
var errStopped = errors.New("core: enumeration stopped by caller")

func newSkeleton(n int, depths []uint8, sao []int, opts Options, stats *Stats) *skeleton {
	s := &skeleton{
		kb:             boxtree.New(n),
		sao:            sao,
		depths:         depths,
		noCache:        opts.NoCache,
		subsume:        !opts.DisableSubsume,
		maxResolutions: opts.MaxResolutions,
		stats:          stats,
		onResolve:      opts.OnResolve,
	}
	if opts.TrackProvenance {
		s.fromOutput = make(map[string]bool)
	}
	return s
}

// add inserts a box into the knowledge base.
func (s *skeleton) add(b dyadic.Box) {
	if s.subsume {
		s.kb.InsertSubsuming(b)
	} else {
		s.kb.Insert(b)
	}
}

// addOutput inserts an output (unit) box and marks its provenance.
func (s *skeleton) addOutput(b dyadic.Box) {
	if s.fromOutput != nil {
		s.fromOutput[b.Key()] = true
	}
	s.add(b)
}

// run is TetrisSkeleton (Algorithm 1). Given a target box b it returns
// (true, w) where w ⊇ b is covered by the union of the knowledge base, or
// (false, p) where p ∈ b is a unit box not covered by any stored box.
func (s *skeleton) run(b dyadic.Box) (bool, dyadic.Box, error) {
	s.stats.SkeletonCalls++
	// Line 1: a stored box covering b is a ready-made witness.
	if a, ok := s.kb.ContainsSuperset(b); ok {
		s.stats.CoverHits++
		return true, a, nil
	}
	// Line 3: an uncovered unit box witnesses non-coverage — or, in
	// single-pass mode, is an output tuple reported on the spot.
	dim := b.FirstThick(s.sao, s.depths)
	if dim == -1 {
		if s.onUncoveredUnit != nil {
			if !s.onUncoveredUnit(b) {
				return false, nil, errStopped
			}
			s.addOutput(b)
			return true, b, nil
		}
		return false, b, nil
	}
	// Line 6: Split-First-Thick-Dimension.
	s.stats.Splits++
	b1, b2 := b.SplitAt(dim)
	v1, w1, err := s.run(b1)
	if err != nil {
		return false, nil, err
	}
	if !v1 {
		return false, w1, nil
	}
	if w1.Contains(b) {
		return true, w1, nil
	}
	v2, w2, err := s.run(b2)
	if err != nil {
		return false, nil, err
	}
	if !v2 {
		return false, w2, nil
	}
	if w2.Contains(b) {
		return true, w2, nil
	}
	// Line 18: geometric resolution of the two half-witnesses. By Lemma
	// C.1 this is always an ordered resolution on dim.
	w := resolveOrdered(w1, w2, dim)
	s.stats.Resolutions++
	if s.onResolve != nil {
		s.onResolve(w1, w2, w, dim)
	}
	if s.maxResolutions > 0 && s.stats.Resolutions > s.maxResolutions {
		return false, nil, errResolutionBudget
	}
	if s.fromOutput != nil {
		if s.fromOutput[w1.Key()] || s.fromOutput[w2.Key()] {
			s.fromOutput[w.Key()] = true
			s.stats.OutputResolutions++
		} else {
			s.stats.GapResolutions++
		}
	}
	// Line 19: cache the resolvent (skipped in Tree Ordered mode).
	if !s.noCache {
		s.add(w)
	}
	return true, w, nil
}
