package core

import (
	"fmt"

	"tetrisjoin/internal/boxtree"
	"tetrisjoin/internal/dyadic"
)

// Oracle provides access to the gap box set B of a box cover problem
// (Definition 3.4). It models the paper's assumption (Section 3.4) that
// pre-built database indices can return, in Õ(1) time, the gap boxes
// containing a given tuple. Implementations are provided by package index
// (B-tree, trie, dyadic-tree and KD-tree indices) and, for raw box sets,
// by BoxOracle below.
type Oracle interface {
	// Dims returns the dimensionality n of the output space.
	Dims() int
	// Depths returns the per-dimension bit depths of the output space.
	Depths() []uint8
	// GapsContaining returns the gap boxes of B that contain the given
	// point. An empty result certifies that the point is an output tuple.
	// Implementations may reuse the returned slice and box storage: the
	// result is only valid until the next GapsContaining call, and
	// callers retaining boxes across calls must Clone them.
	GapsContaining(point []uint64) []dyadic.Box
	// AllGaps enumerates the complete gap box set B. It is used by the
	// Preloaded variants and may be expensive for lazy indices. Unlike
	// GapsContaining, the result is caller-owned and stays valid.
	AllGaps() []dyadic.Box
}

// BoxOracle is an Oracle over an explicitly materialized box set, backed
// by a multilevel dyadic tree for Õ(1) containment queries. It is the
// natural oracle for BCP instances given directly as boxes (certificates,
// Klee's measure inputs, generated hard instances).
type BoxOracle struct {
	depths []uint8
	tree   *boxtree.Tree
	boxes  []dyadic.Box

	point dyadic.Box   // probe box buffer, reused per GapsContaining call
	out   []dyadic.Box // result buffer, reused per GapsContaining call
}

// NewBoxOracle builds an oracle over the given boxes. Every box must be
// valid for the given depths.
func NewBoxOracle(depths []uint8, boxes []dyadic.Box) (*BoxOracle, error) {
	if len(depths) == 0 {
		return nil, fmt.Errorf("core: oracle needs at least one dimension")
	}
	for _, d := range depths {
		if d == 0 || d > dyadic.MaxDepth {
			return nil, fmt.Errorf("core: invalid dimension depth %d", d)
		}
	}
	t := boxtree.New(len(depths))
	kept := make([]dyadic.Box, 0, len(boxes))
	for _, b := range boxes {
		if err := b.Check(depths); err != nil {
			return nil, fmt.Errorf("core: invalid gap box %v: %w", b, err)
		}
		if t.Insert(b) {
			kept = append(kept, b)
		}
	}
	return &BoxOracle{
		depths: depths,
		tree:   t,
		boxes:  kept,
		point:  make(dyadic.Box, len(depths)),
	}, nil
}

// MustBoxOracle is NewBoxOracle that panics on error; for tests and
// fixtures.
func MustBoxOracle(depths []uint8, boxes []dyadic.Box) *BoxOracle {
	o, err := NewBoxOracle(depths, boxes)
	if err != nil {
		panic(err)
	}
	return o
}

// Clone returns an independent prober over the same box set: the
// immutable containment tree and box slice are shared, the probe scratch
// is fresh. Use one clone per worker goroutine (e.g. as RunShards'
// oracle factory).
func (o *BoxOracle) Clone() *BoxOracle {
	return &BoxOracle{
		depths: o.depths,
		tree:   o.tree,
		boxes:  o.boxes,
		point:  make(dyadic.Box, len(o.depths)),
	}
}

// Dims implements Oracle.
func (o *BoxOracle) Dims() int { return len(o.depths) }

// Depths implements Oracle.
func (o *BoxOracle) Depths() []uint8 { return o.depths }

// GapsContaining implements Oracle. The result is valid until the next
// call.
func (o *BoxOracle) GapsContaining(point []uint64) []dyadic.Box {
	if len(point) != len(o.depths) {
		panic(fmt.Sprintf("core: probe point has %d values, oracle has %d dimensions", len(point), len(o.depths)))
	}
	for i, v := range point {
		o.point[i] = dyadic.Unit(v, o.depths[i])
	}
	o.out = o.tree.SupersetsAppend(o.out[:0], o.point)
	return o.out
}

// AllGaps implements Oracle.
func (o *BoxOracle) AllGaps() []dyadic.Box { return o.boxes }

// Len returns the number of distinct boxes in the oracle.
func (o *BoxOracle) Len() int { return len(o.boxes) }
