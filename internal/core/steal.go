package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"tetrisjoin/internal/dyadic"
)

// Process-wide executor telemetry, mirrored by the serving layer's
// /metrics page (tetris_shard_steals_total, tetris_worker_busy). They
// aggregate across every concurrent RunShards call in the process; the
// per-run numbers live in Stats.
var (
	stealsTotal atomic.Int64
	busyWorkers atomic.Int64
)

// StealsTotal returns the process-lifetime count of dynamic shard
// splits performed by the work-stealing executor.
func StealsTotal() int64 { return stealsTotal.Load() }

// BusyWorkers returns the number of executor workers currently running
// a shard fragment, across all in-flight RunShards calls.
func BusyWorkers() int64 { return busyWorkers.Load() }

// defaultStealDepth is the dynamic-splitting depth bound applied when
// Options.StealDepth is 0: fragments may be carved at most this many
// binary splits below the universe. Deep enough that donation never
// starves on realistic spaces (a depth-24 subbox is 1/2^24 of the
// space), shallow enough that a nearly-finished region is not shredded
// into unit-box fragments whose per-fragment setup outweighs the work.
const defaultStealDepth = 24

// fragment is one unit of executor work: a dyadic box that is a node of
// the sequential recursion tree, keyed by its depth-first path from the
// universe ('0' = SAO-earlier half, '1' = SAO-later half of each
// split). A splitting worker always keeps the '0' side, so a fragment's
// key remains the minimum over its whole subtree and plain string
// comparison of keys (prefixes sort first) is exactly the
// SAO-lexicographic order of the fragments' output ranges: merging
// completed fragments in key order reproduces the sequential
// enumeration byte for byte.
type fragment struct {
	key  string
	box  dyadic.Box
	res  *Result
	err  error
	done chan struct{}
}

// stealScheduler coordinates one RunShards run: per-worker deques of
// pending fragments, a registry of every not-yet-merged fragment (the
// merger's deterministic order source), and the donation machinery by
// which idle workers split running regions. One mutex guards all
// scheduling state; the check a running worker performs per outer-loop
// iteration is a single atomic load of demand, so checkpoints cost
// nothing while every worker is busy.
type stealScheduler struct {
	sao      []int
	depths   []uint8
	maxDepth int // donated fragments may sit at most this deep; 0 disables donation

	demand atomic.Int32 // waiters - pending, mirrored from under mu

	mu        sync.Mutex
	cond      *sync.Cond
	deques    [][]*fragment // per-worker pending fragments, sorted by key
	registry  []*fragment   // every unmerged fragment, sorted by key
	pending   int           // fragments sitting in deques
	active    int           // fragments currently executing
	waiters   int           // workers blocked in take
	steals    int64         // fragments created by donation
	workerRes []int64       // resolutions finished per worker (balance stat)
}

// newStealScheduler seeds the scheduler with the initial fragments,
// distributed as contiguous key-order blocks so worker 0 starts on the
// SAO-earliest region (the one the merger needs first).
func newStealScheduler(workers int, seeds []*fragment, maxDepth int, sao []int, depths []uint8) *stealScheduler {
	s := &stealScheduler{
		sao:       sao,
		depths:    depths,
		maxDepth:  maxDepth,
		deques:    make([][]*fragment, workers),
		registry:  append([]*fragment(nil), seeds...),
		pending:   len(seeds),
		workerRes: make([]int64, workers),
	}
	s.cond = sync.NewCond(&s.mu)
	per := (len(seeds) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := min(w*per, len(seeds))
		hi := min(lo+per, len(seeds))
		s.deques[w] = append([]*fragment(nil), seeds[lo:hi]...)
	}
	return s
}

// syncDemand mirrors waiters-pending into the lock-free fast-path
// atomic. Callers hold mu.
func (s *stealScheduler) syncDemand() {
	s.demand.Store(int32(s.waiters - s.pending))
}

// insertLocked files a freshly donated fragment under its key: sorted
// into the donor's own deque (the donor keeps the earlier work; a thief
// takes from the back) and into the merge registry. Callers hold mu.
func (s *stealScheduler) insertLocked(w int, f *fragment) {
	q := s.deques[w]
	i := sort.Search(len(q), func(i int) bool { return q[i].key > f.key })
	s.deques[w] = append(q[:i:i], append([]*fragment{f}, q[i:]...)...)
	r := s.registry
	i = sort.Search(len(r), func(i int) bool { return r[i].key > f.key })
	s.registry = append(r[:i:i], append([]*fragment{f}, r[i:]...)...)
	s.pending++
	s.steals++
	stealsTotal.Add(1)
	s.syncDemand()
}

// pop removes the next fragment for worker w: the front (smallest key)
// of its own deque, else the back (largest key — the work farthest from
// the merge frontier) of the fullest victim deque. Callers hold mu.
func (s *stealScheduler) pop(w int) *fragment {
	if q := s.deques[w]; len(q) > 0 {
		f := q[0]
		s.deques[w] = q[1:]
		s.pending--
		s.syncDemand()
		return f
	}
	victim := -1
	for v := range s.deques {
		if v != w && len(s.deques[v]) > 0 &&
			(victim == -1 || len(s.deques[v]) > len(s.deques[victim])) {
			victim = v
		}
	}
	if victim == -1 {
		return nil
	}
	q := s.deques[victim]
	f := q[len(q)-1]
	s.deques[victim] = q[:len(q)-1]
	s.pending--
	s.syncDemand()
	return f
}

// take blocks until worker w has a fragment to run, or returns nil when
// the run is over: no fragment is pending anywhere and none is active,
// so no donation can ever produce more work.
func (s *stealScheduler) take(w int) *fragment {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if f := s.pop(w); f != nil {
			s.active++
			busyWorkers.Add(1)
			return f
		}
		if s.active == 0 {
			return nil
		}
		s.waiters++
		s.syncDemand()
		s.cond.Wait()
		s.waiters--
		s.syncDemand()
	}
}

// finish records a fragment's outcome and releases its merger.
func (s *stealScheduler) finish(w int, f *fragment, res *Result, err error) {
	f.res, f.err = res, err
	s.mu.Lock()
	s.active--
	if res != nil {
		s.workerRes[w] += res.Stats.Resolutions
	}
	wake := s.active == 0
	s.mu.Unlock()
	busyWorkers.Add(-1)
	close(f.done)
	if wake {
		// Waiters must re-check termination; donations already woke them.
		s.cond.Broadcast()
	}
}

// nextToMerge hands the merger the smallest-key unmerged fragment, nil
// when the run is fully merged. Every fragment enters the registry at
// creation and leaves only here, and the merger waits each fragment to
// completion before asking again — so an empty registry means every
// fragment ever created has been merged, hence nothing is running,
// hence no donation can add more: the run is over. A fragment donated
// by the one currently being waited on carries a key strictly between
// it and the next registry entry, so in-order delivery still holds.
func (s *stealScheduler) nextToMerge() *fragment {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.registry) == 0 {
		return nil
	}
	f := s.registry[0]
	s.registry = s.registry[1:]
	return f
}

// maxWorkerResolutions returns the busiest worker's resolution count.
// Call only after every worker has finished (RunShards calls it past
// wg.Wait, which orders the reads).
func (s *stealScheduler) maxWorkerResolutions() int64 {
	var m int64
	for _, r := range s.workerRes {
		m = max(m, r)
	}
	return m
}

// stealSession is the per-running-fragment donation state a worker
// threads into runPlain: the DFS path of the region it still owns
// (extending the fragment's key) and a flag set once the region can no
// longer be split within the depth bound.
type stealSession struct {
	s         *stealScheduler
	w         int
	path      []byte
	exhausted bool
}

// session starts a donation session for fragment f running on worker w.
func (s *stealScheduler) session(w int, f *fragment) *stealSession {
	return &stealSession{s: s, w: w, path: []byte(f.key)}
}

// wanted reports whether unwinding to a donation checkpoint could help:
// some worker is starved and this region can still be split. Lock-free;
// single-pass runs poll it per output to decide whether to unwind.
func (ss *stealSession) wanted() bool {
	return !ss.exhausted && ss.s.demand.Load() > 0
}

// offer is the work-stealing checkpoint, called between outer-loop
// iterations of runPlain. When idle workers outnumber pending fragments
// it splits the caller's remaining region for them. last is the most
// recently processed probe point (nil before the first): the outer loop
// handles points in nondecreasing SAO-lexicographic order, so every
// point at or before last is already covered or emitted. The walk
// re-runs the skeleton's own Split-First-Thick-Dimension splits from
// the region's root: halves SAO-before last are fully done and are
// descended past; the first half SAO-after last is untouched and is
// donated whole — a node of the sequential recursion tree, keyed by its
// DFS path. Returns the (possibly shrunk) region the caller keeps.
func (ss *stealSession) offer(root dyadic.Box, last []uint64) dyadic.Box {
	s := ss.s
	if ss.exhausted || s.demand.Load() <= 0 {
		return root
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.waiters <= s.pending {
		return root // the demand was satisfied while we took the lock
	}
	region := root
	path := ss.path
	for {
		if len(path) >= s.maxDepth {
			ss.exhausted = true // only ever gets deeper; stop checking
			return root
		}
		dim := region.FirstThick(s.sao, s.depths)
		if dim == -1 {
			ss.exhausted = true
			return root
		}
		r0, r1 := region.SplitAt(dim)
		if last != nil && r1.ContainsPoint(last, s.depths) {
			// The frontier has passed all of r0: descend into r1.
			region = r1
			path = append(path, '1')
			continue
		}
		// last (if any) lies in r0: donate the untouched later half,
		// keep enumerating the earlier one.
		f := &fragment{key: string(path) + "1", box: r1, done: make(chan struct{})}
		s.insertLocked(ss.w, f)
		path = append(path, '0')
		ss.path = path
		s.cond.Broadcast()
		return r0
	}
}

// stealSeeds builds the initial fragment set: exactly the ShardRoots
// partition, with each root's DFS path recorded as its merge key. The
// second result reports whether any seed can still be split (false only
// when the whole space was exhausted into unit boxes, in which case
// dynamic splitting has nothing to do and extra workers are useless).
func stealSeeds(depths []uint8, sao []int, shards int) ([]*fragment, bool) {
	seeds := []*fragment{{box: dyadic.Universe(len(depths)), done: make(chan struct{})}}
	for len(seeds) < shards {
		next := make([]*fragment, 0, 2*len(seeds))
		split := false
		for _, f := range seeds {
			dim := f.box.FirstThick(sao, depths)
			if dim == -1 {
				next = append(next, f)
				continue
			}
			b0, b1 := f.box.SplitAt(dim)
			next = append(next,
				&fragment{key: f.key + "0", box: b0, done: make(chan struct{})},
				&fragment{key: f.key + "1", box: b1, done: make(chan struct{})})
			split = true
		}
		seeds = next
		if !split {
			return seeds, false // every box is a unit box; the space is exhausted
		}
	}
	splittable := false
	for _, f := range seeds {
		if f.box.FirstThick(sao, depths) != -1 {
			splittable = true
			break
		}
	}
	return seeds, splittable
}
