package core

import (
	"testing"

	"tetrisjoin/internal/dyadic"
)

// malformedOracle returns a box that fails validation (component deeper
// than the dimension).
type malformedOracle struct{ depths []uint8 }

func (m malformedOracle) Dims() int       { return len(m.depths) }
func (m malformedOracle) Depths() []uint8 { return m.depths }
func (m malformedOracle) GapsContaining(point []uint64) []dyadic.Box {
	return []dyadic.Box{{dyadic.Interval{Bits: 5, Len: 3}, dyadic.Lambda}}
}
func (m malformedOracle) AllGaps() []dyadic.Box {
	return []dyadic.Box{{dyadic.Interval{Bits: 5, Len: 3}, dyadic.Lambda}}
}

func TestMalformedOracleBoxesRejected(t *testing.T) {
	o := malformedOracle{depths: depthsOf(2, 2)}
	if _, err := Run(o, Options{Mode: Reloaded}); err == nil {
		t.Error("Reloaded accepted a malformed gap box")
	}
	if _, err := Run(o, Options{Mode: Preloaded}); err == nil {
		t.Error("Preloaded accepted a malformed gap box")
	}
	if _, err := Run(o, Options{Mode: ReloadedLB}); err == nil {
		t.Error("ReloadedLB accepted a malformed gap box")
	}
}

// inconsistentOracle reports a different dimensionality than its depths.
type inconsistentOracle struct{}

func (inconsistentOracle) Dims() int                                  { return 3 }
func (inconsistentOracle) Depths() []uint8                            { return []uint8{2, 2} }
func (inconsistentOracle) GapsContaining(point []uint64) []dyadic.Box { return nil }
func (inconsistentOracle) AllGaps() []dyadic.Box                      { return nil }

func TestInconsistentOracleRejected(t *testing.T) {
	if _, err := Run(inconsistentOracle{}, Options{}); err == nil {
		t.Error("inconsistent oracle accepted")
	}
}

// violatingLBOracle exercises the contract-violation path of the LB loop.
type violatingLBOracle struct{ depths []uint8 }

func (v violatingLBOracle) Dims() int       { return len(v.depths) }
func (v violatingLBOracle) Depths() []uint8 { return v.depths }
func (v violatingLBOracle) GapsContaining(point []uint64) []dyadic.Box {
	// A fixed valid box that does not contain most probe points.
	return []dyadic.Box{dyadic.MustParseBox("00,00,00")}
}
func (v violatingLBOracle) AllGaps() []dyadic.Box { return nil }

func TestLBOracleContractViolation(t *testing.T) {
	o := violatingLBOracle{depths: depthsOf(3, 2)}
	if _, err := Run(o, Options{Mode: ReloadedLB}); err == nil {
		t.Error("LB loop accepted contract-violating oracle")
	}
}

func TestTrackProvenanceAcrossModes(t *testing.T) {
	depths := depthsOf(3, 2)
	bs := boxes("0,0,λ", "1,1,λ", "λ,0,0", "λ,1,1", "0,λ,1", "1,λ,0")
	o := MustBoxOracle(depths, bs)
	for _, m := range allModes() {
		res, err := Run(o, Options{Mode: m, TrackProvenance: true})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Stats.GapResolutions+res.Stats.OutputResolutions != res.Stats.Resolutions {
			t.Errorf("%v: provenance split %d+%d != %d", m,
				res.Stats.GapResolutions, res.Stats.OutputResolutions, res.Stats.Resolutions)
		}
	}
}

func TestDisableSubsumeStillCorrect(t *testing.T) {
	depths := depthsOf(2, 3)
	bs := boxes("λ,0", "00,λ", "λ,11", "10,1")
	o := MustBoxOracle(depths, bs)
	on, err := Run(o, Options{Mode: Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(o, Options{Mode: Preloaded, DisableSubsume: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(on.Tuples) != len(off.Tuples) {
		t.Errorf("subsumption changed the answer: %d vs %d", len(on.Tuples), len(off.Tuples))
	}
	// Without compaction the knowledge base holds at least as many boxes.
	if off.Stats.KnowledgeBase < on.Stats.KnowledgeBase {
		t.Errorf("no-subsume kb %d < subsume kb %d", off.Stats.KnowledgeBase, on.Stats.KnowledgeBase)
	}
}
