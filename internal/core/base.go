package core

import (
	"fmt"

	"tetrisjoin/internal/boxtree"
	"tetrisjoin/internal/dyadic"
)

// PreparedBase is a prebuilt shared knowledge base for Preloaded runs:
// the oracle's full gap set inserted once (with subsumption unless the
// build options disabled it) into a read-only boxtree. The skeleton
// never writes to it — learned resolvents go to per-run private trees —
// so one PreparedBase can serve any number of sequential or sharded
// executions concurrently. Prepared plans build it on first Preloaded
// execution and reuse it afterwards, removing the gap-set re-insertion
// from the repeated-execution hot path; RunShards has always shared an
// equivalent base across the shards of a single run, this type extends
// that sharing across runs.
type PreparedBase struct {
	tree    *boxtree.Tree
	loaded  int64 // distinct gap boxes inserted (the BoxesLoaded charge)
	n       int
	subsume bool // built with subsumption (the default)
}

// BuildPreloadedBase loads the oracle's full gap set into a fresh shared
// base. Only Mode-independent build options matter: DisableSubsume
// selects plain insertion, everything else is ignored.
func BuildPreloadedBase(o Oracle, opts Options) (*PreparedBase, error) {
	n, err := validateOracle(o)
	if err != nil {
		return nil, err
	}
	tree := boxtree.New(n)
	insert := func(b dyadic.Box) {
		if opts.DisableSubsume {
			tree.Insert(b)
		} else {
			tree.InsertSubsuming(b)
		}
	}
	loaded, err := loadGapSet(o, nil, boxtree.New(n), insert)
	if err != nil {
		return nil, err
	}
	return &PreparedBase{tree: tree, loaded: loaded, n: n, subsume: !opts.DisableSubsume}, nil
}

// Loaded returns the number of distinct gap boxes the base was built
// from (what a fresh Preloaded run would report as BoxesLoaded).
func (b *PreparedBase) Loaded() int64 { return b.loaded }

// Len returns the number of boxes the base currently holds (after
// subsumption).
func (b *PreparedBase) Len() int { return b.tree.Len() }

// preparedBase resolves the shared base a plain run should use: nil
// unless the options carry one and the mode is plain Preloaded or
// Reloaded. Under Preloaded the base stands in for the full gap-set
// load; under Reloaded it is prior knowledge — boxes already known to
// contain no output — consulted read-only while the run still loads
// lazily from the oracle, which is the delta-execution shape: the
// unchanged atoms' gaps come prebuilt, only the delta's certificate is
// discovered. A base built under a different subsumption setting or
// dimensionality is a misuse, not a silent fallback.
func (o Options) preparedBase(n int) (*boxtree.Tree, int64, error) {
	if o.Base == nil || (o.Mode != Preloaded && o.Mode != Reloaded) {
		return nil, 0, nil
	}
	if o.Base.n != n {
		return nil, 0, fmt.Errorf("core: prepared base has %d dimensions, run has %d", o.Base.n, n)
	}
	if o.Base.subsume == o.DisableSubsume {
		return nil, 0, fmt.Errorf("core: prepared base subsumption setting does not match the run's (base subsume=%v, DisableSubsume=%v)", o.Base.subsume, o.DisableSubsume)
	}
	return o.Base.tree, o.Base.loaded, nil
}
