package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"tetrisjoin/internal/dyadic"
)

func depthsOf(n int, d uint8) []uint8 {
	ds := make([]uint8, n)
	for i := range ds {
		ds[i] = d
	}
	return ds
}

func boxes(ss ...string) []dyadic.Box {
	out := make([]dyadic.Box, len(ss))
	for i, s := range ss {
		out[i] = dyadic.MustParseBox(s)
	}
	return out
}

// bruteUncovered enumerates all points not covered by any box.
func bruteUncovered(depths []uint8, bs []dyadic.Box) [][]uint64 {
	var out [][]uint64
	point := make([]uint64, len(depths))
	var rec func(dim int)
	rec = func(dim int) {
		if dim == len(depths) {
			for _, b := range bs {
				if b.ContainsPoint(point, depths) {
					return
				}
			}
			cp := make([]uint64, len(point))
			copy(cp, point)
			out = append(out, cp)
			return
		}
		for v := uint64(0); v < 1<<depths[dim]; v++ {
			point[dim] = v
			rec(dim + 1)
		}
	}
	rec(0)
	return out
}

func sortTuples(ts [][]uint64) {
	sort.Slice(ts, func(i, j int) bool {
		for k := range ts[i] {
			if ts[i][k] != ts[j][k] {
				return ts[i][k] < ts[j][k]
			}
		}
		return false
	})
}

func allModes() []Mode { return []Mode{Reloaded, Preloaded, PreloadedLB, ReloadedLB} }

func runAll(t *testing.T, depths []uint8, bs []dyadic.Box) map[Mode]*Result {
	t.Helper()
	o := MustBoxOracle(depths, bs)
	out := map[Mode]*Result{}
	for _, m := range allModes() {
		res, err := Run(o, Options{Mode: m, TrackProvenance: true})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		out[m] = res
	}
	return out
}

func TestExample44Trace(t *testing.T) {
	// Figure 10 / Example 4.4: B = {⟨λ,0⟩, ⟨00,λ⟩, ⟨λ,11⟩, ⟨10,1⟩}
	// over a 2-bit 2-dimensional space. Output tuples are ⟨01,10⟩ and
	// ⟨11,10⟩, i.e. (1,2) and (3,2).
	depths := depthsOf(2, 2)
	bs := boxes("λ,0", "00,λ", "λ,11", "10,1")
	want := [][]uint64{{1, 2}, {3, 2}}
	for _, m := range allModes() {
		o := MustBoxOracle(depths, bs)
		res, err := Run(o, Options{Mode: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		got := res.Tuples
		sortTuples(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: tuples = %v, want %v", m, got, want)
		}
		if res.Stats.Outputs != 2 {
			t.Errorf("%v: Outputs = %d", m, res.Stats.Outputs)
		}
	}
}

func TestExample44ResolutionSequence(t *testing.T) {
	// With the SAO (X,Y) of Example 4.4, plain Tetris must discover the
	// outputs in the narrated order: ⟨01,10⟩ first, then ⟨11,10⟩, and
	// derive ⟨λ,λ⟩ at the end.
	depths := depthsOf(2, 2)
	o := MustBoxOracle(depths, boxes("λ,0", "00,λ", "λ,11", "10,1"))
	res, err := Run(o, Options{Mode: Reloaded, SAO: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("tuples = %v", res.Tuples)
	}
	if res.Tuples[0][0] != 1 || res.Tuples[0][1] != 2 {
		t.Errorf("first output = %v, want (1,2)", res.Tuples[0])
	}
	if res.Tuples[1][0] != 3 || res.Tuples[1][1] != 2 {
		t.Errorf("second output = %v, want (3,2)", res.Tuples[1])
	}
	// The narrated run performs 9 resolutions in total (counting both
	// output and gap resolutions); ours may differ slightly because of
	// knowledge-base compaction, but must stay Õ(|C|+Z)-small.
	if res.Stats.Resolutions == 0 || res.Stats.Resolutions > 20 {
		t.Errorf("Resolutions = %d, expected a small positive count", res.Stats.Resolutions)
	}
}

func TestFigure5TriangleEmpty(t *testing.T) {
	// Figure 5: the triangle instance whose six gap boxes cover the whole
	// space; the join output is empty.
	for _, d := range []uint8{1, 2, 4, 8} {
		depths := depthsOf(3, d)
		bs := boxes("0,0,λ", "1,1,λ", "λ,0,0", "λ,1,1", "0,λ,0", "1,λ,1")
		for m, res := range runAll(t, depths, bs) {
			if len(res.Tuples) != 0 {
				t.Errorf("d=%d %v: output not empty: %v", d, m, res.Tuples)
			}
		}
	}
}

func TestFigure6TriangleNonEmpty(t *testing.T) {
	// Figure 6: T is replaced by T' with gaps ⟨0,λ,1⟩ and ⟨1,λ,0⟩; the
	// output is every (a,b,c) whose most significant bits satisfy
	// α≠β and β≠γ: 2·8^{d-1}... for depth d there are 2·(2^{d-1})^3 tuples.
	for _, d := range []uint8{1, 2, 3} {
		depths := depthsOf(3, d)
		bs := boxes("0,0,λ", "1,1,λ", "λ,0,0", "λ,1,1", "0,λ,1", "1,λ,0")
		want := bruteUncovered(depths, bs)
		sortTuples(want)
		half := uint64(1) << (d - 1)
		if got := uint64(len(want)); got != 2*half*half*half {
			t.Fatalf("d=%d: brute force found %d outputs, want %d", d, got, 2*half*half*half)
		}
		for m, res := range runAll(t, depths, bs) {
			got := res.Tuples
			sortTuples(got)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("d=%d %v: tuples mismatch (got %d, want %d)", d, m, len(got), len(want))
			}
		}
	}
}

func TestEmptyBoxSetListsEverything(t *testing.T) {
	depths := depthsOf(2, 2)
	o := MustBoxOracle(depths, nil)
	res, err := Run(o, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 16 {
		t.Errorf("got %d tuples, want 16", len(res.Tuples))
	}
}

func TestSingleBoxCoversAll(t *testing.T) {
	depths := depthsOf(3, 5)
	o := MustBoxOracle(depths, boxes("λ,λ,λ"))
	for _, m := range allModes() {
		res, err := Run(o, Options{Mode: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(res.Tuples) != 0 {
			t.Errorf("%v: expected empty output", m)
		}
	}
}

func randBoxSet(r *rand.Rand, n int, d uint8, count int) []dyadic.Box {
	bs := make([]dyadic.Box, count)
	for i := range bs {
		b := make(dyadic.Box, n)
		for j := range b {
			l := uint8(r.Intn(int(d) + 1))
			var v uint64
			if l > 0 {
				v = r.Uint64() & (1<<l - 1)
			}
			b[j] = dyadic.Interval{Bits: v, Len: l}
		}
		bs[i] = b
	}
	return bs
}

// TestRandomAgainstBruteForce cross-validates every mode (and the
// no-cache skeleton) against pointwise enumeration on random instances.
func TestRandomAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(2) // 2 or 3 dimensions
		d := uint8(2 + r.Intn(2))
		count := r.Intn(14)
		depths := depthsOf(n, d)
		bs := randBoxSet(r, n, d, count)
		want := bruteUncovered(depths, bs)
		sortTuples(want)
		o := MustBoxOracle(depths, bs)
		for _, m := range allModes() {
			res, err := Run(o, Options{Mode: m})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, m, err)
			}
			got := res.Tuples
			sortTuples(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %v: got %v, want %v (boxes %v)", trial, m, got, want, bs)
			}
		}
		// No-cache (Tree Ordered) must still be correct, just slower.
		res, err := Run(o, Options{Mode: Reloaded, NoCache: true})
		if err != nil {
			t.Fatalf("trial %d nocache: %v", trial, err)
		}
		got := res.Tuples
		sortTuples(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d nocache: got %v, want %v", trial, got, want)
		}
	}
}

// TestRandomSAOsAgree: the output must be identical under every SAO.
func TestRandomSAOsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	depths := depthsOf(3, 3)
	saos := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {2, 0, 1}}
	for trial := 0; trial < 20; trial++ {
		bs := randBoxSet(r, 3, 3, 10)
		o := MustBoxOracle(depths, bs)
		var ref [][]uint64
		for i, sao := range saos {
			res, err := Run(o, Options{Mode: Reloaded, SAO: sao})
			if err != nil {
				t.Fatal(err)
			}
			got := res.Tuples
			sortTuples(got)
			if i == 0 {
				ref = got
				continue
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("trial %d: SAO %v output differs", trial, sao)
			}
		}
	}
}

func TestStatsConsistency(t *testing.T) {
	depths := depthsOf(2, 3)
	bs := boxes("λ,0", "00,λ", "λ,11", "10,1")
	o := MustBoxOracle(depths, bs)
	res, err := Run(o, Options{Mode: Reloaded, TrackProvenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Outputs != int64(len(res.Tuples)) {
		t.Errorf("Outputs=%d, len(Tuples)=%d", res.Stats.Outputs, len(res.Tuples))
	}
	if res.Stats.GapResolutions+res.Stats.OutputResolutions != res.Stats.Resolutions {
		t.Errorf("provenance split %d+%d != total %d",
			res.Stats.GapResolutions, res.Stats.OutputResolutions, res.Stats.Resolutions)
	}
	if res.Stats.BoxesLoaded == 0 || res.Stats.OracleCalls == 0 {
		t.Error("expected oracle activity in Reloaded mode")
	}
	if res.Stats.KnowledgeBase == 0 {
		t.Error("knowledge base should not be empty at the end")
	}
}

func TestOnOutputStreamingAndStop(t *testing.T) {
	depths := depthsOf(2, 2)
	o := MustBoxOracle(depths, nil) // everything is output: 16 tuples
	var seen int
	res, err := Run(o, Options{OnOutput: func(tuple []uint64) bool {
		seen++
		return seen < 5
	}})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Errorf("callback saw %d tuples, want 5", seen)
	}
	if len(res.Tuples) != 0 {
		t.Error("Tuples should be empty when streaming")
	}
	// MaxOutput limit.
	res, err = Run(o, Options{MaxOutput: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 3 {
		t.Errorf("MaxOutput: got %d tuples", len(res.Tuples))
	}
}

func TestMaxResolutionsBudget(t *testing.T) {
	depths := depthsOf(3, 6)
	// Odd/even comb along the last dimension forces many resolutions.
	var bs []dyadic.Box
	for v := uint64(0); v < 64; v += 2 {
		bs = append(bs, dyadic.Box{dyadic.Lambda, dyadic.Lambda, dyadic.Unit(v, 6)})
		bs = append(bs, dyadic.Box{dyadic.Lambda, dyadic.Unit(v, 6), dyadic.Lambda})
	}
	o := MustBoxOracle(depths, bs)
	_, err := Run(o, Options{Mode: Preloaded, MaxResolutions: 5})
	if err == nil {
		t.Fatal("expected resolution budget error")
	}
}

func TestBadSAO(t *testing.T) {
	o := MustBoxOracle(depthsOf(2, 2), nil)
	for _, sao := range [][]int{{0}, {0, 0}, {0, 2}, {1, -1}} {
		if _, err := Run(o, Options{SAO: sao}); err == nil {
			t.Errorf("SAO %v accepted", sao)
		}
	}
}

// violatingOracle returns gap boxes that do not contain the probe point.
type violatingOracle struct{ depths []uint8 }

func (v violatingOracle) Dims() int       { return len(v.depths) }
func (v violatingOracle) Depths() []uint8 { return v.depths }
func (v violatingOracle) GapsContaining(point []uint64) []dyadic.Box {
	return boxes("0,0") // never contains points outside ⟨0,0⟩... often violating
}
func (v violatingOracle) AllGaps() []dyadic.Box { return nil }

func TestOracleContractViolation(t *testing.T) {
	o := violatingOracle{depths: depthsOf(2, 2)}
	_, err := Run(o, Options{Mode: Reloaded})
	if err == nil {
		t.Fatal("expected contract violation error")
	}
}

// stallingOracle keeps returning the same valid box, so the run makes no
// progress once the box is known.
type stallingOracle struct{ depths []uint8 }

func (s stallingOracle) Dims() int       { return len(s.depths) }
func (s stallingOracle) Depths() []uint8 { return s.depths }
func (s stallingOracle) GapsContaining(point []uint64) []dyadic.Box {
	// A box that contains every point but is secretly never enough,
	// because we lie: return a unit box at the point, then keep claiming
	// the point is covered by a box the knowledge base already has.
	return []dyadic.Box{dyadic.Point(point, s.depths)}
}
func (s stallingOracle) AllGaps() []dyadic.Box { return nil }

func TestStallingOracleTerminates(t *testing.T) {
	// Each probe is answered by its own unit box, so the run terminates
	// after covering all 16 points with "gaps" — output must be empty.
	o := stallingOracle{depths: depthsOf(2, 2)}
	res, err := Run(o, Options{Mode: Reloaded})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Errorf("expected no outputs, got %v", res.Tuples)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		Reloaded:    "tetris-reloaded",
		Preloaded:   "tetris-preloaded",
		PreloadedLB: "tetris-preloaded-lb",
		ReloadedLB:  "tetris-reloaded-lb",
		Mode(99):    "Mode(99)",
	} {
		if m.String() != want {
			t.Errorf("Mode %d String = %q", int(m), m.String())
		}
	}
}

func TestLBFallbackLowDimensions(t *testing.T) {
	// n=2: LB modes fall back to the plain variants but must be correct.
	depths := depthsOf(2, 3)
	r := rand.New(rand.NewSource(7))
	bs := randBoxSet(r, 2, 3, 8)
	want := bruteUncovered(depths, bs)
	sortTuples(want)
	o := MustBoxOracle(depths, bs)
	for _, m := range []Mode{PreloadedLB, ReloadedLB} {
		res, err := Run(o, Options{Mode: m})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Tuples
		sortTuples(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v fallback output mismatch", m)
		}
	}
}

func TestLBHighDimensional(t *testing.T) {
	// n=4 random instances: LB modes agree with brute force.
	r := rand.New(rand.NewSource(321))
	depths := depthsOf(4, 2)
	for trial := 0; trial < 15; trial++ {
		bs := randBoxSet(r, 4, 2, 12)
		want := bruteUncovered(depths, bs)
		sortTuples(want)
		o := MustBoxOracle(depths, bs)
		for _, m := range []Mode{PreloadedLB, ReloadedLB} {
			res, err := Run(o, Options{Mode: m})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, m, err)
			}
			got := res.Tuples
			sortTuples(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %v: got %d tuples, want %d", trial, m, len(got), len(want))
			}
		}
	}
}

func TestReloadedLBRebuilds(t *testing.T) {
	// Enough lazily-loaded boxes must trigger at least one partition
	// rebuild, and rebuilds must not corrupt the output.
	depths := depthsOf(3, 4)
	var bs []dyadic.Box
	for v := uint64(0); v < 16; v++ {
		bs = append(bs, dyadic.Box{dyadic.Unit(v, 4), dyadic.Lambda, dyadic.Lambda})
	}
	o := MustBoxOracle(depths, bs)
	res, err := Run(o, Options{Mode: ReloadedLB})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Errorf("expected empty output, got %d tuples", len(res.Tuples))
	}
	if res.Stats.Rebuilds == 0 {
		t.Error("expected at least one partition rebuild")
	}
}

func TestNoCacheMoreResolutionsOnRepetitiveInstance(t *testing.T) {
	// An instance where a sub-proof with wildcard support is reused
	// across sibling subtrees: caching must save resolutions.
	const d = 4
	depths := depthsOf(2, d)
	var bs []dyadic.Box
	// Dimension 1 is fully covered by singleton boxes with λ in dim 0:
	// the merged proof ⟨λ,λ⟩ is derived once with caching, repeatedly
	// without.
	for v := uint64(0); v < 1<<d; v++ {
		bs = append(bs, dyadic.Box{dyadic.Lambda, dyadic.Unit(v, d)})
	}
	o := MustBoxOracle(depths, bs)
	cached, err := Run(o, Options{Mode: Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := Run(o, Options{Mode: Preloaded, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if cached.Stats.Resolutions > uncached.Stats.Resolutions {
		t.Errorf("caching used more resolutions (%d) than no-cache (%d)",
			cached.Stats.Resolutions, uncached.Stats.Resolutions)
	}
}

func TestCovers(t *testing.T) {
	depths := depthsOf(3, 2)
	full := boxes("0,0,λ", "1,1,λ", "λ,0,0", "λ,1,1", "0,λ,0", "1,λ,1")
	rep, err := Covers(depths, full, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Covered {
		t.Error("Figure 5 boxes should cover the space")
	}
	if !rep.Witness.IsUniverse() {
		t.Errorf("witness %v should be the universe", rep.Witness)
	}
	partial := boxes("0,λ,λ")
	rep, err = Covers(depths, partial, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered {
		t.Error("half-space reported as covering")
	}
	if rep.Witness[0].Bits>>1 != 1 { // uncovered point must be in the 1-half
		t.Errorf("witness %v not in the uncovered half", rep.Witness)
	}
}

func TestCoversTarget(t *testing.T) {
	depths := depthsOf(2, 2)
	bs := boxes("00,λ", "01,λ")
	rep, err := CoversTarget(depths, bs, box("0,λ"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Covered {
		t.Error("⟨0,λ⟩ should be covered by its two halves")
	}
	rep, err = CoversTarget(depths, bs, box("λ,λ"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered {
		t.Error("universe should not be covered")
	}
	if _, err := CoversTarget(depths, bs, box("λ"), Options{}); err == nil {
		t.Error("invalid target accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := NewBoxOracle(nil, nil); err == nil {
		t.Error("zero-dimension oracle accepted")
	}
	if _, err := NewBoxOracle([]uint8{0}, nil); err == nil {
		t.Error("zero-depth dimension accepted")
	}
	if _, err := NewBoxOracle([]uint8{2}, boxes("000")); err == nil {
		t.Error("invalid box accepted by oracle")
	}
	o := MustBoxOracle(depthsOf(2, 2), nil)
	if _, err := Run(o, Options{Mode: Mode(42)}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func ExampleRun() {
	// The bowtie-free 2-dimensional instance of Example 4.4.
	depths := []uint8{2, 2}
	o := MustBoxOracle(depths, []dyadic.Box{
		dyadic.MustParseBox("λ,0"),
		dyadic.MustParseBox("00,λ"),
		dyadic.MustParseBox("λ,11"),
		dyadic.MustParseBox("10,1"),
	})
	res, _ := Run(o, Options{Mode: Reloaded})
	for _, tup := range res.Tuples {
		fmt.Println(tup)
	}
	// Output:
	// [1 2]
	// [3 2]
}
