// Package core implements the Tetris join algorithm of the paper "Joins
// via Geometric Resolutions: Worst-case and Beyond" (PODS 2015): the
// recursive TetrisSkeleton (Algorithm 1), the outer Tetris loop
// (Algorithm 2) in its Preloaded and Reloaded instantiations, and the
// load-balanced variants of Section 4.5 (Algorithms 3 and 5).
//
// The package operates on the abstract box cover problem (BCP,
// Definition 3.4): given oracle access to a set B of dyadic gap boxes,
// list every point of the output space not covered by any box of B.
// Database joins reduce to BCP by Proposition 3.6; package join performs
// that reduction.
package core

import (
	"fmt"

	"tetrisjoin/internal/dyadic"
)

// Resolve performs a general geometric resolution (Section 4.1) of two
// dyadic boxes. The boxes must satisfy the resolution precondition: there
// is a position ℓ where the components are siblings x0 and x1, and every
// other pair of components is comparable. The resolvent takes the common
// prefix x at position ℓ and the componentwise intersection elsewhere.
//
// Geometrically: w1 and w2 are adjacent halves in dimension ℓ, and the
// resolvent is the largest box covered by their union.
func Resolve(w1, w2 dyadic.Box) (dyadic.Box, error) {
	if len(w1) != len(w2) {
		return nil, fmt.Errorf("core: resolving boxes of different dimensions %d and %d", len(w1), len(w2))
	}
	pivot := -1
	for i := range w1 {
		a, b := w1[i], w2[i]
		if a.Comparable(b) {
			continue
		}
		// Not comparable: the only permitted configuration is siblings.
		if a.Len == b.Len && a.Len > 0 && a.Bits^b.Bits == 1 {
			if pivot != -1 {
				return nil, fmt.Errorf("core: boxes differ incomparably in dimensions %d and %d", pivot, i)
			}
			pivot = i
			continue
		}
		return nil, fmt.Errorf("core: dimension %d components %s and %s are neither comparable nor siblings", i, a, b)
	}
	if pivot == -1 {
		return nil, fmt.Errorf("core: no sibling dimension to resolve on (%s vs %s)", w1, w2)
	}
	out := make(dyadic.Box, len(w1))
	for i := range w1 {
		if i == pivot {
			out[i] = w1[i].Parent()
			continue
		}
		m, _ := w1[i].Meet(w2[i])
		out[i] = m
	}
	return out, nil
}

// IsOrderedResolution reports whether resolving w1 and w2 on dimension
// pivot is an ordered geometric resolution with respect to the splitting
// attribute order sao (Definition 4.3): both boxes are λ on every
// attribute after the pivot in SAO order.
func IsOrderedResolution(w1, w2 dyadic.Box, pivot int, sao []int) bool {
	seen := false
	for _, dim := range sao {
		if dim == pivot {
			seen = true
			continue
		}
		if seen && (!w1[dim].IsLambda() || !w2[dim].IsLambda()) {
			return false
		}
	}
	return seen
}

// resolveOrdered is the resolution step of TetrisSkeleton. The witnesses
// satisfy the invariant of Lemma C.1: w1[dim] and w2[dim] are exactly the
// two halves x0, x1 of the split component, every other pair of
// components is comparable, and components after dim in SAO order are λ.
// It panics if the invariant is violated, since that indicates a bug in
// the skeleton rather than bad input.
func resolveOrdered(w1, w2 dyadic.Box, dim int) dyadic.Box {
	out := make(dyadic.Box, len(w1))
	resolveOrderedInto(out, w1, w2, dim)
	return out
}

// resolveOrderedInto is resolveOrdered writing into caller-provided
// storage (the skeleton's scratch arena). out must not alias w1 or w2.
func resolveOrderedInto(out, w1, w2 dyadic.Box, dim int) {
	for i := range w1 {
		if i == dim {
			if w1[i].Len != w2[i].Len || w1[i].Len == 0 || w1[i].Bits^w2[i].Bits != 1 {
				panic(fmt.Sprintf("core: resolveOrdered pivot components %s, %s are not siblings", w1[i], w2[i]))
			}
			out[i] = w1[i].Parent()
			continue
		}
		m, ok := w1[i].Meet(w2[i])
		if !ok {
			panic(fmt.Sprintf("core: resolveOrdered components %s, %s at dim %d are incomparable", w1[i], w2[i], i))
		}
		out[i] = m
	}
}
