package core

import (
	"fmt"

	"tetrisjoin/internal/boxtree"
	"tetrisjoin/internal/dyadic"
)

// Run executes Tetris (Algorithm 2) over the given oracle and returns all
// output tuples of the box cover problem together with work statistics.
// The Mode in opts selects between the Preloaded, Reloaded and
// load-balanced variants; see the Mode documentation for the runtime
// guarantees of each.
func Run(o Oracle, opts Options) (*Result, error) {
	n, err := validateOracle(o)
	if err != nil {
		return nil, err
	}
	switch opts.Mode {
	case Preloaded, Reloaded:
		sao, err := checkSAO(opts.SAO, n)
		if err != nil {
			return nil, err
		}
		return runWithBase(o, opts, sao, dyadic.Universe(n))
	case PreloadedLB, ReloadedLB:
		if n < 3 {
			// The Balance map is defined for n >= 3; below that the plain
			// variants already meet the Õ(|C|^{n/2}) target (n-1 <= n/2
			// fails only for n >= 3... for n <= 2, n-1 <= n/2+1/2 and the
			// 2-dimensional bound Õ(|C|+Z) of Lemma E.9 applies).
			plain := opts
			if opts.Mode == PreloadedLB {
				plain.Mode = Preloaded
			} else {
				plain.Mode = Reloaded
			}
			sao, err := checkSAO(opts.SAO, n)
			if err != nil {
				return nil, err
			}
			return runPlain(o, plain, sao, dyadic.Universe(n), nil, nil)
		}
		return runLB(o, opts)
	default:
		return nil, fmt.Errorf("core: unknown mode %v", opts.Mode)
	}
}

// RunBox is the re-entrant per-shard runner: Tetris restricted to the
// given root box, reporting exactly the output tuples inside it. By the
// decomposition of Proposition 3.6 the BCP output over any partition of
// the space into disjoint dyadic root boxes is the disjoint union of the
// per-root outputs, which is what makes sharded execution (RunShards)
// correct. Only the plain Preloaded/Reloaded modes are supported — the LB
// modes re-map the whole space through the Balance lift and have no
// meaningful subbox restriction.
func RunBox(o Oracle, opts Options, root dyadic.Box) (*Result, error) {
	n, err := validateOracle(o)
	if err != nil {
		return nil, err
	}
	if opts.Mode != Preloaded && opts.Mode != Reloaded {
		return nil, fmt.Errorf("core: RunBox supports only the plain Preloaded/Reloaded modes, not %v", opts.Mode)
	}
	if err := root.Check(o.Depths()); err != nil {
		return nil, fmt.Errorf("core: invalid root box %v: %w", root, err)
	}
	sao, err := checkSAO(opts.SAO, n)
	if err != nil {
		return nil, err
	}
	return runWithBase(o, opts, sao, root)
}

// runWithBase dispatches a plain run through runPlain, resolving the
// optional prepared base of opts.Base. A Preloaded run with a base
// charges the base's accounting (the distinct boxes it was loaded from
// and the boxes it holds) exactly once — the same convention RunShards
// applies to the per-run base it shares across shards — so a based run
// reports identically to a fresh one. A Reloaded run with a base does
// NOT: there the base is prior knowledge paid for by whoever built it,
// and BoxesLoaded keeps meaning what this run itself pulled from the
// oracle — the delta run's certificate-size witness.
func runWithBase(o Oracle, opts Options, sao []int, root dyadic.Box) (*Result, error) {
	base, baseLoaded, err := opts.preparedBase(o.Dims())
	if err != nil {
		return nil, err
	}
	res, err := runPlain(o, opts, sao, root, base, nil)
	if err != nil {
		return nil, err
	}
	if base != nil && opts.Mode == Preloaded {
		res.Stats.BoxesLoaded += baseLoaded
		res.Stats.KnowledgeBase += base.Len()
	}
	return res, nil
}

// validateOracle checks the oracle's dimension/depth report and returns
// the dimensionality.
func validateOracle(o Oracle) (int, error) {
	n := o.Dims()
	depths := o.Depths()
	if n < 1 {
		return 0, fmt.Errorf("core: oracle reports %d dimensions", n)
	}
	if len(depths) != n {
		return 0, fmt.Errorf("core: oracle reports %d depths for %d dimensions", len(depths), n)
	}
	for i, d := range depths {
		if d == 0 || d > dyadic.MaxDepth {
			return 0, fmt.Errorf("core: dimension %d has invalid depth %d", i, d)
		}
	}
	return n, nil
}

// loadGapSet is the one implementation of the Preloaded initial load,
// shared by the sequential engine (add = skeleton insert) and RunShards
// (add = shared-base insert): it feeds the oracle's full gap box set
// through add, validating each box and counting distinct boxes via the
// loaded exact-match tree. A non-nil root skips boxes disjoint from it —
// they can never witness coverage of a subbox of the root nor take part
// in a resolution a run restricted to it performs.
func loadGapSet(o Oracle, root dyadic.Box, loaded *boxtree.Tree, add func(dyadic.Box)) (int64, error) {
	depths := o.Depths()
	var fresh int64
	for _, b := range o.AllGaps() {
		if err := b.Check(depths); err != nil {
			return fresh, fmt.Errorf("core: oracle returned invalid gap box %v: %w", b, err)
		}
		if root != nil && !b.Intersects(root) {
			continue
		}
		if loaded.Insert(b) {
			fresh++
		}
		add(b)
	}
	return fresh, nil
}

func checkSAO(sao []int, n int) ([]int, error) {
	if sao == nil {
		sao = make([]int, n)
		for i := range sao {
			sao[i] = i
		}
		return sao, nil
	}
	if len(sao) != n {
		return nil, fmt.Errorf("core: SAO has %d entries for %d dimensions", len(sao), n)
	}
	seen := make([]bool, n)
	for _, dim := range sao {
		if dim < 0 || dim >= n || seen[dim] {
			return nil, fmt.Errorf("core: SAO %v is not a permutation of 0..%d", sao, n-1)
		}
		seen[dim] = true
	}
	return sao, nil
}

// runPlain is Algorithm 2 with the Preloaded or Reloaded initialization,
// enumerating the outputs inside root (the whole universe for sequential
// runs, one disjoint fragment per worker turn under RunShards). base,
// when non-nil, is a prebuilt read-only knowledge base holding the full
// preloaded gap set: RunShards builds it once and shares it across every
// fragment, so a Preloaded fragment starts with an empty private
// knowledge base instead of re-inserting its slice of B. steal, when
// non-nil, is the run's work-stealing session: between outer-loop
// iterations the run offers the SAO-later part of its remaining region
// to idle workers, shrinking root accordingly — safe because the outer
// loop processes points in nondecreasing SAO-lexicographic order, so
// the donated later half is guaranteed untouched.
func runPlain(o Oracle, opts Options, sao []int, root dyadic.Box, base *boxtree.Tree, steal *stealSession) (*Result, error) {
	n, depths := o.Dims(), o.Depths()
	res := &Result{}
	// Resolve the budget once and share it with the skeleton, so the
	// outer loop's output claims and the recursion's resolution charges
	// draw from the same quota.
	opts.Budget = effectiveBudget(opts)
	budget := opts.Budget
	sk := newSkeleton(n, depths, sao, opts, &res.Stats)
	sk.base = base

	if opts.SinglePass && opts.Mode != Preloaded {
		return nil, fmt.Errorf("core: SinglePass requires Preloaded mode (the knowledge base must hold every gap box)")
	}

	// loaded is the exact-match set of gap boxes seen so far, used both
	// for BoxesLoaded accounting and for the no-progress check. A second
	// boxtree rather than a map keyed by Box.Key keeps the per-box cost at
	// word operations with zero allocation.
	loaded := boxtree.New(n)
	if opts.Mode == Preloaded && base == nil {
		filter := root
		if root.IsUniverse() {
			filter = nil // every box intersects the universe; skip the test
		}
		fresh, err := loadGapSet(o, filter, loaded, sk.add)
		if err != nil {
			return nil, err
		}
		res.Stats.BoxesLoaded += fresh
	}

	if opts.SinglePass {
		// TetrisSkeleton2 (footnote 13): one depth-first pass reporting
		// every uncovered unit box as an output. Under work stealing the
		// pass unwinds when an idle worker wants work — every output up to
		// the current point is already in the knowledge base, so the
		// donation checkpoint can split the region and a restart from the
		// shrunk root re-descends through covered territory in CoverHits.
		point := make([]uint64, n) // reused per output; OnOutput must copy
		havePoint := false
		var ctxErr error
		donated := false
		sk.onUncoveredUnit = func(b dyadic.Box) bool {
			if ctxErr = checkContext(opts); ctxErr != nil {
				return false
			}
			emit, stop := budget.ClaimOutput()
			if !emit {
				return false
			}
			b.ValuesInto(point, depths)
			havePoint = true
			res.Stats.Outputs++
			if opts.OnOutput != nil {
				if !opts.OnOutput(point) {
					return false
				}
			} else {
				tup := make([]uint64, len(point))
				copy(tup, point)
				res.Tuples = append(res.Tuples, tup)
			}
			if stop {
				return false
			}
			if steal != nil && steal.wanted() {
				// Unwind to the donation checkpoint. The skeleton records
				// the output only when the callback returns true, so record
				// it here; the restart then finds it covered.
				sk.addOutput(b)
				donated = true
				return false
			}
			return true
		}
		for {
			if steal != nil {
				var last []uint64
				if havePoint {
					last = point
				}
				root = steal.offer(root, last)
			}
			donated = false
			_, _, err := sk.root(root)
			if err != nil && err != errStopped {
				return nil, err
			}
			if ctxErr != nil {
				return nil, ctxErr
			}
			if err == nil || !donated {
				// Fully enumerated, or a genuine stop (caller/quota).
				break
			}
			// Donated unwind: loop back so the offer above splits the
			// region, then restart the pass over what remains.
		}
		res.Stats.KnowledgeBase = sk.kb.Len()
		return res, nil
	}

	point := make([]uint64, n) // probe-point buffer, reused per iteration
	havePoint := false
	for {
		if err := checkContext(opts); err != nil {
			return nil, err
		}
		// Once the shared output quota is fully claimed (possibly by
		// sibling shards), further search here cannot report anything.
		if budget.outputsExhausted() {
			break
		}
		// Work-stealing checkpoint: everything at or before the last
		// processed point is covered or emitted, so the SAO-later part of
		// the region can be split off for an idle worker.
		if steal != nil {
			var last []uint64
			if havePoint {
				last = point
			}
			root = steal.offer(root, last)
		}
		v, w, err := sk.root(root)
		if err != nil {
			return nil, err
		}
		if v {
			break
		}
		w.ValuesInto(point, depths)
		havePoint = true
		res.Stats.OracleCalls++
		gaps := o.GapsContaining(point)
		if len(gaps) == 0 {
			// w is an output tuple: report it and amend A with its box.
			emit, stop := budget.ClaimOutput()
			if !emit {
				break
			}
			res.Stats.Outputs++
			if opts.OnOutput != nil {
				if !opts.OnOutput(point) {
					stop = true
				}
			} else {
				tup := make([]uint64, len(point))
				copy(tup, point)
				res.Tuples = append(res.Tuples, tup)
			}
			sk.addOutput(w)
			if stop {
				break
			}
			continue
		}
		progress := false
		containsPoint := false
		for _, g := range gaps {
			if err := g.Check(depths); err != nil {
				return nil, fmt.Errorf("core: oracle returned invalid gap box %v: %w", g, err)
			}
			if g.ContainsPoint(point, depths) {
				containsPoint = true
			}
			if loaded.Insert(g) {
				res.Stats.BoxesLoaded++
				progress = true
			}
			sk.add(g)
		}
		if !containsPoint {
			return nil, fmt.Errorf("core: oracle contract violation: no returned gap box contains probe point %v", point)
		}
		if !progress {
			return nil, fmt.Errorf("core: no progress: oracle returned only known gap boxes for uncovered point %v", point)
		}
	}
	res.Stats.KnowledgeBase = sk.kb.Len()
	return res, nil
}
