package core

import (
	"fmt"

	"tetrisjoin/internal/boxtree"
	"tetrisjoin/internal/dyadic"
)

// Run executes Tetris (Algorithm 2) over the given oracle and returns all
// output tuples of the box cover problem together with work statistics.
// The Mode in opts selects between the Preloaded, Reloaded and
// load-balanced variants; see the Mode documentation for the runtime
// guarantees of each.
func Run(o Oracle, opts Options) (*Result, error) {
	n := o.Dims()
	depths := o.Depths()
	if n < 1 {
		return nil, fmt.Errorf("core: oracle reports %d dimensions", n)
	}
	if len(depths) != n {
		return nil, fmt.Errorf("core: oracle reports %d depths for %d dimensions", len(depths), n)
	}
	for i, d := range depths {
		if d == 0 || d > dyadic.MaxDepth {
			return nil, fmt.Errorf("core: dimension %d has invalid depth %d", i, d)
		}
	}
	switch opts.Mode {
	case Preloaded, Reloaded:
		sao, err := checkSAO(opts.SAO, n)
		if err != nil {
			return nil, err
		}
		return runPlain(o, opts, sao)
	case PreloadedLB, ReloadedLB:
		if n < 3 {
			// The Balance map is defined for n >= 3; below that the plain
			// variants already meet the Õ(|C|^{n/2}) target (n-1 <= n/2
			// fails only for n >= 3... for n <= 2, n-1 <= n/2+1/2 and the
			// 2-dimensional bound Õ(|C|+Z) of Lemma E.9 applies).
			plain := opts
			if opts.Mode == PreloadedLB {
				plain.Mode = Preloaded
			} else {
				plain.Mode = Reloaded
			}
			sao, err := checkSAO(opts.SAO, n)
			if err != nil {
				return nil, err
			}
			return runPlain(o, plain, sao)
		}
		return runLB(o, opts)
	default:
		return nil, fmt.Errorf("core: unknown mode %v", opts.Mode)
	}
}

func checkSAO(sao []int, n int) ([]int, error) {
	if sao == nil {
		sao = make([]int, n)
		for i := range sao {
			sao[i] = i
		}
		return sao, nil
	}
	if len(sao) != n {
		return nil, fmt.Errorf("core: SAO has %d entries for %d dimensions", len(sao), n)
	}
	seen := make([]bool, n)
	for _, dim := range sao {
		if dim < 0 || dim >= n || seen[dim] {
			return nil, fmt.Errorf("core: SAO %v is not a permutation of 0..%d", sao, n-1)
		}
		seen[dim] = true
	}
	return sao, nil
}

// runPlain is Algorithm 2 with the Preloaded or Reloaded initialization.
func runPlain(o Oracle, opts Options, sao []int) (*Result, error) {
	n, depths := o.Dims(), o.Depths()
	res := &Result{}
	sk := newSkeleton(n, depths, sao, opts, &res.Stats)

	if opts.SinglePass && opts.Mode != Preloaded {
		return nil, fmt.Errorf("core: SinglePass requires Preloaded mode (the knowledge base must hold every gap box)")
	}

	// loaded is the exact-match set of gap boxes seen so far, used both
	// for BoxesLoaded accounting and for the no-progress check. A second
	// boxtree rather than a map keyed by Box.Key keeps the per-box cost at
	// word operations with zero allocation.
	loaded := boxtree.New(n)
	if opts.Mode == Preloaded {
		for _, b := range o.AllGaps() {
			if err := b.Check(depths); err != nil {
				return nil, fmt.Errorf("core: oracle returned invalid gap box %v: %w", b, err)
			}
			if loaded.Insert(b) {
				res.Stats.BoxesLoaded++
			}
			sk.add(b)
		}
	}

	if opts.SinglePass {
		// TetrisSkeleton2 (footnote 13): one depth-first pass reporting
		// every uncovered unit box as an output.
		point := make([]uint64, n) // reused per output; OnOutput must copy
		sk.onUncoveredUnit = func(b dyadic.Box) bool {
			b.ValuesInto(point, depths)
			res.Stats.Outputs++
			if opts.OnOutput != nil {
				if !opts.OnOutput(point) {
					return false
				}
			} else {
				tup := make([]uint64, len(point))
				copy(tup, point)
				res.Tuples = append(res.Tuples, tup)
			}
			return opts.MaxOutput <= 0 || res.Stats.Outputs < int64(opts.MaxOutput)
		}
		_, _, err := sk.root(dyadic.Universe(n))
		if err != nil && err != errStopped {
			return nil, err
		}
		res.Stats.KnowledgeBase = sk.kb.Len()
		return res, nil
	}

	universe := dyadic.Universe(n)
	point := make([]uint64, n) // probe-point buffer, reused per iteration
	for {
		v, w, err := sk.root(universe)
		if err != nil {
			return nil, err
		}
		if v {
			break
		}
		w.ValuesInto(point, depths)
		res.Stats.OracleCalls++
		gaps := o.GapsContaining(point)
		if len(gaps) == 0 {
			// w is an output tuple: report it and amend A with its box.
			res.Stats.Outputs++
			stop := false
			if opts.OnOutput != nil {
				stop = !opts.OnOutput(point)
			} else {
				tup := make([]uint64, len(point))
				copy(tup, point)
				res.Tuples = append(res.Tuples, tup)
			}
			sk.addOutput(w)
			if stop || (opts.MaxOutput > 0 && res.Stats.Outputs >= int64(opts.MaxOutput)) {
				break
			}
			continue
		}
		progress := false
		containsPoint := false
		for _, g := range gaps {
			if err := g.Check(depths); err != nil {
				return nil, fmt.Errorf("core: oracle returned invalid gap box %v: %w", g, err)
			}
			if g.ContainsPoint(point, depths) {
				containsPoint = true
			}
			if loaded.Insert(g) {
				res.Stats.BoxesLoaded++
				progress = true
			}
			sk.add(g)
		}
		if !containsPoint {
			return nil, fmt.Errorf("core: oracle contract violation: no returned gap box contains probe point %v", point)
		}
		if !progress {
			return nil, fmt.Errorf("core: no progress: oracle returned only known gap boxes for uncovered point %v", point)
		}
	}
	res.Stats.KnowledgeBase = sk.kb.Len()
	return res, nil
}
