package core

import (
	"math/rand"
	"testing"

	"tetrisjoin/internal/dyadic"
)

// TestLemmaC1AllResolutionsOrdered verifies Lemma C.1: every resolution
// performed by TetrisSkeleton started from the universal box is an
// ordered geometric resolution with respect to the SAO.
func TestLemmaC1AllResolutionsOrdered(t *testing.T) {
	r := rand.New(rand.NewSource(401))
	saos := [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}}
	for trial := 0; trial < 25; trial++ {
		depths := depthsOf(3, 3)
		bs := randBoxSet(r, 3, 3, 12)
		o := MustBoxOracle(depths, bs)
		for _, sao := range saos {
			violations := 0
			checked := 0
			opts := Options{
				Mode: Reloaded,
				SAO:  sao,
				OnResolve: func(w1, w2, w dyadic.Box, dim int) {
					checked++
					if !IsOrderedResolution(w1, w2, dim, sao) {
						violations++
					}
				},
			}
			if _, err := Run(o, opts); err != nil {
				t.Fatal(err)
			}
			if violations > 0 {
				t.Fatalf("trial %d SAO %v: %d of %d resolutions were not ordered",
					trial, sao, violations, checked)
			}
		}
	}
}

// TestResolutionSoundnessDuringRuns verifies, on every resolution of
// random runs, the defining soundness property: the resolvent is covered
// by the union of its two inputs (checked on sampled points).
func TestResolutionSoundnessDuringRuns(t *testing.T) {
	r := rand.New(rand.NewSource(402))
	depths := depthsOf(3, 3)
	for trial := 0; trial < 20; trial++ {
		bs := randBoxSet(r, 3, 3, 10)
		o := MustBoxOracle(depths, bs)
		opts := Options{
			Mode: Preloaded,
			OnResolve: func(w1, w2, w dyadic.Box, dim int) {
				// Validate the resolvent against the general Resolve and
				// check soundness on random points inside w.
				got, err := Resolve(w1, w2)
				if err != nil {
					t.Fatalf("skeleton resolution not a valid geometric resolution: %v (%v,%v)", err, w1, w2)
				}
				if !got.Equal(w) {
					t.Fatalf("skeleton resolvent %v differs from Resolve result %v", w, got)
				}
				for s := 0; s < 10; s++ {
					pt := make([]uint64, len(depths))
					for i, iv := range w {
						free := depths[i] - iv.Len
						pt[i] = iv.Bits<<free | r.Uint64()&(1<<free-1)
					}
					if !w1.ContainsPoint(pt, depths) && !w2.ContainsPoint(pt, depths) {
						t.Fatalf("resolvent %v covers %v outside union of %v, %v", w, pt, w1, w2)
					}
				}
			},
		}
		if _, err := Run(o, opts); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPropositionB12SupersetCount: the number of dyadic boxes containing
// a unit point is at most (d+1)^n, so oracle answers stay Õ(1)-sized.
func TestPropositionB12SupersetCount(t *testing.T) {
	r := rand.New(rand.NewSource(403))
	const n, d = 3, 4
	depths := depthsOf(n, d)
	// Saturate with many random boxes, then probe.
	bs := randBoxSet(r, n, d, 4000)
	o := MustBoxOracle(depths, bs)
	limit := 1
	for i := 0; i < n; i++ {
		limit *= d + 1
	}
	for probe := 0; probe < 200; probe++ {
		pt := []uint64{uint64(r.Intn(1 << d)), uint64(r.Intn(1 << d)), uint64(r.Intn(1 << d))}
		got := len(o.GapsContaining(pt))
		if got > limit {
			t.Fatalf("point %v contained in %d boxes, exceeds (d+1)^n = %d", pt, got, limit)
		}
	}
}

// TestKnowledgeBaseMonotone: with subsumption enabled, the knowledge base
// never stores two boxes one containing the other.
func TestKnowledgeBaseMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	depths := depthsOf(2, 4)
	bs := randBoxSet(r, 2, 4, 15)
	o := MustBoxOracle(depths, bs)
	res, err := Run(o, Options{Mode: Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	// KnowledgeBase size is reported; re-run collecting the final boxes
	// via a fresh skeleton to inspect the antichain property.
	var stats Stats
	sk := newSkeleton(2, depths, []int{0, 1}, Options{}, &stats)
	for _, b := range bs {
		sk.add(b)
	}
	if _, _, err := sk.root(dyadic.Universe(2)); err != nil {
		t.Fatal(err)
	}
	boxes := sk.kb.All()
	for i, a := range boxes {
		for j, b := range boxes {
			if i != j && a.Contains(b) {
				t.Fatalf("knowledge base stores nested boxes %v ⊇ %v", a, b)
			}
		}
	}
	_ = res
}

// TestLemma45ResolutionDominatesSkeletonWork: Lemma 4.5 bounds runtime by
// Õ(#resolutions): skeleton calls stay within a polylog factor of
// resolutions + loaded boxes + outputs.
func TestLemma45ResolutionDominatesSkeletonWork(t *testing.T) {
	r := rand.New(rand.NewSource(405))
	depths := depthsOf(3, 5)
	bs := randBoxSet(r, 3, 5, 40)
	o := MustBoxOracle(depths, bs)
	res, err := Run(o, Options{Mode: Reloaded})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	work := st.Resolutions + st.BoxesLoaded + st.Outputs + 1
	// Each unit of work can open at most O(n·d) = O(15) skeleton frames
	// plus backtracking overhead; 64× is a generous polylog allowance.
	if st.SkeletonCalls > 64*work {
		t.Errorf("skeleton calls %d exceed Õ(work)=64·%d — Lemma 4.5 accounting broken",
			st.SkeletonCalls, work)
	}
}
