package core

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"tetrisjoin/internal/dyadic"
)

// skewedInstance is a 2-dimensional BCP whose work piles onto the
// SAO-early region: the last quarter of dimension 0 is covered by one
// big box, dimension 1 is covered everywhere except value 0 by a chain
// of prefix boxes, so the outputs — and the per-output outer-loop
// restarts — are the 768 points (a, 0) with a < 768. Static dyadic
// shards over dimension 0 leave the later shards trivially covered
// while the early ones carry everything: the imbalance regime dynamic
// splitting exists for.
func skewedInstance(t testing.TB) *BoxOracle {
	return skewedInstanceDepth(t, 10)
}

// skewedInstanceDepth is skewedInstance over a 2^d × 2^d space, with
// 3·2^d/4 outputs — smaller d keeps deliberately-slowed runs quick.
func skewedInstanceDepth(t testing.TB, d int) *BoxOracle {
	t.Helper()
	depths := []uint8{uint8(d), uint8(d)}
	boxes := []dyadic.Box{dyadic.MustParseBox("11,λ")}
	prefix := ""
	for i := 0; i < d; i++ {
		boxes = append(boxes, dyadic.MustParseBox("λ,"+prefix+"1"))
		prefix += "0"
	}
	return MustBoxOracle(depths, boxes)
}

// slowOracle delays every probe so a run spans many scheduler quanta:
// steal tests use it to guarantee idle workers get to register their
// demand while the skewed region is still being enumerated.
type slowOracle struct{ *BoxOracle }

func (s slowOracle) GapsContaining(p []uint64) []dyadic.Box {
	time.Sleep(50 * time.Microsecond)
	return s.BoxOracle.GapsContaining(p)
}

// TestStealSkewedMatchesSequential: on the skewed instance, dynamic
// splitting must kick in (idle workers outnumber the two seed
// fragments) and the output must remain byte-identical to the
// sequential enumeration.
func TestStealSkewedMatchesSequential(t *testing.T) {
	o := skewedInstance(t)
	seq, err := Run(o, Options{Mode: Reloaded})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Tuples) != 768 { // 3·2^10/4
		t.Fatalf("instance has %d outputs, want 768", len(seq.Tuples))
	}
	before := StealsTotal()
	got, err := RunShards(func() Oracle { return slowOracle{o.Clone()} },
		Options{Mode: Reloaded}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Tuples, seq.Tuples) {
		t.Fatalf("stealing run diverged from sequential enumeration (%d vs %d tuples)",
			len(got.Tuples), len(seq.Tuples))
	}
	if got.Stats.Outputs != seq.Stats.Outputs {
		t.Fatalf("Outputs %d != sequential %d", got.Stats.Outputs, seq.Stats.Outputs)
	}
	if got.Stats.Steals == 0 {
		t.Fatal("4 workers over 2 skewed seeds performed no dynamic splits")
	}
	if got.Stats.ParallelWorkers != 4 {
		t.Fatalf("ParallelWorkers = %d, want 4", got.Stats.ParallelWorkers)
	}
	if got.Stats.MaxWorkerResolutions == 0 || got.Stats.MaxWorkerResolutions > got.Stats.Resolutions {
		t.Fatalf("MaxWorkerResolutions = %d out of range (total %d)",
			got.Stats.MaxWorkerResolutions, got.Stats.Resolutions)
	}
	if StealsTotal()-before < got.Stats.Steals {
		t.Fatalf("process counter advanced %d < run's %d steals", StealsTotal()-before, got.Stats.Steals)
	}
}

// TestStealSinglePassDonation: the single-pass skeleton donates by
// unwinding and restarting; order and output count must still match the
// sequential single-pass run exactly.
func TestStealSinglePassDonation(t *testing.T) {
	o := skewedInstanceDepth(t, 8)
	seq, err := Run(o, Options{Mode: Preloaded, SinglePass: true})
	if err != nil {
		t.Fatal(err)
	}
	// Single-pass runs never probe the oracle mid-run, so slowOracle
	// cannot stretch them; a sleeping OnResolve observer does.
	slow := func(w1, w2, r dyadic.Box, dim int) { time.Sleep(20 * time.Microsecond) }
	got, err := RunShards(func() Oracle { return o.Clone() },
		Options{Mode: Preloaded, SinglePass: true, OnResolve: slow}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Tuples, seq.Tuples) {
		t.Fatalf("single-pass stealing run diverged from sequential (%d vs %d tuples)",
			len(got.Tuples), len(seq.Tuples))
	}
	if got.Stats.Outputs != seq.Stats.Outputs {
		t.Fatalf("Outputs %d != sequential %d", got.Stats.Outputs, seq.Stats.Outputs)
	}
	if got.Stats.Steals == 0 {
		t.Fatal("single-pass run with idle workers performed no dynamic splits")
	}
}

// TestStealDisabled: StealDepth < 0 must pin the run to the static seed
// partition — no dynamic splits, workers capped at the seed count — and
// still enumerate identically.
func TestStealDisabled(t *testing.T) {
	o := skewedInstance(t)
	seq, err := Run(o, Options{Mode: Reloaded})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunShards(func() Oracle { return o.Clone() },
		Options{Mode: Reloaded, StealDepth: -1}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Tuples, seq.Tuples) {
		t.Fatal("static run diverged from sequential enumeration")
	}
	if got.Stats.Steals != 0 {
		t.Fatalf("StealDepth=-1 performed %d dynamic splits", got.Stats.Steals)
	}
	if got.Stats.ParallelWorkers != 2 {
		t.Fatalf("static run launched %d workers for 2 seeds, want 2", got.Stats.ParallelWorkers)
	}
}

// TestStealDepthBound: a StealDepth no deeper than the seed partition
// leaves no room to split, so the run degrades to static scheduling
// (but keeps its full worker pool, unlike StealDepth < 0).
func TestStealDepthBound(t *testing.T) {
	o := skewedInstance(t)
	got, err := RunShards(func() Oracle { return slowOracle{o.Clone()} },
		Options{Mode: Reloaded, StealDepth: 1}, 4, 2) // seeds sit at depth 1
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Steals != 0 {
		t.Fatalf("StealDepth=1 over depth-1 seeds performed %d splits", got.Stats.Steals)
	}
	if len(got.Tuples) != 768 {
		t.Fatalf("got %d tuples, want 768", len(got.Tuples))
	}
}

// TestRunShardsReusesProbeOracle pins the executor's oracle economy:
// the probe oracle built for validation doubles as worker 0's, so a run
// with W workers calls the factory exactly W times (probe + W-1).
func TestRunShardsReusesProbeOracle(t *testing.T) {
	o := shardInstance(t)
	var calls atomic.Int64
	mk := func() Oracle {
		calls.Add(1)
		return o.Clone()
	}
	if _, err := RunShards(mk, Options{Mode: Reloaded}, 3, 4); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("factory called %d times for 3 workers, want 3 (probe reused as worker 0's)", got)
	}
}

// TestStealStormRace hammers the scheduler: every worker slot contended,
// fragments donated and stolen continuously, OnResolve serialized — the
// -race CI job runs this with the detector on.
func TestStealStormRace(t *testing.T) {
	o := skewedInstance(t)
	seq, err := Run(o, Options{Mode: Reloaded})
	if err != nil {
		t.Fatal(err)
	}
	var resolves atomic.Int64
	for round := 0; round < 4; round++ {
		got, err := RunShards(func() Oracle { return slowOracle{o.Clone()} },
			Options{
				Mode:      Reloaded,
				OnResolve: func(w1, w2, r dyadic.Box, dim int) { resolves.Add(1) },
			}, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Tuples, seq.Tuples) {
			t.Fatalf("round %d: storm run diverged from sequential enumeration", round)
		}
	}
}

// TestStealFragmentKeysOrderable documents the merge-order invariant on
// the raw mechanism: donated keys extend the donor's path with a '1',
// so plain string order equals depth-first order, prefixes first.
func TestStealFragmentKeysOrderable(t *testing.T) {
	seeds, splittable := stealSeeds([]uint8{3, 3}, []int{0, 1}, 4)
	if len(seeds) != 4 || !splittable {
		t.Fatalf("seeds=%d splittable=%v, want 4 true", len(seeds), splittable)
	}
	for i, f := range seeds {
		if len(f.key) != 2 {
			t.Fatalf("seed %d key %q, want depth-2 path", i, f.key)
		}
		if i > 0 && seeds[i-1].key >= f.key {
			t.Fatalf("seed keys out of DFS order: %q >= %q", seeds[i-1].key, f.key)
		}
	}
	// A donation inside seed "01" keys between "01" and "10".
	donated := seeds[1].key + "1"
	if !(seeds[1].key < donated && donated < seeds[2].key) {
		t.Fatalf("donated key %q does not slot between %q and %q",
			donated, seeds[1].key, seeds[2].key)
	}
}
