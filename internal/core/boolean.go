package core

import (
	"fmt"

	"tetrisjoin/internal/dyadic"
)

// CoverReport is the outcome of a Boolean box cover query
// (Definition 3.5).
type CoverReport struct {
	// Covered is true when the union of the boxes is the whole space.
	Covered bool
	// Witness is, when Covered, a box containing the whole space that is
	// covered by the input union; when not Covered, a unit box (point)
	// not covered by any input box.
	Witness dyadic.Box
	// Stats reports the work performed.
	Stats Stats
}

// Covers solves the Boolean box cover problem: does the union of boxes
// cover the entire output space ⟨λ,…,λ⟩? This is TetrisSkeleton invoked
// once with the knowledge base preloaded; it also solves Klee's measure
// problem over the Boolean semiring (Corollary F.8).
func Covers(depths []uint8, boxes []dyadic.Box, opts Options) (*CoverReport, error) {
	n := len(depths)
	if n == 0 {
		return nil, fmt.Errorf("core: Covers needs at least one dimension")
	}
	sao, err := checkSAO(opts.SAO, n)
	if err != nil {
		return nil, err
	}
	rep := &CoverReport{}
	sk := newSkeleton(n, depths, sao, opts, &rep.Stats)
	for _, b := range boxes {
		if err := b.Check(depths); err != nil {
			return nil, fmt.Errorf("core: invalid box %v: %w", b, err)
		}
		sk.add(b)
	}
	v, w, err := sk.root(dyadic.Universe(n))
	if err != nil {
		return nil, err
	}
	rep.Covered = v
	rep.Witness = w
	rep.Stats.KnowledgeBase = sk.kb.Len()
	return rep, nil
}

// CoversTarget reports whether the union of boxes covers the given target
// box: the general Boolean sub-problem solved by TetrisSkeleton.
func CoversTarget(depths []uint8, boxes []dyadic.Box, target dyadic.Box, opts Options) (*CoverReport, error) {
	n := len(depths)
	if n == 0 {
		return nil, fmt.Errorf("core: CoversTarget needs at least one dimension")
	}
	if err := target.Check(depths); err != nil {
		return nil, fmt.Errorf("core: invalid target box %v: %w", target, err)
	}
	sao, err := checkSAO(opts.SAO, n)
	if err != nil {
		return nil, err
	}
	rep := &CoverReport{}
	sk := newSkeleton(n, depths, sao, opts, &rep.Stats)
	for _, b := range boxes {
		if err := b.Check(depths); err != nil {
			return nil, fmt.Errorf("core: invalid box %v: %w", b, err)
		}
		sk.add(b)
	}
	v, w, err := sk.root(target)
	if err != nil {
		return nil, err
	}
	rep.Covered = v
	rep.Witness = w
	rep.Stats.KnowledgeBase = sk.kb.Len()
	return rep, nil
}
