package core

import (
	"math/rand"
	"testing"
)

func sameTuples(a, b [][]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestPreparedBaseMatchesFreshRuns: a run reusing a PreparedBase must
// report exactly the tuples (in the same order) and the same BoxesLoaded
// as a fresh Preloaded run, sequentially and sharded, across repeated
// executions of the same base.
func TestPreparedBaseMatchesFreshRuns(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		depths := depthsOf(3, 4)
		bs := randBoxSet(r, 3, 4, 25)
		o := MustBoxOracle(depths, bs)
		opts := Options{Mode: Preloaded}

		fresh, err := Run(o, opts)
		if err != nil {
			t.Fatal(err)
		}

		base, err := BuildPreloadedBase(o, opts)
		if err != nil {
			t.Fatal(err)
		}
		withBase := opts
		withBase.Base = base

		for run := 0; run < 2; run++ {
			res, err := Run(o, withBase)
			if err != nil {
				t.Fatal(err)
			}
			if !sameTuples(res.Tuples, fresh.Tuples) {
				t.Fatalf("trial %d run %d with base: %d tuples, fresh run %d (or order differs)",
					trial, run, len(res.Tuples), len(fresh.Tuples))
			}
			if res.Stats.BoxesLoaded != fresh.Stats.BoxesLoaded {
				t.Errorf("trial %d run %d BoxesLoaded = %d, fresh run %d",
					trial, run, res.Stats.BoxesLoaded, fresh.Stats.BoxesLoaded)
			}

			mk := func() Oracle { return o.Clone() }
			sharded, err := RunShards(mk, withBase, 2, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !sameTuples(sharded.Tuples, fresh.Tuples) {
				t.Fatalf("trial %d sharded run %d with base: %d tuples, fresh run %d (or order differs)",
					trial, run, len(sharded.Tuples), len(fresh.Tuples))
			}
			if sharded.Stats.BoxesLoaded != fresh.Stats.BoxesLoaded {
				t.Errorf("trial %d sharded run %d BoxesLoaded = %d, fresh run %d",
					trial, run, sharded.Stats.BoxesLoaded, fresh.Stats.BoxesLoaded)
			}
		}

		// Mode/shape misuse is an error, not a silent fallback.
		bad := withBase
		bad.DisableSubsume = true
		if _, err := Run(o, bad); err == nil {
			t.Error("subsumption mismatch accepted")
		}
		// Reloaded ignores the base entirely.
		rel := withBase
		rel.Mode = Reloaded
		if _, err := Run(o, rel); err != nil {
			t.Errorf("Reloaded with a (ignored) base failed: %v", err)
		}
	}
}
