package core

import (
	"math/rand"
	"testing"
)

func sameTuples(a, b [][]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestPreparedBaseMatchesFreshRuns: a run reusing a PreparedBase must
// report exactly the tuples (in the same order) and the same BoxesLoaded
// as a fresh Preloaded run, sequentially and sharded, across repeated
// executions of the same base.
func TestPreparedBaseMatchesFreshRuns(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		depths := depthsOf(3, 4)
		bs := randBoxSet(r, 3, 4, 25)
		o := MustBoxOracle(depths, bs)
		opts := Options{Mode: Preloaded}

		fresh, err := Run(o, opts)
		if err != nil {
			t.Fatal(err)
		}

		base, err := BuildPreloadedBase(o, opts)
		if err != nil {
			t.Fatal(err)
		}
		withBase := opts
		withBase.Base = base

		for run := 0; run < 2; run++ {
			res, err := Run(o, withBase)
			if err != nil {
				t.Fatal(err)
			}
			if !sameTuples(res.Tuples, fresh.Tuples) {
				t.Fatalf("trial %d run %d with base: %d tuples, fresh run %d (or order differs)",
					trial, run, len(res.Tuples), len(fresh.Tuples))
			}
			if res.Stats.BoxesLoaded != fresh.Stats.BoxesLoaded {
				t.Errorf("trial %d run %d BoxesLoaded = %d, fresh run %d",
					trial, run, res.Stats.BoxesLoaded, fresh.Stats.BoxesLoaded)
			}

			mk := func() Oracle { return o.Clone() }
			sharded, err := RunShards(mk, withBase, 2, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !sameTuples(sharded.Tuples, fresh.Tuples) {
				t.Fatalf("trial %d sharded run %d with base: %d tuples, fresh run %d (or order differs)",
					trial, run, len(sharded.Tuples), len(fresh.Tuples))
			}
			if sharded.Stats.BoxesLoaded != fresh.Stats.BoxesLoaded {
				t.Errorf("trial %d sharded run %d BoxesLoaded = %d, fresh run %d",
					trial, run, sharded.Stats.BoxesLoaded, fresh.Stats.BoxesLoaded)
			}
		}

		// Mode/shape misuse is an error, not a silent fallback.
		bad := withBase
		bad.DisableSubsume = true
		if _, err := Run(o, bad); err == nil {
			t.Error("subsumption mismatch accepted")
		}
		// Reloaded consults the base as prior knowledge: same output,
		// and nothing left to load lazily when the base holds the full
		// gap set — without the base's boxes being charged to this run.
		rel := withBase
		rel.Mode = Reloaded
		relRes, err := Run(o, rel)
		if err != nil {
			t.Fatalf("Reloaded with base failed: %v", err)
		}
		if !sameTuples(relRes.Tuples, fresh.Tuples) {
			t.Fatalf("trial %d Reloaded-with-base: %d tuples, fresh %d (or order differs)",
				trial, len(relRes.Tuples), len(fresh.Tuples))
		}
		if relRes.Stats.BoxesLoaded != 0 {
			t.Errorf("trial %d Reloaded over a full-gap-set base loaded %d boxes, want 0",
				trial, relRes.Stats.BoxesLoaded)
		}
	}
}

// TestReloadedPartialBase: prior knowledge covering only part of the
// gap set keeps Reloaded exact — same tuples in the same order as a
// plain run — while the run lazily loads at most the boxes the base
// does not already certify.
func TestReloadedPartialBase(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		depths := depthsOf(3, 4)
		bs := randBoxSet(r, 3, 4, 30)
		o := MustBoxOracle(depths, bs)

		plain, err := Run(o, Options{Mode: Reloaded})
		if err != nil {
			t.Fatal(err)
		}

		// Base over an arbitrary half of the gap set: any subset of B is
		// valid prior knowledge (each box certifies an output-free
		// region regardless of the rest).
		half := MustBoxOracle(depths, bs[:len(bs)/2])
		base, err := BuildPreloadedBase(half, Options{})
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Mode: Reloaded, Base: base}
		res, err := Run(o, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !sameTuples(res.Tuples, plain.Tuples) {
			t.Fatalf("trial %d: partial-base Reloaded %d tuples, plain %d (or order differs)",
				trial, len(res.Tuples), len(plain.Tuples))
		}
		if res.Stats.BoxesLoaded > plain.Stats.BoxesLoaded {
			t.Errorf("trial %d: partial-base run loaded %d boxes, plain run %d",
				trial, res.Stats.BoxesLoaded, plain.Stats.BoxesLoaded)
		}

		// Sharded execution accepts the same prior knowledge.
		mk := func() Oracle { return o.Clone() }
		sharded, err := RunShards(mk, opts, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !sameTuples(sharded.Tuples, plain.Tuples) {
			t.Fatalf("trial %d: sharded partial-base %d tuples, plain %d (or order differs)",
				trial, len(sharded.Tuples), len(plain.Tuples))
		}
	}
}
