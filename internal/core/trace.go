package core

import (
	"fmt"
	"io"

	"tetrisjoin/internal/dyadic"
)

// Tracer renders a running commentary of a Tetris execution — the style
// of the paper's Example 4.4 walkthrough — to a writer: every geometric
// resolution with its inputs and resolvent, and every output tuple as it
// is discovered. Attach it to Options via Attach.
type Tracer struct {
	w     io.Writer
	count int64
}

// NewTracer returns a Tracer writing to w.
func NewTracer(w io.Writer) *Tracer { return &Tracer{w: w} }

// Attach wires the tracer into the given options, chaining any callbacks
// already present, and returns the modified options. Note that attaching
// sets OnOutput, which switches the run to streaming: Result.Tuples stays
// empty. Chain your own OnOutput before attaching to collect tuples while
// tracing.
func (t *Tracer) Attach(opts Options) Options {
	prevResolve := opts.OnResolve
	opts.OnResolve = func(w1, w2, res dyadic.Box, dim int) {
		t.count++
		fmt.Fprintf(t.w, "resolve #%d on dim %d: %v ⊕ %v → %v\n", t.count, dim, w1, w2, res)
		if prevResolve != nil {
			prevResolve(w1, w2, res, dim)
		}
	}
	prevOutput := opts.OnOutput
	opts.OnOutput = func(tuple []uint64) bool {
		fmt.Fprintf(t.w, "output: %v\n", tuple)
		if prevOutput != nil {
			return prevOutput(tuple)
		}
		return true
	}
	return opts
}

// Resolutions returns the number of resolutions traced so far.
func (t *Tracer) Resolutions() int64 { return t.count }
