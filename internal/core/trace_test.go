package core

import (
	"strings"
	"testing"
)

func TestTracerNarratesExample44(t *testing.T) {
	depths := depthsOf(2, 2)
	o := MustBoxOracle(depths, boxes("λ,0", "00,λ", "λ,11", "10,1"))
	var sb strings.Builder
	tracer := NewTracer(&sb)
	var collected [][]uint64
	opts := Options{
		Mode: Reloaded,
		SAO:  []int{0, 1},
		OnOutput: func(tuple []uint64) bool {
			collected = append(collected, append([]uint64(nil), tuple...))
			return true
		},
	}
	opts = tracer.Attach(opts)
	if _, err := Run(o, opts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Both outputs narrated, in Example 4.4's order.
	first := strings.Index(out, "output: [1 2]")
	second := strings.Index(out, "output: [3 2]")
	if first < 0 || second < 0 || second < first {
		t.Fatalf("trace missing or misordered outputs:\n%s", out)
	}
	// Resolutions narrated and counted consistently.
	if tracer.Resolutions() == 0 {
		t.Error("no resolutions traced")
	}
	if got := strings.Count(out, "resolve #"); int64(got) != tracer.Resolutions() {
		t.Errorf("trace lines %d, counter %d", got, tracer.Resolutions())
	}
	// The final resolution derives the universal box.
	if !strings.Contains(out, "→ ⟨λ,λ⟩") {
		t.Errorf("final resolvent ⟨λ,λ⟩ not narrated:\n%s", out)
	}
	// Chained callback still ran.
	if len(collected) != 2 {
		t.Errorf("chained OnOutput saw %d tuples", len(collected))
	}
}
