package core

import "sync/atomic"

// Budget is a work quota shared by every shard of a run: the
// MaxResolutions and MaxOutput limits of Options enforced with atomic
// counters so that concurrent shards draw from one pool instead of each
// getting its own allowance. A nil *Budget means unlimited everywhere it
// is consulted; sequential runs without limits never create one, keeping
// the hot path free of atomic operations.
type Budget struct {
	maxResolutions int64 // 0 = unlimited
	maxOutput      int64 // 0 = unlimited
	resolutions    atomic.Int64
	outputs        atomic.Int64
}

// NewBudget returns a budget enforcing the given limits (either may be 0
// for unlimited). It returns nil when both are 0: no limit, no counter.
func NewBudget(maxResolutions int64, maxOutput int) *Budget {
	if maxResolutions <= 0 && maxOutput <= 0 {
		return nil
	}
	return &Budget{maxResolutions: maxResolutions, maxOutput: int64(maxOutput)}
}

// AddResolution charges one resolution and reports whether the run is
// still within budget (false: the resolution that was just performed
// exceeded the limit and the run must abort). Safe on a nil receiver:
// nil means unlimited.
func (b *Budget) AddResolution() bool {
	if b == nil || b.maxResolutions <= 0 {
		return true
	}
	return b.resolutions.Add(1) <= b.maxResolutions
}

// ClaimOutput claims a slot for one output tuple. emit reports whether
// the tuple may be reported (false: the quota was already exhausted) and
// stop whether the claimant should halt after reporting (the claimed slot
// was the last one). Slots are claimed atomically, so across all shards
// exactly min(Z, MaxOutput) tuples are emitted. Safe on a nil receiver:
// nil means unlimited.
func (b *Budget) ClaimOutput() (emit, stop bool) {
	if b == nil || b.maxOutput <= 0 {
		return true, false
	}
	n := b.outputs.Add(1)
	return n <= b.maxOutput, n >= b.maxOutput
}

// outputsExhausted reports whether the output quota is fully claimed.
// Shards whose region holds no (or only late) outputs poll it between
// outer-loop iterations so a small MaxOutput stops the whole fleet, not
// just the shard that claimed the last slot. Safe on a nil receiver.
func (b *Budget) outputsExhausted() bool {
	return b != nil && b.maxOutput > 0 && b.outputs.Load() >= b.maxOutput
}
