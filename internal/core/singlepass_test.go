package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestSinglePassMatchesRestartMode: TetrisSkeleton2 (footnote 13) must
// enumerate exactly the same output as the restart-based outer loop.
func TestSinglePassMatchesRestartMode(t *testing.T) {
	r := rand.New(rand.NewSource(501))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(2)
		d := uint8(2 + r.Intn(2))
		depths := depthsOf(n, d)
		bs := randBoxSet(r, n, d, r.Intn(12))
		o := MustBoxOracle(depths, bs)
		want, err := Run(o, Options{Mode: Preloaded})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(o, Options{Mode: Preloaded, SinglePass: true})
		if err != nil {
			t.Fatal(err)
		}
		a, b := want.Tuples, got.Tuples
		sortTuples(a)
		sortTuples(b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: single-pass %v vs restart %v", trial, b, a)
		}
		// No-cache single pass is also correct.
		got, err = Run(o, Options{Mode: Preloaded, SinglePass: true, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		b = got.Tuples
		sortTuples(b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: no-cache single-pass mismatch", trial)
		}
	}
}

// TestSinglePassAvoidsRestartAmplification: on a large-output instance
// the single-pass variant must use far fewer skeleton calls than the
// restart loop — the reason footnote 13 exists.
func TestSinglePassAvoidsRestartAmplification(t *testing.T) {
	depths := depthsOf(2, 6)
	// No gaps: all 4096 points are outputs.
	o := MustBoxOracle(depths, nil)
	restart, err := Run(o, Options{Mode: Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(o, Options{Mode: Preloaded, SinglePass: true})
	if err != nil {
		t.Fatal(err)
	}
	if restart.Stats.Outputs != single.Stats.Outputs {
		t.Fatalf("output mismatch: %d vs %d", restart.Stats.Outputs, single.Stats.Outputs)
	}
	if single.Stats.SkeletonCalls*2 >= restart.Stats.SkeletonCalls {
		t.Errorf("single pass used %d skeleton calls vs restart's %d — no amplification avoided",
			single.Stats.SkeletonCalls, restart.Stats.SkeletonCalls)
	}
}

func TestSinglePassRequiresPreloaded(t *testing.T) {
	o := MustBoxOracle(depthsOf(2, 2), nil)
	if _, err := Run(o, Options{Mode: Reloaded, SinglePass: true}); err == nil {
		t.Error("single pass accepted with Reloaded mode")
	}
}

func TestSinglePassMaxOutputAndStreaming(t *testing.T) {
	o := MustBoxOracle(depthsOf(2, 3), nil) // 64 outputs
	res, err := Run(o, Options{Mode: Preloaded, SinglePass: true, MaxOutput: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 7 {
		t.Errorf("MaxOutput: got %d tuples", len(res.Tuples))
	}
	var seen int
	_, err = Run(o, Options{Mode: Preloaded, SinglePass: true, OnOutput: func(tuple []uint64) bool {
		seen++
		return seen < 5
	}})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Errorf("streaming stop: saw %d", seen)
	}
}
