package core

import (
	"fmt"

	"tetrisjoin/internal/balance"
	"tetrisjoin/internal/boxtree"
	"tetrisjoin/internal/dyadic"
)

// runLB executes the load-balanced variants of Section 4.5: the gap boxes
// are carried through the Balance map into 2n-2 dimensions and Tetris
// runs there with the lifted splitting attribute order
// (A'_1..A'_{n-2}, A_n, A_{n-1}, A”_{n-2}..A”_1), realizing Algorithm 5
// (Preloaded) and the online strategy of Appendix F.6 (Reloaded, with
// periodic partition rebuilds).
//
// When the skeleton finds an uncovered lifted unit point, the point is
// decoded back to a base tuple t; if t is an output, the whole lifted
// equivalence class Balance(⟨t⟩) is added to the knowledge base so the
// unconstrained suffix bits of the lifted space never have to be
// enumerated.
func runLB(o Oracle, opts Options) (*Result, error) {
	depths := o.Depths()
	res := &Result{}
	// Resolve the budget once so the skeletons rebuilt across partition
	// re-adjustments keep drawing from one cumulative resolution quota.
	opts.Budget = effectiveBudget(opts)

	var baseBoxes []dyadic.Box
	if opts.Mode == PreloadedLB {
		for _, b := range o.AllGaps() {
			if err := b.Check(depths); err != nil {
				return nil, fmt.Errorf("core: oracle returned invalid gap box %v: %w", b, err)
			}
			baseBoxes = append(baseBoxes, b)
		}
	}

	lift, err := balance.LiftFromBoxes(depths, baseBoxes)
	if err != nil {
		return nil, err
	}
	liftSAO := make([]int, lift.Dims())
	for i := range liftSAO {
		liftSAO[i] = i
	}
	sk := newSkeleton(lift.Dims(), lift.Depths(), liftSAO, opts, &res.Stats)
	// loaded is the exact-match set of base-space gap boxes seen so far;
	// a boxtree rather than a Box.Key map keeps dedup allocation-free.
	loaded := boxtree.New(len(depths))
	load := func(b dyadic.Box) bool {
		fresh := loaded.Insert(b)
		if fresh {
			res.Stats.BoxesLoaded++
		}
		sk.add(lift.Box(b))
		return fresh
	}
	for _, b := range baseBoxes {
		load(b)
	}

	// outputs retains every reported tuple even when the caller streams
	// via OnOutput, because rebuilds must re-cover them.
	var outputs [][]uint64

	// rebuild recomputes balanced partitions from the boxes loaded so far
	// and rebuilds the knowledge base in the new lifted space. Learned
	// resolvents are discarded — they are boxes of the old lifted space —
	// but loaded gap boxes and reported outputs are re-lifted, so the
	// covered region is preserved. Rebuilds happen O(log |C|) times.
	lastBuild := 0
	rebuild := func() error {
		res.Stats.Rebuilds++
		lift, err = balance.LiftFromBoxes(depths, baseBoxes)
		if err != nil {
			return err
		}
		sk = newSkeleton(lift.Dims(), lift.Depths(), liftSAO, opts, &res.Stats)
		for _, b := range baseBoxes {
			sk.add(lift.Box(b))
		}
		for _, t := range outputs {
			sk.addOutput(lift.Point(t))
		}
		lastBuild = len(baseBoxes)
		return nil
	}

	universe := dyadic.Universe(lift.Dims())
	for {
		if err := checkContext(opts); err != nil {
			return nil, err
		}
		if opts.Mode == ReloadedLB && len(baseBoxes) >= 2*max(1, lastBuild) {
			if err := rebuild(); err != nil {
				return nil, err
			}
		}
		v, w, err := sk.root(universe)
		if err != nil {
			return nil, err
		}
		if v {
			break
		}
		// w is an uncovered lifted unit point; decode to a base tuple.
		liftedPoint := w.Values(lift.Depths())
		point := lift.DecodePoint(liftedPoint)
		res.Stats.OracleCalls++
		gaps := o.GapsContaining(point)
		if len(gaps) == 0 {
			emit, stop := opts.Budget.ClaimOutput()
			if !emit {
				break
			}
			res.Stats.Outputs++
			tup := make([]uint64, len(point))
			copy(tup, point)
			outputs = append(outputs, tup)
			if opts.OnOutput != nil {
				if !opts.OnOutput(point) {
					stop = true
				}
			} else {
				res.Tuples = append(res.Tuples, tup)
			}
			sk.addOutput(lift.Point(tup))
			if stop {
				break
			}
			continue
		}
		progress := false
		containsPoint := false
		for _, g := range gaps {
			if err := g.Check(depths); err != nil {
				return nil, fmt.Errorf("core: oracle returned invalid gap box %v: %w", g, err)
			}
			if g.ContainsPoint(point, depths) {
				containsPoint = true
			}
			if load(g) {
				progress = true
				// Clone: gap boxes returned by GapsContaining are only
				// valid until the next oracle call, but baseBoxes must
				// survive until the next partition rebuild.
				baseBoxes = append(baseBoxes, g.Clone())
			}
		}
		if !containsPoint {
			return nil, fmt.Errorf("core: oracle contract violation: no returned gap box contains probe point %v", point)
		}
		if !progress {
			return nil, fmt.Errorf("core: no progress: oracle returned only known gap boxes for uncovered point %v", point)
		}
	}
	res.Stats.KnowledgeBase = sk.kb.Len()
	return res, nil
}
