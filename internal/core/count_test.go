package core

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"tetrisjoin/internal/dyadic"
)

func TestCountUncoveredAgainstEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(2)
		d := uint8(2 + r.Intn(2))
		depths := depthsOf(n, d)
		bs := randBoxSet(r, n, d, r.Intn(14))
		want := len(bruteUncovered(depths, bs))
		for _, noCache := range []bool{false, true} {
			rep, err := CountUncovered(depths, bs, Options{NoCache: noCache})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Uncovered.Cmp(big.NewInt(int64(want))) != 0 {
				t.Fatalf("trial %d (nocache=%v): Count = %s, want %d", trial, noCache, rep.Uncovered, want)
			}
		}
	}
}

func TestCountUncoveredLargeSpaceWithoutEnumeration(t *testing.T) {
	// A 3×40-bit space (2^120 points) with one half covered: the count
	// must come back exact and fast, which is impossible by enumeration.
	depths := depthsOf(3, 40)
	bs := boxes("0,λ,λ")
	rep, err := CountUncovered(depths, bs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Lsh(big.NewInt(1), 119) // half of 2^120
	if rep.Uncovered.Cmp(want) != 0 {
		t.Fatalf("Count = %s, want %s", rep.Uncovered, want)
	}
	if rep.Stats.SkeletonCalls > 1000 {
		t.Errorf("counting a half-space took %d calls", rep.Stats.SkeletonCalls)
	}
	// Fully covered space counts zero.
	rep, err = CountUncovered(depths, boxes("0,λ,λ", "1,λ,λ"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Uncovered.Sign() != 0 {
		t.Errorf("covered space counted %s", rep.Uncovered)
	}
	// Empty box set counts the whole space.
	rep, err = CountUncovered(depths, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Uncovered.Cmp(new(big.Int).Lsh(big.NewInt(1), 120)) != 0 {
		t.Errorf("empty set counted %s", rep.Uncovered)
	}
}

func TestCountUncoveredFigureFixtures(t *testing.T) {
	// Figure 5: covered space, count 0.
	depths := depthsOf(3, 6)
	figure5 := boxes("0,0,λ", "1,1,λ", "λ,0,0", "λ,1,1", "0,λ,0", "1,λ,1")
	rep, err := CountUncovered(depths, figure5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Uncovered.Sign() != 0 {
		t.Errorf("Figure 5: counted %s uncovered", rep.Uncovered)
	}
	// Figure 6: exactly 2·(2^{d-1})³ uncovered points.
	figure6 := boxes("0,0,λ", "1,1,λ", "λ,0,0", "λ,1,1", "0,λ,1", "1,λ,0")
	rep, err = CountUncovered(depths, figure6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Lsh(big.NewInt(2), 3*5)
	if rep.Uncovered.Cmp(want) != 0 {
		t.Errorf("Figure 6: counted %s, want %s", rep.Uncovered, want)
	}
}

func TestCountUncoveredValidation(t *testing.T) {
	if _, err := CountUncovered(nil, nil, Options{}); err == nil {
		t.Error("zero dimensions accepted")
	}
	if _, err := CountUncovered([]uint8{0}, nil, Options{}); err == nil {
		t.Error("zero depth accepted")
	}
	if _, err := CountUncovered([]uint8{2}, boxes("0,1"), Options{}); err == nil {
		t.Error("wrong-arity box accepted")
	}
	if _, err := CountUncovered([]uint8{2, 2}, nil, Options{SAO: []int{0}}); err == nil {
		t.Error("bad SAO accepted")
	}
}

func TestIntersectsAnyAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(602))
	for trial := 0; trial < 200; trial++ {
		depths := depthsOf(2, 4)
		bs := randBoxSet(r, 2, 4, r.Intn(10))
		o := MustBoxOracle(depths, bs)
		q := randBoxSet(r, 2, 4, 1)[0]
		want := false
		for _, b := range o.AllGaps() {
			if b.Intersects(q) {
				want = true
				break
			}
		}
		got := o.tree.IntersectsAny(q)
		if got != want {
			t.Fatalf("trial %d: IntersectsAny(%v) = %v, want %v (boxes %v)", trial, q, got, want, bs)
		}
	}
}

// TestCountAndCoversCancellation: a cancelled context must abort the
// counting recursion and the Boolean skeleton (both run as one giant
// root call with no outer-loop check point). The cancellation gate
// fires every 1024 skeleton calls, so the instance must be heavy enough
// to cross it — asserted, so a future shortcut cannot silently turn
// this test into a no-op.
func TestCountAndCoversCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(603))
	depths := depthsOf(3, 8)
	// Unit (point) boxes force the recursion to split all the way down
	// to each of them — random thick boxes tend to cover the universe in
	// one ContainsSuperset hit, which would never reach the gate.
	var bs []dyadic.Box
	for i := 0; i < 500; i++ {
		b := make(dyadic.Box, 3)
		for d := range b {
			b[d] = dyadic.Unit(r.Uint64()&255, 8)
		}
		bs = append(bs, b)
	}

	rep, err := CountUncovered(depths, bs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.SkeletonCalls < 2048 {
		t.Fatalf("instance too light to exercise the cancellation gate: %d skeleton calls", rep.Stats.SkeletonCalls)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CountUncovered(depths, bs, Options{Context: ctx}); err != context.Canceled {
		t.Errorf("cancelled CountUncovered returned %v, want context.Canceled", err)
	}

	// Covers bails out as soon as it finds an uncovered witness, so only
	// a fully covered instance recurses deep enough to reach the gate:
	// tile a 2-dim space completely with unit boxes.
	cdepths := depthsOf(2, 6)
	var cover []dyadic.Box
	for x := uint64(0); x < 64; x++ {
		for y := uint64(0); y < 64; y++ {
			cover = append(cover, dyadic.Box{dyadic.Unit(x, 6), dyadic.Unit(y, 6)})
		}
	}
	crep, err := Covers(cdepths, cover, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !crep.Covered {
		t.Fatal("tiled space not covered; fixture broken")
	}
	if crep.Stats.SkeletonCalls < 2048 {
		t.Fatalf("cover instance too light for the gate: %d skeleton calls", crep.Stats.SkeletonCalls)
	}
	if _, err := Covers(cdepths, cover, Options{Context: ctx}); err != context.Canceled {
		t.Errorf("cancelled Covers returned %v, want context.Canceled", err)
	}
}
