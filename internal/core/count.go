package core

import (
	"context"
	"fmt"
	"math/big"

	"tetrisjoin/internal/boxtree"
	"tetrisjoin/internal/dyadic"
)

// CountReport is the outcome of a counting run.
type CountReport struct {
	// Uncovered is the exact number of points not covered by any box.
	Uncovered *big.Int
	// Stats reports the work performed (Splits and CoverHits are the
	// meaningful counters; no resolutions are materialized).
	Stats Stats
}

// CountUncovered returns the exact number of points of the space not
// covered by any of the boxes — without enumerating them. This is the
// counting variant of TetrisSkeleton that Section 4.2.4 alludes to ("it
// is for #SAT"): instead of returning witness boxes, each recursion
// returns the uncovered count of its target, memoized per target box, so
// a sub-space with 2^50 uncovered points costs one cache hit rather than
// 2^50 outputs. Counts are exact big integers.
//
// Combined with package sat this is a #SAT counter with caching; as
// SpaceSize − CountUncovered it solves the counting version of Klee's
// measure problem in any dimension.
func CountUncovered(depths []uint8, boxes []dyadic.Box, opts Options) (*CountReport, error) {
	n := len(depths)
	if n == 0 {
		return nil, fmt.Errorf("core: CountUncovered needs at least one dimension")
	}
	for i, d := range depths {
		if d == 0 || d > dyadic.MaxDepth {
			return nil, fmt.Errorf("core: dimension %d has invalid depth %d", i, d)
		}
	}
	sao, err := checkSAO(opts.SAO, n)
	if err != nil {
		return nil, err
	}
	rep := &CountReport{}
	kb := boxtree.New(n)
	for _, b := range boxes {
		if err := b.Check(depths); err != nil {
			return nil, fmt.Errorf("core: invalid box %v: %w", b, err)
		}
		kb.Insert(b)
		rep.Stats.BoxesLoaded++
	}
	c := &counter{
		kb:      kb,
		sao:     sao,
		depths:  depths,
		noCache: opts.NoCache,
		ctx:     opts.Context,
		memo:    map[string]*big.Int{},
		stats:   &rep.Stats,
	}
	rep.Uncovered = c.count(dyadic.Universe(n))
	if c.ctxErr != nil {
		return nil, c.ctxErr
	}
	rep.Stats.KnowledgeBase = kb.Len()
	return rep, nil
}

type counter struct {
	kb      *boxtree.Tree
	sao     []int
	depths  []uint8
	noCache bool
	ctx     context.Context // cooperative cancellation; nil = never
	ctxErr  error           // sticky: set once cancelled, unwinds the recursion
	memo    map[string]*big.Int
	stats   *Stats
}

var bigZero = big.NewInt(0)
var bigOne = big.NewInt(1)

// count returns the number of uncovered points inside target box b. On
// cancellation it records the context error and unwinds quickly; the
// caller discards the partial count.
func (c *counter) count(b dyadic.Box) *big.Int {
	if c.ctxErr != nil {
		return bigZero
	}
	c.stats.SkeletonCalls++
	if c.ctx != nil && c.stats.SkeletonCalls&1023 == 0 {
		select {
		case <-c.ctx.Done():
			c.ctxErr = c.ctx.Err()
			return bigZero
		default:
		}
	}
	if _, ok := c.kb.ContainsSuperset(b); ok {
		c.stats.CoverHits++
		return bigZero
	}
	dim := b.FirstThick(c.sao, c.depths)
	if dim == -1 {
		c.stats.Outputs++
		return bigOne
	}
	// Entirely gap-free sub-space: every point is uncovered; return its
	// volume wholesale instead of enumerating it.
	if !c.kb.IntersectsAny(b) {
		v := new(big.Int).Lsh(bigOne, uint(b.LogVolume(c.depths)))
		return v
	}
	key := ""
	if !c.noCache {
		key = b.Key()
		if v, ok := c.memo[key]; ok {
			c.stats.CoverHits++
			return v
		}
	}
	c.stats.Splits++
	b1, b2 := b.SplitAt(dim)
	v := new(big.Int).Add(c.count(b1), c.count(b2))
	if !c.noCache {
		if v.Sign() == 0 {
			// Fully covered: record it geometrically (the analogue of
			// caching the resolvent) so supersets of b short-circuit.
			c.kb.InsertSubsuming(b)
		} else {
			c.memo[key] = v
		}
	}
	return v
}
