package core

import (
	"context"
	"fmt"
	"sync"

	"tetrisjoin/internal/boxtree"
	"tetrisjoin/internal/dyadic"
)

// ShardRoots partitions the output space into at least `shards` disjoint
// dyadic boxes whose union is the universe, by repeatedly splitting every
// box at its first thick dimension in SAO order. Because these splits are
// exactly the top levels of TetrisSkeleton's own recursion, the returned
// roots are in depth-first (SAO-lexicographic) order: concatenating the
// per-root outputs in slice order reproduces the sequential enumeration
// order. The count is rounded up to the next power of two; fewer boxes
// are returned only when the whole space has fewer points than requested.
func ShardRoots(depths []uint8, sao []int, shards int) []dyadic.Box {
	roots := []dyadic.Box{dyadic.Universe(len(depths))}
	for len(roots) < shards {
		next := make([]dyadic.Box, 0, 2*len(roots))
		split := false
		for _, b := range roots {
			dim := b.FirstThick(sao, depths)
			if dim == -1 {
				next = append(next, b)
				continue
			}
			b0, b1 := b.SplitAt(dim)
			next = append(next, b0, b1)
			split = true
		}
		roots = next
		if !split {
			break // every box is a unit box; the space is exhausted
		}
	}
	return roots
}

// RunShards executes Tetris under the work-stealing parallel executor.
// The universe is partitioned into disjoint dyadic seed fragments along
// the SAO prefix (the ShardRoots partition); workers own deques of
// fragments, and an idle worker steals either a whole pending fragment
// from another deque or — when every deque is empty — by having a busy
// worker split off the SAO-later half of its remaining region at the
// first thick dimension, the same split the skeleton's own recursion
// takes (bounded by Options.StealDepth). Every fragment is therefore a
// node of the sequential recursion tree, keyed by its depth-first path;
// output decomposition over disjoint dyadic boxes is exact (Proposition
// 3.6), so merging completed fragments in key order reproduces the
// sequential run's tuple set AND tuple order byte for byte, however the
// fragments were carved at runtime.
//
// newOracle must return a fresh oracle per call; each worker goroutine
// calls it once and keeps the oracle for every fragment it processes
// (the probe oracle built for validation is reused as worker 0's), so
// implementations may share immutable index structures between oracles
// but must not share probe scratch. MaxResolutions/MaxOutput are
// enforced as budgets shared across all fragments. opts.OnOutput, when
// set, is invoked only from this goroutine (never concurrently), in
// deterministic fragment-key order, as each fragment's buffered results
// become available; returning false cancels the remaining fragments.
// opts.Context cancels the whole run.
//
// Only the plain Preloaded/Reloaded modes shard; callers must route the
// LB modes through Run.
func RunShards(newOracle func() Oracle, opts Options, parallelism, shards int) (*Result, error) {
	if opts.Mode != Preloaded && opts.Mode != Reloaded {
		return nil, fmt.Errorf("core: RunShards supports only the plain Preloaded/Reloaded modes, not %v", opts.Mode)
	}
	if parallelism < 1 {
		return nil, fmt.Errorf("core: RunShards needs parallelism >= 1, got %d", parallelism)
	}
	if shards < 1 {
		return nil, fmt.Errorf("core: RunShards needs shards >= 1, got %d", shards)
	}
	probe := newOracle()
	n, err := validateOracle(probe)
	if err != nil {
		return nil, err
	}
	sao, err := checkSAO(opts.SAO, n)
	if err != nil {
		return nil, err
	}
	if opts.SinglePass && opts.Mode != Preloaded {
		return nil, fmt.Errorf("core: SinglePass requires Preloaded mode (the knowledge base must hold every gap box)")
	}
	depths := probe.Depths()
	seeds, splittable := stealSeeds(depths, sao, shards)
	stealDepth := opts.StealDepth
	switch {
	case stealDepth < 0:
		stealDepth = 0 // dynamic splitting disabled: static seeds only
	case stealDepth == 0:
		stealDepth = defaultStealDepth
	}
	// Workers beyond the seed count are useful only if seeds can still be
	// split for them; otherwise (space exhausted into unit boxes, or
	// dynamic splitting disabled) they would only ever idle.
	workers := parallelism
	if !splittable || stealDepth == 0 {
		workers = min(parallelism, len(seeds))
	}

	// Preloaded: build the full knowledge base ONCE and share it
	// read-only across every shard (the skeleton never writes to it —
	// learned resolvents go to per-shard private trees). Without this,
	// every shard would re-insert its slice of B, and boxes thick across
	// the shard dimension would be re-inserted by every shard.
	base, baseLoaded, err := opts.preparedBase(n)
	if err != nil {
		return nil, err
	}
	if opts.Mode == Preloaded && base == nil {
		base = boxtree.New(n)
		insert := func(b dyadic.Box) {
			if opts.DisableSubsume {
				base.Insert(b)
			} else {
				base.InsertSubsuming(b)
			}
		}
		baseLoaded, err = loadGapSet(probe, nil, boxtree.New(n), insert)
		if err != nil {
			return nil, err
		}
	}

	// Shard options: tuples buffer inside each shard's Result (the merge
	// below replays them in order), limits move into one shared budget,
	// and an internal cancellable context lets a failing or early-stopped
	// shard halt its siblings.
	parent := opts.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	budget := effectiveBudget(opts)

	sopts := opts
	sopts.SAO = sao
	sopts.OnOutput = nil
	sopts.Budget = budget
	sopts.MaxResolutions = 0
	sopts.MaxOutput = 0
	sopts.Context = ctx
	if opts.OnResolve != nil {
		// Serialize the tracing callback: shards resolve concurrently, and
		// OnResolve observers (e.g. trace recorders) are written for the
		// sequential engine. The interleaving across shards is
		// scheduling-dependent; per-shard order is preserved.
		var mu sync.Mutex
		inner := opts.OnResolve
		sopts.OnResolve = func(w1, w2, resolvent dyadic.Box, dim int) {
			mu.Lock()
			defer mu.Unlock()
			inner(w1, w2, resolvent, dim)
		}
	}

	sched := newStealScheduler(workers, seeds, stealDepth, sao, depths)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// The probe oracle built for validation (and the shared base) is
		// worker 0's; only the extra workers cost a newOracle call.
		oracle := probe
		if w > 0 {
			oracle = newOracle()
		}
		wg.Add(1)
		go func(w int, o Oracle) {
			defer wg.Done()
			for {
				f := sched.take(w)
				if f == nil {
					return
				}
				var sess *stealSession
				if stealDepth > 0 {
					sess = sched.session(w, f)
				}
				fres, ferr := runPlain(o, sopts, sao, f.box, base, sess)
				if ferr != nil {
					cancel() // stop sibling fragments; the merge sorts out blame
				}
				sched.finish(w, f, fres, ferr)
			}
		}(w, oracle)
	}

	// Merge in fragment-key (depth-first) order as fragments complete:
	// statistics accumulate, and tuples are either appended or replayed
	// through OnOutput serialized right here. stopped records an OnOutput
	// early stop, after which remaining fragments are cancelled and their
	// tuples dropped — matching the sequential contract that nothing is
	// reported past the stop. Fragments donated while the merge head is
	// still running slot in behind it, so the order stays exact.
	res := &Result{}
	stopped := false
	broken := false // some fragment (even a cancelled bystander) has no result
	var delivered int64
	var firstErr, cancelErr error
	for {
		f := sched.nextToMerge()
		if f == nil {
			break
		}
		<-f.done
		if f.err != nil {
			// A context.Canceled fragment was a bystander: it stopped
			// because a sibling failed, the merge stopped early, or the
			// caller's context fired — never blame it over the original
			// cause.
			if f.err == context.Canceled {
				if cancelErr == nil {
					cancelErr = f.err
				}
			} else if firstErr == nil {
				firstErr = f.err
			}
			broken = true
			continue
		}
		// Deliver nothing past an early stop — and nothing past a
		// fragment with no result (failed or cancelled as a bystander): a
		// sequential run would never have reached the region after the
		// failure, and delivering the next fragment with this one's output
		// missing would be a hole in the enumeration.
		if stopped || broken {
			continue
		}
		frag := f.res
		f.res = nil // release the fragment buffer as soon as it is merged
		res.Stats.Merge(frag.Stats)
		if opts.OnOutput == nil {
			res.Tuples = append(res.Tuples, frag.Tuples...)
			continue
		}
		for _, tup := range frag.Tuples {
			delivered++
			if !opts.OnOutput(tup) {
				stopped = true
				cancel()
				break
			}
		}
	}
	wg.Wait()
	// An OnOutput early stop is a clean result even if the caller's
	// context fired afterwards — the sequential engine likewise breaks
	// out on stop without rechecking the context.
	if !stopped {
		if err := parent.Err(); err != nil {
			return nil, err
		}
		if firstErr == nil {
			firstErr = cancelErr // defensive: cancellation with no cause recorded
		}
		if firstErr != nil {
			return nil, firstErr
		}
	}
	if opts.OnOutput != nil {
		res.Stats.Outputs = delivered
	}
	// Executor-shape statistics: per-fragment runs report zeros for
	// these, so setting them here never clobbers merged counters.
	res.Stats.Steals = sched.steals
	res.Stats.ParallelWorkers = int64(workers)
	res.Stats.MaxWorkerResolutions = sched.maxWorkerResolutions()
	// The shared base counts once: shards report only their private
	// knowledge bases. Prior knowledge handed to a Reloaded run is not
	// charged at all (runWithBase applies the same convention): its cost
	// belongs to whoever built it, and BoxesLoaded keeps measuring what
	// this run pulled lazily.
	if base != nil && opts.Mode == Preloaded {
		res.Stats.BoxesLoaded += baseLoaded
		res.Stats.KnowledgeBase += base.Len()
	}
	return res, nil
}
