package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"tetrisjoin/internal/boxtree"
	"tetrisjoin/internal/dyadic"
)

// ShardRoots partitions the output space into at least `shards` disjoint
// dyadic boxes whose union is the universe, by repeatedly splitting every
// box at its first thick dimension in SAO order. Because these splits are
// exactly the top levels of TetrisSkeleton's own recursion, the returned
// roots are in depth-first (SAO-lexicographic) order: concatenating the
// per-root outputs in slice order reproduces the sequential enumeration
// order. The count is rounded up to the next power of two; fewer boxes
// are returned only when the whole space has fewer points than requested.
func ShardRoots(depths []uint8, sao []int, shards int) []dyadic.Box {
	roots := []dyadic.Box{dyadic.Universe(len(depths))}
	for len(roots) < shards {
		next := make([]dyadic.Box, 0, 2*len(roots))
		split := false
		for _, b := range roots {
			dim := b.FirstThick(sao, depths)
			if dim == -1 {
				next = append(next, b)
				continue
			}
			b0, b1 := b.SplitAt(dim)
			next = append(next, b0, b1)
			split = true
		}
		roots = next
		if !split {
			break // every box is a unit box; the space is exhausted
		}
	}
	return roots
}

// RunShards executes Tetris sharded: the universe is partitioned into
// disjoint dyadic root boxes along the SAO prefix (ShardRoots), each root
// is solved by an independent per-shard run (RunBox semantics), and the
// per-shard results are merged deterministically in shard order. Output
// decomposition over disjoint roots is exact (Proposition 3.6), so the
// merged tuple set — and, because shards are concatenated in depth-first
// order, the tuple order — is identical to a sequential run's.
//
// newOracle must return a fresh oracle per call; each worker goroutine
// calls it once and keeps the oracle for every shard it processes, so
// implementations may share immutable index structures between oracles
// but must not share probe scratch. MaxResolutions/MaxOutput are enforced
// as budgets shared across all shards. opts.OnOutput, when set, is
// invoked only from this goroutine (never concurrently), in deterministic
// shard-major order, as each shard's buffered results become available;
// returning false cancels the remaining shards. opts.Context cancels the
// whole run.
//
// Only the plain Preloaded/Reloaded modes shard; callers must route the
// LB modes through Run.
func RunShards(newOracle func() Oracle, opts Options, parallelism, shards int) (*Result, error) {
	if opts.Mode != Preloaded && opts.Mode != Reloaded {
		return nil, fmt.Errorf("core: RunShards supports only the plain Preloaded/Reloaded modes, not %v", opts.Mode)
	}
	if parallelism < 1 {
		return nil, fmt.Errorf("core: RunShards needs parallelism >= 1, got %d", parallelism)
	}
	if shards < 1 {
		return nil, fmt.Errorf("core: RunShards needs shards >= 1, got %d", shards)
	}
	probe := newOracle()
	n, err := validateOracle(probe)
	if err != nil {
		return nil, err
	}
	sao, err := checkSAO(opts.SAO, n)
	if err != nil {
		return nil, err
	}
	if opts.SinglePass && opts.Mode != Preloaded {
		return nil, fmt.Errorf("core: SinglePass requires Preloaded mode (the knowledge base must hold every gap box)")
	}
	depths := probe.Depths()
	roots := ShardRoots(depths, sao, shards)

	// Preloaded: build the full knowledge base ONCE and share it
	// read-only across every shard (the skeleton never writes to it —
	// learned resolvents go to per-shard private trees). Without this,
	// every shard would re-insert its slice of B, and boxes thick across
	// the shard dimension would be re-inserted by every shard.
	base, baseLoaded, err := opts.preparedBase(n)
	if err != nil {
		return nil, err
	}
	if opts.Mode == Preloaded && base == nil {
		base = boxtree.New(n)
		insert := func(b dyadic.Box) {
			if opts.DisableSubsume {
				base.Insert(b)
			} else {
				base.InsertSubsuming(b)
			}
		}
		baseLoaded, err = loadGapSet(probe, nil, boxtree.New(n), insert)
		if err != nil {
			return nil, err
		}
	}

	// Shard options: tuples buffer inside each shard's Result (the merge
	// below replays them in order), limits move into one shared budget,
	// and an internal cancellable context lets a failing or early-stopped
	// shard halt its siblings.
	parent := opts.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	budget := effectiveBudget(opts)

	sopts := opts
	sopts.SAO = sao
	sopts.OnOutput = nil
	sopts.Budget = budget
	sopts.MaxResolutions = 0
	sopts.MaxOutput = 0
	sopts.Context = ctx
	if opts.OnResolve != nil {
		// Serialize the tracing callback: shards resolve concurrently, and
		// OnResolve observers (e.g. trace recorders) are written for the
		// sequential engine. The interleaving across shards is
		// scheduling-dependent; per-shard order is preserved.
		var mu sync.Mutex
		inner := opts.OnResolve
		sopts.OnResolve = func(w1, w2, resolvent dyadic.Box, dim int) {
			mu.Lock()
			defer mu.Unlock()
			inner(w1, w2, resolvent, dim)
		}
	}

	results := make([]*Result, len(roots))
	errs := make([]error, len(roots))
	done := make([]chan struct{}, len(roots))
	for i := range done {
		done[i] = make(chan struct{})
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := min(parallelism, len(roots))
	for w := 0; w < workers; w++ {
		oracle := probe
		if w > 0 {
			oracle = newOracle()
		}
		wg.Add(1)
		go func(o Oracle) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(roots) {
					return
				}
				results[i], errs[i] = runPlain(o, sopts, sao, roots[i], base)
				if errs[i] != nil {
					cancel() // stop sibling shards; the merge sorts out blame
				}
				close(done[i])
			}
		}(oracle)
	}

	// Merge in shard order as shards complete: statistics accumulate, and
	// tuples are either appended or replayed through OnOutput serialized
	// right here. stopped records an OnOutput early stop, after which
	// remaining shards are cancelled and their tuples dropped — matching
	// the sequential contract that nothing is reported past the stop.
	res := &Result{}
	stopped := false
	broken := false // some shard (even a cancelled bystander) has no result
	var delivered int64
	var firstErr, cancelErr error
	for i := range roots {
		<-done[i]
		if errs[i] != nil {
			// A context.Canceled shard was a bystander: it stopped because
			// a sibling failed, the merge stopped early, or the caller's
			// context fired — never blame it over the original cause.
			if errs[i] == context.Canceled {
				if cancelErr == nil {
					cancelErr = errs[i]
				}
			} else if firstErr == nil {
				firstErr = errs[i]
			}
			broken = true
			continue
		}
		// Deliver nothing past an early stop — and nothing past a shard
		// with no result (failed or cancelled as a bystander): a
		// sequential run would never have reached the region after the
		// failure, and delivering shard i+1 with shard i's output missing
		// would be a hole in the enumeration.
		if stopped || broken {
			continue
		}
		shard := results[i]
		results[i] = nil // release the shard buffer as soon as it is merged
		res.Stats.Merge(shard.Stats)
		if opts.OnOutput == nil {
			res.Tuples = append(res.Tuples, shard.Tuples...)
			continue
		}
		for _, tup := range shard.Tuples {
			delivered++
			if !opts.OnOutput(tup) {
				stopped = true
				cancel()
				break
			}
		}
	}
	wg.Wait()
	// An OnOutput early stop is a clean result even if the caller's
	// context fired afterwards — the sequential engine likewise breaks
	// out on stop without rechecking the context.
	if !stopped {
		if err := parent.Err(); err != nil {
			return nil, err
		}
		if firstErr == nil {
			firstErr = cancelErr // defensive: cancellation with no cause recorded
		}
		if firstErr != nil {
			return nil, firstErr
		}
	}
	if opts.OnOutput != nil {
		res.Stats.Outputs = delivered
	}
	// The shared base counts once: shards report only their private
	// knowledge bases. Prior knowledge handed to a Reloaded run is not
	// charged at all (runWithBase applies the same convention): its cost
	// belongs to whoever built it, and BoxesLoaded keeps measuring what
	// this run pulled lazily.
	if base != nil && opts.Mode == Preloaded {
		res.Stats.BoxesLoaded += baseLoaded
		res.Stats.KnowledgeBase += base.Len()
	}
	return res, nil
}
