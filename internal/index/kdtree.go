package index

import (
	"fmt"
	"sort"

	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/relation"
)

// KDTree is a k-d tree index: cells are split at the median value of a
// cycling dimension until each holds at most one tuple. Empty cells and
// the empty space around isolated tuples are reported as gap boxes after
// dyadic decomposition. Cell boundaries fall on arbitrary (non-dyadic)
// values, so a single cell may decompose into up to 2d dyadic intervals
// per dimension — the polylogarithmic overhead of Proposition B.14. The
// tree is immutable after construction; probe scratch lives in the
// cursors it hands out.
//
// Like Dyadic, the tree is a flat word arena: three words per node
// (children, splitDim|tupleRef, splitVal) plus a tuple payload slab,
// children named by uint32 indexes in preorder. Cell bounds are not
// stored; descent reconstructs lo/hi from the split values on the
// path, so the arena is position-independent and serializes into a
// segment verbatim.
type KDTree struct {
	rel    *relation.Relation
	depths []uint8
	nodes  []uint64 // 3 words per node
	points []uint64 // arity words per stored leaf tuple
}

// kdNil marks an absent child; a node is a leaf iff both children are
// kdNil. In a leaf, the tupleRef half-word is 0 for an empty cell or
// 1 + points-offset/arity for a one-tuple cell.
const kdNil = 0xFFFFFFFF

// NewKDTree builds the k-d tree over the relation's current tuples.
func NewKDTree(rel *relation.Relation) *KDTree {
	k := &KDTree{rel: rel, depths: rel.Depths()}
	tuples := append([]relation.Tuple(nil), rel.Tuples()...)
	k.build(tuples, 0)
	return k
}

func (k *KDTree) build(tuples []relation.Tuple, dim int) uint32 {
	idx := uint32(len(k.nodes) / 3)
	k.nodes = append(k.nodes, 0, 0, 0)
	if len(tuples) == 0 {
		k.nodes[3*idx] = kdNil | kdNil<<32
		return idx
	}
	if len(tuples) == 1 {
		ref := uint64(1 + len(k.points)/k.rel.Arity())
		k.points = append(k.points, tuples[0]...)
		k.nodes[3*idx] = kdNil | kdNil<<32
		k.nodes[3*idx+1] = ref << 32
		return idx
	}
	n := k.rel.Arity()
	// Find a dimension (starting from dim, cycling) where the tuples are
	// not all equal; one exists because tuples are deduplicated.
	splitDim := -1
	for off := 0; off < n; off++ {
		d := (dim + off) % n
		first := tuples[0][d]
		for _, t := range tuples[1:] {
			if t[d] != first {
				splitDim = d
				break
			}
		}
		if splitDim >= 0 {
			break
		}
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i][splitDim] < tuples[j][splitDim] })
	// Median split; nudge so both sides are non-empty.
	splitVal := tuples[len(tuples)/2][splitDim]
	if splitVal == tuples[0][splitDim] {
		i := sort.Search(len(tuples), func(i int) bool { return tuples[i][splitDim] > splitVal })
		splitVal = tuples[i][splitDim]
	}
	cut := sort.Search(len(tuples), func(i int) bool { return tuples[i][splitDim] >= splitVal })
	next := (splitDim + 1) % n
	c0 := k.build(tuples[:cut], next)
	c1 := k.build(tuples[cut:], next)
	k.nodes[3*idx] = uint64(c0) | uint64(c1)<<32
	k.nodes[3*idx+1] = uint64(uint32(splitDim))
	k.nodes[3*idx+2] = splitVal
	return idx
}

// leafTuple returns the tuple stored in leaf node ni, nil for an empty
// cell. The tuple aliases the points slab.
func (k *KDTree) leafTuple(ni uint32) relation.Tuple {
	ref := k.nodes[3*ni+1] >> 32
	if ref == 0 {
		return nil
	}
	n := k.rel.Arity()
	off := int(ref-1) * n
	return relation.Tuple(k.points[off : off+n : off+n])
}

// Relation implements Index.
func (k *KDTree) Relation() *relation.Relation { return k.rel }

// Kind implements Index.
func (k *KDTree) Kind() string { return "kdtree" }

// kdCursor carries the per-worker scratch: the cell bounds rebuilt
// during descent, the gap box, and the result slice.
type kdCursor struct {
	ix     *KDTree
	lo, hi []uint64
	gapBox dyadic.Box
	out    []dyadic.Box
}

// NewCursor implements Index.
func (k *KDTree) NewCursor() Cursor {
	return &kdCursor{
		ix:     k,
		lo:     make([]uint64, k.rel.Arity()),
		hi:     make([]uint64, k.rel.Arity()),
		gapBox: make(dyadic.Box, k.rel.Arity()),
		out:    make([]dyadic.Box, 1),
	}
}

// GapsAt implements Cursor: descend to the probe point's leaf cell,
// narrowing the lo/hi scratch bounds at each split. An empty cell
// yields the maximal dyadic box around the point inside the cell; a
// one-tuple cell yields the maximal dyadic box that additionally
// excludes the tuple along the first dimension where they differ.
func (c *kdCursor) GapsAt(point []uint64) []dyadic.Box {
	k := c.ix
	checkPoint(k.rel, point)
	n := k.rel.Arity()
	for i := 0; i < n; i++ {
		c.lo[i] = 0
		c.hi[i] = uint64(1)<<k.depths[i] - 1
	}
	ni := uint32(0)
	for {
		w := k.nodes[3*ni]
		if uint32(w) == kdNil {
			break
		}
		splitDim := int(uint32(k.nodes[3*ni+1]))
		splitVal := k.nodes[3*ni+2]
		if point[splitDim] < splitVal {
			c.hi[splitDim] = splitVal - 1
			ni = uint32(w)
		} else {
			c.lo[splitDim] = splitVal
			ni = uint32(w >> 32)
		}
	}
	box := c.gapBox
	tuple := k.leafTuple(ni)
	if tuple == nil {
		for i := 0; i < n; i++ {
			iv, ok := dyadic.MaxDyadicIn(point[i], c.lo[i], c.hi[i], k.depths[i])
			if !ok {
				panic("index: kd cell does not contain probe point")
			}
			box[i] = iv
		}
		c.out[0] = box
		return c.out
	}
	diff := -1
	for i := 0; i < n; i++ {
		if point[i] != tuple[i] {
			diff = i
			break
		}
	}
	if diff == -1 {
		return nil // the probe point is the cell's tuple
	}
	for i := 0; i < n; i++ {
		lo, hi := c.lo[i], c.hi[i]
		if i == diff {
			// Exclude the tuple: stay on the probe's side of it.
			if point[i] < tuple[i] {
				hi = tuple[i] - 1
			} else {
				lo = tuple[i] + 1
			}
		}
		iv, ok := dyadic.MaxDyadicIn(point[i], lo, hi, k.depths[i])
		if !ok {
			panic("index: kd gap computation is inconsistent")
		}
		box[i] = iv
	}
	c.out[0] = box
	return c.out
}

// AllGaps implements Index: empty leaf cells decompose wholesale; a
// one-tuple cell contributes the staircase decomposition of cell∖{t}.
// Cell bounds are rebuilt along the DFS by mutate-and-restore.
func (k *KDTree) AllGaps() []dyadic.Box {
	var out []dyadic.Box
	n := k.rel.Arity()
	cellLo := make([]uint64, n)
	cellHi := make([]uint64, n)
	for i := 0; i < n; i++ {
		cellHi[i] = uint64(1)<<k.depths[i] - 1
	}
	var walk func(ni uint32)
	walk = func(ni uint32) {
		w := k.nodes[3*ni]
		if uint32(w) != kdNil {
			splitDim := int(uint32(k.nodes[3*ni+1]))
			splitVal := k.nodes[3*ni+2]
			oldLo, oldHi := cellLo[splitDim], cellHi[splitDim]
			cellHi[splitDim] = splitVal - 1
			walk(uint32(w))
			cellHi[splitDim] = oldHi
			cellLo[splitDim] = splitVal
			walk(uint32(w >> 32))
			cellLo[splitDim] = oldLo
			return
		}
		tuple := k.leafTuple(ni)
		if tuple == nil {
			out = append(out, dyadic.DecomposeBox(cellLo, cellHi, k.depths)...)
			return
		}
		// cell ∖ {t} = ⋃_j  t_0 × … × t_{j-1} × (cell_j ∖ t_j) × cell_rest
		for j := 0; j < n; j++ {
			for _, side := range [][2]uint64{{cellLo[j], tuple[j] - 1}, {tuple[j] + 1, cellHi[j]}} {
				if tuple[j] == 0 && side[1] == tuple[j]-1 {
					continue // underflowed empty left side
				}
				if side[0] > side[1] {
					continue
				}
				lo := make([]uint64, n)
				hi := make([]uint64, n)
				for i := 0; i < n; i++ {
					switch {
					case i < j:
						lo[i], hi[i] = tuple[i], tuple[i]
					case i == j:
						lo[i], hi[i] = side[0], side[1]
					default:
						lo[i], hi[i] = cellLo[i], cellHi[i]
					}
				}
				out = append(out, dyadic.DecomposeBox(lo, hi, k.depths)...)
			}
		}
	}
	if len(k.nodes) > 0 {
		walk(0)
	}
	return out
}

// AppendWords implements frozen serialization: node count, the node
// arena verbatim, then the tuple payload slab.
func (k *KDTree) AppendWords(dst []uint64) []uint64 {
	dst = append(dst, uint64(len(k.nodes)/3))
	dst = append(dst, k.nodes...)
	return append(dst, k.points...)
}

// KDTreeFromWords rebuilds a KDTree over rel from an AppendWords slab,
// validating links, split dimensions, payload references and payload
// domain bounds so descent over a corrupt slab is impossible.
func KDTreeFromWords(rel *relation.Relation, words []uint64) (*KDTree, error) {
	if len(words) < 1 {
		return nil, fmt.Errorf("index: kdtree slab empty")
	}
	count := words[0]
	n := rel.Arity()
	if count == 0 || uint64(len(words)-1) < count*3 {
		return nil, fmt.Errorf("index: kdtree slab has %d words for %d nodes", len(words)-1, count)
	}
	nodes := words[1 : 1+count*3]
	points := words[1+count*3:]
	if len(points)%n != 0 {
		return nil, fmt.Errorf("index: kdtree payload %d words not a multiple of arity %d", len(points), n)
	}
	numTuples := len(points) / n
	depths := rel.Depths()
	for i, v := range points {
		if d := depths[i%n]; d < 64 && v >= 1<<d {
			return nil, fmt.Errorf("index: kdtree payload value %d exceeds depth-%d domain", v, d)
		}
	}
	for i := uint64(0); i < count; i++ {
		w := nodes[3*i]
		c0, c1 := uint32(w), uint32(w>>32)
		if c0 == kdNil || c1 == kdNil {
			if c0 != kdNil || c1 != kdNil {
				return nil, fmt.Errorf("index: kdtree node %d half-leaf", i)
			}
			if ref := nodes[3*i+1] >> 32; ref > uint64(numTuples) {
				return nil, fmt.Errorf("index: kdtree node %d tuple ref %d out of range", i, ref)
			}
			continue
		}
		// Preorder append: child0 immediately follows the parent; both
		// links strictly increase, bounding every descent.
		if uint64(c0) != i+1 || uint64(c1) >= count || uint64(c1) <= i {
			return nil, fmt.Errorf("index: kdtree node %d has bad links (%d, %d)", i, c0, c1)
		}
		dim := uint32(nodes[3*i+1])
		if int(dim) >= n {
			return nil, fmt.Errorf("index: kdtree node %d split dim %d out of range", i, dim)
		}
		// Built trees always split strictly above the cell minimum, so a
		// split value of 0 (which would underflow the left cell bound) or
		// outside the dimension's domain marks a corrupt slab.
		sv := nodes[3*i+2]
		if d := depths[dim]; sv == 0 || (d < 64 && sv >= 1<<d) {
			return nil, fmt.Errorf("index: kdtree node %d split value %d out of domain", i, sv)
		}
	}
	return &KDTree{rel: rel, depths: depths, nodes: nodes, points: points}, nil
}
