package index

import (
	"sort"

	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/relation"
)

// KDTree is a k-d tree index: cells are split at the median value of a
// cycling dimension until each holds at most one tuple. Empty cells and
// the empty space around isolated tuples are reported as gap boxes after
// dyadic decomposition. Cell boundaries fall on arbitrary (non-dyadic)
// values, so a single cell may decompose into up to 2d dyadic intervals
// per dimension — the polylogarithmic overhead of Proposition B.14. The
// tree is immutable after construction; probe scratch lives in the
// cursors it hands out.
type KDTree struct {
	rel    *relation.Relation
	depths []uint8
	root   *kdNode
}

type kdNode struct {
	lo, hi   []uint64 // inclusive cell bounds per dimension
	tuple    relation.Tuple
	children [2]*kdNode
	splitDim int
	splitVal uint64 // left: value < splitVal; right: value >= splitVal
}

// NewKDTree builds the k-d tree over the relation's current tuples.
func NewKDTree(rel *relation.Relation) *KDTree {
	k := &KDTree{rel: rel, depths: rel.Depths()}
	lo := make([]uint64, rel.Arity())
	hi := make([]uint64, rel.Arity())
	for i, d := range rel.Depths() {
		hi[i] = uint64(1)<<d - 1
	}
	tuples := append([]relation.Tuple(nil), rel.Tuples()...)
	k.root = k.build(lo, hi, tuples, 0)
	return k
}

func (k *KDTree) build(lo, hi []uint64, tuples []relation.Tuple, dim int) *kdNode {
	nd := &kdNode{lo: lo, hi: hi}
	if len(tuples) == 0 {
		return nd
	}
	if len(tuples) == 1 {
		nd.tuple = tuples[0]
		return nd
	}
	n := k.rel.Arity()
	// Find a dimension (starting from dim, cycling) where the tuples are
	// not all equal; one exists because tuples are deduplicated.
	splitDim := -1
	for off := 0; off < n; off++ {
		d := (dim + off) % n
		first := tuples[0][d]
		for _, t := range tuples[1:] {
			if t[d] != first {
				splitDim = d
				break
			}
		}
		if splitDim >= 0 {
			break
		}
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i][splitDim] < tuples[j][splitDim] })
	// Median split; nudge so both sides are non-empty.
	splitVal := tuples[len(tuples)/2][splitDim]
	if splitVal == tuples[0][splitDim] {
		i := sort.Search(len(tuples), func(i int) bool { return tuples[i][splitDim] > splitVal })
		splitVal = tuples[i][splitDim]
	}
	cut := sort.Search(len(tuples), func(i int) bool { return tuples[i][splitDim] >= splitVal })
	nd.splitDim = splitDim
	nd.splitVal = splitVal
	loL := append([]uint64(nil), lo...)
	hiL := append([]uint64(nil), hi...)
	hiL[splitDim] = splitVal - 1
	loR := append([]uint64(nil), lo...)
	hiR := append([]uint64(nil), hi...)
	loR[splitDim] = splitVal
	next := (splitDim + 1) % n
	nd.children[0] = k.build(loL, hiL, tuples[:cut], next)
	nd.children[1] = k.build(loR, hiR, tuples[cut:], next)
	return nd
}

// Relation implements Index.
func (k *KDTree) Relation() *relation.Relation { return k.rel }

// Kind implements Index.
func (k *KDTree) Kind() string { return "kdtree" }

// kdCursor carries the per-worker scratch box and result slice.
type kdCursor struct {
	ix     *KDTree
	gapBox dyadic.Box
	out    []dyadic.Box
}

// NewCursor implements Index.
func (k *KDTree) NewCursor() Cursor {
	return &kdCursor{
		ix:     k,
		gapBox: make(dyadic.Box, k.rel.Arity()),
		out:    make([]dyadic.Box, 1),
	}
}

// GapsAt implements Cursor: descend to the probe point's leaf cell. An
// empty cell yields the maximal dyadic box around the point inside the
// cell; a one-tuple cell yields the maximal dyadic box that additionally
// excludes the tuple along the first dimension where they differ.
func (c *kdCursor) GapsAt(point []uint64) []dyadic.Box {
	k := c.ix
	checkPoint(k.rel, point)
	nd := k.root
	for nd.children[0] != nil {
		if point[nd.splitDim] < nd.splitVal {
			nd = nd.children[0]
		} else {
			nd = nd.children[1]
		}
	}
	n := k.rel.Arity()
	box := c.gapBox
	if nd.tuple == nil {
		for i := 0; i < n; i++ {
			iv, ok := dyadic.MaxDyadicIn(point[i], nd.lo[i], nd.hi[i], k.depths[i])
			if !ok {
				panic("index: kd cell does not contain probe point")
			}
			box[i] = iv
		}
		c.out[0] = box
		return c.out
	}
	diff := -1
	for i := 0; i < n; i++ {
		if point[i] != nd.tuple[i] {
			diff = i
			break
		}
	}
	if diff == -1 {
		return nil // the probe point is the cell's tuple
	}
	for i := 0; i < n; i++ {
		lo, hi := nd.lo[i], nd.hi[i]
		if i == diff {
			// Exclude the tuple: stay on the probe's side of it.
			if point[i] < nd.tuple[i] {
				hi = nd.tuple[i] - 1
			} else {
				lo = nd.tuple[i] + 1
			}
		}
		iv, ok := dyadic.MaxDyadicIn(point[i], lo, hi, k.depths[i])
		if !ok {
			panic("index: kd gap computation is inconsistent")
		}
		box[i] = iv
	}
	c.out[0] = box
	return c.out
}

// AllGaps implements Index: empty leaf cells decompose wholesale; a
// one-tuple cell contributes the staircase decomposition of cell∖{t}.
func (k *KDTree) AllGaps() []dyadic.Box {
	var out []dyadic.Box
	n := k.rel.Arity()
	var walk func(nd *kdNode)
	walk = func(nd *kdNode) {
		if nd == nil {
			return
		}
		if nd.children[0] != nil {
			walk(nd.children[0])
			walk(nd.children[1])
			return
		}
		if nd.tuple == nil {
			out = append(out, dyadic.DecomposeBox(nd.lo, nd.hi, k.depths)...)
			return
		}
		// cell ∖ {t} = ⋃_j  t_0 × … × t_{j-1} × (cell_j ∖ t_j) × cell_rest
		for j := 0; j < n; j++ {
			for _, side := range [][2]uint64{{nd.lo[j], nd.tuple[j] - 1}, {nd.tuple[j] + 1, nd.hi[j]}} {
				if nd.tuple[j] == 0 && side[1] == nd.tuple[j]-1 {
					continue // underflowed empty left side
				}
				if side[0] > side[1] {
					continue
				}
				lo := make([]uint64, n)
				hi := make([]uint64, n)
				for i := 0; i < n; i++ {
					switch {
					case i < j:
						lo[i], hi[i] = nd.tuple[i], nd.tuple[i]
					case i == j:
						lo[i], hi[i] = side[0], side[1]
					default:
						lo[i], hi[i] = nd.lo[i], nd.hi[i]
					}
				}
				out = append(out, dyadic.DecomposeBox(lo, hi, k.depths)...)
			}
		}
	}
	walk(k.root)
	return out
}
