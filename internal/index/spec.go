package index

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"tetrisjoin/internal/relation"
)

// Family names an index family a Spec can ask for.
type Family int

const (
	// BTreeFamily is the Sorted (B-tree/trie) index in a chosen attribute
	// order.
	BTreeFamily Family = iota
	// DyadicFamily is the dyadic-tree (quadtree-like) index.
	DyadicFamily
	// KDTreeFamily is the median-split k-d tree index.
	KDTreeFamily
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case BTreeFamily:
		return "btree"
	case DyadicFamily:
		return "dyadic"
	case KDTreeFamily:
		return "kdtree"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// ParseFamily parses a Family.String() name back into the Family; the
// round-trip the durable catalog's checkpoint files depend on.
func ParseFamily(s string) (Family, error) {
	switch s {
	case "btree":
		return BTreeFamily, nil
	case "dyadic":
		return DyadicFamily, nil
	case "kdtree":
		return KDTreeFamily, nil
	default:
		return 0, fmt.Errorf("index: unknown family %q", s)
	}
}

// Spec describes an index to build or look up: the family plus, for the
// order-sensitive B-tree family, the attribute order. A Spec is the unit
// of the catalog's index registry — the catalog records which specs each
// relation maintains, builds them once per relation version at ingest
// time, and resolves ad-hoc orders through the same registry with
// build-on-demand.
type Spec struct {
	// Family selects the index family.
	Family Family
	// Order is the attribute-name order for BTreeFamily (empty = schema
	// order). Ignored by the order-insensitive families.
	Order []string
}

// BTreeSpec describes a sorted index in the given attribute order.
func BTreeSpec(order ...string) Spec { return Spec{Family: BTreeFamily, Order: order} }

// DyadicSpec describes a dyadic-tree index.
func DyadicSpec() Spec { return Spec{Family: DyadicFamily} }

// KDTreeSpec describes a k-d tree index.
func KDTreeSpec() Spec { return Spec{Family: KDTreeFamily} }

// Key returns the spec's canonical identity, e.g. "btree(B,A)" or
// "dyadic". Two specs with equal keys describe the same index over a
// given relation.
func (s Spec) Key() string {
	if s.Family == BTreeFamily {
		return "btree(" + strings.Join(s.Order, ",") + ")"
	}
	return s.Family.String()
}

// Build constructs the described index over the relation.
func (s Spec) Build(rel *relation.Relation) (Index, error) {
	switch s.Family {
	case BTreeFamily:
		return NewSorted(rel, s.Order...)
	case DyadicFamily:
		return NewDyadic(rel), nil
	case KDTreeFamily:
		return NewKDTree(rel), nil
	default:
		return nil, fmt.Errorf("index: unknown family %v", s.Family)
	}
}

// Set is the per-relation-version index registry: a concurrency-safe
// collection of built indexes keyed by Spec. All indexes in a set cover
// one immutable relation snapshot; each spec is built at most once and
// shared read-only afterwards (indexes are immutable, per-worker state
// lives in cursors). Builds are counted through the shared counter the
// set was created with, which is how the catalog proves that prepared
// executions perform zero index construction.
type Set struct {
	rel    *relation.Relation
	builds *atomic.Int64 // shared build counter, may be nil

	mu    sync.RWMutex
	byKey map[string]setEntry
}

// setEntry keeps the built index together with the spec that described
// it, so SpecList can hand exact specs (not parsed-back keys) to a new
// relation version's registry.
type setEntry struct {
	ix   Index
	spec Spec
}

// NewSet returns an empty registry over the relation. builds, when
// non-nil, is incremented once per index actually constructed (eager or
// on-demand).
func NewSet(rel *relation.Relation, builds *atomic.Int64) *Set {
	return &Set{rel: rel, builds: builds, byKey: map[string]setEntry{}}
}

// Relation returns the registry's relation snapshot.
func (s *Set) Relation() *relation.Relation { return s.rel }

// canonical resolves a spec against the set's relation so equivalent
// specs share one cache slot: an empty B-tree order means schema order,
// and without this a maintained BTreeSpec() would never be found by a
// query demanding the same order by explicit attribute names.
func (s *Set) canonical(spec Spec) Spec {
	if spec.Family == BTreeFamily && len(spec.Order) == 0 {
		spec.Order = s.rel.Attrs()
	}
	return spec
}

// Get returns the index described by the spec, building and caching it
// on first use. Concurrent Gets are safe; a spec is built at most once.
func (s *Set) Get(spec Spec) (Index, bool, error) {
	spec = s.canonical(spec)
	key := spec.Key()
	s.mu.RLock()
	e, ok := s.byKey[key]
	s.mu.RUnlock()
	if ok {
		return e.ix, false, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byKey[key]; ok {
		return e.ix, false, nil
	}
	ix, err := spec.Build(s.rel)
	if err != nil {
		return nil, false, err
	}
	s.byKey[key] = setEntry{ix: ix, spec: spec}
	if s.builds != nil {
		s.builds.Add(1)
	}
	return ix, true, nil
}

// Ensure builds every given spec that is not present yet (the eager
// ingest-time path).
func (s *Set) Ensure(specs ...Spec) error {
	for _, spec := range specs {
		if _, _, err := s.Get(spec); err != nil {
			return err
		}
	}
	return nil
}

// maxLayerDepth caps how many delta layers Derive stacks before falling
// back to a full rebuild: probe cost grows with the chain (each append
// layer multiplies probe results, each delete layer adds a member
// probe), so past this depth a fresh O(N) build is the cheaper steady
// state. With the catalog's background compactor folding chains at a
// lower threshold off the write path, this cap is the emergency brake
// for bursts that outrun the compactor, not the steady-state policy.
const maxLayerDepth = 16

// MaxLayerDepth reports the deepest delta-layer chain among the held
// indexes: the catalog's compaction trigger.
func (s *Set) MaxLayerDepth() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	depth := 0
	for _, e := range s.byKey {
		if d := LayerDepth(e.ix); d > depth {
			depth = d
		}
	}
	return depth
}

// Derive builds the index registry for the next version of this set's
// relation from the delta between the two versions. Every spec held
// here is carried to the new set; each is realized as a delta layer
// over the existing immutable build — O(k) construction for a k-tuple
// delta — unless the delta is too large relative to the snapshot or the
// layer chain too deep, in which case that spec is rebuilt in full.
// Returns the new set plus how many specs took each path; layered
// constructions charge the shared build counter once each (they are
// real, if small, index constructions), full rebuilds charge through
// the normal Get path.
func (s *Set) Derive(next *relation.Relation, d relation.Delta) (set *Set, layered, full int, err error) {
	s.mu.RLock()
	entries := make([]setEntry, 0, len(s.byKey))
	for _, e := range s.byKey {
		entries = append(entries, e)
	}
	s.mu.RUnlock()

	out := NewSet(next, s.builds)
	if len(entries) == 0 {
		return out, 0, 0, nil
	}

	// One shared relation over the inserted tuples; each spec builds its
	// own small index over it (a B-tree spec needs its own order).
	var deltaRel *relation.Relation
	if len(d.Inserted) > 0 {
		deltaRel, err = relation.New(next.Name()+"+delta", next.Attrs(), next.Depths())
		if err != nil {
			return nil, 0, 0, err
		}
		if err := deltaRel.InsertAll(d.Inserted...); err != nil {
			return nil, 0, 0, err
		}
		deltaRel.Tuples() // normalize: shared read-only once published
	}

	for _, e := range entries {
		switch {
		case d.Empty():
			// The tuple set is unchanged (e.g. an append of duplicates):
			// the old build is valid verbatim, only its snapshot pointer
			// moves. No construction, no charge.
			out.put(e.spec, rebased{Index: e.ix, rel: next})
		case LayerDepth(e.ix) >= maxLayerDepth || d.Len()*4 > next.Len():
			if _, _, err := out.Get(e.spec); err != nil {
				return nil, 0, 0, err
			}
			full++
		default:
			cur := e.ix
			if len(d.Deleted) > 0 {
				cur, err = NewDeleted(next, cur, d.Deleted)
				if err != nil {
					return nil, 0, 0, err
				}
			}
			if len(d.Inserted) > 0 {
				deltaIx, err := e.spec.Build(deltaRel)
				if err != nil {
					return nil, 0, 0, err
				}
				cur, err = NewAppended(next, cur, deltaIx)
				if err != nil {
					return nil, 0, 0, err
				}
			}
			out.put(e.spec, cur)
			layered++
			if s.builds != nil {
				s.builds.Add(1)
			}
		}
	}
	return out, layered, full, nil
}

// put stores a pre-built index under its spec (the Derive path; Get
// remains the build-on-demand path).
func (s *Set) put(spec Spec, ix Index) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byKey[spec.Key()] = setEntry{ix: ix, spec: spec}
}

// Specs returns the keys of the indexes currently held, sorted order not
// guaranteed; for introspection and tests.
func (s *Set) Specs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		keys = append(keys, k)
	}
	return keys
}

// SpecList returns the exact specs of the indexes currently held — what
// a registry over a new version of the relation should maintain. Unlike
// Specs it never round-trips through key strings, so attribute names
// are preserved verbatim.
func (s *Set) SpecList() []Spec {
	s.mu.RLock()
	defer s.mu.RUnlock()
	specs := make([]Spec, 0, len(s.byKey))
	for _, e := range s.byKey {
		specs = append(specs, e.spec)
	}
	return specs
}

// Len returns the number of indexes held.
func (s *Set) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byKey)
}
