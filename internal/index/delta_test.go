package index

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/relation"
)

// randomRelation builds a relation over a small 2-attribute domain so
// tests can enumerate every point.
func randomRelation(t *testing.T, name string, n int, d uint8, seed int64) *relation.Relation {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rel := relation.MustNewUniform(name, []string{"A", "B"}, d)
	for i := 0; i < n; i++ {
		rel.MustInsert(uint64(r.Intn(1<<d)), uint64(r.Intn(1<<d)))
	}
	rel.Tuples()
	return rel
}

// checkIndexContract exhaustively verifies the oracle contract of ix
// against its relation over the full (small) domain: GapsAt(p) is empty
// iff p is a tuple; every returned gap box contains p and no tuple; and
// AllGaps covers exactly the complement.
func checkIndexContract(t *testing.T, label string, ix Index) {
	t.Helper()
	rel := ix.Relation()
	depths := rel.Depths()
	all := ix.AllGaps()
	for _, b := range all {
		if err := b.Check(depths); err != nil {
			t.Fatalf("%s: AllGaps returned invalid box %v: %v", label, b, err)
		}
	}
	cur := ix.NewCursor()
	point := make([]uint64, rel.Arity())
	var walk func(dim int)
	walk = func(dim int) {
		if dim < rel.Arity() {
			for v := uint64(0); v < 1<<depths[dim]; v++ {
				point[dim] = v
				walk(dim + 1)
			}
			return
		}
		isTuple := rel.Contains(point...)
		gaps := cur.GapsAt(point)
		if isTuple && len(gaps) != 0 {
			t.Fatalf("%s: GapsAt(%v) returned %d boxes for a tuple", label, point, len(gaps))
		}
		if !isTuple && len(gaps) == 0 {
			t.Fatalf("%s: GapsAt(%v) empty for a non-tuple", label, point)
		}
		for _, g := range gaps {
			if err := g.Check(depths); err != nil {
				t.Fatalf("%s: GapsAt(%v) invalid box %v: %v", label, point, g, err)
			}
			if !g.ContainsPoint(point, depths) {
				t.Fatalf("%s: GapsAt(%v) box %v does not contain the probe", label, point, g)
			}
		}
		covered := false
		for _, b := range all {
			if b.ContainsPoint(point, depths) {
				covered = true
				if isTuple {
					t.Fatalf("%s: AllGaps box %v covers tuple %v", label, b, point)
				}
			}
		}
		if !isTuple && !covered {
			t.Fatalf("%s: AllGaps does not cover non-tuple %v", label, point)
		}
	}
	walk(0)
	// Gap validity for probed boxes: no gap box may contain any tuple.
	for _, tup := range rel.Tuples() {
		for _, b := range all {
			if b.ContainsPoint(tup, depths) {
				t.Fatalf("%s: gap box %v contains tuple %v", label, b, tup)
			}
		}
	}
}

// layeredOverSpecs builds each index family fresh over the base version
// and layers the delta, then checks the composite against the new
// version's contract.
func TestDeltaLayersMatchFreshBuilds(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		base := randomRelation(t, "R", 20, 4, seed)
		rng := rand.New(rand.NewSource(seed + 100))

		// Inserted tuples disjoint from base; deleted tuples from base.
		var ins []relation.Tuple
		for len(ins) < 3 {
			cand := relation.Tuple{uint64(rng.Intn(16)), uint64(rng.Intn(16))}
			if !base.Contains(cand...) {
				ins = append(ins, cand)
			}
		}
		del := []relation.Tuple{base.Tuples()[0], base.Tuples()[len(base.Tuples())/2]}

		for _, spec := range []Spec{BTreeSpec(), BTreeSpec("B", "A"), DyadicSpec(), KDTreeSpec()} {
			baseIx, err := spec.Build(base)
			if err != nil {
				t.Fatal(err)
			}

			// Delete layer.
			afterDel, err := base.WithDeleted(del...)
			if err != nil {
				t.Fatal(err)
			}
			delIx, err := NewDeleted(afterDel, baseIx, del)
			if err != nil {
				t.Fatal(err)
			}
			checkIndexContract(t, spec.Key()+"/deleted seed="+string(rune('0'+seed)), delIx)
			if LayerDepth(delIx) != 1 {
				t.Fatalf("deleted layer depth %d, want 1", LayerDepth(delIx))
			}

			// Append layer.
			afterIns, err := base.WithInserted(ins...)
			if err != nil {
				t.Fatal(err)
			}
			deltaRel := relation.MustNewUniform("dR", []string{"A", "B"}, 4)
			if err := deltaRel.InsertAll(ins...); err != nil {
				t.Fatal(err)
			}
			deltaIx, err := spec.Build(deltaRel)
			if err != nil {
				t.Fatal(err)
			}
			appIx, err := NewAppended(afterIns, baseIx, deltaIx)
			if err != nil {
				t.Fatal(err)
			}
			checkIndexContract(t, spec.Key()+"/appended", appIx)
			if LayerDepth(appIx) != 1 {
				t.Fatalf("appended layer depth %d, want 1", LayerDepth(appIx))
			}

			// Chained: append over the delete layer.
			chained, err := afterDel.WithInserted(ins...)
			if err != nil {
				t.Fatal(err)
			}
			chainIx, err := NewAppended(chained, delIx, deltaIx)
			if err != nil {
				t.Fatal(err)
			}
			checkIndexContract(t, spec.Key()+"/chained", chainIx)
			if LayerDepth(chainIx) != 2 {
				t.Fatalf("chained layer depth %d, want 2", LayerDepth(chainIx))
			}
		}
	}
}

func TestSetDeriveLayersAndCounts(t *testing.T) {
	base := randomRelation(t, "R", 30, 4, 7)
	var builds atomic.Int64
	set := NewSet(base, &builds)
	if err := set.Ensure(BTreeSpec(), BTreeSpec("B", "A"), DyadicSpec()); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 3 {
		t.Fatalf("eager builds = %d, want 3", builds.Load())
	}

	// A 1-tuple append layers every carried spec: 3 O(1)-sized
	// constructions, zero full rebuilds.
	var ins relation.Tuple
	for v := uint64(0); ; v++ {
		if !base.Contains(v%16, v/16) {
			ins = relation.Tuple{v % 16, v / 16}
			break
		}
	}
	next, err := base.WithInserted(ins)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := next.DeltaSince(base.Version())
	if !ok {
		t.Fatal("delta unavailable")
	}
	derived, layered, full, err := set.Derive(next, d)
	if err != nil {
		t.Fatal(err)
	}
	if layered != 3 || full != 0 {
		t.Fatalf("layered=%d full=%d, want 3/0", layered, full)
	}
	if builds.Load() != 6 {
		t.Fatalf("builds after derive = %d, want 6 (3 eager + 3 layers)", builds.Load())
	}
	if derived.Len() != 3 {
		t.Fatalf("derived set holds %d specs, want 3", derived.Len())
	}
	ix, built, err := derived.Get(BTreeSpec())
	if err != nil || built {
		t.Fatalf("derived Get rebuilt (built=%v err=%v)", built, err)
	}
	if LayerDepth(ix) != 1 {
		t.Fatalf("derived index depth %d, want 1: %s", LayerDepth(ix), ix.Kind())
	}
	checkIndexContract(t, "derived/btree", ix)

	// An empty delta (duplicate append) rebases without charging builds.
	dup, err := next.WithInserted(ins)
	if err != nil {
		t.Fatal(err)
	}
	dd, ok := dup.DeltaSince(next.Version())
	if !ok || !dd.Empty() {
		t.Fatalf("duplicate append delta: %+v ok=%v", dd, ok)
	}
	before := builds.Load()
	rebasedSet, layered, full, err := derived.Derive(dup, dd)
	if err != nil {
		t.Fatal(err)
	}
	if layered != 0 || full != 0 || builds.Load() != before {
		t.Fatalf("empty delta charged work: layered=%d full=%d builds+=%d", layered, full, builds.Load()-before)
	}
	ix, _, err = rebasedSet.Get(BTreeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Relation() != dup {
		t.Fatal("rebased index must report the new snapshot")
	}

	// A delta comparable to the relation size triggers the full-rebuild
	// fallback.
	var bulk []relation.Tuple
	for v := uint64(0); len(bulk) < 12; v++ {
		cand := relation.Tuple{v % 16, (v / 16) % 16}
		if !dup.Contains(cand...) {
			bulk = append(bulk, cand)
		}
	}
	big, err := dup.WithInserted(bulk...)
	if err != nil {
		t.Fatal(err)
	}
	bd, _ := big.DeltaSince(dup.Version())
	_, layered, full, err = rebasedSet.Derive(big, bd)
	if err != nil {
		t.Fatal(err)
	}
	if full != 3 || layered != 0 {
		t.Fatalf("bulk delta: layered=%d full=%d, want 0/3", layered, full)
	}
}

// The layer-depth cap: deriving past maxLayerDepth falls back to full
// rebuilds even for tiny deltas.
func TestSetDeriveDepthCap(t *testing.T) {
	cur := randomRelation(t, "R", 40, 5, 11)
	var builds atomic.Int64
	set := NewSet(cur, &builds)
	if err := set.Ensure(BTreeSpec()); err != nil {
		t.Fatal(err)
	}
	sawFull := false
	for i := 0; i < maxLayerDepth+2; i++ {
		var ins relation.Tuple
		for v := uint64(0); ; v++ {
			if !cur.Contains(v%32, v/32) {
				ins = relation.Tuple{v % 32, v / 32}
				break
			}
		}
		next, err := cur.WithInserted(ins)
		if err != nil {
			t.Fatal(err)
		}
		d, ok := next.DeltaSince(cur.Version())
		if !ok {
			t.Fatal("delta unavailable")
		}
		var full int
		set, _, full, err = set.Derive(next, d)
		if err != nil {
			t.Fatal(err)
		}
		if full > 0 {
			sawFull = true
			ix, _, _ := set.Get(BTreeSpec())
			if LayerDepth(ix) != 0 {
				t.Fatalf("full rebuild still layered: depth %d", LayerDepth(ix))
			}
		}
		cur = next
	}
	if !sawFull {
		t.Fatalf("no full rebuild within %d derivations; depth cap inert", maxLayerDepth+2)
	}
	ix, _, err := set.Get(BTreeSpec())
	if err != nil {
		t.Fatal(err)
	}
	checkIndexContract(t, "deep-chain", ix)
}

// A box probed out of a layered index must never be wider than the
// relation complement allows — cross-checked by the exhaustive contract
// above — and Union/Tombstones alone must satisfy the documented probe
// semantics.
func TestTombstonesProbe(t *testing.T) {
	base := randomRelation(t, "R", 10, 3, 3)
	del := []relation.Tuple{base.Tuples()[1]}
	next, err := base.WithDeleted(del...)
	if err != nil {
		t.Fatal(err)
	}
	tomb := NewTombstones(next, del)
	cur := tomb.NewCursor()
	g := cur.GapsAt(del[0])
	if len(g) != 1 {
		t.Fatalf("tombstone probe returned %d boxes, want 1", len(g))
	}
	want := dyadic.Point(del[0], next.Depths())
	if !g[0].Equal(want) {
		t.Fatalf("tombstone gap %v, want %v", g[0], want)
	}
	if got := cur.GapsAt(next.Tuples()[0]); len(got) != 0 {
		t.Fatalf("tombstone probe on live tuple returned %v", got)
	}
	if len(tomb.AllGaps()) != 1 {
		t.Fatalf("tombstone AllGaps %v, want 1 box", tomb.AllGaps())
	}
}
