package index

import (
	"sync"
	"sync/atomic"
	"testing"

	"tetrisjoin/internal/relation"
)

func TestSpecKeyAndBuild(t *testing.T) {
	rel := relation.MustNewUniform("R", []string{"a", "b"}, 4)
	rel.MustInsert(1, 2)

	cases := []struct {
		spec Spec
		key  string
		kind string
	}{
		{BTreeSpec("b", "a"), "btree(b,a)", "btree(b,a)"},
		{BTreeSpec(), "btree()", "btree(a,b)"},
		{DyadicSpec(), "dyadic", "dyadic"},
		{KDTreeSpec(), "kdtree", "kdtree"},
	}
	for _, c := range cases {
		if got := c.spec.Key(); got != c.key {
			t.Errorf("Key(%v) = %q, want %q", c.spec, got, c.key)
		}
		ix, err := c.spec.Build(rel)
		if err != nil {
			t.Fatalf("Build(%v): %v", c.spec, err)
		}
		if ix.Kind() != c.kind {
			t.Errorf("Build(%v).Kind() = %q, want %q", c.spec, ix.Kind(), c.kind)
		}
	}

	if _, err := BTreeSpec("nope").Build(rel); err == nil {
		t.Error("Build with unknown attribute succeeded")
	}
}

func TestSetBuildsOnceAndCounts(t *testing.T) {
	rel := relation.MustNewUniform("R", []string{"a", "b"}, 4)
	rel.MustInsert(1, 2)
	rel.MustInsert(2, 3)

	var builds atomic.Int64
	set := NewSet(rel, &builds)

	ix1, built, err := set.Get(BTreeSpec("b", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if !built {
		t.Error("first Get did not build")
	}
	ix2, built, err := set.Get(BTreeSpec("b", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if built {
		t.Error("second Get rebuilt the index")
	}
	if ix1 != ix2 {
		t.Error("second Get returned a different index")
	}
	if builds.Load() != 1 {
		t.Errorf("builds = %d, want 1", builds.Load())
	}

	if err := set.Ensure(BTreeSpec("b", "a"), DyadicSpec(), KDTreeSpec()); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 3 {
		t.Errorf("builds after Ensure = %d, want 3", builds.Load())
	}
	if set.Len() != 3 {
		t.Errorf("set holds %d indexes, want 3", set.Len())
	}
}

func TestSetConcurrentGet(t *testing.T) {
	rel := relation.MustNewUniform("R", []string{"a", "b"}, 6)
	for v := uint64(0); v < 20; v++ {
		rel.MustInsert(v%13, (v*7)%13)
	}
	var builds atomic.Int64
	set := NewSet(rel, &builds)

	specs := []Spec{BTreeSpec("a", "b"), BTreeSpec("b", "a"), DyadicSpec(), KDTreeSpec()}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ix, _, err := set.Get(specs[i%len(specs)])
				if err != nil {
					t.Error(err)
					return
				}
				// Probe through a private cursor to exercise shared reads.
				ix.NewCursor().GapsAt([]uint64{1, 2})
			}
		}()
	}
	wg.Wait()
	if builds.Load() != int64(len(specs)) {
		t.Errorf("builds = %d, want %d (each spec exactly once)", builds.Load(), len(specs))
	}
}

func TestBTreeSpecCanonicalizesEmptyOrder(t *testing.T) {
	// A maintained schema-order index (BTreeSpec()) must be found by a
	// demand that names the same order explicitly, and vice versa.
	rel := relation.MustNewUniform("R", []string{"a", "b"}, 4)
	rel.MustInsert(1, 2)
	var builds atomic.Int64
	set := NewSet(rel, &builds)
	if _, built, err := set.Get(BTreeSpec()); err != nil || !built {
		t.Fatalf("eager schema-order build: built=%v err=%v", built, err)
	}
	ix, built, err := set.Get(BTreeSpec("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if built {
		t.Error("explicit schema-order demand rebuilt the maintained index")
	}
	if ix.Kind() != "btree(a,b)" {
		t.Errorf("Kind = %q", ix.Kind())
	}
	if builds.Load() != 1 {
		t.Errorf("builds = %d, want 1", builds.Load())
	}
}
