// Delta index builds: composing the immutable index of a relation
// version v with a small structure over the tuples that changed, so the
// index for version v+1 costs O(k) construction instead of O(N).
//
// The two directions compose differently because gap certificates move
// in opposite directions under mutation:
//
//   - Deletion only grows the empty space: every gap box of v is still a
//     gap box of v \ D, and the k deleted tuples become point gaps. The
//     layered index is therefore a plain gap-set union — the existing
//     Union type over the prior index (rebased onto the new snapshot)
//     and a Tombstones index holding the point boxes of D.
//
//   - Insertion shrinks the empty space: a gap box of v may contain an
//     inserted tuple, so the prior gaps are NOT valid for v ∪ A. What is
//     valid is every pairwise intersection: comp(v ∪ A) = comp(v) ∩
//     comp(A), and the intersection of two dyadic boxes is itself a
//     dyadic box (per dimension the intervals are nested or disjoint).
//     The Appended type realizes this intersection product lazily at
//     probe time — both member probes return boxes containing the probe
//     point, so every pairwise meet is non-empty and contains it.
//
// Either composition preserves the oracle contract exactly: GapsAt is
// empty iff the probe point is a tuple of the NEW version, and AllGaps
// unions to precisely the complement of the new version. Layers chain
// (an appended-over-deleted-over-appended index is fine); Set.Derive
// caps the chain depth and falls back to a full rebuild past it, since
// probe cost grows with the number of layers.
package index

import (
	"fmt"
	"sort"

	"tetrisjoin/internal/boxtree"
	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/relation"
)

// Tombstones is a gap generator whose gap set is the point boxes of
// tuples deleted from the relation: the delete half of a layered index.
// Every tombstone tuple must be absent from the relation (the catalog
// guarantees this by recording effective deltas only).
type Tombstones struct {
	rel     *relation.Relation
	deleted []relation.Tuple // sorted, deduplicated
}

// NewTombstones builds the tombstone layer over the new snapshot. The
// deleted tuples are copied (headers only) and sorted.
func NewTombstones(rel *relation.Relation, deleted []relation.Tuple) *Tombstones {
	ts := make([]relation.Tuple, len(deleted))
	copy(ts, deleted)
	sort.Slice(ts, func(i, j int) bool { return relation.Compare(ts[i], ts[j]) < 0 })
	return &Tombstones{rel: rel, deleted: ts}
}

// Relation implements Index.
func (t *Tombstones) Relation() *relation.Relation { return t.rel }

// Kind implements Index.
func (t *Tombstones) Kind() string { return fmt.Sprintf("tombstones(%d)", len(t.deleted)) }

// AllGaps implements Index: one unit box per deleted tuple.
func (t *Tombstones) AllGaps() []dyadic.Box {
	depths := t.rel.Depths()
	out := make([]dyadic.Box, len(t.deleted))
	for i, tup := range t.deleted {
		out[i] = dyadic.Point(tup, depths)
	}
	return out
}

// tombstoneCursor owns the probe scratch: a single reused unit box.
type tombstoneCursor struct {
	t   *Tombstones
	box dyadic.Box
	out []dyadic.Box
}

// NewCursor implements Index.
func (t *Tombstones) NewCursor() Cursor {
	return &tombstoneCursor{t: t, box: make(dyadic.Box, t.rel.Arity()), out: make([]dyadic.Box, 0, 1)}
}

// GapsAt implements Cursor: the point's own unit box when it is a
// tombstone, nothing otherwise.
func (c *tombstoneCursor) GapsAt(point []uint64) []dyadic.Box {
	checkPoint(c.t.rel, point)
	i := sort.Search(len(c.t.deleted), func(i int) bool {
		return relation.Compare(c.t.deleted[i], point) >= 0
	})
	if i >= len(c.t.deleted) || relation.Compare(c.t.deleted[i], point) != 0 {
		return nil
	}
	depths := c.t.rel.Depths()
	for d := range c.box {
		c.box[d] = dyadic.Unit(point[d], depths[d])
	}
	c.out = c.out[:0]
	return append(c.out, c.box)
}

// rebased re-parents an index onto a different relation snapshot, so it
// can be a member of a layered composite whose Relation() must report
// the new version. On its own a rebased index violates the GapsAt
// emptiness contract (it still describes the old tuple set); it is only
// sound inside NewDeleted/NewAppended, which restore the contract for
// the composite. Hence unexported construction.
type rebased struct {
	Index
	rel *relation.Relation
}

func (r rebased) Relation() *relation.Relation { return r.rel }

// Kind implements Index, making the rebase visible in diagnostics.
func (r rebased) Kind() string { return "rebase(" + r.Index.Kind() + ")" }

// NewDeleted layers deletions over a prior version's index: rel must be
// the new snapshot (prior minus deleted), base an index over the prior
// version, and deleted the effective tuples removed — each present in
// the prior version and absent from rel. The result is a plain Union of
// gap generators: the prior gaps (still valid — deletion only grows the
// empty space) plus one point gap per deleted tuple.
func NewDeleted(rel *relation.Relation, base Index, deleted []relation.Tuple) (Index, error) {
	if base.Relation().Arity() != rel.Arity() {
		return nil, fmt.Errorf("index: deleted layer arity mismatch: base %d, relation %s has %d",
			base.Relation().Arity(), rel.Name(), rel.Arity())
	}
	for _, t := range deleted {
		if rel.Contains(t...) {
			return nil, fmt.Errorf("index: tombstone %v is still a tuple of %s", t, rel.Name())
		}
	}
	return NewUnion(rebased{Index: base, rel: rel}, NewTombstones(rel, deleted))
}

// Appended layers insertions over a prior version's index: the gap set
// of rel = prior ∪ inserted is the pairwise intersection of the prior
// index's gaps with the gaps of a small index over just the inserted
// tuples.
type Appended struct {
	rel   *relation.Relation
	base  Index // over the prior version
	delta Index // over the inserted-tuples relation
}

// NewAppended builds the insert layer. rel must be the new snapshot,
// base an index over the prior version, delta an index over a relation
// holding exactly the inserted tuples (same schema); the inserted
// tuples must be disjoint from the prior version.
func NewAppended(rel *relation.Relation, base, delta Index) (*Appended, error) {
	if base.Relation().Arity() != rel.Arity() || delta.Relation().Arity() != rel.Arity() {
		return nil, fmt.Errorf("index: appended layer arity mismatch over %s", rel.Name())
	}
	return &Appended{rel: rel, base: base, delta: delta}, nil
}

// Relation implements Index.
func (a *Appended) Relation() *relation.Relation { return a.rel }

// Kind implements Index.
func (a *Appended) Kind() string {
	return "append(" + a.base.Kind() + "+" + a.delta.Kind() + ")"
}

// AllGaps implements Index: every non-empty pairwise meet of the two
// members' gap sets, deduplicated. Their union is comp(prior) ∩
// comp(inserted) = comp(rel), exactly.
func (a *Appended) AllGaps() []dyadic.Box {
	baseGaps := a.base.AllGaps()
	deltaGaps := a.delta.AllGaps()
	seen := boxtree.New(a.rel.Arity())
	var out []dyadic.Box
	for _, g := range baseGaps {
		for _, h := range deltaGaps {
			m, ok := g.Meet(h)
			if !ok {
				continue
			}
			if seen.Insert(m) {
				out = append(out, m)
			}
		}
	}
	return out
}

// appendedCursor intersects the two member probes. Both members return
// boxes containing the probe point, so per dimension the intervals are
// nested and every pairwise meet is non-empty and contains the point.
type appendedCursor struct {
	a          *Appended
	base       Cursor
	delta      Cursor
	arena      []dyadic.Interval // storage for result boxes, reused
	out        []dyadic.Box
	seen       *boxtree.Tree
	deltaBoxes []dyadic.Box // copy of the delta probe (its scratch dies on reuse)
}

// NewCursor implements Index.
func (a *Appended) NewCursor() Cursor {
	return &appendedCursor{
		a:     a,
		base:  a.base.NewCursor(),
		delta: a.delta.NewCursor(),
		seen:  boxtree.New(a.rel.Arity()),
	}
}

// GapsAt implements Cursor. Results are valid until the next call.
func (c *appendedCursor) GapsAt(point []uint64) []dyadic.Box {
	n := c.a.rel.Arity()
	c.out = c.out[:0]
	c.arena = c.arena[:0]
	// Probe the delta side first and copy its boxes into the arena: the
	// base probe below may share cursor scratch transitively (chained
	// layers probe the same underlying indexes), so the two result sets
	// must not alias.
	dg := c.delta.GapsAt(point)
	if len(dg) == 0 {
		return nil // point is an inserted tuple of rel
	}
	c.deltaBoxes = c.deltaBoxes[:0]
	for _, h := range dg {
		mark := len(c.arena)
		c.arena = append(c.arena, h...)
		c.deltaBoxes = append(c.deltaBoxes, dyadic.Box(c.arena[mark:mark+n]))
	}
	bg := c.base.GapsAt(point)
	if len(bg) == 0 {
		return nil // point is a prior tuple of rel
	}
	c.seen.Reset()
	for _, g := range bg {
		for _, h := range c.deltaBoxes {
			mark := len(c.arena)
			c.arena = append(c.arena, g...)
			m := dyadic.Box(c.arena[mark : mark+n])
			for d := range m {
				// Both intervals contain the probe value: the meet is the
				// deeper (longer-prefix) of the two.
				if h[d].Contains(m[d]) {
					continue
				}
				m[d] = h[d]
			}
			if c.seen.Insert(m) {
				c.out = append(c.out, m)
			} else {
				c.arena = c.arena[:mark]
			}
		}
	}
	return c.out
}

// LayerDepth reports how many delta layers an index stacks over its
// innermost full build: 0 for a directly built index, 1 + depth(base)
// for a layered one. Set.Derive uses it to cap chains.
func LayerDepth(ix Index) int {
	switch v := ix.(type) {
	case *Appended:
		return 1 + LayerDepth(v.base)
	case rebased:
		return LayerDepth(v.Index)
	case *Union:
		// A deleted layer is Union(rebase(base), tombstones); a plain
		// user-assembled Union of direct indexes reports 0.
		depth := 0
		for _, m := range v.indices {
			if d := LayerDepth(m); d > depth {
				depth = d
			}
		}
		if _, isLayer := v.indices[0].(rebased); isLayer {
			return 1 + depth
		}
		return depth
	default:
		return 0
	}
}
