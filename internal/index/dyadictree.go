package index

import (
	"fmt"

	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/relation"
)

// Dyadic is a dyadic-tree (quadtree-like) index: the attribute space is
// recursively halved, one attribute at a time in schema order, and every
// maximal tuple-free cell becomes a gap box. Unlike B-tree gaps, these
// boxes can be thick in several dimensions at once, which is what makes
// O(1)-size certificates possible on instances where every B-tree order
// needs Ω(N) boxes (Examples B.7/B.8, Figure 3b). The tree is immutable
// after construction; probe scratch lives in the cursors it hands out.
//
// The tree is a flat word arena rather than a pointer structure: one
// word per node, children named by uint32 slab indexes, laid out in
// preorder so a child's index always exceeds its parent's. Cell
// regions are not stored — they are reconstructed during descent from
// the probe point's bits (GapsAt) or a running prefix (AllGaps), and
// the split dimension is re-derived by the same least-refined-thick-
// dimension rule the builder used. This makes the arena
// position-independent: it serializes into a segment verbatim and
// loads back zero-copy.
type Dyadic struct {
	rel    *relation.Relation
	depths []uint8
	nodes  []uint64
}

// dyLeaf marks a leaf in the low child slot; the high slot then holds
// dyGap (tuple-free cell) or dySolid (completely full cell or a unit
// cell holding a tuple — no gaps inside either way).
const (
	dyLeaf  = 0xFFFFFFFF
	dySolid = 0
	dyGap   = 1
)

// NewDyadic builds the dyadic tree over the relation's current tuples.
func NewDyadic(rel *relation.Relation) *Dyadic {
	d := &Dyadic{rel: rel, depths: rel.Depths()}
	tuples := append([]relation.Tuple(nil), rel.Tuples()...)
	lens := make([]uint8, rel.Arity())
	d.build(tuples, lens)
	return d
}

// build appends the node for the cell described by lens (the per-
// dimension refinement of the current cell) and recursively subdivides;
// tuples is the subset of the relation inside the cell. Returns the
// node's slab index.
func (d *Dyadic) build(tuples []relation.Tuple, lens []uint8) uint32 {
	idx := uint32(len(d.nodes))
	d.nodes = append(d.nodes, 0)
	if len(tuples) == 0 {
		d.nodes[idx] = dyLeaf | dyGap<<32
		return idx
	}
	// A completely full cell contains no gaps; stop subdividing. (Tuples
	// are deduplicated, so count equality means fullness.)
	if lv := d.logVolume(lens); lv < 63 && uint64(len(tuples)) == 1<<uint(lv) {
		d.nodes[idx] = dyLeaf | dySolid<<32
		return idx
	}
	// Split the least-refined thick dimension, so dimensions alternate as
	// in a quadtree and gap cells can be thick in several dimensions.
	dim := d.splitDim(lens)
	if dim == -1 {
		d.nodes[idx] = dyLeaf | dySolid<<32 // unit cell holding a tuple
		return idx
	}
	// Partition tuples by the deciding bit of the split dimension.
	shift := d.depths[dim] - lens[dim] - 1
	lo, hi := 0, len(tuples)
	for lo < hi {
		if tuples[lo][dim]>>shift&1 == 0 {
			lo++
		} else {
			hi--
			tuples[lo], tuples[hi] = tuples[hi], tuples[lo]
		}
	}
	lens[dim]++
	c0 := d.build(tuples[:lo], lens)
	c1 := d.build(tuples[lo:], lens)
	lens[dim]--
	d.nodes[idx] = uint64(c0) | uint64(c1)<<32
	return idx
}

// logVolume is dyadic.Box.LogVolume for a cell known only by its
// per-dimension refinement lens.
func (d *Dyadic) logVolume(lens []uint8) int {
	lv := 0
	for i, l := range lens {
		lv += int(d.depths[i]) - int(l)
	}
	return lv
}

// splitDim picks the least-refined dimension that is still thick, -1
// if the cell is a unit cell. Must match what build used — descent
// re-derives it.
func (d *Dyadic) splitDim(lens []uint8) int {
	dim := -1
	for i := range lens {
		if lens[i] < d.depths[i] && (dim == -1 || lens[i] < lens[dim]) {
			dim = i
		}
	}
	return dim
}

// Relation implements Index.
func (d *Dyadic) Relation() *relation.Relation { return d.rel }

// Kind implements Index.
func (d *Dyadic) Kind() string { return "dyadic" }

// dyadicCursor holds the per-worker scratch: the descent refinement
// state and the one-element result slice. The returned box is scratch,
// valid until the next cursor call (the Cursor contract).
type dyadicCursor struct {
	ix     *Dyadic
	lens   []uint8
	gapBox dyadic.Box
	out    []dyadic.Box
}

// NewCursor implements Index.
func (d *Dyadic) NewCursor() Cursor {
	return &dyadicCursor{
		ix:     d,
		lens:   make([]uint8, d.rel.Arity()),
		gapBox: make(dyadic.Box, d.rel.Arity()),
		out:    make([]dyadic.Box, 1),
	}
}

// GapsAt implements Cursor: descend toward the probe point; the first
// tuple-free cell on the path is the unique maximal dyadic gap box
// containing the point. The cell region is rebuilt from the probe
// point's own bits while descending. The result slice is reused across
// calls.
func (c *dyadicCursor) GapsAt(point []uint64) []dyadic.Box {
	d := c.ix
	checkPoint(d.rel, point)
	lens := c.lens
	for i := range lens {
		lens[i] = 0
	}
	ni := uint32(0)
	for {
		w := d.nodes[ni]
		if uint32(w) == dyLeaf {
			if uint32(w>>32) == dySolid {
				return nil // full or unit cell: no gap at the point
			}
			for i := range c.gapBox {
				c.gapBox[i] = dyadic.Interval{Bits: point[i] >> (d.depths[i] - lens[i]), Len: lens[i]}
			}
			c.out[0] = c.gapBox
			return c.out
		}
		dim := d.splitDim(lens)
		bit := point[dim] >> (d.depths[dim] - lens[dim] - 1) & 1
		if bit == 0 {
			ni = uint32(w)
		} else {
			ni = uint32(w >> 32)
		}
		lens[dim]++
	}
}

// AllGaps implements Index: every tuple-free cell of the tree. Cell
// regions are reconstructed from the running bit-prefix of the DFS;
// the returned boxes are carved from one freshly allocated arena.
func (d *Dyadic) AllGaps() []dyadic.Box {
	n := d.rel.Arity()
	bits := make([]uint64, n)
	lens := make([]uint8, n)
	var out []dyadic.Box
	var arena []dyadic.Interval
	var walk func(ni uint32)
	walk = func(ni uint32) {
		w := d.nodes[ni]
		if uint32(w) == dyLeaf {
			if uint32(w>>32) == dyGap {
				start := len(arena)
				for i := 0; i < n; i++ {
					arena = append(arena, dyadic.Interval{Bits: bits[i], Len: lens[i]})
				}
				out = append(out, dyadic.Box(arena[start:start+n:start+n]))
			}
			return
		}
		dim := d.splitDim(lens)
		bits[dim] <<= 1
		lens[dim]++
		walk(uint32(w))
		bits[dim] |= 1
		walk(uint32(w >> 32))
		bits[dim] >>= 1
		lens[dim]--
	}
	if len(d.nodes) > 0 {
		walk(0)
	}
	return out
}

// AppendWords implements frozen serialization: the node arena is
// already position-independent, so the slab is a count word plus the
// nodes verbatim.
func (d *Dyadic) AppendWords(dst []uint64) []uint64 {
	dst = append(dst, uint64(len(d.nodes)))
	return append(dst, d.nodes...)
}

// DyadicFromWords rebuilds a Dyadic over rel from an AppendWords slab,
// validating the arena structurally (link ranges, preorder child
// ordering, leaf markers, full coverage) so descent over a corrupt
// slab is impossible rather than unbounded.
func DyadicFromWords(rel *relation.Relation, words []uint64) (*Dyadic, error) {
	if len(words) < 1 {
		return nil, fmt.Errorf("index: dyadic slab empty")
	}
	count := words[0]
	nodes := words[1:]
	if uint64(len(nodes)) != count || count == 0 {
		return nil, fmt.Errorf("index: dyadic slab has %d nodes, header says %d", len(nodes), count)
	}
	d := &Dyadic{rel: rel, depths: rel.Depths(), nodes: nodes}
	// Validate the reachable tree in one preorder walk. Links: child0
	// immediately follows the parent and child1 lands strictly between
	// its parent and count, so every descent is bounded and cannot loop.
	// Refinement: each split refines the cell by exactly one bit, so a
	// node's tree depth IS its total refinement — an internal node at
	// depth maxRef would split a unit cell (GapsAt would re-derive
	// dim == -1 and mis-descend), so that is the one depth bound to
	// check, and the lens vector never needs materializing. The slab has
	// a node per unit-cell split (O(n·d) of them), and recovery runs
	// this loop over every slab, so the body stays branch-light: one
	// word load, the link compares, and a packed right-subtree stack.
	maxRef := 0
	for _, dep := range d.depths {
		maxRef += int(dep)
	}
	// Each frame packs a pending child1 slot with a went-right bit.
	const wentRight = uint64(1) << 32
	stack := make([]uint64, 0, maxRef+1)
	for ni := uint32(0); ; {
		w := d.nodes[ni]
		if uint32(w) == dyLeaf {
			if k := uint32(w >> 32); k != dySolid && k != dyGap {
				return nil, fmt.Errorf("index: dyadic node %d has bad leaf kind %d", ni, k)
			}
			// Unwind to the deepest frame still owed its right subtree.
			for {
				if len(stack) == 0 {
					return d, nil
				}
				top := stack[len(stack)-1]
				if top&wentRight == 0 {
					stack[len(stack)-1] = top | wentRight
					ni = uint32(top)
					break
				}
				stack = stack[:len(stack)-1]
			}
			continue
		}
		c0, c1 := uint32(w), uint32(w>>32)
		if c0 != ni+1 || uint64(c1) >= count || c1 <= ni {
			return nil, fmt.Errorf("index: dyadic node %d has bad links (%d, %d)", ni, c0, c1)
		}
		if len(stack) >= maxRef {
			return nil, fmt.Errorf("index: dyadic node %d splits a unit cell", ni)
		}
		stack = append(stack, uint64(c1))
		ni = c0
	}
}
