package index

import (
	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/relation"
)

// Dyadic is a dyadic-tree (quadtree-like) index: the attribute space is
// recursively halved, one attribute at a time in schema order, and every
// maximal tuple-free cell becomes a gap box. Unlike B-tree gaps, these
// boxes can be thick in several dimensions at once, which is what makes
// O(1)-size certificates possible on instances where every B-tree order
// needs Ω(N) boxes (Examples B.7/B.8, Figure 3b). The tree is immutable
// after construction; probe scratch lives in the cursors it hands out.
type Dyadic struct {
	rel    *relation.Relation
	depths []uint8
	root   *dyNode
}

type dyNode struct {
	region   dyadic.Box
	gap      bool // tuple-free cell: a maximal gap box
	children [2]*dyNode
}

// NewDyadic builds the dyadic tree over the relation's current tuples.
func NewDyadic(rel *relation.Relation) *Dyadic {
	d := &Dyadic{rel: rel, depths: rel.Depths()}
	tuples := rel.Tuples()
	d.root = d.build(dyadic.Universe(rel.Arity()), tuples)
	return d
}

// build recursively subdivides region; tuples is the subset of the
// relation inside region.
func (d *Dyadic) build(region dyadic.Box, tuples []relation.Tuple) *dyNode {
	nd := &dyNode{region: region}
	if len(tuples) == 0 {
		nd.gap = true
		return nd
	}
	// A completely full cell contains no gaps; stop subdividing. (Tuples
	// are deduplicated, so count equality means fullness.)
	if lv := region.LogVolume(d.depths); lv < 63 && uint64(len(tuples)) == 1<<uint(lv) {
		return nd
	}
	// Split the least-refined thick dimension, so dimensions alternate as
	// in a quadtree and gap cells can be thick in several dimensions.
	dim := -1
	for i := range region {
		if region[i].Len < d.depths[i] && (dim == -1 || region[i].Len < region[dim].Len) {
			dim = i
		}
	}
	if dim == -1 {
		return nd // unit cell holding a tuple
	}
	r0, r1 := region.SplitAt(dim)
	// Partition tuples by the deciding bit of the split dimension.
	shift := d.depths[dim] - region[dim].Len - 1
	var t0, t1 []relation.Tuple
	for _, t := range tuples {
		if t[dim]>>shift&1 == 0 {
			t0 = append(t0, t)
		} else {
			t1 = append(t1, t)
		}
	}
	nd.children[0] = d.build(r0, t0)
	nd.children[1] = d.build(r1, t1)
	return nd
}

// Relation implements Index.
func (d *Dyadic) Relation() *relation.Relation { return d.rel }

// Kind implements Index.
func (d *Dyadic) Kind() string { return "dyadic" }

// dyadicCursor holds the per-worker one-element result slice; the
// returned box aliases the (immutable) tree node's region.
type dyadicCursor struct {
	ix  *Dyadic
	out []dyadic.Box
}

// NewCursor implements Index.
func (d *Dyadic) NewCursor() Cursor {
	return &dyadicCursor{ix: d, out: make([]dyadic.Box, 1)}
}

// GapsAt implements Cursor: descend toward the probe point; the first
// tuple-free cell on the path is the unique maximal dyadic gap box
// containing the point. The result slice is reused across calls.
func (c *dyadicCursor) GapsAt(point []uint64) []dyadic.Box {
	d := c.ix
	checkPoint(d.rel, point)
	nd := d.root
	for {
		if nd.gap {
			c.out[0] = nd.region
			return c.out
		}
		if nd.children[0] == nil {
			return nil // unit cell: the point is a tuple
		}
		if nd.children[0].region.ContainsPoint(point, d.depths) {
			nd = nd.children[0]
		} else {
			nd = nd.children[1]
		}
	}
}

// AllGaps implements Index: every tuple-free cell of the tree.
func (d *Dyadic) AllGaps() []dyadic.Box {
	var out []dyadic.Box
	var walk func(nd *dyNode)
	walk = func(nd *dyNode) {
		if nd == nil {
			return
		}
		if nd.gap {
			out = append(out, nd.region)
			return
		}
		walk(nd.children[0])
		walk(nd.children[1])
	}
	walk(d.root)
	return out
}
