package index

import (
	"fmt"
	"sort"

	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/relation"
)

// Sorted is a B-tree/trie index: the relation's tuples sorted in a chosen
// attribute order. Its gap boxes are the GAO-consistent boxes of
// Definition 3.11 — unit values on a leading run of attributes, one
// non-trivial dyadic interval, then wildcards — exactly the gaps a B-tree
// search discovers between adjacent keys (Figures 1b, 3a, 11, 12).
type Sorted struct {
	rel    *relation.Relation
	order  []int   // index attribute order: positions into the schema
	inv    []int   // inverse permutation: schema position -> index level
	depths []uint8 // depths in index order
	tuples []relation.Tuple
}

// NewSorted builds a sorted index using the given attribute-name order,
// which must be a permutation of the relation's attributes. An empty
// order means schema order.
func NewSorted(rel *relation.Relation, attrOrder ...string) (*Sorted, error) {
	k := rel.Arity()
	order := make([]int, 0, k)
	if len(attrOrder) == 0 {
		for i := 0; i < k; i++ {
			order = append(order, i)
		}
	} else {
		if len(attrOrder) != k {
			return nil, fmt.Errorf("index: sort order has %d attributes, relation %s has %d", len(attrOrder), rel.Name(), k)
		}
		for _, a := range attrOrder {
			j := rel.AttrIndex(a)
			if j < 0 {
				return nil, fmt.Errorf("index: relation %s has no attribute %s", rel.Name(), a)
			}
			order = append(order, j)
		}
	}
	tuples, err := rel.Reordered(order)
	if err != nil {
		return nil, err
	}
	inv := make([]int, k)
	depths := make([]uint8, k)
	for lvl, pos := range order {
		inv[pos] = lvl
		depths[lvl] = rel.Depths()[pos]
	}
	return &Sorted{rel: rel, order: order, inv: inv, depths: depths, tuples: tuples}, nil
}

// MustSorted is NewSorted that panics on error.
func MustSorted(rel *relation.Relation, attrOrder ...string) *Sorted {
	ix, err := NewSorted(rel, attrOrder...)
	if err != nil {
		panic(err)
	}
	return ix
}

// Relation implements Index.
func (s *Sorted) Relation() *relation.Relation { return s.rel }

// Kind implements Index.
func (s *Sorted) Kind() string {
	names := ""
	for i, pos := range s.order {
		if i > 0 {
			names += ","
		}
		names += s.rel.Attrs()[pos]
	}
	return "btree(" + names + ")"
}

// Order returns the index's attribute order as schema positions.
func (s *Sorted) Order() []int { return s.order }

// toIndexOrder permutes a schema-order point into index order.
func (s *Sorted) toIndexOrder(point []uint64) []uint64 {
	p := make([]uint64, len(point))
	for lvl, pos := range s.order {
		p[lvl] = point[pos]
	}
	return p
}

// toSchemaOrder permutes an index-order box back into schema order.
func (s *Sorted) toSchemaOrder(b dyadic.Box) dyadic.Box {
	out := make(dyadic.Box, len(b))
	for lvl, pos := range s.order {
		out[pos] = b[lvl]
	}
	return out
}

// GapsAt implements Index. Walking the trie view of the sorted tuples,
// the probe diverges from the stored keys at exactly one level; the gap
// between the neighbouring keys at that level yields the unique maximal
// GAO-consistent dyadic gap box containing the point.
func (s *Sorted) GapsAt(point []uint64) []dyadic.Box {
	checkPoint(s.rel, point)
	p := s.toIndexOrder(point)
	lo, hi := 0, len(s.tuples) // current key range matching the probe prefix
	for lvl := 0; lvl < len(p); lvl++ {
		v := p[lvl]
		// Range of tuples with value v at this level within [lo,hi).
		vLo := lo + sort.Search(hi-lo, func(i int) bool { return s.tuples[lo+i][lvl] >= v })
		vHi := lo + sort.Search(hi-lo, func(i int) bool { return s.tuples[lo+i][lvl] > v })
		if vLo < vHi {
			lo, hi = vLo, vHi
			continue
		}
		// v is absent: the gap spans (pred, succ) exclusive.
		gapLo := uint64(0)
		if vLo > lo {
			gapLo = s.tuples[vLo-1][lvl] + 1
		}
		gapHi := uint64(1)<<s.depths[lvl] - 1
		if vLo < hi {
			gapHi = s.tuples[vLo][lvl] - 1
		}
		iv, ok := dyadic.MaxDyadicIn(v, gapLo, gapHi, s.depths[lvl])
		if !ok {
			panic("index: sorted gap computation is inconsistent")
		}
		box := make(dyadic.Box, len(p))
		for j := 0; j < lvl; j++ {
			box[j] = dyadic.Unit(p[j], s.depths[j])
		}
		box[lvl] = iv
		return []dyadic.Box{s.toSchemaOrder(box)}
	}
	return nil // the probe point is a tuple
}

// AllGaps implements Index: the complete GAO-consistent gap set,
// enumerating per trie level the dyadic decomposition of every maximal
// run of absent values (Figure 1b rendered dyadically as in Figure 4b).
func (s *Sorted) AllGaps() []dyadic.Box {
	var out []dyadic.Box
	k := len(s.depths)
	prefix := make([]uint64, 0, k)
	var rec func(lo, hi, lvl int)
	rec = func(lo, hi, lvl int) {
		if lvl == k {
			return
		}
		// Distinct values at this level within [lo,hi).
		var values []uint64
		for i := lo; i < hi; {
			v := s.tuples[i][lvl]
			values = append(values, v)
			j := i + sort.Search(hi-i, func(x int) bool { return s.tuples[i+x][lvl] > v })
			i = j
		}
		for _, iv := range dyadic.CoverValues(values, s.depths[lvl]) {
			box := make(dyadic.Box, k)
			for j, u := range prefix {
				box[j] = dyadic.Unit(u, s.depths[j])
			}
			box[lvl] = iv
			out = append(out, s.toSchemaOrder(box))
		}
		// Recurse under each present value.
		for i := lo; i < hi; {
			v := s.tuples[i][lvl]
			j := i + sort.Search(hi-i, func(x int) bool { return s.tuples[i+x][lvl] > v })
			prefix = append(prefix, v)
			rec(i, j, lvl+1)
			prefix = prefix[:len(prefix)-1]
			i = j
		}
	}
	rec(0, len(s.tuples), 0)
	return out
}
