package index

import (
	"fmt"
	"sort"

	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/relation"
)

// Sorted is a B-tree/trie index: the relation's tuples sorted in a chosen
// attribute order. Its gap boxes are the GAO-consistent boxes of
// Definition 3.11 — unit values on a leading run of attributes, one
// non-trivial dyadic interval, then wildcards — exactly the gaps a B-tree
// search discovers between adjacent keys (Figures 1b, 3a, 11, 12).
// Sorted is immutable after construction; probe scratch lives in the
// cursors it hands out, so one index serves any number of workers.
type Sorted struct {
	rel    *relation.Relation
	order  []int   // index attribute order: positions into the schema
	inv    []int   // inverse permutation: schema position -> index level
	depths []uint8 // depths in index order
	tuples []relation.Tuple
}

// NewSorted builds a sorted index using the given attribute-name order,
// which must be a permutation of the relation's attributes. An empty
// order means schema order.
func NewSorted(rel *relation.Relation, attrOrder ...string) (*Sorted, error) {
	k := rel.Arity()
	order := make([]int, 0, k)
	if len(attrOrder) == 0 {
		for i := 0; i < k; i++ {
			order = append(order, i)
		}
	} else {
		if len(attrOrder) != k {
			return nil, fmt.Errorf("index: sort order has %d attributes, relation %s has %d", len(attrOrder), rel.Name(), k)
		}
		for _, a := range attrOrder {
			j := rel.AttrIndex(a)
			if j < 0 {
				return nil, fmt.Errorf("index: relation %s has no attribute %s", rel.Name(), a)
			}
			order = append(order, j)
		}
	}
	tuples, err := rel.Reordered(order)
	if err != nil {
		return nil, err
	}
	inv := make([]int, k)
	depths := make([]uint8, k)
	for lvl, pos := range order {
		inv[pos] = lvl
		depths[lvl] = rel.Depths()[pos]
	}
	return &Sorted{rel: rel, order: order, inv: inv, depths: depths, tuples: tuples}, nil
}

// MustSorted is NewSorted that panics on error.
func MustSorted(rel *relation.Relation, attrOrder ...string) *Sorted {
	ix, err := NewSorted(rel, attrOrder...)
	if err != nil {
		panic(err)
	}
	return ix
}

// Relation implements Index.
func (s *Sorted) Relation() *relation.Relation { return s.rel }

// Kind implements Index.
func (s *Sorted) Kind() string {
	names := ""
	for i, pos := range s.order {
		if i > 0 {
			names += ","
		}
		names += s.rel.Attrs()[pos]
	}
	return "btree(" + names + ")"
}

// Order returns the index's attribute order as schema positions.
func (s *Sorted) Order() []int { return s.order }

// searchLevel returns the subrange of [lo,hi) whose tuples hold value v at
// the given level. Hand-rolled binary searches keep the per-probe cost
// free of the closure allocations sort.Search would introduce.
func (s *Sorted) searchLevel(lo, hi, lvl int, v uint64) (int, int) {
	vLo, r := lo, hi
	for vLo < r {
		m := int(uint(vLo+r) >> 1)
		if s.tuples[m][lvl] < v {
			vLo = m + 1
		} else {
			r = m
		}
	}
	vHi, r := vLo, hi
	for vHi < r {
		m := int(uint(vHi+r) >> 1)
		if s.tuples[m][lvl] <= v {
			vHi = m + 1
		} else {
			r = m
		}
	}
	return vLo, vHi
}

// sortedCursor carries the per-worker probe scratch: the probe in index
// order, the gap box (in schema order) and the one-element result slice.
type sortedCursor struct {
	ix     *Sorted
	probe  []uint64
	gapBox dyadic.Box
	out    []dyadic.Box
}

// NewCursor implements Index.
func (s *Sorted) NewCursor() Cursor {
	k := len(s.depths)
	return &sortedCursor{
		ix:     s,
		probe:  make([]uint64, k),
		gapBox: make(dyadic.Box, k),
		out:    make([]dyadic.Box, 1),
	}
}

// GapsAt implements Cursor. Walking the trie view of the sorted tuples,
// the probe diverges from the stored keys at exactly one level; the gap
// between the neighbouring keys at that level yields the unique maximal
// GAO-consistent dyadic gap box containing the point. The result is
// valid until the next call.
func (c *sortedCursor) GapsAt(point []uint64) []dyadic.Box {
	s := c.ix
	checkPoint(s.rel, point)
	p := c.probe
	for lvl, pos := range s.order {
		p[lvl] = point[pos]
	}
	lo, hi := 0, len(s.tuples) // current key range matching the probe prefix
	for lvl := 0; lvl < len(p); lvl++ {
		v := p[lvl]
		vLo, vHi := s.searchLevel(lo, hi, lvl, v)
		if vLo < vHi {
			lo, hi = vLo, vHi
			continue
		}
		// v is absent: the gap spans (pred, succ) exclusive.
		gapLo := uint64(0)
		if vLo > lo {
			gapLo = s.tuples[vLo-1][lvl] + 1
		}
		gapHi := uint64(1)<<s.depths[lvl] - 1
		if vLo < hi {
			gapHi = s.tuples[vLo][lvl] - 1
		}
		iv, ok := dyadic.MaxDyadicIn(v, gapLo, gapHi, s.depths[lvl])
		if !ok {
			panic("index: sorted gap computation is inconsistent")
		}
		// Compose the gap box directly in schema order in the scratch box.
		box := c.gapBox
		for i := range box {
			box[i] = dyadic.Lambda
		}
		for j := 0; j < lvl; j++ {
			box[s.order[j]] = dyadic.Unit(p[j], s.depths[j])
		}
		box[s.order[lvl]] = iv
		c.out[0] = box
		return c.out
	}
	return nil // the probe point is a tuple
}

// AllGaps implements Index: the complete GAO-consistent gap set,
// enumerating per trie level the dyadic decomposition of every maximal
// run of absent values (Figure 1b rendered dyadically as in Figure 4b).
// The boxes are carved from one flat arena (composed directly in schema
// order), so the whole enumeration costs O(log) allocations beyond the
// per-level value scratch.
func (s *Sorted) AllGaps() []dyadic.Box {
	var out []dyadic.Box
	var arena []dyadic.Interval
	k := len(s.depths)
	prefix := make([]uint64, 0, k)
	levelVals := make([][]uint64, k) // per-level distinct-value scratch
	var rec func(lo, hi, lvl int)
	rec = func(lo, hi, lvl int) {
		if lvl == k {
			return
		}
		// Distinct values at this level within [lo,hi).
		values := levelVals[lvl][:0]
		for i := lo; i < hi; {
			v := s.tuples[i][lvl]
			values = append(values, v)
			i += sort.Search(hi-i, func(x int) bool { return s.tuples[i+x][lvl] > v })
		}
		levelVals[lvl] = values
		for _, iv := range dyadic.CoverValues(values, s.depths[lvl]) {
			mark := len(arena)
			arena = dyadic.AppendLambdas(arena, k)
			box := dyadic.Box(arena[mark : mark+k])
			for j, u := range prefix {
				box[s.order[j]] = dyadic.Unit(u, s.depths[j])
			}
			box[s.order[lvl]] = iv
			out = append(out, box)
		}
		// Recurse under each present value.
		for i := lo; i < hi; {
			v := s.tuples[i][lvl]
			j := i + sort.Search(hi-i, func(x int) bool { return s.tuples[i+x][lvl] > v })
			prefix = append(prefix, v)
			rec(i, j, lvl+1)
			prefix = prefix[:len(prefix)-1]
			i = j
		}
	}
	rec(0, len(s.tuples), 0)
	return out
}
