package index

import (
	"math/rand"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"

	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/relation"
)

func frozenRandomRelation(t *testing.T, rng *rand.Rand, name string, arity, depth, n int) *relation.Relation {
	t.Helper()
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = string(rune('A' + i))
	}
	rel := relation.MustNewUniform(name, attrs, uint8(depth))
	for i := 0; i < n; i++ {
		vals := make([]uint64, arity)
		for j := range vals {
			vals[j] = rng.Uint64() & (1<<depth - 1)
		}
		rel.MustInsert(vals...)
	}
	return rel
}

func gapKeys(boxes []dyadic.Box) []string {
	keys := make([]string, len(boxes))
	for i, b := range boxes {
		keys[i] = b.Key()
	}
	sort.Strings(keys)
	return keys
}

// TestFreezeLoadDifferential freezes and reloads every family and
// checks the loaded index is observationally identical to the built
// one: same AllGaps set, same GapsAt answer on a probe sweep.
func TestFreezeLoadDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		arity := 2 + rng.Intn(2)
		depth := 3 + rng.Intn(4)
		n := rng.Intn(60)
		rel := frozenRandomRelation(t, rng, "R", arity, depth, n)
		specs := []Spec{BTreeSpec(), DyadicSpec(), KDTreeSpec()}
		if arity == 3 {
			specs = append(specs, BTreeSpec("C", "A", "B"))
		}
		for _, spec := range specs {
			built, err := spec.Build(rel)
			if err != nil {
				t.Fatal(err)
			}
			words, ok := FreezeIndex(built)
			if !ok {
				t.Fatalf("FreezeIndex(%s) not freezable", spec.Key())
			}
			loaded, err := LoadIndex(rel, spec, words)
			if err != nil {
				t.Fatalf("LoadIndex(%s): %v", spec.Key(), err)
			}
			if loaded.Kind() != built.Kind() {
				t.Fatalf("kind %q != %q", loaded.Kind(), built.Kind())
			}
			if !reflect.DeepEqual(gapKeys(built.AllGaps()), gapKeys(loaded.AllGaps())) {
				t.Fatalf("trial %d %s: AllGaps diverges after freeze/load", trial, spec.Key())
			}
			cb, cl := built.NewCursor(), loaded.NewCursor()
			point := make([]uint64, arity)
			for probe := 0; probe < 200; probe++ {
				for j := range point {
					point[j] = rng.Uint64() & (1<<depth - 1)
				}
				gb := append([]dyadic.Box(nil), cb.GapsAt(point)...)
				gl := cl.GapsAt(point)
				if len(gb) != len(gl) {
					t.Fatalf("trial %d %s: GapsAt(%v) count %d != %d", trial, spec.Key(), point, len(gb), len(gl))
				}
				for i := range gb {
					if !gb[i].Equal(gl[i]) {
						t.Fatalf("trial %d %s: GapsAt(%v) box %v != %v", trial, spec.Key(), point, gb[i], gl[i])
					}
				}
			}
		}
	}
}

// TestFreezeUnwrapsRebased: a rebased wrapper (same tuple set, new
// snapshot pointer) freezes to its inner flat index.
func TestFreezeUnwrapsRebased(t *testing.T) {
	rel := relation.MustNewUniform("R", []string{"A", "B"}, 4)
	rel.MustInsert(1, 2)
	rel.MustInsert(3, 4)
	ix := MustSorted(rel)
	next := rel.Clone("R")
	wrapped := rebased{Index: ix, rel: next}
	words, ok := FreezeIndex(wrapped)
	if !ok {
		t.Fatal("rebased index not freezable")
	}
	if _, err := SortedFromWords(next, words); err != nil {
		t.Fatalf("load of rebased freeze: %v", err)
	}
}

// TestFreezeRejectsLayered: delta-layered indexes report not-freezable
// so the durable layer knows to freeze a fresh build.
func TestFreezeRejectsLayered(t *testing.T) {
	rel := relation.MustNewUniform("R", []string{"A", "B"}, 4)
	rel.MustInsert(1, 2)
	next, err := rel.WithInserted(relation.Tuple{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	base := MustSorted(rel)
	deltaRel := relation.MustNewUniform("R+d", []string{"A", "B"}, 4)
	deltaRel.MustInsert(3, 4)
	layered, err := NewAppended(next, base, MustSorted(deltaRel))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := FreezeIndex(layered); ok {
		t.Fatal("layered index claimed to be freezable")
	}
}

// TestSetPut: Put registers under the canonical key without charging
// the build counter; a later Get finds the loaded index.
func TestSetPut(t *testing.T) {
	rel := relation.MustNewUniform("R", []string{"A", "B"}, 4)
	rel.MustInsert(2, 3)
	var builds atomic.Int64
	s := NewSet(rel, &builds)

	ix := MustSorted(rel) // schema order
	if err := s.Put(BTreeSpec(), ix); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 0 {
		t.Fatalf("Put charged the build counter: %d", builds.Load())
	}
	// Get by explicit schema-order names must hit the canonical slot.
	got, built, err := s.Get(BTreeSpec("A", "B"))
	if err != nil {
		t.Fatal(err)
	}
	if built || got != Index(ix) {
		t.Fatalf("Get after Put rebuilt (built=%v)", built)
	}
	if builds.Load() != 0 {
		t.Fatalf("Get after Put charged the counter: %d", builds.Load())
	}

	other := relation.MustNewUniform("S", []string{"A", "B"}, 4)
	if err := s.Put(BTreeSpec(), MustSorted(other)); err == nil {
		t.Fatal("Put accepted an index over a different relation")
	}
}

// TestLoadRejectsCorruptSlabs flips words in frozen slabs and checks
// every mutation is rejected (or at minimum never accepted silently as
// a different valid index — here all mutations must error because the
// formats are fully validated).
func TestLoadRejectsCorruptSlabs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rel := frozenRandomRelation(t, rng, "R", 2, 5, 40)
	for _, spec := range []Spec{BTreeSpec(), DyadicSpec(), KDTreeSpec()} {
		built, err := spec.Build(rel)
		if err != nil {
			t.Fatal(err)
		}
		clean, _ := FreezeIndex(built)
		if _, err := LoadIndex(rel, spec, clean); err != nil {
			t.Fatalf("clean %s slab rejected: %v", spec.Key(), err)
		}
		rejected := 0
		for trial := 0; trial < 200; trial++ {
			words := append([]uint64(nil), clean...)
			switch rng.Intn(3) {
			case 0:
				words = words[:rng.Intn(len(words))]
			case 1:
				words[rng.Intn(len(words))] ^= 1 << uint(rng.Intn(64))
			case 2:
				words[rng.Intn(len(words))] = rng.Uint64()
			}
			if _, err := LoadIndex(rel, spec, words); err != nil {
				rejected++
			}
		}
		// Some single-bit flips hit semantically-irrelevant words (e.g.
		// a value flip that keeps ordering); require the vast majority
		// rejected, and all truncations.
		if rejected < 100 {
			t.Fatalf("%s: only %d/200 corruptions rejected", spec.Key(), rejected)
		}
	}
}
