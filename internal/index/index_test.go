package index

import (
	"math/rand"
	"sort"
	"testing"

	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/relation"
)

// figure1Relation is R(A,B) = {3}×{1,3,5,7} ∪ {1,3,5,7}×{3} at depth 3
// (Figure 1a of the paper).
func figure1Relation(t *testing.T) *relation.Relation {
	t.Helper()
	r := relation.MustNewUniform("R", []string{"A", "B"}, 3)
	for _, b := range []uint64{1, 3, 5, 7} {
		r.MustInsert(3, b)
		r.MustInsert(b, 3)
	}
	return r
}

// checkGapInvariants verifies, by brute force over the whole (small)
// domain, the defining properties of an index's gap boxes:
//  1. no gap box contains a tuple of the relation;
//  2. the union of AllGaps is exactly the complement of the relation;
//  3. GapsAt(p) is empty iff p is a tuple, and every returned box
//     contains p.
func checkGapInvariants(t *testing.T, ix Index) {
	t.Helper()
	rel := ix.Relation()
	depths := rel.Depths()
	cur := ix.NewCursor()
	all := ix.AllGaps()
	for _, g := range all {
		if err := g.Check(depths); err != nil {
			t.Fatalf("%s: invalid gap box %v: %v", ix.Kind(), g, err)
		}
	}
	point := make([]uint64, rel.Arity())
	var rec func(dim int)
	rec = func(dim int) {
		if dim == rel.Arity() {
			isTuple := rel.Contains(point...)
			covered := false
			for _, g := range all {
				if g.ContainsPoint(point, depths) {
					covered = true
					if isTuple {
						t.Fatalf("%s: gap box %v contains tuple %v", ix.Kind(), g, point)
					}
				}
			}
			if !isTuple && !covered {
				t.Fatalf("%s: non-tuple %v not covered by AllGaps", ix.Kind(), point)
			}
			gaps := cur.GapsAt(point)
			if isTuple && len(gaps) != 0 {
				t.Fatalf("%s: GapsAt(tuple %v) = %v", ix.Kind(), point, gaps)
			}
			if !isTuple && len(gaps) == 0 {
				t.Fatalf("%s: GapsAt(non-tuple %v) is empty", ix.Kind(), point)
			}
			for _, g := range gaps {
				if !g.ContainsPoint(point, depths) {
					t.Fatalf("%s: GapsAt(%v) returned %v not containing the point", ix.Kind(), point, g)
				}
				if err := g.Check(depths); err != nil {
					t.Fatalf("%s: GapsAt returned invalid box: %v", ix.Kind(), err)
				}
				// Gap boxes must be tuple-free.
				for _, tup := range rel.Tuples() {
					if g.ContainsPoint(tup, depths) {
						t.Fatalf("%s: GapsAt(%v) box %v contains tuple %v", ix.Kind(), point, g, tup)
					}
				}
			}
			return
		}
		for v := uint64(0); v < 1<<depths[dim]; v++ {
			point[dim] = v
			rec(dim + 1)
		}
	}
	rec(0)
}

func TestSortedFigure1(t *testing.T) {
	r := figure1Relation(t)
	for _, order := range [][]string{{"A", "B"}, {"B", "A"}} {
		ix := MustSorted(r, order...)
		checkGapInvariants(t, ix)
	}
}

func TestSortedFigure4SingleTuple(t *testing.T) {
	// Figure 4: R(A,B) with the single tuple (0,3) over a 2-bit domain.
	// The (A,B)-ordered dyadic gaps are ⟨01,λ⟩, ⟨1,λ⟩, ⟨00,0⟩, ⟨00,10⟩.
	r := relation.MustNewUniform("R", []string{"A", "B"}, 2)
	r.MustInsert(0, 3)
	ix := MustSorted(r, "A", "B")
	got := ix.AllGaps()
	want := map[string]bool{
		"⟨01,λ⟩": true, "⟨1,λ⟩": true, "⟨00,0⟩": true, "⟨00,10⟩": true,
	}
	if len(got) != len(want) {
		t.Fatalf("AllGaps = %v", got)
	}
	for _, g := range got {
		if !want[g.String()] {
			t.Errorf("unexpected gap box %v", g)
		}
	}
	checkGapInvariants(t, ix)
}

func TestSortedGapsAtFindsMaximalBox(t *testing.T) {
	r := figure1Relation(t)
	cur := MustSorted(r, "A", "B").NewCursor()
	// Probe (0, y): A=0 is absent; the A-gap is exactly {0} = ⟨000⟩.
	gaps := cur.GapsAt([]uint64{0, 5})
	if len(gaps) != 1 || gaps[0].String() != "⟨000,λ⟩" {
		t.Errorf("GapsAt(0,5) = %v, want [⟨000,λ⟩]", gaps)
	}
	// Probe (3, 0): A=3 present, B=0 in the gap below 1: ⟨011,000⟩.
	gaps = cur.GapsAt([]uint64{3, 0})
	if len(gaps) != 1 || gaps[0].String() != "⟨011,000⟩" {
		t.Errorf("GapsAt(3,0) = %v", gaps)
	}
	// Probe (3, 4): B=4 between 3 and 5 -> unit gap ⟨011,100⟩.
	gaps = cur.GapsAt([]uint64{3, 4})
	if len(gaps) != 1 || gaps[0].String() != "⟨011,100⟩" {
		t.Errorf("GapsAt(3,4) = %v", gaps)
	}
	// Tuple probes return nothing.
	if gaps := cur.GapsAt([]uint64{3, 3}); len(gaps) != 0 {
		t.Errorf("GapsAt(tuple) = %v", gaps)
	}
}

func TestSortedOrderValidation(t *testing.T) {
	r := figure1Relation(t)
	if _, err := NewSorted(r, "A"); err == nil {
		t.Error("short order accepted")
	}
	if _, err := NewSorted(r, "A", "Z"); err == nil {
		t.Error("unknown attribute accepted")
	}
	ix, err := NewSorted(r)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Kind() != "btree(A,B)" {
		t.Errorf("Kind = %s", ix.Kind())
	}
}

func TestDyadicFigure5MSBRelation(t *testing.T) {
	// R(A,B) = {(a,b) : msb(a) ≠ msb(b)}: the dyadic index finds exactly
	// the two big gap boxes ⟨0,0⟩ and ⟨1,1⟩ no matter the depth — the
	// boxes of Figure 5a that a B-tree would shatter into ~2^d pieces.
	for _, d := range []uint8{1, 2, 3, 4} {
		r := relation.MustNewUniform("R", []string{"A", "B"}, d)
		half := uint64(1) << (d - 1)
		for a := uint64(0); a < half; a++ {
			for b := uint64(0); b < half; b++ {
				r.MustInsert(a, half+b)
				r.MustInsert(half+a, b)
			}
		}
		ix := NewDyadic(r)
		got := ix.AllGaps()
		if len(got) != 2 {
			t.Fatalf("d=%d: AllGaps = %v, want exactly ⟨0,0⟩ and ⟨1,1⟩", d, got)
		}
		seen := map[string]bool{}
		for _, g := range got {
			seen[g.String()] = true
		}
		if !seen["⟨0,0⟩"] || !seen["⟨1,1⟩"] {
			t.Errorf("d=%d: AllGaps = %v", d, got)
		}
		if d <= 3 {
			checkGapInvariants(t, ix)
		}
	}
}

func TestDyadicVsBTreeGapCount(t *testing.T) {
	// Footnote 9: one dyadic gap box corresponds to ~2^{d-1} B-tree gap
	// boxes on the MSB-complement relation.
	const d = 4
	r := relation.MustNewUniform("R", []string{"A", "B"}, d)
	half := uint64(1) << (d - 1)
	for a := uint64(0); a < half; a++ {
		for b := uint64(0); b < half; b++ {
			r.MustInsert(a, half+b)
			r.MustInsert(half+a, b)
		}
	}
	dyCount := len(NewDyadic(r).AllGaps())
	btCount := len(MustSorted(r, "A", "B").AllGaps())
	if dyCount != 2 {
		t.Errorf("dyadic gaps = %d", dyCount)
	}
	if btCount < int(half) {
		t.Errorf("btree gaps = %d, expected at least %d", btCount, half)
	}
}

func TestKDTreeInvariants(t *testing.T) {
	r := figure1Relation(t)
	ix := NewKDTree(r)
	if ix.Kind() != "kdtree" {
		t.Errorf("Kind = %s", ix.Kind())
	}
	checkGapInvariants(t, ix)
}

func TestKDTreeSingleTupleAndEmpty(t *testing.T) {
	empty := relation.MustNewUniform("E", []string{"A", "B"}, 3)
	ix := NewKDTree(empty)
	checkGapInvariants(t, ix)
	single := relation.MustNewUniform("S", []string{"A", "B"}, 3)
	single.MustInsert(0, 0)
	checkGapInvariants(t, NewKDTree(single))
	corner := relation.MustNewUniform("C", []string{"A", "B"}, 3)
	corner.MustInsert(7, 7)
	checkGapInvariants(t, NewKDTree(corner))
}

func TestRandomRelationsAllIndexTypes(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		arity := 1 + r.Intn(3)
		d := uint8(2 + r.Intn(2))
		attrs := []string{"A", "B", "C"}[:arity]
		rel := relation.MustNewUniform("R", attrs, d)
		n := r.Intn(20)
		for i := 0; i < n; i++ {
			vals := make([]uint64, arity)
			for j := range vals {
				vals[j] = uint64(r.Intn(1 << d))
			}
			rel.MustInsert(vals...)
		}
		checkGapInvariants(t, MustSorted(rel))
		checkGapInvariants(t, NewDyadic(rel))
		checkGapInvariants(t, NewKDTree(rel))
		if arity >= 2 {
			rev := make([]string, arity)
			for i := range rev {
				rev[i] = attrs[arity-1-i]
			}
			checkGapInvariants(t, MustSorted(rel, rev...))
		}
	}
}

func TestUnionIndex(t *testing.T) {
	r := figure1Relation(t)
	ab := MustSorted(r, "A", "B")
	ba := MustSorted(r, "B", "A")
	dy := NewDyadic(r)
	u, err := NewUnion(ab, ba, dy)
	if err != nil {
		t.Fatal(err)
	}
	checkGapInvariants(t, u)
	if u.Kind() != "union(btree(A,B),btree(B,A),dyadic)" {
		t.Errorf("Kind = %s", u.Kind())
	}
	// The union has at least as many boxes as each member (after dedup),
	// and GapsAt merges contributions.
	gaps := u.NewCursor().GapsAt([]uint64{0, 0})
	if len(gaps) < 2 {
		t.Errorf("union GapsAt returned %v", gaps)
	}
	if _, err := NewUnion(); err == nil {
		t.Error("empty union accepted")
	}
	other := relation.MustNewUniform("S", []string{"A", "B"}, 3)
	if _, err := NewUnion(ab, MustSorted(other)); err == nil {
		t.Error("union across relations accepted")
	}
}

func TestUnionDedupes(t *testing.T) {
	r := figure1Relation(t)
	ab1 := MustSorted(r, "A", "B")
	ab2 := MustSorted(r, "A", "B")
	u, err := NewUnion(ab1, ab2)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.AllGaps()) != len(ab1.AllGaps()) {
		t.Errorf("duplicate indices not deduplicated: %d vs %d", len(u.AllGaps()), len(ab1.AllGaps()))
	}
}

func TestGapsAtPanicsOnBadProbe(t *testing.T) {
	r := figure1Relation(t)
	cur := MustSorted(r).NewCursor()
	for name, probe := range map[string][]uint64{
		"arity":  {1},
		"domain": {8, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: bad probe accepted", name)
				}
			}()
			cur.GapsAt(probe)
		}()
	}
}

func TestSortedGAOConsistency(t *testing.T) {
	// Definition 3.11: every gap box of a sorted index has at most one
	// non-trivial (non-λ, non-unit) component, and everything after it in
	// index order is λ.
	r := figure1Relation(t)
	ix := MustSorted(r, "B", "A")
	depths := r.Depths()
	for _, g := range ix.AllGaps() {
		nonTrivial := -1
		for lvl, pos := range ix.Order() {
			iv := g[pos]
			switch {
			case iv.IsLambda():
				// fine anywhere
			case iv.IsUnit(depths[pos]):
				if nonTrivial != -1 {
					t.Fatalf("box %v has unit after non-trivial component", g)
				}
			default:
				if nonTrivial != -1 {
					t.Fatalf("box %v has two non-trivial components", g)
				}
				nonTrivial = lvl
			}
			if nonTrivial != -1 && lvl > nonTrivial && !iv.IsLambda() {
				t.Fatalf("box %v not λ after its non-trivial component", g)
			}
		}
	}
}

func sortBoxes(bs []dyadic.Box) {
	sort.Slice(bs, func(i, j int) bool { return bs[i].Key() < bs[j].Key() })
}

func TestAllGapsDeterministic(t *testing.T) {
	r := figure1Relation(t)
	a := MustSorted(r, "A", "B").AllGaps()
	b := MustSorted(r, "A", "B").AllGaps()
	sortBoxes(a)
	sortBoxes(b)
	if len(a) != len(b) {
		t.Fatal("AllGaps not deterministic")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("AllGaps not deterministic")
		}
	}
}
