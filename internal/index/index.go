// Package index implements the database indices of the Tetris paper as
// gap box generators. The paper's central abstraction (Section 3.2,
// Appendix B) is that every index over a relation R is a collection B(R)
// of dyadic gap boxes — regions of R's attribute space certified to
// contain no tuple — together with an Õ(1)-time oracle returning the
// maximal gap boxes containing a probe point.
//
// Four index families are provided:
//
//   - Sorted: a B-tree/trie in a chosen attribute order; its gaps are the
//     GAO-consistent boxes of Definition 3.11 (Figures 1b, 3a, 12).
//   - Dyadic: a dyadic tree (quadtree-like) subdivision; its gaps are the
//     large multidimensional boxes of Figure 3b that B-trees cannot
//     produce (Example B.8).
//   - KDTree: median-split cells whose empty space is decomposed into
//     dyadic boxes ("multidimensional index structures like KD-trees").
//   - Union: several indices over the same relation pooled together
//     (Section B.2: multiple indices per relation).
package index

import (
	"fmt"

	"tetrisjoin/internal/boxtree"
	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/relation"
)

// Index is a gap box generator over a relation's own attribute space.
// Boxes and probe points use the relation's schema order.
type Index interface {
	// Relation returns the indexed relation.
	Relation() *relation.Relation
	// Kind describes the index family and parameters, e.g. "btree(B,A)".
	Kind() string
	// GapsAt returns maximal dyadic gap boxes containing the probe point.
	// The result is empty exactly when the point is a tuple of the
	// relation (no gap can contain it). Implementations may reuse the
	// returned slice and box storage: the result is valid only until the
	// next GapsAt call on the same index.
	GapsAt(point []uint64) []dyadic.Box
	// AllGaps enumerates the index's complete gap box set; their union is
	// exactly the complement of the relation within its attribute space.
	// The result is caller-owned and stays valid.
	AllGaps() []dyadic.Box
}

// Union pools several indices over the same relation; its gap set is the
// union of theirs. This realizes the paper's multiple-indices-per-
// relation setting, under which box certificates can be far smaller than
// under any single index (Proposition B.6).
type Union struct {
	rel     *relation.Relation
	indices []Index

	out  []dyadic.Box  // GapsAt result buffer, reused
	seen *boxtree.Tree // per-call dedup set, Reset each probe
}

// NewUnion combines indices over a common relation.
func NewUnion(indices ...Index) (*Union, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("index: Union needs at least one index")
	}
	rel := indices[0].Relation()
	for _, ix := range indices[1:] {
		if ix.Relation() != rel {
			return nil, fmt.Errorf("index: Union indices cover different relations")
		}
	}
	return &Union{rel: rel, indices: indices, seen: boxtree.New(rel.Arity())}, nil
}

// Relation implements Index.
func (u *Union) Relation() *relation.Relation { return u.rel }

// Kind implements Index.
func (u *Union) Kind() string {
	s := "union("
	for i, ix := range u.indices {
		if i > 0 {
			s += ","
		}
		s += ix.Kind()
	}
	return s + ")"
}

// GapsAt implements Index, deduplicating boxes contributed by several
// member indices. The result (whose boxes may alias member scratch) is
// valid until the next call.
func (u *Union) GapsAt(point []uint64) []dyadic.Box {
	u.out = u.out[:0]
	u.seen.Reset()
	for _, ix := range u.indices {
		for _, b := range ix.GapsAt(point) {
			if u.seen.Insert(b) {
				u.out = append(u.out, b)
			}
		}
	}
	return u.out
}

// AllGaps implements Index.
func (u *Union) AllGaps() []dyadic.Box {
	var out []dyadic.Box
	seen := boxtree.New(u.rel.Arity())
	for _, ix := range u.indices {
		for _, b := range ix.AllGaps() {
			if seen.Insert(b) {
				out = append(out, b)
			}
		}
	}
	return out
}

func checkPoint(rel *relation.Relation, point []uint64) {
	if len(point) != rel.Arity() {
		panic(fmt.Sprintf("index: probe point arity %d, relation %s has %d", len(point), rel.Name(), rel.Arity()))
	}
	for i, v := range point {
		d := rel.Depths()[i]
		if d < 64 && v >= 1<<d {
			panic(fmt.Sprintf("index: probe value %d out of domain of %s attribute %d", v, rel.Name(), i))
		}
	}
}
