// Package index implements the database indices of the Tetris paper as
// gap box generators. The paper's central abstraction (Section 3.2,
// Appendix B) is that every index over a relation R is a collection B(R)
// of dyadic gap boxes — regions of R's attribute space certified to
// contain no tuple — together with an Õ(1)-time oracle returning the
// maximal gap boxes containing a probe point.
//
// Four index families are provided:
//
//   - Sorted: a B-tree/trie in a chosen attribute order; its gaps are the
//     GAO-consistent boxes of Definition 3.11 (Figures 1b, 3a, 12).
//   - Dyadic: a dyadic tree (quadtree-like) subdivision; its gaps are the
//     large multidimensional boxes of Figure 3b that B-trees cannot
//     produce (Example B.8).
//   - KDTree: median-split cells whose empty space is decomposed into
//     dyadic boxes ("multidimensional index structures like KD-trees").
//   - Union: several indices over the same relation pooled together
//     (Section B.2: multiple indices per relation).
//
// # Concurrency model
//
// An Index is immutable once built: every method on it only reads the
// structure, so one index can be shared by any number of goroutines.
// The probe scratch that makes GapsAt allocation-free lives in a Cursor,
// obtained per worker via NewCursor: cursors over the same index are
// independent, and each cursor must be confined to one goroutine at a
// time. AllGaps allocates fresh storage per call and is likewise safe to
// call concurrently.
package index

import (
	"fmt"

	"tetrisjoin/internal/boxtree"
	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/relation"
)

// Index is a gap box generator over a relation's own attribute space.
// Boxes and probe points use the relation's schema order. Indices are
// immutable after construction and safe for concurrent use; per-worker
// probe state lives in Cursors.
type Index interface {
	// Relation returns the indexed relation.
	Relation() *relation.Relation
	// Kind describes the index family and parameters, e.g. "btree(B,A)".
	Kind() string
	// NewCursor returns a fresh prober over the index. Each cursor owns
	// its probe scratch: use one cursor per worker goroutine.
	NewCursor() Cursor
	// AllGaps enumerates the index's complete gap box set; their union is
	// exactly the complement of the relation within its attribute space.
	// The result is caller-owned, stays valid, and the call is safe to
	// make concurrently (it only reads the index).
	AllGaps() []dyadic.Box
}

// Cursor probes an index for the gap boxes around a point. A cursor owns
// the mutable scratch of the probe path (the index itself stays
// read-only), so cursors over a shared index may run in parallel while a
// single cursor must not be used from two goroutines at once.
type Cursor interface {
	// GapsAt returns maximal dyadic gap boxes containing the probe point.
	// The result is empty exactly when the point is a tuple of the
	// relation (no gap can contain it). The returned slice and box
	// storage are cursor scratch: the result is valid only until the next
	// GapsAt call on the same cursor.
	GapsAt(point []uint64) []dyadic.Box
}

// Union pools several indices over the same relation; its gap set is the
// union of theirs. This realizes the paper's multiple-indices-per-
// relation setting, under which box certificates can be far smaller than
// under any single index (Proposition B.6).
type Union struct {
	rel     *relation.Relation
	indices []Index
}

// NewUnion combines indices over a common relation.
func NewUnion(indices ...Index) (*Union, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("index: Union needs at least one index")
	}
	rel := indices[0].Relation()
	for _, ix := range indices[1:] {
		if ix.Relation() != rel {
			return nil, fmt.Errorf("index: Union indices cover different relations")
		}
	}
	return &Union{rel: rel, indices: indices}, nil
}

// Relation implements Index.
func (u *Union) Relation() *relation.Relation { return u.rel }

// Kind implements Index.
func (u *Union) Kind() string {
	s := "union("
	for i, ix := range u.indices {
		if i > 0 {
			s += ","
		}
		s += ix.Kind()
	}
	return s + ")"
}

// unionCursor merges the member cursors' probe results, deduplicating
// boxes contributed by several member indices.
type unionCursor struct {
	cursors []Cursor
	out     []dyadic.Box  // result buffer, reused
	seen    *boxtree.Tree // per-call dedup set, Reset each probe
}

// NewCursor implements Index.
func (u *Union) NewCursor() Cursor {
	c := &unionCursor{
		cursors: make([]Cursor, len(u.indices)),
		seen:    boxtree.New(u.rel.Arity()),
	}
	for i, ix := range u.indices {
		c.cursors[i] = ix.NewCursor()
	}
	return c
}

// GapsAt implements Cursor. The result (whose boxes may alias member
// cursor scratch) is valid until the next call.
func (c *unionCursor) GapsAt(point []uint64) []dyadic.Box {
	c.out = c.out[:0]
	c.seen.Reset()
	for _, cur := range c.cursors {
		for _, b := range cur.GapsAt(point) {
			if c.seen.Insert(b) {
				c.out = append(c.out, b)
			}
		}
	}
	return c.out
}

// AllGaps implements Index.
func (u *Union) AllGaps() []dyadic.Box {
	var out []dyadic.Box
	seen := boxtree.New(u.rel.Arity())
	for _, ix := range u.indices {
		for _, b := range ix.AllGaps() {
			if seen.Insert(b) {
				out = append(out, b)
			}
		}
	}
	return out
}

func checkPoint(rel *relation.Relation, point []uint64) {
	if len(point) != rel.Arity() {
		panic(fmt.Sprintf("index: probe point arity %d, relation %s has %d", len(point), rel.Name(), rel.Arity()))
	}
	for i, v := range point {
		d := rel.Depths()[i]
		if d < 64 && v >= 1<<d {
			panic(fmt.Sprintf("index: probe value %d out of domain of %s attribute %d", v, rel.Name(), i))
		}
	}
}
