package index

import (
	"fmt"

	"tetrisjoin/internal/relation"
)

// This file is the index side of segment-backed durability: every base
// index family serializes to a flat word slab (AppendWords) and loads
// back (FromWords) with structural validation but no reconstruction —
// the load path performs zero index builds, which is what lets a
// segment-backed restart keep Stats.IndexBuilds at zero. Delta-layered
// indexes are not serialized directly; the durable layer freezes a
// fresh flat build instead (a checkpoint folds layers by construction).

// Sorted.AppendWords serializes the sorted index: arity, the attribute
// order as schema positions, the tuple count, then the reordered tuple
// values as one flat slab.
func (s *Sorted) AppendWords(dst []uint64) []uint64 {
	dst = append(dst, uint64(len(s.order)))
	for _, pos := range s.order {
		dst = append(dst, uint64(pos))
	}
	dst = append(dst, uint64(len(s.tuples)))
	for _, t := range s.tuples {
		dst = append(dst, t...)
	}
	return dst
}

// SortedFromWords rebuilds a Sorted over rel from an AppendWords slab.
// Tuple headers alias the slab (no per-value copy, no re-sort); the
// slab is validated structurally — order must be a permutation of the
// schema, the tuple count must match the relation, values must respect
// domain bounds, and rows must be strictly increasing in index order —
// so a corrupt slab is rejected rather than mis-probed.
func SortedFromWords(rel *relation.Relation, words []uint64) (*Sorted, error) {
	k := rel.Arity()
	if len(words) < 1 || words[0] != uint64(k) {
		return nil, fmt.Errorf("index: sorted slab arity mismatch for %s", rel.Name())
	}
	if len(words) < 2+k {
		return nil, fmt.Errorf("index: sorted slab too short for %s", rel.Name())
	}
	order := make([]int, k)
	seen := make([]bool, k)
	for i := 0; i < k; i++ {
		pos := words[1+i]
		if pos >= uint64(k) || seen[pos] {
			return nil, fmt.Errorf("index: sorted slab order is not a permutation for %s", rel.Name())
		}
		seen[pos] = true
		order[i] = int(pos)
	}
	n := words[1+k]
	body := words[2+k:]
	if uint64(len(body)) != n*uint64(k) || int(n) != rel.Len() {
		return nil, fmt.Errorf("index: sorted slab has %d rows over %d words, relation %s has %d tuples", n, len(body), rel.Name(), rel.Len())
	}
	inv := make([]int, k)
	depths := make([]uint8, k)
	for lvl, pos := range order {
		inv[pos] = lvl
		depths[lvl] = rel.Depths()[pos]
	}
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		t := relation.Tuple(body[uint64(i)*uint64(k) : uint64(i+1)*uint64(k) : uint64(i+1)*uint64(k)])
		for lvl, v := range t {
			if depths[lvl] < 64 && v >= 1<<depths[lvl] {
				return nil, fmt.Errorf("index: sorted slab row %d exceeds domain for %s", i, rel.Name())
			}
		}
		if i > 0 && relation.Compare(tuples[i-1], t) >= 0 {
			return nil, fmt.Errorf("index: sorted slab not strictly sorted at row %d for %s", i, rel.Name())
		}
		tuples[i] = t
	}
	return &Sorted{rel: rel, order: order, inv: inv, depths: depths, tuples: tuples}, nil
}

// FreezeIndex serializes a built index into a word slab, reporting
// false for shapes that have no flat form (delta layers — the caller
// freezes a fresh build instead). A rebased wrapper is unwrapped: it
// holds a flat index over the identical tuple set.
func FreezeIndex(ix Index) ([]uint64, bool) {
	for {
		if rb, ok := ix.(rebased); ok {
			ix = rb.Index
			continue
		}
		break
	}
	switch t := ix.(type) {
	case *Sorted:
		return t.AppendWords(nil), true
	case *Dyadic:
		return t.AppendWords(nil), true
	case *KDTree:
		return t.AppendWords(nil), true
	default:
		return nil, false
	}
}

// LoadIndex deserializes a FreezeIndex slab back into an index over
// rel, dispatching on the spec's family. The result is registered
// under the same (relation, order, family) key the build path would
// use — see Set.Put.
func LoadIndex(rel *relation.Relation, spec Spec, words []uint64) (Index, error) {
	switch spec.Family {
	case BTreeFamily:
		return SortedFromWords(rel, words)
	case DyadicFamily:
		return DyadicFromWords(rel, words)
	case KDTreeFamily:
		return KDTreeFromWords(rel, words)
	default:
		return nil, fmt.Errorf("index: cannot load unknown family %v", spec.Family)
	}
}

// Put registers a pre-built index under the spec — the load-from-
// segment path. The index must cover this set's relation snapshot;
// unlike Get, Put never charges the build counter (nothing was built).
func (s *Set) Put(spec Spec, ix Index) error {
	if ix.Relation() != s.rel {
		return fmt.Errorf("index: Put of an index over a different relation snapshot")
	}
	s.put(s.canonical(spec), ix)
	return nil
}
