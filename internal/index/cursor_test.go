package index

import (
	"math/rand"
	"sync"
	"testing"

	"tetrisjoin/internal/relation"
)

// TestCursorsShareImmutableIndex exercises the concurrency contract: one
// index, many goroutines, one cursor each, probing the whole domain at
// once. Run with -race; results are checked against a single-threaded
// reference cursor.
func TestCursorsShareImmutableIndex(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	rel := relation.MustNewUniform("R", []string{"A", "B"}, 4)
	for i := 0; i < 40; i++ {
		rel.MustInsert(uint64(r.Intn(16)), uint64(r.Intn(16)))
	}
	indices := []Index{
		MustSorted(rel, "A", "B"),
		MustSorted(rel, "B", "A"),
		NewDyadic(rel),
		NewKDTree(rel),
	}
	u, err := NewUnion(indices...)
	if err != nil {
		t.Fatal(err)
	}
	indices = append(indices, u)

	for _, ix := range indices {
		// Reference answers from a private cursor, keyed by probe point.
		ref := ix.NewCursor()
		type probe struct{ a, b uint64 }
		want := map[probe]map[string]bool{}
		for a := uint64(0); a < 16; a++ {
			for b := uint64(0); b < 16; b++ {
				set := map[string]bool{}
				for _, g := range ref.GapsAt([]uint64{a, b}) {
					set[g.String()] = true
				}
				want[probe{a, b}] = set
			}
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cur := ix.NewCursor()
				pt := make([]uint64, 2)
				// Each worker sweeps the domain in a different order so
				// cursors are at different probe points simultaneously.
				for i := 0; i < 256; i++ {
					j := (i*7 + w*37) % 256
					pt[0], pt[1] = uint64(j/16), uint64(j%16)
					got := cur.GapsAt(pt)
					wantSet := want[probe{pt[0], pt[1]}]
					if len(got) != len(wantSet) {
						t.Errorf("%s: worker %d probe %v: %d boxes, want %d", ix.Kind(), w, pt, len(got), len(wantSet))
						return
					}
					for _, g := range got {
						if !wantSet[g.String()] {
							t.Errorf("%s: worker %d probe %v: unexpected box %v", ix.Kind(), w, pt, g)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
	}
}

// TestAllGapsConcurrent: AllGaps only reads the index and allocates fresh
// storage, so concurrent calls must agree. Run with -race.
func TestAllGapsConcurrent(t *testing.T) {
	rel := relation.MustNewUniform("R", []string{"A", "B"}, 3)
	for _, v := range []uint64{1, 3, 5, 7} {
		rel.MustInsert(3, v)
		rel.MustInsert(v, 3)
	}
	for _, ix := range []Index{MustSorted(rel), NewDyadic(rel), NewKDTree(rel)} {
		wantLen := len(ix.AllGaps())
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if got := len(ix.AllGaps()); got != wantLen {
					t.Errorf("%s: concurrent AllGaps returned %d boxes, want %d", ix.Kind(), got, wantLen)
				}
			}()
		}
		wg.Wait()
	}
}
