package sat

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestCountFastAgainstEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(7)
		m := 1 + r.Intn(3*n)
		c := CNF{NumVars: n}
		for i := 0; i < m; i++ {
			perm := r.Perm(n)
			var cl Clause
			for k := 0; k < 3 && k < n; k++ {
				lit := perm[k] + 1
				if r.Intn(2) == 0 {
					lit = -lit
				}
				cl = append(cl, lit)
			}
			c.Clauses = append(c.Clauses, cl)
		}
		want := bruteCount(c)
		got, _, err := CountFast(c, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Cmp(new(big.Int).SetUint64(want)) != 0 {
			t.Fatalf("trial %d: CountFast = %s, brute = %d", trial, got, want)
		}
		// Without learning too.
		got, _, err = CountFast(c, Options{NoLearning: true})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(new(big.Int).SetUint64(want)) != 0 {
			t.Fatalf("trial %d: no-learning CountFast = %s, want %d", trial, got, want)
		}
	}
}

func TestCountFastHugeModelCounts(t *testing.T) {
	// 50 variables, one clause: 2^50 − 2^47 models — enumeration would
	// never finish; CountFast is immediate.
	c := CNF{NumVars: 50, Clauses: []Clause{{1, 2, 3}}}
	got, stats, err := CountFast(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Lsh(big.NewInt(1), 50)
	want.Sub(want, new(big.Int).Lsh(big.NewInt(1), 47))
	if got.Cmp(want) != 0 {
		t.Fatalf("CountFast = %s, want %s", got, want)
	}
	if stats.SkeletonCalls > 10000 {
		t.Errorf("counting took %d skeleton calls", stats.SkeletonCalls)
	}
}

func TestCountFastMatchesCountOnPigeonhole(t *testing.T) {
	php := Pigeonhole(4, 4) // 24 models
	fast, _, err := CountFast(php, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cmp(big.NewInt(24)) != 0 {
		t.Errorf("CountFast(PHP(4,4)) = %s, want 24", fast)
	}
	unsat, _, err := CountFast(Pigeonhole(5, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if unsat.Sign() != 0 {
		t.Errorf("CountFast(PHP(5,4)) = %s, want 0", unsat)
	}
}

func TestCountFastVarOrderValidation(t *testing.T) {
	c := CNF{3, []Clause{{1, 2}}}
	if _, _, err := CountFast(c, Options{VarOrder: []int{1, 2}}); err == nil {
		t.Error("short order accepted")
	}
	if _, _, err := CountFast(c, Options{VarOrder: []int{0, 1, 2}}); err == nil {
		t.Error("zero variable accepted")
	}
	if _, _, err := CountFast(CNF{0, nil}, Options{}); err == nil {
		t.Error("invalid formula accepted")
	}
}
