// Package sat realizes the paper's connection between Tetris and DPLL
// with clause learning (Section 4.2.4, Appendix I): a CNF formula over n
// variables becomes a box cover problem over the Boolean cube {0,1}^n —
// each clause maps to the box of assignments falsifying it (Figure 8) —
// and Tetris enumerates the uncovered points, i.e. the models. Geometric
// resolution corresponds to propositional resolution of the learned
// clauses, caching to clause learning, and the NoCache mode to plain
// DPLL search.
package sat

import (
	"bufio"
	"fmt"
	"io"
	"math/big"
	"strconv"
	"strings"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/dyadic"
)

// Clause is a disjunction of literals: positive v means variable v,
// negative -v means its negation. Variables are 1-based.
type Clause []int

// CNF is a conjunction of clauses over NumVars variables.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// MaxVars bounds the variable count: one box dimension per variable.
const MaxVars = 62

// Check validates the formula.
func (c CNF) Check() error {
	if c.NumVars < 1 || c.NumVars > MaxVars {
		return fmt.Errorf("sat: %d variables, supported range is 1..%d", c.NumVars, MaxVars)
	}
	for i, cl := range c.Clauses {
		if len(cl) == 0 {
			return fmt.Errorf("sat: clause %d is empty (formula is unsatisfiable by definition)", i)
		}
		seen := map[int]bool{}
		for _, lit := range cl {
			v := lit
			if v < 0 {
				v = -v
			}
			if v == 0 || v > c.NumVars {
				return fmt.Errorf("sat: clause %d has literal %d out of range", i, lit)
			}
			if seen[-lit] {
				return fmt.Errorf("sat: clause %d is tautological (has %d and %d)", i, lit, -lit)
			}
			seen[lit] = true
		}
	}
	return nil
}

// Boxes encodes the formula as gap boxes over the n-dimensional Boolean
// cube: clause (ℓ1 ∨ … ∨ ℓk) becomes the box whose component for each
// ℓi's variable is the single falsifying value, λ elsewhere. The
// uncovered points are exactly the models.
func (c CNF) Boxes() []dyadic.Box {
	out := make([]dyadic.Box, 0, len(c.Clauses))
	for _, cl := range c.Clauses {
		b := dyadic.Universe(c.NumVars)
		for _, lit := range cl {
			v := lit
			val := uint64(0) // positive literal falsified by 0
			if lit < 0 {
				v = -lit
				val = 1 // negative literal falsified by 1
			}
			b[v-1] = dyadic.Unit(val, 1)
		}
		out = append(out, b)
	}
	return out
}

// depths returns the Boolean-cube depths (1 bit per variable).
func (c CNF) depths() []uint8 {
	d := make([]uint8, c.NumVars)
	for i := range d {
		d[i] = 1
	}
	return d
}

// Options configures the solver.
type Options struct {
	// VarOrder is the DPLL branching order (1-based variables); nil means
	// 1..n. This is Tetris' splitting attribute order.
	VarOrder []int
	// NoLearning disables clause learning (resolvent caching): plain DPLL
	// search, the Tree Ordered resolution class.
	NoLearning bool
	// MaxModels stops after this many models (0 = all).
	MaxModels int
	// OnModel streams models as assignments (true at index v-1 means
	// variable v is true). Returning false stops the search.
	OnModel func(assignment []bool) bool
}

// Result reports a solver run.
type Result struct {
	// Models is the number of models found (the #SAT count when the run
	// was not truncated).
	Models uint64
	// Assignments holds the models when OnModel was nil.
	Assignments [][]bool
	// Stats is the underlying Tetris work (Resolutions = learned/derived
	// clauses).
	Stats core.Stats
}

// Count counts the models of the formula (#SAT) by running Tetris over
// the clause boxes.
func Count(c CNF, opts Options) (*Result, error) {
	if err := c.Check(); err != nil {
		return nil, err
	}
	oracle, err := core.NewBoxOracle(c.depths(), c.Boxes())
	if err != nil {
		return nil, err
	}
	var sao []int
	if opts.VarOrder != nil {
		if len(opts.VarOrder) != c.NumVars {
			return nil, fmt.Errorf("sat: variable order has %d entries for %d variables", len(opts.VarOrder), c.NumVars)
		}
		sao = make([]int, c.NumVars)
		for i, v := range opts.VarOrder {
			if v < 1 || v > c.NumVars {
				return nil, fmt.Errorf("sat: variable %d out of range in order", v)
			}
			sao[i] = v - 1
		}
	}
	res := &Result{}
	coreOpts := core.Options{
		Mode:      core.Preloaded,
		SAO:       sao,
		NoCache:   opts.NoLearning,
		MaxOutput: opts.MaxModels,
	}
	assignment := make([]bool, c.NumVars)
	coreOpts.OnOutput = func(tuple []uint64) bool {
		for i, v := range tuple {
			assignment[i] = v == 1
		}
		res.Models++
		if opts.OnModel != nil {
			return opts.OnModel(assignment)
		}
		cp := make([]bool, len(assignment))
		copy(cp, assignment)
		res.Assignments = append(res.Assignments, cp)
		return true
	}
	coreRes, err := core.Run(oracle, coreOpts)
	if err != nil {
		return nil, err
	}
	res.Stats = coreRes.Stats
	return res, nil
}

// CountFast returns the exact model count without enumerating models:
// the memoized counting skeleton (core.CountUncovered) sums whole
// uncovered sub-cubes at once, so formulas with astronomically many
// models (e.g. 2^50) are counted in polynomial space. This is the true
// #DPLL-with-caching reading of Section 4.2.4.
func CountFast(c CNF, opts Options) (*big.Int, core.Stats, error) {
	if err := c.Check(); err != nil {
		return nil, core.Stats{}, err
	}
	var sao []int
	if opts.VarOrder != nil {
		if len(opts.VarOrder) != c.NumVars {
			return nil, core.Stats{}, fmt.Errorf("sat: variable order has %d entries for %d variables", len(opts.VarOrder), c.NumVars)
		}
		sao = make([]int, c.NumVars)
		for i, v := range opts.VarOrder {
			if v < 1 || v > c.NumVars {
				return nil, core.Stats{}, fmt.Errorf("sat: variable %d out of range in order", v)
			}
			sao[i] = v - 1
		}
	}
	rep, err := core.CountUncovered(c.depths(), c.Boxes(), core.Options{SAO: sao, NoCache: opts.NoLearning})
	if err != nil {
		return nil, core.Stats{}, err
	}
	return rep.Uncovered, rep.Stats, nil
}

// Solve finds one model, or reports unsatisfiability.
func Solve(c CNF, opts Options) (sat bool, model []bool, err error) {
	opts.MaxModels = 1
	var found []bool
	inner := opts.OnModel
	opts.OnModel = func(assignment []bool) bool {
		found = append([]bool(nil), assignment...)
		if inner != nil {
			inner(assignment)
		}
		return false
	}
	res, err := Count(c, opts)
	if err != nil {
		return false, nil, err
	}
	return res.Models > 0, found, nil
}

// ParseDIMACS reads a formula in DIMACS CNF format.
func ParseDIMACS(r io.Reader) (CNF, error) {
	var c CNF
	sc := bufio.NewScanner(r)
	var current Clause
	declared := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") || strings.HasPrefix(line, "%") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return c, fmt.Errorf("sat: bad problem line %q", line)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil {
				return c, fmt.Errorf("sat: bad variable count in %q", line)
			}
			nc, err := strconv.Atoi(fields[3])
			if err != nil {
				return c, fmt.Errorf("sat: bad clause count in %q", line)
			}
			c.NumVars = nv
			declared = nc
			continue
		}
		for _, tok := range strings.Fields(line) {
			lit, err := strconv.Atoi(tok)
			if err != nil {
				return c, fmt.Errorf("sat: bad literal %q", tok)
			}
			if lit == 0 {
				c.Clauses = append(c.Clauses, current)
				current = nil
				continue
			}
			current = append(current, lit)
		}
	}
	if err := sc.Err(); err != nil {
		return c, err
	}
	if len(current) > 0 {
		c.Clauses = append(c.Clauses, current)
	}
	if declared >= 0 && len(c.Clauses) != declared {
		return c, fmt.Errorf("sat: header declares %d clauses, found %d", declared, len(c.Clauses))
	}
	if c.NumVars == 0 {
		return c, fmt.Errorf("sat: missing problem line")
	}
	return c, c.Check()
}

// Pigeonhole returns the (unsatisfiable for holes < pigeons) pigeonhole
// principle formula PHP(pigeons, holes): a standard resolution-hardness
// benchmark.
func Pigeonhole(pigeons, holes int) CNF {
	v := func(p, h int) int { return p*holes + h + 1 }
	var c CNF
	c.NumVars = pigeons * holes
	// Every pigeon sits somewhere.
	for p := 0; p < pigeons; p++ {
		var cl Clause
		for h := 0; h < holes; h++ {
			cl = append(cl, v(p, h))
		}
		c.Clauses = append(c.Clauses, cl)
	}
	// No two pigeons share a hole.
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				c.Clauses = append(c.Clauses, Clause{-v(p1, h), -v(p2, h)})
			}
		}
	}
	return c
}
