package sat

import (
	"math/rand"
	"strings"
	"testing"
)

// bruteCount enumerates all assignments.
func bruteCount(c CNF) uint64 {
	var count uint64
	for mask := uint64(0); mask < 1<<uint(c.NumVars); mask++ {
		ok := true
		for _, cl := range c.Clauses {
			sat := false
			for _, lit := range cl {
				v := lit
				want := uint64(1)
				if lit < 0 {
					v = -lit
					want = 0
				}
				if mask>>uint(v-1)&1 == want {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

func TestCountSmallFormulas(t *testing.T) {
	cases := []struct {
		name string
		cnf  CNF
		want uint64
	}{
		{"single-var-pos", CNF{1, []Clause{{1}}}, 1},
		{"single-var-free", CNF{2, []Clause{{1}}}, 2},
		{"xor-ish", CNF{2, []Clause{{1, 2}, {-1, -2}}}, 2},
		{"unsat", CNF{1, []Clause{{1}, {-1}}}, 0},
		{"implication-chain", CNF{3, []Clause{{-1, 2}, {-2, 3}}}, 4 + 1}, // brute force below cross-checks
		{"no-clauses", CNF{3, nil}, 8},
	}
	for _, c := range cases {
		want := bruteCount(c.cnf)
		if c.name != "implication-chain" && want != c.want {
			t.Fatalf("%s: brute force %d disagrees with expectation %d", c.name, want, c.want)
		}
		res, err := Count(c.cnf, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.Models != want {
			t.Errorf("%s: Count = %d, want %d", c.name, res.Models, want)
		}
		if uint64(len(res.Assignments)) != want {
			t.Errorf("%s: %d assignments returned", c.name, len(res.Assignments))
		}
	}
}

func TestModelsSatisfyFormula(t *testing.T) {
	c := CNF{4, []Clause{{1, -2}, {2, 3, -4}, {-1, 4}}}
	res, err := Count(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Assignments {
		for _, cl := range c.Clauses {
			sat := false
			for _, lit := range cl {
				v, want := lit, true
				if lit < 0 {
					v, want = -lit, false
				}
				if m[v-1] == want {
					sat = true
					break
				}
			}
			if !sat {
				t.Fatalf("model %v falsifies clause %v", m, cl)
			}
		}
	}
	if res.Models != bruteCount(c) {
		t.Errorf("Count = %d, brute = %d", res.Models, bruteCount(c))
	}
}

func TestRandom3CNFAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(8) // 3..10 variables
		m := 1 + r.Intn(4*n)
		c := CNF{NumVars: n}
		for i := 0; i < m; i++ {
			perm := r.Perm(n)
			var cl Clause
			for k := 0; k < 3 && k < n; k++ {
				lit := perm[k] + 1
				if r.Intn(2) == 0 {
					lit = -lit
				}
				cl = append(cl, lit)
			}
			c.Clauses = append(c.Clauses, cl)
		}
		want := bruteCount(c)
		res, err := Count(c, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Models != want {
			t.Fatalf("trial %d: Count = %d, brute = %d (cnf %+v)", trial, res.Models, want, c)
		}
		// DPLL without learning must agree.
		res2, err := Count(c, Options{NoLearning: true})
		if err != nil {
			t.Fatal(err)
		}
		if res2.Models != want {
			t.Fatalf("trial %d: no-learning Count = %d, want %d", trial, res2.Models, want)
		}
	}
}

func TestSolve(t *testing.T) {
	sat, model, err := Solve(CNF{2, []Clause{{1}, {-1, 2}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sat || !model[0] || !model[1] {
		t.Errorf("Solve = %v, %v", sat, model)
	}
	sat, model, err = Solve(CNF{1, []Clause{{1}, {-1}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sat || model != nil {
		t.Error("unsat formula solved")
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n) is unsatisfiable; PHP(n, n) has n! models.
	php := Pigeonhole(3, 2)
	sat, _, err := Solve(php, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Error("PHP(3,2) reported satisfiable")
	}
	php = Pigeonhole(2, 2)
	res, err := Count(php, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Models != 2 {
		t.Errorf("PHP(2,2) models = %d, want 2", res.Models)
	}
	php = Pigeonhole(3, 3)
	res, err = Count(php, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Models != 6 {
		t.Errorf("PHP(3,3) models = %d, want 6", res.Models)
	}
}

func TestClauseLearningHelpsOnPigeonhole(t *testing.T) {
	// Clause learning (resolvent caching) must not lose to plain DPLL on
	// PHP — the classic learning showcase.
	php := Pigeonhole(4, 3)
	learned, err := Count(php, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Count(php, Options{NoLearning: true})
	if err != nil {
		t.Fatal(err)
	}
	if learned.Models != 0 || plain.Models != 0 {
		t.Fatal("PHP(4,3) must be unsatisfiable")
	}
	if learned.Stats.Resolutions > plain.Stats.Resolutions {
		t.Errorf("learning used more resolutions (%d) than plain DPLL (%d)",
			learned.Stats.Resolutions, plain.Stats.Resolutions)
	}
}

func TestVarOrder(t *testing.T) {
	c := CNF{3, []Clause{{1, 2}, {-2, 3}}}
	want := bruteCount(c)
	for _, order := range [][]int{{1, 2, 3}, {3, 2, 1}, {2, 3, 1}} {
		res, err := Count(c, Options{VarOrder: order})
		if err != nil {
			t.Fatal(err)
		}
		if res.Models != want {
			t.Errorf("order %v: Count = %d, want %d", order, res.Models, want)
		}
	}
	if _, err := Count(c, Options{VarOrder: []int{1, 2}}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := Count(c, Options{VarOrder: []int{1, 2, 4}}); err == nil {
		t.Error("out-of-range order accepted")
	}
}

func TestCheckRejectsBadFormulas(t *testing.T) {
	cases := map[string]CNF{
		"zero-vars": {0, nil},
		"too-many":  {63, nil},
		"empty-cl":  {2, []Clause{{}}},
		"bad-lit":   {2, []Clause{{3}}},
		"tautology": {2, []Clause{{1, -1}}},
	}
	for name, c := range cases {
		if err := c.Check(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestParseDIMACS(t *testing.T) {
	input := `c example formula
p cnf 3 2
1 -2 0
2 3 0
`
	c, err := ParseDIMACS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVars != 3 || len(c.Clauses) != 2 {
		t.Fatalf("parsed %+v", c)
	}
	if c.Clauses[0][1] != -2 {
		t.Errorf("clause = %v", c.Clauses[0])
	}
	res, err := Count(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Models != bruteCount(c) {
		t.Error("parsed formula count mismatch")
	}
	for name, bad := range map[string]string{
		"no-header":   "1 2 0\n",
		"bad-header":  "p sat 3 2\n1 0\n",
		"wrong-count": "p cnf 2 5\n1 0\n",
		"bad-token":   "p cnf 2 1\n1 x 0\n",
	} {
		if _, err := ParseDIMACS(strings.NewReader(bad)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestStreamingModels(t *testing.T) {
	c := CNF{3, nil} // 8 models
	var seen int
	res, err := Count(c, Options{OnModel: func(a []bool) bool {
		seen++
		return seen < 3
	}})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Errorf("streamed %d models", seen)
	}
	if len(res.Assignments) != 0 {
		t.Error("assignments stored while streaming")
	}
}
