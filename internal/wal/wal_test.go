package wal

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// fill appends n records "rec-<i>" (1-based LSNs) and syncs after each,
// returning the per-record end offsets.
func fill(t *testing.T, l *Log, n int) []int64 {
	t.Helper()
	ends := make([]int64, n)
	for i := 0; i < n; i++ {
		lsn, end, err := l.Append([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d assigned LSN %d, want %d", i, lsn, i+1)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
		ends[i] = end
	}
	return ends
}

func TestLogRoundTrip(t *testing.T) {
	for _, impl := range []struct {
		name string
		fsys FS
	}{
		{"memfs", NewMemFS()},
		{"dirfs", mustDirFS(t)},
	} {
		t.Run(impl.name, func(t *testing.T) {
			l, err := OpenLog(impl.fsys, "wal.log", 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			ends := fill(t, l, 5)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			res, err := Replay(impl.fsys, "wal.log")
			if err != nil {
				t.Fatal(err)
			}
			if res.TornTail || res.Corrupt != nil {
				t.Fatalf("clean log replayed torn=%v corrupt=%v", res.TornTail, res.Corrupt)
			}
			if len(res.Records) != 5 || res.LastLSN != 5 || res.Size != ends[4] {
				t.Fatalf("replay got %d records, LastLSN %d, size %d; want 5, 5, %d",
					len(res.Records), res.LastLSN, res.Size, ends[4])
			}
			for i, r := range res.Records {
				if want := fmt.Sprintf("rec-%d", i); !bytes.Equal(r.Payload, []byte(want)) {
					t.Fatalf("record %d payload %q, want %q", i, r.Payload, want)
				}
				if r.End != ends[i] {
					t.Fatalf("record %d end %d, want %d", i, r.End, ends[i])
				}
			}
		})
	}
}

func mustDirFS(t *testing.T) *DirFS {
	t.Helper()
	fsys, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return fsys
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	res, err := Replay(NewMemFS(), "absent.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || res.Size != 0 || res.TornTail || res.Corrupt != nil {
		t.Fatalf("missing file replayed %+v, want empty", res)
	}
}

// Truncating the log at every possible byte offset must always recover
// the longest record prefix that fits, flagging a torn tail exactly
// when the cut lands mid-record.
func TestReplayTornTailEveryOffset(t *testing.T) {
	fsys := NewMemFS()
	l, err := OpenLog(fsys, "wal.log", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ends := fill(t, l, 4)
	data, err := fsys.ReadFile("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(0); cut <= int64(len(data)); cut++ {
		img := fsys.Clone()
		if err := img.Truncate("wal.log", cut); err != nil {
			t.Fatal(err)
		}
		res, err := Replay(img, "wal.log")
		if err != nil {
			t.Fatal(err)
		}
		if res.Corrupt != nil {
			t.Fatalf("cut %d: truncation misclassified as corruption: %v", cut, res.Corrupt)
		}
		want := 0
		for _, end := range ends {
			if end <= cut {
				want++
			}
		}
		if len(res.Records) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(res.Records), want)
		}
		atBoundary := cut == 0
		for _, end := range ends {
			if cut == end {
				atBoundary = true
			}
		}
		if res.TornTail == atBoundary {
			t.Fatalf("cut %d: TornTail=%v, boundary=%v", cut, res.TornTail, atBoundary)
		}
		if want > 0 && res.Size != ends[want-1] {
			t.Fatalf("cut %d: valid size %d, want %d", cut, res.Size, ends[want-1])
		}
	}
}

// A flipped byte strictly inside the log is corruption with the damaged
// record's exact start offset; in the final record it is
// indistinguishable from a torn tail and classified as such. Either
// way the consistent prefix before the damage is recovered.
func TestReplayCorruptionClassification(t *testing.T) {
	fsys := NewMemFS()
	l, err := OpenLog(fsys, "wal.log", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ends := fill(t, l, 4)
	starts := []int64{0, ends[0], ends[1], ends[2]}
	data, _ := fsys.ReadFile("wal.log")
	for off := int64(0); off < int64(len(data)); off++ {
		img := fsys.Clone()
		if err := img.FlipByte("wal.log", off); err != nil {
			t.Fatal(err)
		}
		res, err := Replay(img, "wal.log")
		if err != nil {
			t.Fatal(err)
		}
		// Which record did we damage?
		hit := 0
		for i, s := range starts {
			if off >= s {
				hit = i
			}
		}
		if len(res.Records) != hit {
			t.Fatalf("flip at %d (record %d): recovered %d records, want %d", off, hit, len(res.Records), hit)
		}
		switch {
		case res.Corrupt != nil:
			if res.Corrupt.Offset != starts[hit] {
				t.Fatalf("flip at %d: corrupt offset %d, want record start %d", off, res.Corrupt.Offset, starts[hit])
			}
		case res.TornTail:
			// Legitimate only for the final record, or for a damaged
			// length field that makes the record claim to run past EOF —
			// by design indistinguishable from a torn final write.
			inLength := off >= starts[hit]+8 && off < starts[hit]+12
			if hit < 3 && !inLength {
				t.Fatalf("flip at %d (record %d): mid-log damage classified as torn tail", off, hit)
			}
		default:
			t.Fatalf("flip at %d: neither corrupt nor torn", off)
		}
		if hit > 0 && res.Size != ends[hit-1] {
			t.Fatalf("flip at %d: size %d, want %d", off, res.Size, ends[hit-1])
		}
	}
}

func TestReplayRejectsNonMonotonicLSN(t *testing.T) {
	fsys := NewMemFS()
	f, err := fsys.OpenAppend("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	f.Write(EncodeRecord(1, []byte("a")))
	f.Write(EncodeRecord(3, []byte("b")))
	dup := EncodeRecord(3, []byte("c"))
	f.Write(dup)
	res, err := Replay(fsys, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 || res.LastLSN != 3 {
		t.Fatalf("recovered %d records LastLSN %d, want 2 and 3", len(res.Records), res.LastLSN)
	}
	if res.Corrupt == nil || !strings.Contains(res.Corrupt.Reason, "LSN") {
		t.Fatalf("duplicate LSN not reported as corruption: %+v", res.Corrupt)
	}
}

// A failed sync that persists only part of the pending record (a torn
// write) must leave a crash image that replays to the pre-append state,
// and the log must be poisoned for every later operation.
func TestTornWriteInjectionPoisonsLog(t *testing.T) {
	fsys := NewMemFS()
	l, err := OpenLog(fsys, "wal.log", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 2)
	fail := true
	fsys.SyncHook = func(name string, pending int) (int, bool) {
		if fail {
			return pending / 2, true // tear the record
		}
		return pending, false
	}
	if _, _, err := l.Append([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err == nil {
		t.Fatal("injected sync failure not surfaced")
	}
	if _, _, err := l.Append([]byte("after")); err == nil {
		t.Fatal("append after failed sync succeeded; log must be poisoned")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync after failed sync succeeded; log must be poisoned")
	}

	img := fsys.CrashClone()
	res, err := Replay(img, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 || !res.TornTail || res.Corrupt != nil {
		t.Fatalf("crash image replayed %d records torn=%v corrupt=%v, want 2, torn, no corruption",
			len(res.Records), res.TornTail, res.Corrupt)
	}
}

// Reset empties the file but keeps the LSN counter ascending, so a
// post-checkpoint tail filters cleanly against the checkpoint LSN.
func TestResetKeepsLSNMonotonic(t *testing.T) {
	fsys := NewMemFS()
	l, err := OpenLog(fsys, "wal.log", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 3)
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size after reset = %d", l.Size())
	}
	lsn, _, err := l.Append([]byte("tail"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("post-reset LSN %d, want 4", lsn)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(fsys, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].LSN != 4 {
		t.Fatalf("post-reset replay %d records first LSN %v", len(res.Records), res.Records)
	}
}

// Reopening after a torn-tail repair resumes appending with the next
// LSN at the repaired size — the restart path.
func TestReopenAfterRepair(t *testing.T) {
	fsys := NewMemFS()
	l, err := OpenLog(fsys, "wal.log", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ends := fill(t, l, 3)
	// Tear the tail by hand.
	if err := fsys.Truncate("wal.log", ends[2]-1); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(fsys, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 || !res.TornTail {
		t.Fatalf("replay after tear: %d records torn=%v", len(res.Records), res.TornTail)
	}
	if err := fsys.Truncate("wal.log", res.Size); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(fsys, "wal.log", res.Size, res.LastLSN)
	if err != nil {
		t.Fatal(err)
	}
	lsn, _, err := l2.Append([]byte("resumed"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Fatalf("resumed LSN %d, want 3", lsn)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	res2, err := Replay(fsys, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Records) != 3 || res2.TornTail || res2.Corrupt != nil {
		t.Fatalf("post-repair replay %d records torn=%v corrupt=%v", len(res2.Records), res2.TornTail, res2.Corrupt)
	}
	if string(res2.Records[2].Payload) != "resumed" {
		t.Fatalf("final payload %q", res2.Records[2].Payload)
	}
}
