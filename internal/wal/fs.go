// Package wal implements the write-ahead log under the durable
// catalog: length-prefixed, CRC-framed records with monotonically
// increasing log sequence numbers, appended through an explicit-sync
// file abstraction, and a defensive replayer that distinguishes a torn
// final record (truncate and continue — the crash interrupted the last
// write) from CRC corruption in the middle of the log (report a precise
// offset; the log's integrity claim is broken beyond it).
//
// The FS interface is the package's fault-injection seam: DirFS backs a
// real directory for the server, MemFS backs the crash-recovery fuzz
// harness with byte-exact control over what "survived" a crash — only
// explicitly synced bytes do, and a SyncHook can fail a sync after
// persisting an arbitrary prefix of the pending bytes (a torn write).
package wal

import (
	"io"
	"os"
	"path/filepath"
)

// File is an append-only handle with explicit durability points.
type File interface {
	io.Writer
	// Sync makes every byte written so far durable. A WAL record is
	// acknowledged only after the Sync covering it returns nil.
	Sync() error
	Close() error
}

// FS is the filesystem slice the durability layer needs. All names are
// flat (no subdirectories).
type FS interface {
	// OpenAppend opens the named file for appending, creating it empty
	// if it does not exist.
	OpenAppend(name string) (File, error)
	// ReadFile returns the file's full contents; a missing file reports
	// an error satisfying os.IsNotExist.
	ReadFile(name string) ([]byte, error)
	// Truncate cuts the named file to the given size (the torn-tail
	// repair and the post-checkpoint WAL reset).
	Truncate(name string, size int64) error
	// Rename atomically replaces newname with oldname (the checkpoint
	// publish step).
	Rename(oldname, newname string) error
	// Remove deletes the named file; removing a missing file is an
	// error satisfying os.IsNotExist.
	Remove(name string) error
	// List returns the names of all files, in no particular order.
	List() ([]string, error)
}

// DirFS is the production FS: a flat directory on the OS filesystem.
type DirFS struct {
	dir string
}

// NewDirFS returns an FS rooted at dir, creating the directory if
// needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirFS{dir: dir}, nil
}

// Dir returns the root directory.
func (d *DirFS) Dir() string { return d.dir }

func (d *DirFS) path(name string) string { return filepath.Join(d.dir, name) }

// OpenAppend implements FS.
func (d *DirFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(d.path(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (d *DirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(d.path(name))
}

// Truncate implements FS.
func (d *DirFS) Truncate(name string, size int64) error {
	return os.Truncate(d.path(name), size)
}

// Rename implements FS. The directory is fsynced afterwards so the
// rename itself — the checkpoint's atomic publish — is durable, not
// just the renamed file's contents.
func (d *DirFS) Rename(oldname, newname string) error {
	if err := os.Rename(d.path(oldname), d.path(newname)); err != nil {
		return err
	}
	return d.syncDir()
}

// Remove implements FS.
func (d *DirFS) Remove(name string) error {
	return os.Remove(d.path(name))
}

// List implements FS.
func (d *DirFS) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// syncDir fsyncs the directory so metadata operations (rename, create)
// are durable. Filesystems that cannot sync a directory handle are
// tolerated — the rename itself already happened.
func (d *DirFS) syncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return nil // best effort; not all platforms support dir fsync
	}
	return nil
}
