package wal

import (
	"fmt"
	"io/fs"
	"sort"
	"sync"
)

// MemFS is an in-memory FS with byte-exact durability tracking: every
// file records how many of its bytes have been covered by a successful
// Sync. CrashClone materializes the state a process crash would leave
// behind — synced bytes only — and SyncHook injects failed and torn
// syncs, so the crash-recovery fuzz harness can exercise every tail
// shape the real filesystem could produce without touching disk.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile

	// SyncHook, when non-nil, intercepts every Sync call with the file
	// name and the number of pending (written but unsynced) bytes. It
	// returns how many of those bytes actually reach durable storage
	// and whether the sync fails: (pending, false) is a normal sync,
	// (k < pending, true) a torn write — the crash image keeps a strict
	// prefix of the record — and (0, true) a clean sync failure.
	SyncHook func(name string, pending int) (keep int, fail bool)

	written int64
}

type memFile struct {
	data   []byte
	synced int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}}
}

func (m *MemFS) file(name string) *memFile {
	f, ok := m.files[name]
	if !ok {
		f = &memFile{}
		m.files[name] = f
	}
	return f
}

// memHandle resolves the file by name on every operation, so a handle
// stays valid across Truncate (like an O_APPEND fd: writes land at the
// current end, wherever that is now).
type memHandle struct {
	fs   *MemFS
	name string
}

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.file(name)
	return &memHandle{fs: m, name: name}, nil
}

// Write implements File.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f := h.fs.file(h.name)
	f.data = append(f.data, p...)
	h.fs.written += int64(len(p))
	return len(p), nil
}

// BytesWritten reports the total bytes ever written through any handle
// — the I/O meter tests use to prove incremental checkpoints serialize
// bytes proportional to churn, not to catalog size.
func (m *MemFS) BytesWritten() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.written
}

// Sync implements File, consulting the fault-injection hook.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f := h.fs.file(h.name)
	pending := len(f.data) - f.synced
	if hook := h.fs.SyncHook; hook != nil {
		keep, fail := hook(h.name, pending)
		if keep > pending {
			keep = pending
		}
		if keep < 0 {
			keep = 0
		}
		if fail {
			// The kept prefix is durable; the rest is not. Model the
			// in-memory state the crash image will be cut from.
			f.synced += keep
			return fmt.Errorf("wal: injected sync failure on %s (%d of %d bytes persisted)", h.name, keep, pending)
		}
	}
	f.synced = len(f.data)
	return nil
}

// Close implements File.
func (h *memHandle) Close() error { return nil }

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if size < int64(len(f.data)) {
		f.data = f.data[:size]
	}
	if f.synced > len(f.data) {
		f.synced = len(f.data)
	}
	return nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Size returns the current length of the named file (0 if missing).
func (m *MemFS) Size(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return int64(len(f.data))
	}
	return 0
}

// CrashClone returns a new MemFS holding what a process crash would
// leave on disk: for every file, exactly its synced prefix. The clone
// is independent — recovery experiments on it do not disturb the live
// filesystem — and starts fully synced (its bytes are, by construction,
// durable).
func (m *MemFS) CrashClone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for name, f := range m.files {
		data := append([]byte(nil), f.data[:f.synced]...)
		out.files[name] = &memFile{data: data, synced: len(data)}
	}
	return out
}

// Clone returns a full copy including unsynced bytes (the state an OS
// page-cache flush could also have persisted).
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for name, f := range m.files {
		data := append([]byte(nil), f.data...)
		out.files[name] = &memFile{data: data, synced: len(data)}
	}
	return out
}

// FlipByte inverts the byte at the given offset, simulating media
// corruption. Offsets outside the file are an error.
func (m *MemFS) FlipByte(name string, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "corrupt", Path: name, Err: fs.ErrNotExist}
	}
	if off < 0 || off >= int64(len(f.data)) {
		return fmt.Errorf("wal: corrupt offset %d outside %s (%d bytes)", off, name, len(f.data))
	}
	f.data[off] ^= 0xFF
	return nil
}
