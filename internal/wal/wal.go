package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Record framing, fixed 16-byte header followed by the payload:
//
//	[0:8)   LSN, little-endian uint64 — strictly increasing per log
//	[8:12)  payload length, little-endian uint32
//	[12:16) CRC32 (IEEE) over bytes [0:12) followed by the payload
//
// The CRC covers the header's LSN and length fields too, so a torn or
// corrupted header cannot smuggle a bogus length past the replayer: any
// record whose frame checks out is byte-exact as written.
const headerSize = 16

// maxRecordSize bounds a single record's payload. Far above anything
// the durable catalog writes; its real job is rejecting implausible
// lengths decoded from corrupted headers before they are trusted.
const maxRecordSize = 1 << 30

// Record is one replayed log entry.
type Record struct {
	// LSN is the record's log sequence number.
	LSN uint64
	// Payload is the record body, verified by CRC.
	Payload []byte
	// Offset and End are the record's byte extent in the log file.
	Offset, End int64
}

// CorruptError reports a CRC or sequencing violation strictly inside
// the log — not at its tail — at a precise byte offset. Unlike a torn
// tail (an interrupted final write, expected under crashes), mid-log
// corruption means bytes that were once acknowledged are gone: replay
// recovers the consistent prefix before the offset, but the durability
// claim for everything at and after it is broken and callers in strict
// mode should refuse the log entirely.
type CorruptError struct {
	// Offset is where the damaged record starts.
	Offset int64
	// Reason describes the violation.
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt record at offset %d: %s", e.Offset, e.Reason)
}

// ReplayResult is the outcome of scanning a log file.
type ReplayResult struct {
	// Records are the valid records, in log order.
	Records []Record
	// Size is the byte length of the valid prefix: the log should be
	// truncated here before appending resumes.
	Size int64
	// LastLSN is the LSN of the final valid record (0 when none).
	LastLSN uint64
	// TornTail reports that the file ended in an incomplete or
	// checksum-failing final record — the expected shape of a crash
	// mid-write. The tail bytes are not part of Size.
	TornTail bool
	// Corrupt is non-nil when a record strictly inside the log failed
	// its CRC or broke LSN monotonicity. Records stops at the last
	// consistent prefix; Size covers exactly that prefix.
	Corrupt *CorruptError
}

// Replay scans the named log file, verifying frame integrity and LSN
// monotonicity. A missing file is an empty log. The returned error is
// reserved for filesystem failures; damaged logs come back as a result
// with TornTail and/or Corrupt set.
func Replay(fsys FS, name string) (*ReplayResult, error) {
	data, err := fsys.ReadFile(name)
	if os.IsNotExist(err) {
		return &ReplayResult{}, nil
	}
	if err != nil {
		return nil, err
	}
	res := &ReplayResult{}
	off := int64(0)
	for off < int64(len(data)) {
		rem := int64(len(data)) - off
		if rem < headerSize {
			res.TornTail = true
			break
		}
		header := data[off : off+headerSize]
		lsn := binary.LittleEndian.Uint64(header[0:8])
		length := int64(binary.LittleEndian.Uint32(header[8:12]))
		sum := binary.LittleEndian.Uint32(header[12:16])
		end := off + headerSize + length
		if length > maxRecordSize {
			// An implausible length is header damage. If the claimed
			// record would run past EOF we cannot distinguish it from a
			// torn final write; inside the file it is plain corruption.
			res.Corrupt = &CorruptError{Offset: off, Reason: fmt.Sprintf("implausible record length %d", length)}
			break
		}
		if end > int64(len(data)) {
			res.TornTail = true
			break
		}
		payload := data[off+headerSize : end]
		crc := crc32.NewIEEE()
		crc.Write(header[0:12])
		crc.Write(payload)
		if crc.Sum32() != sum {
			if end == int64(len(data)) {
				// The damaged record is the final one: a crash that tore
				// the last write mid-payload leaves exactly this shape.
				res.TornTail = true
			} else {
				res.Corrupt = &CorruptError{Offset: off, Reason: "checksum mismatch"}
			}
			break
		}
		if lsn <= res.LastLSN {
			res.Corrupt = &CorruptError{Offset: off,
				Reason: fmt.Sprintf("LSN %d not greater than predecessor %d", lsn, res.LastLSN)}
			break
		}
		res.Records = append(res.Records, Record{
			LSN:     lsn,
			Payload: append([]byte(nil), payload...),
			Offset:  off,
			End:     end,
		})
		res.LastLSN = lsn
		res.Size = end
		off = end
	}
	return res, nil
}

// EncodeRecord frames one record: header plus payload, ready to append.
func EncodeRecord(lsn uint64, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint64(buf[0:8], lsn)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(buf[0:12])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(buf[12:16], crc.Sum32())
	copy(buf[headerSize:], payload)
	return buf
}

// Log is an open, append-only write-ahead log. Not safe for concurrent
// use; the durable catalog serializes writers with its mutation lock.
//
// Any write or sync failure poisons the log: the on-storage tail state
// is unknown after a failed append, so every later operation fails with
// the original error and the owner must recover by reopening (which
// re-derives the durable prefix through Replay).
type Log struct {
	fsys FS
	name string
	f    File
	lsn  uint64
	size int64
	err  error
}

// OpenLog opens the named file for appending at the given size with the
// given last-assigned LSN — both normally taken from a Replay that just
// validated (and possibly repaired) the file.
func OpenLog(fsys FS, name string, size int64, lastLSN uint64) (*Log, error) {
	f, err := fsys.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &Log{fsys: fsys, name: name, f: f, lsn: lastLSN, size: size}, nil
}

// Append frames the payload under the next LSN and writes it. The
// record is NOT durable until the next successful Sync; callers must
// not acknowledge it before then.
func (l *Log) Append(payload []byte) (lsn uint64, end int64, err error) {
	if l.err != nil {
		return 0, 0, l.err
	}
	lsn = l.lsn + 1
	frame := EncodeRecord(lsn, payload)
	n, err := l.f.Write(frame)
	if err == nil && n != len(frame) {
		err = fmt.Errorf("wal: short write: %d of %d bytes", n, len(frame))
	}
	if err != nil {
		l.err = fmt.Errorf("wal: append failed, log poisoned: %w", err)
		return 0, 0, l.err
	}
	l.lsn = lsn
	l.size += int64(len(frame))
	return lsn, l.size, nil
}

// Sync makes every appended record durable. Failure poisons the log.
func (l *Log) Sync() error {
	if l.err != nil {
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: sync failed, log poisoned: %w", err)
		return l.err
	}
	return nil
}

// LastLSN returns the last assigned LSN.
func (l *Log) LastLSN() uint64 { return l.lsn }

// Size returns the current log length in bytes.
func (l *Log) Size() int64 { return l.size }

// Err returns the poisoning error, if any.
func (l *Log) Err() error { return l.err }

// Reset truncates the log to empty after a checkpoint made its records
// redundant. The LSN counter is NOT reset: post-checkpoint records keep
// ascending, which is what lets recovery filter replayed records
// against the checkpoint's LSN idempotently.
func (l *Log) Reset() error {
	if l.err != nil {
		return l.err
	}
	if err := l.fsys.Truncate(l.name, 0); err != nil {
		l.err = fmt.Errorf("wal: reset failed, log poisoned: %w", err)
		return l.err
	}
	l.size = 0
	return nil
}

// Close closes the underlying file. A poisoned log closes the file but
// reports the poisoning error.
func (l *Log) Close() error {
	cerr := l.f.Close()
	if l.err != nil {
		return l.err
	}
	return cerr
}
