package hypergraph

import (
	"fmt"
	"math/bits"
	"sort"
)

// Decomposition is a tree decomposition (Definition A.4): bags of
// vertices arranged in a tree such that every hyperedge fits in some bag
// and every vertex's bags form a connected subtree.
type Decomposition struct {
	Bags  [][]int
	Edges [][2]int // tree edges between bag indices
}

// Width returns max bag size minus one.
func (d *Decomposition) Width() int {
	w := 0
	for _, b := range d.Bags {
		if len(b)-1 > w {
			w = len(b) - 1
		}
	}
	return w
}

// DecompositionFromOrder builds a tree decomposition from an elimination
// order (order[0] eliminated first) by the standard construction: the bag
// of v is v plus its not-yet-eliminated neighbours in the filled graph;
// the bag of v attaches to the bag of the earliest-eliminated vertex
// among those neighbours.
func (h *Hypergraph) DecompositionFromOrder(order []int) (*Decomposition, error) {
	n := h.N()
	if len(order) != n {
		return nil, fmt.Errorf("hypergraph: order has %d vertices, want %d", len(order), n)
	}
	pos := make([]int, n)
	seen := make([]bool, n)
	for i, v := range order {
		if v < 0 || v >= n || seen[v] {
			return nil, fmt.Errorf("hypergraph: order %v is not a permutation", order)
		}
		seen[v] = true
		pos[v] = i
	}
	adj := h.PrimalAdjacency()
	eliminated := uint64(0)
	bagMask := make([]uint64, n) // bag of the i-th eliminated vertex
	for i, v := range order {
		nb := adj[v] &^ eliminated &^ (1 << uint(v))
		bagMask[i] = nb | 1<<uint(v)
		for w := 0; w < n; w++ {
			if nb>>uint(w)&1 == 1 {
				adj[w] |= nb &^ (1 << uint(w))
			}
		}
		eliminated |= 1 << uint(v)
	}
	d := &Decomposition{Bags: make([][]int, n)}
	for i := range bagMask {
		var bag []int
		for v := 0; v < n; v++ {
			if bagMask[i]>>uint(v)&1 == 1 {
				bag = append(bag, v)
			}
		}
		sort.Ints(bag)
		d.Bags[i] = bag
	}
	var roots []int
	for i, v := range order {
		rest := bagMask[i] &^ (1 << uint(v))
		if rest == 0 {
			// A component root: its vertex has no later neighbours.
			roots = append(roots, i)
			continue
		}
		// Attach to the bag of the earliest-eliminated remaining vertex.
		earliest := -1
		for w := 0; w < n; w++ {
			if rest>>uint(w)&1 == 1 && (earliest == -1 || pos[w] < pos[earliest]) {
				earliest = w
			}
		}
		d.Edges = append(d.Edges, [2]int{i, pos[earliest]})
	}
	// Chain component roots so the forest becomes a tree. Components
	// share no vertices, so this cannot violate running intersection.
	for k := 1; k < len(roots); k++ {
		d.Edges = append(d.Edges, [2]int{roots[k-1], roots[k]})
	}
	return d, nil
}

// Verify checks the tree decomposition properties against the hypergraph:
// every hyperedge inside some bag, bag tree connected and acyclic, and
// every vertex's bags forming a connected subtree.
func (d *Decomposition) Verify(h *Hypergraph) error {
	nb := len(d.Bags)
	if nb == 0 {
		if h.N() == 0 && len(h.Edges()) == 0 {
			return nil
		}
		return fmt.Errorf("hypergraph: empty decomposition for non-empty hypergraph")
	}
	masks := make([]uint64, nb)
	for i, b := range d.Bags {
		masks[i] = edgeMask(b)
	}
	for _, e := range h.Edges() {
		m := edgeMask(e)
		found := false
		for _, bm := range masks {
			if m&^bm == 0 {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("hypergraph: edge %v not contained in any bag", e)
		}
	}
	// Tree: nb-1 edges and connected.
	if len(d.Edges) != nb-1 {
		return fmt.Errorf("hypergraph: decomposition has %d tree edges for %d bags", len(d.Edges), nb)
	}
	adj := make([][]int, nb)
	for _, e := range d.Edges {
		if e[0] < 0 || e[0] >= nb || e[1] < 0 || e[1] >= nb {
			return fmt.Errorf("hypergraph: tree edge %v out of range", e)
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	visited := make([]bool, nb)
	stack := []int{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[u] {
			if !visited[w] {
				visited[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	if count != nb {
		return fmt.Errorf("hypergraph: decomposition tree is disconnected")
	}
	// Running intersection: bags containing v form a connected subtree.
	for v := 0; v < h.N(); v++ {
		var start int = -1
		total := 0
		for i := range masks {
			if masks[i]>>uint(v)&1 == 1 {
				total++
				if start == -1 {
					start = i
				}
			}
		}
		if total == 0 {
			return fmt.Errorf("hypergraph: vertex %d in no bag", v)
		}
		// BFS restricted to bags containing v.
		vis := make([]bool, nb)
		vis[start] = true
		cnt := 1
		st := []int{start}
		for len(st) > 0 {
			u := st[len(st)-1]
			st = st[:len(st)-1]
			for _, w := range adj[u] {
				if !vis[w] && masks[w]>>uint(v)&1 == 1 {
					vis[w] = true
					cnt++
					st = append(st, w)
				}
			}
		}
		if cnt != total {
			return fmt.Errorf("hypergraph: bags of vertex %d are disconnected", v)
		}
	}
	return nil
}

// BagMasks returns the bags as bitmasks.
func (d *Decomposition) BagMasks() []uint64 {
	out := make([]uint64, len(d.Bags))
	for i, b := range d.Bags {
		out[i] = edgeMask(b)
	}
	return out
}

// Root orders the decomposition's bags by a BFS from bag 0, returning for
// each bag its parent (-1 for the root). Used by Yannakakis-style
// processing over decompositions.
func (d *Decomposition) Root() []int {
	nb := len(d.Bags)
	parent := make([]int, nb)
	for i := range parent {
		parent[i] = -2
	}
	adj := make([][]int, nb)
	for _, e := range d.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	queue := []int{0}
	parent[0] = -1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range adj[u] {
			if parent[w] == -2 {
				parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	return parent
}

// CountBits returns the number of vertices in a bag mask. Exposed for
// callers working with BagMasks.
func CountBits(m uint64) int { return bits.OnesCount64(m) }
