package hypergraph

import (
	"fmt"
	"math/bits"
)

// InducedWidth returns the induced width of an elimination order over the
// primal graph (Definition E.5): vertices are eliminated in order, each
// elimination connecting the vertex's remaining neighbours (fill-in); the
// width is the maximum number of remaining neighbours at any elimination,
// which equals max_k |support(A_k)| - 1 in the paper's notation.
//
// Note the direction: order[0] is eliminated first. The paper's
// supportedness runs over a GAO (A_1..A_n) eliminated back to front, so
// the SAO of Theorems 4.7/4.9 is the reverse of the order passed here.
func (h *Hypergraph) InducedWidth(order []int) (int, error) {
	n := h.N()
	if len(order) != n {
		return 0, fmt.Errorf("hypergraph: order has %d vertices, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return 0, fmt.Errorf("hypergraph: order %v is not a permutation", order)
		}
		seen[v] = true
	}
	adj := h.PrimalAdjacency()
	eliminated := uint64(0)
	width := 0
	for _, v := range order {
		nb := adj[v] &^ eliminated &^ (1 << uint(v))
		if c := bits.OnesCount64(nb); c > width {
			width = c
		}
		// Fill-in: remaining neighbours become a clique.
		for w := 0; w < n; w++ {
			if nb>>uint(w)&1 == 1 {
				adj[w] |= nb &^ (1 << uint(w))
			}
		}
		eliminated |= 1 << uint(v)
	}
	return width, nil
}

// Treewidth computes the exact treewidth and an optimal elimination order
// (order[0] eliminated first) using the Bodlaender–Held–Karp subset
// dynamic program, O(2^n · n²). Limited to n ≤ 24 vertices.
func (h *Hypergraph) Treewidth() (int, []int, error) {
	n := h.N()
	if n == 0 {
		return 0, nil, nil
	}
	if n > 24 {
		return 0, nil, fmt.Errorf("hypergraph: exact treewidth limited to 24 vertices, have %d", n)
	}
	adj := h.PrimalAdjacency()
	full := uint64(1)<<uint(n) - 1

	// q(S, v): number of vertices outside S∪{v} reachable from v through
	// S in the primal graph — the back-degree of v if eliminated after S.
	q := func(S uint64, v int) int {
		visited := uint64(1) << uint(v)
		frontier := uint64(1) << uint(v)
		reach := uint64(0)
		for frontier != 0 {
			next := uint64(0)
			for f := frontier; f != 0; {
				u := bits.TrailingZeros64(f)
				f &= f - 1
				nb := adj[u] &^ visited
				reach |= nb &^ S
				next |= nb & S
				visited |= nb
			}
			frontier = next
		}
		return bits.OnesCount64(reach &^ (1 << uint(v)))
	}

	// f[S] = min over elimination orders of S (eliminated first) of the
	// max back-degree.
	f := make([]int8, 1<<uint(n))
	choice := make([]int8, 1<<uint(n))
	for S := uint64(1); S <= full; S++ {
		best := int8(127)
		var bestV int8 = -1
		for T := S; T != 0; {
			v := bits.TrailingZeros64(T)
			T &= T - 1
			prev := S &^ (1 << uint(v))
			cost := int8(q(prev, v))
			if f[prev] > cost {
				cost = f[prev]
			}
			if cost < best {
				best = cost
				bestV = int8(v)
			}
		}
		f[S] = best
		choice[S] = bestV
	}
	// Reconstruct: choice[S] is eliminated last among S.
	order := make([]int, n)
	S := full
	for i := n - 1; i >= 0; i-- {
		v := int(choice[S])
		order[i] = v
		S &^= 1 << uint(v)
	}
	return int(f[full]), order, nil
}

// MinFillOrder returns a min-fill heuristic elimination order and its
// induced width; usable beyond the exact solver's size limit (n ≤ 62).
func (h *Hypergraph) MinFillOrder() ([]int, int) {
	n := h.N()
	adj := h.PrimalAdjacency()
	eliminated := uint64(0)
	order := make([]int, 0, n)
	width := 0
	for len(order) < n {
		bestV, bestFill := -1, 1<<30
		for v := 0; v < n; v++ {
			if eliminated>>uint(v)&1 == 1 {
				continue
			}
			nb := adj[v] &^ eliminated &^ (1 << uint(v))
			fill := 0
			for w := 0; w < n; w++ {
				if nb>>uint(w)&1 == 0 {
					continue
				}
				missing := nb &^ adj[w] &^ (1 << uint(w))
				fill += bits.OnesCount64(missing)
			}
			if fill < bestFill {
				bestFill = fill
				bestV = v
			}
		}
		nb := adj[bestV] &^ eliminated &^ (1 << uint(bestV))
		if c := bits.OnesCount64(nb); c > width {
			width = c
		}
		for w := 0; w < n; w++ {
			if nb>>uint(w)&1 == 1 {
				adj[w] |= nb &^ (1 << uint(w))
			}
		}
		eliminated |= 1 << uint(bestV)
		order = append(order, bestV)
	}
	return order, width
}

// EliminationOrder returns an elimination order of minimal induced width:
// exact for n ≤ 24, min-fill heuristic beyond.
func (h *Hypergraph) EliminationOrder() ([]int, int) {
	if h.N() <= 24 {
		w, order, err := h.Treewidth()
		if err == nil {
			return order, w
		}
	}
	order, w := h.MinFillOrder()
	return order, w
}
