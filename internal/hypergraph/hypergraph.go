// Package hypergraph provides the query-structure machinery of the
// paper: hypergraphs of join queries, GYO elimination and α/β-acyclicity
// (Definition A.3), elimination orders and induced width (Definition
// E.5), exact and heuristic treewidth, and tree decompositions
// (Definition A.4).
package hypergraph

import (
	"fmt"
	"sort"
)

// Hypergraph has vertices 0..n-1 (with optional names) and a list of
// hyperedges, each a set of vertices.
type Hypergraph struct {
	names []string
	edges [][]int
}

// New creates a hypergraph with n unnamed vertices.
func New(n int) *Hypergraph {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("A%d", i+1)
	}
	return &Hypergraph{names: names}
}

// NewNamed creates a hypergraph with the given vertex names.
func NewNamed(names []string) *Hypergraph {
	return &Hypergraph{names: append([]string(nil), names...)}
}

// N returns the number of vertices.
func (h *Hypergraph) N() int { return len(h.names) }

// Names returns the vertex names.
func (h *Hypergraph) Names() []string { return h.names }

// Edges returns the hyperedges (sorted vertex lists).
func (h *Hypergraph) Edges() [][]int { return h.edges }

// AddEdge adds a hyperedge over the given vertices.
func (h *Hypergraph) AddEdge(vertices ...int) error {
	if len(vertices) == 0 {
		return fmt.Errorf("hypergraph: empty edge")
	}
	e := append([]int(nil), vertices...)
	sort.Ints(e)
	for i, v := range e {
		if v < 0 || v >= len(h.names) {
			return fmt.Errorf("hypergraph: vertex %d out of range", v)
		}
		if i > 0 && e[i-1] == v {
			return fmt.Errorf("hypergraph: repeated vertex %d in edge", v)
		}
	}
	h.edges = append(h.edges, e)
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (h *Hypergraph) MustAddEdge(vertices ...int) {
	if err := h.AddEdge(vertices...); err != nil {
		panic(err)
	}
}

// edgeMask returns the bitmask of an edge (requires N <= 62).
func edgeMask(e []int) uint64 {
	var m uint64
	for _, v := range e {
		m |= 1 << uint(v)
	}
	return m
}

// PrimalAdjacency returns the adjacency bitmasks of the primal (Gaifman)
// graph: two vertices are adjacent when they share a hyperedge.
func (h *Hypergraph) PrimalAdjacency() []uint64 {
	n := h.N()
	if n > 62 {
		panic("hypergraph: more than 62 vertices")
	}
	adj := make([]uint64, n)
	for _, e := range h.edges {
		m := edgeMask(e)
		for _, v := range e {
			adj[v] |= m &^ (1 << uint(v))
		}
	}
	return adj
}

// GYO runs GYO elimination (Definition A.3): repeatedly remove vertices
// contained in at most one edge, and edges contained in other edges. It
// returns the order in which vertices were eliminated and whether the
// hypergraph is α-acyclic (elimination emptied it). Vertices in no edge
// are eliminated first.
func (h *Hypergraph) GYO() (order []int, acyclic bool) {
	n := h.N()
	// Working copy of edges as masks; drop duplicates.
	var edges []uint64
	seen := map[uint64]bool{}
	for _, e := range h.edges {
		m := edgeMask(e)
		if !seen[m] {
			seen[m] = true
			edges = append(edges, m)
		}
	}
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		inAny := false
		for _, m := range edges {
			if m>>uint(v)&1 == 1 {
				inAny = true
				break
			}
		}
		if !inAny {
			order = append(order, v)
			removed[v] = true
		}
	}
	for {
		progress := false
		// Remove edges contained in other edges (or empty).
		for i := 0; i < len(edges); i++ {
			if edges[i] == 0 {
				edges = append(edges[:i], edges[i+1:]...)
				i--
				progress = true
				continue
			}
			for j := range edges {
				if j != i && edges[i]&^edges[j] == 0 && (edges[i] != edges[j] || j < i) {
					edges = append(edges[:i], edges[i+1:]...)
					i--
					progress = true
					break
				}
			}
		}
		// Remove private vertices (in at most one edge).
		for v := 0; v < n; v++ {
			if removed[v] {
				continue
			}
			count := 0
			for _, m := range edges {
				if m>>uint(v)&1 == 1 {
					count++
				}
			}
			if count <= 1 {
				removed[v] = true
				order = append(order, v)
				for i := range edges {
					edges[i] &^= 1 << uint(v)
				}
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	acyclic = len(edges) == 0
	if acyclic {
		// Ensure every vertex appears in the order.
		for v := 0; v < n; v++ {
			if !removed[v] {
				order = append(order, v)
			}
		}
	}
	return order, acyclic
}

// AlphaAcyclic reports whether the hypergraph is α-acyclic.
func (h *Hypergraph) AlphaAcyclic() bool {
	_, ok := h.GYO()
	return ok
}

// BetaAcyclic reports whether every subset of edges is α-acyclic
// (Definition A.3). Exponential in the number of edges; intended for
// query-sized inputs.
func (h *Hypergraph) BetaAcyclic() bool {
	m := len(h.edges)
	if m > 20 {
		panic("hypergraph: BetaAcyclic limited to 20 edges")
	}
	for sub := uint(1); sub < 1<<uint(m); sub++ {
		g := NewNamed(h.names)
		for i := 0; i < m; i++ {
			if sub>>uint(i)&1 == 1 {
				g.MustAddEdge(h.edges[i]...)
			}
		}
		if !g.AlphaAcyclic() {
			return false
		}
	}
	return true
}
