package hypergraph

import (
	"math/rand"
	"testing"
)

// triangle: edges {0,1},{1,2},{0,2}.
func triangle() *Hypergraph {
	h := New(3)
	h.MustAddEdge(0, 1)
	h.MustAddEdge(1, 2)
	h.MustAddEdge(0, 2)
	return h
}

// path of k vertices: edges {0,1},{1,2},...
func path(k int) *Hypergraph {
	h := New(k)
	for i := 0; i+1 < k; i++ {
		h.MustAddEdge(i, i+1)
	}
	return h
}

// cycle of k vertices.
func cycle(k int) *Hypergraph {
	h := path(k)
	h.MustAddEdge(k-1, 0)
	return h
}

// clique of k vertices via binary edges.
func clique(k int) *Hypergraph {
	h := New(k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			h.MustAddEdge(i, j)
		}
	}
	return h
}

func TestAddEdgeValidation(t *testing.T) {
	h := New(2)
	if err := h.AddEdge(); err == nil {
		t.Error("empty edge accepted")
	}
	if err := h.AddEdge(0, 2); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if err := h.AddEdge(1, 1); err == nil {
		t.Error("repeated vertex accepted")
	}
	if err := h.AddEdge(1, 0); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if h.Edges()[0][0] != 0 {
		t.Error("edge not sorted")
	}
}

func TestGYOAcyclicity(t *testing.T) {
	cases := []struct {
		name string
		h    *Hypergraph
		want bool
	}{
		{"triangle-binary", triangle(), false},
		{"path4", path(4), true},
		{"cycle4", cycle(4), false},
		{"single-edge", func() *Hypergraph { h := New(3); h.MustAddEdge(0, 1, 2); return h }(), true},
		{"triangle-plus-cover", func() *Hypergraph {
			h := triangle()
			h.MustAddEdge(0, 1, 2) // a covering edge makes it α-acyclic
			return h
		}(), true},
		{"isolated-vertices", New(3), true},
	}
	for _, c := range cases {
		order, got := c.h.GYO()
		if got != c.want {
			t.Errorf("%s: acyclic = %v, want %v", c.name, got, c.want)
		}
		if got && len(order) != c.h.N() {
			t.Errorf("%s: GYO order %v incomplete", c.name, order)
		}
	}
}

func TestBetaAcyclic(t *testing.T) {
	// α-acyclic but not β-acyclic: triangle plus covering edge.
	h := triangle()
	h.MustAddEdge(0, 1, 2)
	if !h.AlphaAcyclic() {
		t.Fatal("triangle+cover should be α-acyclic")
	}
	if h.BetaAcyclic() {
		t.Error("triangle+cover should not be β-acyclic")
	}
	if !path(4).BetaAcyclic() {
		t.Error("path should be β-acyclic")
	}
}

func TestTreewidthExact(t *testing.T) {
	cases := []struct {
		name string
		h    *Hypergraph
		want int
	}{
		{"single-vertex", New(1), 0},
		{"path5", path(5), 1},
		{"triangle", triangle(), 2},
		{"cycle4", cycle(4), 2},
		{"cycle6", cycle(6), 2},
		{"clique4", clique(4), 3},
		{"clique6", clique(6), 5},
		{"star", func() *Hypergraph {
			h := New(5)
			for i := 1; i < 5; i++ {
				h.MustAddEdge(0, i)
			}
			return h
		}(), 1},
	}
	for _, c := range cases {
		w, order, err := c.h.Treewidth()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if w != c.want {
			t.Errorf("%s: treewidth = %d, want %d", c.name, w, c.want)
		}
		// The returned order must realize the width.
		iw, err := c.h.InducedWidth(order)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if iw != w {
			t.Errorf("%s: order %v has induced width %d, want %d", c.name, order, iw, w)
		}
	}
}

func TestInducedWidthValidation(t *testing.T) {
	h := triangle()
	if _, err := h.InducedWidth([]int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := h.InducedWidth([]int{0, 0, 1}); err == nil {
		t.Error("non-permutation accepted")
	}
	// For the triangle every order has width 2.
	w, err := h.InducedWidth([]int{2, 1, 0})
	if err != nil || w != 2 {
		t.Errorf("InducedWidth = %d, %v", w, err)
	}
}

func TestMinFillMatchesExactOnSmallGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(4)
		h := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					h.MustAddEdge(i, j)
				}
			}
		}
		exact, _, err := h.Treewidth()
		if err != nil {
			t.Fatal(err)
		}
		_, heur := h.MinFillOrder()
		if heur < exact {
			t.Fatalf("trial %d: heuristic width %d below exact %d", trial, heur, exact)
		}
	}
}

func TestEliminationOrderWidthForPaths(t *testing.T) {
	// Elimination width 1 orders exist exactly for forests (treewidth 1);
	// Theorem 4.7 relies on this.
	order, w := path(6).EliminationOrder()
	if w != 1 {
		t.Fatalf("path width = %d, want 1", w)
	}
	if iw, _ := path(6).InducedWidth(order); iw != 1 {
		t.Errorf("order %v has induced width %d", order, iw)
	}
}

func TestDecompositionFromOrder(t *testing.T) {
	graphs := map[string]*Hypergraph{
		"triangle": triangle(),
		"path5":    path(5),
		"cycle5":   cycle(5),
		"clique4":  clique(4),
		"bowtie": func() *Hypergraph {
			h := New(2)
			h.MustAddEdge(0)
			h.MustAddEdge(0, 1)
			h.MustAddEdge(1)
			return h
		}(),
	}
	for name, h := range graphs {
		w, order, err := h.Treewidth()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d, err := h.DecompositionFromOrder(order)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := d.Verify(h); err != nil {
			t.Errorf("%s: invalid decomposition: %v", name, err)
		}
		if d.Width() != w {
			t.Errorf("%s: decomposition width %d, treewidth %d", name, d.Width(), w)
		}
	}
}

func TestDecompositionVerifyCatchesBadTrees(t *testing.T) {
	h := path(3)
	// Edge {1,2} missing from all bags.
	bad := &Decomposition{Bags: [][]int{{0, 1}, {2}}, Edges: [][2]int{{0, 1}}}
	if err := bad.Verify(h); err == nil {
		t.Error("missing-edge decomposition verified")
	}
	// Disconnected occurrence of vertex 1.
	bad = &Decomposition{Bags: [][]int{{0, 1}, {1, 2}, {0}}, Edges: [][2]int{{0, 2}, {2, 1}}}
	if err := bad.Verify(h); err == nil {
		t.Error("running-intersection violation verified")
	}
	// Wrong edge count.
	bad = &Decomposition{Bags: [][]int{{0, 1}, {1, 2}}, Edges: nil}
	if err := bad.Verify(h); err == nil {
		t.Error("disconnected tree verified")
	}
}

func TestRandomDecompositionsVerify(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(6)
		h := New(n)
		for e := 0; e < n; e++ {
			size := 1 + r.Intn(3)
			verts := r.Perm(n)[:size]
			h.MustAddEdge(verts...)
		}
		for _, buildOrder := range [][]int{nil, r.Perm(n)} {
			order := buildOrder
			if order == nil {
				order, _ = h.EliminationOrder()
			}
			d, err := h.DecompositionFromOrder(order)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Verify(h); err != nil {
				t.Fatalf("trial %d order %v: %v", trial, order, err)
			}
		}
	}
}

func TestRoot(t *testing.T) {
	h := path(4)
	order, _ := h.EliminationOrder()
	d, err := h.DecompositionFromOrder(order)
	if err != nil {
		t.Fatal(err)
	}
	parent := d.Root()
	if parent[0] != -1 {
		t.Errorf("root parent = %d", parent[0])
	}
	roots := 0
	for _, p := range parent {
		if p == -1 {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("found %d roots", roots)
	}
}

func TestGYOOrderUsableAsSAO(t *testing.T) {
	// For an α-acyclic query the reverse GYO order drives Theorem D.8;
	// sanity: the order touches all vertices exactly once.
	h := New(4)
	h.MustAddEdge(0, 1)
	h.MustAddEdge(1, 2)
	h.MustAddEdge(2, 3)
	order, ok := h.GYO()
	if !ok {
		t.Fatal("path not acyclic?")
	}
	seen := map[int]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("vertex %d repeated in GYO order %v", v, order)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Fatalf("GYO order %v incomplete", order)
	}
}
