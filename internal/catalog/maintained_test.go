package catalog

import (
	"fmt"
	"math/rand"
	"testing"

	"tetrisjoin/internal/baseline"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

// pathCatalog ingests a 3-atom path instance R1(A,B) ⋈ R2(B,C) ⋈ R3(C,D)
// into a fresh catalog and returns it with the query text.
func pathCatalog(t *testing.T, n int, d uint8, seed int64) (*Catalog, string) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	cat := New()
	for i := 1; i <= 3; i++ {
		rel := relation.MustNewUniform(fmt.Sprintf("R%d", i), []string{"X", "Y"}, d)
		for k := 0; k < n; k++ {
			rel.MustInsert(uint64(r.Intn(1<<d)), uint64(r.Intn(1<<d)))
		}
		if _, err := cat.Ingest(rel); err != nil {
			t.Fatal(err)
		}
	}
	return cat, "R1(A,B), R2(B,C), R3(C,D)"
}

// scratchRecompute executes the query from scratch over the catalog's
// CURRENT relation versions with the given SAO, fresh indexes and all —
// the reference a maintained result must match byte for byte.
func scratchRecompute(t *testing.T, cat *Catalog, text string, sao []string) [][]uint64 {
	t.Helper()
	q, err := cat.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	res, err := join.Execute(q, join.Options{Mode: core.Preloaded, Parallelism: 1, SAOVars: sao})
	if err != nil {
		t.Fatal(err)
	}
	return res.Tuples
}

func assertSameTuples(t *testing.T, label string, got, want [][]uint64) {
	t.Helper()
	if d := baseline.FirstDivergence(got, want); d != nil {
		t.Fatalf("%s: %d tuples vs %d; first divergence at #%d: got %v, want %v",
			label, len(got), len(want), d.Index, d.Got, d.Want)
	}
}

func TestMaintainedPatchAppend(t *testing.T) {
	cat, text := pathCatalog(t, 60, 6, 1)
	m, err := cat.Maintain(text, join.Options{Mode: core.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	sao := m.Plan().SAOVars()

	for i := 0; i < 5; i++ {
		tup := relation.Tuple{uint64(i), uint64((i * 7) % 64)}
		if _, err := cat.Append("R2", tup); err != nil {
			t.Fatal(err)
		}
		res, err := m.Execute(join.Options{})
		if err != nil {
			t.Fatal(err)
		}
		assertSameTuples(t, fmt.Sprintf("append %d", i), res.Tuples, scratchRecompute(t, cat, text, sao))
		last := m.LastRefresh()
		if last.Kind != "patched" && last.Kind != "none" {
			t.Fatalf("append %d refreshed via %q, want a patch (or none for a duplicate)", i, last.Kind)
		}
		if last.Kind == "patched" {
			// One atom references R2: exactly one delta pass, and the
			// refresh builds at most the delta index for it.
			if last.Passes != 1 {
				t.Fatalf("append %d ran %d passes, want 1", i, last.Passes)
			}
			if res.Stats.IndexBuilds > 1 {
				t.Fatalf("append %d built %d indexes during refresh, want <= 1", i, res.Stats.IndexBuilds)
			}
		}
	}
	if m.Recomputes() != 0 {
		t.Fatalf("append-only trickle recomputed %d times", m.Recomputes())
	}
	// A second Execute with no writes in between is free.
	res, err := m.Execute(join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.LastRefresh().Kind != "none" || res.Stats.Resolutions != 0 || res.Stats.IndexBuilds != 0 {
		t.Fatalf("idle Execute did work: %+v", m.LastRefresh())
	}
}

func TestMaintainedPatchDelete(t *testing.T) {
	cat, text := pathCatalog(t, 60, 6, 2)
	m, err := cat.Maintain(text, join.Options{Mode: core.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	sao := m.Plan().SAOVars()

	for i := 0; i < 4; i++ {
		rel, _ := cat.Relation("R1")
		victim := rel.Tuples()[i*3]
		if _, err := cat.Delete("R1", victim); err != nil {
			t.Fatal(err)
		}
		res, err := m.Execute(join.Options{})
		if err != nil {
			t.Fatal(err)
		}
		assertSameTuples(t, fmt.Sprintf("delete %d", i), res.Tuples, scratchRecompute(t, cat, text, sao))
		if k := m.LastRefresh().Kind; k != "patched" {
			t.Fatalf("delete %d refreshed via %q, want patched", i, k)
		}
	}
	if m.Recomputes() != 0 {
		t.Fatalf("delete trickle recomputed %d times", m.Recomputes())
	}
}

// Self-joins: the changed relation binds several atoms, so the patch
// runs one staggered pass per atom and must still be exact.
func TestMaintainedSelfJoinTriangle(t *testing.T) {
	r := relation.MustNewUniform("R", []string{"s", "d"}, 4)
	for _, e := range [][2]uint64{{1, 2}, {2, 3}, {1, 3}, {3, 4}, {2, 4}, {4, 5}} {
		r.MustInsert(e[0], e[1])
	}
	cat := New()
	if _, err := cat.Ingest(r); err != nil {
		t.Fatal(err)
	}
	text := "R(A,B), R(B,C), R(A,C)"
	m, err := cat.Maintain(text, join.Options{Mode: core.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	sao := m.Plan().SAOVars()

	steps := []struct {
		op  string
		tup relation.Tuple
	}{
		{"append", relation.Tuple{3, 5}}, // completes (3,4,5)
		{"append", relation.Tuple{5, 6}},
		{"delete", relation.Tuple{2, 3}}, // kills (1,2,3) and (2,3,4) if present
		{"append", relation.Tuple{2, 3}}, // brings them back
		{"delete", relation.Tuple{9, 9}}, // absent: no-op delta
	}
	for i, s := range steps {
		var err error
		if s.op == "append" {
			_, err = cat.Append("R", s.tup)
		} else {
			_, err = cat.Delete("R", s.tup)
		}
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Execute(join.Options{})
		if err != nil {
			t.Fatal(err)
		}
		assertSameTuples(t, fmt.Sprintf("step %d (%s %v)", i, s.op, s.tup),
			res.Tuples, scratchRecompute(t, cat, text, sao))
		last := m.LastRefresh()
		switch {
		case i == 4:
			if last.Kind != "none" {
				t.Fatalf("no-op delete refreshed via %q", last.Kind)
			}
		case last.Kind != "patched":
			t.Fatalf("step %d refreshed via %q, want patched", i, last.Kind)
		case last.Passes != 3:
			t.Fatalf("step %d ran %d passes, want 3 (one per atom of R)", i, last.Passes)
		}
	}
	if m.Recomputes() != 0 {
		t.Fatalf("self-join trickle recomputed %d times", m.Recomputes())
	}
}

// A span folding an append and a delete between refreshes is a mixed
// delta: the patch rule must not guess — exact fallback to recompute.
func TestMaintainedMixedSpanRecomputes(t *testing.T) {
	cat, text := pathCatalog(t, 40, 6, 3)
	m, err := cat.Maintain(text, join.Options{Mode: core.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	sao := m.Plan().SAOVars()
	rel, _ := cat.Relation("R1")
	victim := rel.Tuples()[0]
	if _, err := cat.Append("R1", relation.Tuple{63, 63}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Delete("R1", victim); err != nil {
		t.Fatal(err)
	}
	res, err := m.Execute(join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k := m.LastRefresh().Kind; k != "recomputed" {
		t.Fatalf("mixed span refreshed via %q, want recomputed", k)
	}
	assertSameTuples(t, "mixed span", res.Tuples, scratchRecompute(t, cat, text, sao))
	if m.Recomputes() != 1 {
		t.Fatalf("recomputes = %d, want 1", m.Recomputes())
	}
}

// Two relations changing between refreshes: still patched (sequential
// per-relation decomposition), still exact.
func TestMaintainedTwoRelationsChanged(t *testing.T) {
	cat, text := pathCatalog(t, 50, 6, 4)
	m, err := cat.Maintain(text, join.Options{Mode: core.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	sao := m.Plan().SAOVars()
	if _, err := cat.Append("R1", relation.Tuple{1, 2}, relation.Tuple{3, 4}); err != nil {
		t.Fatal(err)
	}
	r3, _ := cat.Relation("R3")
	if _, err := cat.Delete("R3", r3.Tuples()[5]); err != nil {
		t.Fatal(err)
	}
	res, err := m.Execute(join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k := m.LastRefresh().Kind; k != "patched" {
		t.Fatalf("two-relation change refreshed via %q, want patched", k)
	}
	assertSameTuples(t, "two relations", res.Tuples, scratchRecompute(t, cat, text, sao))
}

// Regression for the bug this PR fixes: a 1-tuple Append must not
// rebuild indexes in full — not the changed relation's (each carried
// spec becomes an O(1)-sized delta layer) and certainly not the
// unchanged relations'. Pinned: the catalog-wide full-build count
// (IndexBuilds − DeltaIndexBuilds) stays flat across the append, and
// the per-append build total is the changed relation's spec count, not
// O(#specs × #relations).
func TestAppendDoesNotRebuildIndexes(t *testing.T) {
	cat, text := pathCatalog(t, 100, 6, 5)
	// Warm every access path the query needs (3 relations × 1 SAO order
	// each) plus an extra maintained order per relation.
	for _, name := range cat.Names() {
		rel, _ := cat.Relation(name)
		if _, err := cat.Ingest(rel, BTreeSpecFor(rel)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cat.Execute(text, join.Options{Mode: core.Preloaded, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}

	before := cat.Stats()
	fullBefore := before.IndexBuilds - before.DeltaIndexBuilds

	if _, err := cat.Append("R2", relation.Tuple{0, 0}); err != nil {
		t.Fatal(err)
	}

	after := cat.Stats()
	fullAfter := after.IndexBuilds - after.DeltaIndexBuilds
	if fullAfter != fullBefore {
		t.Fatalf("1-tuple append performed %d full index rebuilds", fullAfter-fullBefore)
	}
	// Every build the append did perform is an O(1)-sized layer, one per
	// spec carried on R2 — independent of the other relations.
	r2, _ := cat.Relation("R2")
	specs := 0
	for _, name := range cat.Names() {
		if name == "R2" {
			set := catSetFor(t, cat, r2)
			specs = set.Len()
		}
	}
	builds := after.IndexBuilds - before.IndexBuilds
	if builds != int64(specs) {
		t.Fatalf("append charged %d builds, want %d (one layer per spec of R2)", builds, specs)
	}
	if builds > 2 {
		t.Fatalf("append charged %d builds; O(1) expected", builds)
	}

	// A sustained append stream must ALSO never pay a full rebuild
	// synchronously: delta chains used to hit index.Set.Derive's depth
	// cap and rebuild on the write path, now the background compactor
	// folds them first. Pinned: the write-path full-build count
	// (IndexBuilds − DeltaIndexBuilds − CompactionBuilds) stays flat
	// across the whole stream, chains stay below the emergency cap, and
	// compactions actually happened.
	r := rand.New(rand.NewSource(7))
	base := cat.Stats()
	writePathFull := func(s Stats) int64 { return s.IndexBuilds - s.DeltaIndexBuilds - s.CompactionBuilds }
	for i := 0; i < 40; i++ {
		tup := relation.Tuple{uint64(r.Intn(64)), uint64(r.Intn(64))}
		if _, err := cat.Append("R2", tup); err != nil {
			t.Fatal(err)
		}
		cat.WaitCompactions()
		st := cat.Stats()
		if got, want := writePathFull(st), writePathFull(base); got != want {
			t.Fatalf("append %d of stream performed %d synchronous full rebuilds", i, got-want)
		}
		cur, _ := cat.Relation("R2")
		if d := catSetFor(t, cat, cur).MaxLayerDepth(); d >= 16 {
			t.Fatalf("append %d of stream left a chain of depth %d; compactor should have folded it", i, d)
		}
	}
	if st := cat.Stats(); st.Compactions == 0 {
		t.Fatal("40-append stream never triggered a background compaction")
	}
}

// catSetFor exposes the registry of a snapshot for the regression
// assertion (same package: test-only accessor).
func catSetFor(t *testing.T, c *Catalog, rel *relation.Relation) *index.Set {
	t.Helper()
	return c.setFor(rel)
}

// BTreeSpecFor is a schema-order B-tree spec for the relation.
func BTreeSpecFor(rel *relation.Relation) index.Spec {
	return index.BTreeSpec(rel.Attrs()...)
}

// A long steady-state trickle: per-iteration refresh work stays
// delta-sized (index builds bounded by the changed atom count), the
// patch path never degrades to recomputes, and the result tracks the
// scratch reference throughout — including across the index layer
// chain's depth-cap rebuilds.
func TestMaintainedSteadyTrickle(t *testing.T) {
	cat, text := pathCatalog(t, 80, 6, 6)
	m, err := cat.Maintain(text, join.Options{Mode: core.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	sao := m.Plan().SAOVars()
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 40; i++ {
		tup := relation.Tuple{uint64(r.Intn(64)), uint64(r.Intn(64))}
		rel, _ := cat.Relation("R2")
		fresh := !rel.Contains(tup...)
		if _, err := cat.Append("R2", tup); err != nil {
			t.Fatal(err)
		}
		res, err := m.Execute(join.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fresh {
			if k := m.LastRefresh().Kind; k != "patched" {
				t.Fatalf("iteration %d refreshed via %q, want patched", i, k)
			}
			if res.Stats.IndexBuilds > 1 {
				t.Fatalf("iteration %d built %d indexes, want <= 1 (one changed atom)", i, res.Stats.IndexBuilds)
			}
		}
		if i%8 == 0 {
			assertSameTuples(t, fmt.Sprintf("iteration %d", i), res.Tuples,
				scratchRecompute(t, cat, text, sao))
		}
	}
	if m.Recomputes() != 0 {
		t.Fatalf("steady trickle recomputed %d times", m.Recomputes())
	}
	if m.Patches() == 0 {
		t.Fatal("steady trickle never patched")
	}
	// Final exactness check.
	res, err := m.Execute(join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTuples(t, "final", res.Tuples, scratchRecompute(t, cat, text, sao))
}

// Regression for a cross-relation span interaction: an insert on one
// relation folded with a delete on another (each per-relation delta
// pure, so the span patches). The insert pass for the
// alphabetically-earlier relation runs against the pre-delete state of
// the other, so its additions can join through tuples the delete step
// then removes — the removals must filter the additions, not just the
// prior result.
func TestMaintainedCrossRelationInsertDeleteSpan(t *testing.T) {
	r := relation.MustNewUniform("R", []string{"X", "Y"}, 4)
	s := relation.MustNewUniform("S", []string{"X", "Y"}, 4)
	for i := uint64(0); i < 10; i++ {
		r.MustInsert(i, 2)
		s.MustInsert(i, i)
	}
	s.MustInsert(2, 3)
	cat := New()
	for _, rel := range []*relation.Relation{r, s} {
		if _, err := cat.Ingest(rel); err != nil {
			t.Fatal(err)
		}
	}
	text := "R(A,B), S(B,C)"
	m, err := cat.Maintain(text, join.Options{Mode: core.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	sao := m.Plan().SAOVars()

	// One unrefreshed span: R gains (12,2), S loses (2,3). The new R
	// tuple joins (2,3) only through the tuple being deleted, so the
	// net-new output (12,2,3) must NOT survive the patch.
	if _, err := cat.Append("R", relation.Tuple{12, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Delete("S", relation.Tuple{2, 3}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Execute(join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k := m.LastRefresh().Kind; k != "patched" {
		t.Fatalf("span refreshed via %q, want patched", k)
	}
	assertSameTuples(t, "cross-relation span", res.Tuples, scratchRecompute(t, cat, text, sao))
	for _, tup := range res.Tuples {
		if tup[0] == 12 && tup[2] == 3 {
			t.Fatalf("stale addition (12,2,3) survived the delete step: %v", res.Tuples)
		}
	}
}
