package catalog

import (
	"fmt"
	"math/big"
	"strings"
	"time"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
)

// Prepared is a handle on a cached, executable plan: the product of
// ingest-time index work plus one preparation. Executions reuse the
// plan's indexes, memoized B(Q) gap set and (in Preloaded mode) shared
// knowledge base, so they perform zero index builds — which their
// Stats.IndexBuilds == 0 proves per run.
type Prepared struct {
	plan *join.Plan
	mode core.Mode

	builds   int64 // indexes constructed during this preparation
	cacheHit bool

	// Feedback routing: the owning catalog and the query-shape key
	// executions report divergent resolution counts under. label is the
	// version-free shape executions are observed under (telemetry must
	// aggregate across versions; feedback must not).
	cat   *Catalog
	shape string
	label string
}

// Plan returns the underlying immutable plan.
func (p *Prepared) Plan() *join.Plan { return p.plan }

// IndexBuilds returns the number of indexes this preparation had to
// construct: 0 on a plan-cache hit or when every needed order was
// already maintained, the distinct (relation, order) count otherwise.
func (p *Prepared) IndexBuilds() int64 { return p.builds }

// CacheHit reports whether the preparation was served from the plan
// cache.
func (p *Prepared) CacheHit() bool { return p.cacheHit }

// Mode returns the mode the statement runs in. The mode is part of the
// statement's identity — it is in the plan-cache key — so Execute
// always uses it; prepare another statement to run a different mode.
func (p *Prepared) Mode() core.Mode { return p.mode }

// Execute runs the prepared plan. Execution-time options (parallelism,
// limits, budget, callbacks) come from opts; the mode is fixed at
// preparation (opts.Mode is ignored — see Mode) and Preloaded
// executions reuse the plan's shared knowledge base. The reported
// Stats.IndexBuilds is always 0: prepared executions never construct
// indexes.
func (p *Prepared) Execute(opts join.Options) (*join.Result, error) {
	opts.Mode = p.mode
	opts.SharedBase = true
	start := time.Now()
	res, err := p.plan.Execute(opts)
	if err != nil {
		return nil, err
	}
	if p.cat != nil {
		p.cat.observeExec(p.label, "exec", start)
	}
	p.observe(opts, res.Stats)
	return res, nil
}

// replanDivergence and replanSlack gate the feedback loop: an execution
// whose observed resolution count exceeds the plan's estimate by more
// than the factor (plus an absolute slack that keeps tiny queries
// quiet) records the observation, invalidating the cached plan. The
// planner's Σ-of-prefix-AGM estimate upper-bounds the resolution count
// of a well-chosen order up to polylog factors, so a 4× overshoot
// signals an order the cost model got wrong, not estimator noise.
const (
	replanDivergence = 4.0
	replanSlack      = 128.0
)

// observe feeds an execution's work measurement back to the catalog's
// planner-feedback registry when it diverges from the plan's estimate.
// Limited runs (output/resolution caps, shared budgets, streaming
// stops) are skipped: their truncated counts measure the limit, not
// the order.
func (p *Prepared) observe(opts join.Options, stats core.Stats) {
	if p.cat == nil {
		return
	}
	if opts.MaxOutput > 0 || opts.MaxResolutions > 0 || opts.Budget != nil || opts.OnOutput != nil {
		return
	}
	d := p.plan.Decision()
	if d == nil || !d.Planned {
		return
	}
	obs := float64(stats.Resolutions)
	if obs > d.EstimatedResolutions*replanDivergence+replanSlack {
		p.cat.recordFeedback(p.shape, join.FeedbackKey(p.plan.SAOVars()), obs)
	}
}

// Count runs the counting variant over the prepared plan.
func (p *Prepared) Count(opts join.Options) (*big.Int, core.Stats, error) {
	start := time.Now()
	n, stats, err := p.plan.Count(opts)
	if err == nil && p.cat != nil {
		p.cat.observeExec(p.label, "count", start)
	}
	return n, stats, err
}

// Covers runs the Boolean variant over the prepared plan: covered means
// the join output is empty; otherwise the report carries a witness
// output tuple.
func (p *Prepared) Covers(opts join.Options) (*core.CoverReport, error) {
	return p.plan.Covers(opts)
}

// shapeKey identifies the query shape over pinned relation versions:
// the part of a preparation's identity that is independent of how it
// was planned. Relations are identified by (ID, version) — stamps that
// no two distinct tuple-set states share — so an ingest of a new
// version changes the key and the stale plan simply stops being found.
// Atoms carrying explicit indexes pin them by instance identity: a plan
// built over caller-supplied index structures must never be served to a
// preparation that asked for different ones. Planner feedback is keyed
// by this shape: observations apply to every strategy/mode the shape
// runs under.
func shapeKey(q *join.Query) string {
	var sb strings.Builder
	for i, a := range q.Atoms() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s#%d@%d(%s)", a.Relation.Name(), a.Relation.ID(), a.Relation.Version(), strings.Join(a.Vars, ","))
		for _, ix := range a.Indexes {
			fmt.Fprintf(&sb, "!%p", ix)
		}
	}
	return sb.String()
}

// ShapeLabel is the version-free rendering of a query's shape —
// relation names and variable bindings only, e.g.
// "R(A,B),R(B,C),R(A,C)". Unlike shapeKey it is stable across relation
// versions, which makes it the right key for telemetry (a latency
// histogram must aggregate a shape's executions across appends, not
// fragment into one series per version) and the wrong key for plan
// caching (which shapeKey covers).
func ShapeLabel(q *join.Query) string {
	var sb strings.Builder
	for i, a := range q.Atoms() {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s(%s)", a.Relation.Name(), strings.Join(a.Vars, ","))
	}
	return sb.String()
}

// planKey builds the cache identity of a preparation: the shape, the
// resolved SAO, the mode and — for planner-made decisions — the
// decision fingerprint, which covers the relation statistics, the
// chosen index families and any feedback that shaped the choice. The
// fingerprint is what makes re-planning effective: recording a
// divergent observation changes the next decision's fingerprint, so the
// stale auto-plan can never be served again even though shape, SAO and
// mode may all be unchanged.
func planKey(shape string, d *join.Decision, mode core.Mode) string {
	var sb strings.Builder
	sb.WriteString(shape)
	fmt.Fprintf(&sb, "|sao=%s|mode=%v", strings.Join(d.SAOVars, ","), mode)
	if d.Planned {
		fmt.Fprintf(&sb, "|plan=%016x", d.Fingerprint)
	}
	return sb.String()
}

// Prepare parses the query against the catalog's current relation
// versions and returns an executable prepared statement, served from
// the plan cache when an identical preparation (same shape, same
// relation versions, same SAO, same mode) is live.
func (c *Catalog) Prepare(query string, opts join.Options) (*Prepared, error) {
	q, err := c.Parse(query)
	if err != nil {
		return nil, err
	}
	return c.PrepareQuery(q, opts)
}

// PrepareQuery prepares an already-assembled query. The query's
// relations are pinned by identity: they may be catalog-registered
// versions (the Parse path) or externally built instances, which get
// their own on-demand index registries. Callers must treat relations as
// immutable once planned.
func (c *Catalog) PrepareQuery(q *join.Query, opts join.Options) (*Prepared, error) {
	shape := shapeKey(q)

	// Merge recorded observations for this shape into the planning
	// feedback; caller-supplied entries win on conflict.
	if fb := c.feedbackFor(shape); fb != nil {
		for k, v := range opts.Feedback {
			fb[k] = v
		}
		opts.Feedback = fb
	}
	d, err := join.Decide(q, opts)
	if err != nil {
		return nil, err
	}
	key := planKey(shape, d, opts.Mode)

	label := ShapeLabel(q)
	if plan, ok := c.plans.Get(key); ok {
		c.hits.Add(1)
		return &Prepared{plan: plan, mode: opts.Mode, cacheHit: true, cat: c, shape: shape, label: label}, nil
	}
	c.misses.Add(1)

	// Pin the decision we just resolved: PreparePlan would re-derive it
	// identically, but pinning skips the second planner run and keeps
	// the cache key and the plan definitionally in step.
	opts.Decision = d
	plan, err := join.PreparePlan(q, opts, source{c})
	if err != nil {
		return nil, err
	}
	c.plans.Put(key, plan)
	return &Prepared{plan: plan, mode: opts.Mode, builds: plan.IndexBuilds(), cat: c, shape: shape, label: label}, nil
}

// Execute prepares (with caching) and runs a textual query in one call:
// the serving counterpart of the one-shot join.Execute. The first
// execution of a shape pays preparation (its Stats.IndexBuilds reports
// the indexes built) and runs exactly like the one-shot path; repeated
// executions hit the plan cache, reuse the shared Preloaded base, and
// report IndexBuilds == 0.
func (c *Catalog) Execute(query string, opts join.Options) (*join.Result, error) {
	p, err := c.Prepare(query, opts)
	if err != nil {
		return nil, err
	}
	return p.executeCharged(opts)
}

// ExecuteQuery is Execute over an already-assembled query.
func (c *Catalog) ExecuteQuery(q *join.Query, opts join.Options) (*join.Result, error) {
	p, err := c.PrepareQuery(q, opts)
	if err != nil {
		return nil, err
	}
	return p.executeCharged(opts)
}

// executeCharged runs the statement charging preparation builds to this
// execution's stats. A cache miss executes without the shared base so a
// throwaway catalog — the facade's one-shot wrapper — reproduces the
// standalone engine's work accounting bit for bit; cache hits take the
// amortized path.
func (p *Prepared) executeCharged(opts join.Options) (*join.Result, error) {
	opts.Mode = p.mode
	opts.SharedBase = p.cacheHit
	start := time.Now()
	res, err := p.plan.Execute(opts)
	if err != nil {
		return nil, err
	}
	if p.cat != nil {
		p.cat.observeExec(p.label, "exec", start)
	}
	p.observe(opts, res.Stats)
	res.Stats.IndexBuilds = p.builds
	return res, nil
}

// Count prepares (with caching) and counts a textual query without
// materializing its output.
func (c *Catalog) Count(query string, opts join.Options) (*big.Int, core.Stats, error) {
	p, err := c.Prepare(query, opts)
	if err != nil {
		return nil, core.Stats{}, err
	}
	return p.countCharged(opts)
}

// CountQuery is Count over an already-assembled query.
func (c *Catalog) CountQuery(q *join.Query, opts join.Options) (*big.Int, core.Stats, error) {
	p, err := c.PrepareQuery(q, opts)
	if err != nil {
		return nil, core.Stats{}, err
	}
	return p.countCharged(opts)
}

func (p *Prepared) countCharged(opts join.Options) (*big.Int, core.Stats, error) {
	count, stats, err := p.Count(opts)
	if err != nil {
		return nil, core.Stats{}, err
	}
	stats.IndexBuilds = p.builds
	return count, stats, nil
}
