// Package catalog is the serving-side store of the engine: named,
// versioned relations whose gap-box indexes are built once — at ingest
// or on first demand — and shared read-only by every subsequent query,
// plus an LRU cache of prepared plans keyed by (query shape, relation
// versions, SAO, mode).
//
// The one-shot Execute path re-ingests relations, rebuilds indexes and
// re-derives the SAO on every call: the right shape for reproducing the
// paper's single-instance experiments, the wrong shape for serving
// traffic, where Tetris's Õ(#resolutions) cost model (Lemma 4.5) only
// wins once the per-query constant work is amortized away. The catalog
// completes the immutable-shared vs per-worker split of the parallel
// executor vertically: immutable halves (relation snapshots, indexes,
// memoized B(Q) gap sets, the shared Preloaded knowledge base) now live
// across queries, not just across the workers of one query.
//
// # Version pinning
//
// Ingesting a new version of a relation (Ingest, Append, Delete) never
// mutates the old one: versions are copy-on-write snapshots, indexes
// cover exactly one snapshot, and a prepared plan holds references to
// the snapshot it was planned against. Plans prepared before an update
// therefore keep reading their pinned versions forever; plans prepared
// after see the new version (the old plan-cache entries miss on the new
// version key and age out of the LRU).
package catalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tetrisjoin/internal/index"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

// Options configures a catalog.
type Options struct {
	// PlanCache is the maximum number of prepared plans kept (default
	// 64; negative disables caching).
	PlanCache int
	// DefaultSpecs are index specs maintained eagerly for every ingested
	// relation version, in addition to whatever orders queries demand on
	// the fly. Empty means pure build-on-demand.
	DefaultSpecs []index.Spec
	// CompactDepth is the delta-chain depth at which a relation's index
	// registry is compacted — rebuilt as fresh base indexes — by a
	// background goroutine, off the write path. 0 means the default
	// (defaultCompactDepth); negative disables background compaction,
	// leaving only index.Set.Derive's synchronous depth-cap fallback.
	CompactDepth int
}

const defaultPlanCache = 64

// defaultCompactDepth keeps steady-state chains well under the
// synchronous rebuild cap in index.Set.Derive (16): a trickle of writes
// triggers background folds long before a write would ever pay for a
// full rebuild inline.
const defaultCompactDepth = 8

// Catalog is a concurrency-safe store of named, versioned relations and
// their index registries, with a prepared-plan cache on top. All stored
// state is immutable once published: updates publish new versions,
// readers keep whatever they pinned.
type Catalog struct {
	opts    Options
	builds  atomic.Int64  // total index constructions, all registries
	layered atomic.Int64  // of builds: O(k) delta-layer constructions
	gen     atomic.Uint64 // bumped on every publish; cheap staleness check

	mu    sync.RWMutex
	rels  map[string]*relation.Relation     // current version by name
	sets  map[*relation.Relation]*index.Set // registry per pinned snapshot
	plans *planCache

	hits, misses atomic.Int64

	// Planner feedback: observed resolution counts recorded by divergent
	// executions, keyed by query shape then SAO (prepared.go). A recorded
	// entry changes the decision fingerprint of its shape, so the next
	// preparation misses the plan cache and re-plans with the observation
	// in the candidate pool.
	feedbackMu sync.Mutex
	feedback   map[string]map[string]float64
	replans    atomic.Int64

	// Background delta-chain compaction state (compact.go).
	compactions   atomic.Int64 // completed registry compactions
	compactBuilds atomic.Int64 // of builds: full rebuilds done by the compactor
	compactMu     sync.Mutex
	compacting    map[string]bool // relations with a compaction in flight
	compactWG     sync.WaitGroup

	// execObs, when set, receives one latency sample per prepared or
	// maintained execution (SetExecObserver).
	execObs atomic.Pointer[ExecObserver]
}

// ExecObserver receives one wall-clock latency sample per execution
// through the catalog's serving paths: the version-free query shape
// (relation names and variable bindings, e.g. "R(A,B),R(B,C),R(A,C)"),
// the kind of work ("exec", "count" or "maintained"), and the seconds
// spent. Observers must be cheap and non-blocking — they run inline on
// the execution path; the server wires one into its latency histograms.
type ExecObserver func(shape, kind string, seconds float64)

// SetExecObserver installs (or, with nil, removes) the catalog's
// execution observer. Last writer wins; safe to call concurrently with
// executions.
func (c *Catalog) SetExecObserver(fn ExecObserver) {
	if fn == nil {
		c.execObs.Store(nil)
		return
	}
	c.execObs.Store(&fn)
}

// observeExec reports one completed execution to the observer, if any.
func (c *Catalog) observeExec(shape, kind string, start time.Time) {
	if p := c.execObs.Load(); p != nil {
		(*p)(shape, kind, time.Since(start).Seconds())
	}
}

// New returns an empty catalog with default options.
func New() *Catalog { return NewWithOptions(Options{}) }

// NewWithOptions returns an empty catalog.
func NewWithOptions(opts Options) *Catalog {
	size := opts.PlanCache
	if size == 0 {
		size = defaultPlanCache
	}
	return &Catalog{
		opts:       opts,
		rels:       map[string]*relation.Relation{},
		sets:       map[*relation.Relation]*index.Set{},
		plans:      newPlanCache(size),
		compacting: map[string]bool{},
	}
}

// Ingest registers the relation under its own name, replacing any
// current version, and eagerly builds the given index specs (plus the
// catalog's DefaultSpecs) over it. The relation must not be mutated by
// the caller afterwards — the catalog owns the snapshot; grow it through
// Append/Delete, which publish fresh versions. Returns the published
// version stamp.
func (c *Catalog) Ingest(rel *relation.Relation, specs ...index.Spec) (uint64, error) {
	if rel == nil {
		return 0, fmt.Errorf("catalog: nil relation")
	}
	rel.Tuples() // normalize before publishing: readers must never re-sort
	set := index.NewSet(rel, &c.builds)
	if err := set.Ensure(append(append([]index.Spec{}, c.opts.DefaultSpecs...), specs...)...); err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.rels[rel.Name()]; ok {
		delete(c.sets, old) // outstanding plans keep their own references
	}
	c.rels[rel.Name()] = rel
	c.sets[rel] = set
	c.gen.Add(1)
	return rel.Version(), nil
}

// IngestPrepared registers the relation like Ingest, but lets the
// caller prime the index registry before it is published — the
// segment-backed recovery path: the durable layer Puts indexes loaded
// from segment files (charging zero builds) and Ensures only the specs
// whose segments were missing or corrupt. DefaultSpecs are NOT added
// implicitly; recovery knows the exact spec list from its manifest and
// is responsible for the full set.
func (c *Catalog) IngestPrepared(rel *relation.Relation, prime func(*index.Set) error) (uint64, error) {
	if rel == nil {
		return 0, fmt.Errorf("catalog: nil relation")
	}
	rel.Tuples() // normalize before publishing: readers must never re-sort
	set := index.NewSet(rel, &c.builds)
	if prime != nil {
		if err := prime(set); err != nil {
			return 0, err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.rels[rel.Name()]; ok {
		delete(c.sets, old)
	}
	c.rels[rel.Name()] = rel
	c.sets[rel] = set
	c.gen.Add(1)
	return rel.Version(), nil
}

// IndexSet returns the live index registry for the named relation's
// current version, or nil — the checkpoint freeze path reads built
// indexes out of it without forcing any new builds.
func (c *Catalog) IndexSet(name string) *index.Set {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rel, ok := c.rels[name]
	if !ok {
		return nil
	}
	return c.sets[rel]
}

// Generation returns a counter that increases on every relation publish
// (Ingest, Append, Delete). Callers holding artifacts derived from the
// catalog's current state — e.g. a server session reusing a prepared
// statement for repeated textual queries — compare generations to learn
// in O(1) whether re-preparation could see different data.
func (c *Catalog) Generation() uint64 { return c.gen.Load() }

// Append publishes a new version of the named relation with the tuples
// added, carrying the previous version's index specs forward (each is
// rebuilt over the new snapshot). Running queries and prepared plans
// pinned to the old version are unaffected.
func (c *Catalog) Append(name string, tuples ...relation.Tuple) (uint64, error) {
	return c.update(name, func(r *relation.Relation) (*relation.Relation, error) {
		return r.WithInserted(tuples...)
	})
}

// Delete publishes a new version of the named relation with the tuples
// removed (absent tuples are ignored).
func (c *Catalog) Delete(name string, tuples ...relation.Tuple) (uint64, error) {
	return c.update(name, func(r *relation.Relation) (*relation.Relation, error) {
		return r.WithDeleted(tuples...)
	})
}

// update derives and publishes a new version of a named relation,
// carrying the maintained index specs onto the new snapshot (a serving
// catalog keeps the same access paths warm across versions instead of
// rediscovering them query by query). The carried specs are realized by
// delta layering (index.Set.Derive): a k-tuple append or delete costs
// O(k) per spec — a small layer composed over the prior version's
// immutable build — not a full O(N) rebuild, which is what makes a
// 1-tuple write to a large relation cheap. Writers race optimistically:
// the derive-and-build work happens outside the lock, and a writer that
// loses the publish race simply retries over the new current version,
// so concurrent appends both land instead of one failing.
func (c *Catalog) update(name string, derive func(*relation.Relation) (*relation.Relation, error)) (uint64, error) {
	for {
		c.mu.RLock()
		cur, ok := c.rels[name]
		var prevSet *index.Set
		if ok {
			prevSet = c.sets[cur]
		}
		c.mu.RUnlock()
		if !ok {
			return 0, fmt.Errorf("catalog: unknown relation %q", name)
		}
		next, err := derive(cur)
		if err != nil {
			return 0, err
		}
		next.Tuples() // normalize before publishing
		var set *index.Set
		if prevSet != nil {
			if d, ok := next.DeltaSince(cur.Version()); ok {
				derived, layered, _, err := prevSet.Derive(next, d)
				if err != nil {
					return 0, err
				}
				set = derived
				c.layered.Add(int64(layered))
			}
		}
		if set == nil {
			// No prior registry or no reconstructible delta: rebuild the
			// carried specs in full over the new snapshot.
			set = index.NewSet(next, &c.builds)
			if prevSet != nil {
				if err := set.Ensure(prevSet.SpecList()...); err != nil {
					return 0, err
				}
			}
		}
		c.mu.Lock()
		if c.rels[name] != cur {
			c.mu.Unlock()
			continue // lost the publish race; re-derive from the winner
		}
		delete(c.sets, cur)
		c.rels[name] = next
		c.sets[next] = set
		c.gen.Add(1)
		c.mu.Unlock()
		// Deep chains are folded off the write path: the publish above is
		// done, the compactor swaps in fresh base indexes asynchronously.
		if th := c.compactDepth(); th > 0 && set.MaxLayerDepth() >= th {
			c.scheduleCompact(name)
		}
		return next.Version(), nil
	}
}

// Relation returns the current version of the named relation.
func (c *Catalog) Relation(name string) (*relation.Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.rels[name]
	return r, ok
}

// Names returns the registered relation names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.rels))
	for n := range c.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Specs returns the index specs currently maintained for the named
// relation's registry — what a checkpoint must record so recovery can
// rebuild the same access paths eagerly.
func (c *Catalog) Specs(name string) []index.Spec {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rel, ok := c.rels[name]
	if !ok {
		return nil
	}
	set, ok := c.sets[rel]
	if !ok {
		return nil
	}
	return set.SpecList()
}

// snapshot returns the current name → relation view for query parsing.
func (c *Catalog) snapshot() map[string]*relation.Relation {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*relation.Relation, len(c.rels))
	for n, r := range c.rels {
		out[n] = r
	}
	return out
}

// Parse parses "R(A,B), S(B,C)" notation against the catalog's current
// relation versions. The returned query is pinned to those versions.
func (c *Catalog) Parse(query string) (*join.Query, error) {
	return join.Parse(query, c.snapshot())
}

// setFor returns the index registry pinned to the given relation
// snapshot, creating one for snapshots the catalog has not seen (the
// path taken by PrepareQuery over externally built relations).
func (c *Catalog) setFor(rel *relation.Relation) *index.Set {
	c.mu.RLock()
	set, ok := c.sets[rel]
	c.mu.RUnlock()
	if ok {
		return set
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if set, ok := c.sets[rel]; ok {
		return set
	}
	// Normalize under the lock: two first-time preparations over the
	// same external unsorted relation must not race in its lazy sort.
	rel.Tuples()
	c.evictExternalSetsLocked() // before the add, so the new set survives
	set = index.NewSet(rel, &c.builds)
	c.sets[rel] = set
	return set
}

// externalSetCap bounds registries for snapshots that are not current
// named versions (external relations planned via PrepareQuery): a
// long-lived catalog fed per-request relations must not grow without
// bound. Eviction only drops the cache's reference — plans keep their
// own — at worst costing a rebuild on a later cold preparation.
const externalSetCap = 256

// evictExternalSetsLocked trims c.sets to current named versions plus
// at most externalSetCap external snapshots. Callers hold c.mu.
func (c *Catalog) evictExternalSetsLocked() {
	extra := len(c.sets) - len(c.rels) - externalSetCap
	if extra <= 0 {
		return
	}
	current := make(map[*relation.Relation]bool, len(c.rels))
	for _, r := range c.rels {
		current[r] = true
	}
	for rel := range c.sets {
		if extra <= 0 {
			return
		}
		if !current[rel] {
			delete(c.sets, rel)
			extra--
		}
	}
}

// source is the catalog's join.IndexSource: ad-hoc specs resolve
// through the per-snapshot registries with build-on-demand and caching,
// so whatever family the planner picks is built once per snapshot and
// shared across prepared queries.
type source struct{ c *Catalog }

func (s source) IndexFor(rel *relation.Relation, spec index.Spec) (index.Index, bool, error) {
	return s.c.setFor(rel).Get(spec)
}

// IndexBuilds returns the total number of index constructions the
// catalog has performed since creation (eager, on-demand, and delta
// layers).
func (c *Catalog) IndexBuilds() int64 { return c.builds.Load() }

// DeltaIndexBuilds returns how many of those constructions were O(k)
// delta layers rather than full builds.
func (c *Catalog) DeltaIndexBuilds() int64 { return c.layered.Load() }

// Stats is a point-in-time summary of the catalog.
type Stats struct {
	// Relations is the number of named relations currently registered.
	Relations int
	// IndexSets is the number of pinned snapshots with a registry
	// (current versions plus externally planned snapshots).
	IndexSets int
	// IndexBuilds is the lifetime index construction count.
	IndexBuilds int64
	// DeltaIndexBuilds is the portion of IndexBuilds that were O(k)
	// delta layers composed over a prior version's build (Append/Delete
	// carrying maintained specs forward) rather than full O(N)
	// constructions. IndexBuilds − DeltaIndexBuilds is therefore the
	// full-build count — the quantity incremental maintenance keeps flat
	// under a trickle of writes.
	DeltaIndexBuilds int64
	// PlansCached is the number of prepared plans in the cache.
	PlansCached int
	// PlanHits and PlanMisses count Prepare cache outcomes.
	PlanHits, PlanMisses int64
	// Compactions counts completed background registry compactions;
	// CompactionBuilds the full index rebuilds they performed (included
	// in IndexBuilds, but off the write path). IndexBuilds −
	// DeltaIndexBuilds − CompactionBuilds is therefore the synchronous
	// full-build count a steady write stream must keep flat.
	Compactions, CompactionBuilds int64
	// Replans counts planner re-plan triggers: executions whose observed
	// resolution count diverged from the plan's estimate far enough to
	// record feedback (each recording invalidates the shape's cached
	// plan). FeedbackEntries is the number of (shape, SAO) observations
	// currently held.
	Replans         int64
	FeedbackEntries int
}

// Stats returns a snapshot of the catalog's counters.
func (c *Catalog) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Stats{
		Relations:        len(c.rels),
		IndexSets:        len(c.sets),
		IndexBuilds:      c.builds.Load(),
		DeltaIndexBuilds: c.layered.Load(),
		PlansCached:      c.plans.Len(),
		PlanHits:         c.hits.Load(),
		PlanMisses:       c.misses.Load(),
		Compactions:      c.compactions.Load(),
		CompactionBuilds: c.compactBuilds.Load(),
		Replans:          c.replans.Load(),
		FeedbackEntries:  c.feedbackEntries(),
	}
}

// feedbackFor returns the recorded observations for a query shape
// (nil when none), copied so planning never races recording.
func (c *Catalog) feedbackFor(shape string) map[string]float64 {
	c.feedbackMu.Lock()
	defer c.feedbackMu.Unlock()
	m := c.feedback[shape]
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// recordFeedback stores a divergent observation for (shape, SAO).
// Observations only ratchet upward: a repeat execution observing less
// work than already recorded changes nothing, so a shape re-plans once
// per genuinely new level of divergence instead of thrashing the plan
// cache on run-to-run noise.
func (c *Catalog) recordFeedback(shape, saoKey string, observed float64) {
	c.feedbackMu.Lock()
	defer c.feedbackMu.Unlock()
	if c.feedback == nil {
		c.feedback = map[string]map[string]float64{}
	}
	m := c.feedback[shape]
	if m == nil {
		m = map[string]float64{}
		c.feedback[shape] = m
	}
	if prev, ok := m[saoKey]; ok && prev >= observed {
		return
	}
	m[saoKey] = observed
	c.replans.Add(1)
}

func (c *Catalog) feedbackEntries() int {
	c.feedbackMu.Lock()
	defer c.feedbackMu.Unlock()
	n := 0
	for _, m := range c.feedback {
		n += len(m)
	}
	return n
}
