package catalog

import (
	"math/rand"
	"testing"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

// Compaction is an optimization, never a semantic change: results after
// a fold are byte-identical to a scratch recompute, and the fold leaves
// a shallow registry serving the same specs.
func TestCompactionPreservesResultsAndSpecs(t *testing.T) {
	cat, text := pathCatalog(t, 60, 6, 11)
	if _, err := cat.Execute(text, join.Options{Mode: core.Preloaded, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	r2, _ := cat.Relation("R2")
	specsBefore := len(catSetFor(t, cat, r2).SpecList())

	r := rand.New(rand.NewSource(12))
	for i := 0; i < 12; i++ {
		if _, err := cat.Append("R2", relation.Tuple{uint64(r.Intn(64)), uint64(r.Intn(64))}); err != nil {
			t.Fatal(err)
		}
	}
	cat.WaitCompactions()
	if st := cat.Stats(); st.Compactions == 0 {
		t.Fatal("12 appends never compacted")
	}
	cur, _ := cat.Relation("R2")
	set := catSetFor(t, cat, cur)
	if d := set.MaxLayerDepth(); d >= defaultCompactDepth {
		t.Fatalf("post-compaction chain depth %d, want < %d", d, defaultCompactDepth)
	}
	if got := len(set.SpecList()); got != specsBefore {
		t.Fatalf("compaction changed the maintained specs: %d, want %d", got, specsBefore)
	}

	res, err := cat.Execute(text, join.Options{Mode: core.Preloaded, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTuples(t, "post-compaction", res.Tuples, scratchRecompute(t, cat, text, res.SAO))
}

// Negative CompactDepth disables the background compactor entirely;
// deep chains then fall back to Derive's synchronous cap as before.
func TestCompactionDisabled(t *testing.T) {
	cat := NewWithOptions(Options{CompactDepth: -1})
	rel := relation.MustNewUniform("R", []string{"X", "Y"}, 6)
	rel.MustInsert(1, 2)
	if _, err := cat.Ingest(rel, BTreeSpecFor(rel)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := cat.Append("R", relation.Tuple{uint64(i), uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	cat.WaitCompactions()
	if st := cat.Stats(); st.Compactions != 0 || st.CompactionBuilds != 0 {
		t.Fatalf("disabled compactor ran: %+v", st)
	}
}
