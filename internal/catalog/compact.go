// Background delta-chain compaction.
//
// Append/Delete realize carried index specs as delta layers — O(k)
// construction per write, the product of PR 5 — but layered probes cost
// more than base probes, and index.Set.Derive's only defense used to be
// a *synchronous* full rebuild on the write path once a chain hit its
// depth cap: exactly the latency spike a serving system must not take
// inside a write. The compactor moves that fold off the hot path: when
// a publish leaves a registry with a chain at or past Options.
// CompactDepth, a background goroutine rebuilds the registry's specs as
// fresh base indexes over the current snapshot and swaps it in, so
// steady-state writes never reach Derive's cap (which remains as the
// emergency brake for bursts that outrun the compactor).
package catalog

import "tetrisjoin/internal/index"

// compactDepth resolves the configured trigger depth: 0 → default,
// negative → disabled.
func (c *Catalog) compactDepth() int {
	switch {
	case c.opts.CompactDepth < 0:
		return 0
	case c.opts.CompactDepth == 0:
		return defaultCompactDepth
	default:
		return c.opts.CompactDepth
	}
}

// scheduleCompact starts a background compaction of the named
// relation's registry unless one is already in flight.
func (c *Catalog) scheduleCompact(name string) {
	c.compactMu.Lock()
	defer c.compactMu.Unlock()
	if c.compacting[name] {
		return
	}
	c.compacting[name] = true
	c.compactWG.Add(1)
	go c.compact(name)
}

// compact rebuilds the named relation's registry as fresh base indexes
// and swaps it in, provided the relation version it read is still
// current at swap time. A publish racing past the rebuild invalidates
// it — the new version's registry layered over the stale deep set — so
// the compactor re-reads and retries a bounded number of times; every
// such racing publish re-checks the depth trigger itself, so a chain
// can never silently stay deep.
func (c *Catalog) compact(name string) {
	defer c.compactWG.Done()
	defer func() {
		c.compactMu.Lock()
		delete(c.compacting, name)
		c.compactMu.Unlock()
	}()
	th := c.compactDepth()
	for attempt := 0; attempt < 8; attempt++ {
		c.mu.RLock()
		cur, ok := c.rels[name]
		var old *index.Set
		if ok {
			old = c.sets[cur]
		}
		c.mu.RUnlock()
		if !ok || old == nil || old.MaxLayerDepth() < th {
			return // gone, replaced, or already shallow
		}
		fresh := index.NewSet(cur, &c.builds)
		built := 0
		for _, spec := range old.SpecList() {
			_, b, err := fresh.Get(spec)
			if err != nil {
				return // leave the layered registry in place; it is correct
			}
			if b {
				built++
			}
		}
		c.mu.Lock()
		if c.rels[name] == cur {
			c.sets[cur] = fresh
			c.mu.Unlock()
			c.compactions.Add(1)
			c.compactBuilds.Add(int64(built))
			return
		}
		c.mu.Unlock()
	}
}

// WaitCompactions blocks until every in-flight background compaction
// has finished; for tests and orderly shutdown.
func (c *Catalog) WaitCompactions() {
	c.compactWG.Wait()
}
