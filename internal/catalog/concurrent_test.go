package catalog

import (
	"fmt"
	"sync"
	"testing"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

// TestConcurrentPreparedExecutionDuringIngest is the version-pinning
// contract under load: worker goroutines repeatedly execute plans
// prepared against version 1 while a writer goroutine keeps publishing
// new versions of the same relation. Every execution of an old plan
// must keep reading its pinned version — identical output on every run,
// no torn reads — while freshly prepared plans see the new data. Run
// with -race (the CI race job runs the full suite that way).
func TestConcurrentPreparedExecutionDuringIngest(t *testing.T) {
	c := New()
	r := relation.MustNewUniform("E", []string{"s", "d"}, 6)
	for v := uint64(0); v < 12; v++ {
		r.MustInsert(v%8, (v+1)%8)
	}
	if _, err := c.Ingest(r); err != nil {
		t.Fatal(err)
	}

	const query = "E(A,B), E(B,C)"
	pinned, err := c.Prepare(query, join.Options{Mode: core.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	want, err := pinned.Execute(join.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantStr := fmt.Sprint(want.Tuples)

	const (
		workers    = 4
		execs      = 25
		ingestions = 20
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*execs+ingestions)

	// Writer: keeps publishing new versions (growing the relation) and
	// preparing against them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ingestions; i++ {
			if _, err := c.Append("E", relation.Tuple{uint64(8 + i%56), uint64(i % 64)}); err != nil {
				errs <- fmt.Errorf("append %d: %w", i, err)
				return
			}
			fresh, err := c.Prepare(query, join.Options{Mode: core.Preloaded})
			if err != nil {
				errs <- fmt.Errorf("prepare after append %d: %w", i, err)
				return
			}
			if fresh.Plan() == pinned.Plan() {
				errs <- fmt.Errorf("append %d: fresh preparation reused the pinned plan", i)
				return
			}
			if _, err := fresh.Execute(join.Options{Parallelism: 1}); err != nil {
				errs <- fmt.Errorf("execute fresh plan %d: %w", i, err)
				return
			}
		}
	}()

	// Readers: the pinned plan must reproduce its version-1 output on
	// every execution, concurrently with the writer.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < execs; i++ {
				res, err := pinned.Execute(join.Options{Parallelism: 1})
				if err != nil {
					errs <- fmt.Errorf("worker %d exec %d: %w", w, i, err)
					return
				}
				if got := fmt.Sprint(res.Tuples); got != wantStr {
					errs <- fmt.Errorf("worker %d exec %d: pinned plan output changed:\n got %s\nwant %s", w, i, got, wantStr)
					return
				}
			}
		}(w)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the dust settles the current version holds the appended
	// tuples and a fresh preparation sees them.
	cur, _ := c.Relation("E")
	if cur.Len() <= 12 {
		t.Errorf("current version has %d tuples, want > 12", cur.Len())
	}
	fresh, err := c.Execute(query, join.Options{Mode: core.Preloaded, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Tuples) <= len(want.Tuples) {
		t.Errorf("fresh plan sees %d tuples, pinned saw %d; appends invisible", len(fresh.Tuples), len(want.Tuples))
	}
}

// TestConcurrentAppendsBothLand: two writers racing on one relation
// must both have their tuples applied — the losing writer retries over
// the winner's version instead of failing or silently dropping writes.
func TestConcurrentAppendsBothLand(t *testing.T) {
	c := New()
	r := relation.MustNewUniform("W", []string{"a", "b"}, 8)
	r.MustInsert(0, 0)
	if _, err := c.Ingest(r); err != nil {
		t.Fatal(err)
	}

	const perWriter = 30
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := c.Append("W", relation.Tuple{uint64(w + 1), uint64(i)}); err != nil {
					errs <- fmt.Errorf("writer %d append %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	cur, _ := c.Relation("W")
	if cur.Len() != 1+2*perWriter {
		t.Errorf("current version has %d tuples, want %d (writes dropped)", cur.Len(), 1+2*perWriter)
	}
	for w := 1; w <= 2; w++ {
		for i := 0; i < perWriter; i++ {
			if !cur.Contains(uint64(w), uint64(i)) {
				t.Fatalf("tuple (%d,%d) lost in the race", w, i)
			}
		}
	}
}
