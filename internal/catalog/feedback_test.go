package catalog

import (
	"fmt"
	"testing"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/workload"
)

// TestPlanCacheKeyIncludesPlannerFingerprint pins the cache-key
// contract: two preparations of the same shape, SAO and mode must still
// land on different cache entries when the planning inputs differ —
// feedback changes the decision fingerprint even when it does not flip
// the winner. Under the old shape+SAO+mode key the second preparation
// would silently serve the stale plan and the feedback loop could never
// take effect.
func TestPlanCacheKeyIncludesPlannerFingerprint(t *testing.T) {
	c := New()
	q := workload.PinnedChain(32, 6)
	opts := join.Options{Strategy: join.SAOPlanned, Mode: core.Reloaded}

	p1, err := c.PrepareQuery(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p1.CacheHit() {
		t.Fatal("first preparation reported a cache hit")
	}
	p2, err := c.PrepareQuery(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.CacheHit() {
		t.Fatal("identical preparation missed the plan cache")
	}

	// Feedback on a losing candidate: the winner (and so the SAO part of
	// the key) is unchanged, only the planning inputs differ.
	d := p1.Plan().Decision()
	if d == nil || !d.Planned || len(d.Candidates) < 2 {
		t.Fatalf("want a planned decision with a losing candidate, got %+v", d)
	}
	loser := d.Candidates[1]
	fed := opts
	fed.Feedback = map[string]float64{join.FeedbackKey(loser.SAOVars): 1e12}
	p3, err := c.PrepareQuery(q, fed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(p3.Plan().SAOVars()), fmt.Sprint(p1.Plan().SAOVars()); got != want {
		t.Fatalf("feedback on a loser flipped the winner: %s vs %s", got, want)
	}
	if p3.CacheHit() {
		t.Fatal("stale plan served: same SAO with different planning feedback must miss the cache")
	}
	if d3 := p3.Plan().Decision(); d3.Fingerprint == d.Fingerprint {
		t.Fatal("feedback did not change the decision fingerprint")
	}
}

// TestReplanFiresAndImproves pins the feedback loop end to end on the
// calibration family PinnedChain, where the cost model cannot tell the
// cheap order from one that is ~d/4 times worse. Caller feedback poisons
// the planner's preferred orders until it prepares the expensive one;
// executing that plan observes a resolution count past the divergence
// gate, the catalog records it, and the next preparation — with no
// caller feedback at all — must miss the cache, re-plan away from the
// observed order, and run at least 2× cheaper.
func TestReplanFiresAndImproves(t *testing.T) {
	c := New()
	q := workload.PinnedChain(512, 26)
	base := join.Options{Strategy: join.SAOPlanned, Mode: core.Reloaded}
	exec := join.Options{Parallelism: 1}

	// Poison successive winners (at a cost above every honest estimate
	// but below the expensive order's actual work) until the planner
	// prepares an order whose execution diverges.
	poison := map[string]float64{}
	var badRes int64
	var badSAO string
	for round := 0; ; round++ {
		if round >= 8 {
			t.Fatal("no divergent order reached after 8 poison rounds")
		}
		opts := base
		opts.Feedback = make(map[string]float64, len(poison))
		for k, v := range poison {
			opts.Feedback[k] = v
		}
		p, err := c.PrepareQuery(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Execute(exec)
		if err != nil {
			t.Fatal(err)
		}
		if c.Stats().Replans > 0 {
			badRes = res.Stats.Resolutions
			badSAO = fmt.Sprint(p.Plan().SAOVars())
			break
		}
		poison[join.FeedbackKey(p.Plan().SAOVars())] = 6 * 512
	}
	st := c.Stats()
	if st.Replans != 1 || st.FeedbackEntries != 1 {
		t.Fatalf("replans=%d feedback=%d after one divergent execution, want 1/1", st.Replans, st.FeedbackEntries)
	}

	// Re-prepare with no caller feedback: the recorded observation alone
	// must invalidate the cached plan and steer the planner away.
	p2, err := c.PrepareQuery(q, base)
	if err != nil {
		t.Fatal(err)
	}
	if p2.CacheHit() {
		t.Fatal("stale plan served after a recorded divergence")
	}
	if got := fmt.Sprint(p2.Plan().SAOVars()); got == badSAO {
		t.Fatalf("re-plan kept the observed-divergent order %s", got)
	}
	res2, err := p2.Execute(exec)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Resolutions*2 > badRes {
		t.Fatalf("re-plan did not improve: %d resolutions vs %d before", res2.Stats.Resolutions, badRes)
	}

	// The improved plan is stable: same preparation now hits the cache
	// and its execution stays under the divergence gate.
	p3, err := c.PrepareQuery(q, base)
	if err != nil {
		t.Fatal(err)
	}
	if !p3.CacheHit() {
		t.Fatal("re-planned preparation did not cache")
	}
	if _, err := p3.Execute(exec); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Replans; got != 1 {
		t.Fatalf("improved plan re-triggered the feedback loop: replans=%d", got)
	}
}
