package catalog

import (
	"fmt"
	"math/big"
	"testing"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

func triangleCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	r := relation.MustNewUniform("R", []string{"s", "d"}, 4)
	r.MustInsert(1, 2)
	r.MustInsert(2, 3)
	r.MustInsert(1, 3)
	r.MustInsert(3, 4)
	if _, err := c.Ingest(r); err != nil {
		t.Fatal(err)
	}
	return c
}

const triQuery = "R(A,B), R(B,C), R(A,C)"

func TestPreparedLifecycleAmortizesIndexWork(t *testing.T) {
	c := triangleCatalog(t)
	opts := join.Options{Mode: core.Preloaded, Parallelism: 1}

	// One-shot reference through the standalone engine.
	q, err := c.Parse(triQuery)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := join.Execute(q, opts)
	if err != nil {
		t.Fatal(err)
	}

	first, err := c.Execute(triQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.IndexBuilds == 0 {
		t.Error("first execution reported zero index builds; preparation cost vanished")
	}
	second, err := c.Execute(triQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.IndexBuilds != 0 {
		t.Errorf("second execution built %d indexes, want 0", second.Stats.IndexBuilds)
	}
	for name, res := range map[string]*join.Result{"first": first, "second": second} {
		if len(res.Tuples) != len(ref.Tuples) {
			t.Fatalf("%s execution: %d tuples, one-shot %d", name, len(res.Tuples), len(ref.Tuples))
		}
		for i := range res.Tuples {
			for j := range res.Tuples[i] {
				if res.Tuples[i][j] != ref.Tuples[i][j] {
					t.Fatalf("%s execution diverges from one-shot at tuple %d: %v vs %v",
						name, i, res.Tuples[i], ref.Tuples[i])
				}
			}
		}
	}

	// The catalog's build counter stays flat across repeated executions.
	builds := c.IndexBuilds()
	for i := 0; i < 3; i++ {
		if _, err := c.Execute(triQuery, opts); err != nil {
			t.Fatal(err)
		}
	}
	if c.IndexBuilds() != builds {
		t.Errorf("repeated executions grew IndexBuilds from %d to %d", builds, c.IndexBuilds())
	}

	st := c.Stats()
	if st.PlanHits == 0 || st.PlanMisses == 0 || st.PlansCached == 0 {
		t.Errorf("cache counters look dead: %+v", st)
	}

	// Count through the prepared path agrees with enumeration.
	count, cstats, err := c.Count(triQuery, opts)
	if err != nil {
		t.Fatal(err)
	}
	if count.Cmp(big.NewInt(int64(len(ref.Tuples)))) != 0 {
		t.Errorf("prepared count = %v, enumeration has %d tuples", count, len(ref.Tuples))
	}
	if cstats.IndexBuilds != 0 {
		t.Errorf("cached count built %d indexes, want 0", cstats.IndexBuilds)
	}
}

func TestPrepareCacheKeying(t *testing.T) {
	c := triangleCatalog(t)

	p1, err := c.Prepare(triQuery, join.Options{Mode: core.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	if p1.CacheHit() {
		t.Error("first preparation hit the cache")
	}
	if p1.IndexBuilds() == 0 {
		t.Error("first preparation built nothing")
	}

	p2, err := c.Prepare(triQuery, join.Options{Mode: core.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	if !p2.CacheHit() || p2.IndexBuilds() != 0 {
		t.Errorf("identical preparation missed: hit=%v builds=%d", p2.CacheHit(), p2.IndexBuilds())
	}
	if p2.Plan() != p1.Plan() {
		t.Error("cache hit returned a different plan")
	}

	// A different mode is a different cache entry (its own plan), but the
	// index registry still serves the same indexes: zero new builds.
	p3, err := c.Prepare(triQuery, join.Options{Mode: core.Reloaded})
	if err != nil {
		t.Fatal(err)
	}
	if p3.CacheHit() {
		t.Error("different mode hit the Preloaded entry")
	}
	if p3.IndexBuilds() != 0 {
		t.Errorf("mode change rebuilt %d indexes; registry should have served them", p3.IndexBuilds())
	}

	// A different SAO needs differently ordered indexes: new builds, new
	// entry.
	p4, err := c.Prepare(triQuery, join.Options{Mode: core.Preloaded, SAOVars: []string{"C", "B", "A"}})
	if err != nil {
		t.Fatal(err)
	}
	if p4.CacheHit() {
		t.Error("different SAO hit the old entry")
	}

	// Ingesting a new version invalidates by key: same text, fresh plan.
	if _, err := c.Append("R", relation.Tuple{2, 4}); err != nil {
		t.Fatal(err)
	}
	p5, err := c.Prepare(triQuery, join.Options{Mode: core.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	if p5.CacheHit() {
		t.Error("preparation against the new version hit the old version's plan")
	}
	if p5.Plan() == p1.Plan() {
		t.Error("new version reused the old version's plan")
	}
}

func TestIngestVersioningAndSpecCarryForward(t *testing.T) {
	c := New()
	r := relation.MustNewUniform("E", []string{"a", "b"}, 4)
	r.MustInsert(0, 1)
	v1, err := c.Ingest(r, index.DyadicSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.IndexBuilds(); got != 1 {
		t.Errorf("eager ingest built %d indexes, want 1", got)
	}

	v2, err := c.Append("E", relation.Tuple{1, 2}, relation.Tuple{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v1 {
		t.Errorf("append version %d not after ingest version %d", v2, v1)
	}
	// The dyadic spec was carried forward onto the new snapshot.
	if got := c.IndexBuilds(); got != 2 {
		t.Errorf("append rebuilt %d total indexes, want 2 (spec carried forward)", got)
	}
	cur, _ := c.Relation("E")
	if cur.Len() != 3 {
		t.Errorf("current version has %d tuples, want 3", cur.Len())
	}

	if _, err := c.Delete("E", relation.Tuple{0, 1}); err != nil {
		t.Fatal(err)
	}
	cur, _ = c.Relation("E")
	if cur.Len() != 2 || cur.Contains(0, 1) {
		t.Errorf("delete left %v", cur.Tuples())
	}

	if _, err := c.Append("nope", relation.Tuple{0, 0}); err == nil {
		t.Error("append to unknown relation succeeded")
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := NewWithOptions(Options{PlanCache: 2})
	r := relation.MustNewUniform("R", []string{"a", "b"}, 4)
	r.MustInsert(1, 2)
	r.MustInsert(2, 3)
	if _, err := c.Ingest(r); err != nil {
		t.Fatal(err)
	}

	queries := []string{"R(A,B)", "R(A,B), R(B,C)", "R(B,A)"}
	for _, q := range queries {
		if _, err := c.Prepare(q, join.Options{}); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	if got := c.Stats().PlansCached; got != 2 {
		t.Errorf("cache holds %d plans, want 2", got)
	}
	// The first query was evicted; the last two are live.
	p, err := c.Prepare(queries[0], join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.CacheHit() {
		t.Error("evicted plan still hit")
	}

	// Disabled cache never hits.
	off := NewWithOptions(Options{PlanCache: -1})
	r2 := relation.MustNewUniform("S", []string{"a", "b"}, 4)
	r2.MustInsert(1, 2)
	if _, err := off.Ingest(r2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		p, err := off.Prepare("S(A,B)", join.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if p.CacheHit() {
			t.Fatalf("disabled cache hit on attempt %d", i)
		}
	}
}

func TestPreparedBooleanMode(t *testing.T) {
	c := triangleCatalog(t)
	p, err := c.Prepare(triQuery, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Covers(join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered {
		t.Error("triangle query reported covered (empty output), but output is non-empty")
	}

	// An unsatisfiable query must report covered.
	c2 := New()
	e := relation.MustNewUniform("E", []string{"a", "b"}, 3)
	e.MustInsert(1, 2)
	if _, err := c2.Ingest(e); err != nil {
		t.Fatal(err)
	}
	p2, err := c2.Prepare("E(A,B), E(B,A)", join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := p2.Covers(join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Covered {
		t.Error("empty-output query not covered")
	}
}

func TestExecuteQueryExternalRelations(t *testing.T) {
	// PrepareQuery over relations never ingested: identity-pinned
	// registries are created on demand and executions still amortize.
	c := New()
	r := relation.MustNewUniform("X", []string{"a", "b"}, 4)
	r.MustInsert(1, 2)
	r.MustInsert(2, 1)
	q, err := join.NewQuery(
		join.Atom{Relation: r, Vars: []string{"A", "B"}},
		join.Atom{Relation: r, Vars: []string{"B", "A"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := c.ExecuteQuery(q, join.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.IndexBuilds == 0 {
		t.Error("first external execution built nothing")
	}
	res2, err := c.ExecuteQuery(q, join.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.IndexBuilds != 0 {
		t.Errorf("second external execution built %d indexes, want 0", res2.Stats.IndexBuilds)
	}
	if fmt.Sprint(res1.Tuples) != fmt.Sprint(res2.Tuples) {
		t.Errorf("external executions disagree: %v vs %v", res1.Tuples, res2.Tuples)
	}
	if len(res1.Tuples) != 2 {
		t.Errorf("mirror join returned %v, want the two symmetric pairs", res1.Tuples)
	}
}

func TestPrepareCacheKeysExplicitIndexes(t *testing.T) {
	// A plan built over caller-supplied index structures must not be
	// served to a preparation that asked for different (or default)
	// ones: atom indexes are part of the cache identity.
	c := New()
	r := relation.MustNewUniform("R", []string{"a", "b"}, 4)
	r.MustInsert(1, 2)
	r.MustInsert(2, 3)

	dy := index.NewDyadic(r)
	withIx, err := join.NewQuery(join.Atom{Relation: r, Vars: []string{"A", "B"}, Indexes: []index.Index{dy}})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := join.NewQuery(join.Atom{Relation: r, Vars: []string{"A", "B"}})
	if err != nil {
		t.Fatal(err)
	}

	p1, err := c.PrepareQuery(withIx, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.PrepareQuery(plain, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p2.CacheHit() {
		t.Fatal("default-index preparation hit the explicit-index plan")
	}
	if p1.Plan().Indices()[0] != dy {
		t.Error("explicit-index plan does not probe the supplied index")
	}
	if p2.Plan().Indices()[0] == dy {
		t.Error("default plan probes the other preparation's explicit index")
	}
	// Re-preparing with the same explicit index instance does hit.
	p3, err := c.PrepareQuery(withIx, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p3.CacheHit() {
		t.Error("identical explicit-index preparation missed")
	}
}
