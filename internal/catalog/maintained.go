package catalog

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

// Maintained is a prepared query whose materialized result survives
// catalog writes: Append/Delete on its relations do not force a
// re-execution — Execute patches the cached result from the deltas via
// the standard delta-query decomposition, one Tetris pass per atom of
// each changed relation with that atom's relation replaced by its
// delta. Work per refresh scales with the delta's certificate, not the
// size of the unchanged data: the delta passes run Reloaded over the
// tiny delta index plus the already-built indexes of the other atoms,
// with the unchanged atoms' gap set handed in as a prebuilt shared
// knowledge base.
//
// The patch rule is exact for pure per-step deltas (a span of appends,
// or a span of deletes, per relation): staggered old/new atom versions
// make the insert terms disjoint additions, and delete-pass outputs are
// exactly the result tuples that lost an atom membership (natural join
// membership is per-atom-projection, so there is no lost-witness
// subtlety). Anything the rule cannot certify cheaply — a mixed
// insert+delete span, an unreconstructible lineage, a delta comparable
// to the relation itself — falls back to a full recompute, which is
// always exact.
//
// A Maintained statement serializes its own refreshes (one mutex); the
// catalog underneath stays fully concurrent.
type Maintained struct {
	c     *Catalog
	text  string
	label string       // version-free shape, for the exec observer
	opts  join.Options // preparation options; Mode fixed at Maintain

	mu                  sync.Mutex
	plan                *join.Plan                    // over the pinned versions
	pinned              map[string]*relation.Relation // snapshot the result reflects
	result              [][]uint64                    // enumeration (SAO-lex) order
	gen                 uint64                        // catalog generation at last sync
	bases               map[string]*maintBase         // changed-relation → shared knowledge
	last                Refresh
	patches, recomputes int64
}

// maintBase caches the prebuilt knowledge base for deltas of one
// relation: the gap set of every atom NOT referencing it, valid as long
// as the other relations' versions stay what they were at build time.
type maintBase struct {
	base *core.PreparedBase
	deps map[string]uint64
}

// Refresh describes what one Execute call did to bring the result up to
// date.
type Refresh struct {
	// Kind is "none" (nothing changed), "patched" (delta passes), or
	// "recomputed" (exact fallback; also the initial materialization).
	Kind string
	// Passes is the number of delta Tetris passes run (patched only).
	Passes int
	// Added and Removed count the tuples the patch applied.
	Added, Removed int
	// Stats aggregates the engine work of the refresh (delta passes or
	// the full recompute), including its index builds.
	Stats core.Stats
}

// maintPatchFactor mirrors index.Set's layering heuristic: a delta
// bigger than a quarter of the new snapshot is not worth patching.
const maintPatchFactor = 4

// Maintain prepares the query, executes it once in full, and returns a
// statement that keeps the materialized result in sync with the
// catalog's relations across Append/Delete. The mode and SAO are fixed
// at preparation like any prepared statement; refresh passes always run
// sequentially so the maintained enumeration order is exactly the
// engine's sequential order. The initial materialization — the most
// expensive step of the lifecycle — honors opts.Context and opts.Budget
// like every later refresh.
func (c *Catalog) Maintain(query string, opts join.Options) (*Maintained, error) {
	gen := c.Generation()
	p, err := c.Prepare(query, opts)
	if err != nil {
		return nil, err
	}
	res, err := p.executeCharged(join.Options{
		Parallelism: 1,
		Context:     opts.Context,
		Budget:      opts.Budget,
	})
	if err != nil {
		return nil, err
	}
	// The statement outlives the call: keep only the preparation-time
	// fields, not the caller's execution context/budget — refreshes take
	// those per Execute. The SAO is pinned by name: re-preparations over
	// later relation versions must keep the initial order even when the
	// statistics-driven planner would now choose differently, because the
	// materialized result — and every patch spliced into it — lives in
	// that order.
	opts.Context, opts.Budget = nil, nil
	opts.Decision = nil
	opts.SAOVars = append([]string(nil), p.Plan().SAOVars()...)
	m := &Maintained{
		c:      c,
		text:   query,
		label:  ShapeLabel(p.Plan().Query()),
		opts:   opts,
		plan:   p.Plan(),
		result: res.Tuples,
		gen:    gen,
		bases:  map[string]*maintBase{},
		last: Refresh{
			Kind:  "recomputed",
			Stats: res.Stats,
		},
	}
	m.pinFromPlan()
	return m, nil
}

// pinFromPlan records the relation snapshots the current plan (and
// therefore the current result) was computed against.
func (m *Maintained) pinFromPlan() {
	m.pinned = map[string]*relation.Relation{}
	for _, a := range m.plan.Query().Atoms() {
		m.pinned[a.Relation.Name()] = a.Relation
	}
}

// Result returns the materialized output tuples, shared and read-only,
// as of the last Execute/Refresh. Callers wanting the freshest state
// call Execute.
func (m *Maintained) Result() [][]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.result
}

// LastRefresh reports what the most recent Execute did.
func (m *Maintained) LastRefresh() Refresh {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last
}

// Patches and Recomputes count how refreshes were served since
// Maintain (the initial materialization counts as neither).
func (m *Maintained) Patches() int64    { m.mu.Lock(); defer m.mu.Unlock(); return m.patches }
func (m *Maintained) Recomputes() int64 { m.mu.Lock(); defer m.mu.Unlock(); return m.recomputes }

// Plan returns the plan over the currently pinned versions.
func (m *Maintained) Plan() *join.Plan { m.mu.Lock(); defer m.mu.Unlock(); return m.plan }

// Text returns the maintained query text.
func (m *Maintained) Text() string { return m.text }

// Execute brings the materialized result up to date with the catalog's
// current relation versions and returns it. Only Context and Budget are
// honored from opts — the mode, SAO and sequential execution are fixed
// by the statement. The returned tuples are shared and read-only.
//
// Stats reporting: IndexBuilds is the number of indexes this refresh
// constructed (delta indexes over the changed tuples — bounded by the
// changed atoms — or a full rebuild's worth on fallback; 0 when nothing
// changed), Resolutions the refresh's geometric resolutions, Outputs
// the result cardinality.
func (m *Maintained) Execute(opts join.Options) (*join.Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// The whole refresh is one observed sample — delta passes, merge and
	// serve — because that is the latency an exec of the statement costs
	// a client, whatever mixture of patching and recomputation served it.
	defer m.c.observeExec(m.label, "maintained", time.Now())

	gen := m.c.Generation()
	if gen == m.gen {
		return m.serve(Refresh{Kind: "none"}), nil
	}

	current, deltas, reason := m.assess()
	if len(deltas) == 0 && reason == "" {
		// Versions moved without touching this query's relations (or
		// only with effectively empty deltas): re-pin and serve.
		if err := m.repin(current); err != nil {
			return nil, err
		}
		m.gen = gen
		return m.serve(Refresh{Kind: "none"}), nil
	}
	if reason != "" {
		res, err := m.recompute(opts)
		if err != nil {
			return nil, err
		}
		m.gen = gen
		return res, nil
	}
	res, err := m.patch(opts, current, deltas)
	if err != nil {
		return nil, err
	}
	m.gen = gen
	return res, nil
}

// Refresh is Execute without returning the result: it reports what was
// done.
func (m *Maintained) Refresh(opts join.Options) (Refresh, error) {
	if _, err := m.Execute(opts); err != nil {
		return Refresh{}, err
	}
	return m.LastRefresh(), nil
}

// serve packages the cached result with the given refresh record.
func (m *Maintained) serve(r Refresh) *join.Result {
	r.Stats.Outputs = int64(len(m.result))
	m.last = r
	return &join.Result{
		Vars:   m.plan.Query().Vars(),
		SAO:    m.plan.SAOVars(),
		Tuples: m.result,
		Stats:  r.Stats,
	}
}

// assess snapshots the current versions of the maintained relations and
// computes per-relation deltas against the pinned versions. A non-empty
// reason means the patch rule does not apply and the caller must fall
// back to a full recompute.
func (m *Maintained) assess() (current map[string]*relation.Relation, deltas map[string]relation.Delta, reason string) {
	current = map[string]*relation.Relation{}
	deltas = map[string]relation.Delta{}
	for name, pinned := range m.pinned {
		cur, ok := m.c.Relation(name)
		if !ok {
			return nil, nil, fmt.Sprintf("relation %q no longer in catalog", name)
		}
		current[name] = cur
		if cur.Version() == pinned.Version() {
			continue
		}
		d, ok := cur.DeltaSince(pinned.Version())
		switch {
		case !ok:
			return current, nil, fmt.Sprintf("delta for %q not reconstructible", name)
		case d.Empty():
			continue // version moved, tuple set did not
		case d.Mixed():
			return current, nil, fmt.Sprintf("mixed insert+delete span on %q", name)
		case d.Len()*maintPatchFactor > cur.Len():
			return current, nil, fmt.Sprintf("delta on %q too large to patch (%d of %d tuples)", name, d.Len(), cur.Len())
		}
		deltas[name] = d
	}
	return current, deltas, ""
}

// repin re-prepares the plan over the given snapshots (warm indexes: no
// builds expected) and records them as the result's versions.
func (m *Maintained) repin(current map[string]*relation.Relation) error {
	atoms := make([]join.Atom, 0, len(m.plan.Query().Atoms()))
	for _, a := range m.plan.Query().Atoms() {
		atoms = append(atoms, join.Atom{Relation: current[a.Relation.Name()], Vars: a.Vars})
	}
	q, err := join.NewQuery(atoms...)
	if err != nil {
		return err
	}
	p, err := m.c.PrepareQuery(q, m.opts)
	if err != nil {
		return err
	}
	m.plan = p.Plan()
	m.pinFromPlan()
	return nil
}

// recompute is the exact fallback: one full execution over the current
// versions, replacing the materialized result.
func (m *Maintained) recompute(opts join.Options) (*join.Result, error) {
	gen := m.c.Generation()
	p, err := m.c.Prepare(m.text, m.opts)
	if err != nil {
		return nil, err
	}
	res, err := p.executeCharged(join.Options{
		Parallelism: 1,
		Context:     opts.Context,
		Budget:      opts.Budget,
	})
	if err != nil {
		return nil, err
	}
	m.plan = p.Plan()
	m.pinFromPlan()
	m.result = res.Tuples
	m.gen = gen
	m.recomputes++
	return m.serve(Refresh{Kind: "recomputed", Stats: res.Stats}), nil
}

// patch runs the delta decomposition and applies it to the cached
// result. current/deltas come from assess: every delta is pure (insert-
// only or delete-only) and reconstructible.
func (m *Maintained) patch(opts join.Options, current map[string]*relation.Relation, deltas map[string]relation.Delta) (*join.Result, error) {
	q := m.plan.Query()
	refresh := Refresh{Kind: "patched"}

	changed := make([]string, 0, len(deltas))
	for name := range deltas {
		changed = append(changed, name)
	}
	sort.Strings(changed)

	var additions [][]uint64
	removals := map[string]bool{}
	processed := map[string]bool{}

	for _, name := range changed {
		d := deltas[name]
		side := d.Inserted
		if len(d.Deleted) > 0 {
			side = d.Deleted
		}
		pinnedRel := m.pinned[name]
		deltaRel, err := relation.New(name+"+delta", pinnedRel.Attrs(), pinnedRel.Depths())
		if err != nil {
			return nil, err
		}
		if err := deltaRel.InsertAll(side...); err != nil {
			return nil, err
		}
		deltaRel.Tuples()

		base := m.sharedBase(name, changed)

		for ai, a := range q.Atoms() {
			if a.Relation.Name() != name {
				continue
			}
			passQ, err := m.passQuery(q, ai, name, deltaRel, current, processed)
			if err != nil {
				return nil, err
			}
			passOpts := join.Options{
				Mode:        core.Reloaded,
				Parallelism: 1,
				SAOVars:     m.plan.SAOVars(),
				Base:        base,
				Context:     opts.Context,
				Budget:      opts.Budget,
			}
			pp, err := join.PreparePlan(passQ, passOpts, source{m.c})
			if err != nil {
				return nil, err
			}
			res, err := pp.Execute(passOpts)
			if err != nil {
				return nil, err
			}
			refresh.Passes++
			refresh.Stats.Merge(res.Stats)
			refresh.Stats.IndexBuilds += pp.IndexBuilds()
			if len(d.Inserted) > 0 {
				additions = append(additions, res.Tuples...)
			} else {
				for _, t := range res.Tuples {
					removals[tupleKeyString(t)] = true
				}
			}
		}
		processed[name] = true
	}

	m.applyPatch(additions, removals, &refresh)
	if err := m.repin(current); err != nil {
		return nil, err
	}
	m.patches++
	return m.serve(refresh), nil
}

// sharedBase resolves the prebuilt knowledge base for deltas of the
// named relation: the gap set of every atom not referencing it, built
// once from the pinned plan and reused for as long as the OTHER
// relations' versions hold still. Only a single-relation change can use
// it — with two relations changing, the base would carry stale gaps of
// the other changed relation — and a change touching every atom (a
// self-join over the changed relation) has no unchanged atoms to share.
func (m *Maintained) sharedBase(name string, changed []string) *core.PreparedBase {
	if len(changed) != 1 {
		return nil
	}
	q := m.plan.Query()
	others := 0
	deps := map[string]uint64{}
	for _, a := range q.Atoms() {
		if a.Relation.Name() != name {
			others++
			deps[a.Relation.Name()] = a.Relation.Version()
		}
	}
	if others == 0 {
		return nil
	}
	if mb, ok := m.bases[name]; ok && depsEqual(mb.deps, deps) {
		return mb.base
	}
	po := m.plan.PartialOracle(func(ai int) bool {
		return q.Atoms()[ai].Relation.Name() != name
	})
	base, err := core.BuildPreloadedBase(po, core.Options{})
	if err != nil {
		// The base is an optimization; the pass is exact without it.
		return nil
	}
	m.bases[name] = &maintBase{base: base, deps: deps}
	return base
}

func depsEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// passQuery assembles the delta-decomposition pass for atom ai of the
// changed relation: that atom becomes the delta, earlier atoms of the
// same relation take the new version, later ones keep the pinned old
// version (the staggering that makes insert terms disjoint), unchanged
// and already-processed relations take the version their step order
// dictates. Old-version atoms carry the pinned plan's index explicitly
// — the catalog may have dropped the old snapshot's registry — while
// new/current versions resolve through the catalog's registries, where
// the maintained specs are already layered (no builds).
func (m *Maintained) passQuery(q *join.Query, ai int, name string, deltaRel *relation.Relation,
	current map[string]*relation.Relation, processed map[string]bool) (*join.Query, error) {

	indices := m.plan.Indices()
	atoms := make([]join.Atom, len(q.Atoms()))
	for j, a := range q.Atoms() {
		switch {
		case j == ai:
			atoms[j] = join.Atom{Relation: deltaRel, Vars: a.Vars}
		case a.Relation.Name() == name && j < ai:
			atoms[j] = join.Atom{Relation: current[name], Vars: a.Vars}
		case a.Relation.Name() == name: // j > ai: pinned old version
			atoms[j] = join.Atom{Relation: a.Relation, Vars: a.Vars, Indexes: []index.Index{indices[j]}}
		case processed[a.Relation.Name()]:
			atoms[j] = join.Atom{Relation: current[a.Relation.Name()], Vars: a.Vars}
		default:
			// Unchanged or not-yet-processed: the pinned snapshot with its
			// already-built index.
			atoms[j] = join.Atom{Relation: a.Relation, Vars: a.Vars, Indexes: []index.Index{indices[j]}}
		}
	}
	return join.NewQuery(atoms...)
}

// applyPatch merges additions and filters removals into the cached
// result, preserving the engine's sequential enumeration order (tuples
// lexicographic in SAO dimension order). Additions are disjoint from
// the result and from each other by the staggering argument; equal
// tuples are deduplicated anyway for safety.
func (m *Maintained) applyPatch(additions [][]uint64, removals map[string]bool, refresh *Refresh) {
	sao := m.plan.SAO()
	less := func(a, b []uint64) bool {
		for _, pos := range sao {
			if a[pos] != b[pos] {
				return a[pos] < b[pos]
			}
		}
		return false
	}
	// A later relation's delete step may target a tuple an earlier
	// relation's insert step just produced (the earlier pass ran against
	// the pre-delete state): removals must filter additions exactly like
	// they filter the prior result. The reverse interaction cannot
	// occur — a pass after a delete step sees the deleted-from version,
	// so its additions never collide with earlier removals.
	if len(removals) > 0 {
		kept := additions[:0]
		for _, t := range additions {
			if removals[tupleKeyString(t)] {
				continue
			}
			kept = append(kept, t)
		}
		additions = kept
	}
	sort.Slice(additions, func(i, j int) bool { return less(additions[i], additions[j]) })

	merged := make([][]uint64, 0, len(m.result)+len(additions))
	i, j := 0, 0
	for i < len(m.result) || j < len(additions) {
		if i < len(m.result) && removals[tupleKeyString(m.result[i])] {
			i++
			refresh.Removed++
			continue
		}
		switch {
		case j >= len(additions):
			merged = append(merged, m.result[i])
			i++
		case i >= len(m.result):
			merged = append(merged, additions[j])
			refresh.Added++
			j++
		case less(additions[j], m.result[i]):
			merged = append(merged, additions[j])
			refresh.Added++
			j++
		case less(m.result[i], additions[j]):
			merged = append(merged, m.result[i])
			i++
		default: // equal: keep one (should not happen for exact passes)
			merged = append(merged, m.result[i])
			i++
			j++
		}
	}
	m.result = merged
}

// tupleKeyString encodes a tuple for set membership in the patch.
func tupleKeyString(t []uint64) string {
	buf := make([]byte, 0, len(t)*8)
	for _, v := range t {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(buf)
}
