package catalog

import (
	"testing"

	"tetrisjoin/internal/join"
)

// Zero capacity is "caching disabled", exactly like negative capacity:
// Put stores nothing (no insert-then-evict churn), Get always misses,
// Len stays 0. The regression: Put used to PushFront and then
// immediately evict under the lock, so a zero-cap cache did dead work
// on every preparation while reporting misses forever.
func TestPlanCacheZeroAndNegativeCapDisabled(t *testing.T) {
	plan := &join.Plan{}
	for _, cap := range []int{0, -1, -64} {
		c := newPlanCache(cap)
		c.Put("k", plan)
		if got := c.Len(); got != 0 {
			t.Errorf("cap %d: Len() = %d after Put, want 0", cap, got)
		}
		if _, ok := c.Get("k"); ok {
			t.Errorf("cap %d: Get hit on a disabled cache", cap)
		}
		// The disabled cache holds no list/map state at all.
		if c.order.Len() != 0 || len(c.byKey) != 0 {
			t.Errorf("cap %d: disabled cache retained state: list=%d map=%d", cap, c.order.Len(), len(c.byKey))
		}
	}
}

// A positive capacity still evicts LRU-style.
func TestPlanCacheEviction(t *testing.T) {
	a, b, x := &join.Plan{}, &join.Plan{}, &join.Plan{}
	c := newPlanCache(2)
	c.Put("a", a)
	c.Put("b", b)
	if _, ok := c.Get("a"); !ok { // a is now most recently used
		t.Fatal("miss on live entry")
	}
	c.Put("x", x) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry not evicted")
	}
	if got, ok := c.Get("a"); !ok || got != a {
		t.Error("recently used entry evicted")
	}
	if c.Len() != 2 {
		t.Errorf("Len() = %d, want 2", c.Len())
	}
}
