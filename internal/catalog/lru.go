package catalog

import (
	"container/list"
	"sync"

	"tetrisjoin/internal/join"
)

// planCache is a small mutex-guarded LRU of prepared plans. Plans are
// immutable and shared, so a cached plan can be handed to any number of
// concurrent executions; eviction merely drops the cache's reference —
// outstanding Prepared handles keep theirs.
type planCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *planEntry
	byKey map[string]*list.Element
}

type planEntry struct {
	key  string
	plan *join.Plan
}

// newPlanCache returns a cache holding at most cap plans; cap <= 0
// disables caching (every Get misses, Put is a no-op). Zero is
// explicitly "no capacity", not "insert then immediately evict": a
// disabled cache must not pay list churn under the lock, and Len() == 0
// with every Get missing is the pinned contract either way.
func newPlanCache(cap int) *planCache {
	return &planCache{cap: cap, order: list.New(), byKey: map[string]*list.Element{}}
}

// Get returns the cached plan for the key and marks it most recently
// used.
func (c *planCache) Get(key string) (*join.Plan, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*planEntry).plan, true
}

// Put inserts or refreshes the plan under the key, evicting the least
// recently used entry when over capacity.
func (c *planCache) Put(key string, plan *join.Plan) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*planEntry).plan = plan
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&planEntry{key: key, plan: plan})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*planEntry).key)
	}
}

// Len returns the number of cached plans.
func (c *planCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
