package planner

import (
	"math"
	"math/bits"

	"tetrisjoin/internal/agm"
	"tetrisjoin/internal/hypergraph"
)

// atomStats is the per-atom slice of statistics the estimator works
// from: snapshot cardinality plus, per bound query variable, the
// distinct count and the heavy-hitter degree of the attribute binding
// it. Everything is extracted once per planning run; estimation never
// touches tuples.
type atomStats struct {
	vars     []int
	count    float64
	distinct map[int]float64 // query var -> distinct values
	maxFreq  map[int]float64 // query var -> degree of the heaviest value
}

// estimator memoizes prefix-set estimates: Ê(S) depends on the variable
// set only, never on the order within it, which is what makes both the
// subset-lattice DP and exhaustive candidate scoring cheap.
type estimator struct {
	nvars int
	atoms []atomStats
	memo  map[uint64]float64
}

func newEstimator(nvars int, atoms []Atom) *estimator {
	e := &estimator{nvars: nvars, memo: map[uint64]float64{}}
	for _, a := range atoms {
		st := a.Rel.Stats()
		as := atomStats{
			vars:     a.Vars,
			count:    float64(st.Count),
			distinct: make(map[int]float64, len(a.Vars)),
			maxFreq:  make(map[int]float64, len(a.Vars)),
		}
		for i, v := range a.Vars {
			as.distinct[v] = float64(st.Attrs[i].Distinct)
			as.maxFreq[v] = float64(st.Attrs[i].MaxFreq)
		}
		e.atoms = append(e.atoms, as)
	}
	return e
}

// orderScore is the planner's cost model: the sum of prefix-set
// estimates along the order — a proxy for the number of distinct
// branches Tetris resolves when splitting variables in that order.
func (e *estimator) orderScore(sao []int) float64 {
	var mask uint64
	score := 0.0
	for _, v := range sao {
		mask |= 1 << uint(v)
		score += e.estimate(mask)
	}
	return score
}

// optimalOrder finds the order minimizing orderScore over all n!
// permutations by DP over the subset lattice: the score of an order is
// the sum of Ê over its chain of prefix sets, so
//
//	best(S) = Ê(S) + min_{v ∈ S} best(S \ {v})
//
// and the optimal order reads off the argmin chain. O(2ⁿ·n) estimate
// lookups; ties break toward the smallest variable so the result is
// deterministic.
func (e *estimator) optimalOrder() []int {
	n := e.nvars
	if n > 30 {
		return nil
	}
	size := uint64(1) << uint(n)
	best := make([]float64, size)
	last := make([]int8, size)
	for mask := uint64(1); mask < size; mask++ {
		best[mask] = math.Inf(1)
		last[mask] = -1
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) == 0 {
				continue
			}
			if c := best[mask&^(1<<uint(v))]; c < best[mask] {
				best[mask] = c
				last[mask] = int8(v)
			}
		}
		best[mask] += e.estimate(mask)
	}
	order := make([]int, n)
	mask := size - 1
	for i := n - 1; i >= 0; i-- {
		v := int(last[mask])
		if v < 0 {
			return nil
		}
		order[i] = v
		mask &^= 1 << uint(v)
	}
	return order
}

// estimate returns Ê(S): the skew-aware AGM estimate of the join
// projected onto the variable set S (given as a bitmask) — the minimum
// of the plain projection-AGM bound and a one-level heavy/light split
// on the most dominant hub variable in S.
func (e *estimator) estimate(mask uint64) float64 {
	if v, ok := e.memo[mask]; ok {
		return v
	}
	est := e.agmEstimate(mask, restriction{})
	if hv, ha, frac := e.dominantHub(mask); frac >= hubFracThreshold {
		heavy := e.agmEstimate(mask&^(1<<uint(hv)), restriction{kind: heavySlice, v: hv})
		light := e.agmEstimate(mask, restriction{kind: lightSlice, v: hv, atom: ha})
		if split := heavy + light; split < est {
			est = split
		}
	}
	e.memo[mask] = est
	return est
}

// hubFracThreshold is the heavy-hitter fraction past which a variable
// counts as a hub worth conditioning on: the heavy slice then carries
// at least half of some relation.
const hubFracThreshold = 0.5

// dominantHub finds the variable in S whose heaviest value carries the
// largest fraction of some atom binding it, returning that variable,
// the atom index, and the fraction.
func (e *estimator) dominantHub(mask uint64) (v, atom int, frac float64) {
	v, atom = -1, -1
	for ai, a := range e.atoms {
		if a.count == 0 {
			continue
		}
		for _, av := range a.vars {
			if mask&(1<<uint(av)) == 0 {
				continue
			}
			if f := a.maxFreq[av] / a.count; f > frac {
				v, atom, frac = av, ai, f
			}
		}
	}
	return v, atom, frac
}

// restriction adjusts the per-atom projection estimates for the two
// halves of a heavy/light split on variable v.
type restriction struct {
	kind int // 0 none, heavySlice, lightSlice
	v    int
	atom int // lightSlice only: the atom whose hub defines the split
}

const (
	heavySlice = iota + 1
	lightSlice
)

// agmEstimate is the AGM bound of the join restricted to the variable
// set S: 2^opt of the fractional edge cover LP over the restricted
// hypergraph, with edge weights log₂ of the per-atom projection
// estimates. Returns 1 for the empty set.
func (e *estimator) agmEstimate(mask uint64, r restriction) float64 {
	n := bits.OnesCount64(mask)
	if n == 0 {
		return 1
	}
	remap := make(map[int]int, n)
	for v := 0; v < e.nvars; v++ {
		if mask&(1<<uint(v)) != 0 {
			remap[v] = len(remap)
		}
	}
	h := hypergraph.New(n)
	var weights []float64
	for ai, a := range e.atoms {
		var verts []int
		var projVars []int
		for _, v := range a.vars {
			if p, ok := remap[v]; ok {
				verts = append(verts, p)
				projVars = append(projVars, v)
			}
		}
		if len(verts) == 0 {
			continue
		}
		proj := e.projEstimate(ai, projVars, r)
		if proj < 1 {
			// An atom whose restricted projection is empty proves the
			// restricted join empty — the collapse that makes a
			// single-valued (or hub-dominated) attribute score as the
			// cheap split it is.
			return 0
		}
		if err := h.AddEdge(verts...); err != nil {
			continue
		}
		weights = append(weights, math.Log2(proj))
	}
	_, opt, err := agm.FractionalEdgeCover(h, weights)
	if err != nil {
		// A variable covered by no edge under this restriction: fall
		// back to the product of the cheapest per-variable distincts.
		prod := 1.0
		for v := range remap {
			d := math.Inf(1)
			for _, a := range e.atoms {
				if dv, ok := a.distinct[v]; ok && dv < d {
					d = dv
				}
			}
			if !math.IsInf(d, 1) {
				prod *= math.Max(1, d)
			}
		}
		return prod
	}
	return math.Pow(2, opt)
}

// projEstimate bounds |π_T(R)| for atom ai projected onto query vars T,
// adjusted for the active heavy/light restriction: min(cardinality,
// Π distinct). Under heavySlice the atom is conditioned on the hub
// value of variable v — its cardinality drops to that value's maximum
// degree; under lightSlice the defining atom loses the hub value's
// tuples and one distinct value of v.
func (e *estimator) projEstimate(ai int, T []int, r restriction) float64 {
	a := e.atoms[ai]
	count := a.count
	binds := func(v int) bool {
		_, ok := a.distinct[v]
		return ok
	}
	switch r.kind {
	case heavySlice:
		if binds(r.v) {
			count = math.Min(count, a.maxFreq[r.v])
		}
	case lightSlice:
		if ai == r.atom && binds(r.v) {
			count = math.Max(0, count-a.maxFreq[r.v])
		}
	}
	prod := 1.0
	for _, v := range T {
		d := a.distinct[v]
		switch {
		case r.kind == lightSlice && ai == r.atom && v == r.v:
			d = math.Max(0, d-1)
		case r.kind == heavySlice && v == r.v:
			d = 1
		}
		prod *= math.Max(1, math.Min(d, math.Max(count, 1)))
		if prod > count {
			return math.Max(count, 0)
		}
	}
	return math.Min(math.Max(count, 0), prod)
}
