package planner_test

import (
	"fmt"
	"testing"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/planner"
	"tetrisjoin/internal/relation"
	"tetrisjoin/internal/workload"
)

func atomsOf(q *join.Query) (int, []planner.Atom) {
	var atoms []planner.Atom
	for _, a := range q.Atoms() {
		vars := make([]int, len(a.Vars))
		for i, v := range a.Vars {
			vars[i] = q.VarIndex(v)
		}
		atoms = append(atoms, planner.Atom{Rel: a.Relation, Vars: vars})
	}
	return len(q.Vars()), atoms
}

func resolutions(t *testing.T, q *join.Query, opts join.Options) int64 {
	t.Helper()
	opts.Mode = core.Reloaded
	opts.Parallelism = 1
	res, err := join.Execute(q, opts)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return res.Stats.Resolutions
}

func permutations(vars []string) [][]string {
	if len(vars) <= 1 {
		return [][]string{append([]string(nil), vars...)}
	}
	var out [][]string
	for i, v := range vars {
		rest := make([]string, 0, len(vars)-1)
		rest = append(rest, vars[:i]...)
		rest = append(rest, vars[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]string{v}, p...))
		}
	}
	return out
}

// TestPlannerBeatsNaturalOnSkew is the acceptance gate of the planner:
// on the skewed workload families the planned SAO must beat the natural
// order by at least 2× in resolutions and stay within 10% of the best
// fixed order (checked exhaustively over all permutations).
func TestPlannerBeatsNaturalOnSkew(t *testing.T) {
	families := []struct {
		name string
		q    *join.Query
	}{
		{"SkewedTriangle", workload.SkewedTriangle(64, 7)},
		{"SkewedFourCycle", workload.SkewedFourCycle(64, 7)},
		{"HeavyValueMismatch", workload.HeavyValueMismatch(64, 7)},
		{"GAOSensitive", workload.GAOSensitive(64, 7)},
	}
	for _, f := range families {
		t.Run(f.name, func(t *testing.T) {
			planned := resolutions(t, f.q, join.Options{Strategy: join.SAOPlanned})
			natural := resolutions(t, f.q, join.Options{Strategy: join.SAONatural})
			if planned*2 > natural {
				t.Errorf("planned SAO took %d resolutions, natural %d: want >= 2x improvement", planned, natural)
			}
			best := natural
			var bestOrder []string
			for _, p := range permutations(f.q.Vars()) {
				if r := resolutions(t, f.q, join.Options{SAOVars: p}); r < best {
					best, bestOrder = r, p
				}
			}
			if float64(planned) > 1.1*float64(best) {
				t.Errorf("planned SAO took %d resolutions, best fixed order %v takes %d: want within 10%%",
					planned, bestOrder, best)
			}
		})
	}
}

// TestPlannerKeepsClassicalOrderOnSymmetricInstances pins the planner's
// stability guarantee: on the classic (symmetric or already-optimal)
// families its choice is byte-identical to the engine's classical
// elimination-based order, so enabling planning cannot perturb the
// paper-reproduction numbers.
func TestPlannerKeepsClassicalOrderOnSymmetricInstances(t *testing.T) {
	families := []struct {
		name string
		q    *join.Query
	}{
		{"TriangleAGMStar", workload.TriangleAGMStar(64, 7)},
		{"TriangleDense", workload.TriangleDense(8, 4)},
		{"TriangleMSB", workload.TriangleMSB(5)},
		{"FourCycleBlocks", workload.FourCycleBlocks(6)},
		{"Clique4", workload.CliqueQuery(4, 24, 0.4, 5, 7)},
	}
	for _, f := range families {
		t.Run(f.name, func(t *testing.T) {
			auto, err := join.Decide(f.q, join.Options{Strategy: join.SAOAuto})
			if err != nil {
				t.Fatal(err)
			}
			// The classical order: reverse of GYO/elimination, which the
			// planner keeps as its "elimination" candidate and prefers on
			// ties.
			h := f.q.Hypergraph()
			var elim []int
			if order, acyclic := h.GYO(); acyclic {
				elim = order
			} else {
				elim, _ = h.EliminationOrder()
			}
			n := len(f.q.Vars())
			want := make([]string, n)
			for i, v := range elim {
				want[n-1-i] = f.q.Vars()[v]
			}
			if fmt.Sprint(auto.SAOVars) != fmt.Sprint(want) {
				t.Errorf("SAOAuto chose %v, classical order is %v", auto.SAOVars, want)
			}
		})
	}
}

// TestChooseDeterministic pins that equal inputs give equal decisions,
// including candidate ordering and fingerprint.
func TestChooseDeterministic(t *testing.T) {
	q := workload.SkewedTriangle(32, 6)
	nvars, atoms := atomsOf(q)
	d1, err := planner.Choose(nvars, atoms, planner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := planner.Choose(nvars, atoms, planner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if planner.SAOKey(d1.SAO) != planner.SAOKey(d2.SAO) || d1.Fingerprint != d2.Fingerprint {
		t.Fatalf("nondeterministic decision: %v/%x vs %v/%x", d1.SAO, d1.Fingerprint, d2.SAO, d2.Fingerprint)
	}
	if len(d1.Candidates) == 0 || d1.Candidates[0].Rejection != "" {
		t.Fatalf("winner must be first with no rejection: %+v", d1.Candidates)
	}
	for _, c := range d1.Candidates[1:] {
		if c.Rejection == "" {
			t.Errorf("losing candidate %v has no rejection reason", c.SAO)
		}
	}
}

// TestFingerprintTracksFeedbackAndStats pins the cache-key contract:
// the decision fingerprint must change when feedback arrives or the
// relation statistics change, and stay equal otherwise.
func TestFingerprintTracksFeedbackAndStats(t *testing.T) {
	q := workload.SkewedTriangle(32, 6)
	nvars, atoms := atomsOf(q)
	base, err := planner.Choose(nvars, atoms, planner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fed, err := planner.Choose(nvars, atoms, planner.Options{
		Observed: map[string]float64{planner.SAOKey(base.SAO): 1e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fed.Fingerprint == base.Fingerprint {
		t.Fatal("feedback did not change the decision fingerprint")
	}
	// A new snapshot with different statistics must re-fingerprint too.
	q2 := workload.SkewedTriangle(33, 6)
	nvars2, atoms2 := atomsOf(q2)
	other, err := planner.Choose(nvars2, atoms2, planner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if other.Fingerprint == base.Fingerprint {
		t.Fatal("different snapshots share a decision fingerprint")
	}
}

// TestObservedScoreOverridesEstimate pins the calibration loop: an
// observed resolution count replaces the estimate for that order, so a
// hugely divergent observation flips the winner.
func TestObservedScoreOverridesEstimate(t *testing.T) {
	q := workload.SkewedTriangle(32, 6)
	nvars, atoms := atomsOf(q)
	base, err := planner.Choose(nvars, atoms, planner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	repl, err := planner.Choose(nvars, atoms, planner.Options{
		Observed: map[string]float64{planner.SAOKey(base.SAO): 1e12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if planner.SAOKey(repl.SAO) == planner.SAOKey(base.SAO) {
		t.Fatalf("winner %v unchanged despite a 1e12 observed cost", repl.SAO)
	}
	var found bool
	for _, c := range repl.Candidates {
		if planner.SAOKey(c.SAO) == planner.SAOKey(base.SAO) {
			found = true
			if !c.Observed || c.Score != 1e12 {
				t.Errorf("old winner scored %v (observed=%v), want the observation", c.Score, c.Observed)
			}
		}
	}
	if !found {
		t.Error("old winner missing from candidate list")
	}
}

// TestSAOKeyRoundTrip pins the key encoding.
func TestSAOKeyRoundTrip(t *testing.T) {
	sao := []int{2, 0, 1}
	got, ok := planner.ParseSAOKey(planner.SAOKey(sao), 3)
	if !ok || fmt.Sprint(got) != fmt.Sprint(sao) {
		t.Fatalf("round trip failed: %v %v", got, ok)
	}
	for _, bad := range []string{"", "0,1", "0,1,3", "0,1,1", "a,b,c"} {
		if _, ok := planner.ParseSAOKey(bad, 3); ok {
			t.Errorf("ParseSAOKey(%q) accepted", bad)
		}
	}
}

// TestFamilySelection pins the index-family choice: clustered
// multidimensional relations (diagonals) get the dyadic family, spread
// relations the SAO-consistent B-tree, and arity ≥ 3 clusters the k-d
// tree.
func TestFamilySelection(t *testing.T) {
	diag := relation.MustNewUniform("D", []string{"X", "Y"}, 6)
	spread := relation.MustNewUniform("G", []string{"X", "Y"}, 6)
	for v := uint64(0); v < 64; v++ {
		diag.MustInsert(v, v)
	}
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			spread.MustInsert(a*8, b*8)
		}
	}
	diag3 := relation.MustNewUniform("E", []string{"X", "Y", "Z"}, 6)
	for v := uint64(0); v < 64; v++ {
		diag3.MustInsert(v, v, v)
	}
	d, err := planner.Choose(3, []planner.Atom{
		{Rel: diag, Vars: []int{0, 1}},
		{Rel: spread, Vars: []int{1, 2}},
		{Rel: diag3, Vars: []int{0, 1, 2}},
	}, planner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []index.Family{index.DyadicFamily, index.BTreeFamily, index.KDTreeFamily}
	for i, f := range want {
		if d.Families[i] != f {
			t.Errorf("atom %d family = %v, want %v", i, d.Families[i], f)
		}
	}
}
