// Package planner chooses splitting attribute orders and index families
// from cheap per-snapshot statistics. SAO choice dominates Tetris
// performance (the source paper leaves order selection open, §6), and
// the right order depends on the data: the planner scores candidate
// orders with a prefix-wise AGM / fractional-edge-cover cost model over
// relation statistics (internal/relation.Stats), refined by a one-level
// heavy/light split in the spirit of "Skew Strikes Back", and breaks
// ties with tree-decomposition structure (induced width of the reversed
// order) so that on symmetric instances it reproduces the engine's
// classical elimination-order default exactly.
//
// The scoring formula: for an order π = v₁…vₙ,
//
//	score(π) = Σ_{k=1..n} Ê(π_{1..k})
//
// where Ê(S) estimates the size of the join projected onto the prefix
// set S — the number of branches Tetris must distinguish after
// splitting the first k variables. Ê(S) is the AGM bound of the
// restricted hypergraph whose edge weights are log₂ of per-relation
// projection estimates min(|R|, Π distinct), taken as the minimum of
// the plain bound and a heavy/light split that conditions on the most
// dominant hub value. Ê depends on the set S only, so the optimal
// order over all n! permutations is a shortest path in the subset
// lattice, found by DP in O(2ⁿ·n) estimate lookups.
package planner

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"tetrisjoin/internal/hypergraph"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/relation"
)

// Atom is one query atom as the planner sees it: a relation snapshot
// plus the query-variable position bound to each of its attributes, in
// schema order.
type Atom struct {
	Rel  *relation.Relation
	Vars []int
}

// Options tunes a planning run.
type Options struct {
	// ExhaustiveVars caps the subset-lattice DP: queries with more
	// variables fall back to scoring the named candidate orders only.
	// 0 means the default (12).
	ExhaustiveVars int
	// Observed carries execution feedback: measured resolution counts
	// keyed by SAOKey of orders previously run for this query shape.
	// A candidate with an observed value is scored by it instead of the
	// estimate — the calibration that lets the catalog re-plan a shape
	// whose estimate diverged from reality.
	Observed map[string]float64
}

const defaultExhaustiveVars = 12

// Candidate is one scored order, kept for explain output.
type Candidate struct {
	// SAO is the order as query-variable positions.
	SAO []int
	// Score is the estimated resolution proxy (Σ of prefix estimates),
	// or the observed resolution count when Observed is true.
	Score float64
	// Source names how the candidate was generated: "optimal" (subset
	// DP), "elimination" (the engine's classical default), "natural",
	// "reversed", "minfill", or "feedback".
	Source string
	// Observed reports that Score is a measured value from feedback.
	Observed bool
	// Rejection explains why the candidate lost, empty for the winner.
	Rejection string
}

// Decision is the planner's output: the chosen order, per-atom index
// families, the estimate behind the choice, and the scored candidates.
type Decision struct {
	// SAO is the chosen order as query-variable positions.
	SAO []int
	// Families is the chosen index family per atom, parallel to the
	// atoms handed to Choose. Atoms carrying explicit indexes are the
	// caller's business; the planner always fills every slot.
	Families []index.Family
	// Score is the winner's score; EstimatedResolutions is the same
	// number under its cost-model meaning (Σ of prefix-join estimates —
	// the quantity the catalog compares observed resolutions against).
	Score                float64
	EstimatedResolutions float64
	// Candidates are the scored orders, winner first, then ascending by
	// score.
	Candidates []Candidate
	// Fingerprint identifies the planning inputs and outputs: relation
	// snapshots (via their stats fingerprints), the chosen order and
	// families, and any feedback that shaped the choice. The catalog
	// folds it into the plan-cache key so a re-planned shape can never
	// be served a stale auto-plan.
	Fingerprint uint64
}

// SAOKey renders an order as a canonical string ("2,0,1"): the identity
// feedback entries and fingerprints use.
func SAOKey(sao []int) string {
	parts := make([]string, len(sao))
	for i, v := range sao {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

// ParseSAOKey is the inverse of SAOKey.
func ParseSAOKey(key string, n int) ([]int, bool) {
	parts := strings.Split(key, ",")
	if len(parts) != n {
		return nil, false
	}
	sao := make([]int, n)
	seen := make([]bool, n)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v >= n || seen[v] {
			return nil, false
		}
		seen[v] = true
		sao[i] = v
	}
	return sao, true
}

// Choose plans the query described by nvars variables and the given
// atoms: it scores candidate splitting attribute orders against the
// statistics of the atom relations and picks index families to match.
// Deterministic: equal inputs yield equal decisions, and on symmetric
// instances (all candidates tied) the engine's classical
// elimination-based order wins, so planning never perturbs workloads
// the default already handles optimally.
func Choose(nvars int, atoms []Atom, opts Options) (*Decision, error) {
	if nvars < 1 || nvars > 64 {
		return nil, fmt.Errorf("planner: %d variables out of range", nvars)
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("planner: no atoms")
	}
	h := hypergraph.New(nvars)
	for _, a := range atoms {
		if len(a.Vars) != a.Rel.Arity() {
			return nil, fmt.Errorf("planner: atom over %s binds %d vars, arity %d", a.Rel.Name(), len(a.Vars), a.Rel.Arity())
		}
		if err := h.AddEdge(a.Vars...); err != nil {
			return nil, fmt.Errorf("planner: %w", err)
		}
	}
	est := newEstimator(nvars, atoms)

	cap := opts.ExhaustiveVars
	if cap == 0 {
		cap = defaultExhaustiveVars
	}

	// Named candidates. The elimination-based order is the engine's
	// classical SAOAuto choice; keeping it in the pool (and preferring
	// it on ties) makes planning a strict refinement of the default.
	cands := []Candidate{
		{SAO: eliminationSAO(h), Source: "elimination"},
		{SAO: naturalSAO(nvars), Source: "natural"},
		{SAO: reversedSAO(nvars), Source: "reversed"},
	}
	if mf, _ := h.MinFillOrder(); len(mf) == nvars {
		cands = append(cands, Candidate{SAO: reverseOf(mf), Source: "minfill"})
	}
	if nvars <= cap {
		if opt := est.optimalOrder(); opt != nil {
			cands = append(cands, Candidate{SAO: opt, Source: "optimal"})
		}
	}
	for _, key := range sortedKeys(opts.Observed) {
		if sao, ok := ParseSAOKey(key, nvars); ok {
			cands = append(cands, Candidate{SAO: sao, Source: "feedback"})
		}
	}

	// Score, dedupe by order (first source wins), apply feedback.
	byKey := map[string]int{}
	var uniq []Candidate
	for _, c := range cands {
		key := SAOKey(c.SAO)
		if _, dup := byKey[key]; dup {
			continue
		}
		c.Score = est.orderScore(c.SAO)
		if obs, ok := opts.Observed[key]; ok {
			c.Score = obs
			c.Observed = true
		}
		byKey[key] = len(uniq)
		uniq = append(uniq, c)
	}

	best := 0
	for i := 1; i < len(uniq); i++ {
		if better(uniq[i], uniq[best], h) {
			best = i
		}
	}
	for i := range uniq {
		if i == best {
			continue
		}
		switch {
		case uniq[i].Score > uniq[best].Score*(1+tieEpsilon):
			uniq[i].Rejection = fmt.Sprintf("estimate %.3g worse than %.3g", uniq[i].Score, uniq[best].Score)
		default:
			uniq[i].Rejection = "tied; lost structural tie-break"
		}
	}
	winner := uniq[best]
	uniq[best], uniq[0] = uniq[0], uniq[best]
	sort.SliceStable(uniq[1:], func(i, j int) bool { return uniq[i+1].Score < uniq[j+1].Score })

	d := &Decision{
		SAO:                  winner.SAO,
		Score:                winner.Score,
		EstimatedResolutions: winner.Score,
		Candidates:           uniq,
	}
	d.Families = make([]index.Family, len(atoms))
	for i, a := range atoms {
		d.Families[i] = familyFor(a.Rel)
	}
	d.Fingerprint = fingerprint(atoms, d, opts.Observed)
	return d, nil
}

// tieEpsilon is the relative slack under which two scores count as tied
// and the structural tie-break decides.
const tieEpsilon = 1e-9

// better reports whether candidate a should be preferred over b:
// strictly lower score first; on ties, lower induced width of the
// reversed order (the tree-decomposition structure criterion), then the
// source preference elimination > natural > others (stability: the
// classical default wins symmetric instances), then lexicographic order.
func better(a, b Candidate, h *hypergraph.Hypergraph) bool {
	if a.Score < b.Score*(1-tieEpsilon) {
		return true
	}
	if b.Score < a.Score*(1-tieEpsilon) {
		return false
	}
	wa, erra := h.InducedWidth(reverseOf(a.SAO))
	wb, errb := h.InducedWidth(reverseOf(b.SAO))
	if erra == nil && errb == nil && wa != wb {
		return wa < wb
	}
	if pa, pb := sourceRank(a.Source), sourceRank(b.Source); pa != pb {
		return pa < pb
	}
	return SAOKey(a.SAO) < SAOKey(b.SAO)
}

func sourceRank(s string) int {
	switch s {
	case "elimination":
		return 0
	case "natural":
		return 1
	default:
		return 2
	}
}

// eliminationSAO reproduces the engine's classical SAOAuto order: the
// reverse of a GYO order when acyclic, of a min-induced-width
// elimination order otherwise.
func eliminationSAO(h *hypergraph.Hypergraph) []int {
	var elim []int
	if order, acyclic := h.GYO(); acyclic {
		elim = order
	} else {
		elim, _ = h.EliminationOrder()
	}
	return reverseOf(elim)
}

func naturalSAO(n int) []int {
	sao := make([]int, n)
	for i := range sao {
		sao[i] = i
	}
	return sao
}

func reversedSAO(n int) []int { return reverseOf(naturalSAO(n)) }

func reverseOf(order []int) []int {
	out := make([]int, len(order))
	for i, v := range order {
		out[len(order)-1-i] = v
	}
	return out
}

// clusterThreshold and clusterMinTuples gate dyadic/k-d index family
// selection: only relations whose joint dyadic occupancy at midway
// depth is at most this fraction of the independent-column expectation
// (diagonals, blocks) trade the B-tree's order-consistent gaps for
// multidimensional ones.
const (
	clusterThreshold = 0.25
	clusterMinTuples = 16
)

// familyFor picks the index family for one atom's relation from its
// statistics. B-tree (SAO-consistent order) is the paper's default;
// relations whose tuples cluster in few dyadic cells — diagonals,
// blocks — get the dyadic tree (k-d tree at arity ≥ 3), whose gap boxes
// cover multidimensional holes that per-order B-trees can only tile
// with Ω(N) thin strips (Appendix B.2's index-dependence of
// certificates; the DiagonalBowtie experiment measures the gap).
func familyFor(rel *relation.Relation) index.Family {
	if rel.Arity() < 2 {
		return index.BTreeFamily
	}
	st := rel.Stats()
	if st.Count < clusterMinTuples {
		return index.BTreeFamily
	}
	maxDepth := 0
	for _, d := range rel.Depths() {
		if int(d) > maxDepth {
			maxDepth = int(d)
		}
	}
	mid := maxDepth / 2
	if mid < 1 {
		mid = 1
	}
	if st.ClusterRatio(mid) <= clusterThreshold {
		if rel.Arity() >= 3 {
			return index.KDTreeFamily
		}
		return index.DyadicFamily
	}
	return index.BTreeFamily
}

// fingerprint hashes the planning inputs and outputs into the decision
// identity the plan cache keys on.
func fingerprint(atoms []Atom, d *Decision, observed map[string]float64) uint64 {
	h := fnv.New64a()
	put := func(v uint64) {
		var buf [8]byte
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, a := range atoms {
		put(a.Rel.ID())
		put(a.Rel.Version())
		put(a.Rel.Stats().Fingerprint())
	}
	h.Write([]byte(SAOKey(d.SAO)))
	for _, f := range d.Families {
		put(uint64(f))
	}
	for _, key := range sortedKeys(observed) {
		h.Write([]byte(key))
		put(uint64(int64(observed[key])))
	}
	return h.Sum64()
}

// sortedKeys returns a map's keys in sorted order (determinism for
// fingerprints and candidate generation).
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
