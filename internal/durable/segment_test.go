package durable

import (
	"fmt"
	"reflect"
	"testing"

	"tetrisjoin/internal/index"
	"tetrisjoin/internal/relation"
	"tetrisjoin/internal/segment"
	"tetrisjoin/internal/wal"
)

// TestSegmentBackedRestartZeroBuilds is the tentpole regression: a
// clean restart of a checkpointed catalog with maintained statements
// loads every index from segments — zero index builds, zero WAL
// replay — and serves byte-identical results.
func TestSegmentBackedRestartZeroBuilds(t *testing.T) {
	fs := wal.NewMemFS()
	d := openMem(t, fs)
	for i := 1; i <= 3; i++ {
		rel := relation.MustNewUniform(fmt.Sprintf("R%d", i), []string{"X", "Y"}, 6)
		for k := 0; k < 40; k++ {
			rel.MustInsert(uint64((k*7+i)%64), uint64((k*13+3*i)%64))
		}
		specs := []index.Spec{index.BTreeSpec("X", "Y"), index.BTreeSpec("Y", "X"), index.DyadicSpec(), index.KDTreeSpec()}
		if _, err := d.Ingest(rel, specs...); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Maintain("path", pathQuery, execOpts); err != nil {
		t.Fatal(err)
	}
	res, err := d.Execute(pathQuery, execOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	oracle := d.Catalog
	d.Close()

	re, err := Open("", Options{FS: fs.Clone(), CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	info := re.Recovery()
	if info.SegmentRelations != 3 || info.Replayed != 0 || info.IndexesRebuilt != 0 || info.CheckpointFallback {
		t.Fatalf("recovery info %+v, want 3 segment relations, clean load", info)
	}
	if info.IndexesLoaded < 12 {
		t.Fatalf("loaded %d indexes, want at least the 12 maintained ones", info.IndexesLoaded)
	}
	if builds := re.Stats().IndexBuilds; builds != 0 {
		t.Fatalf("segment-backed restart performed %d index builds, want 0", builds)
	}
	assertSameCatalog(t, "segment restart", re, oracle)
	res2, err := re.Execute(pathQuery, execOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, res2.Tuples) {
		t.Fatal("segment-backed restart serves a different result")
	}
	if builds := re.Stats().IndexBuilds; builds != 0 {
		t.Fatalf("first exec after restart performed %d index builds, want 0", builds)
	}
	m, ok := re.MaintainedByID("path")
	if !ok {
		t.Fatal("maintained statement lost across restart")
	}
	mres, err := m.Execute(execOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, mres.Tuples) {
		t.Fatal("maintained statement serves a different result after restart")
	}
}

// TestIncrementalCheckpointBytes pins the O(churn) property: after a
// 1-relation change in a 10-relation catalog, the next checkpoint
// writes a small fraction of the bytes a full one writes, and the nine
// unchanged relations re-reference their existing segment files.
func TestIncrementalCheckpointBytes(t *testing.T) {
	fs := wal.NewMemFS()
	d := openMem(t, fs)
	defer d.Close()
	for i := 0; i < 10; i++ {
		rel := relation.MustNewUniform(fmt.Sprintf("T%d", i), []string{"X", "Y"}, 8)
		for k := 0; k < 300; k++ {
			rel.MustInsert(uint64((k*11+i)%256), uint64((k*29+7*i)%256))
		}
		if _, err := d.Ingest(rel, index.BTreeSpec("X", "Y"), index.DyadicSpec()); err != nil {
			t.Fatal(err)
		}
	}
	before := fs.BytesWritten()
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fullBytes := fs.BytesWritten() - before
	firstLSN := d.WAL().CheckpointLSN

	if _, err := d.Append("T4", relation.Tuple{250, 251}); err != nil {
		t.Fatal(err)
	}
	before = fs.BytesWritten()
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	incrBytes := fs.BytesWritten() - before

	if incrBytes*5 > fullBytes {
		t.Fatalf("incremental checkpoint wrote %d bytes, full wrote %d — not O(churn)", incrBytes, fullBytes)
	}

	man1, err := readManifest(fs, firstLSN)
	if err != nil {
		t.Fatal(err)
	}
	man2, err := readManifest(fs, d.WAL().CheckpointLSN)
	if err != nil {
		t.Fatal(err)
	}
	files1 := map[string]string{}
	for _, cr := range man1.Relations {
		files1[cr.Name] = cr.File
	}
	reused := 0
	for _, cr := range man2.Relations {
		if cr.Name == "T4" {
			if files1[cr.Name] == cr.File {
				t.Fatal("changed relation T4 did not get a fresh segment")
			}
			continue
		}
		if files1[cr.Name] != cr.File {
			t.Fatalf("unchanged relation %s was re-frozen (%s -> %s)", cr.Name, files1[cr.Name], cr.File)
		}
		reused++
	}
	if reused != 9 {
		t.Fatalf("reused %d segment files, want 9", reused)
	}
}

// TestSegmentGCPinning is the retention regression: GC must never
// remove a segment file that any retained manifest still references —
// including files shared between the two retained manifests — while
// unreferenced files (older generations, crash leftovers) are removed.
func TestSegmentGCPinning(t *testing.T) {
	fs := wal.NewMemFS()
	d := openMem(t, fs)
	defer d.Close()
	seedPath(t, d, 30, 6, 9)
	if err := d.Checkpoint(); err != nil { // C1: freezes R1..R3
		t.Fatal(err)
	}
	lsn1 := d.WAL().CheckpointLSN

	// Simulate a crash between manifest write and old-segment deletion:
	// an orphaned segment file no manifest references.
	orphan := segName(lsn1-1, 0)
	f, err := fs.OpenAppend(orphan)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("leftover"))
	f.Sync()
	f.Close()

	if _, err := d.Append("R1", relation.Tuple{2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil { // C2: refreezes R1, reuses R2/R3
		t.Fatal(err)
	}

	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[string]bool{}
	for _, n := range names {
		onDisk[n] = true
	}
	if onDisk[orphan] {
		t.Fatal("unreferenced orphan segment survived GC")
	}
	// Both manifests retained; every file either references is present.
	for _, lsn := range []uint64{lsn1, d.WAL().CheckpointLSN} {
		man, err := readManifest(fs, lsn)
		if err != nil {
			t.Fatalf("retained manifest %d unreadable: %v", lsn, err)
		}
		for _, cr := range man.Relations {
			if !onDisk[cr.File] {
				t.Fatalf("segment %s referenced by retained manifest %d was deleted", cr.File, lsn)
			}
		}
	}

	// Two more checkpoints push C1 out of retention; its then-
	// unreferenced segments must go, and recovery must stay clean.
	for i := 0; i < 2; i++ {
		if _, err := d.Append("R2", relation.Tuple{uint64(10 + i), 1}); err != nil {
			t.Fatal(err)
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := readManifest(fs, lsn1); err == nil {
		t.Fatal("manifest beyond keep-2 not pruned")
	}
	re, err := Open("", Options{FS: fs.Clone(), CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	re.Close()

	names, _ = fs.List()
	segCount := 0
	for _, n := range names {
		if isSegName(n) {
			segCount++
		}
	}
	// Retained: C3 {R1,R2,R3} and C4 {R2'} sharing R1,R3 files → 4
	// distinct segment files at most (R1, R3, R2@C3, R2@C4).
	if segCount > 4 {
		t.Fatalf("%d segment files on disk after GC, want <= 4", segCount)
	}
}

// corruptSection flips one byte inside the given section of a segment
// file, returning the section extent it hit.
func corruptSection(t *testing.T, fs *wal.MemFS, file string, section int) {
	t.Helper()
	data, err := fs.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := segment.Load(append([]byte(nil), data...))
	if err != nil {
		t.Fatal(err)
	}
	off, ln := seg.Extent(section)
	if err := fs.FlipByte(file, off+ln/2); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptIndexSectionRebuilds: a damaged frozen index falls back
// to rebuild-from-tuples — same state, no manifest fallback, catalog
// still opens and serves.
func TestCorruptIndexSectionRebuilds(t *testing.T) {
	fs := wal.NewMemFS()
	d := openMem(t, fs)
	seedPath(t, d, 30, 6, 21)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	res, err := d.Execute(pathQuery, execOpts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := d.Catalog
	man, err := readManifest(fs, d.WAL().CheckpointLSN)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()

	cr := man.Relations[0]
	if len(cr.Indexes) == 0 {
		t.Fatal("no frozen index sections to corrupt")
	}
	img := fs.Clone()
	corruptSection(t, img, cr.File, cr.Indexes[0].Section)

	re, err := Open("", Options{FS: img, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	info := re.Recovery()
	if info.IndexesRebuilt < 1 || info.CheckpointFallback {
		t.Fatalf("recovery info %+v, want >=1 index rebuilt without manifest fallback", info)
	}
	if builds := re.Stats().IndexBuilds; builds < 1 {
		t.Fatalf("rebuilt index did not charge the build counter (%d)", builds)
	}
	assertSameCatalog(t, "corrupt index section", re, oracle)
	res2, err := re.Execute(pathQuery, execOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, res2.Tuples) {
		t.Fatal("rebuild-after-corruption serves a different result")
	}
}

// TestCorruptTupleSectionFallsBack: damaged tuple data invalidates the
// manifest; recovery falls back to the previous manifest plus both WAL
// epochs and still recovers the exact acknowledged state.
func TestCorruptTupleSectionFallsBack(t *testing.T) {
	fs := wal.NewMemFS()
	d := openMem(t, fs)
	seedPath(t, d, 30, 6, 33)
	if err := d.Checkpoint(); err != nil { // C1
		t.Fatal(err)
	}
	if _, err := d.Append("R1", relation.Tuple{5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil { // C2: refreezes R1
		t.Fatal(err)
	}
	if _, err := d.Append("R2", relation.Tuple{7, 8}); err != nil {
		t.Fatal(err)
	}
	lsn2 := d.WAL().CheckpointLSN
	man, err := readManifest(fs, lsn2)
	if err != nil {
		t.Fatal(err)
	}
	oracle := d.Catalog
	d.Close()

	var target ckptRelation
	for _, cr := range man.Relations {
		if cr.Name == "R1" {
			target = cr
		}
	}
	for _, mutate := range []func(img *wal.MemFS){
		func(img *wal.MemFS) { corruptSection(t, img, target.File, target.TuplesSection) },
		func(img *wal.MemFS) {
			if err := img.Remove(target.File); err != nil {
				t.Fatal(err)
			}
		},
		func(img *wal.MemFS) {
			if err := img.FlipByte(ckptName(lsn2), 20); err != nil {
				t.Fatal(err)
			}
		},
	} {
		img := fs.Clone()
		mutate(img)
		re, err := Open("", Options{FS: img, CheckpointEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		info := re.Recovery()
		if !info.CheckpointFallback {
			t.Fatalf("recovery info %+v, want manifest fallback", info)
		}
		if info.Replayed == 0 {
			t.Fatalf("fallback recovery replayed nothing: %+v", info)
		}
		assertSameCatalog(t, "manifest fallback", re, oracle)
		re.Close()

		// Strict mode must refuse the damaged newest manifest instead.
		if _, err := Open("", Options{FS: img.Clone(), CheckpointEvery: -1, StrictReplay: true}); err == nil {
			t.Fatal("strict open accepted a damaged newest checkpoint")
		}
	}
}

// TestDisableIndexSegments: tuples-only checkpoints still recover
// byte-identically, with every index rebuilt.
func TestDisableIndexSegments(t *testing.T) {
	fs := wal.NewMemFS()
	d, err := Open("", Options{FS: fs, CheckpointEvery: -1, DisableIndexSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	seedPath(t, d, 30, 6, 41)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	oracle := d.Catalog
	d.Close()

	re, err := Open("", Options{FS: fs.Clone(), CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	info := re.Recovery()
	if info.IndexesLoaded != 0 || info.SegmentRelations != 3 {
		t.Fatalf("recovery info %+v, want tuple-only segments", info)
	}
	if builds := re.Stats().IndexBuilds; builds == 0 {
		t.Fatal("tuples-only restart claims zero index builds")
	}
	assertSameCatalog(t, "tuples-only restart", re, oracle)
}
