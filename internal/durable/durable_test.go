package durable

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
	"tetrisjoin/internal/wal"
)

// openMem opens a durable catalog over the in-memory FS with automatic
// checkpoints off, so tests control every checkpoint explicitly.
func openMem(t *testing.T, fs *wal.MemFS) *Catalog {
	t.Helper()
	d, err := Open("", Options{FS: fs, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

const pathQuery = "R1(A,B), R2(B,C), R3(C,D)"

// seedPath ingests the three path-query relations with explicit specs.
func seedPath(t *testing.T, d *Catalog, n int, depth uint8, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	for i := 1; i <= 3; i++ {
		rel := relation.MustNewUniform(fmt.Sprintf("R%d", i), []string{"X", "Y"}, depth)
		for k := 0; k < n; k++ {
			rel.MustInsert(uint64(r.Intn(1<<depth)), uint64(r.Intn(1<<depth)))
		}
		if _, err := d.Ingest(rel, index.BTreeSpec("X", "Y")); err != nil {
			t.Fatal(err)
		}
	}
}

// execOpts is the deterministic execution configuration used for
// byte-identity comparisons.
var execOpts = join.Options{Mode: core.Preloaded, Parallelism: 1}

// assertSameCatalog compares the recovered catalog against an oracle:
// same relation names, same tuple sets, same maintained ids.
func assertSameCatalog(t *testing.T, label string, got *Catalog, want *catalog.Catalog) {
	t.Helper()
	gn, wn := got.Names(), want.Names()
	if !reflect.DeepEqual(gn, wn) {
		t.Fatalf("%s: relations %v, want %v", label, gn, wn)
	}
	for _, name := range wn {
		gr, _ := got.Relation(name)
		wr, _ := want.Relation(name)
		if !reflect.DeepEqual(gr.Tuples(), wr.Tuples()) {
			t.Fatalf("%s: relation %s has %d tuples, want %d (or differing contents)",
				label, name, gr.Len(), wr.Len())
		}
	}
}

func TestOpenEmptyThenRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	d := openMem(t, fs)
	if info := d.Recovery(); info.Relations != 0 || info.LastLSN != 0 || info.CorruptOffset != -1 {
		t.Fatalf("empty open recovered %+v", info)
	}
	seedPath(t, d, 40, 6, 1)
	if _, err := d.Append("R2", relation.Tuple{1, 2}, relation.Tuple{3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Delete("R1", relation.Tuple{3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Maintain("path", pathQuery, execOpts); err != nil {
		t.Fatal(err)
	}
	res, err := d.Execute(pathQuery, execOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re := openMem(t, fs)
	defer re.Close()
	info := re.Recovery()
	if info.Relations != 3 || info.Maintained != 1 || info.TornTail || info.CorruptOffset != -1 {
		t.Fatalf("recovery info %+v", info)
	}
	// The recovered catalog serves the prepared query byte-identically.
	res2, err := re.Execute(pathQuery, execOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, res2.Tuples) {
		t.Fatalf("recovered result differs: %d tuples vs %d", len(res2.Tuples), len(res.Tuples))
	}
	m, ok := re.MaintainedByID("path")
	if !ok {
		t.Fatal("maintained statement not recovered")
	}
	mres, err := m.Execute(execOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mres.Tuples, res.Tuples) {
		t.Fatal("recovered maintained statement serves a different result")
	}
	// Ingest's eager specs are part of the durable state.
	if specs := re.Specs("R1"); len(specs) == 0 {
		t.Fatal("ingest-time specs lost in recovery")
	}
	// Duplicate ids are rejected; new ids keep working after recovery.
	if _, err := re.Maintain("path", pathQuery, execOpts); err == nil {
		t.Fatal("duplicate maintained id accepted")
	}
	if _, err := re.Maintain("path2", pathQuery, execOpts); err != nil {
		t.Fatal(err)
	}
}

// A torn final record is truncated away and recovery is idempotent:
// reopening any number of times converges to the acknowledged prefix.
func TestTornTailRepairAndIdempotence(t *testing.T) {
	fs := wal.NewMemFS()
	d := openMem(t, fs)
	seedPath(t, d, 20, 6, 2)
	if _, err := d.Append("R1", relation.Tuple{5, 6}); err != nil {
		t.Fatal(err)
	}
	sizeBefore := d.WAL().WALSize
	if _, err := d.Append("R1", relation.Tuple{7, 8}); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Tear the final record: cut three bytes off its frame.
	if err := fs.Truncate(WALName, d.WAL().WALSize-3); err != nil {
		t.Fatal(err)
	}

	oracle := catalog.New()
	r := rand.New(rand.NewSource(2))
	for i := 1; i <= 3; i++ {
		rel := relation.MustNewUniform(fmt.Sprintf("R%d", i), []string{"X", "Y"}, 6)
		for k := 0; k < 20; k++ {
			rel.MustInsert(uint64(r.Intn(64)), uint64(r.Intn(64)))
		}
		if _, err := oracle.Ingest(rel); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := oracle.Append("R1", relation.Tuple{5, 6}); err != nil {
		t.Fatal(err)
	}

	re := openMem(t, fs)
	if info := re.Recovery(); !info.TornTail || info.CorruptOffset != -1 {
		t.Fatalf("recovery info %+v, want torn tail and no corruption", info)
	}
	assertSameCatalog(t, "after tear", re, oracle)
	if got := re.WAL().WALSize; got != sizeBefore {
		t.Fatalf("repaired WAL is %d bytes, want %d", got, sizeBefore)
	}
	lsn := re.WAL().LastLSN
	re.Close()

	// Restart twice more: identical state, no further repair needed.
	for round := 0; round < 2; round++ {
		re = openMem(t, fs)
		if info := re.Recovery(); info.TornTail {
			t.Fatalf("round %d: repair was not persistent: %+v", round, info)
		}
		if re.WAL().LastLSN != lsn {
			t.Fatalf("round %d: LSN drifted: %d, want %d", round, re.WAL().LastLSN, lsn)
		}
		assertSameCatalog(t, fmt.Sprintf("restart %d", round), re, oracle)
		re.Close()
	}
}

// Mid-log corruption: lenient mode recovers the prefix before the
// damaged record and reports its offset; strict mode refuses to open.
func TestMidLogCorruption(t *testing.T) {
	fs := wal.NewMemFS()
	d := openMem(t, fs)
	rel := relation.MustNewUniform("R", []string{"X", "Y"}, 6)
	rel.MustInsert(1, 1)
	if _, err := d.Ingest(rel, index.BTreeSpec("X", "Y")); err != nil {
		t.Fatal(err)
	}
	ends := []int64{d.WAL().WALSize}
	for i := 0; i < 3; i++ {
		if _, err := d.Append("R", relation.Tuple{uint64(i + 2), uint64(i + 2)}); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, d.WAL().WALSize)
	}
	d.Close()
	// Damage the payload of the second append (record index 2): its
	// frame spans [ends[1], ends[2]).
	if err := fs.FlipByte(WALName, ends[1]+20); err != nil {
		t.Fatal(err)
	}

	if _, err := Open("", Options{FS: fs.Clone(), CheckpointEvery: -1, StrictReplay: true}); err == nil {
		t.Fatal("strict replay opened a corrupt log")
	} else if !strings.Contains(err.Error(), fmt.Sprint(ends[1])) {
		t.Fatalf("strict error %q does not name offset %d", err, ends[1])
	}

	re := openMem(t, fs)
	defer re.Close()
	info := re.Recovery()
	if info.CorruptOffset != ends[1] {
		t.Fatalf("corrupt offset %d, want %d", info.CorruptOffset, ends[1])
	}
	r, _ := re.Relation("R")
	if r.Len() != 2 { // ingest tuple + first append; appends 2 and 3 lost
		t.Fatalf("recovered %d tuples, want the 2 before the damage", r.Len())
	}
	if got := re.WAL().WALSize; got != ends[1] {
		t.Fatalf("log truncated to %d, want %d", got, ends[1])
	}
}

// Checkpoint plus tail: recovery loads the snapshot and replays only
// the records logged after it.
func TestCheckpointPlusTail(t *testing.T) {
	fs := wal.NewMemFS()
	d := openMem(t, fs)
	seedPath(t, d, 30, 6, 3)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := d.WAL().WALSize; got != 0 {
		t.Fatalf("WAL not truncated by checkpoint: %d bytes", got)
	}
	for i := 0; i < 4; i++ {
		if _, err := d.Append("R2", relation.Tuple{uint64(i), uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Execute(pathQuery, execOpts)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()

	re := openMem(t, fs)
	defer re.Close()
	info := re.Recovery()
	if info.CheckpointLSN == 0 || info.Replayed != 4 {
		t.Fatalf("recovery info %+v, want checkpoint + 4 tail records", info)
	}
	res2, err := re.Execute(pathQuery, execOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, res2.Tuples) {
		t.Fatal("checkpoint+tail recovery serves a different result")
	}
	// The checkpoint carried the relations' index specs.
	if specs := re.Specs("R2"); len(specs) == 0 {
		t.Fatal("checkpoint lost the maintained specs")
	}
}

// A maintained statement checkpointed before further mutations is
// re-materialized BEFORE the tail replays, so it digests the tail as
// live deltas — the mid-delta-chain recovery path.
func TestMaintainedRecoveredMidDeltaChain(t *testing.T) {
	fs := wal.NewMemFS()
	d := openMem(t, fs)
	seedPath(t, d, 30, 6, 4)
	if _, err := d.Maintain("path", pathQuery, execOpts); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 6; i++ {
		if _, err := d.Append("R2", relation.Tuple{uint64(r.Intn(64)), uint64(r.Intn(64))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Maintain("late", "R1(A,B), R2(B,C)", execOpts); err != nil {
		t.Fatal(err)
	}
	d.Close()

	re := openMem(t, fs)
	defer re.Close()
	if info := re.Recovery(); info.Maintained != 2 {
		t.Fatalf("recovered %d maintained statements, want 2", info.Maintained)
	}
	for id, query := range map[string]string{"path": pathQuery, "late": "R1(A,B), R2(B,C)"} {
		m, ok := re.MaintainedByID(id)
		if !ok {
			t.Fatalf("statement %q not recovered", id)
		}
		mres, err := m.Execute(execOpts)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: a scratch execution over the recovered relations.
		want, err := re.Execute(query, join.Options{Mode: core.Preloaded, Parallelism: 1, SAOVars: mres.SAO})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(mres.Tuples, want.Tuples) {
			t.Fatalf("statement %q serves %d tuples, scratch recompute %d",
				id, len(mres.Tuples), len(want.Tuples))
		}
	}
}

// A crash between checkpoint publish and WAL truncation leaves a WAL
// whose records are all covered by the checkpoint; recovery skips them
// (idempotent replay) and completes the truncation.
func TestCheckpointCrashBeforeWALTruncate(t *testing.T) {
	fs := wal.NewMemFS()
	d := openMem(t, fs)
	seedPath(t, d, 25, 6, 5)
	pre := fs.Clone() // image with the full WAL, before checkpoint
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	res, err := d.Execute(pathQuery, execOpts)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Graft the published checkpoint — manifest plus the segment files
	// it references — into the pre-checkpoint image: exactly the
	// on-disk state after the manifest rename, before the WAL rotation.
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	grafted := 0
	for _, name := range names {
		_, isCkpt := parseCkptName(name)
		if !isCkpt && !isSegName(name) {
			continue
		}
		data, err := fs.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := pre.OpenAppend(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		f.Sync()
		f.Close()
		grafted++
	}
	if grafted < 2 {
		t.Fatalf("expected a manifest and at least one segment, grafted %d files", grafted)
	}

	re, err := Open("", Options{FS: pre, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	info := re.Recovery()
	if info.CheckpointLSN == 0 || info.Replayed != 0 {
		t.Fatalf("recovery info %+v, want checkpoint with zero tail replay", info)
	}
	// The stale covered records stay in the live log (the LSN filter
	// skipped them); the next checkpoint rotates the whole file out.
	res2, err := re.Execute(pathQuery, execOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, res2.Tuples) {
		t.Fatal("crash-before-truncate recovery serves a different result")
	}
}

// A failed sync poisons the catalog: the op errors, later mutations
// fail fast, and the crash image recovers only the acknowledged prefix.
func TestFailedSyncPoisons(t *testing.T) {
	fs := wal.NewMemFS()
	d := openMem(t, fs)
	rel := relation.MustNewUniform("R", []string{"X", "Y"}, 6)
	rel.MustInsert(1, 1)
	if _, err := d.Ingest(rel); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append("R", relation.Tuple{2, 2}); err != nil {
		t.Fatal(err)
	}

	fail := true
	fs.SyncHook = func(name string, pending int) (int, bool) {
		if fail && name == WALName {
			return 0, true // clean sync failure: nothing reaches disk
		}
		return pending, false
	}
	if _, err := d.Append("R", relation.Tuple{3, 3}); err == nil {
		t.Fatal("append acknowledged despite failed sync")
	}
	if d.Err() == nil {
		t.Fatal("failed sync did not poison the catalog")
	}
	fail = false
	if _, err := d.Append("R", relation.Tuple{4, 4}); err == nil {
		t.Fatal("poisoned catalog accepted a mutation")
	}
	if err := d.Checkpoint(); err == nil {
		t.Fatal("poisoned catalog accepted a checkpoint")
	}

	re, err := Open("", Options{FS: fs.CrashClone(), CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	r, _ := re.Relation("R")
	if !reflect.DeepEqual(r.Tuples(), []relation.Tuple{{1, 1}, {2, 2}}) {
		t.Fatalf("crash image recovered %v, want the acknowledged prefix", r.Tuples())
	}
}

// Automatic checkpoints fire after CheckpointEvery records and bound
// the WAL.
func TestAutoCheckpoint(t *testing.T) {
	fs := wal.NewMemFS()
	d, err := Open("", Options{FS: fs, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	rel := relation.MustNewUniform("R", []string{"X", "Y"}, 6)
	rel.MustInsert(1, 1)
	if _, err := d.Ingest(rel); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := d.Append("R", relation.Tuple{uint64(i + 10), uint64(i + 10)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.WAL().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no automatic checkpoint after 6 records with CheckpointEvery=2")
		}
		time.Sleep(time.Millisecond)
	}
	d.Close()

	re := openMem(t, fs)
	defer re.Close()
	if info := re.Recovery(); info.CheckpointLSN == 0 {
		t.Fatalf("recovery ignored the automatic checkpoint: %+v", info)
	}
	r, _ := re.Relation("R")
	if r.Len() != 6 {
		t.Fatalf("recovered %d tuples, want 6", r.Len())
	}
}
